// Sweep: explore the cost/protection trade-off across detection thresholds
// — the decision a supervisor actually faces. For each ε it compares the
// Balanced, Golle–Stubblebine, and simple-redundancy costs, shows the
// theoretical minimum, and locates the ε ≈ 0.797 crossover beyond which
// guaranteed detection costs more than simple redundancy's blind doubling.
package main

import (
	"fmt"
	"math"

	"redundancy"
)

func main() {
	const n = 1_000_000

	fmt.Println("Assignments required for an N = 1,000,000-task computation")
	fmt.Println()
	fmt.Printf("%-6s %-12s %-12s %-12s %-14s %-10s\n",
		"ε", "Balanced", "GS", "Simple", "Lower bound", "Bal. saves")
	for _, eps := range []float64{0.1, 0.25, 0.5, 0.6, 0.7, 0.75, 0.8, 0.9, 0.95} {
		bal := n * redundancy.BalancedRedundancyFactor(eps)
		gs := n * redundancy.GolleStubblebineRedundancyFactor(eps)
		lb := n * redundancy.LowerBoundRedundancyFactor(eps)
		fmt.Printf("%-6.2f %-12.0f %-12.0f %-12d %-14.0f %+.0f\n",
			eps, bal, gs, 2*n, lb, gs-bal)
	}

	cross := redundancy.CrossoverEpsilon()
	fmt.Printf("\nBalanced beats simple redundancy below ε* = %.4f\n", cross)
	fmt.Printf("  at ε = %.4f − 0.05: factor %.4f < 2\n",
		cross, redundancy.BalancedRedundancyFactor(cross-0.05))
	fmt.Printf("  at ε = %.4f + 0.05: factor %.4f > 2\n",
		cross, redundancy.BalancedRedundancyFactor(cross+0.05))

	// How the guarantee erodes as the adversary grows: Proposition 3.
	fmt.Println("\nEffective detection of the Balanced scheme (ε = 0.75) vs adversary size")
	for _, p := range []float64{0, 0.05, 0.1, 0.2, 0.3, 0.5} {
		fmt.Printf("  p = %.2f: P(detect) = %.4f\n", p, redundancy.BalancedDetection(0.75, p))
	}

	// The 1/sqrt(N) rule of thumb for simple redundancy (Appendix A).
	fmt.Println("\nAppendix A: adversary proportion at which two-phase simple redundancy")
	fmt.Println("expects to hand the coalition a free cheat (p = 1/sqrt(N)):")
	for _, size := range []int{10_000, 100_000, 1_000_000} {
		res, err := redundancy.TwoPhaseExperiment(size, 1/math.Sqrt(float64(size)), 200, 11)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  N = %-9d p = %.4f: observed mean %.2f fully-controlled tasks (expect 1.0), free-cheat rate %.2f\n",
			size, res.Proportion, res.Observed.Mean(), res.FreeCheatRate)
	}
}

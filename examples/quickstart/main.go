// Quickstart: build the Balanced distribution, inspect its guarantees,
// deploy it as an integer plan, and verify the plan end to end.
package main

import (
	"fmt"
	"log"

	"redundancy"
)

func main() {
	const (
		n   = 1_000_000 // tasks in the computation
		eps = 0.75      // desired cheating-detection probability
	)

	// 1. The theoretical scheme: detection probability exactly ε at every
	// tuple size, for ln(1/(1−ε))/ε assignments per task.
	d, err := redundancy.Balanced(n, eps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Balanced distribution for N=%d at ε=%.2f\n", n, eps)
	fmt.Printf("  redundancy factor: %.4f (simple redundancy: 2.0000)\n", d.RedundancyFactor())
	fmt.Printf("  saved assignments vs simple redundancy: %.0f\n", 2*n-d.TotalAssignments())
	for k := 1; k <= 4; k++ {
		fmt.Printf("  P(detect | adversary holds %d copies) = %.4f\n", k, redundancy.Detection(d, k))
	}

	// 2. Against an adversary controlling 10% of all assignments the
	// guarantee degrades gracefully (Proposition 3): 1 − (1−ε)^{1−p}.
	minP, _ := redundancy.MinDetection(d, 0.10)
	fmt.Printf("  worst-case detection at p=0.10: %.4f (closed form %.4f)\n",
		minP, redundancy.BalancedDetection(eps, 0.10))

	// 3. Deploy: round to integers, sweep the sub-one tail into a tail
	// partition, and precompute ringers to protect it (§6).
	p, err := redundancy.PlanFor(d, eps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDeployable plan: %s\n", p)
	fmt.Printf("  tail partition: %d tasks × %d copies, %d precomputed ringers\n",
		p.TailTasks, p.TailMultiplicity, p.Ringers)

	// 4. Audit the deployed plan: every task covered, every detection
	// constraint met including the ringer-protected tail.
	if problems := p.Audit(1e-6); len(problems) > 0 {
		log.Fatalf("plan audit failed: %v", problems)
	}
	fmt.Println("  audit: ok — all constraints hold in the deployed integer plan")
}

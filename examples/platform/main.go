// Platform: run the complete TCP volunteer-computing platform in one
// process — a supervisor serving a Balanced plan of real prime-counting
// tasks, six honest workers, and a two-member colluding coalition that
// returns identical wrong results.
package main

import (
	"fmt"
	"log"
	"sync"

	"redundancy"
)

func main() {
	const (
		n   = 400
		eps = 0.5
	)

	plan, err := redundancy.NewPlan(n, eps)
	if err != nil {
		log.Fatal(err)
	}
	sup, err := redundancy.NewSupervisor(redundancy.SupervisorConfig{
		Plan:     plan,
		WorkKind: "primecount",
		Iters:    800,
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}
	addr, err := sup.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("supervisor on %s: %d tasks, %d assignments, %d ringers\n",
		addr, plan.N, plan.TotalAssignments(), plan.Ringers)

	// The coalition: two workers sharing one cheat policy, so their wrong
	// values always match (the paper's collusion model).
	coalition := redundancy.NewWorkerCoalition(1.0, 7)

	var wg sync.WaitGroup
	results := make([]redundancy.WorkerStats, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		cfg := redundancy.WorkerConfig{Addr: addr, Name: fmt.Sprintf("honest-%d", w)}
		if w < 2 {
			cfg.Name = fmt.Sprintf("colluder-%d", w)
			cfg.Cheat = coalition.CheatFunc()
		}
		go func(w int, cfg redundancy.WorkerConfig) {
			defer wg.Done()
			st, err := redundancy.RunWorker(cfg)
			if err != nil {
				// Colluders may be convicted by ringer evidence and
				// refused further work mid-run — that is the platform
				// working as intended.
				fmt.Printf("  %s stopped: %v\n", cfg.Name, err)
			}
			results[w] = st
		}(w, cfg)
	}
	wg.Wait()
	sup.Wait()

	for w, st := range results {
		role := "honest"
		if w < 2 {
			role = "colluder"
		}
		fmt.Printf("  worker %d (%s): %d assignments completed, %d cheated\n",
			w, role, st.Completed, st.Cheated)
	}

	sum := sup.Summary()
	fmt.Println("\nsupervisor summary")
	fmt.Printf("  tasks adjudicated:  %d\n", sum.Verify.Tasks)
	fmt.Printf("  certified results:  %d\n", sum.Verify.Accepted)
	fmt.Printf("  cheats detected:    %d (ringer catches: %d)\n",
		sum.Verify.MismatchDetected, sum.Verify.RingersCaught)
	fmt.Printf("  wrong certified:    %d\n", sum.WrongResults)
	fmt.Printf("  suspects:           %v (circumstantial; 2-way mismatches implicate both parties)\n", sum.Blacklist)
	fmt.Printf("  convicted:          %v (conclusive ringer evidence)\n", sum.Convicted)
	if err := sup.Close(); err != nil {
		log.Fatal(err)
	}
}

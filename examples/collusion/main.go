// Collusion: simulate a colluding coalition against simple redundancy and
// against the Balanced distribution, showing why matching results are not
// enough and how the Balanced scheme caps the adversary's odds.
//
// This is the motivating scenario of the paper's introduction: a single
// person registers many identities ("a dedicated individual can obtain
// hundreds of user names"), receives multiple copies of some tasks, and
// returns identical wrong results on them.
package main

import (
	"fmt"
	"log"

	"redundancy"
)

func main() {
	const (
		n            = 50_000
		eps          = 0.5
		participants = 1_000
	)

	fmt.Println("Coalition sweep: identical wrong results on every fully-held task")
	fmt.Println()
	fmt.Printf("%-22s %-10s %-12s %-12s %-14s\n",
		"scheme", "coalition", "cheats", "undetected", "min P(k,p)")

	for _, prop := range []float64{0.02, 0.05, 0.10, 0.20} {
		for _, scheme := range []string{"simple", "balanced"} {
			var d *redundancy.Distribution
			var err error
			if scheme == "simple" {
				d = redundancy.Simple(n)
			} else {
				d, err = redundancy.Balanced(n, eps)
				if err != nil {
					log.Fatal(err)
				}
			}
			plan, err := redundancy.PlanFor(d, eps)
			if err != nil {
				log.Fatal(err)
			}
			// The smart coalition cheats only when it holds every copy it
			// can hope for: both copies under simple redundancy; under
			// Balanced there is no safe tuple size, so model the
			// opportunist who attacks any fully-darkened pair or larger.
			rep, err := redundancy.Simulate(redundancy.SimConfig{
				Plan:                plan,
				Policy:              redundancy.PolicyFree,
				Participants:        participants,
				AdversaryProportion: prop,
				Strategy:            redundancy.StrategyAtLeast{MinCopies: 2},
				Seed:                uint64(prop * 1000),
			})
			if err != nil {
				log.Fatal(err)
			}
			cheats, undetected := 0, 0
			for _, pt := range rep.PerTuple {
				cheats += pt.Cheated
				undetected += pt.Undetected
			}
			minP, _ := redundancy.MinDetection(d, prop)
			fmt.Printf("%-22s %-10.2f %-12d %-12d %-14.4f\n",
				d.Name, prop, cheats, undetected, minP)
		}
	}

	fmt.Println()
	fmt.Println("Reading the table: under simple redundancy every 2-tuple cheat passes")
	fmt.Println("(min P = 0 — matching wrong results are certified). The Balanced")
	fmt.Println("scheme holds the detection probability near ε = 0.5 regardless of")
	fmt.Println("how many copies of a task the coalition manages to collect.")
}

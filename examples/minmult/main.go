// Minmult: the §7 extension in practice. A supervisor already committed to
// simple redundancy (every task at least twice, e.g. for fault tolerance)
// upgrades to a *guaranteed* cheating-detection probability by switching to
// the minimum-multiplicity-2 Balanced distribution — for about 13% more
// assignments on the paper's worked example.
package main

import (
	"fmt"
	"log"

	"redundancy"
)

func main() {
	const (
		n   = 100_000
		eps = 0.5
	)

	// Simple redundancy: 2N assignments, but an adversary holding both
	// copies of a task cheats with certainty.
	simple := redundancy.Simple(n)
	fmt.Printf("simple redundancy: %d assignments, P(detect | 2 copies held) = %.0f\n",
		int(simple.TotalAssignments()), redundancy.Detection(simple, 2))

	// §7 upgrade: keep the "every task at least twice" property, add the
	// ε guarantee at every tuple size.
	for m := 2; m <= 5; m++ {
		d, err := redundancy.MinMultiplicity(n, eps, m)
		if err != nil {
			log.Fatal(err)
		}
		extra := d.TotalAssignments() - 2*n
		fmt.Printf("min-multiplicity %d: factor %.4f, %+.0f assignments vs simple (%.1f%%), P_k = %.2f for all k >= %d\n",
			m, d.RedundancyFactor(), extra, 100*extra/(2*n),
			redundancy.Detection(d, m), m)
	}

	// Deploy the m=2 variant and verify it end to end on the simulator
	// against an always-cheating 10% coalition.
	d, err := redundancy.MinMultiplicity(n, eps, 2)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := redundancy.PlanFor(d, eps)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := redundancy.Simulate(redundancy.SimConfig{
		Plan:                plan,
		Policy:              redundancy.PolicyFree,
		Participants:        2_000,
		AdversaryProportion: 0.10,
		Strategy:            redundancy.StrategyAlways{},
		Seed:                7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated m=2 plan vs a 10%% always-cheat coalition:\n")
	for _, pt := range rep.PerTuple {
		if pt.Cheated < 50 {
			continue
		}
		// Single-copy holdings of a >=2-multiplicity task are hopeless
		// for the adversary (P = 1); the interesting rows start at k = 2.
		fmt.Printf("  k=%d: cheats %5d, detected %5d (%.1f%%; closed form %.1f%%)\n",
			pt.K, pt.Cheated, pt.Detected,
			100*float64(pt.Detected)/float64(pt.Cheated),
			100*redundancy.DetectionAt(d, pt.K, rep.ControlledProportion))
	}
	fmt.Printf("  wrong results certified: %d of %d tasks\n", rep.WrongAccepted, rep.Tasks)
}

// Design: size a real deployment end to end. A supervisor wants an
// effective cheating-detection probability of 0.5 even if an adversary
// captures 15% of all assignments. The example inverts Proposition 3 to
// pick ε, builds and persists the plan, runs the computation on the
// in-process platform with journaling and supervisor-side dispute
// resolution enabled, then kills and restarts the supervisor mid-run to
// demonstrate recovery.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math"

	"redundancy"
)

func main() {
	const (
		targetDetection = 0.5
		adversaryShare  = 0.15
		n               = 500
	)

	// 1. Invert Proposition 3: ε = 1 − (1−δ)^{1/(1−p)}.
	eps, err := redundancy.EpsilonForEffectiveDetection(targetDetection, adversaryShare)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design target: P(detect) ≥ %.2f at p = %.2f  →  ε = %.4f\n",
		targetDetection, adversaryShare, eps)
	fmt.Printf("check: 1−(1−ε)^(1−p) = %.4f\n", redundancy.BalancedDetection(eps, adversaryShare))
	fmt.Printf("cost: %.4f assignments/task (simple redundancy: 2, no guarantee)\n\n",
		redundancy.BalancedRedundancyFactor(eps))

	// 2. Build and persist the plan.
	plan, err := redundancy.NewPlan(n, eps)
	if err != nil {
		log.Fatal(err)
	}
	var planFile bytes.Buffer
	if err := plan.Save(&planFile); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: %s (persisted: %d bytes of JSON)\n\n", plan, planFile.Len())

	// 3. First supervisor: journaled, resolution on; a worker does half
	// the work, then the supervisor goes down.
	var journal bytes.Buffer
	sup1, err := redundancy.NewSupervisor(redundancy.SupervisorConfig{
		Plan: plan, WorkKind: "primecount", Iters: 300,
		Journal: &journal, ResolveMismatches: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	addr, err := sup1.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	half := plan.TotalAssignments() / 2
	st, err := redundancy.RunWorker(redundancy.WorkerConfig{
		Addr: addr, Name: "early-bird", MaxAssignments: half,
	})
	if err != nil {
		log.Fatal(err)
	}
	sup1.Close()
	fmt.Printf("phase 1: %d of %d assignments done, supervisor stopped (journal: %d bytes)\n",
		st.Completed, plan.TotalAssignments(), journal.Len())

	// 4. Recovery: a fresh supervisor replays the journal and only the
	// remaining work is handed out — including to a colluding pair whose
	// disputes are resolved by supervisor recomputation.
	restored, err := redundancy.LoadPlan(bytes.NewReader(planFile.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	sup2, err := redundancy.NewSupervisor(redundancy.SupervisorConfig{
		Plan: restored, WorkKind: "primecount", Iters: 300,
		Journal: &journal, Restore: bytes.NewReader(journal.Bytes()),
		ResolveMismatches: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	addr2, err := sup2.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer sup2.Close()

	coalition := redundancy.NewWorkerCoalition(0.5, 99)
	done := make(chan struct{})
	for w := 0; w < 3; w++ {
		cfg := redundancy.WorkerConfig{Addr: addr2, Name: fmt.Sprintf("late-%d", w)}
		if w == 0 {
			cfg.Cheat = coalition.CheatFunc()
		}
		go func(cfg redundancy.WorkerConfig) {
			_, _ = redundancy.RunWorker(cfg)
			done <- struct{}{}
		}(cfg)
	}
	for w := 0; w < 3; w++ {
		<-done
	}
	sup2.Wait()

	sum := sup2.Summary()
	fmt.Printf("phase 2: restored %d results from the journal, finished the rest\n\n", sum.Restored)
	fmt.Printf("final state: %d tasks adjudicated, %d certified, %d disputes resolved by supervisor\n",
		sum.Verify.Tasks, sum.Verify.Accepted, sum.Resolved)
	fmt.Printf("cheats detected: %d (ringer catches %d), wrong results certified: %d\n",
		sum.Verify.MismatchDetected, sum.Verify.RingersCaught, sum.WrongResults)
	undetectable := float64(sum.WrongResults) / float64(plan.N)
	fmt.Printf("undetectable-collusion damage: %.2f%% of tasks (bounded by the ε guarantee: "+
		"each fully-held tuple escapes with probability 1−ε = %.2f)\n",
		100*undetectable, 1-eps)
	if math.IsNaN(undetectable) {
		log.Fatal("impossible")
	}
}

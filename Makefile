GO ?= go

.PHONY: all build test race cover cover-check bench bench-save bench-smoke straggler-smoke scenarios-smoke scenarios-scale tail-smoke shard-smoke figures fmt vet check chaos fuzz snapshot-smoke clean

all: build test

# The full verification gate CI runs: compile everything, vet, the whole
# test suite under the race detector (the chaos soak included), an
# uncached race pass over the concurrency-heavy platform package, the
# compaction-restore timing smoke, the per-package coverage floor, a
# quick contention-benchmark smoke run, and short fuzz bursts on both
# wire codecs.
check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -race -count=1 ./internal/platform/...
	$(MAKE) snapshot-smoke
	$(MAKE) straggler-smoke
	$(MAKE) scenarios-smoke
	$(MAKE) tail-smoke
	$(MAKE) shard-smoke
	$(MAKE) cover-check
	$(MAKE) bench-smoke
	$(MAKE) fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -coverprofile=cover.out ./internal/... .
	$(GO) tool cover -func=cover.out | tail -1

# Per-package coverage floor for the packages that carry the paper's math
# and the wire protocol. A new feature that lands without tests drops the
# percentage and fails the gate.
COVER_FLOOR ?= 75.0

cover-check:
	@for pkg in ./internal/dist ./internal/platform ./internal/adapt ./internal/health ./internal/sim ./internal/adversary ./internal/ring ./internal/stats; do \
		$(GO) test -coverprofile=cover-check.out $$pkg >/dev/null || exit 1; \
		pct=$$($(GO) tool cover -func=cover-check.out | tail -1 | awk '{sub(/%/, "", $$3); print $$3}'); \
		echo "coverage $$pkg: $$pct% (floor $(COVER_FLOOR)%)"; \
		awk -v p="$$pct" -v f="$(COVER_FLOOR)" 'BEGIN { exit (p + 0 < f + 0) }' || \
			{ echo "FAIL: $$pkg coverage $$pct% is below the $(COVER_FLOOR)% floor"; rm -f cover-check.out; exit 1; }; \
	done; rm -f cover-check.out

bench:
	$(GO) test -bench=. -benchmem ./...

# Measure the batched-leasing hot path over loopback and commit the JSON
# artifacts: assignments/sec at lease sizes 1, 16, and 64, and the same
# computation with the adaptive control plane ticking. BENCH_pr5 adds the
# concurrent-worker sweep (1, 8, 32, 128 workers at lease size 16) against
# the recorded pre-group-commit 32-worker baseline of ~40000
# assignments/sec; the acceptance bar is a >=2x speedup at 32 workers.
# BENCH_pr6 sweeps both wire codecs at a task count large enough to
# amortize setup; the bar is binary >= 2x the recorded PR5 batch-64 JSON
# baseline of ~292000 assignments/sec.
# BENCH_pr7 is the latency mode: completion-latency p50/p99/p999 per
# redundancy scheme with a straggler-mixed fleet, speculative reissue off
# vs on; the bar is speculation cutting p99 by well over half.
# BENCH_pr10 records the allocation-free tail engine: single-threaded
# completions/sec at fleet sizes 256 and 1000 (the bar is >= 10^7 at 256),
# the scheme-x-speculation sweep wall clock at 10^5/10^6/10^7 tasks, and
# the five-template 10^6 scenario suite sequential vs fanned out, against
# the recorded pre-arena PR 8 baseline of ~33s (the bar is >= 3x
# sequential, plus near-linear fan-out where cores exist).
# BENCH_pr9 is the shard sweep: the same workload and worker fleet served
# by 1, 2, and 4 consistent-hash supervisor shards with every shard
# journaling against a modeled slow durable store (3ms commit latency —
# a synchronously replicated cross-zone journal), the regime where each
# shard is an independent commit stream; the bar is 4-shard aggregate
# assignments/sec >= 2.5x the 1-shard figure at the same total worker
# count with per-shard imbalance <= 15%.
bench-save:
	$(GO) run ./cmd/platformbench -out BENCH_pr3.json
	$(GO) run ./cmd/platformbench -adapt -out BENCH_pr4.json
	$(GO) run ./cmd/platformbench -adapt -workers 1,8,32,128 -baseline-aps32 40000 -out BENCH_pr5.json
	$(GO) run ./cmd/platformbench -protos json,bin -batches 1,16,64 -n 80000 -baseline-aps 291955 -out BENCH_pr6.json
	$(GO) run ./cmd/platformbench -latency -n 600 -workers 6 -out BENCH_pr7.json
	$(GO) run ./cmd/platformbench -shards 1,2,4 -workers 64 -n 8000 -iters 10 -sweep-batch 16 -ring-vnodes 512 -commit-latency 3ms -out BENCH_pr9.json
	$(GO) run ./cmd/redsim -tail-bench BENCH_pr10.json -scale

# A fast CI-sized version of the contention benchmark: tiny task count,
# 8 concurrent workers, no artifact. Catches a supervisor that deadlocks,
# parks forever, or collapses under concurrency before the full sweep
# would ever run.
bench-smoke:
	$(GO) run ./cmd/platformbench -n 600 -iters 10 -workers 1,8 -batches 16 -sweep-batch 16

# The straggler/health acceptance tests alone, under the race detector:
# speculative first-result-wins, the disconnect/deadline reclaim overlap,
# the quarantine lifecycle, the ringer-starved probation-expiry deadlock
# regression, and the stall-mode chaos soak.
straggler-smoke:
	$(GO) test -race -run 'TestSpeculative|TestDisconnectDeadlineReclaimOverlap|TestQuarantine|TestProbationExpires|TestStallChaosSoak' -count=1 -v ./internal/platform

# The scenario lab's five pathological adversary templates at the fast
# smoke tier (10^4 tasks each): every expected counter bound, the
# seed-determinism property, and the golden counter reports. The plain
# `go test ./internal/sim` run exercises the same suite at 10^5;
# scenarios-scale pushes it to 10^6.
scenarios-smoke:
	$(GO) test -run 'TestScenario' -count=1 ./internal/sim -args -scenario-tasks 10000

scenarios-scale:
	$(GO) test -run 'TestScenarioTemplates' -count=1 -v -timeout 30m ./internal/sim -args -scale

# The tail-latency sweep smoke: the pinned JSON golden of the small sweep
# (regenerate with `go test ./internal/experiments -run TailSweepGolden
# -args -update`), the byte-identical-across-workers property for both the
# sweep and the parallel scenario suite, and the scenario lab's
# per-task allocation budget.
tail-smoke:
	$(GO) test -run 'TestTailSweep|TestScenarioSuiteWorkerInvariance|TestScenarioAllocsPerTask' -count=1 ./internal/experiments ./internal/sim

# The sharded-cluster acceptance tests at reduced scale, under the race
# detector: the 2-shard routed smoke (epoch propagation, per-shard
# counters, exact aggregation), the kill/restore chaos soak with its
# byte-identical replay and unsharded-reference equality checks, and the
# cross-shard blacklist propagation case.
shard-smoke:
	$(GO) test -race -run 'TestShardedSmoke|TestShardChaosSoak|TestShardedWorkerBanned|TestClusterPartition' -count=1 -v ./internal/platform

# The crash-tolerance acceptance test alone, under the race detector:
# full plan to certification with every fault mode injected and the
# supervisor killed and restored mid-run (see DESIGN.md §8).
chaos:
	$(GO) test -race -run TestChaosSoak -count=1 -v ./internal/platform

# Short-fuzz the wire codecs and the scenario-config surface (seed
# corpora run in every plain `go test`; this explores further for 30s
# each): FuzzCodecRecv throws hostile bytes at the JSON framing,
# FuzzBinaryCodec at the binary decoder plus the differential
# binary-equals-JSON-round-trip property, FuzzScenarioConfig hostile
# parameters (NaN, infinities, negatives) at the scenario lab — which
# must error, never panic or hang — and FuzzRingLookup hostile member
# sets and arbitrary keys at the consistent-hash ring, whose lookup must
# stay total and deterministic.
fuzz:
	$(GO) test -fuzz=FuzzCodecRecv -fuzztime=30s -run '^$$' ./internal/platform
	$(GO) test -fuzz=FuzzBinaryCodec -fuzztime=30s -run '^$$' ./internal/platform
	$(GO) test -fuzz=FuzzScenarioConfig -fuzztime=30s -run '^$$' ./internal/sim
	$(GO) test -fuzz=FuzzRingLookup -fuzztime=30s -run '^$$' ./internal/ring

# The compaction-restore timing smoke, not under the race detector (the
# race run above scales the soak down): replays a >=100k-result journal
# in full and from a snapshot, and fails unless the snapshot restore is
# byte-identical and faster.
snapshot-smoke:
	$(GO) test -run TestSnapshotSoakRestoreEquivalence -count=1 -v ./internal/platform

# Regenerate every paper table/figure (see EXPERIMENTS.md).
figures:
	$(GO) run ./cmd/figures -fig all

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

clean:
	rm -f cover.out cover-check.out test_output.txt bench_output.txt

GO ?= go

.PHONY: all build test race cover bench figures fmt vet check chaos fuzz clean

all: build test

# The full verification gate CI runs: compile everything, vet, the whole
# test suite under the race detector (the chaos soak included), and a
# short fuzz burst on the wire codec.
check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...
	$(MAKE) fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -coverprofile=cover.out ./internal/... .
	$(GO) tool cover -func=cover.out | tail -1

bench:
	$(GO) test -bench=. -benchmem ./...

# The crash-tolerance acceptance test alone, under the race detector:
# full plan to certification with every fault mode injected and the
# supervisor killed and restored mid-run (see DESIGN.md §8).
chaos:
	$(GO) test -race -run TestChaosSoak -count=1 -v ./internal/platform

# Short-fuzz the wire codec against hostile bytes (seed corpus runs in
# every plain `go test`; this explores further for 30s).
fuzz:
	$(GO) test -fuzz=FuzzCodecRecv -fuzztime=30s -run '^$$' ./internal/platform

# Regenerate every paper table/figure (see EXPERIMENTS.md).
figures:
	$(GO) run ./cmd/figures -fig all

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

clean:
	rm -f cover.out test_output.txt bench_output.txt

GO ?= go

.PHONY: all build test race cover bench figures fmt vet check clean

all: build test

# The full verification gate CI runs: compile everything, vet, and the
# whole test suite under the race detector.
check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -coverprofile=cover.out ./internal/... .
	$(GO) tool cover -func=cover.out | tail -1

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper table/figure (see EXPERIMENTS.md).
figures:
	$(GO) run ./cmd/figures -fig all

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

clean:
	rm -f cover.out test_output.txt bench_output.txt

// Command platformbench measures the wire-protocol hot path: it runs the
// same computation to completion over loopback at several lease sizes and
// reports assignments per second for each. With one round trip per
// assignment (-batch 1, the legacy protocol) the run is RTT-bound; batched
// leasing amortizes that round trip over the whole lease, and this tool
// quantifies the speedup on the machine it runs on.
//
// Usage:
//
//	platformbench                       # print the table
//	platformbench -out BENCH_pr3.json   # also write the JSON artifact
//	platformbench -adapt -out BENCH_pr4.json  # plus an adaptive-control run
//
// `make bench-save` runs the committed configurations.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"redundancy"
	"redundancy/internal/dist"
	"redundancy/internal/plan"
)

type result struct {
	Batch             int     `json:"batch"`
	Assignments       int     `json:"assignments"`
	Seconds           float64 `json:"seconds"`
	AssignmentsPerSec float64 `json:"assignments_per_sec"`
	Adaptive          bool    `json:"adaptive,omitempty"`
	Revisions         int     `json:"revisions,omitempty"`
}

type report struct {
	GoVersion   string   `json:"go_version"`
	GOOS        string   `json:"goos"`
	GOARCH      string   `json:"goarch"`
	Tasks       int      `json:"tasks"`
	Iters       int      `json:"iters"`
	Workers     int      `json:"workers"`
	Results     []result `json:"results"`
	SpeedupVs1  float64  `json:"speedup_max_batch_vs_1"`
	Speedup16   float64  `json:"speedup_batch16_vs_1"`
	// Adaptive, when -adapt is set, is the same computation with the
	// adaptive control plane ticking; AdaptiveOverheadPct compares its
	// throughput against the plain run at the same lease size.
	Adaptive            *result `json:"adaptive,omitempty"`
	AdaptiveOverheadPct float64 `json:"adaptive_overhead_pct,omitempty"`
	GeneratedAt         string  `json:"generated_at"`
}

func main() {
	n := flag.Int("n", 2000, "tasks per run (multiplicity 1 plus ringers)")
	iters := flag.Int("iters", 1, "work-function iterations; 1 keeps runs RTT-bound")
	workers := flag.Int("workers", 1, "concurrent workers per run (1 isolates the per-round-trip cost)")
	batches := flag.String("batches", "1,16,64", "comma-separated lease sizes to measure")
	adaptRun := flag.Bool("adapt", false, "also measure a run with the adaptive control plane ticking (at the largest lease size)")
	out := flag.String("out", "", "also write the JSON report to this file (empty = stdout table only)")
	flag.Parse()

	var sizes []int
	for _, f := range strings.Split(*batches, ",") {
		b, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || b < 1 {
			log.Fatalf("platformbench: bad -batches entry %q", f)
		}
		sizes = append(sizes, b)
	}

	rep := report{
		GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		Tasks: *n, Iters: *iters, Workers: *workers,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
	}
	fmt.Printf("%-8s %-14s %-10s %s\n", "batch", "assignments", "seconds", "assignments/sec")
	for _, b := range sizes {
		r, err := run(*n, *iters, *workers, b, false)
		if err != nil {
			log.Fatalf("platformbench: batch %d: %v", b, err)
		}
		rep.Results = append(rep.Results, r)
		fmt.Printf("%-8d %-14d %-10.3f %.0f\n", r.Batch, r.Assignments, r.Seconds, r.AssignmentsPerSec)
	}

	base := rep.Results[0]
	for _, r := range rep.Results {
		if r.Batch == 1 {
			base = r
		}
	}
	for _, r := range rep.Results {
		if s := r.AssignmentsPerSec / base.AssignmentsPerSec; s > rep.SpeedupVs1 {
			rep.SpeedupVs1 = s
		}
		if r.Batch == 16 {
			rep.Speedup16 = r.AssignmentsPerSec / base.AssignmentsPerSec
		}
	}
	fmt.Printf("\nspeedup vs batch 1: %.2fx (batch 16: %.2fx)\n", rep.SpeedupVs1, rep.Speedup16)

	if *adaptRun {
		ab := sizes[len(sizes)-1]
		r, err := run(*n, *iters, *workers, ab, true)
		if err != nil {
			log.Fatalf("platformbench: adaptive batch %d: %v", ab, err)
		}
		rep.Adaptive = &r
		for _, plain := range rep.Results {
			if plain.Batch == ab && plain.AssignmentsPerSec > 0 {
				rep.AdaptiveOverheadPct = (1 - r.AssignmentsPerSec/plain.AssignmentsPerSec) * 100
			}
		}
		fmt.Printf("adaptive (batch %d): %d assignments in %.3fs, %.0f/sec, %d revision(s), overhead %.1f%%\n",
			r.Batch, r.Assignments, r.Seconds, r.AssignmentsPerSec, r.Revisions, rep.AdaptiveOverheadPct)
	}

	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

// run drives one full computation over loopback at the given lease size
// and returns its throughput. With adaptive set, the control plane ticks
// throughout the run: honest workers keep p̂ near zero, so this measures
// the estimator/controller overhead on the hot path, not re-planning.
func run(n, iters, workers, batch int, adaptive bool) (result, error) {
	p, err := plan.FromDistribution(dist.Simple(float64(n)), 0.5)
	if err != nil {
		return result{}, err
	}
	cfg := redundancy.SupervisorConfig{
		Plan: p, WorkKind: "hashchain", Iters: iters, Seed: 1, MaxBatch: batch,
	}
	if adaptive {
		cfg.Adapt = &redundancy.AdaptConfig{
			TargetEpsilon: 0.5, Interval: 5 * time.Millisecond, MinSamples: 32,
		}
	}
	sup, err := redundancy.NewSupervisor(cfg)
	if err != nil {
		return result{}, err
	}
	defer sup.Close()
	addr, err := sup.Start("127.0.0.1:0")
	if err != nil {
		return result{}, err
	}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := redundancy.RunWorker(redundancy.WorkerConfig{
				Addr: addr, Name: fmt.Sprintf("bench-%d", i),
				BatchSize: batch, Seed: uint64(i + 1),
			})
			if err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	sup.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return result{}, err
	}

	total := p.TotalAssignments() // includes copies a revision added mid-run
	return result{
		Batch:             batch,
		Assignments:       total,
		Seconds:           elapsed.Seconds(),
		AssignmentsPerSec: float64(total) / elapsed.Seconds(),
		Adaptive:          adaptive,
		Revisions:         sup.RevisionsApplied(),
	}, nil
}

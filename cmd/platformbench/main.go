// Command platformbench measures the wire-protocol hot path along two
// axes. The batch sweep runs the same computation to completion over
// loopback at several lease sizes with a fixed worker count and reports
// assignments per second for each: with one round trip per assignment
// (-batch 1, the legacy protocol) the run is RTT-bound, and batched
// leasing amortizes that round trip over the whole lease. The worker
// sweep holds the lease size fixed and scales the number of concurrent
// workers (-workers accepts a comma-separated list), reporting
// assignments per second plus p50/p99 lease latency per step — the axis
// where supervisor lock contention lives or dies.
//
// Usage:
//
//	platformbench                                 # batch sweep table
//	platformbench -workers 1,8,32,128             # plus the worker sweep
//	platformbench -out BENCH_pr5.json             # also write the artifact
//	platformbench -adapt                          # plus an adaptive run
//	platformbench -baseline-aps32 41000           # embed pre-change ref
//
// `make bench-save` runs the committed configurations.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"redundancy"
	"redundancy/internal/dist"
	"redundancy/internal/plan"
)

type result struct {
	Batch             int     `json:"batch"`
	Proto             string  `json:"proto,omitempty"`
	Assignments       int     `json:"assignments"`
	Seconds           float64 `json:"seconds"`
	AssignmentsPerSec float64 `json:"assignments_per_sec"`
	Adaptive          bool    `json:"adaptive,omitempty"`
	Revisions         int     `json:"revisions,omitempty"`
}

// latencyResult is one run of the latency mode: a full computation under
// a straggler-mixed fleet, reporting completion-latency percentiles (the
// copy's first issue to its acceptance, the supervisor-side view) with
// speculative reissue off or on.
type latencyResult struct {
	Scheme      string  `json:"scheme"`
	Speculative bool    `json:"speculative"`
	Assignments int     `json:"assignments"`
	Seconds     float64 `json:"seconds"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
	P999Ms      float64 `json:"p999_ms"`
	// Clone accounting for the speculative runs: issued duplicates, races
	// the clone won, and duplicate results adjudicated as wasted.
	SpeculativeIssued float64 `json:"speculative_issued,omitempty"`
	SpeculativeWins   float64 `json:"speculative_wins,omitempty"`
	SpeculativeWasted float64 `json:"speculative_wasted,omitempty"`
	// P99CutPct, on speculative rows, is how much of the off-run's p99 the
	// speculative run removed (positive = faster).
	P99CutPct float64 `json:"p99_cut_vs_off_pct,omitempty"`
}

// sweepResult is one step of the worker sweep: the same workload run with
// a given number of concurrent workers, with lease-latency percentiles
// observed from the worker side (WorkerConfig.OnLeaseRTT).
type sweepResult struct {
	Workers           int     `json:"workers"`
	Batch             int     `json:"batch"`
	Assignments       int     `json:"assignments"`
	Seconds           float64 `json:"seconds"`
	AssignmentsPerSec float64 `json:"assignments_per_sec"`
	LeaseP50Micros    float64 `json:"lease_p50_us"`
	LeaseP99Micros    float64 `json:"lease_p99_us"`
}

// shardResult is one step of the shard sweep: the same plan and total
// worker count served by a consistent-hash cluster of the given shard
// count, with the per-shard adjudicated-assignment imbalance from the
// aggregator's merged export.
type shardResult struct {
	Shards            int     `json:"shards"`
	Workers           int     `json:"workers"`
	Batch             int     `json:"batch"`
	Assignments       int     `json:"assignments"`
	Seconds           float64 `json:"seconds"`
	AssignmentsPerSec float64 `json:"assignments_per_sec"`
	ImbalancePct      float64 `json:"per_shard_imbalance_pct"`
	SpeedupVs1Shard   float64 `json:"speedup_vs_1_shard,omitempty"`
}

type report struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	Tasks     int    `json:"tasks"`
	Iters     int    `json:"iters"`
	// Workers is the worker count of the batch sweep (the first -workers
	// entry) — the field earlier BENCH_pr*.json artifacts carry, kept for
	// trajectory comparison.
	Workers    int      `json:"workers"`
	Results    []result `json:"results,omitempty"`
	SpeedupVs1 float64  `json:"speedup_max_batch_vs_1,omitempty"`
	Speedup16  float64  `json:"speedup_batch16_vs_1,omitempty"`
	// BinVsJSONMaxBatch divides the binary codec's throughput by JSON's at
	// the largest lease size the -protos sweep ran both codecs at.
	BinVsJSONMaxBatch float64 `json:"bin_vs_json_speedup_max_batch,omitempty"`
	// BaselineAPS is a recorded pre-change assignments/sec figure at the
	// largest lease size (passed in via -baseline-aps so the artifact
	// carries both sides of the comparison); SpeedupVsBaseline divides the
	// binary codec's max-batch throughput by it.
	BaselineAPS       float64 `json:"baseline_assignments_per_sec,omitempty"`
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline,omitempty"`
	// WorkerSweep scales concurrent workers at a fixed lease size; one
	// entry per -workers value, with lease-latency percentiles.
	WorkerSweep []sweepResult `json:"worker_sweep,omitempty"`
	// BaselineAPS32 is the pre-change supervisor's assignments/sec at 32
	// workers on the same workload (passed in via -baseline-aps32 so the
	// artifact records both sides of the comparison); SpeedupVsBaseline32
	// divides this run's 32-worker throughput by it.
	BaselineAPS32       float64 `json:"baseline_assignments_per_sec_32_workers,omitempty"`
	SpeedupVsBaseline32 float64 `json:"speedup_vs_baseline_32_workers,omitempty"`
	// Adaptive, when -adapt is set, is the same computation with the
	// adaptive control plane ticking; AdaptiveOverheadPct compares its
	// throughput against the plain run at the same lease size.
	Adaptive            *result `json:"adaptive,omitempty"`
	AdaptiveOverheadPct float64 `json:"adaptive_overhead_pct,omitempty"`
	// ShardSweep, when -shards is set, holds the sharded-cluster scaling
	// runs: the same workload and total worker count served by 1..N
	// supervisor shards on a consistent-hash ring.
	ShardSweep []shardResult `json:"shard_sweep,omitempty"`
	// ShardSpeedupMaxVs1 divides the largest shard count's aggregate
	// throughput by the 1-shard run's (both measured in this sweep).
	ShardSpeedupMaxVs1 float64 `json:"shard_speedup_max_vs_1,omitempty"`
	RingVNodes         int     `json:"ring_vnodes,omitempty"`
	// CommitLatencyMS, when nonzero, is the modeled journal commit
	// latency every shard (including the 1-shard baseline) ran with:
	// the sweep then measures durability-bound coordination throughput,
	// the regime where per-shard journals are independent commit streams.
	CommitLatencyMS float64 `json:"shard_commit_latency_ms,omitempty"`
	// LatencySweep, when -latency is set, holds per-scheme completion
	// latency percentiles under a straggler mix, speculation off vs on.
	LatencySweep []latencyResult `json:"latency_sweep,omitempty"`
	// Latency-mode knobs, recorded so the artifact is self-describing.
	StragglerP       float64 `json:"straggler_p,omitempty"`
	StragglerDelayMs float64 `json:"straggler_delay_ms,omitempty"`
	SpeculatePct     float64 `json:"speculate_pct,omitempty"`
	DeadlineMs       float64 `json:"deadline_ms,omitempty"`
	GeneratedAt      string  `json:"generated_at"`
}

func parseIntList(flagName, s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 1 {
			log.Fatalf("platformbench: bad %s entry %q", flagName, f)
		}
		out = append(out, v)
	}
	return out
}

func main() {
	n := flag.Int("n", 2000, "tasks per run (multiplicity 1 plus ringers)")
	iters := flag.Int("iters", 1, "work-function iterations; 1 keeps runs RTT-bound")
	workersFlag := flag.String("workers", "1", "comma-separated concurrent-worker counts; the first runs the batch sweep, the full list runs the worker sweep")
	batches := flag.String("batches", "1,16,64", "comma-separated lease sizes for the batch sweep")
	sweepBatch := flag.Int("sweep-batch", 16, "lease size held fixed during the worker sweep")
	protosFlag := flag.String("protos", "json", "comma-separated wire codecs for the batch sweep (json, bin)")
	adaptRun := flag.Bool("adapt", false, "also measure a run with the adaptive control plane ticking (at the largest lease size)")
	baselineAPS32 := flag.Float64("baseline-aps32", 0, "pre-change assignments/sec at 32 workers, recorded in the artifact for comparison")
	baselineAPS := flag.Float64("baseline-aps", 0, "pre-change assignments/sec at the largest lease size; the binary codec's throughput is compared against it")
	latency := flag.Bool("latency", false, "latency mode: completion-latency percentiles per -schemes under a straggler mix, speculation off vs on (skips the throughput sweeps)")
	schemesFlag := flag.String("schemes", "simple,balanced", "comma-separated redundancy schemes for -latency (simple, balanced)")
	stragglerP := flag.Float64("straggler-p", 0.02, "latency mode: per-assignment straggler probability in the worker speed model")
	stragglerDelay := flag.Duration("straggler-delay", 600*time.Millisecond, "latency mode: extra delay a straggler episode adds")
	speedBase := flag.Duration("speed-base", 2*time.Millisecond, "latency mode: base compute time per assignment")
	speedJitter := flag.Duration("speed-jitter", time.Millisecond, "latency mode: uniform extra delay in [0, jitter) per assignment")
	deadlineFlag := flag.Duration("deadline", 800*time.Millisecond, "latency mode: supervisor lease deadline (the sweeper that drives speculation runs at a quarter of it)")
	speculatePct := flag.Float64("speculate-pct", 0.85, "latency mode: completion-time percentile past which a live lease is speculatively cloned (for the spec-on runs)")
	shardsFlag := flag.String("shards", "", "shard mode: comma-separated supervisor shard counts (e.g. 1,2,4); runs the whole workload per count with the first -workers entry as the TOTAL worker count, skipping the other sweeps")
	ringVNodes := flag.Int("ring-vnodes", 0, "virtual nodes per shard on the consistent-hash ring (0 = library default)")
	commitLatency := flag.Duration("commit-latency", 0, "shard mode: journal every shard (inline appends, no group commit) and model this much commit latency per append — a slow durable store; the regime where shards are independent commit streams")
	journal := flag.String("journal", "", "journal accepted results to this file during every run (exercises the group-commit path; file is truncated per run)")
	journalSync := flag.Bool("journal-sync", false, "fsync journal records before acking (requires -journal)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the whole sweep to this file")
	out := flag.String("out", "", "also write the JSON report to this file (empty = stdout table only)")
	flag.Parse()

	sizes := parseIntList("-batches", *batches)
	workerCounts := parseIntList("-workers", *workersFlag)
	var protos []string
	for _, p := range strings.Split(*protosFlag, ",") {
		p = strings.TrimSpace(p)
		if p != "json" && p != "bin" {
			log.Fatalf("platformbench: bad -protos entry %q (want json or bin)", p)
		}
		protos = append(protos, p)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	rc := runConfig{journal: *journal, journalSync: *journalSync}
	rep := report{
		GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		NumCPU: runtime.NumCPU(),
		Tasks:  *n, Iters: *iters, Workers: workerCounts[0],
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
	}
	if *shardsFlag != "" {
		rep.RingVNodes = *ringVNodes
		rep.CommitLatencyMS = float64(commitLatency.Microseconds()) / 1000
		fmt.Printf("%-8s %-8s %-8s %-14s %-10s %-16s %-12s %s\n",
			"shards", "workers", "batch", "assignments", "seconds", "assignments/sec", "imbalance%", "speedup vs 1")
		for _, w := range workerCounts {
			var oneShard float64
			for _, s := range parseIntList("-shards", *shardsFlag) {
				r, err := runShardCluster(*n, *iters, w, *sweepBatch, s, *ringVNodes, *commitLatency)
				if err != nil {
					log.Fatalf("platformbench: %d shards x %d workers: %v", s, w, err)
				}
				if s == 1 {
					oneShard = r.AssignmentsPerSec
				}
				if oneShard > 0 && s > 1 {
					r.SpeedupVs1Shard = r.AssignmentsPerSec / oneShard
					if r.SpeedupVs1Shard > rep.ShardSpeedupMaxVs1 {
						rep.ShardSpeedupMaxVs1 = r.SpeedupVs1Shard
					}
				}
				rep.ShardSweep = append(rep.ShardSweep, r)
				fmt.Printf("%-8d %-8d %-8d %-14d %-10.3f %-16.0f %-12.1f %.2fx\n",
					r.Shards, r.Workers, r.Batch, r.Assignments, r.Seconds,
					r.AssignmentsPerSec, r.ImbalancePct, r.SpeedupVs1Shard)
			}
		}
		writeReport(*out, rep)
		return
	}

	if *latency {
		lc := latencyConfig{
			stragglerP: *stragglerP, stragglerDelay: *stragglerDelay,
			base: *speedBase, jitter: *speedJitter,
			deadline: *deadlineFlag, speculatePct: *speculatePct,
		}
		rep.StragglerP = lc.stragglerP
		rep.StragglerDelayMs = lc.stragglerDelay.Seconds() * 1e3
		rep.SpeculatePct = lc.speculatePct
		rep.DeadlineMs = lc.deadline.Seconds() * 1e3
		fmt.Printf("%-10s %-6s %-14s %-10s %-10s %-10s %-10s %s\n",
			"scheme", "spec", "assignments", "seconds", "p50 ms", "p99 ms", "p999 ms", "clones (won/wasted)")
		for _, scheme := range strings.Split(*schemesFlag, ",") {
			scheme = strings.TrimSpace(scheme)
			var off latencyResult
			for _, spec := range []bool{false, true} {
				r, err := lc.run(scheme, *n, *iters, workerCounts[0], spec)
				if err != nil {
					log.Fatalf("platformbench: latency %s spec=%v: %v", scheme, spec, err)
				}
				if spec {
					if off.P99Ms > 0 {
						r.P99CutPct = (1 - r.P99Ms/off.P99Ms) * 100
					}
				} else {
					off = r
				}
				rep.LatencySweep = append(rep.LatencySweep, r)
				fmt.Printf("%-10s %-6v %-14d %-10.3f %-10.2f %-10.2f %-10.2f %.0f (%.0f/%.0f)\n",
					r.Scheme, r.Speculative, r.Assignments, r.Seconds,
					r.P50Ms, r.P99Ms, r.P999Ms,
					r.SpeculativeIssued, r.SpeculativeWins, r.SpeculativeWasted)
				if spec && r.P99CutPct != 0 {
					fmt.Printf("%-10s speculation cut p99 by %.1f%%\n", r.Scheme, r.P99CutPct)
				}
			}
		}
		writeReport(*out, rep)
		return
	}

	fmt.Printf("%-8s %-8s %-14s %-10s %s\n", "proto", "batch", "assignments", "seconds", "assignments/sec")
	for _, proto := range protos {
		for _, b := range sizes {
			r, _, err := rc.run(*n, *iters, workerCounts[0], b, proto, false)
			if err != nil {
				log.Fatalf("platformbench: proto %s batch %d: %v", proto, b, err)
			}
			rep.Results = append(rep.Results, r)
			fmt.Printf("%-8s %-8d %-14d %-10.3f %.0f\n", r.Proto, r.Batch, r.Assignments, r.Seconds, r.AssignmentsPerSec)
		}
	}

	// Speedups within the first codec's sweep (batch-amortization trend,
	// comparable to earlier BENCH_pr*.json artifacts).
	base := rep.Results[0]
	for _, r := range rep.Results {
		if r.Batch == 1 && r.Proto == protos[0] {
			base = r
		}
	}
	for _, r := range rep.Results {
		if r.Proto != protos[0] {
			continue
		}
		if s := r.AssignmentsPerSec / base.AssignmentsPerSec; s > rep.SpeedupVs1 {
			rep.SpeedupVs1 = s
		}
		if r.Batch == 16 {
			rep.Speedup16 = r.AssignmentsPerSec / base.AssignmentsPerSec
		}
	}
	fmt.Printf("\nspeedup vs batch 1: %.2fx (batch 16: %.2fx)\n", rep.SpeedupVs1, rep.Speedup16)

	// Codec comparison at the largest shared lease size.
	maxBatch := sizes[len(sizes)-1]
	var jsonAPS, binAPS float64
	for _, r := range rep.Results {
		if r.Batch != maxBatch {
			continue
		}
		switch r.Proto {
		case "json":
			jsonAPS = r.AssignmentsPerSec
		case "bin":
			binAPS = r.AssignmentsPerSec
		}
	}
	if jsonAPS > 0 && binAPS > 0 {
		rep.BinVsJSONMaxBatch = binAPS / jsonAPS
		fmt.Printf("binary vs JSON at batch %d: %.2fx\n", maxBatch, rep.BinVsJSONMaxBatch)
	}
	if *baselineAPS > 0 && binAPS > 0 {
		rep.BaselineAPS = *baselineAPS
		rep.SpeedupVsBaseline = binAPS / *baselineAPS
		fmt.Printf("binary at batch %d vs recorded baseline (%.0f/sec): %.2fx\n",
			maxBatch, rep.BaselineAPS, rep.SpeedupVsBaseline)
	}

	if len(workerCounts) > 1 {
		fmt.Printf("\n%-8s %-8s %-14s %-16s %-12s %s\n",
			"workers", "batch", "assignments", "assignments/sec", "p50 lease", "p99 lease")
		for _, w := range workerCounts {
			r, lat, err := rc.run(*n, *iters, w, *sweepBatch, protos[0], false)
			if err != nil {
				log.Fatalf("platformbench: %d workers: %v", w, err)
			}
			sr := sweepResult{
				Workers: w, Batch: r.Batch, Assignments: r.Assignments,
				Seconds: r.Seconds, AssignmentsPerSec: r.AssignmentsPerSec,
				LeaseP50Micros: lat.p50.Seconds() * 1e6,
				LeaseP99Micros: lat.p99.Seconds() * 1e6,
			}
			rep.WorkerSweep = append(rep.WorkerSweep, sr)
			fmt.Printf("%-8d %-8d %-14d %-16.0f %-12v %v\n",
				w, sr.Batch, sr.Assignments, sr.AssignmentsPerSec, lat.p50, lat.p99)
			if w == 32 && *baselineAPS32 > 0 {
				rep.BaselineAPS32 = *baselineAPS32
				rep.SpeedupVsBaseline32 = sr.AssignmentsPerSec / *baselineAPS32
			}
		}
		if rep.SpeedupVsBaseline32 > 0 {
			fmt.Printf("\n32-worker speedup vs pre-change baseline (%.0f/sec): %.2fx\n",
				rep.BaselineAPS32, rep.SpeedupVsBaseline32)
		}
	}

	if *adaptRun {
		ab := sizes[len(sizes)-1]
		r, _, err := rc.run(*n, *iters, workerCounts[0], ab, protos[0], true)
		if err != nil {
			log.Fatalf("platformbench: adaptive batch %d: %v", ab, err)
		}
		rep.Adaptive = &r
		for _, plain := range rep.Results {
			if plain.Batch == ab && plain.AssignmentsPerSec > 0 {
				rep.AdaptiveOverheadPct = (1 - r.AssignmentsPerSec/plain.AssignmentsPerSec) * 100
			}
		}
		fmt.Printf("adaptive (batch %d): %d assignments in %.3fs, %.0f/sec, %d revision(s), overhead %.1f%%\n",
			r.Batch, r.Assignments, r.Seconds, r.AssignmentsPerSec, r.Revisions, rep.AdaptiveOverheadPct)
	}

	writeReport(*out, rep)
}

func writeReport(path string, rep report) {
	if path == "" {
		return
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

// latencyConfig carries the latency-mode knobs: the fleet's heterogeneous
// speed model and the supervisor's speculation settings.
type latencyConfig struct {
	stragglerP     float64
	stragglerDelay time.Duration
	base, jitter   time.Duration
	deadline       time.Duration
	speculatePct   float64
}

// run drives one full computation with a straggler-mixed fleet and
// returns supervisor-side completion-latency percentiles. The off and on
// runs differ only in SpeculatePct, so the p99 delta is the speculative
// tier's doing; the deadline sweeper (a cruder straggler remedy) runs in
// both.
func (lc latencyConfig) run(scheme string, n, iters, workers int, spec bool) (latencyResult, error) {
	var p *plan.Plan
	var err error
	switch scheme {
	case "simple":
		p, err = plan.FromDistribution(dist.Simple(float64(n)), 0.5)
	case "balanced":
		p, err = plan.Balanced(n, 0.5)
	default:
		return latencyResult{}, fmt.Errorf("unknown scheme %q (want simple or balanced)", scheme)
	}
	if err != nil {
		return latencyResult{}, err
	}
	reg := redundancy.NewMetricsRegistry()
	cfg := redundancy.SupervisorConfig{
		Plan: p, WorkKind: "hashchain", Iters: iters, Seed: 1, MaxBatch: 2,
		Metrics:  reg,
		Deadline: lc.deadline,
		// The health roster's latency window is the percentile source; size
		// it to hold every completion so p999 is exact, not windowed.
		Health: &redundancy.HealthConfig{LatencyWindow: p.TotalAssignments() + 1024},
	}
	if spec {
		cfg.SpeculatePct = lc.speculatePct
	}
	sup, err := redundancy.NewSupervisor(cfg)
	if err != nil {
		return latencyResult{}, err
	}
	defer sup.Close()
	addr, err := sup.Start("127.0.0.1:0")
	if err != nil {
		return latencyResult{}, err
	}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wc := redundancy.WorkerConfig{
				Addr: addr, Name: fmt.Sprintf("bench-%d", i),
				BatchSize: 2, Seed: uint64(i + 1),
				// Tolerate a lease reclaimed mid-straggle (the copy is someone
				// else's now) instead of dying on the rejected ack.
				Reconnect: true,
				Speed: &redundancy.SpeedModel{
					Base: lc.base, Jitter: lc.jitter,
					StragglerP: lc.stragglerP, StragglerDelay: lc.stragglerDelay,
				},
			}
			if _, err := redundancy.RunWorker(wc); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	sup.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return latencyResult{}, err
	}

	quant := func(q float64) float64 {
		d, ok := sup.CompletionQuantile(q)
		if !ok {
			return 0
		}
		return d.Seconds() * 1e3
	}
	snap := reg.Snapshot()
	counter := func(name string) float64 {
		v, _ := snap.Value(name)
		return v
	}
	return latencyResult{
		Scheme:            scheme,
		Speculative:       spec,
		Assignments:       p.TotalAssignments(),
		Seconds:           elapsed.Seconds(),
		P50Ms:             quant(0.50),
		P99Ms:             quant(0.99),
		P999Ms:            quant(0.999),
		SpeculativeIssued: counter("redundancy_speculative_issued_total"),
		SpeculativeWins:   counter("redundancy_speculative_wins_total"),
		SpeculativeWasted: counter("redundancy_speculative_wasted_total"),
	}, nil
}

// latencySummary holds lease-latency percentiles over one run.
type latencySummary struct{ p50, p99 time.Duration }

// latencyRecorder collects per-lease round-trip samples from every worker
// goroutine of a run.
type latencyRecorder struct {
	mu      sync.Mutex
	samples []time.Duration
}

func (l *latencyRecorder) observe(d time.Duration) {
	l.mu.Lock()
	l.samples = append(l.samples, d)
	l.mu.Unlock()
}

// summary computes p50/p99 by nearest-rank over the collected samples.
func (l *latencyRecorder) summary() latencySummary {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.samples) == 0 {
		return latencySummary{}
	}
	sort.Slice(l.samples, func(i, j int) bool { return l.samples[i] < l.samples[j] })
	rank := func(q float64) time.Duration {
		i := int(q * float64(len(l.samples)-1))
		return l.samples[i]
	}
	return latencySummary{p50: rank(0.50), p99: rank(0.99)}
}

// runConfig carries the per-invocation knobs shared by every run.
type runConfig struct {
	journal     string
	journalSync bool
}

// run drives one full computation over loopback at the given lease size
// and worker count and returns its throughput plus lease-latency
// percentiles. With adaptive set, the control plane ticks throughout the
// run: honest workers keep p̂ near zero, so this measures the
// estimator/controller overhead on the hot path, not re-planning.
func (rc runConfig) run(n, iters, workers, batch int, proto string, adaptive bool) (result, latencySummary, error) {
	p, err := plan.FromDistribution(dist.Simple(float64(n)), 0.5)
	if err != nil {
		return result{}, latencySummary{}, err
	}
	cfg := redundancy.SupervisorConfig{
		Plan: p, WorkKind: "hashchain", Iters: iters, Seed: 1, MaxBatch: batch,
	}
	if rc.journal != "" {
		f, err := os.Create(rc.journal)
		if err != nil {
			return result{}, latencySummary{}, err
		}
		defer f.Close()
		cfg.Journal = f
		cfg.JournalSync = rc.journalSync
		cfg.GroupCommit = true
	}
	if adaptive {
		cfg.Adapt = &redundancy.AdaptConfig{
			TargetEpsilon: 0.5, Interval: 5 * time.Millisecond, MinSamples: 32,
		}
	}
	sup, err := redundancy.NewSupervisor(cfg)
	if err != nil {
		return result{}, latencySummary{}, err
	}
	defer sup.Close()
	addr, err := sup.Start("127.0.0.1:0")
	if err != nil {
		return result{}, latencySummary{}, err
	}

	lat := &latencyRecorder{samples: make([]time.Duration, 0, 2*n)}
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wc := redundancy.WorkerConfig{
				Addr: addr, Name: fmt.Sprintf("bench-%d", i),
				BatchSize: batch, Seed: uint64(i + 1),
				OnLeaseRTT: lat.observe,
			}
			if proto == "bin" {
				wc.Proto = proto
			}
			_, err := redundancy.RunWorker(wc)
			if err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	sup.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return result{}, latencySummary{}, err
	}

	total := p.TotalAssignments() // includes copies a revision added mid-run
	return result{
		Batch:             batch,
		Proto:             proto,
		Assignments:       total,
		Seconds:           elapsed.Seconds(),
		AssignmentsPerSec: float64(total) / elapsed.Seconds(),
		Adaptive:          adaptive,
		Revisions:         sup.RevisionsApplied(),
	}, lat.summary(), nil
}

// runShardCluster drives one full computation through a consistent-hash
// cluster of the given shard count: the plan's task IDs partition across
// shards by ring lookup, the worker fleet routes with RunShardedWorker
// (home shard first), and the aggregator's merged export supplies the
// per-shard adjudicated-assignment imbalance. The total worker count is
// held fixed across shard counts, so the sweep isolates what sharding
// itself buys: less contention per supervisor, same fleet, same work.
func runShardCluster(n, iters, workers, batch, shards, vnodes int, commitLatency time.Duration) (shardResult, error) {
	p, err := plan.FromDistribution(dist.Simple(float64(n)), 0.5)
	if err != nil {
		return shardResult{}, err
	}
	ccfg := redundancy.ClusterConfig{
		Plan: p, Shards: shards, VNodes: vnodes, Seed: 1,
		WorkKind: "hashchain", Iters: iters, MaxBatch: batch,
	}
	if commitLatency > 0 {
		dir, err := os.MkdirTemp("", "platformbench-shards")
		if err != nil {
			return shardResult{}, err
		}
		defer os.RemoveAll(dir)
		ccfg.JournalDir = dir
		ccfg.CommitLatency = commitLatency
	}
	c, err := redundancy.NewCluster(ccfg)
	if err != nil {
		return shardResult{}, err
	}
	defer c.Close()

	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := redundancy.RunShardedWorker(redundancy.WorkerConfig{
				Name: fmt.Sprintf("bench-%d", i), BatchSize: batch,
				Seed: uint64(i + 1), Proto: redundancy.ProtoBinary,
			}, c.ShardMap)
			if err != nil {
				errs <- err
			}
		}(i)
	}
	c.Wait()
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return shardResult{}, err
	}

	merged := c.Aggregate()
	total := p.TotalAssignments()
	if merged.Assignments != total {
		return shardResult{}, fmt.Errorf("cluster adjudicated %d of %d assignments", merged.Assignments, total)
	}
	return shardResult{
		Shards:            shards,
		Workers:           workers,
		Batch:             batch,
		Assignments:       total,
		Seconds:           elapsed.Seconds(),
		AssignmentsPerSec: float64(total) / elapsed.Seconds(),
		ImbalancePct:      merged.ImbalancePct,
	}, nil
}

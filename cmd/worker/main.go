// Command worker is a platform participant: it connects to a supervisor,
// registers, downloads assignments, executes the work function locally,
// and returns results until the computation completes.
//
// Usage:
//
//	worker -addr 127.0.0.1:9090 -name alice
//	worker -addr 127.0.0.1:9090 -name mallory -cheat 1.0 -cheatseed 7
//
// Multiple workers started with the same -cheat probability and -cheatseed
// collude: they return identical incorrect values, modeling the paper's
// coalition adversary.
//
// By default the worker survives connection failures (-reconnect): it
// redials with exponential backoff, resumes its identity with the token
// the supervisor minted at registration, and picks its in-flight
// assignment back up. -chaos injects deterministic, seeded faults into
// this worker's own connections (drops, latency, torn frames, corruption)
// to exercise exactly that machinery; see DESIGN.md's failure-model
// section.
//
// -metrics-addr serves the worker's own RTT histogram and completion
// counters on /metrics; -events appends one JSON line per assignment
// lifecycle event. See OBSERVABILITY.md.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"time"

	"redundancy"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9090", "supervisor address")
	name := flag.String("name", "worker", "participant name")
	cheat := flag.Float64("cheat", 0, "probability of cheating on each task (0 = honest)")
	cheatSeed := flag.Uint64("cheatseed", 1, "coalition seed; workers sharing it collude")
	maxAssign := flag.Int("max", 0, "stop after this many assignments (0 = run to completion)")
	throttle := flag.Duration("throttle", 0, "fixed extra delay per assignment")
	speedBase := flag.Duration("speed-base", 0, "heterogeneous speed model: base compute time per assignment (overrides -throttle when any -speed-*/-straggler-* flag is set)")
	speedJitter := flag.Duration("speed-jitter", 0, "heterogeneous speed model: uniform extra delay in [0, jitter) per assignment")
	stragglerP := flag.Float64("straggler-p", 0, "heterogeneous speed model: per-assignment probability of a straggler episode")
	stragglerDelay := flag.Duration("straggler-delay", 0, "heterogeneous speed model: extra delay a straggler episode adds")
	speedSeed := flag.Uint64("speed-seed", 0, "seed for the worker's jitter and speed draws (0 = derive from -name)")
	batch := flag.Int("batch", redundancy.DefaultMaxBatch, "assignments to lease per get_work round trip (1 = single-assignment protocol)")
	proto := flag.String("proto", redundancy.ProtoJSON, "wire codec to request at registration: json | bin (binary falls back to JSON against supervisors that do not speak it)")
	reconnect := flag.Bool("reconnect", true, "survive connection failures: redial with backoff and resume the same identity")
	maxReconnects := flag.Int("max-reconnects", 8, "consecutive failed sessions before giving up (with -reconnect)")
	chaos := flag.String("chaos", "", `inject faults into this worker's connections, e.g. "seed=7,drop=0.02,corrupt=0.01,latency=2ms" (empty = off)`)
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus text metrics on http://ADDR/metrics (empty = off)")
	profile := flag.Bool("profile", false, "enable mutex and block contention profiling (served at /debug/pprof on -metrics-addr)")
	events := flag.String("events", "", "append one JSON line per worker event to this file (empty = off)")
	flag.Parse()
	if *batch < 1 {
		log.Fatalf("worker: -batch must be at least 1 (got %d)", *batch)
	}
	if *proto != redundancy.ProtoJSON && *proto != redundancy.ProtoBinary {
		log.Fatalf("worker: -proto must be %q or %q (got %q)",
			redundancy.ProtoJSON, redundancy.ProtoBinary, *proto)
	}

	cfg := redundancy.WorkerConfig{
		Addr:           *addr,
		Name:           *name,
		MaxAssignments: *maxAssign,
		BatchSize:      *batch,
		Throttle:       *throttle,
		Seed:           *speedSeed,
		Reconnect:      *reconnect,
		MaxReconnects:  *maxReconnects,
	}
	if *speedBase != 0 || *speedJitter != 0 || *stragglerP != 0 || *stragglerDelay != 0 {
		if *stragglerP < 0 || *stragglerP > 1 {
			log.Fatalf("worker: -straggler-p must be in [0,1] (got %v)", *stragglerP)
		}
		cfg.Speed = &redundancy.SpeedModel{
			Base:           *speedBase,
			Jitter:         *speedJitter,
			StragglerP:     *stragglerP,
			StragglerDelay: *stragglerDelay,
		}
	}
	if *proto == redundancy.ProtoBinary {
		cfg.Proto = redundancy.ProtoBinary
	}
	if *cheat > 0 {
		cfg.Cheat = redundancy.NewWorkerCoalition(*cheat, *cheatSeed).CheatFunc()
	}
	if *chaos != "" {
		fc, err := redundancy.ParseFaultConfig(*chaos)
		if err != nil {
			log.Fatal("worker: ", err)
		}
		inj, err := redundancy.NewFaultInjector(fc)
		if err != nil {
			log.Fatal("worker: ", err)
		}
		cfg.Dial = func(a string) (net.Conn, error) { return inj.Dial("tcp", a) }
	}
	if *profile {
		// Same sampling rates as the supervisor's -profile flag: mutex
		// contention 1-in-5, block events from 10µs up.
		runtime.SetMutexProfileFraction(5)
		runtime.SetBlockProfileRate(int(10 * time.Microsecond / time.Nanosecond))
	}
	if *metricsAddr != "" {
		cfg.Metrics = redundancy.NewMetricsRegistry()
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatal("worker: metrics: ", err)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", cfg.Metrics.Handler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() { _ = http.Serve(ln, mux) }()
		fmt.Printf("worker %s: metrics on http://%s/metrics (pprof on /debug/pprof)\n", *name, ln.Addr())
	}
	if *events != "" {
		f, err := os.OpenFile(*events, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatal("worker: events: ", err)
		}
		defer f.Close()
		cfg.Events = redundancy.NewEventSink(f)
	}

	start := time.Now()
	stats, err := redundancy.RunWorker(cfg)
	if err != nil {
		log.Fatalf("worker %s (participant %d): %v", *name, stats.ParticipantID, err)
	}
	fmt.Printf("worker %s: participant %d completed %d assignments (%d cheated) in %v\n",
		*name, stats.ParticipantID, stats.Completed, stats.Cheated, time.Since(start).Round(time.Millisecond))
}

// Command redsim runs the discrete-event volunteer-computation simulator:
// a supervisor distributes a redundancy plan to participants, a coalition
// controlling part of the pool cheats according to a strategy, and the
// verifier adjudicates every task. It prints ground-truth detection
// statistics per tuple size next to the paper's closed-form predictions.
//
// Usage:
//
//	redsim -scheme balanced -n 50000 -eps 0.5 -participants 1000 -p 0.1 \
//	       -strategy always -policy free -seed 1
//
// With -drift it instead runs the drifting-adversary scenario: the true
// coalition share steps from 2% to 15% mid-run, and the printed table
// compares the weakest per-class detection guarantee of the untouched
// static plan against a plan revised online by the adaptive controller
// (internal/adapt) from the same evidence stream.
//
// With -scenario <name> it runs one of the scenario lab's pathological
// adversary templates (use `-scenario list` for the vocabulary) and emits
// the JSON counter report; the exit status is nonzero when any of the
// template's expected counter bounds was violated:
//
//	redsim -scenario sleeper-agents -scenario-tasks 100000
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"redundancy"
	"redundancy/internal/experiments"
	"redundancy/internal/report"
)

func main() {
	scheme := flag.String("scheme", "balanced", "balanced | gs | simple | minmult")
	n := flag.Float64("n", 50_000, "number of tasks")
	eps := flag.Float64("eps", 0.5, "detection threshold ε")
	m := flag.Int("m", 2, "minimum multiplicity for -scheme minmult")
	participants := flag.Int("participants", 1000, "registered participants")
	p := flag.Float64("p", 0.1, "fraction of participants the coalition controls")
	strategy := flag.String("strategy", "always", "always | never | rational | only-k | at-least")
	k := flag.Int("k", 1, "tuple size for only-k / at-least strategies")
	tolerance := flag.Float64("tolerance", 0.55, "max acceptable detection probability for the rational strategy")
	policy := flag.String("policy", "free", "free | one-outstanding | two-phase")
	seed := flag.Uint64("seed", 1, "random seed")
	drift := flag.Bool("drift", false, "run the drifting-adversary scenario instead: a static vs adaptive min_k P(k,p) comparison table")
	driftDecay := flag.Float64("drift-decay", 0.998, "estimator decay per observed assignment in -drift mode")
	scenario := flag.String("scenario", "", "run a scenario-lab template and emit its JSON counter report ('list' shows names, 'all' fans the whole registry out over -workers)")
	scenarioTasks := flag.Int("scenario-tasks", 0, "override the scenario scale (0 = template default)")
	scenarioParticipants := flag.Int("scenario-participants", 0, "override the scenario population (0 = same as -scenario-tasks)")
	workers := flag.Int("workers", 0, "worker pool for -scenario all and -tail (0 = all cores; output is identical for any value)")
	tail := flag.Bool("tail", false, "run the tail-latency sweep: completion-time quantiles per scheme per redundancy factor, speculation off and on")
	tailTasks := flag.Int("tail-tasks", 100_000, "tasks per trial in -tail mode")
	tailTrials := flag.Int("tail-trials", 0, "Monte-Carlo trials per sweep cell (0 = default)")
	tailParticipants := flag.Int("tail-participants", 0, "fleet size in -tail mode (0 = default)")
	scale := flag.Bool("scale", false, "with -tail, run the 10^7-task tier; with -tail-bench, add the 10^7 sweep and the 10^6 scenario suite")
	tailBench := flag.String("tail-bench", "", "write the tail-engine benchmark artifact to this file ('-' = stdout) instead of running a sweep")
	scenarioBaseline := flag.Float64("scenario-baseline", 33, "recorded sequential five-template 10^6 suite seconds for the -tail-bench comparison (0 = omit)")
	flag.Parse()

	if *tailBench != "" {
		if err := runTailBench(*tailBench, *scale, *scenarioBaseline); err != nil {
			fail(err)
		}
		return
	}

	if *tail {
		cfg := tailSweepConfig(*tailTasks, *tailTrials, *tailParticipants, *workers, *eps, *seed, *scale)
		if err := runTail(cfg, os.Stdout); err != nil {
			fail(err)
		}
		return
	}

	if *scenario != "" {
		violations, err := runScenario(*scenario, *scenarioTasks, *scenarioParticipants, *workers, os.Stdout)
		if err != nil {
			fail(err)
		}
		if violations > 0 {
			fmt.Fprintf(os.Stderr, "redsim: scenario %q violated %d expected counter bound(s)\n",
				*scenario, violations)
			os.Exit(1)
		}
		return
	}

	if *drift {
		tbl, err := experiments.DriftTable(int(*n), *eps,
			experiments.DefaultDriftSteps(int(*n)/8), *driftDecay, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(tbl.String())
		return
	}

	d, err := buildScheme(*scheme, *n, *eps, *m)
	if err != nil {
		fail(err)
	}
	pl, err := redundancy.PlanFor(d, *eps)
	if err != nil {
		fail(err)
	}
	pol, err := parsePolicy(*policy)
	if err != nil {
		fail(err)
	}
	strat, err := parseStrategy(*strategy, *k, *tolerance, d, *p)
	if err != nil {
		fail(err)
	}

	rep, err := redundancy.Simulate(redundancy.SimConfig{
		Plan:                pl,
		Policy:              pol,
		Participants:        *participants,
		AdversaryProportion: *p,
		Strategy:            strat,
		Seed:                *seed,
	})
	if err != nil {
		fail(err)
	}

	fmt.Printf("scheme: %s   plan: %s\n", d, pl)
	fmt.Printf("participants: %d   coalition: %.1f%% of participants (%.2f%% of assignments landed)\n",
		*participants, *p*100, rep.ControlledProportion*100)
	fmt.Printf("strategy: %s   policy: %s\n\n", strat.Name(), pol)

	t := report.NewTable("Per-tuple ground truth vs closed form",
		"k", "held", "cheated", "detected", "undetected", "empirical P", "closed-form P(k,p)")
	for _, pt := range rep.PerTuple {
		emp := "-"
		if pt.Cheated > 0 {
			emp = fmt.Sprintf("%.4f", float64(pt.Detected)/float64(pt.Cheated))
		}
		t.AddRowStrings(
			fmt.Sprintf("%d", pt.K), fmt.Sprintf("%d", pt.Held),
			fmt.Sprintf("%d", pt.Cheated), fmt.Sprintf("%d", pt.Detected),
			fmt.Sprintf("%d", pt.Undetected), emp,
			fmt.Sprintf("%.4f", redundancy.DetectionAt(d, pt.K, rep.ControlledProportion)))
	}
	fmt.Println(t.String())

	fmt.Printf("tasks adjudicated:    %d\n", rep.Tasks)
	fmt.Printf("mismatch detections:  %d (ringers: %d)\n", rep.MismatchDetections, rep.RingersCaught)
	fmt.Printf("wrong results passed: %d\n", rep.WrongAccepted)
	fmt.Printf("blacklisted members:  %d (honest implicated: %d)\n",
		rep.BlacklistedMembers, rep.HonestBlacklisted)
	fmt.Printf("virtual makespan:     %.2f   mean task time: %.2f\n", rep.Makespan, rep.MeanTaskTime)
}

// runScenario executes one scenario-lab template (or, for name "all", the
// whole registry fanned out over a worker pool) and writes the JSON
// counter report(s) to w, returning the number of violated counter bounds.
// tasks/participants of 0 keep the template's default scale.
func runScenario(name string, tasks, participants, workers int, w io.Writer) (violations int, err error) {
	if name == "list" {
		for _, n := range redundancy.ScenarioNames() {
			fmt.Fprintln(w, n)
		}
		return 0, nil
	}
	if name == "all" {
		return runScenarioSuite(tasks, participants, workers, w)
	}
	sc, ok := redundancy.ScenarioByName(name)
	if !ok {
		return 0, fmt.Errorf("unknown scenario %q (try -scenario list)", name)
	}
	if tasks > 0 {
		if participants <= 0 {
			participants = tasks
		}
		sc = sc.WithScale(tasks, participants)
	} else if participants > 0 {
		sc = sc.WithScale(sc.Config.Tasks, participants)
	}
	rep, err := redundancy.RunScenario(sc)
	if err != nil {
		return 0, err
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return 0, err
	}
	if _, err := fmt.Fprintf(w, "%s\n", b); err != nil {
		return 0, err
	}
	return len(rep.Violations), nil
}

// runScenarioSuite fans every registry template out over a worker pool and
// prints the reports in registry order. The per-template runs are
// single-threaded and seeded, so the concatenated output is byte-identical
// for any worker count.
func runScenarioSuite(tasks, participants, workers int, w io.Writer) (violations int, err error) {
	for _, res := range redundancy.RunScenarioSuite(tasks, participants, workers) {
		if res.Err != nil {
			return violations, fmt.Errorf("scenario %q: %w", res.Name, res.Err)
		}
		b, err := json.MarshalIndent(res.Report, "", "  ")
		if err != nil {
			return violations, err
		}
		if _, err := fmt.Fprintf(w, "%s\n", b); err != nil {
			return violations, err
		}
		violations += len(res.Report.Violations)
	}
	return violations, nil
}

func buildScheme(scheme string, n, eps float64, m int) (*redundancy.Distribution, error) {
	switch scheme {
	case "balanced":
		return redundancy.Balanced(n, eps)
	case "gs":
		return redundancy.GolleStubblebineForThreshold(n, eps)
	case "simple":
		return redundancy.Simple(n), nil
	case "minmult":
		return redundancy.MinMultiplicity(n, eps, m)
	default:
		return nil, fmt.Errorf("unknown scheme %q", scheme)
	}
}

func parsePolicy(s string) (redundancy.Policy, error) {
	switch s {
	case "free":
		return redundancy.PolicyFree, nil
	case "one-outstanding":
		return redundancy.PolicyOneOutstanding, nil
	case "two-phase":
		return redundancy.PolicyTwoPhase, nil
	default:
		return 0, fmt.Errorf("unknown policy %q", s)
	}
}

func parseStrategy(s string, k int, tol float64, d *redundancy.Distribution, p float64) (redundancy.Strategy, error) {
	switch s {
	case "always":
		return redundancy.StrategyAlways{}, nil
	case "never":
		return redundancy.StrategyNever{}, nil
	case "rational":
		return redundancy.NewRationalStrategy(d, p, tol), nil
	case "only-k":
		return redundancy.StrategyOnlyK{K: k}, nil
	case "at-least":
		return redundancy.StrategyAtLeast{MinCopies: k}, nil
	default:
		return nil, fmt.Errorf("unknown strategy %q", s)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "redsim:", err)
	os.Exit(1)
}

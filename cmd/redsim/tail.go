package main

// The -tail mode: the ROADMAP-item-2 tail-latency sweep on the
// allocation-free completion-time engine, and the -tail-bench artifact
// writer that records the engine's single-threaded throughput, the sweep
// wall-clock at increasing scales, and the scenario lab's suite speedup.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"redundancy"
	"redundancy/internal/experiments"
	"redundancy/internal/sim"
)

// tailSweepConfig resolves the CLI knobs into a sweep configuration.
// scale overrides the task count to the 10^7 tier (with fewer trials, so
// the sweep stays CI-feasible: one trial of every cell still walks ~10^8
// simulated completions).
func tailSweepConfig(tasks, trials, participants, workers int, eps float64, seed uint64, scale bool) experiments.TailSweepConfig {
	if scale {
		tasks = 10_000_000
		if trials == 0 {
			trials = 1
		}
	}
	cfg := experiments.DefaultTailSweepConfig(tasks)
	if trials > 0 {
		cfg.Trials = trials
	}
	if participants > 0 {
		cfg.Participants = participants
	}
	cfg.Workers = workers
	cfg.Epsilon = eps
	cfg.Seed = seed
	return cfg
}

// runTail executes the sweep and prints the comparison table.
func runTail(cfg experiments.TailSweepConfig, w io.Writer) error {
	rep, err := experiments.TailSweep(cfg)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, rep.Table().String())
	return err
}

// Benchmark artifact types (BENCH_pr10.json).

type engineRun struct {
	Participants      int     `json:"participants"`
	Copies            int     `json:"copies"`
	Trials            int     `json:"trials"`
	Seconds           float64 `json:"seconds"`
	CompletionsPerSec float64 `json:"completions_per_sec"`
}

type sweepRun struct {
	Tasks             int     `json:"tasks"`
	Trials            int     `json:"trials_per_cell"`
	Cells             int     `json:"cells"`
	Seconds           float64 `json:"seconds"`
	Completions       int     `json:"completions"`
	CompletionsPerSec float64 `json:"completions_per_sec"`
}

type scenarioBench struct {
	Tasks             int     `json:"tasks_per_template"`
	Templates         int     `json:"templates"`
	SecondsWorkers1   float64 `json:"seconds_workers_1"`
	SecondsWorkersAll float64 `json:"seconds_workers_all"`
	WorkersAll        int     `json:"workers_all"`
	BaselineSeconds   float64 `json:"recorded_pr8_seconds,omitempty"`
	SpeedupVsBaseline float64 `json:"speedup_vs_pr8,omitempty"`
	SpeedupWorkersAll float64 `json:"speedup_workers_all_vs_1"`
	ViolatedTemplates int     `json:"violated_templates"`
}

type tailBenchReport struct {
	GoVersion   string         `json:"go_version"`
	GOOS        string         `json:"goos"`
	GOARCH      string         `json:"goarch"`
	NumCPU      int            `json:"num_cpu"`
	Engine      []engineRun    `json:"engine_single_threaded"`
	Sweeps      []sweepRun     `json:"tail_sweeps"`
	Scenario    *scenarioBench `json:"scenario_suite,omitempty"`
	GeneratedAt string         `json:"generated_at"`
}

// benchEngine measures the raw single-threaded engine: a multiplicity-1
// workload (the steady-state fast path) of `copies` copies on a fleet of
// the given size, best-of-`reps` trials.
func benchEngine(participants, copies, reps int) (engineRun, error) {
	cfg := sim.TailConfig{
		Classes:        []sim.TailClass{{Copies: 1, Tasks: copies}},
		Participants:   participants,
		SpeedBase:      1,
		SpeedJitter:    0.5,
		SpeedSpread:    0.5,
		StragglerP:     0.02,
		StragglerDelay: 20,
		Seed:           2005,
	}
	e, err := sim.NewTailEngine(cfg)
	if err != nil {
		return engineRun{}, err
	}
	e.RunTrial(0) // warm the arenas
	best := 0.0
	var total float64
	for r := 0; r < reps; r++ {
		start := time.Now()
		tr := e.RunTrial(r)
		sec := time.Since(start).Seconds()
		total += sec
		if cps := float64(tr.Completions) / sec; cps > best {
			best = cps
		}
	}
	return engineRun{
		Participants:      participants,
		Copies:            copies,
		Trials:            reps,
		Seconds:           total,
		CompletionsPerSec: best,
	}, nil
}

// benchSweep times one full scheme x speculation sweep at the given size.
func benchSweep(tasks, trials, workers int) (sweepRun, error) {
	cfg := experiments.DefaultTailSweepConfig(tasks)
	cfg.Trials = trials
	cfg.Workers = workers
	start := time.Now()
	rep, err := experiments.TailSweep(cfg)
	if err != nil {
		return sweepRun{}, err
	}
	sec := time.Since(start).Seconds()
	completions := 0
	for _, row := range rep.Rows {
		completions += row.Completions
	}
	return sweepRun{
		Tasks:             tasks,
		Trials:            trials,
		Cells:             len(rep.Rows),
		Seconds:           sec,
		Completions:       completions,
		CompletionsPerSec: float64(completions) / sec,
	}, nil
}

// benchScenarioSuite times the five-template scenario lab at 10^6 tasks
// per template, sequential and fanned out, against the recorded PR 8
// sequential baseline.
func benchScenarioSuite(tasks int, baselineSeconds float64) (*scenarioBench, error) {
	once := func(workers int) (float64, int, error) {
		runtime.GC()
		start := time.Now()
		violated := 0
		for _, res := range redundancy.RunScenarioSuite(tasks, tasks, workers) {
			if res.Err != nil {
				return 0, 0, fmt.Errorf("scenario %q: %w", res.Name, res.Err)
			}
			if len(res.Report.Violations) > 0 {
				violated++
			}
		}
		return time.Since(start).Seconds(), violated, nil
	}
	// Best of two: the suite is deterministic, so the spread between reps
	// is GC and scheduling noise, not workload.
	run := func(workers int) (float64, int, error) {
		best, violated, err := once(workers)
		if err != nil {
			return 0, 0, err
		}
		again, _, err := once(workers)
		if err != nil {
			return 0, 0, err
		}
		if again < best {
			best = again
		}
		return best, violated, nil
	}
	sec1, violated, err := run(1)
	if err != nil {
		return nil, err
	}
	secAll, _, err := run(0)
	if err != nil {
		return nil, err
	}
	b := &scenarioBench{
		Tasks:             tasks,
		Templates:         len(redundancy.ScenarioNames()),
		SecondsWorkers1:   sec1,
		SecondsWorkersAll: secAll,
		WorkersAll:        runtime.GOMAXPROCS(0),
		SpeedupWorkersAll: sec1 / secAll,
		ViolatedTemplates: violated,
	}
	if baselineSeconds > 0 {
		b.BaselineSeconds = baselineSeconds
		b.SpeedupVsBaseline = baselineSeconds / sec1
	}
	return b, nil
}

// runTailBench produces the full BENCH_pr10 artifact. scale additionally
// runs the 10^7-task sweep tier and the 10^6-task scenario suite; without
// it the artifact stops at the 10^6 sweep and a 10^5 scenario suite, which
// keeps a smoke invocation under a minute.
func runTailBench(out string, scale bool, baselineSeconds float64) error {
	rep := tailBenchReport{
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
	}
	for _, p := range []int{256, 1000} {
		// Best-of-5: each trial is ~0.2s, well inside scheduler-noise
		// territory on a shared vCPU, so a few extra reps buy stability.
		er, err := benchEngine(p, 2_000_000, 5)
		if err != nil {
			return err
		}
		rep.Engine = append(rep.Engine, er)
		fmt.Fprintf(os.Stderr, "tail-bench: engine P=%d: %.1fM completions/s\n",
			p, er.CompletionsPerSec/1e6)
	}
	// The scenario suite is timed before the big sweeps: a 10^7-task sweep
	// leaves a heap high-water mark that would tax the suite's GC.
	scenarioTasks := 100_000
	if scale {
		scenarioTasks = 1_000_000
	}
	sb, err := benchScenarioSuite(scenarioTasks, baselineSeconds)
	if err != nil {
		return err
	}
	rep.Scenario = sb
	fmt.Fprintf(os.Stderr, "tail-bench: scenario suite N=%d: %.1fs sequential, %.1fs on %d workers\n",
		sb.Tasks, sb.SecondsWorkers1, sb.SecondsWorkersAll, sb.WorkersAll)
	sweeps := []struct {
		tasks, trials int
	}{{100_000, 8}, {1_000_000, 4}}
	if scale {
		sweeps = append(sweeps, struct{ tasks, trials int }{10_000_000, 1})
	}
	for _, s := range sweeps {
		runtime.GC()
		sr, err := benchSweep(s.tasks, s.trials, 0)
		if err != nil {
			return err
		}
		rep.Sweeps = append(rep.Sweeps, sr)
		fmt.Fprintf(os.Stderr, "tail-bench: sweep N=%d x%d: %.1fs (%.1fM completions/s)\n",
			s.tasks, s.trials, sr.Seconds, sr.CompletionsPerSec/1e6)
	}

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	if err := os.WriteFile(out, b, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "tail-bench: wrote %s\n", out)
	return nil
}

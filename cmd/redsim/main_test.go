package main

import (
	"encoding/json"
	"strings"
	"testing"

	"redundancy"
)

func TestBuildScheme(t *testing.T) {
	for _, s := range []string{"balanced", "gs", "simple", "minmult"} {
		d, err := buildScheme(s, 1000, 0.5, 2)
		if err != nil || d == nil {
			t.Errorf("%s: %v", s, err)
		}
	}
	if _, err := buildScheme("bogus", 1000, 0.5, 2); err == nil {
		t.Error("bogus scheme accepted")
	}
	if _, err := buildScheme("balanced", -1, 0.5, 2); err == nil {
		t.Error("negative N accepted")
	}
}

func TestParsePolicy(t *testing.T) {
	cases := map[string]redundancy.Policy{
		"free":            redundancy.PolicyFree,
		"one-outstanding": redundancy.PolicyOneOutstanding,
		"two-phase":       redundancy.PolicyTwoPhase,
	}
	for s, want := range cases {
		got, err := parsePolicy(s)
		if err != nil || got != want {
			t.Errorf("%s: got %v, %v", s, got, err)
		}
	}
	if _, err := parsePolicy("bogus"); err == nil {
		t.Error("bogus policy accepted")
	}
}

func TestParseStrategy(t *testing.T) {
	d := redundancy.Simple(100)
	for _, s := range []string{"always", "never", "rational", "only-k", "at-least"} {
		st, err := parseStrategy(s, 2, 0.5, d, 0.1)
		if err != nil || st == nil {
			t.Errorf("%s: %v", s, err)
			continue
		}
		if st.Name() == "" {
			t.Errorf("%s: empty name", s)
		}
	}
	if _, err := parseStrategy("bogus", 1, 0.5, d, 0.1); err == nil {
		t.Error("bogus strategy accepted")
	}
	only, _ := parseStrategy("only-k", 3, 0.5, d, 0.1)
	if only.ShouldCheat(2) || !only.ShouldCheat(3) {
		t.Error("only-k did not honor -k")
	}
}

func TestRunScenarioList(t *testing.T) {
	var buf strings.Builder
	violations, err := runScenario("list", 0, 0, 1, &buf)
	if err != nil || violations != 0 {
		t.Fatalf("list: %d violations, err %v", violations, err)
	}
	got := strings.Fields(buf.String())
	want := redundancy.ScenarioNames()
	if len(got) != len(want) {
		t.Fatalf("listed %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("listed[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestRunScenarioEmitsJSONReport(t *testing.T) {
	var buf strings.Builder
	violations, err := runScenario("colluding-pocket", 5000, 0, 1, &buf)
	if err != nil {
		t.Fatalf("runScenario: %v", err)
	}
	if violations != 0 {
		t.Errorf("%d unexpected violations", violations)
	}
	var rep redundancy.ScenarioReport
	if err := json.Unmarshal([]byte(buf.String()), &rep); err != nil {
		t.Fatalf("output is not a JSON report: %v", err)
	}
	if rep.Scenario != "colluding-pocket" {
		t.Errorf("report names %q", rep.Scenario)
	}
	if rep.Config.Tasks != 5000 || rep.Config.Participants != 5000 {
		t.Errorf("scale override ignored: %d/%d", rep.Config.Tasks, rep.Config.Participants)
	}
	if rep.CheatedTasks == 0 || rep.DetectedCheats != 0 {
		t.Errorf("pocket counters off: cheated %d, detected %d", rep.CheatedTasks, rep.DetectedCheats)
	}
}

func TestRunScenarioUnknownName(t *testing.T) {
	var buf strings.Builder
	if _, err := runScenario("no-such-template", 0, 0, 1, &buf); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

// TestRunScenarioAllWorkerInvariance pins the CLI's determinism contract:
// `redsim -scenario all` must emit byte-identical concatenated reports for
// any -workers value.
func TestRunScenarioAllWorkerInvariance(t *testing.T) {
	run := func(workers int) string {
		var buf strings.Builder
		violations, err := runScenario("all", 2_000, 0, workers, &buf)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if violations != 0 {
			t.Errorf("workers=%d: %d violations", workers, violations)
		}
		return buf.String()
	}
	base := run(1)
	if !strings.Contains(base, `"Scenario"`) {
		t.Fatalf("suite output does not look like reports:\n%s", base)
	}
	for _, name := range redundancy.ScenarioNames() {
		if !strings.Contains(base, name) {
			t.Errorf("suite output missing template %q", name)
		}
	}
	for _, workers := range []int{4, 16} {
		if got := run(workers); got != base {
			t.Errorf("workers=%d output differs from workers=1", workers)
		}
	}
}

// TestRunTailWorkerInvariance is the same contract for -tail: the sweep
// table must be byte-identical for any -workers value.
func TestRunTailWorkerInvariance(t *testing.T) {
	run := func(workers int) string {
		cfg := tailSweepConfig(2_000, 2, 64, workers, 0.5, 7, false)
		var buf strings.Builder
		if err := runTail(cfg, &buf); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return buf.String()
	}
	base := run(1)
	for _, want := range []string{"simple", "balanced", "gs", "p999", "RF"} {
		if !strings.Contains(base, want) {
			t.Errorf("tail table missing %q:\n%s", want, base)
		}
	}
	for _, workers := range []int{4, 16} {
		if got := run(workers); got != base {
			t.Errorf("workers=%d output differs from workers=1", workers)
		}
	}
}

// TestTailSweepConfigScaleTier pins the -scale gate: the 10^7-task tier
// with a single trial per cell unless the caller asked for more.
func TestTailSweepConfigScaleTier(t *testing.T) {
	cfg := tailSweepConfig(100, 0, 0, 0, 0.5, 1, true)
	if cfg.Tasks != 10_000_000 || cfg.Trials != 1 {
		t.Errorf("scale tier = %d tasks x %d trials, want 10^7 x 1", cfg.Tasks, cfg.Trials)
	}
	cfg = tailSweepConfig(100, 5, 0, 0, 0.5, 1, true)
	if cfg.Trials != 5 {
		t.Errorf("explicit trials overridden to %d", cfg.Trials)
	}
	cfg = tailSweepConfig(100, 0, 0, 0, 0.5, 1, false)
	if cfg.Tasks != 100 {
		t.Errorf("unscaled tasks = %d, want 100", cfg.Tasks)
	}
}

package main

import (
	"testing"

	"redundancy"
)

func TestBuildScheme(t *testing.T) {
	for _, s := range []string{"balanced", "gs", "simple", "minmult"} {
		d, err := buildScheme(s, 1000, 0.5, 2)
		if err != nil || d == nil {
			t.Errorf("%s: %v", s, err)
		}
	}
	if _, err := buildScheme("bogus", 1000, 0.5, 2); err == nil {
		t.Error("bogus scheme accepted")
	}
	if _, err := buildScheme("balanced", -1, 0.5, 2); err == nil {
		t.Error("negative N accepted")
	}
}

func TestParsePolicy(t *testing.T) {
	cases := map[string]redundancy.Policy{
		"free":            redundancy.PolicyFree,
		"one-outstanding": redundancy.PolicyOneOutstanding,
		"two-phase":       redundancy.PolicyTwoPhase,
	}
	for s, want := range cases {
		got, err := parsePolicy(s)
		if err != nil || got != want {
			t.Errorf("%s: got %v, %v", s, got, err)
		}
	}
	if _, err := parsePolicy("bogus"); err == nil {
		t.Error("bogus policy accepted")
	}
}

func TestParseStrategy(t *testing.T) {
	d := redundancy.Simple(100)
	for _, s := range []string{"always", "never", "rational", "only-k", "at-least"} {
		st, err := parseStrategy(s, 2, 0.5, d, 0.1)
		if err != nil || st == nil {
			t.Errorf("%s: %v", s, err)
			continue
		}
		if st.Name() == "" {
			t.Errorf("%s: empty name", s)
		}
	}
	if _, err := parseStrategy("bogus", 1, 0.5, d, 0.1); err == nil {
		t.Error("bogus strategy accepted")
	}
	only, _ := parseStrategy("only-k", 3, 0.5, d, 0.1)
	if only.ShouldCheat(2) || !only.ShouldCheat(3) {
		t.Error("only-k did not honor -k")
	}
}

// Command supervisor runs the trusted coordinator of the mini volunteer
// platform: it serves a redundancy plan's assignments to workers over TCP,
// certifies results by redundancy, checks ringers, and prints a final
// integrity summary once every task is adjudicated.
//
// Usage:
//
//	supervisor -addr :9090 -n 10000 -eps 0.5 -work primecount -iters 5000 \
//	           -metrics-addr :9091 -events events.jsonl
//
// Then start any number of workers (see cmd/worker) pointed at the
// address. With -metrics-addr set, `curl :9091/metrics` returns the live
// Prometheus counters; -events appends one JSON line per platform event.
// OBSERVABILITY.md documents both surfaces.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"

	"redundancy"
)

// serveMetrics exposes reg at http://addr/metrics and returns the bound
// address (addr may use port 0).
func serveMetrics(addr string, reg *redundancy.MetricsRegistry) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	go func() { _ = http.Serve(ln, mux) }()
	return ln.Addr().String(), nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:9090", "TCP listen address")
	n := flag.Int("n", 10_000, "number of tasks")
	eps := flag.Float64("eps", 0.5, "detection threshold ε")
	scheme := flag.String("scheme", "balanced", "balanced | gs | simple")
	work := flag.String("work", "hashchain", "work kind: hashchain | primecount | collatz | logistic")
	iters := flag.Int("iters", 2000, "per-assignment work amount")
	policy := flag.String("policy", "free", "free | one-outstanding")
	seed := flag.Uint64("seed", 1, "assignment shuffle seed")
	quiet := flag.Bool("quiet", false, "suppress per-event logging")
	planFile := flag.String("planfile", "", "load the plan from a JSON file written by redcalc -save (overrides -n/-eps/-scheme)")
	journal := flag.String("journal", "", "append accepted results to this file and resume from it if it exists")
	resolve := flag.Bool("resolve", false, "recompute disputed tasks on the supervisor (reactive measure)")
	digits := flag.Int("digits", 0, "match float64 results to this many significant digits (0 = exact)")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus text metrics on http://ADDR/metrics (empty = off)")
	events := flag.String("events", "", "append one JSON line per platform event to this file (empty = off)")
	flag.Parse()

	var pl *redundancy.Plan
	if *planFile != "" {
		f, err := os.Open(*planFile)
		if err != nil {
			log.Fatal("supervisor: ", err)
		}
		pl, err = redundancy.LoadPlan(f)
		f.Close()
		if err != nil {
			log.Fatal("supervisor: ", err)
		}
	} else {
		var d *redundancy.Distribution
		var err error
		switch *scheme {
		case "balanced":
			d, err = redundancy.Balanced(float64(*n), *eps)
		case "gs":
			d, err = redundancy.GolleStubblebineForThreshold(float64(*n), *eps)
		case "simple":
			d = redundancy.Simple(float64(*n))
		default:
			err = fmt.Errorf("unknown scheme %q", *scheme)
		}
		if err != nil {
			log.Fatal("supervisor: ", err)
		}
		pl, err = redundancy.PlanFor(d, *eps)
		if err != nil {
			log.Fatal("supervisor: ", err)
		}
	}

	pol := redundancy.PolicyFree
	if *policy == "one-outstanding" {
		pol = redundancy.PolicyOneOutstanding
	}
	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	cfg := redundancy.SupervisorConfig{
		Plan:              pl,
		Policy:            pol,
		WorkKind:          *work,
		Iters:             *iters,
		Seed:              *seed,
		ResolveMismatches: *resolve,
		ResultDigits:      *digits,
		Logf:              logf,
	}
	if *journal != "" {
		if prev, err := os.ReadFile(*journal); err == nil && len(prev) > 0 {
			cfg.Restore = bytes.NewReader(prev)
		}
		f, err := os.OpenFile(*journal, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatal("supervisor: ", err)
		}
		defer f.Close()
		cfg.Journal = f
	}
	cfg.Metrics = redundancy.NewMetricsRegistry()
	if *metricsAddr != "" {
		bound, err := serveMetrics(*metricsAddr, cfg.Metrics)
		if err != nil {
			log.Fatal("supervisor: metrics: ", err)
		}
		fmt.Printf("supervisor: metrics on http://%s/metrics\n", bound)
	}
	if *events != "" {
		f, err := os.OpenFile(*events, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatal("supervisor: events: ", err)
		}
		defer f.Close()
		cfg.Events = redundancy.NewEventSink(f)
	}
	sup, err := redundancy.NewSupervisor(cfg)
	if err != nil {
		log.Fatal("supervisor: ", err)
	}
	bound, err := sup.Start(*addr)
	if err != nil {
		log.Fatal("supervisor: ", err)
	}
	fmt.Printf("supervisor: serving %s on %s (%d assignments, factor %.4f, %d ringers)\n",
		pl, bound, pl.TotalAssignments(), pl.RedundancyFactor(), pl.Ringers)

	sup.Wait()
	sum := sup.Summary()
	fmt.Println("\ncomputation complete")
	fmt.Printf("participants:       %d\n", sum.Participants)
	fmt.Printf("tasks certified:    %d of %d\n", sum.Verify.Accepted, sum.Verify.Tasks)
	fmt.Printf("cheats detected:    %d (ringer catches: %d)\n",
		sum.Verify.MismatchDetected, sum.Verify.RingersCaught)
	fmt.Printf("wrong results:      %d\n", sum.WrongResults)
	fmt.Printf("blacklist:          %v\n", sum.Blacklist)
	if err := sup.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "supervisor: close:", err)
	}
}

// Command supervisor runs the trusted coordinator of the mini volunteer
// platform: it serves a redundancy plan's assignments to workers over TCP,
// certifies results by redundancy, checks ringers, and prints a final
// integrity summary once every task is adjudicated.
//
// Usage:
//
//	supervisor -addr :9090 -n 10000 -eps 0.5 -work primecount -iters 5000 \
//	           -metrics-addr :9091 -events events.jsonl
//
// Then start any number of workers (see cmd/worker) pointed at the
// address. With -metrics-addr set, `curl :9091/metrics` returns the live
// Prometheus counters; -events appends one JSON line per platform event.
// OBSERVABILITY.md documents both surfaces.
//
// The lifecycle is crash-tolerant: -journal records accepted results and
// resumes from them on restart (-journal-sync fsyncs each record so a
// kill -9 loses nothing), a torn final record left by a crash is
// truncated away on restore, SIGINT/SIGTERM triggers a graceful drain
// bounded by -drain, -io-timeout disconnects stalled workers so their
// assignments are reissued, and -chaos injects deterministic seeded
// faults into every accepted connection for self-testing. See DESIGN.md's
// failure-model section.
//
// With -adapt the supervisor additionally estimates the adversary's
// assignment share p̂ from its own verification verdicts and revises the
// plan mid-run — promoting still-queued tasks and minting extra ringers —
// whenever the estimate's upper confidence bound would drag detection
// below -target-eps. Revisions are journaled and survive restarts. See
// DESIGN.md's adaptive-control section.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"redundancy"
)

// serveMetrics exposes reg at http://addr/metrics — plus the net/http/pprof
// endpoints under /debug/pprof/ — and returns the bound address (addr may
// use port 0). The profiling surface rides the metrics listener on purpose:
// it is on only when the operator opted into a diagnostics port, never on
// the worker-facing protocol address.
func serveMetrics(addr string, reg *redundancy.MetricsRegistry) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() { _ = http.Serve(ln, mux) }()
	return ln.Addr().String(), nil
}

// enableContentionProfiles turns on the runtime's lock-contention
// samplers so /debug/pprof/mutex and /debug/pprof/block return data:
// mutex contention sampled 1-in-5, block events recorded from 10µs up.
// Off by default — both add steady-state bookkeeping cost.
func enableContentionProfiles() {
	runtime.SetMutexProfileFraction(5)
	runtime.SetBlockProfileRate(int(10 * time.Microsecond / time.Nanosecond))
}

func main() {
	addr := flag.String("addr", "127.0.0.1:9090", "TCP listen address")
	n := flag.Int("n", 10_000, "number of tasks")
	eps := flag.Float64("eps", 0.5, "detection threshold ε")
	scheme := flag.String("scheme", "balanced", "balanced | gs | simple")
	work := flag.String("work", "hashchain", "work kind: hashchain | primecount | collatz | logistic")
	iters := flag.Int("iters", 2000, "per-assignment work amount")
	policy := flag.String("policy", "free", "free | one-outstanding")
	seed := flag.Uint64("seed", 1, "assignment shuffle seed")
	batch := flag.Int("batch", redundancy.DefaultMaxBatch, "max assignments per work_batch lease (1 = single-assignment leases)")
	quiet := flag.Bool("quiet", false, "suppress per-event logging")
	planFile := flag.String("planfile", "", "load the plan from a JSON file written by redcalc -save (overrides -n/-eps/-scheme)")
	journal := flag.String("journal", "", "append accepted results to this file and resume from it if it exists")
	journalSync := flag.Bool("journal-sync", false, "fsync the journal after every accepted result (crash-safe, slower)")
	groupCommit := flag.Bool("group-commit", false, "coalesce journal appends from all connections into one write (and, with -journal-sync, one fsync) per commit window; acks still wait for their fsync")
	snapshotInterval := flag.Int("snapshot-interval", 0, "write a state snapshot into the journal every N appended records (0 = off; requires -journal and the free policy)")
	compact := flag.Bool("compact", false, "with -snapshot-interval, each snapshot atomically replaces the journal instead of extending it, keeping journal size and restart cost proportional to live state")
	profile := flag.Bool("profile", false, "enable mutex and block contention profiling (served at /debug/pprof on -metrics-addr)")
	ioTimeout := flag.Duration("io-timeout", 2*time.Minute, "per-message read/write deadline on worker connections (0 = none)")
	drainTimeout := flag.Duration("drain", 10*time.Second, "on SIGINT/SIGTERM, wait this long for in-flight results before closing")
	chaos := flag.String("chaos", "", `inject faults into accepted connections, e.g. "seed=7,drop=0.02,corrupt=0.01,latency=2ms" (empty = off)`)
	resolve := flag.Bool("resolve", false, "recompute disputed tasks on the supervisor (reactive measure)")
	digits := flag.Int("digits", 0, "match float64 results to this many significant digits (0 = exact)")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus text metrics on http://ADDR/metrics (empty = off)")
	events := flag.String("events", "", "append one JSON line per platform event to this file (empty = off)")
	shardID := flag.String("shard-id", "", "label this supervisor as one shard of a consistent-hash cluster: hot-path counters gain a shard_id label and the shard's audit export carries the name (empty = unsharded)")
	adaptive := flag.Bool("adapt", false, "estimate the adversary share p̂ online and revise the plan mid-run to keep detection at the target ε (free policy only)")
	targetEps := flag.Float64("target-eps", 0, "detection threshold the adaptive controller defends (0 = the plan's ε)")
	adaptInterval := flag.Duration("adapt-interval", 0, "how often the adaptive controller re-evaluates p̂ (0 = 250ms)")
	deadline := flag.Duration("deadline", 0, "reclaim assignments still out after this long and reissue them (0 = never; required by -speculate-pct)")
	speculatePct := flag.Float64("speculate-pct", 0, "speculative reissue percentile in (0,1): duplicate a still-leased copy to a second participant once it exceeds this completion-time percentile; first result wins (0 = off; requires -deadline and the free policy)")
	quarSuspects := flag.Int("quarantine-suspects", 0, "quarantine a participant after this many circumstantial suspect verdicts (0 = quarantine off; free policy only)")
	quarFailRate := flag.Float64("quarantine-failure-rate", 0, "quarantine a participant whose deadline-reclaim rate exceeds this fraction of issued work (0 = default 0.5; needs -quarantine-suspects)")
	quarProbation := flag.Duration("quarantine-probation", 0, "how long a quarantined participant waits before probationary re-admission (0 = default 10s)")
	quarRingers := flag.Int("quarantine-ringers", 0, "clean ringer results a probationary participant must return before full re-admission (0 = default 3)")
	flag.Parse()
	if *batch < 1 {
		log.Fatalf("supervisor: -batch must be at least 1 (got %d)", *batch)
	}

	var pl *redundancy.Plan
	if *planFile != "" {
		f, err := os.Open(*planFile)
		if err != nil {
			log.Fatal("supervisor: ", err)
		}
		pl, err = redundancy.LoadPlan(f)
		f.Close()
		if err != nil {
			log.Fatal("supervisor: ", err)
		}
	} else {
		var d *redundancy.Distribution
		var err error
		switch *scheme {
		case "balanced":
			d, err = redundancy.Balanced(float64(*n), *eps)
		case "gs":
			d, err = redundancy.GolleStubblebineForThreshold(float64(*n), *eps)
		case "simple":
			d = redundancy.Simple(float64(*n))
		default:
			err = fmt.Errorf("unknown scheme %q", *scheme)
		}
		if err != nil {
			log.Fatal("supervisor: ", err)
		}
		pl, err = redundancy.PlanFor(d, *eps)
		if err != nil {
			log.Fatal("supervisor: ", err)
		}
	}

	pol := redundancy.PolicyFree
	if *policy == "one-outstanding" {
		pol = redundancy.PolicyOneOutstanding
	}
	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	cfg := redundancy.SupervisorConfig{
		Plan:              pl,
		Policy:            pol,
		WorkKind:          *work,
		Iters:             *iters,
		Seed:              *seed,
		MaxBatch:          *batch,
		Deadline:          *deadline,
		SpeculatePct:      *speculatePct,
		IOTimeout:         *ioTimeout,
		JournalSync:       *journalSync,
		GroupCommit:       *groupCommit,
		ResolveMismatches: *resolve,
		ResultDigits:      *digits,
		ShardID:           *shardID,
		Logf:              logf,
	}
	if *quarSuspects > 0 {
		cfg.Health = &redundancy.HealthConfig{
			SuspectLimit:     *quarSuspects,
			FailureRate:      *quarFailRate,
			Probation:        *quarProbation,
			ProbationRingers: *quarRingers,
		}
	} else if *quarFailRate != 0 || *quarProbation != 0 || *quarRingers != 0 {
		log.Fatal("supervisor: -quarantine-failure-rate/-probation/-ringers need -quarantine-suspects")
	}
	if *adaptive {
		te := *targetEps
		if te == 0 {
			te = pl.Epsilon
		}
		cfg.Adapt = &redundancy.AdaptConfig{TargetEpsilon: te, Interval: *adaptInterval}
	}
	var journalFile *redundancy.JournalFile
	if *journal != "" {
		if prev, err := os.ReadFile(*journal); err == nil && len(prev) > 0 {
			cfg.Restore = bytes.NewReader(prev)
		}
		f, err := redundancy.OpenJournalFile(*journal)
		if err != nil {
			log.Fatal("supervisor: ", err)
		}
		defer f.Close()
		cfg.Journal = f
		journalFile = f
		cfg.SnapshotInterval = *snapshotInterval
		cfg.Compact = *compact
	} else if *snapshotInterval > 0 || *compact {
		log.Fatal("supervisor: -snapshot-interval and -compact require -journal")
	}
	if *chaos != "" {
		fc, err := redundancy.ParseFaultConfig(*chaos)
		if err != nil {
			log.Fatal("supervisor: ", err)
		}
		inj, err := redundancy.NewFaultInjector(fc)
		if err != nil {
			log.Fatal("supervisor: ", err)
		}
		cfg.WrapListener = inj.Listener
	}
	cfg.Metrics = redundancy.NewMetricsRegistry()
	if *profile {
		enableContentionProfiles()
	}
	if *metricsAddr != "" {
		bound, err := serveMetrics(*metricsAddr, cfg.Metrics)
		if err != nil {
			log.Fatal("supervisor: metrics: ", err)
		}
		fmt.Printf("supervisor: metrics on http://%s/metrics (pprof on /debug/pprof)\n", bound)
	}
	if *events != "" {
		f, err := os.OpenFile(*events, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatal("supervisor: events: ", err)
		}
		defer f.Close()
		cfg.Events = redundancy.NewEventSink(f)
	}
	sup, err := redundancy.NewSupervisor(cfg)
	if err != nil {
		log.Fatal("supervisor: ", err)
	}
	// A crash mid-append leaves a torn final record in the journal; replay
	// tolerates it, but appending after it would weld the next record onto
	// the fragment and turn it into unrecoverable interior corruption on
	// the restart after this one. Cut it off before accepting results.
	if journalFile != nil && cfg.Restore != nil {
		if size, err := journalFile.Size(); err == nil {
			if valid := sup.RestoredJournalBytes(); valid < size {
				if err := journalFile.Truncate(valid); err != nil {
					log.Fatal("supervisor: truncating torn journal tail: ", err)
				}
				logf("journal: dropped torn tail (%d -> %d bytes)", size, valid)
			}
		}
	}
	bound, err := sup.Start(*addr)
	if err != nil {
		log.Fatal("supervisor: ", err)
	}
	fmt.Printf("supervisor: serving %s on %s (%d assignments, factor %.4f, %d ringers)\n",
		pl, bound, pl.TotalAssignments(), pl.RedundancyFactor(), pl.Ringers)

	done := make(chan struct{})
	go func() { sup.Wait(); close(done) }()
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	interrupted := false
	select {
	case <-done:
	case sig := <-sigCh:
		// Graceful drain: stop issuing, let in-flight results land (up to
		// -drain), flush the journal, then report progress so far. A
		// second signal during the drain kills the process the hard way.
		signal.Stop(sigCh)
		fmt.Fprintf(os.Stderr, "\nsupervisor: caught %v, draining for up to %v\n", sig, *drainTimeout)
		interrupted = true
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		if err := sup.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "supervisor: drain incomplete:", err)
		}
		cancel()
	}
	sum := sup.Summary()
	if interrupted {
		fmt.Println("\ninterrupted; progress so far (resume with the same -journal)")
	} else {
		fmt.Println("\ncomputation complete")
	}
	fmt.Printf("participants:       %d\n", sum.Participants)
	fmt.Printf("tasks certified:    %d of %d\n", sum.Verify.Accepted, sum.Verify.Tasks)
	fmt.Printf("cheats detected:    %d (ringer catches: %d)\n",
		sum.Verify.MismatchDetected, sum.Verify.RingersCaught)
	fmt.Printf("wrong results:      %d\n", sum.WrongResults)
	fmt.Printf("blacklist:          %v\n", sum.Blacklist)
	if est, on := sup.AdaptiveEstimate(); on {
		fmt.Printf("adaptive:           p̂=%.4f [%.4f, %.4f], %d plan revision(s)\n",
			est.PHat, est.Lower, est.Upper, sup.RevisionsApplied())
	}
	if !interrupted {
		if err := sup.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "supervisor: close:", err)
		}
	}
}

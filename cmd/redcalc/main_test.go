package main

import (
	"math"
	"testing"

	"redundancy"
)

func TestBuildSchemeVariants(t *testing.T) {
	cases := []struct {
		name       string
		wantFactor float64
	}{
		{"balanced", redundancy.BalancedRedundancyFactor(0.5)},
		{"gs", redundancy.GolleStubblebineRedundancyFactor(0.5)},
		{"golle-stubblebine", redundancy.GolleStubblebineRedundancyFactor(0.5)},
		{"simple", 2},
		{"single", 1},
		{"minmult", redundancy.MinMultiplicityRedundancyFactor(0.5, 2)},
	}
	for _, c := range cases {
		d, err := buildScheme(c.name, 100_000, 0.5, 8, 2)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if math.Abs(d.RedundancyFactor()-c.wantFactor) > 1e-6 {
			t.Errorf("%s: factor %v, want %v", c.name, d.RedundancyFactor(), c.wantFactor)
		}
	}
	if d, err := buildScheme("minassign", 100_000, 0.5, 8, 2); err != nil || d.Dimension() != 8 {
		t.Errorf("minassign: %v dim=%d", err, d.Dimension())
	}
	if _, err := buildScheme("bogus", 1, 0.5, 8, 2); err == nil {
		t.Error("bogus scheme accepted")
	}
}

// Command redcalc analyzes a redundancy scheme: its per-multiplicity class
// sizes, redundancy factor, detection-probability profile, and the §6
// deployment plan (rounding, tail partition, ringers).
//
// Usage:
//
//	redcalc -scheme balanced -n 1000000 -eps 0.75 [-p 0.1]
//	redcalc -scheme gs -n 1000000 -eps 0.75
//	redcalc -scheme minassign -n 100000 -eps 0.5 -dim 19
//	redcalc -scheme minmult -n 100000 -eps 0.5 -m 2
//	redcalc -scheme simple -n 100000 -eps 0.5
package main

import (
	"flag"
	"fmt"
	"os"

	"redundancy"
	"redundancy/internal/report"
)

func main() {
	scheme := flag.String("scheme", "balanced", "balanced | gs | simple | single | minassign | minmult")
	n := flag.Float64("n", 1_000_000, "number of tasks N")
	eps := flag.Float64("eps", 0.5, "detection threshold ε in (0,1)")
	dim := flag.Int("dim", 19, "dimension for -scheme minassign")
	m := flag.Int("m", 2, "minimum multiplicity for -scheme minmult")
	p := flag.Float64("p", 0, "adversary's proportion of assignments for the detection profile")
	target := flag.Float64("target", 0, "design mode: pick ε for this effective detection at proportion -p (overrides -eps)")
	maxK := flag.Int("maxk", 10, "largest tuple size in the detection profile")
	showPlan := flag.Bool("plan", true, "print the §6 deployment plan")
	savePlan := flag.String("save", "", "write the deployment plan as JSON to this file")
	flag.Parse()

	if *target > 0 {
		designed, err := redundancy.EpsilonForEffectiveDetection(*target, *p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "redcalc:", err)
			os.Exit(1)
		}
		fmt.Printf("design: effective detection %.4f at p=%.3f requires ε = %.6f\n\n",
			*target, *p, designed)
		*eps = designed
	}

	d, err := buildScheme(*scheme, *n, *eps, *dim, *m)
	if err != nil {
		fmt.Fprintln(os.Stderr, "redcalc:", err)
		os.Exit(1)
	}

	fmt.Printf("%s\n", d)
	fmt.Printf("tasks:              %.0f\n", d.N())
	fmt.Printf("assignments:        %.1f\n", d.TotalAssignments())
	fmt.Printf("redundancy factor:  %.4f\n", d.RedundancyFactor())
	fmt.Printf("precompute (tasks): %.1f\n\n", d.Count(d.Dimension()))

	v := redundancy.Validate(d, *n, *eps)
	if v.Valid() {
		fmt.Printf("validation: all detection constraints satisfied at ε = %g\n\n", *eps)
	} else {
		fmt.Printf("validation: %d violation(s):\n", len(v.Violations))
		for _, viol := range v.Violations {
			fmt.Println("  -", viol)
		}
		fmt.Println()
	}

	t := report.NewTable(
		fmt.Sprintf("Detection profile (adversary proportion p = %g)", *p),
		"k (copies held)", "tasks at mult. k", "P(k,p)", "expected k-holdings")
	odds := redundancy.AdversaryOdds(d, *p, *maxK)
	for _, o := range odds {
		t.AddRowStrings(
			fmt.Sprintf("%d", o.K),
			fmt.Sprintf("%.1f", d.Count(o.K)),
			fmt.Sprintf("%.4f", o.PDetect),
			fmt.Sprintf("%.2f", o.ExpectedKT))
	}
	fmt.Println(t.String())
	minP, argK := redundancy.MinDetection(d, *p)
	fmt.Printf("effective protection: min_k P(k,p) = %.4f at k = %d\n\n", minP, argK)

	if *showPlan || *savePlan != "" {
		pl, err := redundancy.PlanFor(d, *eps)
		if err != nil {
			fmt.Fprintln(os.Stderr, "redcalc: plan:", err)
			os.Exit(1)
		}
		fmt.Println(pl.String())
		if problems := pl.Audit(1e-6); len(problems) > 0 {
			fmt.Println("plan audit FAILED:")
			for _, pr := range problems {
				fmt.Println("  -", pr)
			}
			os.Exit(1)
		}
		fmt.Println("plan audit: ok (all tasks covered; deployed detection constraints hold)")
		if *savePlan != "" {
			f, err := os.Create(*savePlan)
			if err != nil {
				fmt.Fprintln(os.Stderr, "redcalc:", err)
				os.Exit(1)
			}
			if err := pl.Save(f); err != nil {
				fmt.Fprintln(os.Stderr, "redcalc: save:", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "redcalc: save:", err)
				os.Exit(1)
			}
			fmt.Printf("plan written to %s\n", *savePlan)
		}
	}
}

func buildScheme(scheme string, n, eps float64, dim, m int) (*redundancy.Distribution, error) {
	switch scheme {
	case "balanced":
		return redundancy.Balanced(n, eps)
	case "gs", "golle-stubblebine":
		return redundancy.GolleStubblebineForThreshold(n, eps)
	case "simple":
		return redundancy.Simple(n), nil
	case "single":
		return redundancy.Single(n), nil
	case "minassign":
		return redundancy.AssignmentMinimizing(n, eps, dim)
	case "minmult":
		return redundancy.MinMultiplicity(n, eps, m)
	default:
		return nil, fmt.Errorf("unknown scheme %q", scheme)
	}
}

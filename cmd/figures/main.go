// Command figures regenerates every table and figure of the paper's
// evaluation and prints them as aligned text tables (or CSV for plotting).
//
// Usage:
//
//	figures [-fig all|1|2|3|4|6|7|A|X|P2|T] [-trials N] [-seed S] [-csv]
//
// Figure/section identifiers follow the paper: 1-4 are its figures, 6 and
// 7 its implementation and extension sections, A its appendix; X is this
// reproduction's Monte-Carlo cross-check and P2 its Proposition-2 ablation.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"

	"redundancy/internal/experiments"
	"redundancy/internal/obs"
	"redundancy/internal/report"
)

func main() {
	fig := flag.String("fig", "all", "which figure/table to regenerate: all,1,2,3,4,6,7,A,X,P2,L,C,T")
	trials := flag.Int("trials", 200, "Monte-Carlo trials for A and X")
	seed := flag.Uint64("seed", 2005, "random seed for Monte-Carlo experiments")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	chart := flag.Bool("chart", false, "also render figures 1 and 3 as ASCII charts")
	metricsAddr := flag.String("metrics-addr", "", "serve Monte-Carlo progress metrics on http://ADDR/metrics while regenerating (empty = off)")
	flag.Parse()

	if *metricsAddr != "" {
		reg := obs.NewRegistry()
		experiments.InstrumentMetrics(reg)
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures: metrics:", err)
			os.Exit(1)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		go func() { _ = http.Serve(ln, mux) }()
		fmt.Printf("figures: progress metrics on http://%s/metrics\n", ln.Addr())
	}

	wanted := map[string]bool{}
	for _, f := range strings.Split(*fig, ",") {
		wanted[strings.ToUpper(strings.TrimSpace(f))] = true
	}
	all := wanted["ALL"]
	ran := 0

	emit := func(id string, t *report.Table, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %s: %v\n", id, err)
			os.Exit(1)
		}
		if *csv {
			fmt.Printf("# %s\n%s\n", t.Title, t.CSV())
		} else {
			fmt.Println(t.String())
		}
		ran++
	}

	if all || wanted["1"] {
		t, err := experiments.Figure1Table()
		emit("figure 1", t, err)
		if *chart {
			fmt.Println(figure1Chart())
		}
	}
	if all || wanted["2"] {
		t, err := experiments.Figure2Table(nil)
		emit("figure 2", t, err)
	}
	if all || wanted["3"] {
		emit("figure 3", experiments.Figure3Table(), nil)
		if *chart {
			fmt.Println(figure3Chart())
		}
	}
	if all || wanted["4"] {
		t, err := experiments.Figure4Table()
		emit("figure 4", t, err)
	}
	if all || wanted["6"] {
		t, err := experiments.Section6Table()
		emit("section 6", t, err)
	}
	if all || wanted["7"] {
		emit("section 7", experiments.Section7Table(), nil)
	}
	if all || wanted["A"] {
		t, err := experiments.AppendixATable(*trials, *seed)
		emit("appendix A", t, err)
	}
	if all || wanted["X"] {
		t, err := experiments.CrossCheckTable(max(1, *trials/20), *seed)
		emit("cross-check", t, err)
	}
	if all || wanted["P2"] {
		t, err := experiments.Proposition2Table(0)
		emit("proposition 2", t, err)
	}
	if all || wanted["L"] {
		t, err := experiments.DetectionLatencyTable(10_000, 500, max(2, *trials/20), *seed)
		emit("detection latency", t, err)
	}
	if all || wanted["C"] {
		t, err := experiments.CampaignTable(5_000, 200, 12, *seed)
		emit("campaign", t, err)
	}
	if all || wanted["T"] {
		t, err := experiments.TailSweepTable(20_000, max(2, *trials/50), *seed)
		emit("tail latency", t, err)
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "figures: nothing matched -fig=%s (use all,1,2,3,4,6,7,A,X,P2,L,C,T)\n", *fig)
		os.Exit(2)
	}
}

// figure1Chart renders Figure 1 as an ASCII chart.
func figure1Chart() string {
	rows, err := experiments.Figure1()
	if err != nil {
		return "chart: " + err.Error()
	}
	var xs, bal, s19, s26 []float64
	for _, r := range rows {
		xs = append(xs, r.P)
		bal = append(bal, r.Balanced)
		s19 = append(s19, r.S19)
		s26 = append(s26, r.S26)
	}
	c := report.NewChart("Figure 1 (chart): detection probability vs proportion controlled",
		"proportion controlled by adversary", "P(detect)")
	c.AddSeries("Balanced", xs, bal)
	c.AddSeries("S_19 (N=1e5)", xs, s19)
	c.AddSeries("S_26 (N=1e6)", xs, s26)
	return c.String()
}

// figure3Chart renders Figure 3 as an ASCII chart.
func figure3Chart() string {
	rows := experiments.Figure3()
	var xs, bal, gs, simple, lb []float64
	for _, r := range rows {
		xs = append(xs, r.Epsilon)
		bal = append(bal, r.Balanced)
		gs = append(gs, r.GS)
		simple = append(simple, r.Simple)
		lb = append(lb, r.LowerBound)
	}
	c := report.NewChart("Figure 3 (chart): redundancy factors vs ε",
		"detection threshold ε", "redundancy factor")
	c.AddSeries("Balanced", xs, bal)
	c.AddSeries("Golle-Stubblebine", xs, gs)
	c.AddSeries("Simple", xs, simple)
	c.AddSeries("Lower bound", xs, lb)
	return c.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

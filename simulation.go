package redundancy

import (
	"redundancy/internal/adversary"
	"redundancy/internal/sched"
	"redundancy/internal/sim"
)

// Scheduling policies for plans and simulations.
const (
	// PolicyFree shuffles all copies together and releases them freely —
	// the standard model and the one the paper's analysis assumes.
	PolicyFree = sched.Free
	// PolicyOneOutstanding keeps at most one copy of a task in flight
	// (§1's variation: doubles wall-clock cost, still collusion-prone).
	PolicyOneOutstanding = sched.OneOutstanding
	// PolicyTwoPhase releases every first copy, then every second copy
	// (the Appendix-A model; requires uniform multiplicity 2).
	PolicyTwoPhase = sched.TwoPhase
)

// Policy is an assignment-release discipline.
type Policy = sched.Policy

// Strategy decides, per task, whether the adversary coalition cheats given
// how many copies it holds.
type Strategy = adversary.Strategy

// Canonical adversary strategies.
type (
	// StrategyAlways cheats on every held task.
	StrategyAlways = adversary.Always
	// StrategyNever is an honest control coalition.
	StrategyNever = adversary.Never
	// StrategyOnlyK cheats exactly when holding K copies.
	StrategyOnlyK = adversary.OnlyK
	// StrategyAtLeast cheats when holding at least MinCopies copies.
	StrategyAtLeast = adversary.AtLeast
	// StrategyDrifting ramps the cheat rate over the run (scenario lab).
	StrategyDrifting = adversary.Drifting
	// StrategyProbabilistic cheats per task with a fixed probability.
	StrategyProbabilistic = adversary.Probabilistic
	// StrategySleeper behaves until it first holds a full tuple.
	StrategySleeper = adversary.Sleeper
	// StrategyStragglerCover cheats only where honest copies are delayed.
	StrategyStragglerCover = adversary.StragglerCover
	// StrategyPocket concentrates cheating on a slice of task space.
	StrategyPocket = adversary.Pocket
)

// NewRationalStrategy builds the paper's intelligent adversary: knowing
// scheme d and her proportion p, she cheats only at tuple sizes whose
// detection probability is at most maxDetection.
func NewRationalStrategy(d *Distribution, p, maxDetection float64) Strategy {
	return adversary.NewRational(d, p, maxDetection)
}

// SimConfig parameterizes a full discrete-event simulation of a volunteer
// computation (see Simulate).
type SimConfig = sim.Config

// ServiceDist selects the simulator's per-assignment compute-time law.
type ServiceDist = sim.ServiceDist

// Service-time laws for SimConfig.Service.
const (
	// ServiceExponential is the memoryless default.
	ServiceExponential = sim.ServiceExponential
	// ServiceLogNormal has a moderate right tail.
	ServiceLogNormal = sim.ServiceLogNormal
	// ServicePareto has a power-law tail: rare extreme stragglers.
	ServicePareto = sim.ServicePareto
	// ServiceConstant is deterministic.
	ServiceConstant = sim.ServiceConstant
)

// SimReport is the outcome of Simulate.
type SimReport = sim.Report

// PerTuple aggregates per-tuple-size outcomes in simulation reports.
type PerTuple = sim.PerTuple

// Simulate runs one full discrete-event simulation: a supervisor deals the
// plan's assignments to participants over virtual time, a coalition
// controlling a fraction of participants cheats per its strategy, and the
// verifier adjudicates every task. The report carries ground-truth
// detection statistics per tuple size for comparison with DetectionAt.
func Simulate(cfg SimConfig) (*SimReport, error) { return sim.Run(cfg) }

// Scenario is one named pathological adversary template of the scenario
// lab, with its counter expectations.
type Scenario = sim.Scenario

// ScenarioConfig parameterizes a scenario run.
type ScenarioConfig = sim.ScenarioConfig

// ScenarioReport is the JSON counter report of one scenario run.
type ScenarioReport = sim.ScenarioReport

// Scenarios returns the five registry templates at their default scale.
func Scenarios() []Scenario { return sim.Scenarios() }

// ScenarioNames lists the registry template names in stable order.
func ScenarioNames() []string { return sim.ScenarioNames() }

// ScenarioByName looks up a registry template.
func ScenarioByName(name string) (Scenario, bool) { return sim.ScenarioByName(name) }

// RunScenario executes one scenario end to end; the returned report's
// Violations list is empty when every expected counter bound held.
func RunScenario(sc Scenario) (*ScenarioReport, error) { return sim.RunScenario(sc) }

// SuiteResult is one scenario's outcome in a parallel suite run.
type SuiteResult = sim.SuiteResult

// RunScenarios fans the given scenarios out across workers (each template
// runs single-threaded; reports are byte-identical for any worker count)
// and returns results in input order.
func RunScenarios(scs []Scenario, workers int) []SuiteResult { return sim.RunScenarios(scs, workers) }

// RunScenarioSuite runs the full scenario registry at the given scale
// (tasks <= 0 keeps template defaults) on a pool of workers.
func RunScenarioSuite(tasks, participants, workers int) []SuiteResult {
	return sim.RunScenarioSuite(tasks, participants, workers)
}

// CampaignConfig parameterizes a multi-round campaign (see Campaign).
type CampaignConfig = sim.CampaignConfig

// CampaignReport is the outcome of Campaign.
type CampaignReport = sim.CampaignReport

// Campaign runs successive computations against the same adversary pool,
// removing implicated members between rounds: how much damage does a
// determined adversary do before her identities burn out?
func Campaign(cfg CampaignConfig) (*CampaignReport, error) { return sim.Campaign(cfg) }

// ThinningReport is the outcome of SampleThinning.
type ThinningReport = sim.ThinningReport

// SampleThinning runs the fast Monte-Carlo model used in the paper's
// proofs: each copy of each task independently lands with the adversary
// with probability p. It is the high-replication twin of Simulate.
func SampleThinning(specs []TaskSpec, p float64, strat Strategy, seed uint64) (*ThinningReport, error) {
	return sim.Thinning(specs, p, strat, seed)
}

// TwoPhaseResult is the outcome of the Appendix-A experiment.
type TwoPhaseResult = sim.TwoPhaseResult

// TwoPhaseExperiment measures how many tasks an adversary controlling
// proportion p of participants fully controls under two-phase simple
// redundancy (Appendix A: expectation ≈ p²·n, so p ≥ 1/sqrt(n) suffices to
// expect a free cheat).
func TwoPhaseExperiment(n int, p float64, trials int, seed uint64) (*TwoPhaseResult, error) {
	return sim.TwoPhaseExperiment(n, p, trials, seed)
}

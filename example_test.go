package redundancy_test

import (
	"fmt"

	"redundancy"
)

// The Balanced distribution guarantees the same detection probability at
// every tuple size the adversary might control.
func ExampleBalanced() {
	d, err := redundancy.Balanced(1_000_000, 0.75)
	if err != nil {
		panic(err)
	}
	fmt.Printf("redundancy factor: %.4f\n", d.RedundancyFactor())
	for k := 1; k <= 3; k++ {
		fmt.Printf("P(detect | %d copies held) = %.2f\n", k, redundancy.Detection(d, k))
	}
	// Output:
	// redundancy factor: 1.8484
	// P(detect | 1 copies held) = 0.75
	// P(detect | 2 copies held) = 0.75
	// P(detect | 3 copies held) = 0.75
}

// Simple redundancy certifies any pair of matching results — including a
// coalition's matching lies.
func ExampleSimple() {
	d := redundancy.Simple(100_000)
	fmt.Printf("factor %.0f, P(detect | both copies held) = %.0f\n",
		d.RedundancyFactor(), redundancy.Detection(d, 2))
	// Output:
	// factor 2, P(detect | both copies held) = 0
}

// NewPlan deploys the Balanced distribution: integer class sizes, a tail
// partition at multiplicity i_f, and precomputed ringer tasks protecting
// it (§6 of the paper).
func ExampleNewPlan() {
	p, err := redundancy.NewPlan(1_000_000, 0.75)
	if err != nil {
		panic(err)
	}
	fmt.Printf("tasks %d, assignments %d, i_f=%d, tail=%d, ringers=%d\n",
		p.N, p.TotalAssignments(), p.TailMultiplicity, p.TailTasks, p.Ringers)
	fmt.Printf("audit problems: %d\n", len(p.Audit(1e-6)))
	// Output:
	// tasks 1000000, assignments 1848440, i_f=11, tail=5, ringers=2
	// audit problems: 0
}

// DetectionAt quantifies the graceful degradation against an adversary
// controlling a share of all assignments (Proposition 3: independent of k).
func ExampleDetectionAt() {
	d, err := redundancy.Balanced(100_000, 0.5)
	if err != nil {
		panic(err)
	}
	for _, p := range []float64{0, 0.1, 0.25} {
		fmt.Printf("p=%.2f: %.4f\n", p, redundancy.DetectionAt(d, 2, p))
	}
	// Output:
	// p=0.00: 0.5000
	// p=0.10: 0.4641
	// p=0.25: 0.4054
}

// MinMultiplicity upgrades a fault-tolerance floor ("every task at least
// twice") to a guaranteed cheating-detection probability (§7).
func ExampleMinMultiplicity() {
	d, err := redundancy.MinMultiplicity(100_000, 0.5, 2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("factor %.3f (simple redundancy: 2.000)\n", d.RedundancyFactor())
	fmt.Printf("single-copy tasks: %.0f\n", d.Count(1))
	// Output:
	// factor 2.259 (simple redundancy: 2.000)
	// single-copy tasks: 0
}

// Simulate runs the full discrete-event model: plan, participants, a
// colluding coalition, and redundancy verification.
func ExampleSimulate() {
	plan, err := redundancy.NewPlan(20_000, 0.5)
	if err != nil {
		panic(err)
	}
	rep, err := redundancy.Simulate(redundancy.SimConfig{
		Plan:                plan,
		Policy:              redundancy.PolicyFree,
		Participants:        500,
		AdversaryProportion: 0.1,
		Strategy:            redundancy.StrategyAlways{},
		Seed:                1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("tasks adjudicated: %d\n", rep.Tasks)
	fmt.Printf("ground truth consistent: %v\n",
		rep.PerTuple[0].Detected+rep.PerTuple[0].Undetected == rep.PerTuple[0].Cheated)
	// Output:
	// tasks adjudicated: 20001
	// ground truth consistent: true
}

package redundancy

import (
	"bytes"
	"math"
	"sync"
	"testing"
)

// TestPublicAPIFlow walks the README quick-start end to end through the
// public facade: scheme → analysis → plan → simulation.
func TestPublicAPIFlow(t *testing.T) {
	d, err := Balanced(100_000, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.RedundancyFactor()-BalancedRedundancyFactor(0.75)) > 1e-9 {
		t.Error("factor mismatch through facade")
	}
	if r := Validate(d, 100_000, 0.75); !r.Valid() {
		t.Errorf("violations: %v", r.Violations)
	}
	if pk := Detection(d, 3); math.Abs(pk-0.75) > 1e-6 {
		t.Errorf("P_3 = %v", pk)
	}
	if pkp := DetectionAt(d, 3, 0.1); math.Abs(pkp-BalancedDetection(0.75, 0.1)) > 1e-6 {
		t.Errorf("P_{3,0.1} = %v", pkp)
	}
	minP, _ := MinDetection(d, 0.1)
	if math.Abs(minP-BalancedDetection(0.75, 0.1)) > 1e-4 {
		t.Errorf("min detection %v", minP)
	}
	odds := AdversaryOdds(d, 0.1, 5)
	if len(odds) != 5 {
		t.Fatalf("odds rows = %d", len(odds))
	}

	p, err := PlanFor(d, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalTasks() != 100_000 {
		t.Errorf("plan covers %d", p.TotalTasks())
	}

	rep, err := Simulate(SimConfig{
		Plan:                p,
		Policy:              PolicyFree,
		Participants:        300,
		AdversaryProportion: 0.1,
		Strategy:            StrategyAlways{},
		Seed:                1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tasks != p.N+p.Ringers {
		t.Errorf("simulated %d tasks", rep.Tasks)
	}
}

func TestFacadeSchemeConstructors(t *testing.T) {
	if _, err := GolleStubblebine(1000, 0.5); err != nil {
		t.Error(err)
	}
	if _, err := GolleStubblebineForThreshold(1000, 0.5); err != nil {
		t.Error(err)
	}
	if Simple(10).RedundancyFactor() != 2 || Single(10).RedundancyFactor() != 1 {
		t.Error("simple/single wrong")
	}
	if _, err := MinMultiplicity(1000, 0.5, 2); err != nil {
		t.Error(err)
	}
	if _, err := AssignmentMinimizing(1000, 0.5, 8); err != nil {
		t.Error(err)
	}
	if _, err := NewPlan(1000, 0.5); err != nil {
		t.Error(err)
	}
	e := CrossoverEpsilon()
	if e < 0.79 || e > 0.81 {
		t.Errorf("crossover %v", e)
	}
	if LowerBoundRedundancyFactor(0.5) != 4.0/3.0 {
		t.Error("lower bound wrong")
	}
	if math.Abs(MinMultiplicityRedundancyFactor(0.5, 2)-2.2589) > 0.001 {
		t.Error("§7 closed form wrong")
	}
	if GolleStubblebineRedundancyFactor(0.5) != 1/math.Sqrt(0.5) {
		t.Error("GS factor wrong")
	}
}

func TestFacadeStrategies(t *testing.T) {
	d, err := GolleStubblebineForThreshold(10_000, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRationalStrategy(d, 0, 0.51)
	if !r.ShouldCheat(1) || r.ShouldCheat(2) {
		t.Error("rational strategy against GS wrong through facade")
	}
	if !(StrategyOnlyK{K: 2}).ShouldCheat(2) || (StrategyNever{}).ShouldCheat(1) {
		t.Error("strategy aliases wrong")
	}
	if !(StrategyAtLeast{MinCopies: 3}).ShouldCheat(4) {
		t.Error("AtLeast alias wrong")
	}
}

func TestFacadeThinningAndTwoPhase(t *testing.T) {
	p, err := NewPlan(20_000, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := SampleThinning(p.Tasks(), 0.1, StrategyAlways{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rate, ok := rep.DetectionRate(1); !ok || math.Abs(rate-BalancedDetection(0.5, 0.1)) > 0.05 {
		t.Errorf("thinning rate %v ok=%v", rate, ok)
	}
	tp, err := TwoPhaseExperiment(10_000, 0.02, 50, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tp.Observed.Mean()-4) > 2 {
		t.Errorf("two-phase mean %v, want ≈4", tp.Observed.Mean())
	}
}

func TestFacadePlatformEndToEnd(t *testing.T) {
	p, err := NewPlan(150, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := NewSupervisor(SupervisorConfig{Plan: p, WorkKind: "hashchain", Iters: 10})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := sup.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()

	coal := NewWorkerCoalition(1, 9)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		var cheat CheatFunc
		if w == 0 {
			cheat = coal.CheatFunc()
		}
		go func() {
			defer wg.Done()
			_, _ = RunWorker(WorkerConfig{Addr: addr, Name: "w", Cheat: cheat})
		}()
	}
	wg.Wait()
	sup.Wait()
	sum := sup.Summary()
	if sum.Verify.Tasks != p.N+p.Ringers {
		t.Errorf("platform adjudicated %d", sum.Verify.Tasks)
	}
	if sum.Verify.MismatchDetected == 0 {
		t.Error("coalition member went unnoticed across the whole run")
	}
	if len(WorkKinds()) < 3 {
		t.Error("work kinds missing")
	}
}

func TestFacadeCampaignAndLoadPlan(t *testing.T) {
	p, err := NewPlan(1500, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Campaign(CampaignConfig{
		Plan:                p,
		Policy:              PolicyFree,
		Participants:        100,
		AdversaryProportion: 0.2,
		Strategy:            StrategyAlways{},
		Rounds:              6,
		Seed:                2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RoundsUntilNeutralized == 0 {
		t.Error("blatant coalition never neutralized")
	}

	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPlan(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != p.N || got.TotalAssignments() != p.TotalAssignments() {
		t.Error("LoadPlan round trip mismatch")
	}
	if _, err := LoadPlan(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("junk plan accepted")
	}
}

func TestFacadeExpectedDamage(t *testing.T) {
	d, err := Balanced(10_000, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Dominated by the ~69% single-copy tasks, each fully held w.p. p:
	// a bit over x_1·p = 693.
	got := ExpectedDamage(d, 0.1)
	if got < 690 || got > 760 {
		t.Errorf("damage %v, want ≈718 (x1·p plus higher-order terms)", got)
	}
	if s := ExpectedDamage(Simple(10_000), 0.1); math.Abs(s-100) > 1e-9 {
		t.Errorf("simple damage %v, want p²N", s)
	}
}

package report

import (
	"fmt"
	"math"
	"strings"
)

// Chart renders one or more y(x) series as an ASCII scatter/line chart —
// enough to eyeball the shape of Figure 1 or Figure 3 in a terminal
// without leaving the reproduction harness.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot area columns (default 64)
	Height int // plot area rows (default 20)

	series []chartSeries
}

type chartSeries struct {
	name  string
	glyph rune
	xs    []float64
	ys    []float64
}

// seriesGlyphs are assigned to series in order.
var seriesGlyphs = []rune{'*', '+', 'o', 'x', '#', '@'}

// NewChart creates an empty chart.
func NewChart(title, xlabel, ylabel string) *Chart {
	return &Chart{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// AddSeries appends a named series; xs and ys must have equal lengths.
func (c *Chart) AddSeries(name string, xs, ys []float64) {
	if len(xs) != len(ys) {
		panic("report: chart series length mismatch")
	}
	glyph := seriesGlyphs[len(c.series)%len(seriesGlyphs)]
	c.series = append(c.series, chartSeries{name: name, glyph: glyph, xs: xs, ys: ys})
}

// String renders the chart.
func (c *Chart) String() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 64
	}
	if h <= 0 {
		h = 20
	}

	// Data bounds.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range c.series {
		for i := range s.xs {
			if math.IsNaN(s.xs[i]) || math.IsNaN(s.ys[i]) {
				continue
			}
			points++
			xmin, xmax = math.Min(xmin, s.xs[i]), math.Max(xmax, s.xs[i])
			ymin, ymax = math.Min(ymin, s.ys[i]), math.Max(ymax, s.ys[i])
		}
	}
	if points == 0 {
		return c.Title + "\n(no data)\n"
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]rune, h)
	for r := range grid {
		grid[r] = make([]rune, w)
		for col := range grid[r] {
			grid[r][col] = ' '
		}
	}
	for _, s := range c.series {
		for i := range s.xs {
			if math.IsNaN(s.xs[i]) || math.IsNaN(s.ys[i]) {
				continue
			}
			col := int((s.xs[i] - xmin) / (xmax - xmin) * float64(w-1))
			row := h - 1 - int((s.ys[i]-ymin)/(ymax-ymin)*float64(h-1))
			grid[row][col] = s.glyph
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	yHi := fmt.Sprintf("%.4g", ymax)
	yLo := fmt.Sprintf("%.4g", ymin)
	margin := len(yHi)
	if len(yLo) > margin {
		margin = len(yLo)
	}
	for r, row := range grid {
		label := strings.Repeat(" ", margin)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", margin, yHi)
		case h - 1:
			label = fmt.Sprintf("%*s", margin, yLo)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, strings.TrimRight(string(row), " "))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", margin), strings.Repeat("-", w))
	fmt.Fprintf(&b, "%s  %-*s%s\n", strings.Repeat(" ", margin), w-len(fmt.Sprintf("%.4g", xmax)),
		fmt.Sprintf("%.4g", xmin), fmt.Sprintf("%.4g", xmax))
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s   y: %s\n", strings.Repeat(" ", margin), c.XLabel, c.YLabel)
	}
	for _, s := range c.series {
		fmt.Fprintf(&b, "%s  %c %s\n", strings.Repeat(" ", margin), s.glyph, s.name)
	}
	return b.String()
}

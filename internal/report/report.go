// Package report renders experiment output as aligned text tables and CSV,
// the formats used by cmd/figures, the benchmark harness, and
// EXPERIMENTS.md.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowStrings appends a preformatted row.
func (t *Table) AddRowStrings(cells ...string) {
	t.rows = append(t.rows, cells)
}

// formatFloat renders floats compactly: integers without decimals, other
// values with enough precision to compare against the paper.
func formatFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4f", v)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if _, err := t.WriteTo(&b); err != nil {
		return "report: render error: " + err.Error()
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quoting cells that need
// it), suitable for plotting tools.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

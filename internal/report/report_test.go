package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("Demo", "Name", "Value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", 100)
	s := tb.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), s)
	}
	if lines[0] != "Demo" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "Name") {
		t.Errorf("header = %q", lines[1])
	}
	if !strings.Contains(lines[2], "----") {
		t.Errorf("separator = %q", lines[2])
	}
	// Alignment: "Value" column starts at the same offset in all rows.
	off := strings.Index(lines[1], "Value")
	if idx := strings.Index(lines[3], "1.5000"); idx != off {
		t.Errorf("misaligned value column: %d vs %d\n%s", idx, off, s)
	}
}

func TestFloatFormatting(t *testing.T) {
	tb := NewTable("", "x")
	tb.AddRow(2.0) // integral float → no decimals
	tb.AddRow(2.5) // fractional → 4 decimals
	tb.AddRow(1_000_000.0)
	s := tb.String()
	if !strings.Contains(s, "\n2\n") && !strings.Contains(s, "\n2      \n") && !strings.Contains(s, "2      ") {
		t.Errorf("integral float rendered oddly:\n%s", s)
	}
	if !strings.Contains(s, "2.5000") {
		t.Errorf("fractional float missing:\n%s", s)
	}
	if !strings.Contains(s, "1000000") {
		t.Errorf("large integral float missing:\n%s", s)
	}
}

func TestRowsCounterAndStrings(t *testing.T) {
	tb := NewTable("t", "a", "b")
	if tb.Rows() != 0 {
		t.Error("fresh table has rows")
	}
	tb.AddRowStrings("x", "y")
	tb.AddRow(1, "z")
	if tb.Rows() != 2 {
		t.Errorf("rows = %d", tb.Rows())
	}
}

func TestCSVEscaping(t *testing.T) {
	tb := NewTable("ignored", "a", "b")
	tb.AddRowStrings(`with,comma`, `with"quote`)
	csv := tb.CSV()
	want := "a,b\n\"with,comma\",\"with\"\"quote\"\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestEmptyTitleOmitted(t *testing.T) {
	tb := NewTable("", "h")
	tb.AddRow("v")
	if strings.HasPrefix(tb.String(), "\n") {
		t.Error("empty title produced a blank first line")
	}
}

func TestChartRendersSeries(t *testing.T) {
	c := NewChart("demo", "p", "P(detect)")
	xs := []float64{0, 0.25, 0.5}
	c.AddSeries("balanced", xs, []float64{0.5, 0.4, 0.3})
	c.AddSeries("lp", xs, []float64{0.5, 0.05, 0.0})
	s := c.String()
	for _, frag := range []string{"demo", "*", "+", "balanced", "lp", "x: p", "0.5", "+----"} {
		if !strings.Contains(s, frag) {
			t.Errorf("chart missing %q:\n%s", frag, s)
		}
	}
	lines := strings.Split(s, "\n")
	if len(lines) < 20 {
		t.Errorf("chart suspiciously small: %d lines", len(lines))
	}
}

func TestChartEdgeCases(t *testing.T) {
	c := NewChart("empty", "", "")
	if !strings.Contains(c.String(), "no data") {
		t.Error("empty chart should say so")
	}
	// Constant series (zero range) must not divide by zero.
	c2 := NewChart("flat", "", "")
	c2.AddSeries("const", []float64{1, 2, 3}, []float64{5, 5, 5})
	if s := c2.String(); !strings.Contains(s, "*") {
		t.Errorf("flat series not plotted:\n%s", s)
	}
	// NaNs are skipped, not plotted.
	c3 := NewChart("nan", "", "")
	c3.AddSeries("n", []float64{1, math.NaN()}, []float64{1, 2})
	_ = c3.String()
}

func TestChartSeriesLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewChart("", "", "").AddSeries("bad", []float64{1}, []float64{1, 2})
}

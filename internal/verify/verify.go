// Package verify implements the supervisor's result-certification pipeline:
// collecting returned results per task, adjudicating them by redundancy
// (matching results are accepted — exactly the assumption the paper's
// adversary exploits), checking ringer tasks against precomputed truth, and
// maintaining a blacklist of implicated participants.
package verify

import (
	"fmt"
	"sort"

	"redundancy/internal/sched"
)

// Result is one returned assignment result.
type Result struct {
	Assignment  sched.Assignment
	Participant int
	Value       uint64
}

// Verdict is the adjudication of one fully-collected task.
type Verdict struct {
	TaskID int
	Ringer bool
	Copies int
	// Accepted reports whether a value was certified. Matching results are
	// accepted even if wrong — redundancy cannot tell a unanimous lie from
	// the truth, which is the vulnerability the paper quantifies.
	Accepted bool
	// Value is the certified result when Accepted.
	Value uint64
	// MismatchDetected reports that differing results (or a ringer result
	// differing from precomputed truth) exposed cheating on this task.
	MismatchDetected bool
	// Suspects lists participants whose returns disagreed with the
	// certified/true value (majority vote for regular tasks; the oracle
	// for ringers). On an even split every participant is suspect.
	Suspects []int
	// Contributors lists every participant that returned a result for the
	// task, in submission order. Credit systems award only contributors of
	// Accepted tasks.
	Contributors []int
}

// taskState is one task's collection state, indexed by task ID. Task IDs
// are dense (plans number from 0 and minted ringers extend the range), so
// a flat slice replaces the three per-task maps an earlier version kept —
// Submit is the supervisor's hottest non-I/O call and paid for map
// lookups on every result.
type taskState struct {
	// expected copies, registered up front; 0 means unregistered.
	expected int
	// done marks adjudicated tasks so late or duplicate results are
	// rejected rather than silently restarting collection.
	done bool
	// results collected so far (nil once adjudicated).
	results []Result
}

// Collector accumulates results and adjudicates tasks as their final copy
// arrives. It is not safe for concurrent use.
type Collector struct {
	// truth returns the precomputed value of a ringer task.
	truth func(taskID int) uint64
	// cmp canonicalizes values before matching (Exact by default).
	cmp Comparator
	// tasks holds per-task collection state, indexed by task ID.
	tasks []taskState
	// partial counts tasks with some but not all expected results.
	partial int

	verdicts []Verdict
	// resultSlab and contribArena are optional bulk storage installed by
	// Reserve: per-task result buffers and per-verdict contributor lists
	// are carved out of them instead of being allocated one by one, which
	// removes the dominant allocation churn of million-task simulations.
	resultSlab   []Result
	contribArena []int
	blacklist    map[int]bool
	// convicted holds participants caught by ringer evidence, which is
	// conclusive: the supervisor precomputed the true value. Mismatch
	// suspects on regular tasks are circumstantial (an even split cannot
	// say who lied) and only reach the blacklist.
	convicted map[int]bool

	// onVerdict, when set, observes each verdict as it is issued.
	onVerdict func(*Verdict)
}

// NewCollector creates a collector. truth supplies precomputed values for
// ringer tasks and may be nil if the plan has no ringers.
func NewCollector(truth func(taskID int) uint64) *Collector {
	return &Collector{
		truth:     truth,
		cmp:       Exact{},
		blacklist: make(map[int]bool),
		convicted: make(map[int]bool),
	}
}

// task returns the state slot for taskID, growing the table as needed
// (geometrically, so registering n tasks one by one stays O(n)).
func (c *Collector) task(taskID int) *taskState {
	if taskID >= len(c.tasks) {
		want := taskID + 1
		if min := 2 * len(c.tasks); want < min {
			want = min
		}
		grown := make([]taskState, want)
		copy(grown, c.tasks)
		c.tasks = grown // tail slots read as unregistered (expected 0)
	}
	return &c.tasks[taskID]
}

// Expect registers that taskID will receive copies results. It must be
// called before the task's first Submit.
func (c *Collector) Expect(taskID, copies int) {
	if copies < 1 {
		panic("verify: task must expect at least one copy")
	}
	if taskID < 0 {
		panic("verify: negative task ID")
	}
	c.task(taskID).expected = copies
}

// Reserve pre-sizes the collector for a run whose registered tasks will
// receive `results` results in total: every task's collection buffer is
// carved from one slab, the verdict list is pre-allocated for every
// registered task, and contributor lists come from a shared arena. Call
// it once, after all Expect calls and before the first Submit. Tasks
// registered afterwards, or results beyond the reservation, fall back to
// ordinary allocation — Reserve is a performance hint, never a limit.
func (c *Collector) Reserve(results int) {
	if results < 0 {
		panic("verify: negative reservation")
	}
	registered, need := 0, 0
	for i := range c.tasks {
		if c.tasks[i].expected > 0 && !c.tasks[i].done {
			registered++
			need += c.tasks[i].expected
		}
	}
	if cap(c.verdicts)-len(c.verdicts) < registered {
		grown := make([]Verdict, len(c.verdicts), len(c.verdicts)+registered)
		copy(grown, c.verdicts)
		c.verdicts = grown
	}
	c.contribArena = make([]int, 0, results)
	c.resultSlab = make([]Result, need)
	off := 0
	for i := range c.tasks {
		ts := &c.tasks[i]
		if ts.expected == 0 || ts.done || ts.results != nil {
			continue
		}
		ts.results = c.resultSlab[off : off : off+ts.expected]
		off += ts.expected
	}
}

// OnVerdict registers a callback invoked for every adjudicated task. The
// verdict is passed by pointer — copying the ~88-byte struct per task is
// measurable at simulation scale — and remains owned by the collector:
// callbacks must not retain or mutate it.
func (c *Collector) OnVerdict(fn func(*Verdict)) { c.onVerdict = fn }

// SetComparator installs the value comparator (Exact by default). It must
// be called before the first Submit.
func (c *Collector) SetComparator(cmp Comparator) {
	if cmp == nil {
		cmp = Exact{}
	}
	c.cmp = cmp
}

// Submit records one result. When the final expected copy of the task
// arrives the task is adjudicated and the verdict returned with done=true.
func (c *Collector) Submit(r Result) (v Verdict, done bool, err error) {
	id := r.Assignment.TaskID
	if id < 0 || id >= len(c.tasks) || c.tasks[id].expected == 0 {
		return Verdict{}, false, fmt.Errorf("verify: result for unregistered task %d", id)
	}
	ts := &c.tasks[id]
	if ts.done {
		return Verdict{}, false, fmt.Errorf("verify: task %d already adjudicated", id)
	}
	if ts.results == nil {
		ts.results = make([]Result, 0, ts.expected)
	}
	// Speculative reissue can legitimately produce two answers for the same
	// copy index; only the claim winner may reach adjudication. Rejecting the
	// second here keeps a duplicate from ever counting toward the expected
	// quorum, whatever the caller's bookkeeping missed.
	for i := range ts.results {
		if ts.results[i].Assignment.Copy == r.Assignment.Copy {
			return Verdict{}, false, fmt.Errorf("verify: duplicate copy %d for task %d", r.Assignment.Copy, id)
		}
	}
	if len(ts.results) == 0 {
		c.partial++ // first stored result: the task becomes partial
	}
	ts.results = append(ts.results, r)
	if len(ts.results) < ts.expected {
		return Verdict{}, false, nil
	}
	got := ts.results
	ts.results = nil
	ts.done = true
	c.partial--
	vp := c.adjudicate(id, r.Assignment.Ringer, got)
	for _, s := range vp.Suspects {
		c.blacklist[s] = true
		if vp.Ringer {
			c.convicted[s] = true
		}
	}
	if c.onVerdict != nil {
		c.onVerdict(vp)
	}
	return *vp, true, nil
}

// adjudicate appends the verdict for one fully-collected task to
// c.verdicts and returns a pointer to it. The verdict is built in place
// and results are walked by index: a Verdict is ~88 bytes and a Result
// 40, so value returns and range-copies here dominated the scenario
// lab's CPU profile at 10^6 tasks per template.
func (c *Collector) adjudicate(taskID int, ringer bool, results []Result) *Verdict {
	// Extend in place when capacity allows (Reserve pre-sizes the slice
	// for the whole run): appending a composite literal would build the
	// 88-byte struct on the stack and copy it into the slab, doubling the
	// write traffic on memory this size of run cannot keep in cache.
	var v *Verdict
	if n := len(c.verdicts); n < cap(c.verdicts) {
		c.verdicts = c.verdicts[:n+1]
		v = &c.verdicts[n]
		*v = Verdict{}
	} else {
		c.verdicts = append(c.verdicts, Verdict{})
		v = &c.verdicts[len(c.verdicts)-1]
	}
	v.TaskID, v.Ringer, v.Copies = taskID, ringer, len(results)
	if n := len(results); cap(c.contribArena)-len(c.contribArena) >= n {
		off := len(c.contribArena)
		c.contribArena = c.contribArena[:off+n]
		v.Contributors = c.contribArena[off : off+n : off+n]
	} else {
		v.Contributors = make([]int, n)
	}
	for i := range results {
		v.Contributors[i] = results[i].Participant
	}

	if ringer {
		if c.truth == nil {
			panic("verify: ringer task adjudicated without a truth oracle")
		}
		want := c.truth(taskID)
		wantC := c.cmp.Canonical(want)
		for i := range results {
			if c.cmp.Canonical(results[i].Value) != wantC {
				v.MismatchDetected = true
				v.Suspects = append(v.Suspects, results[i].Participant)
			}
		}
		v.Accepted = !v.MismatchDetected
		v.Value = want
		sort.Ints(v.Suspects)
		return v
	}

	// Regular task: majority vote over canonicalized values. Unanimity is
	// the overwhelmingly common outcome, so check it with one pass before
	// paying for the per-task vote map.
	first := c.cmp.Canonical(results[0].Value)
	unanimous := true
	for i := 1; i < len(results); i++ {
		if c.cmp.Canonical(results[i].Value) != first {
			unanimous = false
			break
		}
	}
	if unanimous {
		v.Accepted = true
		v.Value = results[0].Value
		return v
	}
	counts := make(map[uint64]int)
	for i := range results {
		counts[c.cmp.Canonical(results[i].Value)]++
	}
	v.MismatchDetected = true
	// Find the majority canonical value; prefer the numerically smallest
	// on ties so adjudication is deterministic.
	var majority uint64
	best := -1
	for val, n := range counts {
		if n > best || (n == best && val < majority) {
			majority, best = val, n
		}
	}
	strict := best*2 > len(results)
	for i := range results {
		if !strict || c.cmp.Canonical(results[i].Value) != majority {
			v.Suspects = append(v.Suspects, results[i].Participant)
		}
	}
	sort.Ints(v.Suspects)
	return v
}

// Verdicts returns all verdicts issued so far, in adjudication order.
func (c *Collector) Verdicts() []Verdict { return c.verdicts }

// RestoreVerdict reinstates a previously-issued verdict during snapshot
// restore: the task is marked adjudicated and every downstream effect of
// the original adjudication — verdict list, blacklist, convictions, the
// OnVerdict callback (credits, estimator evidence) — replays exactly as
// the live Submit performed it, without the per-copy results. The task
// must be registered (Expect) and not yet collected.
func (c *Collector) RestoreVerdict(v Verdict) error {
	if v.TaskID < 0 || v.TaskID >= len(c.tasks) || c.tasks[v.TaskID].expected == 0 {
		return fmt.Errorf("verify: restored verdict for unregistered task %d", v.TaskID)
	}
	ts := &c.tasks[v.TaskID]
	if ts.done {
		return fmt.Errorf("verify: restored verdict for already-adjudicated task %d", v.TaskID)
	}
	if ts.results != nil {
		return fmt.Errorf("verify: restored verdict for task %d with partial results", v.TaskID)
	}
	ts.done = true
	c.verdicts = append(c.verdicts, v)
	for _, s := range v.Suspects {
		c.blacklist[s] = true
		if v.Ringer {
			c.convicted[s] = true
		}
	}
	if c.onVerdict != nil {
		c.onVerdict(&c.verdicts[len(c.verdicts)-1])
	}
	return nil
}

// PendingResults returns every partial result — tasks submitted to but
// not yet adjudicated — ordered by task ID, then submission order within
// a task. The deterministic enumeration is what snapshot capture encodes.
func (c *Collector) PendingResults() []Result {
	out := make([]Result, 0, c.partial)
	for i := range c.tasks {
		if !c.tasks[i].done {
			out = append(out, c.tasks[i].results...)
		}
	}
	return out
}

// Blacklisted reports whether a participant has been implicated.
func (c *Collector) Blacklisted(participant int) bool { return c.blacklist[participant] }

// Blacklist returns the implicated participants in ascending order.
func (c *Collector) Blacklist() []int {
	out := make([]int, 0, len(c.blacklist))
	for p := range c.blacklist {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// Convicted reports whether a participant has been caught by conclusive
// (ringer) evidence.
func (c *Collector) Convicted(participant int) bool { return c.convicted[participant] }

// ConvictedList returns the conclusively-caught participants, ascending.
func (c *Collector) ConvictedList() []int {
	out := make([]int, 0, len(c.convicted))
	for p := range c.convicted {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// PendingTasks returns the number of tasks with partial results.
func (c *Collector) PendingTasks() int { return c.partial }

// Stats summarizes the verdicts issued so far.
type Stats struct {
	Tasks            int // adjudicated tasks
	Accepted         int // certified results
	MismatchDetected int // tasks where cheating was exposed
	RingersCaught    int // ringer tasks that exposed cheating
}

// Stats tallies the verdict stream.
func (c *Collector) Stats() Stats {
	var s Stats
	for _, v := range c.verdicts {
		s.Tasks++
		if v.Accepted {
			s.Accepted++
		}
		if v.MismatchDetected {
			s.MismatchDetected++
			if v.Ringer {
				s.RingersCaught++
			}
		}
	}
	return s
}

// Package verify implements the supervisor's result-certification pipeline:
// collecting returned results per task, adjudicating them by redundancy
// (matching results are accepted — exactly the assumption the paper's
// adversary exploits), checking ringer tasks against precomputed truth, and
// maintaining a blacklist of implicated participants.
package verify

import (
	"fmt"
	"sort"

	"redundancy/internal/sched"
)

// Result is one returned assignment result.
type Result struct {
	Assignment  sched.Assignment
	Participant int
	Value       uint64
}

// Verdict is the adjudication of one fully-collected task.
type Verdict struct {
	TaskID int
	Ringer bool
	Copies int
	// Accepted reports whether a value was certified. Matching results are
	// accepted even if wrong — redundancy cannot tell a unanimous lie from
	// the truth, which is the vulnerability the paper quantifies.
	Accepted bool
	// Value is the certified result when Accepted.
	Value uint64
	// MismatchDetected reports that differing results (or a ringer result
	// differing from precomputed truth) exposed cheating on this task.
	MismatchDetected bool
	// Suspects lists participants whose returns disagreed with the
	// certified/true value (majority vote for regular tasks; the oracle
	// for ringers). On an even split every participant is suspect.
	Suspects []int
	// Contributors lists every participant that returned a result for the
	// task, in submission order. Credit systems award only contributors of
	// Accepted tasks.
	Contributors []int
}

// Collector accumulates results and adjudicates tasks as their final copy
// arrives. It is not safe for concurrent use.
type Collector struct {
	// truth returns the precomputed value of a ringer task.
	truth func(taskID int) uint64
	// cmp canonicalizes values before matching (Exact by default).
	cmp Comparator
	// expected copies per task, registered up front.
	expected map[int]int
	pending  map[int][]Result
	// done marks adjudicated tasks so late or duplicate results are
	// rejected rather than silently restarting collection.
	done map[int]bool

	verdicts  []Verdict
	blacklist map[int]bool
	// convicted holds participants caught by ringer evidence, which is
	// conclusive: the supervisor precomputed the true value. Mismatch
	// suspects on regular tasks are circumstantial (an even split cannot
	// say who lied) and only reach the blacklist.
	convicted map[int]bool

	// onVerdict, when set, observes each verdict as it is issued.
	onVerdict func(Verdict)
}

// NewCollector creates a collector. truth supplies precomputed values for
// ringer tasks and may be nil if the plan has no ringers.
func NewCollector(truth func(taskID int) uint64) *Collector {
	return &Collector{
		truth:     truth,
		cmp:       Exact{},
		expected:  make(map[int]int),
		pending:   make(map[int][]Result),
		done:      make(map[int]bool),
		blacklist: make(map[int]bool),
		convicted: make(map[int]bool),
	}
}

// Expect registers that taskID will receive copies results. It must be
// called before the task's first Submit.
func (c *Collector) Expect(taskID, copies int) {
	if copies < 1 {
		panic("verify: task must expect at least one copy")
	}
	c.expected[taskID] = copies
}

// OnVerdict registers a callback invoked for every adjudicated task.
func (c *Collector) OnVerdict(fn func(Verdict)) { c.onVerdict = fn }

// SetComparator installs the value comparator (Exact by default). It must
// be called before the first Submit.
func (c *Collector) SetComparator(cmp Comparator) {
	if cmp == nil {
		cmp = Exact{}
	}
	c.cmp = cmp
}

// Submit records one result. When the final expected copy of the task
// arrives the task is adjudicated and the verdict returned with done=true.
func (c *Collector) Submit(r Result) (v Verdict, done bool, err error) {
	want, ok := c.expected[r.Assignment.TaskID]
	if !ok {
		return Verdict{}, false, fmt.Errorf("verify: result for unregistered task %d", r.Assignment.TaskID)
	}
	if c.done[r.Assignment.TaskID] {
		return Verdict{}, false, fmt.Errorf("verify: task %d already adjudicated", r.Assignment.TaskID)
	}
	got := append(c.pending[r.Assignment.TaskID], r)
	if len(got) < want {
		c.pending[r.Assignment.TaskID] = got
		return Verdict{}, false, nil
	}
	delete(c.pending, r.Assignment.TaskID)
	c.done[r.Assignment.TaskID] = true
	v = c.adjudicate(r.Assignment.TaskID, r.Assignment.Ringer, got)
	c.verdicts = append(c.verdicts, v)
	for _, s := range v.Suspects {
		c.blacklist[s] = true
		if v.Ringer {
			c.convicted[s] = true
		}
	}
	if c.onVerdict != nil {
		c.onVerdict(v)
	}
	return v, true, nil
}

func (c *Collector) adjudicate(taskID int, ringer bool, results []Result) Verdict {
	v := Verdict{TaskID: taskID, Ringer: ringer, Copies: len(results)}
	for _, r := range results {
		v.Contributors = append(v.Contributors, r.Participant)
	}

	if ringer {
		if c.truth == nil {
			panic("verify: ringer task adjudicated without a truth oracle")
		}
		want := c.truth(taskID)
		wantC := c.cmp.Canonical(want)
		for _, r := range results {
			if c.cmp.Canonical(r.Value) != wantC {
				v.MismatchDetected = true
				v.Suspects = append(v.Suspects, r.Participant)
			}
		}
		v.Accepted = !v.MismatchDetected
		v.Value = want
		sort.Ints(v.Suspects)
		return v
	}

	// Regular task: majority vote over canonicalized values.
	counts := make(map[uint64]int)
	for _, r := range results {
		counts[c.cmp.Canonical(r.Value)]++
	}
	if len(counts) == 1 {
		v.Accepted = true
		v.Value = results[0].Value
		return v
	}
	v.MismatchDetected = true
	// Find the majority canonical value; prefer the numerically smallest
	// on ties so adjudication is deterministic.
	var majority uint64
	best := -1
	for val, n := range counts {
		if n > best || (n == best && val < majority) {
			majority, best = val, n
		}
	}
	strict := best*2 > len(results)
	for _, r := range results {
		if !strict || c.cmp.Canonical(r.Value) != majority {
			v.Suspects = append(v.Suspects, r.Participant)
		}
	}
	sort.Ints(v.Suspects)
	return v
}

// Verdicts returns all verdicts issued so far, in adjudication order.
func (c *Collector) Verdicts() []Verdict { return c.verdicts }

// Blacklisted reports whether a participant has been implicated.
func (c *Collector) Blacklisted(participant int) bool { return c.blacklist[participant] }

// Blacklist returns the implicated participants in ascending order.
func (c *Collector) Blacklist() []int {
	out := make([]int, 0, len(c.blacklist))
	for p := range c.blacklist {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// Convicted reports whether a participant has been caught by conclusive
// (ringer) evidence.
func (c *Collector) Convicted(participant int) bool { return c.convicted[participant] }

// ConvictedList returns the conclusively-caught participants, ascending.
func (c *Collector) ConvictedList() []int {
	out := make([]int, 0, len(c.convicted))
	for p := range c.convicted {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// PendingTasks returns the number of tasks with partial results.
func (c *Collector) PendingTasks() int { return len(c.pending) }

// Stats summarizes the verdicts issued so far.
type Stats struct {
	Tasks            int // adjudicated tasks
	Accepted         int // certified results
	MismatchDetected int // tasks where cheating was exposed
	RingersCaught    int // ringer tasks that exposed cheating
}

// Stats tallies the verdict stream.
func (c *Collector) Stats() Stats {
	var s Stats
	for _, v := range c.verdicts {
		s.Tasks++
		if v.Accepted {
			s.Accepted++
		}
		if v.MismatchDetected {
			s.MismatchDetected++
			if v.Ringer {
				s.RingersCaught++
			}
		}
	}
	return s
}

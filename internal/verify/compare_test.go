package verify

import (
	"math"
	"testing"
	"testing/quick"
)

func f2b(f float64) uint64 { return math.Float64bits(f) }

func TestExactComparator(t *testing.T) {
	e := Exact{}
	if e.Canonical(42) != 42 || e.Name() != "exact" {
		t.Error("Exact misbehaves")
	}
}

func TestQuantizeGroupsNearbyFloats(t *testing.T) {
	q := Quantize{Digits: 6}
	a := f2b(3.141592653589793)
	b := f2b(3.141592999999999) // differs beyond 6 significant digits
	c := f2b(3.141593111111111)
	if q.Canonical(a) != q.Canonical(b) && q.Canonical(b) != q.Canonical(c) {
		// a rounds to 3.14159, b and c to 3.14159 or 3.14159x depending on
		// digit position — at least b and c must collapse together.
		t.Errorf("quantization failed to group near-equal values: %x %x %x",
			q.Canonical(a), q.Canonical(b), q.Canonical(c))
	}
	far := f2b(3.15)
	if q.Canonical(a) == q.Canonical(far) {
		t.Error("clearly different values collapsed")
	}
}

func TestQuantizeSpecialValues(t *testing.T) {
	q := Quantize{Digits: 8}
	nan1 := f2b(math.NaN())
	nan2 := nan1 ^ 1 // a different NaN payload
	if q.Canonical(nan1) != q.Canonical(nan2) {
		t.Error("NaNs should canonicalize identically")
	}
	if q.Canonical(f2b(0.0)) != q.Canonical(f2b(math.Copysign(0, -1))) {
		t.Error("±0 should collapse")
	}
	if q.Canonical(f2b(math.Inf(1))) == q.Canonical(f2b(math.Inf(-1))) {
		t.Error("infinities of opposite sign must differ")
	}
	if q.Name() == "" {
		t.Error("empty name")
	}
}

func TestQuantizeDigitClamping(t *testing.T) {
	lo, hi := Quantize{Digits: -5}, Quantize{Digits: 99}
	v := f2b(123.456789)
	// Clamped to 1 digit: rounds to 100; clamped to 15: nearly identity.
	if got := math.Float64frombits(lo.Canonical(v)); got != 100 {
		t.Errorf("1-digit canonical = %v, want 100", got)
	}
	if got := math.Float64frombits(hi.Canonical(v)); math.Abs(got-123.456789) > 1e-9 {
		t.Errorf("15-digit canonical = %v", got)
	}
}

func TestQuantizeIdempotentProperty(t *testing.T) {
	q := Quantize{Digits: 7}
	f := func(raw uint64) bool {
		c := q.Canonical(raw)
		return q.Canonical(c) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCollectorWithQuantizeAcceptsNoisyAgreement(t *testing.T) {
	// Two honest workers return the "same" float with low-order noise:
	// exact matching flags a false mismatch; quantized matching certifies.
	noisy1, noisy2 := f2b(2.718281828459045), f2b(2.718281828459999)

	exact := NewCollector(nil)
	exact.Expect(1, 2)
	exact.Submit(res(1, 0, 1, noisy1, false))
	v, done, _ := exact.Submit(res(1, 1, 2, noisy2, false))
	if !done || !v.MismatchDetected {
		t.Fatalf("exact matching should flag the noise: %+v", v)
	}

	quant := NewCollector(nil)
	quant.SetComparator(Quantize{Digits: 9})
	quant.Expect(1, 2)
	quant.Submit(res(1, 0, 1, noisy1, false))
	v, done, _ = quant.Submit(res(1, 1, 2, noisy2, false))
	if !done || !v.Accepted || v.MismatchDetected {
		t.Fatalf("quantized matching should certify: %+v", v)
	}
	// A real cheat still mismatches under quantization.
	quant.Expect(2, 2)
	quant.Submit(res(2, 0, 1, noisy1, false))
	v, done, _ = quant.Submit(res(2, 1, 2, f2b(999.0), false))
	if !done || !v.MismatchDetected {
		t.Fatalf("quantized matching missed a real cheat: %+v", v)
	}
}

func TestCollectorQuantizedRinger(t *testing.T) {
	truth := func(int) uint64 { return f2b(1.0000000001) }
	c := NewCollector(truth)
	c.SetComparator(Quantize{Digits: 6})
	c.Expect(1, 1)
	v, done, _ := c.Submit(res(1, 0, 1, f2b(1.0000000002), true))
	if !done || !v.Accepted {
		t.Fatalf("noisy ringer result should pass quantized check: %+v", v)
	}
	c.Expect(2, 1)
	v, done, _ = c.Submit(res(2, 0, 2, f2b(2.0), true))
	if !done || !v.MismatchDetected || !c.Convicted(2) {
		t.Fatalf("wrong ringer result should convict: %+v", v)
	}
}

func TestSetComparatorNilResets(t *testing.T) {
	c := NewCollector(nil)
	c.SetComparator(nil) // resets to Exact
	c.Expect(1, 2)
	c.Submit(res(1, 0, 1, 5, false))
	v, _, _ := c.Submit(res(1, 1, 2, 5, false))
	if !v.Accepted {
		t.Error("nil comparator should behave as Exact")
	}
}

package verify

import (
	"reflect"
	"testing"

	"redundancy/internal/sched"
)

func res(task, copy, participant int, value uint64, ringer bool) Result {
	return Result{
		Assignment:  sched.Assignment{TaskID: task, Copy: copy, Ringer: ringer},
		Participant: participant,
		Value:       value,
	}
}

func TestUnanimousResultsAccepted(t *testing.T) {
	c := NewCollector(nil)
	c.Expect(1, 3)
	for i := 0; i < 2; i++ {
		v, done, err := c.Submit(res(1, i, 10+i, 42, false))
		if err != nil || done {
			t.Fatalf("early adjudication: %+v %v %v", v, done, err)
		}
	}
	v, done, err := c.Submit(res(1, 2, 12, 42, false))
	if err != nil || !done {
		t.Fatalf("final copy: done=%v err=%v", done, err)
	}
	if !v.Accepted || v.Value != 42 || v.MismatchDetected || len(v.Suspects) != 0 {
		t.Errorf("verdict = %+v", v)
	}
}

func TestUnanimousLieAcceptedUndetected(t *testing.T) {
	// The core vulnerability: a coalition holding every copy returns the
	// same wrong value and redundancy certifies it.
	c := NewCollector(nil)
	c.Expect(7, 2)
	c.Submit(res(7, 0, 1, 666, false))
	v, done, _ := c.Submit(res(7, 1, 2, 666, false))
	if !done || !v.Accepted || v.MismatchDetected {
		t.Errorf("unanimous lie should be (wrongly) accepted: %+v", v)
	}
}

func TestMismatchDetectedMajoritySuspects(t *testing.T) {
	c := NewCollector(nil)
	c.Expect(3, 3)
	c.Submit(res(3, 0, 1, 5, false))
	c.Submit(res(3, 1, 2, 5, false))
	v, done, _ := c.Submit(res(3, 2, 3, 9, false))
	if !done || !v.MismatchDetected || v.Accepted {
		t.Fatalf("verdict = %+v", v)
	}
	if !reflect.DeepEqual(v.Suspects, []int{3}) {
		t.Errorf("suspects = %v, want the minority voter", v.Suspects)
	}
}

func TestEvenSplitSuspectsEveryone(t *testing.T) {
	c := NewCollector(nil)
	c.Expect(4, 2)
	c.Submit(res(4, 0, 1, 5, false))
	v, done, _ := c.Submit(res(4, 1, 2, 9, false))
	if !done || !v.MismatchDetected {
		t.Fatalf("verdict = %+v", v)
	}
	if !reflect.DeepEqual(v.Suspects, []int{1, 2}) {
		t.Errorf("suspects = %v, want both (no majority)", v.Suspects)
	}
}

func TestRingerExposesUnanimousLie(t *testing.T) {
	truth := func(taskID int) uint64 { return 1000 + uint64(taskID) }
	c := NewCollector(truth)
	c.Expect(5, 2)
	c.Submit(res(5, 0, 1, 666, true))
	v, done, _ := c.Submit(res(5, 1, 2, 666, true))
	if !done || !v.MismatchDetected || v.Accepted {
		t.Fatalf("ringer lie not detected: %+v", v)
	}
	if !reflect.DeepEqual(v.Suspects, []int{1, 2}) {
		t.Errorf("suspects = %v", v.Suspects)
	}
	if v.Value != 1005 {
		t.Errorf("certified value = %d, want the precomputed truth", v.Value)
	}
}

func TestRingerCorrectResultsAccepted(t *testing.T) {
	truth := func(taskID int) uint64 { return 77 }
	c := NewCollector(truth)
	c.Expect(9, 1)
	v, done, _ := c.Submit(res(9, 0, 4, 77, true))
	if !done || !v.Accepted || v.MismatchDetected {
		t.Errorf("verdict = %+v", v)
	}
}

func TestRingerWithoutOraclePanics(t *testing.T) {
	c := NewCollector(nil)
	c.Expect(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Submit(res(1, 0, 1, 5, true))
}

func TestUnregisteredTaskRejected(t *testing.T) {
	c := NewCollector(nil)
	if _, _, err := c.Submit(res(1, 0, 1, 5, false)); err == nil {
		t.Error("expected error for unregistered task")
	}
}

func TestTooManyResultsRejected(t *testing.T) {
	c := NewCollector(nil)
	c.Expect(1, 1)
	c.Submit(res(1, 0, 1, 5, false))
	if _, _, err := c.Submit(res(1, 1, 2, 5, false)); err == nil {
		t.Error("expected error for extra result")
	}
}

func TestExpectPanicsOnZeroCopies(t *testing.T) {
	c := NewCollector(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Expect(1, 0)
}

func TestBlacklistAccumulates(t *testing.T) {
	c := NewCollector(nil)
	c.Expect(1, 2)
	c.Expect(2, 3)
	c.Submit(res(1, 0, 10, 5, false))
	c.Submit(res(1, 1, 11, 6, false)) // even split: both suspects
	c.Submit(res(2, 0, 20, 1, false))
	c.Submit(res(2, 1, 21, 1, false))
	c.Submit(res(2, 2, 22, 2, false)) // minority suspect 22
	want := []int{10, 11, 22}
	if got := c.Blacklist(); !reflect.DeepEqual(got, want) {
		t.Errorf("blacklist = %v, want %v", got, want)
	}
	if !c.Blacklisted(22) || c.Blacklisted(21) {
		t.Error("Blacklisted lookup wrong")
	}
}

func TestStatsAndCallback(t *testing.T) {
	truth := func(int) uint64 { return 0 }
	c := NewCollector(truth)
	var seen []Verdict
	c.OnVerdict(func(v *Verdict) { seen = append(seen, *v) })

	c.Expect(1, 2)
	c.Expect(2, 2)
	c.Expect(3, 1)
	c.Submit(res(1, 0, 1, 5, false))
	c.Submit(res(1, 1, 2, 5, false)) // accepted
	c.Submit(res(2, 0, 3, 5, false))
	c.Submit(res(2, 1, 4, 6, false)) // mismatch
	c.Submit(res(3, 0, 5, 9, true))  // ringer caught

	s := c.Stats()
	if s.Tasks != 3 || s.Accepted != 1 || s.MismatchDetected != 2 || s.RingersCaught != 1 {
		t.Errorf("stats = %+v", s)
	}
	if len(seen) != 3 || len(c.Verdicts()) != 3 {
		t.Errorf("verdict stream: callback %d, stored %d", len(seen), len(c.Verdicts()))
	}
	if c.PendingTasks() != 0 {
		t.Errorf("pending = %d", c.PendingTasks())
	}
}

func TestTieBreakIsDeterministic(t *testing.T) {
	// Two values with equal counts: the smaller value is chosen as the
	// "majority" reference, and with no strict majority all are suspects.
	c := NewCollector(nil)
	c.Expect(1, 4)
	c.Submit(res(1, 0, 1, 9, false))
	c.Submit(res(1, 1, 2, 9, false))
	c.Submit(res(1, 2, 3, 4, false))
	v, done, _ := c.Submit(res(1, 3, 4, 4, false))
	if !done || !v.MismatchDetected {
		t.Fatalf("verdict = %+v", v)
	}
	if !reflect.DeepEqual(v.Suspects, []int{1, 2, 3, 4}) {
		t.Errorf("suspects = %v, want all four", v.Suspects)
	}
}

func TestConvictionRequiresRingerEvidence(t *testing.T) {
	truth := func(int) uint64 { return 11 }
	c := NewCollector(truth)
	// Regular 2-way mismatch: both suspected, neither convicted.
	c.Expect(1, 2)
	c.Submit(res(1, 0, 1, 5, false))
	c.Submit(res(1, 1, 2, 6, false))
	if c.Convicted(1) || c.Convicted(2) {
		t.Error("circumstantial mismatch must not convict")
	}
	if !c.Blacklisted(1) || !c.Blacklisted(2) {
		t.Error("mismatch suspects should be blacklisted")
	}
	// Ringer mismatch: conclusive.
	c.Expect(2, 1)
	c.Submit(res(2, 0, 3, 999, true))
	if !c.Convicted(3) {
		t.Error("ringer cheat must convict")
	}
	if got := c.ConvictedList(); len(got) != 1 || got[0] != 3 {
		t.Errorf("ConvictedList = %v", got)
	}
}

func TestDuplicateCopyRejected(t *testing.T) {
	c := NewCollector(nil)
	c.Expect(5, 2)
	if _, _, err := c.Submit(res(5, 0, 1, 42, false)); err != nil {
		t.Fatal(err)
	}
	// A speculative duplicate of copy 0 from a different participant must not
	// count toward the quorum, even with a matching value.
	if _, done, err := c.Submit(res(5, 0, 2, 42, false)); err == nil || done {
		t.Fatalf("duplicate copy accepted: done=%v err=%v", done, err)
	}
	// The legitimate second copy still adjudicates normally.
	v, done, err := c.Submit(res(5, 1, 3, 42, false))
	if err != nil || !done || !v.Accepted {
		t.Fatalf("legitimate copy after duplicate: %+v done=%v err=%v", v, done, err)
	}
	if len(v.Contributors) != 2 {
		t.Errorf("contributors = %v, want the two distinct copies", v.Contributors)
	}
}

package verify

import (
	"fmt"
	"math"
	"strconv"
)

// Comparator canonicalizes returned values before they are matched. Two
// results agree iff their canonical forms are equal, which keeps majority
// voting transitive (pairwise tolerance comparison is not). The zero
// default used by NewCollector is exact bit equality.
type Comparator interface {
	// Canonical maps a raw returned value to the form used for matching.
	Canonical(v uint64) uint64
	// Name identifies the comparator in logs.
	Name() string
}

// Exact matches values bit for bit — correct for integer and hash-valued
// work functions, and the behavior the paper's model assumes.
type Exact struct{}

// Canonical implements Comparator.
func (Exact) Canonical(v uint64) uint64 { return v }

// Name implements Comparator.
func (Exact) Name() string { return "exact" }

// Quantize treats values as float64 bit patterns and rounds them to
// Digits significant decimal digits before matching. Scientific volunteer
// workloads (different FPUs, compiler flags, instruction orderings) return
// results that agree only to a tolerance; quantization makes redundancy
// verification usable for them while keeping matching transitive.
//
// NaNs canonicalize to one fixed pattern; ±0 collapse to +0.
type Quantize struct {
	// Digits is the number of significant decimal digits preserved
	// (1..15). Fewer digits = looser matching.
	Digits int
}

// Canonical implements Comparator.
func (q Quantize) Canonical(v uint64) uint64 {
	d := q.Digits
	if d < 1 {
		d = 1
	}
	if d > 15 {
		d = 15
	}
	f := math.Float64frombits(v)
	switch {
	case math.IsNaN(f):
		return math.Float64bits(math.NaN())
	case f == 0: // collapses -0 and +0
		return math.Float64bits(0)
	case math.IsInf(f, 0):
		return math.Float64bits(f)
	}
	// Round via a decimal string round-trip: exact decimal rounding for
	// every finite float64 (subnormals included, where a power-of-ten
	// scale factor would overflow) and idempotent by construction.
	s := strconv.FormatFloat(f, 'e', d-1, 64)
	rounded, err := strconv.ParseFloat(s, 64)
	if err != nil { // unreachable: FormatFloat output always parses
		return v
	}
	return math.Float64bits(rounded)
}

// Name implements Comparator.
func (q Quantize) Name() string { return fmt.Sprintf("quantize-%d", q.Digits) }

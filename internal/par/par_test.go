package par

import (
	"reflect"
	"sync/atomic"
	"testing"

	"redundancy/internal/rng"
)

func TestForEachCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		const n = 1000
		var counts [n]atomic.Int32
		ForEach(n, workers, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachZeroTasks(t *testing.T) {
	ran := false
	ForEach(0, 4, func(int) { ran = true })
	if ran {
		t.Error("fn ran with n=0")
	}
}

func TestMapSliceOrderIndependentOfWorkers(t *testing.T) {
	fn := func(i int) uint64 {
		// Simulate per-trial RNG derivation: stream depends only on i.
		return rng.New(42).Split(uint64(i)).Uint64()
	}
	seq := MapSlice(5000, 1, fn)
	for _, workers := range []int{2, 4, 32} {
		got := MapSlice(5000, workers, fn)
		if !reflect.DeepEqual(got, seq) {
			t.Fatalf("workers=%d produced different results than sequential", workers)
		}
	}
}

func TestReduceIsDeterministic(t *testing.T) {
	// Floating-point accumulation order matters; Reduce must fold in index
	// order so parallel == sequential exactly.
	fn := func(i int) float64 {
		return rng.New(7).Split(uint64(i)).Float64() * 1e6
	}
	fold := func(a, v float64) float64 { return a + v }
	seq := Reduce(20_000, 1, fn, 0.0, fold)
	for _, workers := range []int{3, 8} {
		if got := Reduce(20_000, workers, fn, 0.0, fold); got != seq {
			t.Fatalf("workers=%d: %v != sequential %v (bit-exact required)", workers, got, seq)
		}
	}
}

func TestWorkersBounds(t *testing.T) {
	if Workers(0) < 1 {
		t.Error("Workers(0) < 1")
	}
	if Workers(1) != 1 {
		t.Errorf("Workers(1) = %d", Workers(1))
	}
	if Workers(1_000_000) < 1 {
		t.Error("Workers(big) < 1")
	}
}

func BenchmarkForEachOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ForEach(64, 0, func(int) {})
	}
}

// Package par is the parallel-execution substrate for the Monte-Carlo
// harnesses: fixed-size worker pools that fan independent trials out across
// CPUs while keeping results bit-for-bit deterministic.
//
// Determinism is non-negotiable for a reproduction: every experiment must
// produce the same numbers whether it runs on 1 core or 64. The package
// guarantees it by (a) deriving each trial's random stream from the trial
// index alone (callers use rng.Source.Split) and (b) returning results in
// trial order regardless of completion order.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers returns the worker count to use for n tasks: never more workers
// than tasks, never more than GOMAXPROCS, and at least one.
func Workers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if n < w {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEach runs fn(i) for every i in [0, n) on a pool of workers. It blocks
// until all calls return. workers <= 0 selects Workers(n).
func ForEach(n, workers int, fn func(i int)) {
	ForEachWorker(n, workers, func(_, i int) { fn(i) })
}

// ForEachWorker is ForEach with the pool slot exposed: fn(worker, i) is
// called with worker in [0, Pool(n, workers)), and at most one call per
// slot runs at a time. Callers use the slot to reuse per-worker scratch
// state (arenas, simulation engines) without locking — which trial lands
// on which slot still depends on scheduling, so fn must keep results a
// function of i alone for the fan-out to stay deterministic.
func ForEachWorker(n, workers int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	workers = Pool(n, workers)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(slot, i)
			}
		}(w)
	}
	wg.Wait()
}

// Pool normalizes a caller-requested worker count for n tasks: non-positive
// means Workers(n); otherwise the request is honored (capped at n so idle
// goroutines are never spawned) — an explicit workers=16 on a 1-core box
// still runs 16 interleaved slots, which is what the determinism-under-
// parallelism tests exercise.
func Pool(n, workers int) int {
	if workers <= 0 {
		return Workers(n)
	}
	if workers > n {
		workers = n
	}
	return workers
}

// MapSlice computes out[i] = fn(i) for i in [0, n) in parallel, returning
// results in index order (deterministic independent of scheduling).
func MapSlice[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) { out[i] = fn(i) })
	return out
}

// Reduce runs fn(i) for every trial i in parallel and folds the results
// into an accumulator with combine, applied in strict index order — so any
// non-commutative combination (floating-point sums included) is as
// deterministic as a sequential loop.
func Reduce[T, A any](n, workers int, fn func(i int) T, acc A, combine func(A, T) A) A {
	results := MapSlice(n, workers, fn)
	for _, r := range results {
		acc = combine(acc, r)
	}
	return acc
}

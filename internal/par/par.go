// Package par is the parallel-execution substrate for the Monte-Carlo
// harnesses: fixed-size worker pools that fan independent trials out across
// CPUs while keeping results bit-for-bit deterministic.
//
// Determinism is non-negotiable for a reproduction: every experiment must
// produce the same numbers whether it runs on 1 core or 64. The package
// guarantees it by (a) deriving each trial's random stream from the trial
// index alone (callers use rng.Source.Split) and (b) returning results in
// trial order regardless of completion order.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers returns the worker count to use for n tasks: never more workers
// than tasks, never more than GOMAXPROCS, and at least one.
func Workers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if n < w {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEach runs fn(i) for every i in [0, n) on a pool of workers. It blocks
// until all calls return. workers <= 0 selects Workers(n).
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = Workers(n)
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// MapSlice computes out[i] = fn(i) for i in [0, n) in parallel, returning
// results in index order (deterministic independent of scheduling).
func MapSlice[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) { out[i] = fn(i) })
	return out
}

// Reduce runs fn(i) for every trial i in parallel and folds the results
// into an accumulator with combine, applied in strict index order — so any
// non-commutative combination (floating-point sums included) is as
// deterministic as a sequential loop.
func Reduce[T, A any](n, workers int, fn func(i int) T, acc A, combine func(A, T) A) A {
	results := MapSlice(n, workers, fn)
	for _, r := range results {
		acc = combine(acc, r)
	}
	return acc
}

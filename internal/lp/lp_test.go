package lp

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"redundancy/internal/numeric"
	"redundancy/internal/rng"
)

func solveBoth(t *testing.T, p Problem) Solution {
	t.Helper()
	sb, errB := Solve(p, Bland)
	sd, errD := Solve(p, Dantzig)
	if (errB == nil) != (errD == nil) {
		t.Fatalf("pivot rules disagree: Bland err=%v, Dantzig err=%v", errB, errD)
	}
	if errB != nil {
		t.Fatalf("solve failed: %v", errB)
	}
	if !numeric.AlmostEqual(sb.Objective, sd.Objective, 1e-7) {
		t.Fatalf("pivot rules disagree on optimum: %v vs %v", sb.Objective, sd.Objective)
	}
	if !Feasible(p, sb.X, 1e-7) {
		t.Fatalf("Bland solution infeasible: %v", sb.X)
	}
	if !Feasible(p, sd.X, 1e-7) {
		t.Fatalf("Dantzig solution infeasible: %v", sd.X)
	}
	return sb
}

func TestSimpleMaximizationAsMinimization(t *testing.T) {
	// max 3x + 5y s.t. x<=4, 2y<=12, 3x+2y<=18  => optimum 36 at (2,6).
	p := Problem{
		Objective: []float64{-3, -5},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 0}, Op: LE, RHS: 4},
			{Coeffs: []float64{0, 2}, Op: LE, RHS: 12},
			{Coeffs: []float64{3, 2}, Op: LE, RHS: 18},
		},
	}
	s := solveBoth(t, p)
	if !numeric.AlmostEqual(s.Objective, -36, 1e-9) {
		t.Errorf("objective = %v, want -36", s.Objective)
	}
	if !numeric.AlmostEqual(s.X[0], 2, 1e-9) || !numeric.AlmostEqual(s.X[1], 6, 1e-9) {
		t.Errorf("x = %v, want (2,6)", s.X)
	}
}

func TestEqualityAndGE(t *testing.T) {
	// min x + 2y s.t. x + y = 10, x >= 3, y >= 2  => (8,2), objective 12.
	p := Problem{
		Objective: []float64{1, 2},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Op: EQ, RHS: 10},
			{Coeffs: []float64{1, 0}, Op: GE, RHS: 3},
			{Coeffs: []float64{0, 1}, Op: GE, RHS: 2},
		},
	}
	s := solveBoth(t, p)
	if !numeric.AlmostEqual(s.Objective, 12, 1e-9) {
		t.Errorf("objective = %v, want 12", s.Objective)
	}
	if !numeric.AlmostEqual(s.X[0], 8, 1e-9) || !numeric.AlmostEqual(s.X[1], 2, 1e-9) {
		t.Errorf("x = %v, want (8,2)", s.X)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// min x s.t. -x <= -5  (i.e. x >= 5).
	p := Problem{
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{-1}, Op: LE, RHS: -5},
		},
	}
	s := solveBoth(t, p)
	if !numeric.AlmostEqual(s.X[0], 5, 1e-9) {
		t.Errorf("x = %v, want 5", s.X[0])
	}
}

func TestInfeasible(t *testing.T) {
	p := Problem{
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Op: LE, RHS: 1},
			{Coeffs: []float64{1, 1}, Op: GE, RHS: 3},
		},
	}
	s, err := Solve(p, Bland)
	if !errors.Is(err, ErrInfeasible) || s.Status != Infeasible {
		t.Errorf("want infeasible, got status=%v err=%v", s.Status, err)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x s.t. x >= 1: x can grow without bound.
	p := Problem{
		Objective: []float64{-1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Op: GE, RHS: 1},
		},
	}
	s, err := Solve(p, Bland)
	if !errors.Is(err, ErrUnbounded) || s.Status != Unbounded {
		t.Errorf("want unbounded, got status=%v err=%v", s.Status, err)
	}
}

func TestNoVariables(t *testing.T) {
	if _, err := Solve(Problem{}, Bland); err == nil {
		t.Error("expected error for empty problem")
	}
}

func TestDegenerateProblem(t *testing.T) {
	// Beale's classic cycling example (degenerate); Bland must terminate.
	p := Problem{
		Objective: []float64{-0.75, 150, -0.02, 6},
		Constraints: []Constraint{
			{Coeffs: []float64{0.25, -60, -0.04, 9}, Op: LE, RHS: 0},
			{Coeffs: []float64{0.5, -90, -0.02, 3}, Op: LE, RHS: 0},
			{Coeffs: []float64{0, 0, 1, 0}, Op: LE, RHS: 1},
		},
	}
	s := solveBoth(t, p)
	if !numeric.AlmostEqual(s.Objective, -0.05, 1e-9) {
		t.Errorf("Beale optimum = %v, want -1/20", s.Objective)
	}
}

func TestRedundantEqualityRows(t *testing.T) {
	// x + y = 4 listed twice: phase 1 leaves a redundant artificial basic.
	p := Problem{
		Objective: []float64{1, 3},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Op: EQ, RHS: 4},
			{Coeffs: []float64{2, 2}, Op: EQ, RHS: 8},
		},
	}
	s := solveBoth(t, p)
	if !numeric.AlmostEqual(s.Objective, 4, 1e-9) {
		t.Errorf("objective = %v, want 4 (all mass on x)", s.Objective)
	}
}

func TestTransportationProblem(t *testing.T) {
	// 2 supplies (10, 20), 2 demands (15, 15), costs [[1 2],[3 1]].
	// Optimal: ship 10 via (0,0), 5 via (1,0), 15 via (1,1): cost 40.
	p := Problem{
		Objective: []float64{1, 2, 3, 1}, // x00 x01 x10 x11
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1, 0, 0}, Op: EQ, RHS: 10},
			{Coeffs: []float64{0, 0, 1, 1}, Op: EQ, RHS: 20},
			{Coeffs: []float64{1, 0, 1, 0}, Op: EQ, RHS: 15},
			{Coeffs: []float64{0, 1, 0, 1}, Op: EQ, RHS: 15},
		},
	}
	s := solveBoth(t, p)
	if !numeric.AlmostEqual(s.Objective, 40, 1e-9) {
		t.Errorf("transport cost = %v, want 40", s.Objective)
	}
}

// TestRandomProblemsAgainstBruteForce cross-checks the simplex optimum on
// random 2-variable problems against a fine grid search over the feasible
// region, which is a crude but independent oracle.
func TestRandomProblemsAgainstBruteForce(t *testing.T) {
	r := rng.New(2024)
	for trial := 0; trial < 60; trial++ {
		p := Problem{Objective: []float64{r.Float64()*4 - 2, r.Float64()*4 - 2}}
		nc := 2 + r.Intn(3)
		for i := 0; i < nc; i++ {
			p.Constraints = append(p.Constraints, Constraint{
				Coeffs: []float64{r.Float64() * 2, r.Float64() * 2},
				Op:     LE,
				RHS:    1 + r.Float64()*4,
			})
		}
		// Bound the region so the problem is never unbounded.
		p.Constraints = append(p.Constraints,
			Constraint{Coeffs: []float64{1, 0}, Op: LE, RHS: 10},
			Constraint{Coeffs: []float64{0, 1}, Op: LE, RHS: 10},
		)
		s, err := Solve(p, Dantzig)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !Feasible(p, s.X, 1e-7) {
			t.Fatalf("trial %d: infeasible solution", trial)
		}
		// Grid search.
		best := math.Inf(1)
		const steps = 120
		for i := 0; i <= steps; i++ {
			for j := 0; j <= steps; j++ {
				x := []float64{10 * float64(i) / steps, 10 * float64(j) / steps}
				if Feasible(p, x, 1e-12) {
					v := p.Objective[0]*x[0] + p.Objective[1]*x[1]
					if v < best {
						best = v
					}
				}
			}
		}
		if s.Objective > best+1e-6 {
			t.Errorf("trial %d: simplex %v worse than grid %v", trial, s.Objective, best)
		}
	}
}

func TestFeasibleChecksNonNegativity(t *testing.T) {
	p := Problem{Objective: []float64{1}}
	if Feasible(p, []float64{-1}, 1e-9) {
		t.Error("negative x should be infeasible")
	}
	if !Feasible(p, []float64{0}, 1e-9) {
		t.Error("zero should be feasible with no constraints")
	}
}

func TestFeasibleShortCoeffVectors(t *testing.T) {
	// Constraint coefficient vectors shorter than x are zero-padded.
	p := Problem{
		Objective:   []float64{1, 1, 1},
		Constraints: []Constraint{{Coeffs: []float64{1}, Op: GE, RHS: 2}},
	}
	if !Feasible(p, []float64{2, 0, 0}, 1e-9) {
		t.Error("padded constraint evaluation wrong")
	}
	s := solveBoth(t, p)
	if !numeric.AlmostEqual(s.Objective, 2, 1e-9) {
		t.Errorf("objective = %v", s.Objective)
	}
}

// TestScalingProperty: scaling the RHS of every constraint scales the
// optimum linearly (the LP is homogeneous). This is the property that lets
// the dist package solve S_m at N=1 and scale up.
func TestScalingProperty(t *testing.T) {
	base := Problem{
		Objective: []float64{1, 2, 3},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1, 1}, Op: EQ, RHS: 1},
			{Coeffs: []float64{1, -1, 0}, Op: LE, RHS: 0.25},
			{Coeffs: []float64{0, 1, 2}, Op: GE, RHS: 0.5},
		},
	}
	s1, err := Solve(base, Bland)
	if err != nil {
		t.Fatal(err)
	}
	f := func(scaleRaw uint8) bool {
		scale := 1 + float64(scaleRaw%100)
		scaled := Problem{Objective: base.Objective}
		for _, c := range base.Constraints {
			scaled.Constraints = append(scaled.Constraints,
				Constraint{Coeffs: c.Coeffs, Op: c.Op, RHS: c.RHS * scale})
		}
		s2, err := Solve(scaled, Bland)
		if err != nil {
			return false
		}
		return numeric.AlmostEqual(s2.Objective, s1.Objective*scale, 1e-7)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStatusStrings(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" ||
		Unbounded.String() != "unbounded" || Status(42).String() == "" {
		t.Error("Status.String misbehaves")
	}
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "==" || Op(9).String() == "" {
		t.Error("Op.String misbehaves")
	}
}

func BenchmarkSolveBland(b *testing.B) {
	p := benchProblem()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p, Bland); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveDantzig(b *testing.B) {
	p := benchProblem()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p, Dantzig); err != nil {
			b.Fatal(err)
		}
	}
}

// benchProblem builds a moderately sized random-but-fixed LP.
func benchProblem() Problem {
	r := rng.New(7)
	const n, m = 30, 25
	p := Problem{Objective: make([]float64, n)}
	for j := range p.Objective {
		p.Objective[j] = r.Float64()
	}
	for i := 0; i < m; i++ {
		c := Constraint{Coeffs: make([]float64, n), Op: LE, RHS: 5 + r.Float64()*10}
		for j := range c.Coeffs {
			c.Coeffs[j] = r.Float64()
		}
		p.Constraints = append(p.Constraints, c)
	}
	p.Constraints = append(p.Constraints, Constraint{
		Coeffs: onesVec(n), Op: GE, RHS: 3,
	})
	return p
}

func onesVec(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// dualityGap returns |c·x − y·b| for a solved problem.
func dualityGap(p Problem, s Solution) float64 {
	var yb float64
	for i, c := range p.Constraints {
		yb += s.Duals[i] * c.RHS
	}
	return math.Abs(s.Objective - yb)
}

func TestStrongDualityOnKnownProblems(t *testing.T) {
	problems := []Problem{
		{ // max 3x+5y example (as a min problem)
			Objective: []float64{-3, -5},
			Constraints: []Constraint{
				{Coeffs: []float64{1, 0}, Op: LE, RHS: 4},
				{Coeffs: []float64{0, 2}, Op: LE, RHS: 12},
				{Coeffs: []float64{3, 2}, Op: LE, RHS: 18},
			},
		},
		{ // mixed EQ/GE
			Objective: []float64{1, 2},
			Constraints: []Constraint{
				{Coeffs: []float64{1, 1}, Op: EQ, RHS: 10},
				{Coeffs: []float64{1, 0}, Op: GE, RHS: 3},
				{Coeffs: []float64{0, 1}, Op: GE, RHS: 2},
			},
		},
		{ // negative RHS (normalization flips the row)
			Objective: []float64{1},
			Constraints: []Constraint{
				{Coeffs: []float64{-1}, Op: LE, RHS: -5},
			},
		},
		benchProblem(),
	}
	for i, p := range problems {
		for _, rule := range []PivotRule{Bland, Dantzig} {
			s, err := Solve(p, rule)
			if err != nil {
				t.Fatalf("problem %d: %v", i, err)
			}
			if len(s.Duals) != len(p.Constraints) {
				t.Fatalf("problem %d: %d duals for %d constraints", i, len(s.Duals), len(p.Constraints))
			}
			if gap := dualityGap(p, s); gap > 1e-7*(1+math.Abs(s.Objective)) {
				t.Errorf("problem %d rule %v: duality gap %v (obj %v, duals %v)",
					i, rule, gap, s.Objective, s.Duals)
			}
		}
	}
}

func TestDualSignsAndComplementarySlackness(t *testing.T) {
	// min x+2y s.t. x+y >= 4 (binding), x <= 10 (slack), y >= 1 (binding).
	p := Problem{
		Objective: []float64{1, 2},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Op: GE, RHS: 4},
			{Coeffs: []float64{1, 0}, Op: LE, RHS: 10},
			{Coeffs: []float64{0, 1}, Op: GE, RHS: 1},
		},
	}
	s, err := Solve(p, Dantzig)
	if err != nil {
		t.Fatal(err)
	}
	// Optimum: y=1 (forced), x=3, objective 5.
	if !numeric.AlmostEqual(s.Objective, 5, 1e-9) {
		t.Fatalf("objective %v", s.Objective)
	}
	// Slack constraint (x <= 10 not binding) must have zero dual.
	if math.Abs(s.Duals[1]) > 1e-9 {
		t.Errorf("non-binding constraint has dual %v", s.Duals[1])
	}
	// Binding GE constraints in a min problem have non-negative duals.
	if s.Duals[0] < -1e-9 || s.Duals[2] < -1e-9 {
		t.Errorf("GE duals negative: %v", s.Duals)
	}
	if gap := dualityGap(p, s); gap > 1e-9 {
		t.Errorf("duality gap %v", gap)
	}
}

func TestDualsPredictSensitivity(t *testing.T) {
	// Shadow price check: raising a binding RHS by δ moves the optimum by
	// ≈ dual·δ.
	base := Problem{
		Objective: []float64{2, 3},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Op: GE, RHS: 6},
			{Coeffs: []float64{1, 3}, Op: GE, RHS: 9},
		},
	}
	s0, err := Solve(base, Bland)
	if err != nil {
		t.Fatal(err)
	}
	const delta = 0.01
	for i := range base.Constraints {
		bumped := Problem{Objective: base.Objective}
		for j, c := range base.Constraints {
			rhs := c.RHS
			if j == i {
				rhs += delta
			}
			bumped.Constraints = append(bumped.Constraints, Constraint{Coeffs: c.Coeffs, Op: c.Op, RHS: rhs})
		}
		s1, err := Solve(bumped, Bland)
		if err != nil {
			t.Fatal(err)
		}
		predicted := s0.Objective + s0.Duals[i]*delta
		if math.Abs(s1.Objective-predicted) > 1e-9 {
			t.Errorf("constraint %d: bumped objective %v, dual predicts %v", i, s1.Objective, predicted)
		}
	}
}

func TestStrongDualityOnPaperSystems(t *testing.T) {
	// The S_m systems themselves: homogeneous detection rows (RHS 0) plus
	// the unit-mass row, so strong duality reduces to optimum == dual of
	// the mass constraint.
	for _, dim := range []int{6, 12, 19, 26} {
		p := buildSystemForTest(0.5, dim)
		s, err := Solve(p, Dantzig)
		if err != nil {
			t.Fatalf("S_%d: %v", dim, err)
		}
		if gap := dualityGap(p, s); gap > 1e-7 {
			t.Errorf("S_%d: duality gap %v", dim, gap)
		}
		if !numeric.AlmostEqual(s.Duals[0], s.Objective, 1e-7) {
			t.Errorf("S_%d: mass-row dual %v should equal the optimum %v (all other RHS are 0)",
				dim, s.Duals[0], s.Objective)
		}
	}
}

// buildSystemForTest mirrors dist.BuildSystem without the import cycle.
func buildSystemForTest(eps float64, dim int) Problem {
	obj := make([]float64, dim)
	for i := range obj {
		obj[i] = float64(i + 1)
	}
	p := Problem{Objective: obj}
	ones := make([]float64, dim)
	for i := range ones {
		ones[i] = 1
	}
	p.Constraints = append(p.Constraints, Constraint{Coeffs: ones, Op: EQ, RHS: 1})
	for j := 1; j < dim; j++ {
		coeffs := make([]float64, dim)
		coeffs[j-1] = eps
		binom := 1.0
		maxAbs := eps
		for i := j + 1; i <= dim; i++ {
			binom = binom * float64(i) / float64(i-j)
			coeffs[i-1] = -(1 - eps) * binom
			if a := -coeffs[i-1]; a > maxAbs {
				maxAbs = a
			}
		}
		for i := range coeffs {
			coeffs[i] /= maxAbs
		}
		p.Constraints = append(p.Constraints, Constraint{Coeffs: coeffs, Op: LE, RHS: 0})
	}
	return p
}

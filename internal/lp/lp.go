// Package lp implements a small, dependency-free linear-programming solver:
// a dense two-phase primal simplex over problems of the form
//
//	minimize  c·x
//	subject to  a_i·x (<=|=|>=) b_i,  x >= 0.
//
// The assignment-minimizing systems S_m of Szajda, Lawson and Owen ("an
// elementary linear programming problem", §3.2) have a few dozen variables
// and constraints, so a dense tableau is simple, exact enough, and fast.
// Bland's pivot rule guarantees termination; a Dantzig-rule mode is provided
// for the pivot-rule ablation benchmark.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Op is a constraint relation.
type Op int

// Constraint relations.
const (
	LE Op = iota // a·x <= b
	GE           // a·x >= b
	EQ           // a·x == b
)

func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Constraint is a single linear constraint a·x (op) b. Coeffs shorter than
// the variable count are implicitly zero-padded.
type Constraint struct {
	Coeffs []float64
	Op     Op
	RHS    float64
}

// Problem is a minimization problem over n = len(Objective) non-negative
// variables.
type Problem struct {
	Objective   []float64
	Constraints []Constraint
}

// PivotRule selects the entering-variable heuristic.
type PivotRule int

// Available pivot rules.
const (
	// Bland chooses the lowest-index improving column; it cannot cycle.
	Bland PivotRule = iota
	// Dantzig chooses the most-negative reduced cost; usually fewer
	// iterations, but can cycle on degenerate problems, so the solver
	// falls back to Bland after a stall.
	Dantzig
)

// Status reports how a solve ended.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution is the result of a successful or failed solve.
type Solution struct {
	Status    Status
	X         []float64 // variable values (valid only when Status == Optimal)
	Objective float64   // c·X
	Pivots    int       // total simplex pivots across both phases
	// Duals holds the dual value (shadow price) of each constraint, in the
	// caller's orientation: at the optimum, Σ Duals[i]·RHS[i] equals the
	// objective (strong duality), and a small relaxation of constraint i's
	// RHS changes the optimum at rate Duals[i]. Entries for constraints
	// found redundant in phase 1 are unspecified (a redundant row has no
	// unique shadow price).
	Duals []float64
}

// Errors returned by Solve.
var (
	ErrInfeasible = errors.New("lp: problem is infeasible")
	ErrUnbounded  = errors.New("lp: problem is unbounded")
	ErrIterations = errors.New("lp: iteration limit exceeded")
)

const eps = 1e-9

// Solve runs two-phase simplex with the given pivot rule and returns the
// optimal solution. The returned error wraps ErrInfeasible/ErrUnbounded
// when the problem has no optimum.
func Solve(p Problem, rule PivotRule) (Solution, error) {
	n := len(p.Objective)
	if n == 0 {
		return Solution{}, errors.New("lp: no variables")
	}
	t := newTableau(p)

	// Phase 1: minimize the sum of artificial variables.
	if t.numArtificial > 0 {
		t.installPhase1Objective()
		if err := t.iterate(rule); err != nil {
			return Solution{Status: Infeasible, Pivots: t.pivots}, err
		}
		if t.objectiveValue() > 1e-7 {
			return Solution{Status: Infeasible, Pivots: t.pivots}, ErrInfeasible
		}
		t.driveOutArtificials()
	}

	// Phase 2: original objective, artificials barred from entering.
	t.installPhase2Objective(p.Objective)
	if err := t.iterate(rule); err != nil {
		if errors.Is(err, ErrUnbounded) {
			return Solution{Status: Unbounded, Pivots: t.pivots}, err
		}
		return Solution{Status: Infeasible, Pivots: t.pivots}, err
	}

	x := make([]float64, n)
	for i, bv := range t.basis {
		if bv < n {
			x[bv] = t.rhs(i)
		}
	}
	var obj float64
	for j, c := range p.Objective {
		obj += c * x[j]
	}
	return Solution{Status: Optimal, X: x, Objective: obj, Pivots: t.pivots, Duals: t.duals()}, nil
}

// tableau is a dense simplex tableau. Rows 0..m-1 are constraints; row m is
// the objective (reduced costs). Column layout: structural variables,
// slack/surplus variables, artificial variables, RHS.
type tableau struct {
	rows          [][]float64
	m             int // constraint rows
	cols          int // total variable columns (excl. RHS)
	numStruct     int
	numArtificial int
	artStart      int // first artificial column
	basis         []int
	pivots        int

	// Dual extraction bookkeeping: for each row, an auxiliary "probe"
	// column whose original matrix column is probeSign[i]·e_i, and whether
	// the row's orientation was flipped during RHS normalization.
	probeCol  []int
	probeSign []float64
	flipped   []bool
}

func newTableau(p Problem) *tableau {
	n := len(p.Objective)
	m := len(p.Constraints)

	// Count auxiliary columns. Rows are first normalized to RHS >= 0.
	type rowPlan struct {
		coeffs  []float64
		rhs     float64
		op      Op
		flipped bool
	}
	plans := make([]rowPlan, m)
	numSlack := 0
	numArt := 0
	for i, c := range p.Constraints {
		coeffs := make([]float64, n)
		copy(coeffs, c.Coeffs)
		rhs, op := c.RHS, c.Op
		if rhs < 0 {
			for j := range coeffs {
				coeffs[j] = -coeffs[j]
			}
			rhs = -rhs
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		plans[i] = rowPlan{coeffs, rhs, op, op != c.Op || (c.RHS < 0 && c.Op == EQ)}
		switch op {
		case LE:
			numSlack++
		case GE:
			numSlack++
			numArt++
		case EQ:
			numArt++
		}
	}

	t := &tableau{
		m:             m,
		numStruct:     n,
		numArtificial: numArt,
		cols:          n + numSlack + numArt,
	}
	t.artStart = n + numSlack
	t.rows = make([][]float64, m+1)
	for i := range t.rows {
		t.rows[i] = make([]float64, t.cols+1)
	}
	t.basis = make([]int, m)
	t.probeCol = make([]int, m)
	t.probeSign = make([]float64, m)
	t.flipped = make([]bool, m)

	slackCol := n
	artCol := t.artStart
	for i, pl := range plans {
		row := t.rows[i]
		copy(row, pl.coeffs)
		row[t.cols] = pl.rhs
		t.flipped[i] = pl.flipped
		switch pl.op {
		case LE:
			row[slackCol] = 1
			t.basis[i] = slackCol
			t.probeCol[i], t.probeSign[i] = slackCol, 1
			slackCol++
		case GE:
			row[slackCol] = -1
			t.probeCol[i], t.probeSign[i] = slackCol, -1
			slackCol++
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		case EQ:
			row[artCol] = 1
			t.basis[i] = artCol
			t.probeCol[i], t.probeSign[i] = artCol, 1
			artCol++
		}
	}
	return t
}

// duals reads the dual values off the final objective row: the reduced cost
// of a zero-cost probe column with matrix column s·e_i is −s·y_i.
func (t *tableau) duals() []float64 {
	obj := t.rows[t.m]
	y := make([]float64, t.m)
	for i := 0; i < t.m; i++ {
		v := -t.probeSign[i] * obj[t.probeCol[i]]
		if t.flipped[i] {
			v = -v
		}
		y[i] = v
	}
	return y
}

func (t *tableau) rhs(i int) float64 { return t.rows[i][t.cols] }

func (t *tableau) objectiveValue() float64 { return -t.rows[t.m][t.cols] }

// installPhase1Objective sets the objective row to minimize the sum of
// artificial variables, expressed in terms of the current (artificial)
// basis so reduced costs of basic variables are zero.
func (t *tableau) installPhase1Objective() {
	obj := t.rows[t.m]
	for j := range obj {
		obj[j] = 0
	}
	for j := t.artStart; j < t.cols; j++ {
		obj[j] = 1
	}
	// Price out the basic artificial variables.
	for i, bv := range t.basis {
		if bv >= t.artStart {
			t.subtractRow(t.m, i, 1)
		}
	}
}

// installPhase2Objective sets the real objective and prices out the current
// basis. Artificial columns get an effectively infinite cost so they can
// never re-enter.
func (t *tableau) installPhase2Objective(c []float64) {
	obj := t.rows[t.m]
	for j := range obj {
		obj[j] = 0
	}
	copy(obj, c)
	for i, bv := range t.basis {
		cost := 0.0
		if bv < len(c) {
			cost = c[bv]
		}
		if cost != 0 {
			t.subtractRow(t.m, i, cost)
		}
	}
}

// subtractRow performs rows[dst] -= factor * rows[src].
func (t *tableau) subtractRow(dst, src int, factor float64) {
	d, s := t.rows[dst], t.rows[src]
	for j := range d {
		d[j] -= factor * s[j]
	}
}

// iterate runs simplex pivots until optimality, returning ErrUnbounded if a
// column with negative reduced cost has no positive entry.
func (t *tableau) iterate(rule PivotRule) error {
	// A generous limit: small problems converge in tens of pivots.
	maxIter := 200 * (t.cols + t.m + 10)
	stall := 0
	for iter := 0; iter < maxIter; iter++ {
		effRule := rule
		if stall > 2*t.cols {
			effRule = Bland // anti-cycling fallback
		}
		col := t.chooseEntering(effRule)
		if col < 0 {
			return nil // optimal
		}
		row := t.chooseLeaving(col)
		if row < 0 {
			return ErrUnbounded
		}
		if t.rhs(row) < eps {
			stall++ // degenerate pivot
		} else {
			stall = 0
		}
		t.pivot(row, col)
	}
	return ErrIterations
}

func (t *tableau) chooseEntering(rule PivotRule) int {
	obj := t.rows[t.m]
	switch rule {
	case Dantzig:
		best, bestVal := -1, -eps
		for j := 0; j < t.cols; j++ {
			if obj[j] < bestVal && t.enterable(j) {
				best, bestVal = j, obj[j]
			}
		}
		return best
	default: // Bland
		for j := 0; j < t.cols; j++ {
			if obj[j] < -eps && t.enterable(j) {
				return j
			}
		}
		return -1
	}
}

// enterable reports whether column j may enter the basis. Artificial
// columns are barred: once driven out after phase 1 they must never
// re-enter, and in phase 1 they start basic so re-entry is never needed.
func (t *tableau) enterable(j int) bool {
	return j < t.artStart
}

// chooseLeaving runs the minimum-ratio test on column col, breaking ties by
// the smallest basis index (Bland) to avoid cycling.
func (t *tableau) chooseLeaving(col int) int {
	bestRow := -1
	bestRatio := math.Inf(1)
	for i := 0; i < t.m; i++ {
		a := t.rows[i][col]
		if a <= eps {
			continue
		}
		ratio := t.rhs(i) / a
		if ratio < bestRatio-eps ||
			(math.Abs(ratio-bestRatio) <= eps && (bestRow < 0 || t.basis[i] < t.basis[bestRow])) {
			bestRatio = ratio
			bestRow = i
		}
	}
	return bestRow
}

// pivot makes (row, col) the new basic entry.
func (t *tableau) pivot(row, col int) {
	t.pivots++
	p := t.rows[row][col]
	r := t.rows[row]
	inv := 1 / p
	for j := range r {
		r[j] *= inv
	}
	r[col] = 1 // exact
	for i := range t.rows {
		if i == row {
			continue
		}
		f := t.rows[i][col]
		if f == 0 {
			continue
		}
		t.subtractRow(i, row, f)
		t.rows[i][col] = 0 // exact
	}
	t.basis[row] = col
}

// driveOutArtificials removes any artificial variable still basic at level
// zero after phase 1, pivoting on a nonzero structural/slack entry or, if
// the row is entirely zero, leaving the redundant row in place (it can no
// longer constrain anything).
func (t *tableau) driveOutArtificials() {
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.artStart {
			continue
		}
		pivoted := false
		for j := 0; j < t.artStart; j++ {
			if math.Abs(t.rows[i][j]) > eps {
				t.pivot(i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant constraint; zero the row so it is inert.
			for j := range t.rows[i] {
				t.rows[i][j] = 0
			}
		}
	}
}

// Feasible reports whether x satisfies every constraint of p to within tol,
// including non-negativity. It is used by tests and by callers that want an
// independent check of solver output.
func Feasible(p Problem, x []float64, tol float64) bool {
	for _, v := range x {
		if v < -tol {
			return false
		}
	}
	for _, c := range p.Constraints {
		var dot float64
		for j, a := range c.Coeffs {
			if j >= len(x) {
				break
			}
			dot += a * x[j]
		}
		switch c.Op {
		case LE:
			if dot > c.RHS+tol {
				return false
			}
		case GE:
			if dot < c.RHS-tol {
				return false
			}
		case EQ:
			if math.Abs(dot-c.RHS) > tol {
				return false
			}
		}
	}
	return true
}

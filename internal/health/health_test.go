package health

import (
	"testing"
	"time"
)

func mustRoster(t *testing.T, cfg Config) *Roster {
	t.Helper()
	r, err := NewRoster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestConfigNormalizedDefaults(t *testing.T) {
	c, err := Config{}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if c.SuspectLimit != 3 || c.FailureRate != 0.5 || c.MinEvents != 8 ||
		c.Probation != 10*time.Second || c.ProbationRingers != 3 ||
		c.LatencyWindow != 1024 || c.MinLatencySamples != 20 || c.EWMAAlpha != 0.2 {
		t.Errorf("unexpected defaults: %+v", c)
	}
}

func TestConfigNormalizedRejects(t *testing.T) {
	bad := []Config{
		{SuspectLimit: -1},
		{FailureRate: 1.5},
		{FailureRate: -0.1},
		{MinEvents: -2},
		{Probation: -time.Second},
		{ProbationRingers: -1},
		{LatencyWindow: -5},
		{MinLatencySamples: -1},
		{EWMAAlpha: 2},
		{EWMAAlpha: -0.5},
	}
	for i, c := range bad {
		if _, err := c.Normalized(); err == nil {
			t.Errorf("config %d (%+v): want error, got none", i, c)
		}
	}
}

func TestSuspectQuarantine(t *testing.T) {
	r := mustRoster(t, Config{SuspectLimit: 2})
	now := time.Unix(1000, 0)
	if tr := r.ObserveVerdict(7, true, false, now); tr != nil {
		t.Fatalf("first suspect transitioned: %+v", tr)
	}
	if got := r.State(7); got != Healthy {
		t.Fatalf("state after one suspect: %v", got)
	}
	tr := r.ObserveVerdict(7, true, false, now)
	if tr == nil || tr.To != Quarantined || tr.Reason != "suspects" {
		t.Fatalf("second suspect: %+v, want quarantine on suspects", tr)
	}
	if got := r.State(7); got != Quarantined {
		t.Fatalf("state = %v, want Quarantined", got)
	}
	if s := r.Score(7); s != 0 {
		t.Errorf("quarantined score = %v, want 0", s)
	}
	if !r.AnyUnhealthy() {
		t.Error("AnyUnhealthy false with a quarantined participant")
	}
	// Further suspects while quarantined change nothing.
	if tr := r.ObserveVerdict(7, true, false, now); tr != nil {
		t.Errorf("suspect while quarantined transitioned: %+v", tr)
	}
}

func TestFailureRateQuarantine(t *testing.T) {
	r := mustRoster(t, Config{FailureRate: 0.5, MinEvents: 4})
	now := time.Unix(2000, 0)
	r.ObserveCompletion(3, 10*time.Millisecond)
	// Three reclaims: below MinEvents until the fourth resolved lease.
	if tr := r.ObserveReclaim(3, now); tr != nil {
		t.Fatalf("reclaim 1 transitioned: %+v", tr)
	}
	if tr := r.ObserveReclaim(3, now); tr != nil {
		t.Fatalf("reclaim 2 transitioned: %+v", tr)
	}
	tr := r.ObserveReclaim(3, now)
	if tr == nil || tr.To != Quarantined || tr.Reason != "failure_rate" {
		t.Fatalf("reclaim 3 (rate 3/4): %+v, want failure_rate quarantine", tr)
	}
}

func TestFailureRateNeedsMinEvents(t *testing.T) {
	r := mustRoster(t, Config{FailureRate: 0.5, MinEvents: 8})
	now := time.Unix(3000, 0)
	for i := 0; i < 7; i++ {
		if tr := r.ObserveReclaim(9, now); tr != nil {
			t.Fatalf("reclaim %d below MinEvents transitioned: %+v", i+1, tr)
		}
	}
	if tr := r.ObserveReclaim(9, now); tr == nil {
		t.Fatal("8th reclaim (rate 1.0, events 8) did not quarantine")
	}
}

func TestProbationAndReadmission(t *testing.T) {
	r := mustRoster(t, Config{SuspectLimit: 1, Probation: time.Minute, ProbationRingers: 2})
	t0 := time.Unix(5000, 0)
	if tr := r.ObserveVerdict(4, true, false, t0); tr == nil || tr.To != Quarantined {
		t.Fatalf("suspect limit 1: %+v", tr)
	}
	// Too early: no probation yet.
	if trs := r.Tick(t0.Add(30 * time.Second)); len(trs) != 0 {
		t.Fatalf("early tick transitioned: %+v", trs)
	}
	trs := r.Tick(t0.Add(time.Minute))
	if len(trs) != 1 || trs[0].To != Probation || trs[0].Reason != "probation" {
		t.Fatalf("probation tick: %+v", trs)
	}
	if got := r.State(4); got != Probation {
		t.Fatalf("state = %v, want Probation", got)
	}
	if s := r.Score(4); s > 0.5 {
		t.Errorf("probation score %v above the 0.5 cap", s)
	}
	// Ringer verdicts that implicate the participant do not advance
	// re-admission; clean ones do.
	t1 := t0.Add(2 * time.Minute)
	if tr := r.ObserveVerdict(4, false, true, t1); tr != nil {
		t.Fatalf("first clean ringer transitioned: %+v", tr)
	}
	tr := r.ObserveVerdict(4, false, true, t1)
	if tr == nil || tr.To != Healthy || tr.Reason != "readmitted" {
		t.Fatalf("second clean ringer: %+v, want readmission", tr)
	}
	if got := r.State(4); got != Healthy {
		t.Fatalf("state = %v, want Healthy", got)
	}
	if r.AnyUnhealthy() {
		t.Error("AnyUnhealthy true after readmission")
	}
	// The slate is clean: one new suspect does not instantly re-quarantine
	// (limit 1 reached again, so it does — use a fresh roster check).
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Suspects != 0 || snap[0].Reclaims != 0 {
		t.Errorf("readmission did not wipe the slate: %+v", snap)
	}
}

func TestProbationSuspectRestartsQuarantine(t *testing.T) {
	r := mustRoster(t, Config{SuspectLimit: 1, Probation: time.Second})
	t0 := time.Unix(6000, 0)
	r.ObserveVerdict(2, true, false, t0)
	r.Tick(t0.Add(time.Second))
	if got := r.State(2); got != Probation {
		t.Fatalf("state = %v, want Probation", got)
	}
	tr := r.ObserveVerdict(2, true, false, t0.Add(2*time.Second))
	if tr == nil || tr.To != Quarantined {
		t.Fatalf("suspect during probation: %+v, want re-quarantine", tr)
	}
	// The probation clock restarted at the re-entry time.
	if trs := r.Tick(t0.Add(2500 * time.Millisecond)); len(trs) != 0 {
		t.Fatalf("probation clock did not restart: %+v", trs)
	}
	if trs := r.Tick(t0.Add(3 * time.Second)); len(trs) != 1 {
		t.Fatalf("restarted clock never elapsed: %+v", trs)
	}
}

func TestQuantileGatedByMinSamples(t *testing.T) {
	r := mustRoster(t, Config{MinLatencySamples: 4, LatencyWindow: 8})
	for i := 0; i < 3; i++ {
		r.ObserveCompletion(1, 10*time.Millisecond)
	}
	if _, ok := r.Quantile(0.9); ok {
		t.Fatal("quantile answered below MinLatencySamples")
	}
	r.ObserveCompletion(1, 10*time.Millisecond)
	if q, ok := r.Quantile(0.9); !ok || q != 10*time.Millisecond {
		t.Fatalf("quantile = %v ok=%v, want 10ms", q, ok)
	}
}

func TestQuantileNearestRank(t *testing.T) {
	r := mustRoster(t, Config{MinLatencySamples: 1, LatencyWindow: 100})
	for i := 1; i <= 100; i++ {
		r.ObserveCompletion(i%5, time.Duration(i)*time.Millisecond)
	}
	q50, _ := r.Quantile(0.5)
	q99, _ := r.Quantile(0.99)
	if q50 < 50*time.Millisecond || q50 > 52*time.Millisecond {
		t.Errorf("p50 = %v", q50)
	}
	if q99 < 99*time.Millisecond || q99 > 100*time.Millisecond {
		t.Errorf("p99 = %v", q99)
	}
	// Clamped arguments do not panic or overflow the window.
	if _, ok := r.Quantile(1.5); !ok {
		t.Error("clamped quantile q>1 failed")
	}
	if _, ok := r.Quantile(-1); !ok {
		t.Error("clamped quantile q<0 failed")
	}
}

func TestWindowWrapsOldSamplesOut(t *testing.T) {
	r := mustRoster(t, Config{MinLatencySamples: 1, LatencyWindow: 4})
	for i := 0; i < 4; i++ {
		r.ObserveCompletion(0, time.Second)
	}
	for i := 0; i < 4; i++ {
		r.ObserveCompletion(0, time.Millisecond)
	}
	if q, _ := r.Quantile(1); q != time.Millisecond {
		t.Errorf("max of wrapped window = %v, want 1ms (old seconds evicted)", q)
	}
}

func TestScoreShape(t *testing.T) {
	r := mustRoster(t, Config{SuspectLimit: 100})
	if s := r.Score(42); s != 1 {
		t.Fatalf("unknown participant score = %v, want 1", s)
	}
	for i := 0; i < 20; i++ {
		r.ObserveCompletion(1, 10*time.Millisecond)
		r.ObserveCompletion(2, 10*time.Millisecond)
	}
	clean := r.Score(1)
	r.ObserveVerdict(2, true, false, time.Unix(0, 0))
	r.ObserveVerdict(2, true, false, time.Unix(0, 0))
	dirty := r.Score(2)
	if dirty >= clean {
		t.Errorf("suspect verdicts did not lower score: clean=%v dirty=%v", clean, dirty)
	}
	// A slow host scores below a fast one with the same record.
	for i := 0; i < 30; i++ {
		r.ObserveCompletion(3, 500*time.Millisecond)
	}
	if slow := r.Score(3); slow >= clean {
		t.Errorf("latency did not lower score: fast=%v slow=%v", clean, slow)
	}
}

func TestSnapshotOrderedAndComplete(t *testing.T) {
	r := mustRoster(t, Config{})
	r.ObserveCompletion(5, 10*time.Millisecond)
	r.ObserveCompletion(1, 20*time.Millisecond)
	r.ObserveReclaim(3, time.Unix(0, 0))
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d entries, want 3", len(snap))
	}
	for i, want := range []int{1, 3, 5} {
		if snap[i].Participant != want {
			t.Errorf("snapshot[%d] = participant %d, want %d", i, snap[i].Participant, want)
		}
	}
	if snap[0].Completions != 1 || snap[1].Reclaims != 1 {
		t.Errorf("snapshot counts wrong: %+v", snap)
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{Healthy: "healthy", Quarantined: "quarantined", Probation: "probation", State(9): "State(9)"} {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", int(s), got, want)
		}
	}
}

func TestRingerStarvedProbationExpires(t *testing.T) {
	r := mustRoster(t, Config{SuspectLimit: 1, Probation: time.Minute, ProbationRingers: 2})
	t0 := time.Unix(7000, 0)
	// Starvation reports against Healthy or Quarantined participants are
	// no-ops: only probation has a clock to run out.
	if tr := r.ObserveRingerStarved(9, t0); tr != nil {
		t.Fatalf("healthy starvation transitioned: %+v", tr)
	}
	r.ObserveVerdict(9, true, false, t0)
	if tr := r.ObserveRingerStarved(9, t0.Add(time.Hour)); tr != nil {
		t.Fatalf("quarantined starvation transitioned: %+v", tr)
	}
	r.Tick(t0.Add(time.Minute))
	if got := r.State(9); got != Probation {
		t.Fatalf("state = %v, want Probation", got)
	}
	// The expiry clock runs from probation entry: a starved request half
	// a period in changes nothing.
	if tr := r.ObserveRingerStarved(9, t0.Add(90*time.Second)); tr != nil {
		t.Fatalf("early starvation transitioned: %+v", tr)
	}
	tr := r.ObserveRingerStarved(9, t0.Add(2*time.Minute))
	if tr == nil || tr.To != Healthy || tr.Reason != "probation_expired" {
		t.Fatalf("starved expiry: %+v, want probation_expired re-admission", tr)
	}
	if got := r.State(9); got != Healthy {
		t.Fatalf("state = %v, want Healthy", got)
	}
	// Same slate-wipe as a ringer-proven re-admission: the evidence
	// counters restart, so repeat misbehavior re-quarantines cleanly.
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Suspects != 0 {
		t.Errorf("expiry did not wipe the slate: %+v", snap)
	}
	if tr := r.ObserveVerdict(9, true, false, t0.Add(3*time.Minute)); tr == nil || tr.To != Quarantined {
		t.Fatalf("post-expiry suspect did not re-quarantine: %+v", tr)
	}
}

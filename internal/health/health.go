// Package health is the supervisor's participant-health subsystem: it
// turns the lease lifecycle's raw observations — completion latencies,
// verification verdicts, deadline reclaims — into a per-participant health
// score, a global completion-time distribution (the percentile the
// speculative reissue tier triggers on), and a quarantine state machine.
//
// The paper's redundancy machinery answers "is this result a lie?"; this
// package answers the two operational questions next to it: "is this host
// too slow or too suspicious to keep feeding?" and "when is a still-leased
// copy late enough that issuing a duplicate is cheaper than waiting?"
// Behrouzi-Far/Soljanin (arXiv 2006.02318) motivate replication as the
// straggler remedy; the job-cloning framing (arXiv 2402.12584) supplies
// the trigger we adopt — clone when a lease outlives a completion-time
// percentile, not on a fixed timer.
//
// A participant moves through three states:
//
//	Healthy ──(suspect verdicts ≥ SuspectLimit, or deadline-reclaim
//	           rate ≥ FailureRate over ≥ MinEvents leases)──▶ Quarantined
//	Quarantined ──(Probation elapsed, via Tick)──▶ Probation
//	Probation ──(ProbationRingers clean ringer verdicts)──▶ Healthy
//
// Quarantined participants receive no leases at all; probation
// participants receive only ringer work — assignments the supervisor can
// check against precomputed truth, so a cheater re-admitting itself walks
// straight back into the oracle. Quarantine is reactive and reversible by
// design: a 2-way mismatch suspects both parties, so honest participants
// framed by an adversary do land here occasionally, and the probation path
// is how they earn their way out. Conclusive (ringer) convictions are a
// separate, permanent mechanism owned by internal/verify.
//
// A Roster is safe for concurrent use and takes no other locks; in the
// supervisor's lock hierarchy it is a leaf, callable from under lease.mu
// or audit.mu alike.
package health

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// State is a participant's standing in the roster.
type State int

// The three standings. Zero value is Healthy, so an unknown participant
// is served normally.
const (
	Healthy State = iota
	Quarantined
	Probation
)

func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Quarantined:
		return "quarantined"
	case Probation:
		return "probation"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Config tunes the roster. The zero value of any field selects its
// default (see Normalized); a zero Config is therefore usable as "health
// tracking with stock thresholds".
type Config struct {
	// SuspectLimit is how many suspect verdicts (mismatch implications on
	// regular tasks) quarantine a participant. Default 3.
	SuspectLimit int
	// FailureRate quarantines a participant whose deadline-reclaim
	// fraction — reclaims / (reclaims + completions) — reaches this value,
	// once at least MinEvents leases have resolved. Default 0.5.
	FailureRate float64
	// MinEvents is the minimum resolved leases (completions + reclaims)
	// before FailureRate applies, so one early timeout cannot quarantine a
	// fresh participant. Default 8.
	MinEvents int
	// Probation is how long a participant sits fully quarantined before
	// Tick moves it to ringer-only probation. Default 10s.
	Probation time.Duration
	// ProbationRingers is how many clean ringer verdicts a probation
	// participant must contribute to to be re-admitted. Default 3.
	ProbationRingers int
	// LatencyWindow is the size of the global completion-latency ring the
	// speculation percentile is computed over. Default 1024.
	LatencyWindow int
	// MinLatencySamples gates Quantile: below this many observations it
	// reports no answer, so speculation cannot trigger off noise.
	// Default 20.
	MinLatencySamples int
	// EWMAAlpha is the smoothing factor of the per-participant latency
	// EWMA (weight of the newest observation). Default 0.2.
	EWMAAlpha float64
}

// Normalized fills defaults and validates ranges, returning the effective
// configuration.
func (c Config) Normalized() (Config, error) {
	if c.SuspectLimit == 0 {
		c.SuspectLimit = 3
	}
	if c.FailureRate == 0 {
		c.FailureRate = 0.5
	}
	if c.MinEvents == 0 {
		c.MinEvents = 8
	}
	if c.Probation == 0 {
		c.Probation = 10 * time.Second
	}
	if c.ProbationRingers == 0 {
		c.ProbationRingers = 3
	}
	if c.LatencyWindow == 0 {
		c.LatencyWindow = 1024
	}
	if c.MinLatencySamples == 0 {
		c.MinLatencySamples = 20
	}
	if c.EWMAAlpha == 0 {
		c.EWMAAlpha = 0.2
	}
	switch {
	case c.SuspectLimit < 1:
		return Config{}, errors.New("health: SuspectLimit must be at least 1")
	case c.FailureRate < 0 || c.FailureRate > 1:
		return Config{}, fmt.Errorf("health: FailureRate %v outside [0,1]", c.FailureRate)
	case c.MinEvents < 1:
		return Config{}, errors.New("health: MinEvents must be at least 1")
	case c.Probation < 0:
		return Config{}, errors.New("health: negative Probation")
	case c.ProbationRingers < 1:
		return Config{}, errors.New("health: ProbationRingers must be at least 1")
	case c.LatencyWindow < 1:
		return Config{}, errors.New("health: LatencyWindow must be at least 1")
	case c.MinLatencySamples < 1:
		return Config{}, errors.New("health: MinLatencySamples must be at least 1")
	case c.EWMAAlpha <= 0 || c.EWMAAlpha > 1:
		return Config{}, fmt.Errorf("health: EWMAAlpha %v outside (0,1]", c.EWMAAlpha)
	}
	return c, nil
}

// Transition records one state change, for the supervisor to turn into
// events, metrics, and lease reclamation.
type Transition struct {
	Participant int
	From, To    State
	// Reason is a short machine tag: "suspects", "failure_rate",
	// "probation", "readmitted".
	Reason string
}

// participant is one host's accumulated evidence.
type participant struct {
	state State
	since time.Time // entered current state

	completions int
	reclaims    int // deadline reclaims (stalls and stragglers, not disconnects)
	suspects    int // mismatch implications on regular tasks

	latEWMA float64 // seconds; 0 until first completion

	cleanRingers int // clean ringer verdicts contributed during probation
}

// Roster tracks the health of every participant the supervisor has
// observed. All methods are safe for concurrent use.
type Roster struct {
	mu    sync.Mutex
	cfg   Config
	parts map[int]*participant

	// Global completion-latency ring (seconds), the distribution behind
	// Quantile.
	window []float64
	wpos   int
	wlen   int

	quarantined int // currently not Healthy (Quarantined or Probation)
}

// NewRoster validates cfg (zero fields default) and builds a roster.
func NewRoster(cfg Config) (*Roster, error) {
	norm, err := cfg.Normalized()
	if err != nil {
		return nil, err
	}
	return &Roster{
		cfg:    norm,
		parts:  make(map[int]*participant),
		window: make([]float64, norm.LatencyWindow),
	}, nil
}

// Config returns the roster's effective (normalized) configuration.
func (r *Roster) Config() Config { return r.cfg }

func (r *Roster) part(id int) *participant {
	p, ok := r.parts[id]
	if !ok {
		p = &participant{}
		r.parts[id] = p
	}
	return p
}

// ObserveCompletion records one accepted result: d is the time the copy
// spent with this participant (issue to accept). It feeds the
// participant's latency EWMA, the failure-rate denominator, and the
// global completion-time window.
func (r *Roster) ObserveCompletion(id int, d time.Duration) {
	sec := d.Seconds()
	if sec < 0 {
		sec = 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	p := r.part(id)
	p.completions++
	if p.latEWMA == 0 {
		p.latEWMA = sec
	} else {
		p.latEWMA += r.cfg.EWMAAlpha * (sec - p.latEWMA)
	}
	r.window[r.wpos] = sec
	r.wpos = (r.wpos + 1) % len(r.window)
	if r.wlen < len(r.window) {
		r.wlen++
	}
}

// ObserveVerdict records one adjudicated task's implication for a
// participant: suspect reports whether the verdict implicated them,
// ringer whether the task was supervisor-precomputed. Clean ringer
// verdicts advance probation; suspect verdicts on regular tasks
// accumulate toward quarantine. It returns a non-nil Transition when the
// observation changed the participant's state.
func (r *Roster) ObserveVerdict(id int, suspect, ringer bool, now time.Time) *Transition {
	r.mu.Lock()
	defer r.mu.Unlock()
	p := r.part(id)
	if suspect && !ringer {
		p.suspects++
		if p.state == Healthy && p.suspects >= r.cfg.SuspectLimit {
			return r.enterLocked(id, p, Quarantined, "suspects", now)
		}
		if p.state == Probation {
			// Implicated again while on probation: back to full quarantine,
			// clock restarted.
			return r.enterLocked(id, p, Quarantined, "suspects", now)
		}
		return nil
	}
	if ringer && !suspect && p.state == Probation {
		p.cleanRingers++
		if p.cleanRingers >= r.cfg.ProbationRingers {
			return r.enterLocked(id, p, Healthy, "readmitted", now)
		}
	}
	return nil
}

// ObserveReclaim records one deadline reclaim (a lease the participant
// held past the hard deadline — a stall, a sleeper, a straggler beyond
// rescue). Disconnect reclaims are deliberately not fed here: volunteer
// churn is normal, holding a lease silently is the failure signal. It
// returns a non-nil Transition when the failure rate quarantined the
// participant.
func (r *Roster) ObserveReclaim(id int, now time.Time) *Transition {
	r.mu.Lock()
	defer r.mu.Unlock()
	p := r.part(id)
	p.reclaims++
	if p.state != Healthy {
		return nil
	}
	events := p.completions + p.reclaims
	if events < r.cfg.MinEvents {
		return nil
	}
	if rate := float64(p.reclaims) / float64(events); rate >= r.cfg.FailureRate {
		return r.enterLocked(id, p, Quarantined, "failure_rate", now)
	}
	return nil
}

// ObserveRingerStarved records that a probationary participant asked for
// work and the supervisor had no ringer copy to offer it. Probation is
// ringer-gated but time-bounded: a plan's ringer supply is finite (some
// plans mint none at all), so a participant that has sat out a full
// additional Probation period with nothing to prove itself on is
// re-admitted on the clock instead ("probation_expired"). Without the
// bound, a fleet-wide quarantine would deadlock the run the moment the
// last ringer copy was spent — no healthy participant left to drain the
// regular queue, no ringer left to earn re-admission with. The clock
// restarts from the probation entry, so the starved path is never faster
// than the ringer path could have been, and a suspect verdict during the
// wait still re-quarantines as usual.
func (r *Roster) ObserveRingerStarved(id int, now time.Time) *Transition {
	r.mu.Lock()
	defer r.mu.Unlock()
	p := r.part(id)
	if p.state != Probation || now.Sub(p.since) < r.cfg.Probation {
		return nil
	}
	return r.enterLocked(id, p, Healthy, "probation_expired", now)
}

// Tick advances time-driven transitions: every participant quarantined
// for at least Probation moves to ringer-only probation. The supervisor's
// deadline sweeper calls it once per sweep.
func (r *Roster) Tick(now time.Time) []Transition {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Transition
	for id, p := range r.parts {
		if p.state == Quarantined && now.Sub(p.since) >= r.cfg.Probation {
			if tr := r.enterLocked(id, p, Probation, "probation", now); tr != nil {
				out = append(out, *tr)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Participant < out[j].Participant })
	return out
}

// enterLocked moves p to state, resetting the evidence the new state
// restarts from. Callers hold r.mu.
func (r *Roster) enterLocked(id int, p *participant, state State, reason string, now time.Time) *Transition {
	from := p.state
	if from == state {
		return nil
	}
	if from == Healthy && state != Healthy {
		r.quarantined++
	}
	if from != Healthy && state == Healthy {
		r.quarantined--
	}
	p.state = state
	p.since = now
	p.cleanRingers = 0
	if state == Healthy {
		// Re-admission wipes the circumstantial slate: the participant
		// proved itself against the oracle, so stale suspect counts and
		// reclaim history must not instantly re-quarantine it.
		p.suspects = 0
		p.reclaims = 0
	}
	return &Transition{Participant: id, From: from, To: state, Reason: reason}
}

// State returns a participant's standing (Healthy if never observed).
func (r *Roster) State(id int) State {
	r.mu.Lock()
	defer r.mu.Unlock()
	if p, ok := r.parts[id]; ok {
		return p.state
	}
	return Healthy
}

// AnyUnhealthy reports whether any participant is currently quarantined
// or on probation — a cheap guard so the hot lease path can skip
// per-participant gate checks entirely while everyone is healthy.
func (r *Roster) AnyUnhealthy() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.quarantined > 0
}

// Score reduces a participant's evidence to one gauge value in [0, 1]:
// 1 is a clean, responsive host; 0 is quarantined. The base is a
// Laplace-smoothed clean-work fraction (suspect verdicts weighted 4x a
// timeout — lying is worse than stalling), scaled down by how far the
// host's latency EWMA sits above the global median. Probation caps the
// score at 0.5 so dashboards can see re-admission in progress.
func (r *Roster) Score(id int) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.parts[id]
	if !ok {
		return 1
	}
	return r.scoreLocked(p)
}

func (r *Roster) scoreLocked(p *participant) float64 {
	if p.state == Quarantined {
		return 0
	}
	score := float64(p.completions+1) / float64(p.completions+1+4*p.suspects+p.reclaims)
	if med, ok := r.quantileLocked(0.5); ok && p.latEWMA > med && med > 0 {
		score *= med / p.latEWMA
	}
	if p.state == Probation && score > 0.5 {
		score = 0.5
	}
	return score
}

// Quantile returns the q-th completion-time quantile (nearest-rank) of
// the global latency window, and false until MinLatencySamples
// observations have accumulated.
func (r *Roster) Quantile(q float64) (time.Duration, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	sec, ok := r.quantileLocked(q)
	if !ok {
		return 0, false
	}
	return time.Duration(sec * float64(time.Second)), true
}

func (r *Roster) quantileLocked(q float64) (float64, bool) {
	if r.wlen < r.cfg.MinLatencySamples {
		return 0, false
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := make([]float64, r.wlen)
	copy(sorted, r.window[:r.wlen])
	sort.Float64s(sorted)
	rank := int(q * float64(r.wlen))
	if rank >= r.wlen {
		rank = r.wlen - 1
	}
	return sorted[rank], true
}

// ParticipantHealth is one roster entry in a Snapshot.
type ParticipantHealth struct {
	Participant int
	State       State
	Score       float64
	Completions int
	Reclaims    int
	Suspects    int
	// LatencyEWMA is the smoothed per-copy completion latency.
	LatencyEWMA time.Duration
}

// Snapshot returns every observed participant's health, ascending by ID —
// the export surface for the per-participant gauge and operator
// summaries.
func (r *Roster) Snapshot() []ParticipantHealth {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ParticipantHealth, 0, len(r.parts))
	for id, p := range r.parts {
		out = append(out, ParticipantHealth{
			Participant: id,
			State:       p.state,
			Score:       r.scoreLocked(p),
			Completions: p.completions,
			Reclaims:    p.reclaims,
			Suspects:    p.suspects,
			LatencyEWMA: time.Duration(p.latEWMA * float64(time.Second)),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Participant < out[j].Participant })
	return out
}

package dist

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// update regenerates the committed golden files instead of comparing:
//
//	go test ./internal/dist -args -update
//
// Review the diff before committing — a changed golden file IS a changed
// paper table.
var update = flag.Bool("update", false, "rewrite testdata/*.golden from current output")

// checkGolden compares got against the committed testdata/<name>, or
// rewrites the file under -update. Any regression in the probability code
// shows up as a one-line text diff.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (regenerate with `go test ./internal/dist -args -update`): %v", path, err)
	}
	if got == string(want) {
		return
	}
	gotLines, wantLines := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w string
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Fatalf("%s differs at line %d:\n  got:  %q\n  want: %q\n(rerun with -update only if the change is intended)",
				path, i+1, g, w)
		}
	}
	t.Fatalf("%s differs (same lines, different trailing bytes)", path)
}

// goldenEps is the threshold grid the golden tables cover: the paper's
// running example ε = 1/2 plus points on both sides of the GS/Balanced
// crossover ε* ≈ 0.7968.
var goldenEps = []float64{0.25, 0.5, 0.75, 0.9}

// gsTable renders the Golle-Stubblebine scheme exactly as the paper
// tabulates it: the geometric task counts g_i (here for n = 10000), the
// closed-form detection probabilities P_k (increasing in k — the
// over-protection the Balanced scheme eliminates), and the redundancy
// factor both from the closed form 1/sqrt(1−ε) and summed from the vector.
func gsTable() (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Golle-Stubblebine geometric scheme, n=10000 (g_i = (1-c)c^{i-1}n)\n")
	for _, eps := range goldenEps {
		c := GolleStubblebineC(eps, 0)
		d, err := GolleStubblebineForThreshold(10000, eps)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "\neps=%.4g c=%.10g\n", eps, c)
		fmt.Fprintf(&b, "factor closed-form=%.10g vector=%.10g\n",
			GolleStubblebineRedundancyFactor(eps), d.RedundancyFactor())
		for i := 1; i <= 10; i++ {
			fmt.Fprintf(&b, "g_%d=%.10g\n", i, d.Count(i))
		}
		for k := 1; k <= 6; k++ {
			fmt.Fprintf(&b, "P_%d closed-form=%.10g vector=%.10g\n",
				k, GolleStubblebineDetection(c, k), Detection(d, k))
		}
	}
	return b.String(), nil
}

// balancedTable renders the Balanced distribution's Theorem 1 numbers: the
// zero-truncated-Poisson task counts a_i for n = 10000, the detection
// probabilities P_k — constant and equal to ε, the theorem's point — and
// the non-asymptotic P_{k,p} of Proposition 3.
func balancedTable() (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Balanced distribution, n=10000 (a_i = n((1-eps)/eps)gamma^i/i!)\n")
	for _, eps := range goldenEps {
		d, err := Balanced(10000, eps)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "\neps=%.4g gamma=%.10g\n", eps, Gamma(eps))
		fmt.Fprintf(&b, "factor closed-form=%.10g vector=%.10g\n",
			BalancedRedundancyFactor(eps), d.RedundancyFactor())
		for i := 1; i <= 10; i++ {
			fmt.Fprintf(&b, "a_%d=%.10g\n", i, d.Count(i))
		}
		for k := 1; k <= 6; k++ {
			fmt.Fprintf(&b, "P_%d=%.10g\n", k, Detection(d, k))
		}
		for _, p := range []float64{0.1, 0.3} {
			fmt.Fprintf(&b, "P_{k,p=%.3g}=%.10g\n", p, BalancedDetectionAt(eps, p))
		}
	}
	return b.String(), nil
}

// factorsTable renders the scheme-comparison numbers: redundancy factors
// of GS, Balanced, and the Proposition 4 lower bound across the ε grid,
// the crossover threshold ε* where GS overtakes Balanced, the §5 savings
// at n = 10^6, and the §7 minimum-multiplicity factors at ε = 1/2.
func factorsTable() (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Redundancy factors by scheme\n\n")
	fmt.Fprintf(&b, "%-8s %-16s %-16s %-16s %s\n", "eps", "gs", "balanced", "lower-bound", "gs-balanced savings (n=1e6)")
	for _, eps := range goldenEps {
		fmt.Fprintf(&b, "%-8.4g %-16.10g %-16.10g %-16.10g %.10g\n",
			eps,
			GolleStubblebineRedundancyFactor(eps),
			BalancedRedundancyFactor(eps),
			LowerBoundRedundancyFactor(eps),
			GSBalancedSavings(1e6, eps))
	}
	fmt.Fprintf(&b, "\ncrossover eps*=%.10g\n", CrossoverEpsilon())
	fmt.Fprintf(&b, "\nSection 7 minimum-multiplicity factors at eps=0.5\n")
	for m := 1; m <= 5; m++ {
		fmt.Fprintf(&b, "m=%d factor closed-form=%.10g", m, MinMultiplicityRedundancyFactor(0.5, m))
		d, err := MinMultiplicity(10000, 0.5, m)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, " vector=%.10g\n", d.RedundancyFactor())
	}
	return b.String(), nil
}

// pkpTable renders Proposition 2's non-asymptotic detection probabilities
// P_{k,p} — the guarantee that remains when the adversary holds a finite
// share p of the assignments — across the paper's schemes. This is the
// quantity the adaptive control plane (internal/adapt) defends online;
// the golden file pins the numbers its controller and the offline drift
// experiment consume.
func pkpTable() (string, error) {
	ps := []float64{0.01, 0.05, 0.1, 0.2}
	var b strings.Builder
	fmt.Fprintf(&b, "Non-asymptotic detection P(k,p), n=10000 (Proposition 2)\n")
	for _, eps := range goldenEps {
		bal, err := Balanced(10000, eps)
		if err != nil {
			return "", err
		}
		gs, err := GolleStubblebineForThreshold(10000, eps)
		if err != nil {
			return "", err
		}
		mm2, err := MinMultiplicity(10000, eps, 2)
		if err != nil {
			return "", err
		}
		for _, sc := range []struct {
			name string
			d    *Distribution
		}{
			{"balanced", bal},
			{"gs", gs},
			{"minmult-2", mm2},
			{"simple", Simple(10000)},
		} {
			fmt.Fprintf(&b, "\neps=%.4g scheme=%s\n", eps, sc.name)
			for k := 1; k <= 6; k++ {
				if sc.d.Count(k) == 0 {
					continue
				}
				fmt.Fprintf(&b, "k=%d", k)
				for _, p := range ps {
					fmt.Fprintf(&b, " P(k,%.4g)=%.10g", p, DetectionAt(sc.d, k, p))
				}
				fmt.Fprintf(&b, "\n")
			}
		}
	}
	return b.String(), nil
}

// TestGoldenTables locks the paper's GS, Balanced, and factor tables to
// committed golden files; see the -update flag above.
func TestGoldenTables(t *testing.T) {
	for _, tc := range []struct {
		file string
		gen  func() (string, error)
	}{
		{"gs_table.golden", gsTable},
		{"balanced_table.golden", balancedTable},
		{"factors_table.golden", factorsTable},
		{"pkp_table.golden", pkpTable},
	} {
		t.Run(tc.file, func(t *testing.T) {
			got, err := tc.gen()
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, tc.file, got)
		})
	}
}

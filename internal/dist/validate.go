package dist

import (
	"fmt"
	"math"
)

// ValidationReport is the outcome of checking a scheme against the paper's
// validity conditions (§2.2).
type ValidationReport struct {
	N                  float64   // Σ x_i
	Dimension          int       // largest multiplicity used
	RedundancyFactor   float64   // assignments per task
	Detection          []float64 // P_k for k = 1..Dimension
	PrecomputeRequired float64   // top-multiplicity tasks that need supervisor verification
	Violations         []string  // human-readable constraint violations
}

// Valid reports whether no violations were found.
func (r *ValidationReport) Valid() bool { return len(r.Violations) == 0 }

// Validate checks that d is a valid scheme for wantN tasks at detection
// threshold epsilon:
//
//   - every count is non-negative and finite;
//   - Σ x_i = wantN (within tol·wantN);
//   - P_k >= ε (within tol) for every k = 1..dim−1; the top multiplicity is
//     exempt because a finite scheme cannot satisfy C_dim — those tasks must
//     be verified by the supervisor and are reported in PrecomputeRequired.
//
// A relative tolerance tol of about 1e-9 suits analytically constructed
// schemes; LP outputs may need 1e-6.
func Validate(d *Distribution, wantN, epsilon, tol float64) *ValidationReport {
	r := &ValidationReport{
		N:                  d.N(),
		Dimension:          d.Dimension(),
		RedundancyFactor:   d.RedundancyFactor(),
		PrecomputeRequired: PrecomputeRequired(d),
	}
	for i, x := range d.Counts {
		if x < 0 {
			r.Violations = append(r.Violations,
				fmt.Sprintf("negative count %g at multiplicity %d", x, i+1))
		}
		if math.IsNaN(x) || math.IsInf(x, 0) {
			r.Violations = append(r.Violations,
				fmt.Sprintf("non-finite count at multiplicity %d", i+1))
		}
	}
	if !(math.Abs(r.N-wantN) <= tol*wantN) { // NaN-safe comparison
		r.Violations = append(r.Violations,
			fmt.Sprintf("task mass %g differs from required N=%g", r.N, wantN))
	}
	r.Detection = make([]float64, r.Dimension)
	for k := 1; k <= r.Dimension; k++ {
		pk := Detection(d, k)
		r.Detection[k-1] = pk
		// A constraint only binds where the multiplicity class actually
		// holds tasks: theoretical vectors carry astronomically small
		// counts deep into the tail purely for numerical fidelity, and a
		// "violated" C_k on a class of 10^-40 tasks is vacuous. The top
		// multiplicity is exempt regardless (§2.2: it must be verified).
		binding := d.Count(k) >= tol*wantN && k < r.Dimension
		if binding && pk < epsilon-tol {
			r.Violations = append(r.Violations,
				fmt.Sprintf("constraint C_%d violated: P_%d = %.9f < ε = %g", k, k, pk, epsilon))
		}
	}
	return r
}

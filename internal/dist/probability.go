package dist

import (
	"math"

	"redundancy/internal/numeric"
)

// Detection computes the asymptotic probability P_k that an adversary who
// controls exactly k copies of the same task — and a vanishing proportion of
// all assignments — is detected when she cheats on that k-tuple (§2.2):
//
//	P_k = S_k / (x_k + S_k),  S_k = Σ_{i>k} C(i,k)·x_i.
//
// A k-tuple drawn from a task assigned more than k times always leaves an
// uncontrolled copy whose honest result exposes the cheat. If the scheme
// contains no k-tuples at all (x_i = 0 for every i >= k) the probability is
// vacuously 1: there is nothing to cheat on.
func Detection(d *Distribution, k int) float64 {
	if k < 1 {
		panic("dist: Detection requires k >= 1")
	}
	var above numeric.KahanSum
	for i := k + 1; i <= len(d.Counts); i++ {
		above.Add(numeric.Binomial(i, k) * d.Count(i))
	}
	xk := d.Count(k)
	s := above.Value()
	if xk == 0 && s == 0 {
		return 1
	}
	return s / (xk + s)
}

// DetectionAt computes the non-asymptotic detection probability P_{k,p}
// when the adversary controls proportion p of all assignments (derived in
// the proof of Proposition 2):
//
//	P_{k,p} = 1 − x_k / Σ_{i>=k} C(i,k)·(1−p)^{i−k}·x_i.
//
// Conditioned on holding k copies of a task, the task's true multiplicity n
// follows the posterior weighted by C(n,k)p^k(1−p)^{n−k}x_n; the cheat
// escapes only when n = k.
func DetectionAt(d *Distribution, k int, p float64) float64 {
	if k < 1 {
		panic("dist: DetectionAt requires k >= 1")
	}
	if p < 0 || p >= 1 {
		panic("dist: DetectionAt requires 0 <= p < 1")
	}
	var denom numeric.KahanSum
	q := 1 - p
	for i := k; i <= len(d.Counts); i++ {
		denom.Add(numeric.Binomial(i, k) * math.Pow(q, float64(i-k)) * d.Count(i))
	}
	xk := d.Count(k)
	dv := denom.Value()
	if dv == 0 {
		return 1 // no k-tuples exist
	}
	return 1 - xk/dv
}

// DetectionAtSplit computes the non-asymptotic detection probability
// P_{k,p} for a deployment whose mass is split into regular tasks and
// ringer tasks. A k-tuple escapes only when it covers every copy of a
// *regular* multiplicity-k task: a fully-controlled ringer is always
// caught against the supervisor's precomputed truth, so ringer mass
// contributes to the denominator (the tuples the adversary may be
// holding) but never to the escape term:
//
//	P_{k,p} = 1 − x_k^reg / Σ_{i>=k} C(i,k)·(1−p)^{i−k}·(x_i^reg + x_i^ring).
//
// With all ringer mass at a single multiplicity r this reduces to the §6
// analysis (DetectionAt on the combined vector for k < r, and the exempt
// supervisor-verified class at k = r); the split form additionally covers
// revised plans where promotions push regular tasks into and past the
// ringer class.
func DetectionAtSplit(regular, ringers *Distribution, k int, p float64) float64 {
	if k < 1 {
		panic("dist: DetectionAtSplit requires k >= 1")
	}
	if p < 0 || p >= 1 {
		panic("dist: DetectionAtSplit requires 0 <= p < 1")
	}
	var denom numeric.KahanSum
	q := 1 - p
	max := len(regular.Counts)
	if len(ringers.Counts) > max {
		max = len(ringers.Counts)
	}
	for i := k; i <= max; i++ {
		if x := regular.Count(i) + ringers.Count(i); x != 0 {
			denom.Add(numeric.Binomial(i, k) * math.Pow(q, float64(i-k)) * x)
		}
	}
	xk := regular.Count(k)
	dv := denom.Value()
	if dv == 0 {
		return 1 // no k-tuples exist
	}
	return 1 - xk/dv
}

// MinDetectionAt returns the adversary's best case: the minimum of P_{k,p}
// over k = 1..maxK, together with the minimizing k. An intelligent global
// adversary (§3.1) cheats only at the k with the most favorable odds, so
// this minimum is the scheme's effective protection level (§5). maxK <= 0
// means "up to the distribution's dimension".
func MinDetectionAt(d *Distribution, p float64, maxK int) (minP float64, argK int) {
	dim := d.Dimension()
	if maxK <= 0 || maxK > dim {
		maxK = dim
	}
	n := d.N()
	minP, argK = math.Inf(1), 0
	tail := 0.0 // Σ_{i>=k} x_i, maintained downward
	for i := maxK; i <= len(d.Counts); i++ {
		tail += d.Counts[i-1]
	}
	for k := maxK; k >= 1; k-- {
		switch {
		case k == dim && d.Count(dim) > 0:
			// The top multiplicity is supervisor-verified (§2.2): a valid
			// m-dimensional scheme cannot satisfy C_m otherwise.
		case tail < 1e-9*n:
			// Effectively no tasks have k or more copies — the adversary
			// has no k-tuples to attack, and the theoretical vectors'
			// deep tails (counts around 10^-60·N, kept only for series
			// fidelity) are numerically meaningless here.
		default:
			if pk := DetectionAt(d, k, p); pk < minP {
				minP, argK = pk, k
			}
		}
		if k >= 2 {
			tail += d.Count(k - 1)
		}
	}
	if math.IsInf(minP, 1) {
		// Degenerate: only the verified top multiplicity exists.
		return 1, dim
	}
	return minP, argK
}

// DetectionProfile returns P_{k,p} for k = 1..maxK.
func DetectionProfile(d *Distribution, p float64, maxK int) []float64 {
	out := make([]float64, maxK)
	for k := 1; k <= maxK; k++ {
		out[k-1] = DetectionAt(d, k, p)
	}
	return out
}

// TupleOdds describes the adversary's view of one multiplicity class when
// she controls proportion p of assignments: how likely she is to hold a
// full k-tuple and how likely cheating on it is to be detected.
type TupleOdds struct {
	K          int     // copies controlled
	PHoldAll   float64 // P(task multiplicity is exactly k | she holds k copies)
	PDetect    float64 // P_{k,p}
	ExpectedKT float64 // expected number of tasks of which she holds exactly k copies
}

// ExpectedDamage returns the expected number of tasks on which an
// always-cheating adversary controlling proportion p of assignments gets a
// wrong result certified: a cheat escapes only on tasks she holds in full,
// and a multiplicity-i task is fully hers with probability p^i, so
//
//	E[damage] = Σ_i x_i · p^i.
//
// For the Balanced distribution this evaluates in closed form to
// N·((1−ε)/ε)·(e^{γp} − 1) with γ = ln(1/(1−ε)). Ringer tasks are not part
// of d's mass, so they need no exclusion here.
func ExpectedDamage(d *Distribution, p float64) float64 {
	if p < 0 || p >= 1 {
		panic("dist: ExpectedDamage requires 0 <= p < 1")
	}
	var sum numeric.KahanSum
	pow := 1.0
	for i := 1; i <= len(d.Counts); i++ {
		pow *= p
		if pow == 0 {
			break
		}
		sum.Add(d.Count(i) * pow)
	}
	return sum.Value()
}

// BalancedExpectedDamage is the closed form of ExpectedDamage for the
// Balanced distribution: N·((1−ε)/ε)·(e^{γ·p} − 1).
func BalancedExpectedDamage(n, epsilon, p float64) float64 {
	return n * (1 - epsilon) / epsilon * math.Expm1(Gamma(epsilon)*p)
}

// AdversaryOdds tabulates TupleOdds for k = 1..maxK. ExpectedKT uses the
// binomial thinning model of the proofs: the adversary ends up holding
// exactly k of the i copies of a multiplicity-i task with probability
// C(i,k)p^k(1−p)^{i−k}.
func AdversaryOdds(d *Distribution, p float64, maxK int) []TupleOdds {
	out := make([]TupleOdds, 0, maxK)
	for k := 1; k <= maxK; k++ {
		var expect numeric.KahanSum
		for i := k; i <= len(d.Counts); i++ {
			expect.Add(numeric.Binomial(i, k) *
				math.Pow(p, float64(k)) * math.Pow(1-p, float64(i-k)) * d.Count(i))
		}
		pd := DetectionAt(d, k, p)
		out = append(out, TupleOdds{
			K:          k,
			PHoldAll:   1 - pd,
			PDetect:    pd,
			ExpectedKT: expect.Value(),
		})
	}
	return out
}

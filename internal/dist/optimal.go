package dist

import (
	"fmt"

	"redundancy/internal/lp"
	"redundancy/internal/numeric"
)

// AssignmentMinimizing solves the finite-dimensional assignment-minimizing
// system S_dim of §3.2:
//
//	minimize  Σ_{i=1..dim} i·x_i
//	subject to  Σ x_i = N,  x_i >= 0,
//	            C_j:  ε·x_j <= (1−ε)·Σ_{i=j+1..dim} C(i,j)·x_i,  j = 1..dim−1.
//
// (C_dim cannot be satisfied by any dim-dimensional scheme; the supervisor
// must verify the multiplicity-dim tasks — their count is the "precomputing
// required" column of Figure 2.) The LP is solved at unit mass and rescaled
// to n, which keeps the tableau well conditioned for any n.
func AssignmentMinimizing(n, epsilon float64, dim int) (*Distribution, error) {
	if err := validateParams(n, epsilon); err != nil {
		return nil, err
	}
	if dim < 2 {
		return nil, fmt.Errorf("dist: assignment-minimizing systems need dimension >= 2, got %d", dim)
	}
	prob := BuildSystem(epsilon, dim, lp.LE)
	sol, err := lp.Solve(prob, lp.Dantzig)
	if err != nil {
		return nil, fmt.Errorf("dist: S_%d: %w", dim, err)
	}
	d := &Distribution{
		Name:   fmt.Sprintf("min-assign(ε=%g,dim=%d)", epsilon, dim),
		Counts: sol.X,
	}
	d.Scale(n)
	d.Trim(1e-12)
	return d, nil
}

// BalancedLP solves the equality-augmented system of Proposition 2: the
// cheapest dim-dimensional scheme whose constraints C_1..C_{dim-1} all hold
// with equality (P_j = ε exactly). The paper observes the result is
// "virtually indistinguishable from the Balanced distribution"; the
// Proposition-2 ablation experiment quantifies the distance.
func BalancedLP(n, epsilon float64, dim int) (*Distribution, error) {
	if err := validateParams(n, epsilon); err != nil {
		return nil, err
	}
	if dim < 2 {
		return nil, fmt.Errorf("dist: augmented systems need dimension >= 2, got %d", dim)
	}
	prob := BuildSystem(epsilon, dim, lp.EQ)
	sol, err := lp.Solve(prob, lp.Bland)
	if err != nil {
		return nil, fmt.Errorf("dist: augmented S_%d: %w", dim, err)
	}
	d := &Distribution{
		Name:   fmt.Sprintf("balanced-lp(ε=%g,dim=%d)", epsilon, dim),
		Counts: sol.X,
	}
	d.Scale(n)
	d.Trim(1e-12)
	return d, nil
}

// BuildSystem constructs the S_dim linear program at unit task mass.
// op selects inequality (lp.LE: the S_m systems of §3.2) or equality
// (lp.EQ: Proposition 2's augmented systems) for the detection
// constraints. It is exported so the pivot-rule ablation bench can solve
// the exact system the package itself solves.
func BuildSystem(epsilon float64, dim int, op lp.Op) lp.Problem {
	objective := make([]float64, dim)
	for i := range objective {
		objective[i] = float64(i + 1) // cost of x_i is its multiplicity
	}
	prob := lp.Problem{Objective: objective}

	// C_0: Σ x_i = 1 (unit mass; rescaled to N by the caller).
	ones := make([]float64, dim)
	for i := range ones {
		ones[i] = 1
	}
	prob.Constraints = append(prob.Constraints, lp.Constraint{
		Coeffs: ones, Op: lp.EQ, RHS: 1,
	})

	// C_j for j = 1..dim-1:  ε·x_j − (1−ε)·Σ_{i>j} C(i,j)·x_i  <= / == 0.
	// Each row is scaled to unit max-magnitude: the raw coefficients span
	// from ε to (1−ε)·C(dim, dim/2) ~ 10^7, and that spread degrades the
	// simplex tolerance tests. Scaling a zero-RHS row changes nothing
	// mathematically.
	for j := 1; j < dim; j++ {
		coeffs := make([]float64, dim)
		coeffs[j-1] = epsilon
		maxAbs := epsilon
		for i := j + 1; i <= dim; i++ {
			coeffs[i-1] = -(1 - epsilon) * numeric.Binomial(i, j)
			if a := -coeffs[i-1]; a > maxAbs {
				maxAbs = a
			}
		}
		for i := range coeffs {
			coeffs[i] /= maxAbs
		}
		prob.Constraints = append(prob.Constraints, lp.Constraint{
			Coeffs: coeffs, Op: op, RHS: 0,
		})
	}
	return prob
}

// PrecomputeRequired returns the number of tasks the supervisor must verify
// itself for a finite-dimensional scheme to meet every detection constraint:
// the tasks at the scheme's top multiplicity (§2.2). For an effectively
// infinite-dimensional scheme (Balanced, GS truncated at negligible mass)
// this is a negligible fraction of N.
func PrecomputeRequired(d *Distribution) float64 {
	dim := d.Dimension()
	if dim == 0 {
		return 0
	}
	return d.Count(dim)
}

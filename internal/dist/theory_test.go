package dist

import (
	"math"
	"testing"
	"testing/quick"

	"redundancy/internal/numeric"
)

// epsGrid is the detection-threshold grid used across the theorem tests.
var epsGrid = []float64{0.05, 0.1, 0.25, 0.5, 0.6667, 0.75, 0.9, 0.99}

// TestTheorem1MassSumsToN verifies property 1 of Theorem 1: Σ a_i = N.
func TestTheorem1MassSumsToN(t *testing.T) {
	for _, eps := range epsGrid {
		d, err := Balanced(1e6, eps)
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.AlmostEqual(d.N(), 1e6, 1e-9) {
			t.Errorf("ε=%v: ΣA = %v, want 1e6", eps, d.N())
		}
	}
}

// TestTheorem1DetectionEqualsEpsilon verifies property 2: P_k = ε for every
// k (up to the numerical truncation of the tail).
func TestTheorem1DetectionEqualsEpsilon(t *testing.T) {
	for _, eps := range epsGrid {
		d, err := Balanced(1e6, eps)
		if err != nil {
			t.Fatal(err)
		}
		// Check every k for which the tail above k still carries enough
		// relative mass for the ratio to be numerically meaningful.
		maxK := d.Dimension() - 8
		if maxK > 25 {
			maxK = 25
		}
		for k := 1; k <= maxK; k++ {
			if pk := Detection(d, k); !numeric.AlmostEqual(pk, eps, 1e-6) {
				t.Errorf("ε=%v: P_%d = %.9f", eps, k, pk)
			}
		}
	}
}

// TestTheorem1TotalAssignments verifies property 3: total assignments equal
// N·ln(1/(1−ε))/ε.
func TestTheorem1TotalAssignments(t *testing.T) {
	for _, eps := range epsGrid {
		d, err := Balanced(1e6, eps)
		if err != nil {
			t.Fatal(err)
		}
		want := 1e6 * BalancedRedundancyFactor(eps)
		if !numeric.AlmostEqual(d.TotalAssignments(), want, 1e-9) {
			t.Errorf("ε=%v: assignments %v, want %v", eps, d.TotalAssignments(), want)
		}
	}
}

// TestProposition3 verifies P_{k,p} = 1 − (1−ε)^{1−p} for the Balanced
// distribution, independent of k, by comparing the generic non-asymptotic
// formula against the closed form.
func TestProposition3(t *testing.T) {
	for _, eps := range []float64{0.25, 0.5, 0.75} {
		d, err := Balanced(1e6, eps)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []float64{0, 0.05, 0.1, 0.25, 0.5} {
			want := BalancedDetectionAt(eps, p)
			for k := 1; k <= 10; k++ {
				got := DetectionAt(d, k, p)
				if !numeric.AlmostEqual(got, want, 1e-6) {
					t.Errorf("ε=%v p=%v k=%d: %v vs closed form %v", eps, p, k, got, want)
				}
			}
		}
	}
}

// TestBalancedIsKIndependentProperty is the Proposition-2 efficiency
// property as a randomized check: for random (ε, p), P_{1,p} = P_{2,p} =
// P_{3,p} on the Balanced distribution.
func TestBalancedIsKIndependentProperty(t *testing.T) {
	f := func(eRaw, pRaw uint16) bool {
		eps := 0.05 + 0.90*float64(eRaw)/65535.0
		p := 0.45 * float64(pRaw) / 65535.0
		d, err := Balanced(1e5, eps)
		if err != nil {
			return false
		}
		p1 := DetectionAt(d, 1, p)
		p2 := DetectionAt(d, 2, p)
		p3 := DetectionAt(d, 3, p)
		return numeric.AlmostEqual(p1, p2, 1e-6) && numeric.AlmostEqual(p2, p3, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestGolleStubblebineClosedForms cross-checks the generic detection
// formulas against the paper's GS closed forms.
func TestGolleStubblebineClosedForms(t *testing.T) {
	for _, c := range []float64{0.2, 0.29289, 0.5, 0.7} {
		d, err := GolleStubblebine(1e6, c)
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.AlmostEqual(d.N(), 1e6, 1e-9) {
			t.Errorf("c=%v: mass %v", c, d.N())
		}
		if !numeric.AlmostEqual(d.RedundancyFactor(), 1/(1-c), 1e-9) {
			t.Errorf("c=%v: factor %v, want %v", c, d.RedundancyFactor(), 1/(1-c))
		}
		for k := 1; k <= 12; k++ {
			want := GolleStubblebineDetection(c, k)
			if got := Detection(d, k); !numeric.AlmostEqual(got, want, 1e-8) {
				t.Errorf("c=%v k=%d: P_k = %v, want %v", c, k, got, want)
			}
		}
		for _, p := range []float64{0.05, 0.2} {
			for k := 1; k <= 8; k++ {
				want := GolleStubblebineDetectionAt(c, k, p)
				if got := DetectionAt(d, k, p); !numeric.AlmostEqual(got, want, 1e-8) {
					t.Errorf("c=%v k=%d p=%v: %v vs %v", c, k, p, got, want)
				}
			}
		}
	}
}

// TestGSDetectionIncreasesWithK documents the inefficiency the paper
// exploits: GS detection probabilities strictly increase with k, so the
// rational adversary always attacks 1-tuples.
func TestGSDetectionIncreasesWithK(t *testing.T) {
	d, err := GolleStubblebineForThreshold(1e6, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for k := 1; k <= 10; k++ {
		pk := Detection(d, k)
		if pk <= prev {
			t.Errorf("P_%d = %v not increasing", k, pk)
		}
		prev = pk
	}
	minP, argK := MinDetectionAt(d, 0, 10)
	if argK != 1 {
		t.Errorf("rational adversary should attack k=1, got %d", argK)
	}
	if !numeric.AlmostEqual(minP, 0.5, 1e-8) {
		t.Errorf("GS effective protection %v, want ε=0.5", minP)
	}
}

// TestGSThresholdTuning verifies c = 1 − sqrt(1−ε) makes P_1 = ε and the
// redundancy factor 1/sqrt(1−ε).
func TestGSThresholdTuning(t *testing.T) {
	for _, eps := range epsGrid {
		c := GolleStubblebineC(eps, 0)
		if got := GolleStubblebineDetection(c, 1); !numeric.AlmostEqual(got, eps, 1e-12) {
			t.Errorf("ε=%v: P_1 = %v", eps, got)
		}
		if !numeric.AlmostEqual(1/(1-c), GolleStubblebineRedundancyFactor(eps), 1e-12) {
			t.Errorf("ε=%v: factor mismatch", eps)
		}
	}
	// Non-asymptotic tuning: with adversary proportion p, P_{1,p} = ε.
	c := GolleStubblebineC(0.5, 0.1)
	if got := GolleStubblebineDetectionAt(c, 1, 0.1); !numeric.AlmostEqual(got, 0.5, 1e-12) {
		t.Errorf("non-asymptotic tuning: P_{1,p} = %v", got)
	}
}

// TestBalancedBeatsGSEverywhere verifies the Figure-3 ordering:
// Balanced factor < GS factor for all ε in (0,1), and Balanced < simple
// redundancy exactly below the ≈0.797 crossover.
func TestBalancedBeatsGSEverywhere(t *testing.T) {
	for e := 0.01; e < 0.995; e += 0.01 {
		b, g := BalancedRedundancyFactor(e), GolleStubblebineRedundancyFactor(e)
		if b >= g {
			t.Errorf("ε=%v: Balanced %v not below GS %v", e, b, g)
		}
		lb := LowerBoundRedundancyFactor(e)
		if b <= lb {
			t.Errorf("ε=%v: Balanced %v at or below the Prop-1 bound %v", e, b, lb)
		}
	}
	cross := CrossoverEpsilon()
	if math.Abs(cross-0.7968) > 0.001 {
		t.Errorf("crossover ε* = %v, want ≈0.7968", cross)
	}
	if BalancedRedundancyFactor(cross-0.01) >= 2 || BalancedRedundancyFactor(cross+0.01) <= 2 {
		t.Error("crossover does not separate the <2 and >2 regions")
	}
}

// TestProposition1Witness verifies the relaxation optimum used in the
// Prop-1 proof: the two-point witness meets C_0 and C_1 with equality,
// attains redundancy factor 2/(2−ε), and violates C_2 — so the bound is
// strict for valid schemes.
func TestProposition1Witness(t *testing.T) {
	for _, eps := range epsGrid {
		w := LowerBoundWitness(1000, eps)
		if !numeric.AlmostEqual(w.N(), 1000, 1e-9) {
			t.Errorf("ε=%v: witness mass %v", eps, w.N())
		}
		if !numeric.AlmostEqual(w.RedundancyFactor(), LowerBoundRedundancyFactor(eps), 1e-12) {
			t.Errorf("ε=%v: witness factor %v, want %v",
				eps, w.RedundancyFactor(), LowerBoundRedundancyFactor(eps))
		}
		if p1 := Detection(w, 1); !numeric.AlmostEqual(p1, eps, 1e-12) {
			t.Errorf("ε=%v: witness P_1 = %v, want tight ε", eps, p1)
		}
		if p2 := Detection(w, 2); p2 != 0 {
			t.Errorf("ε=%v: witness P_2 = %v, should violate C_2", eps, p2)
		}
	}
}

// TestAssignmentMinimizingApproachesLowerBound reproduces the §3.2
// observation: as the dimension grows the S_m redundancy factor decreases
// toward (but never reaches) 2/(2−ε).
func TestAssignmentMinimizingApproachesLowerBound(t *testing.T) {
	const eps = 0.5
	lb := LowerBoundRedundancyFactor(eps)
	prevFactor := math.Inf(1)
	for _, dim := range []int{4, 8, 12, 19, 26} {
		d, err := AssignmentMinimizing(1e5, eps, dim)
		if err != nil {
			t.Fatalf("S_%d: %v", dim, err)
		}
		r := Validate(d, 1e5, eps, 1e-6)
		if !r.Valid() {
			t.Fatalf("S_%d invalid: %v", dim, r.Violations)
		}
		f := d.RedundancyFactor()
		if f <= lb {
			t.Errorf("S_%d factor %v at or below the lower bound %v", dim, f, lb)
		}
		if f > prevFactor+1e-9 {
			t.Errorf("S_%d factor %v increased from previous %v", dim, f, prevFactor)
		}
		prevFactor = f
	}
	if prevFactor > lb*1.02 {
		t.Errorf("S_26 factor %v not within 2%% of the bound %v", prevFactor, lb)
	}
}

// TestAssignmentMinimizingSupportShape verifies the structural claim of
// Fact 1: optimal S_m solutions concentrate mass on multiplicities
// {1, 2} plus a small tail at {m−1, m}.
func TestAssignmentMinimizingSupportShape(t *testing.T) {
	for _, dim := range []int{6, 10, 15, 20} {
		d, err := AssignmentMinimizing(1e5, 0.5, dim)
		if err != nil {
			t.Fatal(err)
		}
		for i := 3; i <= dim-2; i++ {
			if d.Count(i) > 1e-6*d.N() {
				t.Errorf("S_%d has interior mass %v at multiplicity %d", dim, d.Count(i), i)
			}
		}
		if d.Count(1) < 0.5*d.N() {
			t.Errorf("S_%d: expected most mass at multiplicity 1, got %v", dim, d.Count(1))
		}
	}
}

// TestAssignmentMinimizingBeatsBalancedOnCost verifies that the
// assignment-minimizing schemes are cheaper than Balanced (they sacrifice
// non-asymptotic robustness and precompute instead, §4).
func TestAssignmentMinimizingBeatsBalancedOnCost(t *testing.T) {
	bal := BalancedRedundancyFactor(0.5)
	d, err := AssignmentMinimizing(1e5, 0.5, 19)
	if err != nil {
		t.Fatal(err)
	}
	if d.RedundancyFactor() >= bal {
		t.Errorf("S_19 factor %v not below Balanced %v", d.RedundancyFactor(), bal)
	}
}

// TestNonAsymptoticCollapseOfMinimizers reproduces the core §5 comparison:
// at p = 0.15 the minimizing distributions' worst-case detection collapses
// far below ε while Balanced stays near its closed form.
func TestNonAsymptoticCollapseOfMinimizers(t *testing.T) {
	const eps, p = 0.5, 0.15
	sm, err := AssignmentMinimizing(1e5, eps, 19)
	if err != nil {
		t.Fatal(err)
	}
	minS, _ := MinDetectionAt(sm, p, 0)
	bal, err := Balanced(1e5, eps)
	if err != nil {
		t.Fatal(err)
	}
	minB, _ := MinDetectionAt(bal, p, 25)
	wantB := BalancedDetectionAt(eps, p)
	if !numeric.AlmostEqual(minB, wantB, 1e-4) {
		t.Errorf("Balanced min detection %v, closed form %v", minB, wantB)
	}
	if minS >= minB-0.05 {
		t.Errorf("S_19 min detection %v should collapse well below Balanced %v", minS, minB)
	}
}

// TestBalancedLPMatchesBalanced is the Proposition-2 ablation: the
// equality-augmented LP optimum is close to the truncated Balanced
// distribution, proportion by proportion.
func TestBalancedLPMatchesBalanced(t *testing.T) {
	const eps = 0.5
	lpDist, err := BalancedLP(1e5, eps, 22)
	if err != nil {
		t.Fatal(err)
	}
	bal, err := Balanced(1e5, eps)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.AlmostEqual(lpDist.RedundancyFactor(), bal.RedundancyFactor(), 5e-3) {
		t.Errorf("augmented-LP factor %v vs Balanced %v",
			lpDist.RedundancyFactor(), bal.RedundancyFactor())
	}
	for i := 1; i <= 8; i++ {
		a, b := lpDist.Count(i), bal.Count(i)
		if math.Abs(a-b) > 0.01*bal.N() {
			t.Errorf("multiplicity %d: LP %v vs Balanced %v", i, a, b)
		}
	}
}

// TestMinMultiplicityProperties verifies the §7 extension: mass sums to N,
// no mass below m, P_k = ε for k >= m, and the quoted redundancy factors.
func TestMinMultiplicityProperties(t *testing.T) {
	// §7 quotes 2.259 and 3.192 explicitly (its remaining two figures are
	// corrupted in the source text); 4.152 and 5.124 follow from the same
	// closed form.
	wantFactors := map[int]float64{2: 2.259, 3: 3.192, 4: 4.152, 5: 5.126}
	for m := 1; m <= 5; m++ {
		d, err := MinMultiplicity(1e5, 0.5, m)
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.AlmostEqual(d.N(), 1e5, 1e-9) {
			t.Errorf("m=%d: mass %v", m, d.N())
		}
		for i := 1; i < m; i++ {
			if d.Count(i) != 0 {
				t.Errorf("m=%d: mass %v below the minimum multiplicity", m, d.Count(i))
			}
		}
		for k := m; k <= m+8; k++ {
			if pk := Detection(d, k); !numeric.AlmostEqual(pk, 0.5, 1e-6) {
				t.Errorf("m=%d: P_%d = %v", m, k, pk)
			}
		}
		got := d.RedundancyFactor()
		if !numeric.AlmostEqual(got, MinMultiplicityRedundancyFactor(0.5, m), 1e-9) {
			t.Errorf("m=%d: factor %v vs closed form %v",
				m, got, MinMultiplicityRedundancyFactor(0.5, m))
		}
		if want, ok := wantFactors[m]; ok && math.Abs(got-want) > 0.005 {
			t.Errorf("m=%d: factor %v, paper quotes ≈%v", m, got, want)
		}
	}
	// m=1 must recover the plain Balanced distribution.
	if !numeric.AlmostEqual(MinMultiplicityRedundancyFactor(0.75, 1),
		BalancedRedundancyFactor(0.75), 1e-12) {
		t.Error("m=1 does not recover Balanced")
	}
}

// TestSection7UpgradeCost verifies the §7 worked example: upgrading simple
// redundancy on N = 100,000 tasks to a guaranteed ε = 1/2 costs about
// 25,900 extra assignments (≈13%).
func TestSection7UpgradeCost(t *testing.T) {
	const n = 100_000
	extra := n*MinMultiplicityRedundancyFactor(0.5, 2) - 2*n
	if math.Abs(extra-25_900) > 150 {
		t.Errorf("extra assignments = %v, paper quotes ≈25,900", extra)
	}
	if pct := extra / (2 * n) * 100; math.Abs(pct-13) > 0.5 {
		t.Errorf("extra percentage = %v, paper quotes ≈13%%", pct)
	}
}

// TestFigure4Savings verifies the §4 worked example: at N = 1,000,000 and
// ε = 0.75 the Balanced distribution saves more than 50,000 assignments
// over both GS and simple redundancy.
func TestFigure4Savings(t *testing.T) {
	const n, eps = 1e6, 0.75
	bal := n * BalancedRedundancyFactor(eps)
	gs := n * GolleStubblebineRedundancyFactor(eps)
	simple := 2 * n
	if gs-bal < 50_000 {
		t.Errorf("savings vs GS = %v, want > 50,000", gs-bal)
	}
	if simple-bal < 50_000 {
		t.Errorf("savings vs simple = %v, want > 50,000", simple-bal)
	}
	if s := GSBalancedSavings(n, eps); !numeric.AlmostEqual(s, gs-bal, 1e-9) {
		t.Errorf("GSBalancedSavings = %v, want %v", s, gs-bal)
	}
}

// TestAppendixAClosedForms sanity-checks the Appendix-A helpers.
func TestAppendixAClosedForms(t *testing.T) {
	if got := ExpectedFullyControlled(10_000, 0.01); !numeric.AlmostEqual(got, 1, 1e-12) {
		t.Errorf("E = %v, want 1", got)
	}
	if got := SqrtNClaimThreshold(10_000); !numeric.AlmostEqual(got, 0.01, 1e-12) {
		t.Errorf("threshold = %v, want 0.01", got)
	}
}

// TestGammaDefinition pins γ = ln(1/(1−ε)).
func TestGammaDefinition(t *testing.T) {
	if !numeric.AlmostEqual(Gamma(0.5), math.Ln2, 1e-15) {
		t.Errorf("γ(1/2) = %v, want ln 2", Gamma(0.5))
	}
	if !numeric.AlmostEqual(Gamma(0.75), math.Log(4), 1e-15) {
		t.Errorf("γ(3/4) = %v, want ln 4", Gamma(0.75))
	}
}

// TestFact1MatchesLP verifies our re-derivation of Fact 1: wherever the LP
// optimum's support is exactly {1, 2, m}, the closed form reproduces it —
// class sizes, redundancy factor, and tight constraints C_1, C_2.
func TestFact1MatchesLP(t *testing.T) {
	const n, eps = 100_000, 0.5
	for m := 6; m <= 26; m += 2 {
		lpOpt, err := AssignmentMinimizing(n, eps, m)
		if err != nil {
			t.Fatal(err)
		}
		// Fact 1 applies when the LP's support is {1,2,m}.
		support12m := true
		for i := 3; i < m; i++ {
			if lpOpt.Count(i) > 1e-6*n {
				support12m = false
			}
		}
		if !support12m {
			continue
		}
		cf, ok, err := Fact1(n, eps, m)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("m=%d: closed form flagged invalid", m)
		}
		for _, i := range []int{1, 2, m} {
			if !numeric.AlmostEqual(cf.Count(i), lpOpt.Count(i), 1e-5) {
				t.Errorf("m=%d: class %d closed form %v vs LP %v",
					m, i, cf.Count(i), lpOpt.Count(i))
			}
		}
		if !numeric.AlmostEqual(cf.RedundancyFactor(), lpOpt.RedundancyFactor(), 1e-7) {
			t.Errorf("m=%d: factor %v vs LP %v", m, cf.RedundancyFactor(), lpOpt.RedundancyFactor())
		}
		// Tightness: C_1 and C_2 hold with equality on the closed form.
		for _, k := range []int{1, 2} {
			if !numeric.AlmostEqual(Detection(cf, k), eps, 1e-9) {
				t.Errorf("m=%d: P_%d = %v not tight", m, k, Detection(cf, k))
			}
		}
	}
}

// TestFact1ParamValidation covers the error paths.
func TestFact1ParamValidation(t *testing.T) {
	if _, _, err := Fact1(100, 0.5, 2); err == nil {
		t.Error("m=2 accepted")
	}
	if _, _, err := Fact1(0, 0.5, 6); err == nil {
		t.Error("N=0 accepted")
	}
	if _, _, err := Fact1(100, 1.5, 6); err == nil {
		t.Error("ε=1.5 accepted")
	}
}

// TestEpsilonForEffectiveDetection verifies the closed-form inverse of
// Proposition 3: designing for effective detection delta at proportion p
// and then evaluating the Balanced closed form at that p returns delta.
func TestEpsilonForEffectiveDetection(t *testing.T) {
	for _, delta := range []float64{0.1, 0.5, 0.75, 0.95} {
		for _, p := range []float64{0, 0.05, 0.2, 0.5} {
			eps, err := EpsilonForEffectiveDetection(delta, p)
			if err != nil {
				t.Fatal(err)
			}
			if got := BalancedDetectionAt(eps, p); !numeric.AlmostEqual(got, delta, 1e-12) {
				t.Errorf("delta=%v p=%v: designed ε=%v gives %v", delta, p, eps, got)
			}
			if p == 0 && !numeric.AlmostEqual(eps, delta, 1e-12) {
				t.Errorf("at p=0 the design should be ε=delta, got %v", eps)
			}
			if p > 0 && eps <= delta {
				t.Errorf("delta=%v p=%v: ε=%v should over-provision", delta, p, eps)
			}
		}
	}
	if _, err := EpsilonForEffectiveDetection(0, 0.1); err == nil {
		t.Error("delta=0 accepted")
	}
	if _, err := EpsilonForEffectiveDetection(0.5, 1); err == nil {
		t.Error("p=1 accepted")
	}
	if _, err := EpsilonForEffectiveDetection(1.5, 0.1); err == nil {
		t.Error("delta>1 accepted")
	}
}

// TestGSNonAsymptoticFactor verifies the §3.1 non-asymptotic factor
// (1−p)/(sqrt(1−ε)−p): it reduces to 1/sqrt(1−ε) at p=0, the underlying
// tuning really does deliver P_{1,p} = ε, and it blows up toward the
// p = sqrt(1−ε) wall.
func TestGSNonAsymptoticFactor(t *testing.T) {
	for _, eps := range []float64{0.25, 0.5, 0.75} {
		at0, err := GolleStubblebineNonAsymptoticFactor(eps, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.AlmostEqual(at0, GolleStubblebineRedundancyFactor(eps), 1e-12) {
			t.Errorf("ε=%v: p=0 factor %v", eps, at0)
		}
		for _, p := range []float64{0.05, 0.2} {
			f, err := GolleStubblebineNonAsymptoticFactor(eps, p)
			if err != nil {
				t.Fatal(err)
			}
			if f <= at0 {
				t.Errorf("ε=%v p=%v: factor %v should exceed the asymptotic %v", eps, p, f, at0)
			}
			// Consistency: the tuning c = (1−sqrt(1−ε))/(1−p) gives factor
			// 1/(1−c) and pins P_{1,p} at ε.
			c := GolleStubblebineC(eps, p)
			if !numeric.AlmostEqual(f, 1/(1-c), 1e-12) {
				t.Errorf("ε=%v p=%v: %v vs 1/(1-c)=%v", eps, p, f, 1/(1-c))
			}
			if got := GolleStubblebineDetectionAt(c, 1, p); !numeric.AlmostEqual(got, eps, 1e-12) {
				t.Errorf("ε=%v p=%v: tuned P_{1,p} = %v", eps, p, got)
			}
		}
		// Beyond the wall: no tuning exists.
		if _, err := GolleStubblebineNonAsymptoticFactor(eps, math.Sqrt(1-eps)); err == nil {
			t.Errorf("ε=%v: factor at the wall should fail", eps)
		}
	}
}

// TestExpectedDamageClosedForm checks the Σ x_i p^i damage formula against
// its Balanced closed form and against simple redundancy's p²N.
func TestExpectedDamageClosedForm(t *testing.T) {
	for _, eps := range []float64{0.25, 0.5, 0.75} {
		d, err := Balanced(1e6, eps)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []float64{0, 0.05, 0.15, 0.4} {
			got := ExpectedDamage(d, p)
			want := BalancedExpectedDamage(1e6, eps, p)
			if !numeric.AlmostEqual(got, want, 1e-9) {
				t.Errorf("ε=%v p=%v: %v vs closed form %v", eps, p, got, want)
			}
		}
	}
	s := Simple(1e4)
	if got := ExpectedDamage(s, 0.1); !numeric.AlmostEqual(got, 100, 1e-9) {
		t.Errorf("simple redundancy damage %v, want p²N=100", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("p=1 should panic")
		}
	}()
	ExpectedDamage(s, 1)
}

// TestExpectedDamageOrdering: at equal ε-level tuning, the Balanced scheme
// concedes slightly more fully-held tasks than GS (its tail is shorter) —
// but every such concession is priced at exactly 1−ε odds, which is the
// efficiency trade the paper argues for.
func TestExpectedDamageFinite(t *testing.T) {
	d, err := Balanced(1e6, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, p := range []float64{0.01, 0.1, 0.3, 0.6} {
		dmg := ExpectedDamage(d, p)
		if dmg <= prev {
			t.Errorf("damage not increasing at p=%v", p)
		}
		if dmg >= d.N() {
			t.Errorf("damage %v exceeds task count", dmg)
		}
		prev = dmg
	}
}

// TestAssignmentMinimizingTrendsGeneralizeAcrossEpsilon verifies §3.2's
// closing remark — "similar behavior is observed in these systems for all
// relevant ε values": at ε = 0.25 and ε = 0.75 too, the S_m factors
// decrease toward 2/(2−ε) while the worst-case non-asymptotic detection
// collapses with dimension, and Balanced dominates that worst case.
func TestAssignmentMinimizingTrendsGeneralizeAcrossEpsilon(t *testing.T) {
	for _, eps := range []float64{0.25, 0.75} {
		lb := LowerBoundRedundancyFactor(eps)
		balanced := BalancedDetectionAt(eps, 0.15)
		prevFactor := math.Inf(1)
		prevWorst := math.Inf(1)
		for _, dim := range []int{8, 14, 20, 26} {
			d, err := AssignmentMinimizing(1e5, eps, dim)
			if err != nil {
				t.Fatalf("ε=%v S_%d: %v", eps, dim, err)
			}
			if r := Validate(d, 1e5, eps, 1e-6); !r.Valid() {
				t.Fatalf("ε=%v S_%d invalid: %v", eps, dim, r.Violations)
			}
			f := d.RedundancyFactor()
			if f <= lb || f >= prevFactor+1e-9 {
				t.Errorf("ε=%v S_%d: factor %v (prev %v, bound %v)", eps, dim, f, prevFactor, lb)
			}
			worst, _ := MinDetectionAt(d, 0.15, 0)
			if worst >= prevWorst+1e-9 {
				t.Errorf("ε=%v S_%d: worst-case detection rose to %v", eps, dim, worst)
			}
			if dim >= 14 && worst >= balanced {
				t.Errorf("ε=%v S_%d: worst case %v not below Balanced %v",
					eps, dim, worst, balanced)
			}
			prevFactor, prevWorst = f, worst
		}
		// Convergence toward the bound is slower at large ε (more tail
		// mass is needed per unit of protection): 8% headroom covers
		// ε = 0.75 at dimension 26 while still pinning the trend.
		if prevFactor > lb*1.08 {
			t.Errorf("ε=%v: S_26 factor %v not within 8%% of bound %v", eps, prevFactor, lb)
		}
	}
}

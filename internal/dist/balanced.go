package dist

import (
	"fmt"
	"math"

	"redundancy/internal/numeric"
)

// Balanced returns the paper's Balanced distribution (§4, Equation 2) for an
// n-task computation at detection threshold epsilon:
//
//	a_i = n · ((1−ε)/ε) · γ^i / i!,   γ = ln(1/(1−ε)),
//
// i.e. n times the zero-truncated Poisson(γ) law. Theorem 1 gives its three
// defining properties, all of which this package's tests verify directly:
//
//  1. Σ a_i = n;
//  2. P_k = ε for every positive integer k;
//  3. total assignments = n·γ/ε (redundancy factor ln(1/(1−ε))/ε).
//
// The returned vector is truncated only where the remaining tail is below
// one part in 10^60 of n. The deep cut matters: the detection formulas
// weight the tail by C(i,k), which amplifies truncation error at large k,
// so the theoretical vector keeps far more of the tail than §6's practical
// deployment (package plan) ever assigns.
func Balanced(n, epsilon float64) (*Distribution, error) {
	if err := validateParams(n, epsilon); err != nil {
		return nil, err
	}
	gamma := Gamma(epsilon)
	scale := n * (1 - epsilon) / epsilon
	d := &Distribution{Name: fmt.Sprintf("balanced(ε=%g)", epsilon)}
	term := gamma // γ^1/1!
	for i := 1; ; i++ {
		d.Counts = append(d.Counts, scale*term)
		term *= gamma / float64(i+1)
		if scale*term < n*1e-60 && float64(i) > gamma {
			break
		}
		if i > 100_000 {
			break // unreachable for ε < 1; safety net
		}
	}
	return d, nil
}

// BalancedRedundancyFactor returns the closed-form redundancy factor of the
// Balanced distribution, ln(1/(1−ε))/ε (Theorem 1, property 3).
func BalancedRedundancyFactor(epsilon float64) float64 {
	return Gamma(epsilon) / epsilon
}

// BalancedDetectionAt returns the closed-form non-asymptotic detection
// probability of the Balanced distribution (Proposition 3):
//
//	P_{k,p} = 1 − e^{−(1−p)γ} = 1 − (1−ε)^{1−p},
//
// independent of k — exactly the efficiency property Proposition 2 demands.
func BalancedDetectionAt(epsilon, p float64) float64 {
	return -math.Expm1((1 - p) * math.Log1p(-epsilon))
}

// MinMultiplicity returns the §7 extension of the Balanced distribution that
// guarantees every task is assigned at least m times while keeping
// P_k = ε for all k:
//
//	a_i = n·β·γ^i/i!  for i >= m,   β = 1 / Σ_{i>=m} γ^i/i!.
//
// m = 1 recovers the Balanced distribution.
func MinMultiplicity(n, epsilon float64, m int) (*Distribution, error) {
	if err := validateParams(n, epsilon); err != nil {
		return nil, err
	}
	if m < 1 {
		return nil, fmt.Errorf("dist: minimum multiplicity must be >= 1, got %d", m)
	}
	gamma := Gamma(epsilon)
	beta := 1 / math.Exp(numeric.PoissonTailLog(gamma, m))
	d := &Distribution{Name: fmt.Sprintf("minmult(ε=%g,m=%d)", epsilon, m)}
	term := math.Exp(numeric.PoissonTermLog(gamma, m))
	for i := m; ; i++ {
		d.SetCount(i, n*beta*term)
		term *= gamma / float64(i+1)
		if n*beta*term < n*1e-60 && float64(i) > gamma+float64(m) {
			break
		}
		if i > 100_000 {
			break
		}
	}
	return d, nil
}

// MinMultiplicityRedundancyFactor returns the closed-form §7 redundancy
// factor:
//
//	R = β · γ · Σ_{j>=m−1} γ^j/j!,   β = 1 / Σ_{i>=m} γ^i/i!.
//
// At ε = 1/2 this gives ≈ 2.259, 3.192, 4.149, 5.103 for m = 2..5,
// matching the figures quoted in §7.
func MinMultiplicityRedundancyFactor(epsilon float64, m int) float64 {
	gamma := Gamma(epsilon)
	num := numeric.PoissonTailLog(gamma, m-1)
	den := numeric.PoissonTailLog(gamma, m)
	return gamma * math.Exp(num-den)
}

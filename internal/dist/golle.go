package dist

import (
	"fmt"
	"math"
)

// GolleStubblebine returns the geometric distribution of Golle and
// Stubblebine (§3.1) with parameter c in (0, 1):
//
//	g_i = (1−c)·c^{i−1}·n.
//
// Its redundancy factor is 1/(1−c) and its asymptotic detection
// probabilities P_k = 1 − (1−c)^{k+1} strictly increase with k, which is
// why the scheme over-protects large tuples and wastes assignments — the
// observation that motivates the Balanced distribution.
func GolleStubblebine(n, c float64) (*Distribution, error) {
	if !(n > 0) {
		return nil, fmt.Errorf("dist: N must be positive, got %v", n)
	}
	if !(c > 0 && c < 1) {
		return nil, fmt.Errorf("dist: Golle-Stubblebine parameter c must lie in (0,1), got %v", c)
	}
	d := &Distribution{Name: fmt.Sprintf("golle-stubblebine(c=%g)", c)}
	g := (1 - c) * n // g_1
	for i := 1; ; i++ {
		d.Counts = append(d.Counts, g)
		g *= c
		// Cut deep: the detection formulas weight the tail by C(i,k), so
		// a premature cut corrupts P_k at large k.
		if g < n*1e-60 {
			break
		}
		if i > 1_000_000 {
			break
		}
	}
	return d, nil
}

// GolleStubblebineC returns the smallest parameter c that guarantees
// detection probability at least epsilon for every tuple size when the
// adversary controls proportion p of assignments: the binding constraint is
// k = 1, so 1 − (1 − c(1−p))² >= ε, i.e.
//
//	c = (1 − sqrt(1−ε)) / (1−p).
//
// p = 0 gives the asymptotic tuning c = 1 − sqrt(1−ε) from §3.1.
func GolleStubblebineC(epsilon, p float64) float64 {
	return (1 - math.Sqrt(1-epsilon)) / (1 - p)
}

// GolleStubblebineForThreshold returns the GS distribution tuned for
// asymptotic detection threshold epsilon (c = 1 − sqrt(1−ε)).
func GolleStubblebineForThreshold(n, epsilon float64) (*Distribution, error) {
	if err := validateParams(n, epsilon); err != nil {
		return nil, err
	}
	return GolleStubblebine(n, GolleStubblebineC(epsilon, 0))
}

// GolleStubblebineRedundancyFactor returns the asymptotic closed-form
// redundancy factor 1/sqrt(1−ε) of the threshold-tuned GS distribution.
func GolleStubblebineRedundancyFactor(epsilon float64) float64 {
	return 1 / math.Sqrt(1-epsilon)
}

// GolleStubblebineNonAsymptoticFactor returns the redundancy factor of the
// GS distribution tuned to guarantee detection threshold epsilon against
// an adversary controlling proportion p of assignments (§3.1):
// with c = (1−sqrt(1−ε))/(1−p), the factor 1/(1−c) works out to
//
//	(1−p) / (sqrt(1−ε) − p).
//
// It requires p < sqrt(1−ε); at or beyond that proportion no GS tuning can
// deliver the threshold.
func GolleStubblebineNonAsymptoticFactor(epsilon, p float64) (float64, error) {
	root := math.Sqrt(1 - epsilon)
	if p >= root {
		return 0, fmt.Errorf("dist: GS cannot guarantee ε=%v against proportion p=%v (needs p < %.4f)",
			epsilon, p, root)
	}
	return (1 - p) / (root - p), nil
}

// GolleStubblebineDetection returns the closed-form asymptotic detection
// probability P_k = 1 − (1−c)^{k+1} of the GS distribution.
func GolleStubblebineDetection(c float64, k int) float64 {
	return 1 - math.Pow(1-c, float64(k+1))
}

// GolleStubblebineDetectionAt returns the closed-form non-asymptotic
// detection probability P_{k,p} = 1 − (1 − c(1−p))^{k+1} (§3.1).
func GolleStubblebineDetectionAt(c float64, k int, p float64) float64 {
	return 1 - math.Pow(1-c*(1-p), float64(k+1))
}

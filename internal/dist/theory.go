package dist

import (
	"fmt"
	"math"

	"redundancy/internal/numeric"
)

// LowerBoundRedundancyFactor returns the Proposition-1 bound: every valid
// scheme (finite- or infinite-dimensional) needs strictly more than
// 2N/(2−ε) assignments, i.e. redundancy factor > 2/(2−ε). At ε = 1/2 the
// bound is 4/3, the value the S_m optima approach as m grows (§3.2).
//
// The bound is the optimum of the relaxation that keeps only C_0 and C_1,
// achieved by x_1 = 2N(1−ε)/(2−ε), x_2 = Nε/(2−ε) — which violates C_2 and
// is therefore unattainable by any valid scheme.
func LowerBoundRedundancyFactor(epsilon float64) float64 {
	return 2 / (2 - epsilon)
}

// LowerBoundWitness returns the (invalid) two-point scheme that attains the
// Proposition-1 bound, used by tests to verify both that it meets C_1 with
// equality and that it violates C_2.
func LowerBoundWitness(n, epsilon float64) *Distribution {
	return &Distribution{
		Name:   fmt.Sprintf("prop1-witness(ε=%g)", epsilon),
		Counts: []float64{2 * n * (1 - epsilon) / (2 - epsilon), n * epsilon / (2 - epsilon)},
	}
}

// CrossoverEpsilon returns the threshold ε* at which the Balanced
// distribution's redundancy factor equals simple redundancy's factor of 2
// (Figure 3): ln(1/(1−ε*))/ε* = 2, ε* ≈ 0.7968. Balanced is cheaper than
// simple redundancy exactly for ε < ε*.
func CrossoverEpsilon() float64 {
	f := func(e float64) float64 { return BalancedRedundancyFactor(e) - 2 }
	x, err := numeric.Bisect(f, 0.5, 0.99, 1e-12)
	if err != nil {
		panic("dist: crossover bisection failed: " + err.Error())
	}
	return x
}

// GSBalancedSavings returns how many assignments the Balanced distribution
// saves over the threshold-tuned Golle–Stubblebine distribution on an
// n-task computation at threshold epsilon (positive means Balanced is
// cheaper; it is for every ε in (0,1)).
func GSBalancedSavings(n, epsilon float64) float64 {
	return n * (GolleStubblebineRedundancyFactor(epsilon) - BalancedRedundancyFactor(epsilon))
}

// EpsilonForEffectiveDetection solves the supervisor's design problem in
// closed form: choose the Balanced threshold ε so that the *effective*
// detection probability is still delta when the adversary controls
// proportion p of assignments. Inverting Proposition 3's
// 1 − (1−ε)^{1−p} = delta gives
//
//	ε = 1 − (1−delta)^{1/(1−p)}.
//
// The returned ε exceeds delta (protection must be over-provisioned to
// survive the adversary's information advantage) and equals delta at p = 0.
func EpsilonForEffectiveDetection(delta, p float64) (float64, error) {
	if !(delta > 0 && delta < 1) {
		return 0, fmt.Errorf("dist: target detection must lie in (0,1), got %v", delta)
	}
	if p < 0 || p >= 1 {
		return 0, fmt.Errorf("dist: adversary proportion must lie in [0,1), got %v", p)
	}
	return -math.Expm1(math.Log1p(-delta) / (1 - p)), nil
}

// SqrtNClaimThreshold returns the Appendix-A collusion threshold for
// two-phase simple redundancy on an n-task computation: an adversary
// controlling proportion p >= 1/sqrt(n) of participants expects to control
// both copies of at least one task (expected count p²·n).
func SqrtNClaimThreshold(n float64) float64 {
	return 1 / math.Sqrt(n)
}

// ExpectedFullyControlled returns the Appendix-A expectation p²·n of tasks
// whose two copies are both held by a p-proportion adversary under
// two-phase simple redundancy.
func ExpectedFullyControlled(n, p float64) float64 {
	return p * p * n
}

// Package dist implements the paper's central objects: redundancy-based
// task-distribution schemes for volunteer computations and their cheating
// detection probabilities.
//
// A scheme for an N-task computation is a vector x = (x1, x2, x3, ...) in
// which x_i tasks are assigned with multiplicity i (Σ x_i = N). The package
// provides the Balanced distribution (the paper's contribution, §4), the
// Golle–Stubblebine geometric distribution (§3.1), simple redundancy, the
// LP-based assignment-minimizing distributions S_m (§3.2), and the §7
// minimum-multiplicity extension, together with the asymptotic and
// non-asymptotic detection-probability formulas of §2.2 and §5.
package dist

import (
	"fmt"
	"math"

	"redundancy/internal/numeric"
)

// Distribution is a redundancy-based task-distribution scheme.
// Counts[i] is the (possibly fractional, in the theoretical setting of the
// paper) number of tasks assigned with multiplicity i+1; that is, Counts[0]
// counts the multiplicity-1 tasks.
type Distribution struct {
	Name   string
	Counts []float64
}

// Count returns the number of tasks assigned with multiplicity mult
// (zero for multiplicities outside the stored range).
func (d *Distribution) Count(mult int) float64 {
	if mult < 1 || mult > len(d.Counts) {
		return 0
	}
	return d.Counts[mult-1]
}

// SetCount sets the number of tasks with multiplicity mult, growing the
// vector as needed. mult must be >= 1.
func (d *Distribution) SetCount(mult int, v float64) {
	if mult < 1 {
		panic("dist: multiplicity must be >= 1")
	}
	for len(d.Counts) < mult {
		d.Counts = append(d.Counts, 0)
	}
	d.Counts[mult-1] = v
}

// Dimension returns the largest multiplicity with a nonzero count
// (0 for an empty distribution).
func (d *Distribution) Dimension() int {
	for i := len(d.Counts) - 1; i >= 0; i-- {
		if d.Counts[i] != 0 {
			return i + 1
		}
	}
	return 0
}

// N returns the total number of tasks, Σ x_i.
func (d *Distribution) N() float64 {
	return numeric.Sum(d.Counts)
}

// TotalAssignments returns Σ i·x_i, the number of assignments the scheme
// hands out.
func (d *Distribution) TotalAssignments() float64 {
	var s numeric.KahanSum
	for i, x := range d.Counts {
		s.Add(float64(i+1) * x)
	}
	return s.Value()
}

// RedundancyFactor returns TotalAssignments / N (§2.1). It is NaN for an
// empty distribution.
func (d *Distribution) RedundancyFactor() float64 {
	return d.TotalAssignments() / d.N()
}

// Proportions returns the per-multiplicity task proportions x_i / N.
func (d *Distribution) Proportions() []float64 {
	n := d.N()
	out := make([]float64, len(d.Counts))
	for i, x := range d.Counts {
		out[i] = x / n
	}
	return out
}

// Clone returns a deep copy.
func (d *Distribution) Clone() *Distribution {
	c := &Distribution{Name: d.Name, Counts: make([]float64, len(d.Counts))}
	copy(c.Counts, d.Counts)
	return c
}

// Scale multiplies every count by f (used to rescale a unit-mass LP
// solution to an N-task computation).
func (d *Distribution) Scale(f float64) {
	for i := range d.Counts {
		d.Counts[i] *= f
	}
}

// Trim removes trailing multiplicities whose counts are negligible relative
// to N (|x_i| < tol·N), normalizing tiny LP round-off to clean zeros.
func (d *Distribution) Trim(tol float64) {
	n := d.N()
	for i := range d.Counts {
		if math.Abs(d.Counts[i]) < tol*n {
			d.Counts[i] = 0
		}
	}
	dim := d.Dimension()
	d.Counts = d.Counts[:dim]
}

// String summarizes the scheme.
func (d *Distribution) String() string {
	return fmt.Sprintf("%s{N=%.6g, dim=%d, redundancy=%.4f}",
		d.Name, d.N(), d.Dimension(), d.RedundancyFactor())
}

// validateParams reports an error for parameters outside the paper's model:
// N must be positive and ε strictly inside (0, 1).
func validateParams(n, epsilon float64) error {
	if !(n > 0) {
		return fmt.Errorf("dist: N must be positive, got %v", n)
	}
	if !(epsilon > 0 && epsilon < 1) {
		return fmt.Errorf("dist: detection threshold must lie in (0,1), got %v", epsilon)
	}
	return nil
}

// Gamma returns γ = ln(1/(1−ε)), the rate parameter of the zero-truncated
// Poisson law underlying the Balanced distribution.
func Gamma(epsilon float64) float64 {
	return -math.Log1p(-epsilon)
}

// Simple returns simple redundancy: every one of the n tasks assigned
// exactly twice. Matching results are accepted, so an adversary holding
// both copies of a task cheats undetected (P_2 = 0).
func Simple(n float64) *Distribution {
	return &Distribution{Name: "simple", Counts: []float64{0, n}}
}

// Single returns the no-redundancy scheme (every task assigned once).
func Single(n float64) *Distribution {
	return &Distribution{Name: "single", Counts: []float64{n}}
}

// Uniform returns the scheme that assigns every task with multiplicity m.
func Uniform(n float64, m int) *Distribution {
	if m < 1 {
		panic("dist: Uniform multiplicity must be >= 1")
	}
	d := &Distribution{Name: fmt.Sprintf("uniform-%d", m)}
	d.SetCount(m, n)
	return d
}

package dist

import (
	"math"
	"strings"
	"testing"

	"redundancy/internal/numeric"
)

func TestDistributionAccessors(t *testing.T) {
	d := &Distribution{Name: "t", Counts: []float64{3, 5, 0, 2}}
	if d.Count(1) != 3 || d.Count(2) != 5 || d.Count(4) != 2 {
		t.Error("Count wrong")
	}
	if d.Count(0) != 0 || d.Count(5) != 0 || d.Count(-1) != 0 {
		t.Error("out-of-range Count should be 0")
	}
	if d.Dimension() != 4 {
		t.Errorf("Dimension = %d", d.Dimension())
	}
	if d.N() != 10 {
		t.Errorf("N = %v", d.N())
	}
	if d.TotalAssignments() != 3+10+8 {
		t.Errorf("TotalAssignments = %v", d.TotalAssignments())
	}
	if !numeric.AlmostEqual(d.RedundancyFactor(), 2.1, 1e-12) {
		t.Errorf("RedundancyFactor = %v", d.RedundancyFactor())
	}
	props := d.Proportions()
	if !numeric.AlmostEqual(numeric.Sum(props), 1, 1e-12) {
		t.Error("proportions must sum to 1")
	}
	if !strings.Contains(d.String(), "dim=4") {
		t.Errorf("String = %q", d.String())
	}
}

func TestSetCountGrowsAndPanics(t *testing.T) {
	var d Distribution
	d.SetCount(5, 7)
	if d.Count(5) != 7 || d.Dimension() != 5 || len(d.Counts) != 5 {
		t.Error("SetCount failed to grow")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetCount(0, ...) should panic")
		}
	}()
	d.SetCount(0, 1)
}

func TestCloneIsDeep(t *testing.T) {
	d := &Distribution{Name: "a", Counts: []float64{1, 2}}
	c := d.Clone()
	c.Counts[0] = 99
	if d.Counts[0] != 1 {
		t.Error("Clone shares backing storage")
	}
}

func TestScaleAndTrim(t *testing.T) {
	d := &Distribution{Counts: []float64{1, 2, 1e-15, 0}}
	d.Scale(10)
	if d.Count(1) != 10 || d.Count(2) != 20 {
		t.Error("Scale wrong")
	}
	d.Trim(1e-9)
	if d.Dimension() != 2 || len(d.Counts) != 2 {
		t.Errorf("Trim left dim=%d len=%d", d.Dimension(), len(d.Counts))
	}
}

func TestEmptyDistribution(t *testing.T) {
	var d Distribution
	if d.Dimension() != 0 || d.N() != 0 || PrecomputeRequired(&d) != 0 {
		t.Error("empty distribution accessors wrong")
	}
}

func TestSimpleRedundancy(t *testing.T) {
	d := Simple(1000)
	if d.N() != 1000 || d.RedundancyFactor() != 2 || d.Dimension() != 2 {
		t.Error("Simple redundancy shape wrong")
	}
	// An adversary holding both copies of a task cheats undetected.
	if p := Detection(d, 2); p != 0 {
		t.Errorf("P_2 for simple redundancy = %v, want 0", p)
	}
	// Holding a single copy, she is always caught (the other copy is honest).
	if p := Detection(d, 1); p != 1 {
		t.Errorf("P_1 for simple redundancy = %v, want 1", p)
	}
}

func TestSingleAndUniform(t *testing.T) {
	s := Single(50)
	if s.RedundancyFactor() != 1 {
		t.Error("Single factor wrong")
	}
	// With no redundancy at all, a 1-tuple owner cheats undetected.
	if Detection(s, 1) != 0 {
		t.Error("P_1 for single-assignment should be 0")
	}
	u := Uniform(30, 3)
	if u.N() != 30 || u.RedundancyFactor() != 3 || u.Dimension() != 3 {
		t.Error("Uniform shape wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Uniform(_, 0) should panic")
		}
	}()
	Uniform(1, 0)
}

func TestDetectionHandMadeExample(t *testing.T) {
	// x1=10, x2=20, x3=5.
	// S_1 = 2·20 + 3·5 = 55;   P_1 = 55/65.
	// S_2 = C(3,2)·5 = 15;     P_2 = 15/35.
	// S_3 = 0, x3 = 5;         P_3 = 0.
	// S_4 = 0, x4 = 0;         P_4 = 1 (vacuous).
	d := &Distribution{Counts: []float64{10, 20, 5}}
	cases := []struct {
		k    int
		want float64
	}{
		{1, 55.0 / 65.0}, {2, 15.0 / 35.0}, {3, 0}, {4, 1},
	}
	for _, c := range cases {
		if got := Detection(d, c.k); !numeric.AlmostEqual(got, c.want, 1e-12) {
			t.Errorf("P_%d = %v, want %v", c.k, got, c.want)
		}
	}
}

func TestDetectionAtReducesToAsymptotic(t *testing.T) {
	d := &Distribution{Counts: []float64{10, 20, 5, 3, 1}}
	for k := 1; k <= 6; k++ {
		a, b := Detection(d, k), DetectionAt(d, k, 0)
		if !numeric.AlmostEqual(a, b, 1e-12) {
			t.Errorf("k=%d: P_k=%v but P_{k,0}=%v", k, a, b)
		}
	}
}

func TestDetectionAtMonotoneInP(t *testing.T) {
	// More control can only help the adversary: P_{k,p} is non-increasing
	// in p for every k.
	d := &Distribution{Counts: []float64{10, 20, 5, 3, 1}}
	for k := 1; k <= 4; k++ {
		prev := math.Inf(1)
		for p := 0.0; p < 0.95; p += 0.05 {
			cur := DetectionAt(d, k, p)
			if cur > prev+1e-12 {
				t.Errorf("P_{%d,p} increased at p=%v: %v > %v", k, p, cur, prev)
			}
			prev = cur
		}
	}
}

func TestDetectionPanics(t *testing.T) {
	d := Simple(10)
	for _, f := range []func(){
		func() { Detection(d, 0) },
		func() { DetectionAt(d, 0, 0.1) },
		func() { DetectionAt(d, 1, -0.1) },
		func() { DetectionAt(d, 1, 1.0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMinDetectionAtExcludesVerifiedTop(t *testing.T) {
	// Simple redundancy: P_2 = 0 but multiplicity-2 is the (verified) top,
	// so the effective minimum is over k=1 only.
	d := Simple(100)
	minP, argK := MinDetectionAt(d, 0, 0)
	if argK != 1 || minP != 1 {
		t.Errorf("min = %v at k=%d; want P_1=1", minP, argK)
	}
	// Degenerate single-class scheme: only the verified top exists.
	u := Uniform(10, 3)
	minP, _ = MinDetectionAt(u, 0.1, 0)
	if minP != 1 {
		t.Errorf("degenerate scheme min = %v, want vacuous 1", minP)
	}
}

func TestDetectionProfileLength(t *testing.T) {
	d := Simple(10)
	prof := DetectionProfile(d, 0.1, 5)
	if len(prof) != 5 {
		t.Fatalf("profile length %d", len(prof))
	}
	if prof[2] != 1 || prof[4] != 1 {
		t.Error("beyond-dimension entries should be vacuous 1")
	}
}

func TestAdversaryOdds(t *testing.T) {
	d, err := Balanced(10_000, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	odds := AdversaryOdds(d, 0.1, 6)
	if len(odds) != 6 {
		t.Fatalf("len = %d", len(odds))
	}
	var totalExpected float64
	for i, o := range odds {
		if o.K != i+1 {
			t.Errorf("K mismatch at %d", i)
		}
		if !numeric.AlmostEqual(o.PHoldAll+o.PDetect, 1, 1e-12) {
			t.Errorf("k=%d: PHoldAll+PDetect = %v", o.K, o.PHoldAll+o.PDetect)
		}
		if o.ExpectedKT < 0 {
			t.Errorf("negative expectation at k=%d", o.K)
		}
		totalExpected += o.ExpectedKT
	}
	// Expected number of tasks of which she holds >= 1 copy is at most N.
	if totalExpected > d.N() {
		t.Errorf("total expected controlled tasks %v > N", totalExpected)
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	// Negative count, wrong mass, and a violated C_1.
	d := &Distribution{Counts: []float64{100, -1, math.NaN()}}
	r := Validate(d, 50, 0.5, 1e-9)
	if r.Valid() {
		t.Fatal("expected violations")
	}
	var negative, nonfinite, mass bool
	for _, v := range r.Violations {
		switch {
		case strings.Contains(v, "negative"):
			negative = true
		case strings.Contains(v, "non-finite"):
			nonfinite = true
		case strings.Contains(v, "task mass"):
			mass = true
		}
	}
	if !negative || !nonfinite || !mass {
		t.Errorf("missing violation classes: %v", r.Violations)
	}
}

func TestValidateAcceptsBalanced(t *testing.T) {
	d, err := Balanced(1e6, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	r := Validate(d, 1e6, 0.75, 1e-9)
	if !r.Valid() {
		t.Fatalf("Balanced flagged invalid: %v", r.Violations)
	}
	if r.Dimension == 0 || r.PrecomputeRequired > 1 {
		t.Errorf("report: dim=%d precompute=%v", r.Dimension, r.PrecomputeRequired)
	}
}

func TestConstructorParameterValidation(t *testing.T) {
	if _, err := Balanced(0, 0.5); err == nil {
		t.Error("Balanced(0, ...) should fail")
	}
	if _, err := Balanced(10, 0); err == nil {
		t.Error("Balanced(_, 0) should fail")
	}
	if _, err := Balanced(10, 1); err == nil {
		t.Error("Balanced(_, 1) should fail")
	}
	if _, err := MinMultiplicity(10, 0.5, 0); err == nil {
		t.Error("MinMultiplicity m=0 should fail")
	}
	if _, err := MinMultiplicity(10, 2, 2); err == nil {
		t.Error("MinMultiplicity ε=2 should fail")
	}
	if _, err := GolleStubblebine(10, 0); err == nil {
		t.Error("GS c=0 should fail")
	}
	if _, err := GolleStubblebine(10, 1); err == nil {
		t.Error("GS c=1 should fail")
	}
	if _, err := GolleStubblebine(-1, 0.5); err == nil {
		t.Error("GS N<0 should fail")
	}
	if _, err := GolleStubblebineForThreshold(10, 0); err == nil {
		t.Error("GS threshold ε=0 should fail")
	}
	if _, err := AssignmentMinimizing(10, 0.5, 1); err == nil {
		t.Error("S_1 should fail")
	}
	if _, err := AssignmentMinimizing(10, 0, 5); err == nil {
		t.Error("S with ε=0 should fail")
	}
	if _, err := BalancedLP(10, 0.5, 1); err == nil {
		t.Error("augmented S_1 should fail")
	}
	if _, err := BalancedLP(10, -1, 5); err == nil {
		t.Error("augmented with ε<0 should fail")
	}
}

package dist

import (
	"math"
	"testing"
	"testing/quick"

	"redundancy/internal/numeric"
	"redundancy/internal/rng"
)

// randomDistribution builds an arbitrary small scheme from fuzz input.
func randomDistribution(raw []uint16) *Distribution {
	d := &Distribution{Name: "fuzz"}
	for i, v := range raw {
		if i >= 12 {
			break
		}
		d.SetCount(i+1, float64(v%2000))
	}
	if d.N() == 0 {
		d.SetCount(1, 1)
	}
	return d
}

// TestDetectionScaleInvariance: P_k depends only on the proportions, not
// the absolute task counts — scaling every class by the same factor leaves
// every detection probability unchanged.
func TestDetectionScaleInvariance(t *testing.T) {
	f := func(raw []uint16, scaleRaw uint8) bool {
		d := randomDistribution(raw)
		scaled := d.Clone()
		scaled.Scale(1 + float64(scaleRaw%97))
		for k := 1; k <= d.Dimension()+1; k++ {
			if !numeric.AlmostEqual(Detection(d, k), Detection(scaled, k), 1e-9) {
				return false
			}
			if !numeric.AlmostEqual(DetectionAt(d, k, 0.13), DetectionAt(scaled, k, 0.13), 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestDetectionAtReducesToAsymptoticProperty: P_{k,0} = P_k on arbitrary
// schemes, not just the canonical ones.
func TestDetectionAtReducesToAsymptoticProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		d := randomDistribution(raw)
		for k := 1; k <= d.Dimension()+1; k++ {
			if !numeric.AlmostEqual(Detection(d, k), DetectionAt(d, k, 0), 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestDetectionMonotoneInPProperty: on arbitrary schemes, more adversary
// control never increases her detection risk: P_{k,p} is non-increasing
// in p.
func TestDetectionMonotoneInPProperty(t *testing.T) {
	f := func(raw []uint16, kRaw uint8) bool {
		d := randomDistribution(raw)
		k := 1 + int(kRaw)%max(1, d.Dimension())
		prev := math.Inf(1)
		for p := 0.0; p < 0.9; p += 0.1 {
			cur := DetectionAt(d, k, p)
			if cur > prev+1e-12 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestDetectionBoundsProperty: probabilities stay in [0, 1] for arbitrary
// schemes and parameters.
func TestDetectionBoundsProperty(t *testing.T) {
	f := func(raw []uint16, kRaw, pRaw uint8) bool {
		d := randomDistribution(raw)
		k := 1 + int(kRaw)%16
		p := float64(pRaw%99) / 100
		a, b := Detection(d, k), DetectionAt(d, k, p)
		return a >= 0 && a <= 1 && b >= 0 && b <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestDetectionMatchesTupleCounting cross-checks the P_k formula against a
// literal enumeration of k-tuples on small integer schemes: P_k is the
// fraction of k-tuples that come from tasks assigned more than k times,
// where a multiplicity-i task contributes C(i,k) k-tuples.
func TestDetectionMatchesTupleCounting(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 200; trial++ {
		d := &Distribution{}
		dim := 2 + r.Intn(6)
		for m := 1; m <= dim; m++ {
			d.SetCount(m, float64(r.Intn(20)))
		}
		if d.N() == 0 {
			continue
		}
		for k := 1; k <= dim; k++ {
			var fromAbove, total float64
			for m := k; m <= dim; m++ {
				tuples := numeric.Binomial(m, k) * d.Count(m)
				total += tuples
				if m > k {
					fromAbove += tuples
				}
			}
			want := 1.0
			if total > 0 {
				want = fromAbove / total
			}
			if got := Detection(d, k); !numeric.AlmostEqual(got, want, 1e-10) {
				t.Fatalf("trial %d k=%d: P_k = %v, tuple count gives %v (counts %v)",
					trial, k, got, want, d.Counts)
			}
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

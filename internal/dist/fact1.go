package dist

import (
	"fmt"

	"redundancy/internal/numeric"
)

// Fact1 reconstructs the closed-form optimal solution to the S_m system
// that §3.2's Fact 1 states (its printed coefficients are corrupted in the
// source text, so we re-derive them): for large enough m the optimum puts
// mass only on multiplicities {1, 2, m}, with constraints C_1 and C_2 tight
// and the rest slack. Solving
//
//	x_1 + x_2 + x_m                   = N        (C_0)
//	ε·x_1 − (1−ε)·(2·x_2 + m·x_m)     = 0        (C_1 tight)
//	ε·x_2 − (1−ε)·C(m,2)·x_m          = 0        (C_2 tight)
//
// gives, with q = (1−ε)/ε and B = C(m,2):
//
//	x_m = N / (1 + q·(m + 2·q·B) + q·B)
//	x_2 = q·B·x_m
//	x_1 = q·(2·x_2 + m·x_m)
//
// The returned scheme equals the LP optimum whenever the LP's support is
// exactly {1, 2, m} (true at ε = 1/2 for m >= 6, per Fact 1); the test
// suite checks the agreement dimension by dimension. ok reports whether
// the construction yields a valid scheme (all C_j satisfied for j < m).
func Fact1(n, epsilon float64, m int) (d *Distribution, ok bool, err error) {
	if err := validateParams(n, epsilon); err != nil {
		return nil, false, err
	}
	if m < 3 {
		return nil, false, fmt.Errorf("dist: Fact 1 form needs dimension >= 3, got %d", m)
	}
	q := (1 - epsilon) / epsilon
	b := numeric.Binomial(m, 2)
	xm := n / (1 + q*(float64(m)+2*q*b) + q*b)
	x2 := q * b * xm
	x1 := q * (2*x2 + float64(m)*xm)

	d = &Distribution{Name: fmt.Sprintf("fact1(ε=%g,m=%d)", epsilon, m)}
	d.SetCount(1, x1)
	d.SetCount(2, x2)
	d.SetCount(m, xm)

	// Valid iff every intermediate constraint C_j (3 <= j < m) holds:
	// those reduce to ε·0 <= (1−ε)·C(m,j)·x_m, trivially true, so the only
	// way the form fails is if the LP prefers a different support; detect
	// that by checking C_1 and C_2 really are satisfiable simultaneously
	// with non-negative mass (they are by construction) and deferring the
	// optimality question to the caller's LP comparison.
	r := Validate(d, n, epsilon, 1e-9)
	return d, r.Valid(), nil
}

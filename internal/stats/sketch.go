package stats

import (
	"fmt"
	"math"
)

// Sketch is a fixed-memory mergeable quantile sketch over positive values:
// log-spaced buckets give a relative-error guarantee on every quantile,
// bucket counts are integers so Merge is exactly associative and
// commutative (bit-identical results regardless of merge order or
// grouping), and the memory footprint is a fixed few tens of kilobytes
// however many observations are added. The Monte-Carlo harnesses rely on
// both properties: trials stream per-task latencies into per-trial
// sketches on many goroutines, and the reduction must produce the same
// p50/p99/p999 whether one worker folded a million samples or sixty-four
// workers folded shards of it.
//
// Buckets subdivide each power-of-two octave into 2^k linear steps, so
// the bucket index is pure float-bit arithmetic — no logarithm on the hot
// path, which matters when the tail engine feeds it one observation per
// completed copy. A value in [2^e·(1+j/m), 2^e·(1+(j+1)/m)) reports the
// bucket midpoint, bounding relative error by 1/(2m) ≤ alpha.
//
// Alongside the bucketed quantiles the sketch tracks exact count, sum
// (Kahan-compensated), min and max, so Mean and Max carry no bucketing
// error. The zero value is not usable; construct with NewSketch.
type Sketch struct {
	alpha float64 // advertised relative accuracy of quantiles
	shift uint    // 52 - k: mantissa bits dropped to get the subbucket
	m     int     // subbuckets per octave (2^k), with 1/(2m) <= alpha

	bins []uint64
	// zeros counts observations at or below zero (quantile value 0); low
	// and high count observations clamped into the extreme buckets.
	zeros     uint64
	low, high uint64

	count    uint64
	sum, c   float64 // Kahan-compensated running sum
	min, max float64
}

// Sketch range: minSketchExp..maxSketchExp are the covered power-of-two
// octaves (~1e-9 .. ~1e12); values outside clamp into the boundary
// buckets (their exact magnitude still reaches min/max/sum), which covers
// virtual-time latencies from nanoseconds to ~1e12 units.
const (
	defaultSketchAlpha = 0.01
	minSketchExp       = -30 // 2^-30 ~ 9.3e-10
	maxSketchExp       = 40  // 2^40  ~ 1.1e12
)

// NewSketch creates a sketch with the default 1% relative accuracy.
func NewSketch() *Sketch { return NewSketchAlpha(defaultSketchAlpha) }

// NewSketchAlpha creates a sketch whose quantiles carry relative error at
// most alpha, for alpha in (0, 0.5). Smaller alpha costs proportionally
// more (fixed) memory.
func NewSketchAlpha(alpha float64) *Sketch {
	if !(alpha > 0 && alpha < 0.5) {
		panic(fmt.Sprintf("stats: sketch alpha must lie in (0,0.5), got %v", alpha))
	}
	// Smallest power-of-two subdivision m with midpoint error
	// 1/(2m) <= alpha.
	k := uint(0)
	for ; k < 32; k++ {
		if 1.0/float64(int(2)<<k) <= alpha { // 2m = 2^(k+1)
			break
		}
	}
	m := 1 << k
	return &Sketch{
		alpha: alpha,
		shift: 52 - k,
		m:     m,
		bins:  make([]uint64, (maxSketchExp-minSketchExp)*m),
		min:   math.Inf(1),
		max:   math.Inf(-1),
	}
}

// Alpha returns the sketch's relative-accuracy parameter.
func (s *Sketch) Alpha() float64 { return s.alpha }

// Add incorporates one observation. Values at or below zero are recorded
// in a dedicated zero bucket (they quantize to 0); values outside the
// representable range clamp into the boundary buckets. NaN and infinities
// are programming errors and panic. Add performs no heap allocation.
func (s *Sketch) Add(x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		panic("stats: sketch observation must be finite")
	}
	s.count++
	if x < s.min {
		s.min = x
	}
	if x > s.max {
		s.max = x
	}
	// Kahan summation keeps the mean exact to the last few ulps over long
	// runs; the order of Adds is fixed by the caller, so the sum is
	// deterministic as well.
	y := x - s.c
	t := s.sum + y
	s.c = (t - s.sum) - y
	s.sum = t

	if x <= 0 {
		s.zeros++
		return
	}
	// The bucket index straight from the float bits: biased exponent
	// octave, top k mantissa bits subbucket. Subnormals have biased
	// exponent 0 and land below the low clamp like any tiny value.
	bits := math.Float64bits(x)
	i := int(bits>>s.shift) - ((1023 + minSketchExp) << (52 - s.shift))
	switch {
	case i < 0:
		s.low++
	case i >= len(s.bins):
		s.high++
	default:
		s.bins[i]++
	}
}

// Count returns the number of observations.
func (s *Sketch) Count() int { return int(s.count) }

// Sum returns the exact (compensated) sum of all observations.
func (s *Sketch) Sum() float64 { return s.sum }

// Mean returns the exact sample mean (0 when empty).
func (s *Sketch) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return s.sum / float64(s.count)
}

// Min returns the smallest observation, exactly (0 when empty).
func (s *Sketch) Min() float64 {
	if s.count == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation, exactly (0 when empty).
func (s *Sketch) Max() float64 {
	if s.count == 0 {
		return 0
	}
	return s.max
}

// value returns the representative value of bucket i — the arithmetic
// midpoint 2^e·(1+(j+1/2)/m), which bounds the relative error of any
// member of the bucket by 1/(2m) ≤ alpha.
func (s *Sketch) value(i int) float64 {
	e := i/s.m + minSketchExp
	j := i % s.m
	return math.Ldexp(1+(float64(j)+0.5)/float64(s.m), e)
}

// Quantile returns an estimate of the q-quantile (q in [0,1]) with
// relative error at most Alpha for in-range observations. The rank
// convention matches sorting the sample and indexing at floor(q·(n-1)),
// so Quantile(0) is the minimum bucket; Quantile(1) is the exact maximum.
// An empty sketch returns 0.
func (s *Sketch) Quantile(q float64) float64 {
	if s.count == 0 {
		return 0
	}
	if math.IsNaN(q) {
		panic("stats: sketch quantile must not be NaN")
	}
	if q < 0 {
		q = 0
	}
	if q >= 1 {
		return s.max // the maximum is tracked exactly
	}
	rank := uint64(q * float64(s.count-1)) // 0-based target rank
	cum := s.zeros
	if rank < cum {
		return 0
	}
	cum += s.low
	if rank < cum {
		return s.value(0) // clamped-low observations report the first bucket
	}
	for i, n := range s.bins {
		cum += n
		if rank < cum {
			return s.value(i)
		}
	}
	// Remaining mass is the clamped-high bucket; its exact max is tracked.
	return s.max
}

// Merge folds o into s, exactly as if every observation of o had been
// Added to s. Bucket counts are integers, so the bucketed state after any
// sequence of Merges is identical regardless of order or grouping; the
// floating-point sum is order-sensitive only in its final ulps.
// Both sketches must share the same alpha.
func (s *Sketch) Merge(o *Sketch) {
	if o.alpha != s.alpha {
		panic("stats: cannot merge sketches with different alpha")
	}
	if o.count == 0 {
		return
	}
	for i, n := range o.bins {
		s.bins[i] += n
	}
	s.zeros += o.zeros
	s.low += o.low
	s.high += o.high
	s.count += o.count
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	y := o.sum - s.c
	t := s.sum + y
	s.c = (t - s.sum) - y
	s.sum = t
}

// Reset empties the sketch for reuse, keeping its configuration and
// allocated buckets.
func (s *Sketch) Reset() {
	clear(s.bins)
	s.zeros, s.low, s.high = 0, 0, 0
	s.count = 0
	s.sum, s.c = 0, 0
	s.min = math.Inf(1)
	s.max = math.Inf(-1)
}

// Clone returns an independent deep copy of the sketch.
func (s *Sketch) Clone() *Sketch {
	c := *s
	c.bins = make([]uint64, len(s.bins))
	copy(c.bins, s.bins)
	return &c
}

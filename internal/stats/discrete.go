package stats

import (
	"math"

	"redundancy/internal/numeric"
)

// BinomialPMF returns P(X = k) for X ~ Binomial(n, p), computed in the log
// domain for stability at large n.
func BinomialPMF(n, k int, p float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	lp := numeric.LogBinomial(n, k) +
		float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p)
	return math.Exp(lp)
}

// BinomialCDF returns P(X <= k) for X ~ Binomial(n, p) by direct summation.
func BinomialCDF(n, k int, p float64) float64 {
	if k < 0 {
		return 0
	}
	if k >= n {
		return 1
	}
	var sum numeric.KahanSum
	for i := 0; i <= k; i++ {
		sum.Add(BinomialPMF(n, i, p))
	}
	return numeric.Clamp(sum.Value(), 0, 1)
}

// PoissonPMF returns P(X = k) for X ~ Poisson(λ).
func PoissonPMF(lambda float64, k int) float64 {
	if k < 0 || lambda < 0 {
		return 0
	}
	if lambda == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	return math.Exp(-lambda + numeric.PoissonTermLog(lambda, k))
}

// ZeroTruncPoisson is the zero-truncated Poisson distribution with rate γ:
// P(X = i) = γ^i / (i!·(e^γ − 1)) for i >= 1. Theorem 1 of the paper
// observes that the Balanced distribution is exactly N times this law with
// γ = ln(1/(1−ε)).
type ZeroTruncPoisson struct {
	Gamma float64
}

// PMF returns P(X = i); zero for i < 1.
func (z ZeroTruncPoisson) PMF(i int) float64 {
	if i < 1 || z.Gamma <= 0 {
		return 0
	}
	return math.Exp(numeric.PoissonTermLog(z.Gamma, i)) / math.Expm1(z.Gamma)
}

// Mean returns E[X] = γ·e^γ / (e^γ − 1).
func (z ZeroTruncPoisson) Mean() float64 {
	return z.Gamma * math.Exp(z.Gamma) / math.Expm1(z.Gamma)
}

// TailProb returns P(X >= m).
func (z ZeroTruncPoisson) TailProb(m int) float64 {
	if m <= 1 {
		return 1
	}
	return math.Exp(numeric.PoissonTailLog(z.Gamma, m)) / math.Expm1(z.Gamma)
}

// Histogram counts observations into fixed-width bins over [Lo, Hi); values
// outside the range go to dedicated underflow/overflow counters.
type Histogram struct {
	Lo, Hi    float64
	Bins      []int
	Underflow int
	Overflow  int
	width     float64
}

// NewHistogram creates a histogram with n bins over [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if !(hi > lo) || n <= 0 {
		panic("stats: invalid histogram range")
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int, n), width: (hi - lo) / float64(n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Underflow++
	case x >= h.Hi:
		h.Overflow++
	default:
		i := int((x - h.Lo) / h.width)
		if i >= len(h.Bins) { // guard against float rounding at the edge
			i = len(h.Bins) - 1
		}
		h.Bins[i]++
	}
}

// Total returns the number of observations recorded, including out-of-range.
func (h *Histogram) Total() int {
	t := h.Underflow + h.Overflow
	for _, c := range h.Bins {
		t += c
	}
	return t
}

// ChiSquareGOF performs a chi-square goodness-of-fit test of observed counts
// against expected counts (which must be positive and of equal length). It
// returns the test statistic and p-value with len(observed)−1−ddof degrees
// of freedom.
func ChiSquareGOF(observed []int, expected []float64, ddof int) (stat, pvalue float64) {
	if len(observed) != len(expected) || len(observed) == 0 {
		panic("stats: ChiSquareGOF length mismatch")
	}
	df := len(observed) - 1 - ddof
	if df < 1 {
		panic("stats: ChiSquareGOF with non-positive degrees of freedom")
	}
	var sum numeric.KahanSum
	for i, o := range observed {
		e := expected[i]
		if e <= 0 {
			panic("stats: ChiSquareGOF requires positive expected counts")
		}
		d := float64(o) - e
		sum.Add(d * d / e)
	}
	stat = sum.Value()
	return stat, ChiSquareSurvival(stat, df)
}

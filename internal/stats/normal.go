package stats

import "math"

// NormalCDF returns Φ(x), the standard normal cumulative distribution
// function, via the complementary error function.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalQuantile returns Φ⁻¹(p) for p in (0, 1) using Acklam's rational
// approximation refined by one Halley step, giving ~1e-15 relative accuracy
// across the whole open interval. It panics for p outside (0, 1).
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("stats: NormalQuantile requires 0 < p < 1")
	}
	// Coefficients for Acklam's approximation.
	a := [...]float64{
		-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00,
	}
	b := [...]float64{
		-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01,
	}
	c := [...]float64{
		-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00,
	}
	d := [...]float64{
		7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00,
	}
	const plow, phigh = 0.02425, 1 - 0.02425

	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= phigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step against the exact CDF.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x -= u / (1 + x*u/2)
	return x
}

// regularizedGammaP returns P(a, x), the lower regularized incomplete gamma
// function, using the series expansion for x < a+1 and the continued
// fraction for larger x (Numerical-Recipes-style split).
func regularizedGammaP(a, x float64) float64 {
	switch {
	case x < 0 || a <= 0:
		panic("stats: invalid arguments to regularizedGammaP")
	case x == 0:
		return 0
	case x < a+1:
		return gammaPSeries(a, x)
	default:
		return 1 - gammaQContinuedFraction(a, x)
	}
}

func gammaPSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for n := 0; n < 500; n++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-16 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaQContinuedFraction(a, x float64) float64 {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-16 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// ChiSquareCDF returns P(X <= x) for a chi-square random variable with k
// degrees of freedom.
func ChiSquareCDF(x float64, k int) float64 {
	if k <= 0 {
		panic("stats: chi-square needs positive degrees of freedom")
	}
	if x <= 0 {
		return 0
	}
	return regularizedGammaP(float64(k)/2, x/2)
}

// ChiSquareSurvival returns P(X > x), the p-value of a chi-square statistic
// with k degrees of freedom.
func ChiSquareSurvival(x float64, k int) float64 {
	return 1 - ChiSquareCDF(x, k)
}

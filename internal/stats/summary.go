// Package stats provides the statistics substrate for the Monte-Carlo
// experiments: streaming summary statistics, confidence intervals, normal
// and chi-square distribution functions, discrete distributions (binomial,
// Poisson and the zero-truncated Poisson underlying the Balanced
// distribution), histograms, and a chi-square goodness-of-fit test.
package stats

import (
	"fmt"
	"math"
)

// Summary accumulates streaming sample moments using Welford's algorithm,
// which is numerically stable for long runs. The zero value is an empty
// summary ready for use.
type Summary struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates observation x.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// AddN incorporates every value of xs.
func (s *Summary) AddN(xs []float64) {
	for _, x := range xs {
		s.Add(x)
	}
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 for an empty summary).
func (s *Summary) Mean() float64 { return s.mean }

// Variance returns the unbiased sample variance (0 with fewer than two
// observations).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// StdErr returns the standard error of the mean.
func (s *Summary) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// Min returns the smallest observation (0 if empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 if empty).
func (s *Summary) Max() float64 { return s.max }

// CI returns a normal-approximation confidence interval for the mean at the
// given confidence level (e.g. 0.95). With fewer than two observations the
// interval collapses to the mean.
func (s *Summary) CI(level float64) (lo, hi float64) {
	if s.n < 2 {
		return s.mean, s.mean
	}
	z := NormalQuantile(0.5 + level/2)
	half := z * s.StdErr()
	return s.mean - half, s.mean + half
}

// String renders a compact human-readable summary.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.6g sd=%.4g min=%.6g max=%.6g",
		s.n, s.Mean(), s.StdDev(), s.min, s.max)
}

// Merge combines another summary into s (Chan et al. parallel update),
// as if every observation of o had been Added to s.
func (s *Summary) Merge(o *Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	n := s.n + o.n
	delta := o.mean - s.mean
	mean := s.mean + delta*float64(o.n)/float64(n)
	m2 := s.m2 + o.m2 + delta*delta*float64(s.n)*float64(o.n)/float64(n)
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n, s.mean, s.m2 = n, mean, m2
}

// Proportion summarizes a Bernoulli sample: k successes out of n trials.
type Proportion struct {
	Successes int
	Trials    int
}

// Estimate returns the sample proportion (0 when there are no trials).
func (p Proportion) Estimate() float64 {
	if p.Trials == 0 {
		return 0
	}
	return float64(p.Successes) / float64(p.Trials)
}

// Wilson returns the Wilson score interval at the given confidence level,
// which behaves sensibly even for proportions near 0 or 1 (exactly the
// regime of high detection probabilities).
func (p Proportion) Wilson(level float64) (lo, hi float64) {
	if p.Trials == 0 {
		return 0, 1
	}
	z := NormalQuantile(0.5 + level/2)
	n := float64(p.Trials)
	phat := p.Estimate()
	z2 := z * z
	denom := 1 + z2/n
	center := (phat + z2/(2*n)) / denom
	half := z / denom * math.Sqrt(phat*(1-phat)/n+z2/(4*n*n))
	return math.Max(0, center-half), math.Min(1, center+half)
}

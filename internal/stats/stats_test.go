package stats

import (
	"math"
	"testing"
	"testing/quick"

	"redundancy/internal/numeric"
	"redundancy/internal/rng"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	s.AddN([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if !numeric.AlmostEqual(s.Mean(), 5, 1e-12) {
		t.Errorf("mean = %v", s.Mean())
	}
	// Population variance is 4; sample variance is 32/7.
	if !numeric.AlmostEqual(s.Variance(), 32.0/7.0, 1e-12) {
		t.Errorf("variance = %v", s.Variance())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestSummaryEmptyAndSingle(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 || s.StdErr() != 0 {
		t.Error("empty summary should be all zeros")
	}
	s.Add(3)
	if s.Variance() != 0 {
		t.Error("single observation has zero variance")
	}
	lo, hi := s.CI(0.95)
	if lo != 3 || hi != 3 {
		t.Error("CI of single observation should collapse")
	}
}

func TestSummaryMergeMatchesSequential(t *testing.T) {
	f := func(raw []float64, split uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				raw[i] = float64(i)
			}
			// Keep magnitudes sane so tolerance comparisons are stable.
			raw[i] = math.Mod(raw[i], 1e6)
		}
		cut := int(split) % (len(raw) + 1)
		var whole, a, b Summary
		whole.AddN(raw)
		a.AddN(raw[:cut])
		b.AddN(raw[cut:])
		a.Merge(&b)
		return a.N() == whole.N() &&
			numeric.AlmostEqual(a.Mean(), whole.Mean(), 1e-9) &&
			numeric.AlmostEqual(a.Variance(), whole.Variance(), 1e-7) &&
			a.Min() == whole.Min() && a.Max() == whole.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummaryCICoverage(t *testing.T) {
	// The 95% normal CI for the mean of uniforms should cover 0.5 about
	// 95% of the time.
	r := rng.New(1)
	covered := 0
	const reps = 400
	for rep := 0; rep < reps; rep++ {
		var s Summary
		for i := 0; i < 200; i++ {
			s.Add(r.Float64())
		}
		lo, hi := s.CI(0.95)
		if lo <= 0.5 && 0.5 <= hi {
			covered++
		}
	}
	rate := float64(covered) / reps
	if rate < 0.90 || rate > 0.99 {
		t.Errorf("CI coverage = %v, want ~0.95", rate)
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.025, -1.959963984540054},
		{0.84134474606854293, 1},
		{1e-10, -6.361340902404056},
	}
	for _, c := range cases {
		got := NormalQuantile(c.p)
		if math.Abs(got-c.want) > 1e-8 {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	for p := 0.001; p < 1; p += 0.013 {
		if got := NormalCDF(NormalQuantile(p)); math.Abs(got-p) > 1e-12 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestNormalQuantilePanics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NormalQuantile(%v) should panic", p)
				}
			}()
			NormalQuantile(p)
		}()
	}
}

func TestChiSquareCDFKnownValues(t *testing.T) {
	// Chi-square with 2 dof is Exponential(1/2): CDF(x) = 1 - e^{-x/2}.
	for _, x := range []float64{0.1, 1, 2, 5, 10} {
		want := 1 - math.Exp(-x/2)
		if got := ChiSquareCDF(x, 2); math.Abs(got-want) > 1e-12 {
			t.Errorf("ChiSquareCDF(%v, 2) = %v, want %v", x, got, want)
		}
	}
	// Median of chi-square with 1 dof is ~0.4549.
	if got := ChiSquareCDF(0.454936, 1); math.Abs(got-0.5) > 1e-4 {
		t.Errorf("chi2(1) median check: %v", got)
	}
	if ChiSquareCDF(-1, 3) != 0 {
		t.Error("negative x should give 0")
	}
}

func TestChiSquareSurvivalComplement(t *testing.T) {
	for k := 1; k <= 20; k += 3 {
		for _, x := range []float64{0.5, 2, 8, 30} {
			s := ChiSquareCDF(x, k) + ChiSquareSurvival(x, k)
			if math.Abs(s-1) > 1e-12 {
				t.Errorf("CDF+survival = %v at x=%v k=%d", s, x, k)
			}
		}
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	for _, n := range []int{1, 5, 30, 200} {
		for _, p := range []float64{0.01, 0.3, 0.5, 0.97} {
			var sum numeric.KahanSum
			for k := 0; k <= n; k++ {
				sum.Add(BinomialPMF(n, k, p))
			}
			if !numeric.AlmostEqual(sum.Value(), 1, 1e-10) {
				t.Errorf("PMF(n=%d,p=%v) sums to %v", n, p, sum.Value())
			}
		}
	}
}

func TestBinomialPMFEdges(t *testing.T) {
	if BinomialPMF(10, -1, 0.5) != 0 || BinomialPMF(10, 11, 0.5) != 0 {
		t.Error("out-of-range k should be 0")
	}
	if BinomialPMF(10, 0, 0) != 1 || BinomialPMF(10, 10, 1) != 1 {
		t.Error("degenerate p should concentrate mass")
	}
}

func TestBinomialCDF(t *testing.T) {
	if BinomialCDF(10, 10, 0.3) != 1 || BinomialCDF(10, -1, 0.3) != 0 {
		t.Error("CDF edge values wrong")
	}
	// Binomial(4, 1/2): P(X<=2) = (1+4+6)/16.
	if got := BinomialCDF(4, 2, 0.5); !numeric.AlmostEqual(got, 11.0/16.0, 1e-12) {
		t.Errorf("BinomialCDF(4,2,.5) = %v", got)
	}
}

func TestPoissonPMF(t *testing.T) {
	// Poisson(1): P(0)=P(1)=e^{-1}.
	e := math.Exp(-1)
	if !numeric.AlmostEqual(PoissonPMF(1, 0), e, 1e-12) ||
		!numeric.AlmostEqual(PoissonPMF(1, 1), e, 1e-12) {
		t.Error("Poisson(1) pmf wrong")
	}
	if PoissonPMF(1, -1) != 0 {
		t.Error("negative k should be 0")
	}
	if PoissonPMF(0, 0) != 1 {
		t.Error("Poisson(0) is a point mass at 0")
	}
}

func TestZeroTruncPoisson(t *testing.T) {
	z := ZeroTruncPoisson{Gamma: math.Ln2}
	// PMF sums to 1.
	var sum numeric.KahanSum
	for i := 1; i < 60; i++ {
		sum.Add(z.PMF(i))
	}
	if !numeric.AlmostEqual(sum.Value(), 1, 1e-12) {
		t.Errorf("ZTP pmf sums to %v", sum.Value())
	}
	if z.PMF(0) != 0 {
		t.Error("ZTP must put no mass at 0")
	}
	// Mean: γ e^γ/(e^γ-1) = ln2·2/1.
	if !numeric.AlmostEqual(z.Mean(), 2*math.Ln2, 1e-12) {
		t.Errorf("ZTP mean = %v", z.Mean())
	}
	// Tail consistency with PMF.
	for m := 1; m < 10; m++ {
		var tail numeric.KahanSum
		for i := m; i < 80; i++ {
			tail.Add(z.PMF(i))
		}
		if !numeric.AlmostEqual(z.TailProb(m), tail.Value(), 1e-10) {
			t.Errorf("TailProb(%d) = %v, pmf sum = %v", m, z.TailProb(m), tail.Value())
		}
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	for _, x := range []float64{-0.1, 0, 0.1, 0.3, 0.6, 0.9, 1.0, 5} {
		h.Add(x)
	}
	if h.Underflow != 1 || h.Overflow != 2 {
		t.Errorf("under/over = %d/%d", h.Underflow, h.Overflow)
	}
	if h.Total() != 8 {
		t.Errorf("total = %d", h.Total())
	}
	wantBins := []int{2, 1, 1, 1}
	for i, w := range wantBins {
		if h.Bins[i] != w {
			t.Errorf("bin %d = %d, want %d", i, h.Bins[i], w)
		}
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid range should panic")
		}
	}()
	NewHistogram(1, 0, 3)
}

func TestChiSquareGOFUniform(t *testing.T) {
	// Uniform draws binned uniformly should not be rejected.
	r := rng.New(12)
	const bins, n = 10, 50_000
	obs := make([]int, bins)
	for i := 0; i < n; i++ {
		obs[r.Intn(bins)]++
	}
	exp := make([]float64, bins)
	for i := range exp {
		exp[i] = float64(n) / bins
	}
	stat, p := ChiSquareGOF(obs, exp, 0)
	if p < 0.001 {
		t.Errorf("uniform sample rejected: stat=%v p=%v", stat, p)
	}
	// A grossly skewed sample should be rejected.
	obs[0] += 2000
	obs[1] -= 2000
	_, p = ChiSquareGOF(obs, exp, 0)
	if p > 1e-6 {
		t.Errorf("skewed sample not rejected: p=%v", p)
	}
}

func TestWilsonInterval(t *testing.T) {
	p := Proportion{Successes: 50, Trials: 100}
	lo, hi := p.Wilson(0.95)
	if !(lo < 0.5 && 0.5 < hi) {
		t.Errorf("Wilson interval [%v,%v] should contain 0.5", lo, hi)
	}
	if lo < 0.40 || hi > 0.61 {
		t.Errorf("Wilson interval [%v,%v] too wide", lo, hi)
	}
	// Degenerate cases stay within [0,1].
	p = Proportion{Successes: 0, Trials: 10}
	lo, hi = p.Wilson(0.95)
	if lo > 1e-12 || hi <= 0 || hi >= 1 {
		t.Errorf("zero-success interval [%v,%v]", lo, hi)
	}
	p = Proportion{}
	lo, hi = p.Wilson(0.95)
	if lo != 0 || hi != 1 {
		t.Errorf("no-trials interval should be [0,1], got [%v,%v]", lo, hi)
	}
	if p.Estimate() != 0 {
		t.Error("no-trials estimate should be 0")
	}
}

func TestRegularizedGammaEdges(t *testing.T) {
	if got := regularizedGammaP(3, 0); got != 0 {
		t.Errorf("P(3,0) = %v", got)
	}
	// Large-x branch (continued fraction): P(1, x) = 1 - e^{-x}.
	for _, x := range []float64{5, 20, 100} {
		want := 1 - math.Exp(-x)
		if got := regularizedGammaP(1, x); math.Abs(got-want) > 1e-12 {
			t.Errorf("P(1,%v) = %v, want %v", x, got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid args should panic")
		}
	}()
	regularizedGammaP(-1, 2)
}

func TestChiSquarePanics(t *testing.T) {
	for _, f := range []func(){
		func() { ChiSquareCDF(1, 0) },
		func() { ChiSquareGOF([]int{1}, []float64{1, 2}, 0) },
		func() { ChiSquareGOF([]int{1, 2}, []float64{1, 2}, 5) },
		func() { ChiSquareGOF([]int{1, 2, 3}, []float64{1, 0, 1}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

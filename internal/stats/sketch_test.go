package stats

import (
	"math"
	"sort"
	"testing"

	"redundancy/internal/rng"
)

// exactQuantile returns sorted[floor(q*(n-1))], the rank convention the
// sketch documents.
func exactQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[int(q*float64(len(sorted)-1))]
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// TestSketchQuantileErrorBound is the core property test: against several
// sample shapes (uniform, heavy-tailed, lognormal, bimodal, constant) the
// sketch's quantile estimates must stay within the advertised relative
// error of the exact sorted-sample quantiles at every probed q.
func TestSketchQuantileErrorBound(t *testing.T) {
	r := rng.New(0xABCD)
	shapes := map[string]func() float64{
		"uniform":   func() float64 { return 1 + 99*r.Float64() },
		"pareto":    func() float64 { return r.Pareto(1.0, 1.1) },
		"lognormal": func() float64 { return r.LogNormal(2.0, 1.5) },
		"bimodal": func() float64 {
			if r.Bool() {
				return 1 + r.Float64()
			}
			return 1000 + 10*r.Float64()
		},
		"constant": func() float64 { return 42.5 },
	}
	qs := []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1}
	for name, gen := range shapes {
		t.Run(name, func(t *testing.T) {
			s := NewSketch()
			sample := make([]float64, 50000)
			for i := range sample {
				sample[i] = gen()
				s.Add(sample[i])
			}
			sort.Float64s(sample)
			for _, q := range qs {
				got := s.Quantile(q)
				want := exactQuantile(sample, q)
				// alpha plus a hair of float slack for the bucket-boundary
				// midpoint rounding.
				if e := relErr(got, want); e > s.Alpha()*1.0001 {
					t.Errorf("q=%v: got %v want %v (rel err %.4f > alpha %.4f)", q, got, want, e, s.Alpha())
				}
			}
			if got := s.Max(); got != sample[len(sample)-1] {
				t.Errorf("Max: got %v want exact %v", got, sample[len(sample)-1])
			}
			if got := s.Min(); got != sample[0] {
				t.Errorf("Min: got %v want exact %v", got, sample[0])
			}
			var sum float64
			for _, x := range sample {
				sum += x
			}
			if e := relErr(s.Mean(), sum/float64(len(sample))); e > 1e-12 {
				t.Errorf("Mean: got %v want %v", s.Mean(), sum/float64(len(sample)))
			}
			if s.Count() != len(sample) {
				t.Errorf("Count: got %d want %d", s.Count(), len(sample))
			}
		})
	}
}

// TestSketchMergeCommutesExactly checks the stronger property the parallel
// sweeps rely on: merging shard sketches yields bit-identical quantiles
// regardless of merge order or grouping, and identical to a sketch that
// saw every observation directly.
func TestSketchMergeCommutesExactly(t *testing.T) {
	r := rng.New(7)
	const shards = 7
	parts := make([]*Sketch, shards)
	direct := NewSketch()
	for i := range parts {
		parts[i] = NewSketch()
	}
	for i := 0; i < 30000; i++ {
		x := r.LogNormal(1, 2)
		parts[i%shards].Add(x)
		direct.Add(x)
	}

	ab := NewSketch()
	for i := 0; i < shards; i++ {
		ab.Merge(parts[i])
	}
	ba := NewSketch()
	for i := shards - 1; i >= 0; i-- {
		ba.Merge(parts[i])
	}
	// Nested grouping: merge pairs first, then fold.
	nested := NewSketch()
	for i := 0; i+1 < shards; i += 2 {
		pair := parts[i].Clone()
		pair.Merge(parts[i+1])
		nested.Merge(pair)
	}
	nested.Merge(parts[shards-1])

	qs := []float64{0, 0.1, 0.5, 0.9, 0.99, 0.999, 1}
	for _, q := range qs {
		a, b, n, d := ab.Quantile(q), ba.Quantile(q), nested.Quantile(q), direct.Quantile(q)
		if a != b || a != n || a != d {
			t.Errorf("q=%v: merge order changed the quantile: A→B=%v B→A=%v nested=%v direct=%v", q, a, b, n, d)
		}
	}
	if ab.Count() != direct.Count() || ba.Count() != direct.Count() {
		t.Errorf("merged counts diverge: %d %d vs %d", ab.Count(), ba.Count(), direct.Count())
	}
	if ab.Max() != direct.Max() || ab.Min() != direct.Min() {
		t.Errorf("merged min/max diverge")
	}
	// The compensated sum is order-sensitive only in its final ulps.
	if e := relErr(ab.Mean(), direct.Mean()); e > 1e-12 {
		t.Errorf("merged mean diverges: %v vs %v", ab.Mean(), direct.Mean())
	}
}

func TestSketchEdgeCases(t *testing.T) {
	s := NewSketch()
	if s.Quantile(0.5) != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Count() != 0 {
		t.Fatalf("empty sketch must report zeros")
	}

	// Zero and negative observations land in the zero bucket.
	s.Add(0)
	s.Add(-3)
	s.Add(10)
	if got := s.Quantile(0); got != 0 {
		t.Errorf("q0 with zero bucket: got %v", got)
	}
	if got := s.Min(); got != -3 {
		t.Errorf("Min with negatives: got %v", got)
	}
	if got := s.Quantile(1); got != 10 {
		t.Errorf("q1: got %v want exact max", got)
	}

	// Out-of-range values clamp but keep exact min/max.
	s2 := NewSketch()
	s2.Add(1e-15)
	s2.Add(1e15)
	if got := s2.Max(); got != 1e15 {
		t.Errorf("clamped max: got %v", got)
	}
	if got := s2.Quantile(1); got != 1e15 {
		t.Errorf("q1 over clamped-high: got %v", got)
	}
	if got := s2.Quantile(0); got <= 0 || got > math.Ldexp(1, minSketchExp+1) {
		t.Errorf("q0 over clamped-low: got %v", got)
	}

	// Reset returns the sketch to empty.
	s2.Reset()
	if s2.Count() != 0 || s2.Quantile(0.5) != 0 {
		t.Errorf("Reset did not empty the sketch")
	}

	// Quantile args clamp.
	s.Add(20)
	if s.Quantile(-1) != s.Quantile(0) || s.Quantile(2) != s.Quantile(1) {
		t.Errorf("out-of-range q must clamp")
	}

	// Merging an empty sketch is a no-op.
	before := s.Quantile(0.5)
	s.Merge(NewSketch())
	if s.Quantile(0.5) != before {
		t.Errorf("merging empty changed state")
	}

	// Clone is independent.
	c := s.Clone()
	c.Add(1e6)
	if c.Count() == s.Count() {
		t.Errorf("Clone shares state")
	}
}

func TestSketchPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"nan":         func() { NewSketch().Add(math.NaN()) },
		"inf":         func() { NewSketch().Add(math.Inf(1)) },
		"alpha-zero":  func() { NewSketchAlpha(0) },
		"alpha-big":   func() { NewSketchAlpha(0.5) },
		"alpha-nan":   func() { NewSketchAlpha(math.NaN()) },
		"nan-q":       func() { s := NewSketch(); s.Add(1); s.Quantile(math.NaN()) },
		"mixed-alpha": func() { a := NewSketchAlpha(0.01); b := NewSketchAlpha(0.02); b.Add(1); a.Merge(b) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic")
				}
			}()
			fn()
		})
	}
}

// TestSketchAddAllocFree guards the hot path: Add must not allocate.
func TestSketchAddAllocFree(t *testing.T) {
	s := NewSketch()
	r := rng.New(3)
	allocs := testing.AllocsPerRun(1000, func() {
		s.Add(1 + 100*r.Float64())
	})
	if allocs != 0 {
		t.Fatalf("Sketch.Add allocates %.1f allocs/op, want 0", allocs)
	}
}

func BenchmarkSketchAdd(b *testing.B) {
	b.ReportAllocs()
	s := NewSketch()
	r := rng.New(3)
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = 1 + 1000*r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(xs[i&4095])
	}
}

package adapt

import (
	"math"
	"sort"

	"redundancy/internal/dist"
	"redundancy/internal/plan"
)

// TaskState is one plan task as the controller sees it mid-run.
type TaskState struct {
	// ID is the task's plan ID.
	ID int
	// Copies is the task's current multiplicity (after prior revisions).
	Copies int
	// Ringer marks supervisor-precomputed tasks.
	Ringer bool
	// Eligible marks tasks no copy of which has ever been issued to a
	// worker. Only eligible tasks may be promoted: raising the expected
	// copy count of a task with assignments in flight would either break
	// lease exclusivity (reissuing a live copy) or change the tuple a
	// half-submitted result set is verified against. Ineligible classes
	// are instead reinforced by minting fresh ringers.
	Eligible bool
}

// Safety caps on a single revision. maxMintsPerRevision bounds the ringer
// tasks (each supervisor-computed, hence expensive) one revision may mint;
// if the cap is hit the controller returns satisfied=false rather than an
// absurd plan — the operator's p guess was wrong by far more than a
// control loop should paper over.
const (
	maxMintsPerRevision = 4096
	maxReplanPasses     = 8
	replanTol           = 1e-9
	// maxDefendableP caps the adversary share the controller plans
	// against. Above it the (1−p)^{i−k} attenuation makes every
	// denominator vanish and no finite revision helps.
	maxDefendableP = 0.9
)

// replanner carries the mutable sweep state of one Replan call.
type replanner struct {
	eps, q   float64 // q = 1 − pUpper
	pUpper   float64
	reg      *dist.Distribution
	ring     *dist.Distribution
	eligible map[int][]int // multiplicity -> IDs of promotable tasks
	promoted map[int]int   // task ID -> index into rev.Promotions
	origFrom map[int]int   // task ID -> multiplicity before this revision
	nextID   int
	rev      plan.Revision
	// promoteCeil bounds how high promotions may climb. Without it a
	// deficient singleton class ratchets its own task upward forever (each
	// promotion leaves the task eligible in the next class, which is then
	// deficient too); past the ceiling the deficit is fixed by minting,
	// which terminates.
	promoteCeil int
}

// Replan decides whether the deployment defends the detection target
// against an adversary holding share pUpper of assignments, and if not,
// computes a revision that restores it.
//
// The controller sweeps multiplicity classes from k = 1 upward. For every
// class with regular task mass it checks P_{k,pUpper} (the split form of
// Proposition 2 — ringer mass strengthens denominators but can never be an
// escape). While a class falls short it first promotes eligible class-k
// tasks to k+1 — each promotion removes escape mass and adds covering
// mass — and once the class has no promotable tasks left it mints ringers
// at k+1, whose count follows analytically from the required denominator
// x_k/(1−ε). Promotions can shift a deficit to neighbouring classes
// (moving mass from k to k+1 shrinks class j<k's covering sum whenever
// (k+1)/(k+1−j)·(1−p) < 1), so the sweep runs multiple passes; the final
// pass is mint-only, which monotonically helps every class and therefore
// converges.
//
// The returned revision is empty when every class already meets eps.
// satisfied reports whether the revised deployment meets eps everywhere;
// it is false only if a safety cap was hit.
func Replan(tasks []TaskState, nextID int, eps, pUpper float64) (rev plan.Revision, satisfied bool) {
	if !(eps > 0 && eps < 1) {
		return plan.Revision{}, false
	}
	if pUpper < 0 {
		pUpper = 0
	}
	if pUpper > maxDefendableP {
		pUpper = maxDefendableP
	}
	r := &replanner{
		eps:      eps,
		pUpper:   pUpper,
		q:        1 - pUpper,
		reg:      &dist.Distribution{Name: "replan-regular"},
		ring:     &dist.Distribution{Name: "replan-ringers"},
		eligible: make(map[int][]int),
		promoted: make(map[int]int),
		origFrom: make(map[int]int),
		nextID:   nextID,
	}
	for _, t := range tasks {
		if t.Copies < 1 {
			continue
		}
		if t.Ringer {
			r.ring.SetCount(t.Copies, r.ring.Count(t.Copies)+1)
			continue
		}
		r.reg.SetCount(t.Copies, r.reg.Count(t.Copies)+1)
		if t.Eligible {
			r.eligible[t.Copies] = append(r.eligible[t.Copies], t.ID)
		}
	}
	// Deterministic promotion order regardless of input order.
	for _, ids := range r.eligible {
		sort.Ints(ids)
	}
	r.promoteCeil = r.maxClass() + maxReplanPasses

	for pass := 0; pass < maxReplanPasses; pass++ {
		mintOnly := pass == maxReplanPasses-1
		if !r.sweep(mintOnly) {
			break
		}
	}
	return r.rev, r.allSatisfied()
}

func (r *replanner) detection(k int) float64 {
	return dist.DetectionAtSplit(r.reg, r.ring, k, r.pUpper)
}

func (r *replanner) maxClass() int {
	if len(r.reg.Counts) > len(r.ring.Counts) {
		return len(r.reg.Counts)
	}
	return len(r.ring.Counts)
}

// sweep runs one ascending pass over the classes, reporting whether it
// changed anything.
func (r *replanner) sweep(mintOnly bool) bool {
	changed := false
	for k := 1; k <= r.maxClass(); k++ { // maxClass grows as promotions land
		if r.reg.Count(k) == 0 {
			continue // ringer-only or empty class: nothing to escape on
		}
		if !mintOnly && k < r.promoteCeil {
			for r.detection(k) < r.eps-replanTol && len(r.eligible[k]) > 0 {
				r.promote(k)
				changed = true
			}
		}
		if r.detection(k) < r.eps-replanTol {
			if !r.mintFor(k) {
				return false // cap hit; stop burning passes
			}
			changed = true
		}
	}
	return changed
}

// promote raises the first eligible class-k task to k+1. A task promoted
// repeatedly within one revision collapses into a single Promotion record
// (From = its pre-revision multiplicity), since plan revisions apply one
// step per task.
func (r *replanner) promote(k int) {
	ids := r.eligible[k]
	id := ids[0]
	r.eligible[k] = ids[1:]
	r.reg.SetCount(k, r.reg.Count(k)-1)
	r.reg.SetCount(k+1, r.reg.Count(k+1)+1)
	// Promoted tasks stay unissued, hence still promotable at k+1.
	r.eligible[k+1] = insertSorted(r.eligible[k+1], id)
	if i, ok := r.promoted[id]; ok {
		r.rev.Promotions[i].To = k + 1
		return
	}
	r.origFrom[id] = k
	r.promoted[id] = len(r.rev.Promotions)
	r.rev.Promotions = append(r.rev.Promotions, plan.Promotion{TaskID: id, From: k, To: k + 1})
}

// mintFor mints ringers at k+1 until class k meets eps, or the revision's
// mint cap is hit (returns false). The count follows analytically: class k
// needs covering sum D ≥ x_k/(1−ε), and each ringer at k+1 contributes
// C(k+1,k)·(1−p) = (k+1)·(1−p) to it.
func (r *replanner) mintFor(k int) bool {
	xk := r.reg.Count(k)
	need := xk / (1 - r.eps)
	// Current covering sum, recovered from the detection value:
	// P = 1 − x_k/D  ⇒  D = x_k/(1−P).
	cur := xk / (1 - r.detection(k))
	per := float64(k+1) * r.q
	m := int(math.Ceil((need - cur) / per))
	if m < 1 {
		m = 1
	}
	for m > 0 || r.detection(k) < r.eps-replanTol {
		if len(r.rev.Minted) >= maxMintsPerRevision {
			return false
		}
		r.rev.Minted = append(r.rev.Minted, plan.Mint{TaskID: r.nextID, Copies: k + 1})
		r.nextID++
		r.ring.SetCount(k+1, r.ring.Count(k+1)+1)
		if m > 0 {
			m--
		}
	}
	return true
}

func (r *replanner) allSatisfied() bool {
	for k := 1; k <= r.maxClass(); k++ {
		if r.reg.Count(k) == 0 {
			continue
		}
		if r.detection(k) < r.eps-replanTol {
			return false
		}
	}
	return true
}

func insertSorted(ids []int, id int) []int {
	i := sort.SearchInts(ids, id)
	ids = append(ids, 0)
	copy(ids[i+1:], ids[i:])
	ids[i] = id
	return ids
}

package adapt

import (
	"math/rand"
	"testing"

	"redundancy/internal/dist"
	"redundancy/internal/plan"
)

// states converts a plan's task list into controller input, marking tasks
// eligible according to issued.
func states(p *plan.Plan, issued func(id int) bool) []TaskState {
	var out []TaskState
	for _, t := range p.Tasks() {
		out = append(out, TaskState{
			ID:       t.ID,
			Copies:   t.Copies,
			Ringer:   t.Ringer,
			Eligible: !t.Ringer && !issued(t.ID),
		})
	}
	return out
}

// assertDefends checks that p (with rev applied) meets eps at pUpper for
// every class holding regular tasks.
func assertDefends(t *testing.T, p *plan.Plan, rev plan.Revision, eps, pUpper float64) {
	t.Helper()
	if err := p.ApplyRevision(rev); err != nil {
		t.Fatalf("controller produced invalid revision: %v", err)
	}
	if problems := p.Audit(1e-9); len(problems) != 0 {
		t.Fatalf("revised plan fails audit: %v", problems)
	}
	reg, ring := p.SplitDistribution()
	for k := 1; k <= len(reg.Counts); k++ {
		if reg.Count(k) == 0 {
			continue
		}
		if pk := dist.DetectionAtSplit(reg, ring, k, pUpper); pk < eps-1e-9 {
			t.Fatalf("revised plan: P_{%d,%v} = %v < ε = %v", k, pUpper, pk, eps)
		}
	}
}

func TestReplanSatisfiedPlanUntouched(t *testing.T) {
	p, err := plan.Balanced(500, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	rev, ok := Replan(states(p, func(int) bool { return false }), p.NextTaskID(), 0.8, 0)
	if !ok {
		t.Fatal("plan meeting ε at p=0 reported unsatisfied")
	}
	if !rev.Empty() {
		t.Fatalf("plan already meets ε at p=0, got revision %+v", rev)
	}
}

func TestReplanRestoresEpsilonAllEligible(t *testing.T) {
	const eps, pUpper = 0.8, 0.15
	p, err := plan.Balanced(500, eps)
	if err != nil {
		t.Fatal(err)
	}
	// The static plan must actually be deficient at pUpper — the Balanced
	// closed form P_{k,p} = 1 − (1−ε)^{1−p} degrades for any p > 0.
	reg, ring := p.SplitDistribution()
	deficient := false
	for k := 1; k <= len(reg.Counts); k++ {
		if reg.Count(k) > 0 && dist.DetectionAtSplit(reg, ring, k, pUpper) < eps {
			deficient = true
		}
	}
	if !deficient {
		t.Fatal("static Balanced plan unexpectedly meets ε at p = 0.15")
	}
	rev, ok := Replan(states(p, func(int) bool { return false }), p.NextTaskID(), eps, pUpper)
	if !ok {
		t.Fatal("controller could not restore ε with every task eligible")
	}
	if rev.Empty() {
		t.Fatal("deficient plan produced empty revision")
	}
	assertDefends(t, p, rev, eps, pUpper)
}

func TestReplanMintOnlyWhenNothingEligible(t *testing.T) {
	const eps, pUpper = 0.8, 0.15
	p, err := plan.Balanced(500, eps)
	if err != nil {
		t.Fatal(err)
	}
	rev, ok := Replan(states(p, func(int) bool { return true }), p.NextTaskID(), eps, pUpper)
	if !ok {
		t.Fatal("controller could not restore ε by minting alone")
	}
	if len(rev.Promotions) != 0 {
		t.Fatalf("no task was eligible, yet revision promotes: %+v", rev.Promotions)
	}
	if len(rev.Minted) == 0 {
		t.Fatal("deficient plan with nothing eligible must mint ringers")
	}
	assertDefends(t, p, rev, eps, pUpper)
}

func TestReplanNeverTouchesIneligibleTasks(t *testing.T) {
	const eps, pUpper = 0.75, 0.2
	p, err := plan.Balanced(800, eps)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	issued := map[int]bool{}
	for _, s := range p.Tasks() {
		if rng.Float64() < 0.5 {
			issued[s.ID] = true
		}
	}
	rev, ok := Replan(states(p, func(id int) bool { return issued[id] }), p.NextTaskID(), eps, pUpper)
	if !ok {
		t.Fatal("controller could not restore ε with half the tasks in flight")
	}
	for _, pr := range rev.Promotions {
		if issued[pr.TaskID] {
			t.Fatalf("revision promotes in-flight task %d", pr.TaskID)
		}
	}
	assertDefends(t, p, rev, eps, pUpper)
}

func TestReplanDeterministicUnderShuffle(t *testing.T) {
	const eps, pUpper = 0.8, 0.12
	p, err := plan.Balanced(300, eps)
	if err != nil {
		t.Fatal(err)
	}
	base := states(p, func(id int) bool { return id%3 == 0 })
	rev1, ok1 := Replan(base, p.NextTaskID(), eps, pUpper)
	shuffled := append([]TaskState(nil), base...)
	rand.New(rand.NewSource(5)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	rev2, ok2 := Replan(shuffled, p.NextTaskID(), eps, pUpper)
	if ok1 != ok2 {
		t.Fatalf("satisfied differs under shuffle: %v vs %v", ok1, ok2)
	}
	if len(rev1.Promotions) != len(rev2.Promotions) || len(rev1.Minted) != len(rev2.Minted) {
		t.Fatalf("revision differs under input shuffle:\n%+v\n%+v", rev1, rev2)
	}
	for i := range rev1.Promotions {
		if rev1.Promotions[i] != rev2.Promotions[i] {
			t.Fatalf("promotion %d differs under shuffle: %+v vs %+v", i, rev1.Promotions[i], rev2.Promotions[i])
		}
	}
	for i := range rev1.Minted {
		if rev1.Minted[i] != rev2.Minted[i] {
			t.Fatalf("mint %d differs under shuffle: %+v vs %+v", i, rev1.Minted[i], rev2.Minted[i])
		}
	}
}

func TestReplanRejectsBadEpsilon(t *testing.T) {
	if _, ok := Replan(nil, 0, 0, 0.1); ok {
		t.Fatal("ε = 0 accepted")
	}
	if _, ok := Replan(nil, 0, 1, 0.1); ok {
		t.Fatal("ε = 1 accepted")
	}
}

func TestReplanClampsAbsurdUpperBound(t *testing.T) {
	// With no evidence the Wilson interval is [0,1]; a supervisor bug that
	// passes that raw upper bound through must still terminate (clamped to
	// maxDefendableP) and produce a valid — if expensive — revision.
	const eps = 0.75
	p, err := plan.Balanced(100, eps)
	if err != nil {
		t.Fatal(err)
	}
	rev, ok := Replan(states(p, func(int) bool { return false }), p.NextTaskID(), eps, 1.0)
	if ok {
		assertDefends(t, p, rev, eps, maxDefendableP)
	}
	// Either outcome (cap hit or satisfied at the clamp) is acceptable;
	// the test is that we returned at all and any revision is valid.
	if err := p.ValidateRevision(rev); !ok && err != nil {
		t.Fatalf("capped revision is not even applicable: %v", err)
	}
}

func TestReplanSkipsDegenerateTasks(t *testing.T) {
	// Zero-copy entries (not producible by plan, but defensive) are ignored.
	tasks := []TaskState{
		{ID: 0, Copies: 0, Eligible: true},
		{ID: 1, Copies: 2, Eligible: true},
		{ID: 2, Copies: 3, Ringer: true},
	}
	rev, ok := Replan(tasks, 3, 0.6, 0.05)
	if !ok {
		t.Fatalf("tiny deployment unsatisfiable: %+v", rev)
	}
	for _, pr := range rev.Promotions {
		if pr.TaskID == 0 {
			t.Fatal("promoted a zero-copy task")
		}
	}
}

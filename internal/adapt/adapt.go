// Package adapt is the adaptive redundancy control plane: it closes the
// loop between the verification evidence a running supervisor accumulates
// and the redundancy plan it is executing.
//
// The paper's schemes are static — the supervisor guesses the adversary's
// assignment share p up front, and Proposition 2's non-asymptotic detection
// probability
//
//	P_{k,p}(x) = 1 − x_k / Σ_{i≥k} C(i,k)·(1−p)^{i−k}·x_i
//
// quantifies exactly how much detection power a wrong guess costs. A live
// deployment faces a p that is unknown and drifting, so this package
// provides two cooperating halves:
//
//   - an Estimator that consumes verification verdicts (mismatch
//     detections, ringer failures, per-participant attributions) and
//     maintains a running p̂ with a Wilson confidence interval over
//     observed bad / total credited assignments, optionally
//     exponentially decayed so the estimate tracks drift;
//
//   - a Controller (Replan) that, when the interval's upper bound pushes
//     P_{k,p̂} for any active class below the configured ε, computes a
//     plan.Revision: it promotes not-yet-dispatched tasks to higher
//     multiplicity classes and mints additional ringer tasks, never
//     touching a task any copy of which is already in flight, so the
//     platform's lease-exclusivity and exactly-once-credit invariants are
//     preserved.
//
// The package is pure computation — no goroutines, no clocks, no locks.
// The platform supervisor owns scheduling the loop (Config.Interval),
// journaling the revisions it applies, and feeding evidence in under its
// own lock.
package adapt

import (
	"fmt"
	"time"
)

// Defaults used by Config.Normalized for zero-valued fields.
const (
	// DefaultZ is the 95% Wilson interval z-score.
	DefaultZ = 1.959963984540054
	// DefaultMinSamples is how many credited assignments must be observed
	// before the controller trusts the interval enough to act.
	DefaultMinSamples = 64
	// DefaultInterval is how often the supervisor evaluates the controller.
	DefaultInterval = 250 * time.Millisecond
	// DefaultDecay keeps every past observation at full weight (no decay).
	DefaultDecay = 1.0
)

// Config parameterizes the adaptive loop as run by the platform supervisor.
type Config struct {
	// TargetEpsilon is the detection threshold ε the controller defends:
	// every active class k must keep P_{k,p̂upper} ≥ ε. Required (no
	// default); must lie in (0,1).
	TargetEpsilon float64
	// Interval is how often the supervisor re-evaluates the controller.
	Interval time.Duration
	// MinSamples gates the controller: no revision is computed until the
	// estimator has seen at least this many credited assignments.
	MinSamples int
	// Z is the Wilson interval z-score (confidence level of the bound the
	// controller defends at).
	Z float64
	// Decay is the per-assignment retention factor applied to past
	// evidence, in (0,1]. 1 means every observation counts forever; values
	// slightly below 1 (e.g. 0.999) let p̂ track a drifting adversary at
	// the cost of a wider interval.
	Decay float64
}

// Normalized returns c with zero-valued optional fields replaced by the
// package defaults, or an error if a set field is out of range.
func (c Config) Normalized() (Config, error) {
	if !(c.TargetEpsilon > 0 && c.TargetEpsilon < 1) {
		return c, fmt.Errorf("adapt: target ε must lie in (0,1), got %v", c.TargetEpsilon)
	}
	if c.Interval < 0 {
		return c, fmt.Errorf("adapt: negative interval %v", c.Interval)
	}
	if c.Interval == 0 {
		c.Interval = DefaultInterval
	}
	if c.MinSamples < 0 {
		return c, fmt.Errorf("adapt: negative min samples %d", c.MinSamples)
	}
	if c.MinSamples == 0 {
		c.MinSamples = DefaultMinSamples
	}
	if c.Z < 0 {
		return c, fmt.Errorf("adapt: negative z-score %v", c.Z)
	}
	if c.Z == 0 {
		c.Z = DefaultZ
	}
	if c.Decay < 0 || c.Decay > 1 {
		return c, fmt.Errorf("adapt: decay must lie in (0,1], got %v", c.Decay)
	}
	if c.Decay == 0 {
		c.Decay = DefaultDecay
	}
	return c, nil
}

package adapt

import "math"

// Estimator maintains the running adversary-share estimate p̂.
//
// Evidence arrives one verification verdict at a time: a verdict credits
// some number of assignments and attributes some of them (possibly zero)
// to cheating participants — a mismatched tuple yields one suspect per
// copy the minority side submitted, a failed ringer yields one suspect per
// wrong copy. Each credited assignment is a Bernoulli draw of "was this
// assignment in adversarial hands and caught", so p̂ = bad/total with a
// Wilson score interval is the natural estimate of the *detectable*
// adversarial share. Tuples the adversary controlled outright are invisible
// here (that is exactly the paper's point); the interval's upper bound,
// which the controller defends at, is what compensates for the estimate
// being a lower-noise floor.
//
// An Estimator is not safe for concurrent use; the supervisor feeds it
// under its own lock.
type Estimator struct {
	z     float64
	decay float64
	bad   float64
	total float64

	// observer, when set, sees the refreshed estimate after every Observe
	// (SetObserver).
	observer func(Estimate)
}

// NewEstimator returns an estimator with z-score z and per-assignment
// retention decay (see Config). Both must already be normalized.
func NewEstimator(z, decay float64) *Estimator {
	return &Estimator{z: z, decay: decay}
}

// Observe folds one verdict into the estimate: copies credited
// assignments, bad of which were attributed to cheaters. With decay < 1
// all prior evidence is first discounted by decay^copies, so the effective
// sample size saturates near 1/(1−decay) and the estimate tracks drift.
func (e *Estimator) Observe(copies, bad int) {
	if copies <= 0 {
		return
	}
	if bad < 0 {
		bad = 0
	}
	if bad > copies {
		bad = copies
	}
	if e.decay < 1 {
		w := math.Pow(e.decay, float64(copies))
		e.bad *= w
		e.total *= w
	}
	e.bad += float64(bad)
	e.total += float64(copies)
	if e.observer != nil {
		e.observer(e.Estimate())
	}
}

// SetObserver installs a callback invoked with the refreshed estimate after
// every effective Observe (zero-copy observations are dropped before it
// fires). The scenario lab (internal/sim) uses it to record the p̂
// convergence trajectory without polling; pass nil to detach.
func (e *Estimator) SetObserver(fn func(Estimate)) { e.observer = fn }

// Estimate is a snapshot of the estimator's state.
type Estimate struct {
	// PHat is the point estimate bad/total (0 when nothing observed).
	PHat float64
	// Lower and Upper bound the Wilson score interval at the estimator's
	// z. With no evidence the interval is the vacuous [0,1].
	Lower, Upper float64
	// Samples is the (decayed) number of credited assignments observed.
	Samples float64
}

// Width returns the interval width.
func (s Estimate) Width() float64 { return s.Upper - s.Lower }

// Estimate computes the current point estimate and Wilson interval.
func (e *Estimator) Estimate() Estimate {
	if e.total <= 0 {
		return Estimate{Lower: 0, Upper: 1}
	}
	n := e.total
	phat := e.bad / n
	z2 := e.z * e.z
	denom := 1 + z2/n
	center := (phat + z2/(2*n)) / denom
	half := e.z * math.Sqrt(phat*(1-phat)/n+z2/(4*n*n)) / denom
	lo, hi := center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return Estimate{PHat: phat, Lower: lo, Upper: hi, Samples: n}
}

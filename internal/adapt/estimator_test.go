package adapt

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestConfigNormalized(t *testing.T) {
	c, err := Config{TargetEpsilon: 0.9}.Normalized()
	if err != nil {
		t.Fatalf("Normalized: %v", err)
	}
	if c.Interval != DefaultInterval || c.MinSamples != DefaultMinSamples ||
		c.Z != DefaultZ || c.Decay != DefaultDecay {
		t.Fatalf("defaults not applied: %+v", c)
	}
	set := Config{TargetEpsilon: 0.5, Interval: time.Second, MinSamples: 7, Z: 1, Decay: 0.5}
	got, err := set.Normalized()
	if err != nil {
		t.Fatalf("Normalized: %v", err)
	}
	if got != set {
		t.Fatalf("explicit fields changed: %+v", got)
	}
	for _, bad := range []Config{
		{TargetEpsilon: 0},
		{TargetEpsilon: 1},
		{TargetEpsilon: 0.5, Interval: -time.Second},
		{TargetEpsilon: 0.5, MinSamples: -1},
		{TargetEpsilon: 0.5, Z: -2},
		{TargetEpsilon: 0.5, Decay: 1.5},
		{TargetEpsilon: 0.5, Decay: -0.1},
	} {
		if _, err := bad.Normalized(); err == nil {
			t.Errorf("Normalized(%+v) accepted invalid config", bad)
		}
	}
}

func TestEstimatorEmpty(t *testing.T) {
	e := NewEstimator(DefaultZ, 1)
	s := e.Estimate()
	if s.PHat != 0 || s.Lower != 0 || s.Upper != 1 || s.Samples != 0 {
		t.Fatalf("empty estimator should give vacuous [0,1]: %+v", s)
	}
	if s.Width() != 1 {
		t.Fatalf("vacuous width = %v, want 1", s.Width())
	}
	// Degenerate observations must not corrupt state.
	e.Observe(0, 3)
	e.Observe(-1, 0)
	if s := e.Estimate(); s.Samples != 0 {
		t.Fatalf("degenerate observations counted: %+v", s)
	}
}

func TestEstimatorWilsonKnownValue(t *testing.T) {
	// 10 bad out of 100 at z = 1.96: the textbook Wilson interval is
	// approximately [0.0552, 0.1744].
	e := NewEstimator(1.96, 1)
	e.Observe(90, 10)
	e.Observe(10, 0)
	s := e.Estimate()
	if s.Samples != 100 {
		t.Fatalf("samples = %v, want 100", s.Samples)
	}
	if math.Abs(s.PHat-0.1) > 1e-12 {
		t.Fatalf("p̂ = %v, want 0.1", s.PHat)
	}
	if math.Abs(s.Lower-0.05522854) > 1e-4 || math.Abs(s.Upper-0.17436566) > 1e-4 {
		t.Fatalf("Wilson interval [%v, %v], want ≈ [0.0552, 0.1744]", s.Lower, s.Upper)
	}
	if s.Lower >= s.PHat || s.PHat >= s.Upper {
		t.Fatalf("p̂ outside its own interval: %+v", s)
	}
}

func TestEstimatorClampsBadToCopies(t *testing.T) {
	e := NewEstimator(DefaultZ, 1)
	e.Observe(3, 99) // attribution bug upstream must not push p̂ past 1
	s := e.Estimate()
	if s.PHat != 1 || s.Upper != 1 {
		t.Fatalf("over-attributed verdict gave %+v", s)
	}
}

func TestEstimatorIntervalShrinksWithEvidence(t *testing.T) {
	e := NewEstimator(DefaultZ, 1)
	var prev float64 = 1
	for round := 0; round < 5; round++ {
		for i := 0; i < 200; i++ {
			bad := 0
			if i%20 == 0 {
				bad = 1
			}
			e.Observe(1, bad)
		}
		s := e.Estimate()
		if s.Width() >= prev {
			t.Fatalf("round %d: interval width %v did not shrink from %v", round, s.Width(), prev)
		}
		prev = s.Width()
	}
	s := e.Estimate()
	if s.Lower > 0.05 || s.Upper < 0.05 {
		t.Fatalf("true rate 0.05 outside interval [%v, %v]", s.Lower, s.Upper)
	}
}

func TestEstimatorDecayTracksDrift(t *testing.T) {
	// An undecayed estimator is anchored by its history; a decayed one must
	// converge to the new rate after the adversary steps 0.02 -> 0.30.
	rng := rand.New(rand.NewSource(7))
	frozen := NewEstimator(DefaultZ, 1)
	tracking := NewEstimator(DefaultZ, 0.995)
	feed := func(p float64, n int) {
		for i := 0; i < n; i++ {
			bad := 0
			if rng.Float64() < p {
				bad = 1
			}
			frozen.Observe(1, bad)
			tracking.Observe(1, bad)
		}
	}
	feed(0.02, 4000)
	feed(0.30, 4000)
	f, tr := frozen.Estimate(), tracking.Estimate()
	if f.PHat > 0.25 {
		t.Fatalf("undecayed estimator should stay anchored near 0.16, got %v", f.PHat)
	}
	if math.Abs(tr.PHat-0.30) > 0.08 {
		t.Fatalf("decayed estimator should track the step to 0.30, got %v", tr.PHat)
	}
	if tr.Samples > 1/(1-0.995)+1 {
		t.Fatalf("decayed sample mass %v exceeds saturation bound %v", tr.Samples, 1/(1-0.995))
	}
}

// TestEstimatorObserver verifies the SetObserver hook: it fires once per
// effective observation with the same estimate a fresh Estimate() call
// returns, skips zero-copy observations, and detaches on nil.
func TestEstimatorObserver(t *testing.T) {
	e := NewEstimator(DefaultZ, 1)
	var seen []Estimate
	e.SetObserver(func(s Estimate) { seen = append(seen, s) })

	e.Observe(0, 0) // dropped before the hook
	e.Observe(10, 2)
	e.Observe(5, 0)
	if len(seen) != 2 {
		t.Fatalf("observer fired %d times, want 2", len(seen))
	}
	if got, want := seen[1], e.Estimate(); got != want {
		t.Errorf("observer saw %+v, Estimate() says %+v", got, want)
	}
	if seen[0].Samples != 10 || seen[1].Samples != 15 {
		t.Errorf("trajectory samples = %v, %v; want 10, 15", seen[0].Samples, seen[1].Samples)
	}
	if seen[0].PHat != 0.2 {
		t.Errorf("first observed p̂ = %v, want 0.2", seen[0].PHat)
	}

	e.SetObserver(nil)
	e.Observe(10, 1)
	if len(seen) != 2 {
		t.Error("detached observer still fired")
	}
}

package experiments

import (
	"fmt"
	"math/rand"

	"redundancy/internal/adapt"
	"redundancy/internal/dist"
	"redundancy/internal/plan"
	"redundancy/internal/report"
)

// DriftStep is one segment of the drifting-adversary scenario: the
// coalition holds share P of the assignments while Observations credited
// assignments flow through verification.
type DriftStep struct {
	P            float64
	Observations int
}

// DriftRow is one checkpoint of the drift experiment: after a segment's
// evidence lands, the adaptive controller re-plans and both plans are
// scored at the segment's *true* adversary share.
type DriftRow struct {
	Step      int
	TrueP     float64
	PHat      float64
	Upper     float64
	Revisions int
	// StaticMinP and AdaptiveMinP are the weakest per-class detection
	// guarantees min_k P_{k,p} of the untouched and the revised plan at
	// the true adversary share.
	StaticMinP   float64
	AdaptiveMinP float64
	// Factor is the adaptive plan's current redundancy factor — the price
	// paid for holding the guarantee.
	Factor float64
}

// minDetection is the weakest per-class guarantee min_k P_{k,p} a plan
// offers at adversary share p.
func minDetection(pl *plan.Plan, p float64) float64 {
	reg, ring := pl.SplitDistribution()
	min := 1.0
	for k := 1; k <= len(reg.Counts); k++ {
		if reg.Count(k) == 0 {
			continue
		}
		if d := dist.DetectionAtSplit(reg, ring, k, p); d < min {
			min = d
		}
	}
	return min
}

// Drift reproduces the control plane's central claim offline: a static
// plan tuned for p=0 degrades as the true adversary share drifts upward,
// while an adaptive plan — re-planned from the same evidence stream a
// live supervisor would see — holds min_k P_{k,p} at or above ε.
//
// Two identical Balanced(n, eps) plans are built. Per segment, bad
// results arrive as seeded Bernoulli draws at the segment's true p and
// feed a decaying Wilson estimator (decay < 1 lets p̂ track the drift
// instead of averaging over the calm era); dispatched assignments
// consume tasks in plan order, so later revisions have fewer eligible
// tasks to promote and leans on minted ringers — exactly the live
// supervisor's constraint. At each segment boundary the controller
// revises the adaptive plan at the estimate's upper bound; the static
// plan is never touched.
func Drift(n int, eps float64, steps []DriftStep, decay float64, seed uint64) ([]DriftRow, error) {
	if len(steps) == 0 {
		return nil, fmt.Errorf("experiments: drift needs at least one step")
	}
	static, err := plan.Balanced(n, eps)
	if err != nil {
		return nil, err
	}
	adaptive, err := plan.Balanced(n, eps)
	if err != nil {
		return nil, err
	}
	est := adapt.NewEstimator(adapt.DefaultZ, decay)
	rng := rand.New(rand.NewSource(int64(seed)))

	// issuedCopies tracks how much of the plan has been dispatched; tasks
	// are consumed in plan order and stop being promotable once touched.
	issuedCopies := 0
	revisions := 0
	var rows []DriftRow
	for i, step := range steps {
		if !(step.P >= 0 && step.P < 1) {
			return nil, fmt.Errorf("experiments: drift step %d: p=%v out of range", i, step.P)
		}
		for o := 0; o < step.Observations; o++ {
			bad := 0
			if rng.Float64() < step.P {
				bad = 1
			}
			est.Observe(1, bad)
		}
		issuedCopies += step.Observations

		e := est.Estimate()
		var tasks []adapt.TaskState
		consumed := 0
		for _, s := range adaptive.Tasks() {
			eligible := !s.Ringer && consumed >= issuedCopies
			consumed += s.Copies
			tasks = append(tasks, adapt.TaskState{
				ID: s.ID, Copies: s.Copies, Ringer: s.Ringer, Eligible: eligible,
			})
		}
		rev, _ := adapt.Replan(tasks, adaptive.NextTaskID(), eps, e.Upper)
		if !rev.Empty() {
			if err := adaptive.ApplyRevision(rev); err != nil {
				return nil, fmt.Errorf("experiments: drift step %d: %w", i, err)
			}
			revisions++
		}
		rows = append(rows, DriftRow{
			Step:         i + 1,
			TrueP:        step.P,
			PHat:         e.PHat,
			Upper:        e.Upper,
			Revisions:    revisions,
			StaticMinP:   minDetection(static, step.P),
			AdaptiveMinP: minDetection(adaptive, step.P),
			Factor:       adaptive.RedundancyFactor(),
		})
	}
	return rows, nil
}

// DefaultDriftSteps is the canonical drifting-adversary scenario: a calm
// 2% era followed by an aggressive 15% era, with obs credited assignments
// observed per segment.
func DefaultDriftSteps(obs int) []DriftStep {
	return []DriftStep{
		{P: 0.02, Observations: obs},
		{P: 0.02, Observations: obs},
		{P: 0.02, Observations: obs},
		{P: 0.15, Observations: obs},
		{P: 0.15, Observations: obs},
		{P: 0.15, Observations: obs},
	}
}

// DriftTable renders the drift experiment: static degrades below ε once
// the adversary drifts, adaptive holds the line.
func DriftTable(n int, eps float64, steps []DriftStep, decay float64, seed uint64) (*report.Table, error) {
	rows, err := Drift(n, eps, steps, decay, seed)
	if err != nil {
		return nil, err
	}
	t := report.NewTable(
		fmt.Sprintf("Drifting adversary: static vs adaptive min_k P(k,p) (N=%d, ε=%g, decay=%g)", n, eps, decay),
		"step", "true p", "p̂", "upper", "revisions", "static min P", "adaptive min P", "factor")
	for _, r := range rows {
		t.AddRowStrings(
			fmt.Sprintf("%d", r.Step), fmt.Sprintf("%.2f", r.TrueP),
			fmt.Sprintf("%.4f", r.PHat), fmt.Sprintf("%.4f", r.Upper),
			fmt.Sprintf("%d", r.Revisions),
			fmt.Sprintf("%.4f", r.StaticMinP), fmt.Sprintf("%.4f", r.AdaptiveMinP),
			fmt.Sprintf("%.4f", r.Factor))
	}
	return t, nil
}

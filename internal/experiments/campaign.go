package experiments

import (
	"fmt"

	"redundancy/internal/adversary"
	"redundancy/internal/dist"
	"redundancy/internal/plan"
	"redundancy/internal/report"
	"redundancy/internal/sched"
	"redundancy/internal/sim"
)

// CampaignRow summarizes a multi-round campaign for one (scheme, strategy)
// pairing.
type CampaignRow struct {
	Scheme            string
	Strategy          string
	Rounds            int
	Neutralized       int // 0 = survived the horizon
	TotalWrong        int
	WrongInFirstRound int
}

// CampaignExperiment runs the determined-adversary campaign of §1's caveat
// across the schemes: under Balanced a blatant coalition burns out within
// a few rounds; under simple redundancy a cautious pair-attacker extracts
// wrong results round after round, indefinitely.
func CampaignExperiment(n, participants, rounds int, seed uint64) ([]CampaignRow, error) {
	const eps, prop = 0.5, 0.2
	balD, err := dist.Balanced(float64(n), eps)
	if err != nil {
		return nil, err
	}
	balPlan, err := plan.FromDistribution(balD, eps)
	if err != nil {
		return nil, err
	}
	simplePlan, err := plan.FromDistribution(dist.Simple(float64(n)), eps)
	if err != nil {
		return nil, err
	}
	cases := []struct {
		scheme string
		plan   *plan.Plan
		strat  adversary.Strategy
	}{
		{"balanced", balPlan, adversary.Always{}},
		{"balanced", balPlan, adversary.AtLeast{MinCopies: 2}},
		{"simple", simplePlan, adversary.Always{}},
		{"simple", simplePlan, adversary.AtLeast{MinCopies: 2}},
	}
	var rows []CampaignRow
	for ci, c := range cases {
		rep, err := sim.Campaign(sim.CampaignConfig{
			Plan:                c.plan,
			Policy:              sched.Free,
			Participants:        participants,
			AdversaryProportion: prop,
			Strategy:            c.strat,
			Rounds:              rounds,
			Seed:                seed + uint64(ci)*101,
		})
		if err != nil {
			return nil, err
		}
		roundsDone(len(rep.Rounds))
		row := CampaignRow{
			Scheme:      c.scheme,
			Strategy:    c.strat.Name(),
			Rounds:      len(rep.Rounds),
			Neutralized: rep.RoundsUntilNeutralized,
			TotalWrong:  rep.TotalWrongAccepted,
		}
		if len(rep.Rounds) > 0 {
			row.WrongInFirstRound = rep.Rounds[0].WrongAccepted
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// CampaignTable renders the campaign experiment.
func CampaignTable(n, participants, rounds int, seed uint64) (*report.Table, error) {
	rows, err := CampaignExperiment(n, participants, rounds, seed)
	if err != nil {
		return nil, err
	}
	t := report.NewTable(
		fmt.Sprintf("Determined-adversary campaign (N=%d per round, 20%% coalition, horizon %d rounds)",
			n, rounds),
		"Scheme", "Strategy", "Rounds run", "Neutralized at", "Wrong results (total)", "Wrong (round 1)")
	for _, r := range rows {
		at := "never"
		if r.Neutralized > 0 {
			at = fmt.Sprintf("round %d", r.Neutralized)
		}
		t.AddRowStrings(r.Scheme, r.Strategy, fmt.Sprintf("%d", r.Rounds), at,
			fmt.Sprintf("%d", r.TotalWrong), fmt.Sprintf("%d", r.WrongInFirstRound))
	}
	return t, nil
}

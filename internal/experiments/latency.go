package experiments

import (
	"fmt"

	"redundancy/internal/adversary"
	"redundancy/internal/dist"
	"redundancy/internal/par"
	"redundancy/internal/plan"
	"redundancy/internal/report"
	"redundancy/internal/sched"
	"redundancy/internal/sim"
	"redundancy/internal/stats"
)

// LatencyRow summarizes how quickly one (scheme, strategy, p) combination
// exposes an active adversary.
type LatencyRow struct {
	Scheme        string
	Strategy      string
	P             float64
	Trials        int
	DetectionRate float64 // fraction of runs with at least one exposure
	// MeanTasksBefore is the mean number of tasks certified before the
	// first exposure, over runs that had one.
	MeanTasksBefore float64
	// MeanFractionBefore is MeanTasksBefore / total tasks.
	MeanFractionBefore float64
}

// DetectionLatency quantifies §1's caveat — a determined adversary "is
// highly likely to be detected, alerting the supervisor" — by measuring,
// in the full event simulation, how much of the computation completes
// before the first cheat is exposed:
//
//   - simple redundancy + a pair-only coalition: never exposed (the paper's
//     motivating failure);
//   - simple redundancy + a gambling coalition: exposed almost immediately;
//   - Balanced + any coalition: exposed early — each cheat is caught with
//     probability ≈ ε, so exposure arrives within a handful of cheats.
func DetectionLatency(n, participants, trials int, seed uint64) ([]LatencyRow, error) {
	if trials < 1 {
		return nil, fmt.Errorf("experiments: need at least 1 trial")
	}
	const eps = 0.5
	balD, err := dist.Balanced(float64(n), eps)
	if err != nil {
		return nil, err
	}
	balPlan, err := plan.FromDistribution(balD, eps)
	if err != nil {
		return nil, err
	}
	simplePlan, err := plan.FromDistribution(dist.Simple(float64(n)), eps)
	if err != nil {
		return nil, err
	}

	type cell struct {
		scheme string
		plan   *plan.Plan
		strat  adversary.Strategy
		p      float64
	}
	var cells []cell
	for _, p := range []float64{0.05, 0.15} {
		cells = append(cells,
			cell{"simple", simplePlan, adversary.AtLeast{MinCopies: 2}, p},
			cell{"simple", simplePlan, adversary.Always{}, p},
			cell{"balanced", balPlan, adversary.Always{}, p},
		)
	}

	var rows []LatencyRow
	for ci, c := range cells {
		reps := par.MapSlice(trials, 0, func(t int) *sim.Report {
			rep, err := sim.Run(sim.Config{
				Plan:                c.plan,
				Policy:              sched.Free,
				Participants:        participants,
				AdversaryProportion: c.p,
				Strategy:            c.strat,
				Seed:                seed + uint64(ci*10_000+t),
			})
			if err != nil {
				return nil
			}
			trialDone("latency")
			return rep
		})
		detected := 0
		var tasksBefore stats.Summary
		total := 0
		for _, rep := range reps {
			if rep == nil {
				return nil, fmt.Errorf("experiments: latency trial failed")
			}
			total = rep.Tasks
			if rep.FirstDetectionTime >= 0 {
				detected++
				tasksBefore.Add(float64(rep.TasksBeforeFirstDetection))
			}
		}
		row := LatencyRow{
			Scheme:        c.scheme,
			Strategy:      c.strat.Name(),
			P:             c.p,
			Trials:        trials,
			DetectionRate: float64(detected) / float64(trials),
		}
		if detected > 0 {
			row.MeanTasksBefore = tasksBefore.Mean()
			row.MeanFractionBefore = tasksBefore.Mean() / float64(total)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// DetectionLatencyTable renders the latency experiment.
func DetectionLatencyTable(n, participants, trials int, seed uint64) (*report.Table, error) {
	rows, err := DetectionLatency(n, participants, trials, seed)
	if err != nil {
		return nil, err
	}
	t := report.NewTable(
		fmt.Sprintf("Detection latency: tasks certified before the first exposure (N=%d, ε=1/2, %d trials)",
			n, trials),
		"Scheme", "Strategy", "p", "Exposure rate", "Mean tasks before", "Fraction of run")
	for _, r := range rows {
		before, frac := "-", "-"
		if r.DetectionRate > 0 {
			before = fmt.Sprintf("%.1f", r.MeanTasksBefore)
			frac = fmt.Sprintf("%.4f", r.MeanFractionBefore)
		}
		t.AddRowStrings(r.Scheme, r.Strategy, fmt.Sprintf("%.2f", r.P),
			fmt.Sprintf("%.2f", r.DetectionRate), before, frac)
	}
	return t, nil
}

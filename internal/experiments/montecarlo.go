package experiments

import (
	"fmt"

	"redundancy/internal/adversary"
	"redundancy/internal/dist"
	"redundancy/internal/par"
	"redundancy/internal/plan"
	"redundancy/internal/report"
	"redundancy/internal/sim"
	"redundancy/internal/stats"
)

// AppARow is one (N, p) cell of the Appendix-A experiment.
type AppARow struct {
	N             int
	P             float64
	Expected      float64 // p²·N
	ObservedMean  float64
	CILo, CIHi    float64 // 95% CI on the mean
	FreeCheatRate float64 // fraction of runs with >= 1 fully-controlled task
}

// AppendixA validates the appendix's claim that under two-phase simple
// redundancy an adversary controlling proportion p of participants expects
// p²·N fully-controlled tasks — so p = 1/sqrt(N) suffices for an expected
// free cheat.
func AppendixA(trials int, seed uint64) ([]AppARow, error) {
	if trials < 2 {
		return nil, fmt.Errorf("experiments: need at least 2 trials")
	}
	var rows []AppARow
	for _, n := range []int{10_000, 100_000} {
		ps := []float64{0.002, 0.005, dist.SqrtNClaimThreshold(float64(n)), 0.02, 0.05}
		for _, p := range ps {
			res, err := sim.TwoPhaseExperiment(n, p, trials, seed)
			if err != nil {
				return nil, err
			}
			trialsDone("appendix_a", trials)
			lo, hi := res.Observed.CI(0.95)
			rows = append(rows, AppARow{
				N:             n,
				P:             p,
				Expected:      res.Expected,
				ObservedMean:  res.Observed.Mean(),
				CILo:          lo,
				CIHi:          hi,
				FreeCheatRate: res.FreeCheatRate,
			})
			seed++
		}
	}
	return rows, nil
}

// AppendixATable renders the Appendix-A experiment.
func AppendixATable(trials int, seed uint64) (*report.Table, error) {
	rows, err := AppendixA(trials, seed)
	if err != nil {
		return nil, err
	}
	t := report.NewTable(
		fmt.Sprintf("Appendix A: fully-controlled tasks under two-phase simple redundancy (%d trials)", trials),
		"N", "p", "Expected p²N", "Observed mean", "95% CI", "Free-cheat rate")
	for _, r := range rows {
		t.AddRowStrings(
			fmt.Sprintf("%d", r.N), fmt.Sprintf("%.4f", r.P),
			fmt.Sprintf("%.2f", r.Expected), fmt.Sprintf("%.2f", r.ObservedMean),
			fmt.Sprintf("[%.2f, %.2f]", r.CILo, r.CIHi),
			fmt.Sprintf("%.3f", r.FreeCheatRate))
	}
	return t, nil
}

// CrossRow is one (scheme, k, p) cell of the Monte-Carlo cross-check.
type CrossRow struct {
	Scheme     string
	K          int
	P          float64
	ClosedForm float64
	Empirical  float64
	Cheats     int // sample size behind the empirical rate
	WilsonLo   float64
	WilsonHi   float64
	Agree      bool // closed form inside the 99.9% Wilson interval
}

// CrossCheck is the reproduction's own validation experiment: it samples
// the paper's exact probabilistic model (binomial thinning over deployed
// plans) and compares the empirical detection rates per tuple size with the
// closed forms of §3.1 (Golle–Stubblebine) and Proposition 3 (Balanced).
func CrossCheck(trials int, seed uint64) ([]CrossRow, error) {
	const n, eps = 100_000, 0.5
	if trials < 1 {
		return nil, fmt.Errorf("experiments: need at least 1 trial")
	}
	balD, err := dist.Balanced(n, eps)
	if err != nil {
		return nil, err
	}
	gsD, err := dist.GolleStubblebineForThreshold(n, eps)
	if err != nil {
		return nil, err
	}
	c := dist.GolleStubblebineC(eps, 0)

	type scheme struct {
		name   string
		specs  []plan.TaskSpec
		closed func(k int, p float64) float64
	}
	balP, err := planFor(balD, eps)
	if err != nil {
		return nil, err
	}
	gsP, err := planFor(gsD, eps)
	if err != nil {
		return nil, err
	}
	schemes := []scheme{
		{"balanced", balP.Tasks(), func(k int, p float64) float64 {
			return dist.BalancedDetectionAt(eps, p)
		}},
		{"golle-stubblebine", gsP.Tasks(), func(k int, p float64) float64 {
			return dist.GolleStubblebineDetectionAt(c, k, p)
		}},
	}

	var rows []CrossRow
	for _, sc := range schemes {
		for _, p := range []float64{0.05, 0.1, 0.2} {
			// Trials fan out across CPUs; per-trial streams depend only on
			// the trial index, and the integer tallies are folded in trial
			// order, so the numbers are identical at any GOMAXPROCS.
			reps := par.MapSlice(trials, 0, func(t int) *sim.ThinningReport {
				rep, err := sim.Thinning(sc.specs, p, adversary.Always{}, seed+uint64(t))
				if err != nil {
					return nil
				}
				trialDone("crosscheck")
				return rep
			})
			agg := make([]stats.Proportion, 4)
			for _, rep := range reps {
				if rep == nil {
					return nil, fmt.Errorf("experiments: thinning trial failed")
				}
				for k := 1; k <= len(agg) && k <= len(rep.PerTuple); k++ {
					agg[k-1].Successes += rep.PerTuple[k-1].Detected
					agg[k-1].Trials += rep.PerTuple[k-1].Cheated
				}
			}
			seed += uint64(trials)
			for k := 1; k <= len(agg); k++ {
				if agg[k-1].Trials == 0 {
					continue
				}
				cf := sc.closed(k, p)
				lo, hi := agg[k-1].Wilson(0.999)
				rows = append(rows, CrossRow{
					Scheme:     sc.name,
					K:          k,
					P:          p,
					ClosedForm: cf,
					Empirical:  agg[k-1].Estimate(),
					Cheats:     agg[k-1].Trials,
					WilsonLo:   lo,
					WilsonHi:   hi,
					Agree:      cf >= lo && cf <= hi,
				})
			}
		}
	}
	return rows, nil
}

// CrossCheckTable renders the cross-check experiment.
func CrossCheckTable(trials int, seed uint64) (*report.Table, error) {
	rows, err := CrossCheck(trials, seed)
	if err != nil {
		return nil, err
	}
	t := report.NewTable(
		fmt.Sprintf("Cross-check: empirical P(k,p) vs closed forms (N = 100,000, ε = 1/2, %d trials)", trials),
		"Scheme", "k", "p", "Closed form", "Empirical", "Cheats", "Agree")
	for _, r := range rows {
		t.AddRowStrings(r.Scheme, fmt.Sprintf("%d", r.K), fmt.Sprintf("%.2f", r.P),
			fmt.Sprintf("%.4f", r.ClosedForm), fmt.Sprintf("%.4f", r.Empirical),
			fmt.Sprintf("%d", r.Cheats), fmt.Sprintf("%v", r.Agree))
	}
	return t, nil
}

// Prop2Row compares one multiplicity class of the equality-augmented LP
// optimum with the Balanced distribution.
type Prop2Row struct {
	Multiplicity int
	LP           float64 // proportion of tasks, augmented-LP optimum
	Balanced     float64 // proportion of tasks, Balanced closed form
}

// Prop2Result is the Proposition-2 ablation outcome.
type Prop2Result struct {
	Rows               []Prop2Row
	LPFactor           float64
	BalancedFactor     float64
	MaxProportionDelta float64
}

// Proposition2 runs the ablation the paper describes in §5: augmenting the
// S_dim system so every detection constraint holds with equality and
// checking that the LP optimum is "virtually indistinguishable from the
// Balanced distribution".
func Proposition2(dim int) (*Prop2Result, error) {
	const n, eps = 100_000, 0.5
	if dim <= 2 {
		dim = 22
	}
	lpD, err := dist.BalancedLP(n, eps, dim)
	if err != nil {
		return nil, err
	}
	balD, err := dist.Balanced(n, eps)
	if err != nil {
		return nil, err
	}
	res := &Prop2Result{
		LPFactor:       lpD.RedundancyFactor(),
		BalancedFactor: balD.RedundancyFactor(),
	}
	for i := 1; i <= 12; i++ {
		lp := lpD.Count(i) / n
		bal := balD.Count(i) / n
		res.Rows = append(res.Rows, Prop2Row{Multiplicity: i, LP: lp, Balanced: bal})
		if d := abs(lp - bal); d > res.MaxProportionDelta {
			res.MaxProportionDelta = d
		}
	}
	return res, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Proposition2Table renders the Proposition-2 ablation.
func Proposition2Table(dim int) (*report.Table, error) {
	res, err := Proposition2(dim)
	if err != nil {
		return nil, err
	}
	t := report.NewTable(
		fmt.Sprintf("Proposition 2 ablation: equality-constrained LP vs Balanced (factors %.4f vs %.4f)",
			res.LPFactor, res.BalancedFactor),
		"Multiplicity", "LP proportion", "Balanced proportion")
	for _, r := range res.Rows {
		t.AddRowStrings(fmt.Sprintf("%d", r.Multiplicity),
			fmt.Sprintf("%.6f", r.LP), fmt.Sprintf("%.6f", r.Balanced))
	}
	return t, nil
}

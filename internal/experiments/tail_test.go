package experiments

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateTail = flag.Bool("update", false,
	"rewrite testdata/*.golden from current output")

// smallTailConfig is the CI-sized sweep: big enough that every scheme has
// a non-degenerate plan and the speculation tier actually fires, small
// enough to run in well under a second.
func smallTailConfig() TailSweepConfig {
	cfg := DefaultTailSweepConfig(2_000)
	cfg.Participants = 64
	cfg.Trials = 3
	cfg.Workers = 1
	return cfg
}

func sweepJSON(t *testing.T, rep *TailSweepReport) string {
	t.Helper()
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b) + "\n"
}

// TestTailSweepGolden pins the full JSON report of the small sweep. Any
// behavioral drift in the tail engine (event ordering, RNG draw order,
// sketch resolution, the speculation tier) shows up as a golden diff.
// Regenerate with `go test ./internal/experiments -run TailSweepGolden
// -args -update`.
func TestTailSweepGolden(t *testing.T) {
	rep, err := TailSweep(smallTailConfig())
	if err != nil {
		t.Fatalf("TailSweep: %v", err)
	}
	got := sweepJSON(t, rep)
	path := filepath.Join("testdata", "tail_sweep.golden")
	if *updateTail {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (regenerate with -args -update): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("golden mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestTailSweepWorkerInvariance is the determinism-under-parallelism
// contract for the sweep: 1, 4, and 16 fan-out workers must produce
// byte-identical reports. Trials derive their randomness from the trial
// index alone and the sketch merge is associative, so the pool size can
// only change wall clock.
func TestTailSweepWorkerInvariance(t *testing.T) {
	cfg := smallTailConfig()
	run := func(workers int) string {
		cfg.Workers = workers
		rep, err := TailSweep(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return sweepJSON(t, rep)
	}
	base := run(1)
	for _, workers := range []int{4, 16} {
		if got := run(workers); got != base {
			t.Errorf("workers=%d produced a different report than workers=1", workers)
		}
	}
}

// TestTailSweepShape checks the fixed row grid and its internal
// consistency: six rows in scheme-major order, monotone quantiles,
// redundancy factors that match the schemes' theory (simple pays 2x;
// balanced beats GS at ε=1/2), and a speculation tier that fires only
// when enabled.
func TestTailSweepShape(t *testing.T) {
	rep, err := TailSweep(smallTailConfig())
	if err != nil {
		t.Fatalf("TailSweep: %v", err)
	}
	wantSchemes := []string{"simple", "simple", "balanced", "balanced", "gs", "gs"}
	if len(rep.Rows) != len(wantSchemes) {
		t.Fatalf("got %d rows, want %d", len(rep.Rows), len(wantSchemes))
	}
	rf := map[string]float64{}
	for i, row := range rep.Rows {
		if row.Scheme != wantSchemes[i] {
			t.Errorf("row %d scheme %q, want %q", i, row.Scheme, wantSchemes[i])
		}
		if wantSpec := i%2 == 1; row.Speculate != wantSpec {
			t.Errorf("row %d Speculate = %v, want %v", i, row.Speculate, wantSpec)
		}
		if !(row.P50 <= row.P90 && row.P90 <= row.P99 && row.P99 <= row.P999) {
			t.Errorf("row %d quantiles not monotone: %+v", i, row)
		}
		if row.Speculate && row.SpecIssued == 0 {
			t.Errorf("row %d: speculation on but no clones issued", i)
		}
		if !row.Speculate && row.SpecIssued != 0 {
			t.Errorf("row %d: speculation off but %d clones issued", i, row.SpecIssued)
		}
		if row.Completions < rep.Trials*row.Copies {
			t.Errorf("row %d: %d completions < trials*copies = %d",
				i, row.Completions, rep.Trials*row.Copies)
		}
		rf[row.Scheme] = row.RedundancyFactor
	}
	if rf["simple"] != 2 {
		t.Errorf("simple redundancy factor %v, want 2", rf["simple"])
	}
	// At ε=1/2 Balanced's factor is well below Golle-Stubblebine's (the
	// paper's Figure 3 crossover is far above 1/2).
	if !(rf["balanced"] < rf["gs"]) {
		t.Errorf("balanced RF %v not below gs RF %v at eps=1/2", rf["balanced"], rf["gs"])
	}
}

// TestTailSweepRejectsInvalid covers the error paths.
func TestTailSweepRejectsInvalid(t *testing.T) {
	if _, err := TailSweep(TailSweepConfig{}); err == nil {
		t.Error("zero config accepted")
	}
	cfg := smallTailConfig()
	cfg.Trials = 0
	if _, err := TailSweep(cfg); err == nil {
		t.Error("zero trials accepted")
	}
	cfg = smallTailConfig()
	cfg.Epsilon = 2
	if _, err := TailSweep(cfg); err == nil {
		t.Error("epsilon outside (0,1) accepted")
	}
}

// TestTailSweepTableRenders exercises the renderer end to end.
func TestTailSweepTableRenders(t *testing.T) {
	tbl, err := TailSweepTable(2_000, 2, 7)
	if err != nil {
		t.Fatalf("TailSweepTable: %v", err)
	}
	if tbl.Rows() != 6 {
		t.Errorf("table has %d rows, want 6", tbl.Rows())
	}
	if tbl.String() == "" {
		t.Error("empty rendering")
	}
}

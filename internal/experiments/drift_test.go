package experiments

import (
	"strings"
	"testing"
)

func TestDriftStaticDegradesAdaptiveHolds(t *testing.T) {
	const eps = 0.5
	rows, err := Drift(4000, eps, DefaultDriftSteps(1000), 0.998, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want one per step", len(rows))
	}
	calm, last := rows[2], rows[len(rows)-1]
	// The estimator must have tracked the drift: p̂ rises from the calm
	// era toward the true 15% share.
	if last.PHat <= calm.PHat {
		t.Errorf("p̂ never rose with the drift: calm %.4f, drifted %.4f", calm.PHat, last.PHat)
	}
	if last.Upper < 0.15 {
		t.Errorf("upper bound %.4f below the true share 0.15: the revision defends too little", last.Upper)
	}
	// The claim itself: static falls below ε at the drifted share,
	// adaptive holds it.
	if last.StaticMinP >= eps {
		t.Errorf("static plan still satisfies ε=%v at p=%.2f (min P=%.4f)", eps, last.TrueP, last.StaticMinP)
	}
	if last.AdaptiveMinP < eps-1e-9 {
		t.Errorf("adaptive plan lost the guarantee: min P=%.6f < ε=%v at p=%.2f",
			last.AdaptiveMinP, eps, last.TrueP)
	}
	if last.Revisions == 0 {
		t.Error("adaptive run never revised the plan")
	}
	// Adaptation costs redundancy: the factor must have grown.
	if last.Factor <= rows[0].Factor {
		t.Errorf("redundancy factor did not grow: %.4f -> %.4f", rows[0].Factor, last.Factor)
	}
}

func TestDriftTableRenders(t *testing.T) {
	tb, err := DriftTable(2000, 0.5, DefaultDriftSteps(400), 0.995, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 6 || !strings.Contains(tb.String(), "adaptive min P") {
		t.Errorf("table:\n%s", tb.String())
	}
}

func TestDriftRejectsBadSteps(t *testing.T) {
	if _, err := Drift(1000, 0.5, nil, 1, 1); err == nil {
		t.Error("empty steps accepted")
	}
	if _, err := Drift(1000, 0.5, []DriftStep{{P: 1.5, Observations: 10}}, 1, 1); err == nil {
		t.Error("out-of-range p accepted")
	}
}

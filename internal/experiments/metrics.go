package experiments

import (
	"sync"
	"sync/atomic"

	"redundancy/internal/obs"
)

// Campaign and Monte-Carlo runs can take minutes at publication trial
// counts; these package-level counters let a driving process (cmd/figures
// -metrics-addr, or any embedder calling InstrumentMetrics) watch progress
// on /metrics instead of staring at a silent terminal. Uninstrumented, the
// hooks are a single atomic load and two predictable branches per trial —
// negligible next to a simulation trial.
var (
	expMu      sync.Mutex
	expMetrics atomic.Pointer[experimentMetrics]
)

type experimentMetrics struct {
	trials *obs.CounterVec // experiment
	rounds *obs.Counter
}

// InstrumentMetrics registers the experiment-progress metric families on r
// and directs all subsequent experiment runs in this process to them.
// Trials are counted as they finish (concurrently, from the parallel
// Monte-Carlo driver), so a scrape mid-campaign shows live progress.
func InstrumentMetrics(r *obs.Registry) {
	expMu.Lock()
	defer expMu.Unlock()
	expMetrics.Store(&experimentMetrics{
		trials: r.CounterVec("redundancy_experiment_trials_total",
			"Monte-Carlo trials completed, by experiment (crosscheck, appendix_a, latency).", "experiment"),
		rounds: r.Counter("redundancy_campaign_rounds_total",
			"Determined-adversary campaign rounds simulated."),
	})
}

// trialDone counts one finished Monte-Carlo trial of the named experiment.
func trialDone(experiment string) { trialsDone(experiment, 1) }

// trialsDone counts n finished Monte-Carlo trials of the named experiment.
func trialsDone(experiment string, n int) {
	if m := expMetrics.Load(); m != nil && n > 0 {
		m.trials.With(experiment).Add(uint64(n))
	}
}

// roundsDone counts n simulated campaign rounds.
func roundsDone(n int) {
	if m := expMetrics.Load(); m != nil && n > 0 {
		m.rounds.Add(uint64(n))
	}
}

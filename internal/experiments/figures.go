// Package experiments regenerates every table and figure of the paper's
// evaluation, plus the two ablations its prose calls for. Each experiment
// returns structured rows (so tests can assert the paper's claims) and can
// render itself as a text table via package report.
//
// Index (see DESIGN.md §4 for the full mapping):
//
//	Figure1      detection probability vs proportion controlled
//	Figure2      assignment-minimizing distributions vs Balanced
//	Figure3      redundancy factors vs ε
//	Figure4      per-multiplicity assignment comparison at N=10^6, ε=0.75
//	Section6     deployment (tail/ringer) worked examples
//	Section7     minimum-multiplicity extension table
//	AppendixA    two-phase simple redundancy collusion experiment
//	CrossCheck   Monte-Carlo validation of the closed forms
//	Proposition2 equality-augmented LP vs the Balanced distribution
package experiments

import (
	"fmt"
	"math"

	"redundancy/internal/dist"
	"redundancy/internal/report"
)

// Fig1Row is one point of Figure 1: the effective (worst-k) detection
// probability of each scheme when the adversary controls proportion P.
type Fig1Row struct {
	P        float64
	Balanced float64 // closed form 1-(1-ε)^{1-p} (≡ min over k; Prop. 3)
	S19      float64 // min_k P_{k,p} of the optimal 19-dimensional scheme at N=10^5
	S26      float64 // min_k P_{k,p} of the optimal 26-dimensional scheme at N=10^6
}

// Figure1 reproduces Figure 1 (ε = 1/2): detection probabilities for the
// Balanced distribution and for the optimal solutions to S_19 (N=100,000)
// and S_26 (N=1,000,000) — the first finite-dimensional systems at those
// sizes needing fewer than 1000 precomputed tasks — as the adversary's
// proportion p grows from 0 to 0.5.
func Figure1() ([]Fig1Row, error) {
	const eps = 0.5
	s19, err := dist.AssignmentMinimizing(100_000, eps, 19)
	if err != nil {
		return nil, err
	}
	s26, err := dist.AssignmentMinimizing(1_000_000, eps, 26)
	if err != nil {
		return nil, err
	}
	var rows []Fig1Row
	for p := 0.0; p <= 0.5+1e-9; p += 0.025 {
		m19, _ := dist.MinDetectionAt(s19, p, 0)
		m26, _ := dist.MinDetectionAt(s26, p, 0)
		rows = append(rows, Fig1Row{
			P:        p,
			Balanced: dist.BalancedDetectionAt(eps, p),
			S19:      m19,
			S26:      m26,
		})
	}
	return rows, nil
}

// Figure1Table renders Figure 1 as a table.
func Figure1Table() (*report.Table, error) {
	rows, err := Figure1()
	if err != nil {
		return nil, err
	}
	t := report.NewTable(
		"Figure 1: detection probability vs proportion controlled (ε = 1/2)",
		"p", "Balanced", "S_19 (N=1e5)", "S_26 (N=1e6)")
	for _, r := range rows {
		t.AddRow(r.P, r.Balanced, r.S19, r.S26)
	}
	return t, nil
}

// Fig2Row is one row of Figure 2's table.
type Fig2Row struct {
	Dim        int     // 0 marks the Balanced summary row
	Precompute float64 // tasks the supervisor must verify (top-multiplicity mass)
	Redundancy float64
	MinP005    float64 // min_k P_{k,p} at p = 0.05
	MinP010    float64
	MinP015    float64
}

// Figure2 reproduces Figure 2 (N = 100,000, ε = 1/2): for each dimension,
// the precomputing the optimal assignment-minimizing scheme requires, its
// redundancy factor, and its lowest detection probability at p = 0.05,
// 0.10, 0.15; the final row gives the Balanced distribution's figures.
func Figure2(dims []int) ([]Fig2Row, error) {
	const n, eps = 100_000, 0.5
	if len(dims) == 0 {
		for d := 3; d <= 26; d++ {
			dims = append(dims, d)
		}
	}
	var rows []Fig2Row
	for _, dim := range dims {
		d, err := dist.AssignmentMinimizing(n, eps, dim)
		if err != nil {
			return nil, fmt.Errorf("S_%d: %w", dim, err)
		}
		rows = append(rows, fig2Row(dim, d, eps))
	}
	bal, err := dist.Balanced(n, eps)
	if err != nil {
		return nil, err
	}
	r := fig2Row(0, bal, eps)
	r.Precompute = 0 // negligible by construction; §6 quantifies the ringers
	rows = append(rows, r)
	return rows, nil
}

func fig2Row(dim int, d *dist.Distribution, eps float64) Fig2Row {
	minAt := func(p float64) float64 {
		// Cap the scan at the paper's relevant tuple sizes: for Balanced
		// the profile is flat; for the LP schemes the minimum occurs at
		// small k anyway.
		maxK := d.Dimension()
		if dim == 0 && maxK > 30 {
			maxK = 30
		}
		m, _ := dist.MinDetectionAt(d, p, maxK)
		return m
	}
	return Fig2Row{
		Dim:        dim,
		Precompute: dist.PrecomputeRequired(d),
		Redundancy: d.RedundancyFactor(),
		MinP005:    minAt(0.05),
		MinP010:    minAt(0.10),
		MinP015:    minAt(0.15),
	}
}

// Figure2Table renders Figure 2.
func Figure2Table(dims []int) (*report.Table, error) {
	rows, err := Figure2(dims)
	if err != nil {
		return nil, err
	}
	t := report.NewTable(
		"Figure 2: assignment-minimizing distributions (N = 100,000, ε = 1/2)",
		"Dim", "Precompute", "Redundancy", "MinP p=.05", "MinP p=.10", "MinP p=.15")
	for _, r := range rows {
		label := fmt.Sprintf("%d", r.Dim)
		if r.Dim == 0 {
			label = "Bal."
		}
		t.AddRowStrings(label,
			fmt.Sprintf("%.0f", r.Precompute),
			fmt.Sprintf("%.4f", r.Redundancy),
			fmt.Sprintf("%.4f", r.MinP005),
			fmt.Sprintf("%.4f", r.MinP010),
			fmt.Sprintf("%.4f", r.MinP015))
	}
	return t, nil
}

// Fig3Row is one ε gridpoint of Figure 3.
type Fig3Row struct {
	Epsilon    float64
	Balanced   float64
	GS         float64
	Simple     float64
	LowerBound float64
}

// Figure3 reproduces Figure 3: redundancy factors of the Balanced and
// Golle–Stubblebine distributions versus ε, with simple redundancy and the
// Proposition-1 theoretical minimum for reference.
func Figure3() []Fig3Row {
	var rows []Fig3Row
	for e := 0.02; e < 0.99; e += 0.02 {
		rows = append(rows, Fig3Row{
			Epsilon:    e,
			Balanced:   dist.BalancedRedundancyFactor(e),
			GS:         dist.GolleStubblebineRedundancyFactor(e),
			Simple:     2,
			LowerBound: dist.LowerBoundRedundancyFactor(e),
		})
	}
	return rows
}

// Figure3Table renders Figure 3, annotating the Balanced-vs-simple
// crossover the figure shows at ε ≈ 0.797.
func Figure3Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Figure 3: redundancy factors (Balanced < simple for ε < %.4f)",
			dist.CrossoverEpsilon()),
		"ε", "Balanced", "Golle-Stubblebine", "Simple", "Lower bound")
	for _, r := range Figure3() {
		t.AddRow(r.Epsilon, r.Balanced, r.GS, r.Simple, r.LowerBound)
	}
	return t
}

// CrossoverEpsilon re-exports the Figure-3 crossover for the harness.
func CrossoverEpsilon() float64 { return dist.CrossoverEpsilon() }

// Fig4Row is one multiplicity class of Figure 4.
type Fig4Row struct {
	Multiplicity int
	Balanced     float64
	GS           float64
	Simple       float64
}

// Fig4Summary carries Figure 4's footer rows.
type Fig4Summary struct {
	Rows []Fig4Row
	// Totals (tasks including tail and ringers, and total assignments).
	BalancedTasks, GSTasks, SimpleTasks                   int
	BalancedAssignments, GSAssignments, SimpleAssignments int
	BalancedFactor, GSFactor, SimpleFactor                float64
	// Savings of Balanced in assignments.
	SavingsVsGS, SavingsVsSimple int
}

// Figure4 reproduces Figure 4 (N = 1,000,000, ε = 0.75): per-multiplicity
// task counts for the deployed (rounded, tail-partitioned, ringer-protected)
// Balanced and Golle–Stubblebine distributions next to simple redundancy.
func Figure4() (*Fig4Summary, error) {
	const n, eps = 1_000_000, 0.75
	balD, err := dist.Balanced(n, eps)
	if err != nil {
		return nil, err
	}
	gsD, err := dist.GolleStubblebineForThreshold(n, eps)
	if err != nil {
		return nil, err
	}
	balP, err := planFor(balD, eps)
	if err != nil {
		return nil, err
	}
	gsP, err := planFor(gsD, eps)
	if err != nil {
		return nil, err
	}
	bal := balP.Distribution()
	gs := gsP.Distribution()
	simple := dist.Simple(n)

	dim := bal.Dimension()
	if d := gs.Dimension(); d > dim {
		dim = d
	}
	s := &Fig4Summary{}
	for i := 1; i <= dim; i++ {
		s.Rows = append(s.Rows, Fig4Row{
			Multiplicity: i,
			Balanced:     bal.Count(i),
			GS:           gs.Count(i),
			Simple:       simple.Count(i),
		})
	}
	s.BalancedTasks = int(math.Round(bal.N()))
	s.GSTasks = int(math.Round(gs.N()))
	s.SimpleTasks = n
	s.BalancedAssignments = balP.TotalAssignments()
	s.GSAssignments = gsP.TotalAssignments()
	s.SimpleAssignments = 2 * n
	s.BalancedFactor = float64(s.BalancedAssignments) / n
	s.GSFactor = float64(s.GSAssignments) / n
	s.SimpleFactor = 2
	s.SavingsVsGS = s.GSAssignments - s.BalancedAssignments
	s.SavingsVsSimple = s.SimpleAssignments - s.BalancedAssignments
	return s, nil
}

// Figure4Table renders Figure 4.
func Figure4Table() (*report.Table, error) {
	s, err := Figure4()
	if err != nil {
		return nil, err
	}
	t := report.NewTable(
		"Figure 4: task assignments, incl. tail partition and ringers (N = 10^6, ε = 0.75)",
		"Multiplicity", "Balanced", "Golle-Stubblebine", "Simple")
	for _, r := range s.Rows {
		t.AddRowStrings(fmt.Sprintf("%d", r.Multiplicity),
			fmt.Sprintf("%.0f", r.Balanced),
			fmt.Sprintf("%.0f", r.GS),
			fmt.Sprintf("%.0f", r.Simple))
	}
	t.AddRowStrings("tasks",
		fmt.Sprintf("%d", s.BalancedTasks), fmt.Sprintf("%d", s.GSTasks),
		fmt.Sprintf("%d", s.SimpleTasks))
	t.AddRowStrings("assignments",
		fmt.Sprintf("%d", s.BalancedAssignments), fmt.Sprintf("%d", s.GSAssignments),
		fmt.Sprintf("%d", s.SimpleAssignments))
	t.AddRowStrings("redund. factor",
		fmt.Sprintf("%.4f", s.BalancedFactor), fmt.Sprintf("%.4f", s.GSFactor),
		fmt.Sprintf("%.4f", s.SimpleFactor))
	return t, nil
}

package experiments

import (
	"math"
	"strings"
	"testing"

	"redundancy/internal/dist"
	"redundancy/internal/numeric"
)

func TestFigure1ShapeMatchesPaper(t *testing.T) {
	rows, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 15 {
		t.Fatalf("only %d gridpoints", len(rows))
	}
	// At p = 0 all three schemes sit at ε = 1/2.
	first := rows[0]
	for _, v := range []float64{first.Balanced, first.S19, first.S26} {
		if math.Abs(v-0.5) > 1e-3 {
			t.Errorf("p=0 detection %v, want 0.5", v)
		}
	}
	// All series decay with p; the Balanced curve dominates both LP
	// schemes everywhere beyond small p, and the higher-dimensional S_26
	// collapses faster than S_19 — the visual content of Figure 1.
	for i := 1; i < len(rows); i++ {
		r, prev := rows[i], rows[i-1]
		if r.Balanced > prev.Balanced+1e-12 || r.S19 > prev.S19+1e-9 || r.S26 > prev.S26+1e-9 {
			t.Errorf("non-monotone at p=%v", r.P)
		}
		if r.P >= 0.05 {
			if r.Balanced <= r.S19 || r.Balanced <= r.S26 {
				t.Errorf("p=%v: Balanced %v should dominate S19 %v and S26 %v",
					r.P, r.Balanced, r.S19, r.S26)
			}
			if r.S19 < r.S26 {
				t.Errorf("p=%v: S_19 (%v) should hold up better than S_26 (%v)",
					r.P, r.S19, r.S26)
			}
		}
	}
	// Closed form at the right edge: 1-(1/2)^{1-0.5} ≈ 0.2929.
	last := rows[len(rows)-1]
	if math.Abs(last.P-0.5) > 1e-9 || math.Abs(last.Balanced-(1-math.Sqrt(0.5))) > 1e-9 {
		t.Errorf("p=0.5 Balanced %v, want 1-sqrt(1/2)", last.Balanced)
	}
}

func TestFigure2MatchesPaperNumbers(t *testing.T) {
	rows, err := Figure2(nil)
	if err != nil {
		t.Fatal(err)
	}
	byDim := map[int]Fig2Row{}
	for _, r := range rows {
		byDim[r.Dim] = r
	}
	// §3.2's explicitly quoted exception: precomputing rises from 602
	// (S_5) to 1923 (S_6) — the garbled source prints "923".
	if math.Abs(byDim[5].Precompute-602) > 2 {
		t.Errorf("S_5 precompute = %v, paper quotes 602", byDim[5].Precompute)
	}
	if math.Abs(byDim[6].Precompute-1923) > 2 {
		t.Errorf("S_6 precompute = %v, paper quotes 1923", byDim[6].Precompute)
	}
	// §3.2's second exception: the redundancy factor increases from S_3
	// to S_4.
	if byDim[4].Redundancy <= byDim[3].Redundancy {
		t.Errorf("S_3→S_4 factor should increase: %v → %v",
			byDim[3].Redundancy, byDim[4].Redundancy)
	}
	// Global trends: from S_6 onward precompute and redundancy decrease
	// monotonically while the worst-case p=0.15 detection collapses.
	for d := 7; d <= 26; d++ {
		if byDim[d].Precompute >= byDim[d-1].Precompute {
			t.Errorf("precompute rose at S_%d", d)
		}
		if byDim[d].Redundancy >= byDim[d-1].Redundancy+1e-12 {
			t.Errorf("redundancy rose at S_%d", d)
		}
		if byDim[d].MinP015 >= byDim[d-1].MinP015+1e-9 {
			t.Errorf("p=0.15 detection rose at S_%d", d)
		}
	}
	// The Balanced summary row: factor ln2/0.5 ≈ 1.3863, detection per
	// Proposition 3, no meaningful precompute.
	bal := byDim[0]
	if !numeric.AlmostEqual(bal.Redundancy, dist.BalancedRedundancyFactor(0.5), 1e-6) {
		t.Errorf("Balanced factor %v", bal.Redundancy)
	}
	for _, c := range []struct{ got, p float64 }{
		{bal.MinP005, 0.05}, {bal.MinP010, 0.10}, {bal.MinP015, 0.15},
	} {
		if !numeric.AlmostEqual(c.got, dist.BalancedDetectionAt(0.5, c.p), 1e-4) {
			t.Errorf("Balanced min detection at p=%v: %v", c.p, c.got)
		}
	}
	// And the §5 punchline: at p=0.15 Balanced's worst case (≈0.445)
	// towers over every S_m beyond dimension 6 (≤ 0.35).
	for d := 6; d <= 26; d++ {
		if byDim[d].MinP015 >= bal.MinP015 {
			t.Errorf("S_%d worst case %v not below Balanced %v",
				d, byDim[d].MinP015, bal.MinP015)
		}
	}
}

func TestFigure2CaptionThresholdAtOneMillion(t *testing.T) {
	// Figure 1's caption: S_26 is the first system at N = 1,000,000 whose
	// precompute drops below 1000 tasks.
	prev := math.Inf(1)
	for dim := 20; dim <= 26; dim++ {
		d, err := dist.AssignmentMinimizing(1_000_000, 0.5, dim)
		if err != nil {
			t.Fatal(err)
		}
		pc := dist.PrecomputeRequired(d)
		if dim < 26 && pc < 1000 {
			t.Errorf("S_%d precompute %v already below 1000", dim, pc)
		}
		if dim == 26 && pc >= 1000 {
			t.Errorf("S_26 precompute %v not below 1000", pc)
		}
		if pc >= prev {
			t.Errorf("precompute rose at S_%d", dim)
		}
		prev = pc
	}
}

func TestFigure3OrderingAndCrossover(t *testing.T) {
	rows := Figure3()
	if len(rows) < 40 {
		t.Fatalf("grid too coarse: %d", len(rows))
	}
	for _, r := range rows {
		if !(r.LowerBound < r.Balanced && r.Balanced < r.GS) {
			t.Errorf("ε=%v: ordering violated (%v, %v, %v)",
				r.Epsilon, r.LowerBound, r.Balanced, r.GS)
		}
		if r.Simple != 2 {
			t.Errorf("simple redundancy row wrong")
		}
		below := r.Epsilon < CrossoverEpsilon()
		if below != (r.Balanced < 2) {
			t.Errorf("ε=%v: crossover misplaced (Balanced=%v)", r.Epsilon, r.Balanced)
		}
	}
	if math.Abs(CrossoverEpsilon()-0.7968) > 0.001 {
		t.Errorf("crossover = %v", CrossoverEpsilon())
	}
}

func TestFigure4MatchesPaperClaims(t *testing.T) {
	s, err := Figure4()
	if err != nil {
		t.Fatal(err)
	}
	// Every scheme covers exactly one million tasks (ringers excluded
	// from the task count in the paper's table footer are included in
	// ours; allow their tiny surplus).
	if s.SimpleTasks != 1_000_000 {
		t.Errorf("simple tasks = %d", s.SimpleTasks)
	}
	if s.BalancedTasks < 1_000_000 || s.BalancedTasks > 1_000_050 {
		t.Errorf("balanced tasks = %d", s.BalancedTasks)
	}
	if s.GSTasks < 1_000_000 || s.GSTasks > 1_000_050 {
		t.Errorf("gs tasks = %d", s.GSTasks)
	}
	// §4: Balanced saves more than 50,000 assignments over both.
	if s.SavingsVsGS <= 50_000 {
		t.Errorf("savings vs GS = %d, paper promises > 50,000", s.SavingsVsGS)
	}
	if s.SavingsVsSimple <= 50_000 {
		t.Errorf("savings vs simple = %d, paper promises > 50,000", s.SavingsVsSimple)
	}
	// Deployed factors stay close to theory: ln4/0.75 ≈ 1.848 and
	// 1/sqrt(0.25) = 2.
	if math.Abs(s.BalancedFactor-dist.BalancedRedundancyFactor(0.75)) > 0.001 {
		t.Errorf("balanced factor %v", s.BalancedFactor)
	}
	if math.Abs(s.GSFactor-2) > 0.001 {
		t.Errorf("gs factor %v", s.GSFactor)
	}
	// Class-by-class: Balanced front-loads multiplicity 1-2 less heavily
	// than GS at multiplicity 1 (geometric vs Poisson shapes).
	if len(s.Rows) < 10 {
		t.Fatalf("only %d classes", len(s.Rows))
	}
	if s.Rows[0].GS <= s.Rows[0].Balanced {
		t.Errorf("GS should assign more single-copy tasks (%v vs %v)",
			s.Rows[0].GS, s.Rows[0].Balanced)
	}
	if s.Rows[1].Simple != 1_000_000 || s.Rows[0].Simple != 0 {
		t.Error("simple redundancy column wrong")
	}
}

func TestSection6RowsMatchWorkedExamples(t *testing.T) {
	rows, err := Section6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	extreme, typical := rows[0], rows[1]
	if extreme.IF != 20 {
		t.Errorf("extreme i_f = %d, paper says 20", extreme.IF)
	}
	if extreme.TailAssignments < 100 || extreme.TailAssignments > 400 {
		t.Errorf("extreme tail assignments = %d, paper quotes ≈240", extreme.TailAssignments)
	}
	if typical.IF != 11 {
		t.Errorf("typical i_f = %d, expected 11", typical.IF)
	}
	if typical.Ringers > 4 {
		t.Errorf("typical ringers = %d, paper derives 2", typical.Ringers)
	}
	for _, r := range rows {
		if r.PrecomputeFraction > 1e-4 {
			t.Errorf("N=%d: precompute fraction %v not negligible", r.N, r.PrecomputeFraction)
		}
	}
}

func TestSection7RowsMatchPaper(t *testing.T) {
	rows := Section7()
	want := []float64{dist.BalancedRedundancyFactor(0.5), 2.2589, 3.1924, 4.1520, 5.1256}
	for i, r := range rows {
		if math.Abs(r.Redundancy-want[i]) > 0.001 {
			t.Errorf("m=%d: factor %v, want ≈%v", r.MinMultiplicity, r.Redundancy, want[i])
		}
	}
	// §7's worked example: m=2 on N=100,000 costs ≈25,900 extra
	// assignments over simple redundancy (≈13%).
	if math.Abs(rows[1].ExtraVsSimple-25_900) > 150 {
		t.Errorf("m=2 extra = %v", rows[1].ExtraVsSimple)
	}
}

func TestAppendixAValidatesClaim(t *testing.T) {
	rows, err := AppendixA(120, 99)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// The p²N approximation must sit inside (a slightly padded) CI.
		pad := 0.05*r.Expected + 0.05
		if r.Expected < r.CILo-pad || r.Expected > r.CIHi+pad {
			t.Errorf("N=%d p=%v: expected %v outside CI [%v, %v]",
				r.N, r.P, r.Expected, r.CILo, r.CIHi)
		}
		// At and above the 1/sqrt(N) threshold a free cheat is likely.
		if r.P >= dist.SqrtNClaimThreshold(float64(r.N)) && r.FreeCheatRate < 0.5 {
			t.Errorf("N=%d p=%v: free-cheat rate %v below 1/2 at threshold",
				r.N, r.P, r.FreeCheatRate)
		}
	}
	if _, err := AppendixA(1, 1); err == nil {
		t.Error("trials=1 accepted")
	}
}

func TestCrossCheckAgrees(t *testing.T) {
	rows, err := CrossCheck(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.Cheats < 50 {
			continue // too little data to judge
		}
		if !r.Agree {
			t.Errorf("%s k=%d p=%v: closed form %v outside CI [%v, %v] (n=%d)",
				r.Scheme, r.K, r.P, r.ClosedForm, r.WilsonLo, r.WilsonHi, r.Cheats)
		}
	}
	if _, err := CrossCheck(0, 1); err == nil {
		t.Error("trials=0 accepted")
	}
}

func TestProposition2Ablation(t *testing.T) {
	res, err := Proposition2(0) // default dimension
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.LPFactor-res.BalancedFactor) > 0.005 {
		t.Errorf("factors differ: LP %v vs Balanced %v", res.LPFactor, res.BalancedFactor)
	}
	if res.MaxProportionDelta > 0.01 {
		t.Errorf("max per-class proportion delta %v too large", res.MaxProportionDelta)
	}
	if len(res.Rows) < 10 {
		t.Errorf("only %d rows", len(res.Rows))
	}
}

func TestTablesRender(t *testing.T) {
	type tab interface{ String() string }
	mk := []func() (tab, error){
		func() (tab, error) { return Figure1Table() },
		func() (tab, error) { return Figure2Table([]int{3, 4, 5, 6, 19, 26}) },
		func() (tab, error) { return Figure3Table(), nil },
		func() (tab, error) { return Figure4Table() },
		func() (tab, error) { return Section6Table() },
		func() (tab, error) { return Section7Table(), nil },
		func() (tab, error) { return AppendixATable(10, 1) },
		func() (tab, error) { return CrossCheckTable(1, 1) },
		func() (tab, error) { return Proposition2Table(0) },
	}
	for i, f := range mk {
		tb, err := f()
		if err != nil {
			t.Fatalf("table %d: %v", i, err)
		}
		s := tb.String()
		if len(s) < 50 || !strings.Contains(s, "\n") {
			t.Errorf("table %d renders suspiciously small: %q", i, s)
		}
	}
}

func TestDetectionLatency(t *testing.T) {
	rows, err := DetectionLatency(4000, 200, 5, 31)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		switch {
		case r.Scheme == "simple" && r.Strategy == "at-least-2":
			// The motivating failure: the cautious pair attacker under
			// simple redundancy is never exposed.
			if r.DetectionRate != 0 {
				t.Errorf("pair attacker exposed at rate %v under simple redundancy", r.DetectionRate)
			}
		default:
			// Gamblers and Balanced-scheme attackers are exposed in every
			// run, very early.
			if r.DetectionRate != 1 {
				t.Errorf("%s/%s p=%v: exposure rate %v, want 1",
					r.Scheme, r.Strategy, r.P, r.DetectionRate)
			}
			// Exposure arrives within the first tenth of the run (the
			// first detectable cheat must fully adjudicate — all copies
			// returned — which takes a while at small p).
			if r.MeanFractionBefore > 0.10 {
				t.Errorf("%s/%s p=%v: %.2f%% of run before exposure — too slow",
					r.Scheme, r.Strategy, r.P, 100*r.MeanFractionBefore)
			}
		}
	}
	if _, err := DetectionLatency(100, 10, 0, 1); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestDetectionLatencyTableRenders(t *testing.T) {
	tb, err := DetectionLatencyTable(2000, 100, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 6 {
		t.Errorf("table rows = %d", tb.Rows())
	}
}

func TestCampaignExperiment(t *testing.T) {
	rows, err := CampaignExperiment(3000, 150, 10, 13)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]CampaignRow{}
	for _, r := range rows {
		byKey[r.Scheme+"/"+r.Strategy] = r
	}
	// The blatant coalition burns out quickly under Balanced.
	if r := byKey["balanced/always"]; r.Neutralized == 0 || r.Neutralized > 8 {
		t.Errorf("balanced/always neutralized at %d", r.Neutralized)
	}
	// The cautious pair attacker survives the whole horizon under simple
	// redundancy and does damage every round.
	if r := byKey["simple/at-least-2"]; r.Neutralized != 0 || r.TotalWrong == 0 {
		t.Errorf("simple/at-least-2: neutralized=%d wrong=%d", r.Neutralized, r.TotalWrong)
	}
	// Under Balanced the cautious attacker's damage is tiny compared to
	// what she manages under simple redundancy.
	bal, simp := byKey["balanced/at-least-2"], byKey["simple/at-least-2"]
	if bal.TotalWrong*2 >= simp.TotalWrong {
		t.Errorf("balanced cautious damage %d not well below simple %d",
			bal.TotalWrong, simp.TotalWrong)
	}
}

func TestCampaignTableRenders(t *testing.T) {
	tb, err := CampaignTable(2000, 100, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 4 || !strings.Contains(tb.String(), "never") {
		t.Errorf("table:\n%s", tb.String())
	}
}

package experiments

import (
	"fmt"

	"redundancy/internal/dist"
	"redundancy/internal/plan"
	"redundancy/internal/report"
)

// planFor builds the §6 deployment plan for a theoretical distribution.
func planFor(d *dist.Distribution, eps float64) (*plan.Plan, error) {
	return plan.FromDistribution(d, eps)
}

// Sec6Row summarizes one §6 worked example.
type Sec6Row struct {
	N                  int
	Epsilon            float64
	IF                 int // i_f, the tail multiplicity
	TailTasks          int
	TailAssignments    int
	Ringers            int
	RingerAssignments  int
	TotalAssignments   int
	PrecomputeFraction float64
}

// Section6 reproduces the §6 deployment arithmetic for the paper's two
// worked examples — the extreme (N=10^7, ε=0.99) and the typical (N=10^6,
// ε=0.75) configuration — plus any extra (n, ε) pairs supplied.
func Section6(extra ...[2]float64) ([]Sec6Row, error) {
	cases := [][2]float64{{1e7, 0.99}, {1e6, 0.75}}
	cases = append(cases, extra...)
	var rows []Sec6Row
	for _, c := range cases {
		p, err := plan.Balanced(int(c[0]), c[1])
		if err != nil {
			return nil, err
		}
		rows = append(rows, Sec6Row{
			N:                  p.N,
			Epsilon:            c[1],
			IF:                 p.TailMultiplicity,
			TailTasks:          p.TailTasks,
			TailAssignments:    p.TailTasks * p.TailMultiplicity,
			Ringers:            p.Ringers,
			RingerAssignments:  p.PrecomputedAssignments(),
			TotalAssignments:   p.TotalAssignments(),
			PrecomputeFraction: float64(p.PrecomputedAssignments()) / float64(p.TotalAssignments()),
		})
	}
	return rows, nil
}

// Section6Table renders the §6 examples.
func Section6Table() (*report.Table, error) {
	rows, err := Section6()
	if err != nil {
		return nil, err
	}
	t := report.NewTable(
		"Section 6: deployed Balanced plans (rounding, tail partition, ringers)",
		"N", "ε", "i_f", "Tail tasks", "Tail asg.", "Ringers", "Ringer asg.",
		"Total asg.", "Precompute frac.")
	for _, r := range rows {
		t.AddRowStrings(
			fmt.Sprintf("%d", r.N), fmt.Sprintf("%.2f", r.Epsilon),
			fmt.Sprintf("%d", r.IF), fmt.Sprintf("%d", r.TailTasks),
			fmt.Sprintf("%d", r.TailAssignments), fmt.Sprintf("%d", r.Ringers),
			fmt.Sprintf("%d", r.RingerAssignments), fmt.Sprintf("%d", r.TotalAssignments),
			fmt.Sprintf("%.2e", r.PrecomputeFraction))
	}
	return t, nil
}

// Sec7Row is one row of the §7 minimum-multiplicity table.
type Sec7Row struct {
	MinMultiplicity int
	Redundancy      float64
	// ExtraVsSimple is the extra assignment count over simple redundancy
	// on an N = 100,000 computation (§7's worked example for m = 2).
	ExtraVsSimple float64
}

// Section7 reproduces the §7 extension table at ε = 1/2: redundancy factors
// of the minimum-multiplicity-m Balanced distributions, m = 1..5.
func Section7() []Sec7Row {
	const n, eps = 100_000, 0.5
	var rows []Sec7Row
	for m := 1; m <= 5; m++ {
		f := dist.MinMultiplicityRedundancyFactor(eps, m)
		rows = append(rows, Sec7Row{
			MinMultiplicity: m,
			Redundancy:      f,
			ExtraVsSimple:   n*f - 2*n,
		})
	}
	return rows
}

// Section7Table renders the §7 table.
func Section7Table() *report.Table {
	t := report.NewTable(
		"Section 7: minimum-multiplicity extension (ε = 1/2, extra cost on N = 100,000)",
		"Min multiplicity", "Redundancy factor", "Assignments vs simple redundancy")
	for _, r := range Section7() {
		extra := fmt.Sprintf("%+.0f", r.ExtraVsSimple)
		t.AddRowStrings(fmt.Sprintf("%d", r.MinMultiplicity),
			fmt.Sprintf("%.4f", r.Redundancy), extra)
	}
	return t
}

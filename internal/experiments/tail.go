package experiments

import (
	"fmt"
	"math"

	"redundancy/internal/dist"
	"redundancy/internal/plan"
	"redundancy/internal/report"
	"redundancy/internal/sim"
)

// The tail-latency sweep (ROADMAP item 2): the completion-time
// distribution as a function of the redundancy factor. Each cell runs the
// allocation-free tail engine (internal/sim.TailEngine) over Monte-Carlo
// trials of one scheme's integer plan on a heterogeneous straggler-mixed
// fleet, with the speculative-reissue tier off and on, and reduces the
// per-task certification times into one quantile sketch. Under full-quorum
// verification a task certifies when its LAST copy returns, so extra
// redundancy buys detection probability at a direct tail-latency price —
// the sweep quantifies that price per unit of redundancy.

// TailSweepConfig parameterizes TailSweep. The zero value is not runnable;
// start from DefaultTailSweepConfig.
type TailSweepConfig struct {
	// Tasks is the per-trial task count N of every scheme's plan.
	Tasks int
	// Epsilon is the detection threshold the balanced/GS plans target.
	Epsilon float64
	// Participants is the worker fleet size.
	Participants int
	// Trials is the Monte-Carlo trial count per (scheme, speculation) cell.
	Trials int
	// Workers bounds the trial fan-out (0 = all cores). The report is
	// byte-identical for any value.
	Workers int
	// Seed roots every trial's RNG stream.
	Seed uint64

	// Fleet model, matching sim.TailConfig.
	SpeedBase      float64
	SpeedJitter    float64
	SpeedSpread    float64
	StragglerP     float64
	StragglerDelay float64
	SpeculatePct   float64
}

// DefaultTailSweepConfig returns the sweep configuration the experiments
// and BENCH artifacts use: a moderately heterogeneous fleet where 2% of
// copies straggle for 20x the base service time — enough mass in the tail
// that redundancy and speculation both move p99/p999 visibly.
func DefaultTailSweepConfig(tasks int) TailSweepConfig {
	return TailSweepConfig{
		Tasks:          tasks,
		Epsilon:        0.5,
		Participants:   256,
		Trials:         8,
		Workers:        0,
		Seed:           2005,
		SpeedBase:      1.0,
		SpeedJitter:    0.5,
		SpeedSpread:    0.5,
		StragglerP:     0.02,
		StragglerDelay: 20,
		SpeculatePct:   0.95,
	}
}

// TailRow is one (scheme, speculation) cell of the sweep.
type TailRow struct {
	Scheme    string
	Speculate bool
	// RedundancyFactor is the realized copies-per-task of the integer plan
	// (ringers included — they are work the supervisor pays for).
	RedundancyFactor float64
	Copies           int // per trial
	// Certification-time quantiles over all tasks of all trials.
	P50  float64
	P90  float64
	P99  float64
	P999 float64
	// P99PerRF and P999PerRF divide the tail quantiles by the redundancy
	// factor: latency paid per unit of redundancy spend, the sweep's
	// comparison metric across schemes.
	P99PerRF     float64
	P999PerRF    float64
	MeanMakespan float64
	Completions  int
	SpecIssued   int
	SpecWins     int
	SpecWasted   int
}

// TailSweepReport is the JSON artifact of one sweep. All floats are
// rounded to 6 decimals so the marshaled report is a stable golden.
type TailSweepReport struct {
	Tasks        int
	Epsilon      float64
	Participants int
	Trials       int
	Seed         uint64
	Rows         []TailRow
}

func roundTail6(x float64) float64 {
	if math.IsInf(x, 0) || math.IsNaN(x) {
		return x
	}
	return math.Round(x*1e6) / 1e6
}

// tailClasses flattens a deployable integer plan into the tail engine's
// multiplicity histogram: the per-class counts, the tail partition, and
// the ringers (extra real work racing through the same fleet).
func tailClasses(p *plan.Plan) []sim.TailClass {
	var out []sim.TailClass
	for i, c := range p.Counts {
		if c > 0 {
			out = append(out, sim.TailClass{Copies: i + 1, Tasks: c})
		}
	}
	if p.TailTasks > 0 {
		out = append(out, sim.TailClass{Copies: p.TailMultiplicity, Tasks: p.TailTasks})
	}
	if p.Ringers > 0 {
		out = append(out, sim.TailClass{Copies: p.RingerMultiplicity, Tasks: p.Ringers})
	}
	return out
}

// tailSchemes builds the sweep's three schemes at (n, eps): simple
// redundancy (everything in duplicate), the paper's Balanced scheme, and
// Golle-Stubblebine.
func tailSchemes(n int, eps float64) ([]string, [][]sim.TailClass, []float64, error) {
	build := func(d *dist.Distribution) (*plan.Plan, error) {
		return plan.FromDistribution(d, eps)
	}
	balD, err := dist.Balanced(float64(n), eps)
	if err != nil {
		return nil, nil, nil, err
	}
	gsD, err := dist.GolleStubblebineForThreshold(float64(n), eps)
	if err != nil {
		return nil, nil, nil, err
	}
	names := []string{"simple", "balanced", "gs"}
	dists := []*dist.Distribution{dist.Simple(float64(n)), balD, gsD}
	classes := make([][]sim.TailClass, len(dists))
	rf := make([]float64, len(dists))
	for i, d := range dists {
		p, err := build(d)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("experiments: %s plan: %w", names[i], err)
		}
		classes[i] = tailClasses(p)
		rf[i] = float64(p.TotalAssignments()) / float64(n)
	}
	return names, classes, rf, nil
}

// TailSweep runs the full scheme x speculation grid and reduces each cell
// over cfg.Trials trials. Rows come out in a fixed order (simple,
// balanced, gs; speculation off then on) and every number is a function of
// (cfg) alone — the worker count never leaks into the report.
func TailSweep(cfg TailSweepConfig) (*TailSweepReport, error) {
	if cfg.Tasks < 1 {
		return nil, fmt.Errorf("experiments: tail sweep needs at least 1 task")
	}
	if cfg.Trials < 1 {
		return nil, fmt.Errorf("experiments: tail sweep needs at least 1 trial")
	}
	names, classes, rf, err := tailSchemes(cfg.Tasks, cfg.Epsilon)
	if err != nil {
		return nil, err
	}
	out := &TailSweepReport{
		Tasks:        cfg.Tasks,
		Epsilon:      cfg.Epsilon,
		Participants: cfg.Participants,
		Trials:       cfg.Trials,
		Seed:         cfg.Seed,
	}
	for i, name := range names {
		for _, spec := range []bool{false, true} {
			tc := sim.TailConfig{
				Classes:        classes[i],
				Participants:   cfg.Participants,
				SpeedBase:      cfg.SpeedBase,
				SpeedJitter:    cfg.SpeedJitter,
				SpeedSpread:    cfg.SpeedSpread,
				StragglerP:     cfg.StragglerP,
				StragglerDelay: cfg.StragglerDelay,
				Speculate:      spec,
				SpeculatePct:   cfg.SpeculatePct,
				Seed:           cfg.Seed,
			}
			res, err := sim.RunTailTrials(tc, cfg.Trials, cfg.Workers)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s tail trials: %w", name, err)
			}
			trialsDone("tail", cfg.Trials)
			row := TailRow{
				Scheme:           name,
				Speculate:        spec,
				RedundancyFactor: roundTail6(rf[i]),
				Copies:           res.Copies,
				P50:              roundTail6(res.Latency.Quantile(0.50)),
				P90:              roundTail6(res.Latency.Quantile(0.90)),
				P99:              roundTail6(res.Latency.Quantile(0.99)),
				P999:             roundTail6(res.Latency.Quantile(0.999)),
				MeanMakespan:     roundTail6(res.MeanMakespan()),
				Completions:      res.Completions,
				SpecIssued:       res.SpecIssued,
				SpecWins:         res.SpecWins,
				SpecWasted:       res.SpecWasted,
			}
			row.P99PerRF = roundTail6(row.P99 / rf[i])
			row.P999PerRF = roundTail6(row.P999 / rf[i])
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// Table renders the sweep as the ROADMAP-item-2 comparison table.
func (r *TailSweepReport) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Tail latency vs redundancy factor (N=%d, ε=%g, %d participants, %d trials)",
			r.Tasks, r.Epsilon, r.Participants, r.Trials),
		"Scheme", "Spec", "RF", "p50", "p90", "p99", "p999", "p99/RF", "p999/RF",
		"Makespan", "Clones", "Wins")
	for _, row := range r.Rows {
		spec := "off"
		if row.Speculate {
			spec = "on"
		}
		t.AddRowStrings(row.Scheme, spec,
			fmt.Sprintf("%.3f", row.RedundancyFactor),
			fmt.Sprintf("%.2f", row.P50), fmt.Sprintf("%.2f", row.P90),
			fmt.Sprintf("%.2f", row.P99), fmt.Sprintf("%.2f", row.P999),
			fmt.Sprintf("%.2f", row.P99PerRF), fmt.Sprintf("%.2f", row.P999PerRF),
			fmt.Sprintf("%.2f", row.MeanMakespan),
			fmt.Sprintf("%d", row.SpecIssued), fmt.Sprintf("%d", row.SpecWins))
	}
	return t
}

// TailSweepTable runs the default sweep at the given size and renders it.
func TailSweepTable(tasks, trials int, seed uint64) (*report.Table, error) {
	cfg := DefaultTailSweepConfig(tasks)
	if trials > 0 {
		cfg.Trials = trials
	}
	cfg.Seed = seed
	rep, err := TailSweep(cfg)
	if err != nil {
		return nil, err
	}
	return rep.Table(), nil
}

package ring

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func mustRing(t *testing.T, cfg Config, members ...string) *Ring {
	t.Helper()
	r, err := New(cfg, members...)
	if err != nil {
		t.Fatalf("New(%+v, %v): %v", cfg, members, err)
	}
	return r
}

func TestRingValidation(t *testing.T) {
	if _, err := New(Config{VNodes: -1}, "a"); err == nil {
		t.Fatal("negative VNodes accepted")
	}
	if _, err := New(Config{VNodes: MaxVNodes + 1}, "a"); err == nil {
		t.Fatal("oversized VNodes accepted")
	}
	r := mustRing(t, Config{}, "a")
	if r.VNodes() != DefaultVNodes {
		t.Fatalf("VNodes = %d, want default %d", r.VNodes(), DefaultVNodes)
	}
}

func TestRingEmptyAndDuplicates(t *testing.T) {
	empty := mustRing(t, Config{Seed: 1})
	if m, ok := empty.Lookup("anything"); ok || m != "" {
		t.Fatalf("empty ring Lookup = (%q, %v), want (\"\", false)", m, ok)
	}
	if m, ok := empty.LookupUint64(42); ok || m != "" {
		t.Fatalf("empty ring LookupUint64 = (%q, %v), want (\"\", false)", m, ok)
	}
	dup := mustRing(t, Config{Seed: 1}, "a", "b", "a", "a", "b")
	if dup.Len() != 2 {
		t.Fatalf("deduplicated Len = %d, want 2", dup.Len())
	}
	plain := mustRing(t, Config{Seed: 1}, "b", "a")
	for k := 0; k < 1000; k++ {
		d, _ := dup.LookupUint64(uint64(k))
		p, _ := plain.LookupUint64(uint64(k))
		if d != p {
			t.Fatalf("key %d: duplicated-member ring routes to %q, plain to %q", k, d, p)
		}
	}
}

// TestRingDeterminism: placement is a pure function of (Config, member
// set) — member order must not matter, and rebuilding must agree.
func TestRingDeterminism(t *testing.T) {
	cfg := Config{VNodes: 64, Seed: 99}
	a := mustRing(t, cfg, "s0", "s1", "s2", "s3")
	b := mustRing(t, cfg, "s3", "s1", "s0", "s2")
	for k := 0; k < 5000; k++ {
		ma, _ := a.LookupUint64(uint64(k))
		mb, _ := b.LookupUint64(uint64(k))
		if ma != mb {
			t.Fatalf("key %d: order-dependent placement %q vs %q", k, ma, mb)
		}
	}
	x, _ := a.Lookup("worker-7")
	y, _ := b.Lookup("worker-7")
	if x != y || x == "" {
		t.Fatalf("string lookup differs: %q vs %q", x, y)
	}
}

// TestRingBalance: at >=128 vnodes the per-member key share stays within
// bound — no member owns more than 1.6x the smallest share over a large
// uniform key population, and every share is within 25% of the mean.
func TestRingBalance(t *testing.T) {
	for _, members := range []int{2, 4, 8} {
		names := make([]string, members)
		for i := range names {
			names[i] = fmt.Sprintf("shard-%d", i)
		}
		r := mustRing(t, Config{VNodes: 128, Seed: 7}, names...)
		counts := make(map[string]int)
		const keys = 200000
		for k := 0; k < keys; k++ {
			m, ok := r.LookupUint64(uint64(k))
			if !ok {
				t.Fatal("lookup failed on populated ring")
			}
			counts[m]++
		}
		min, max := keys, 0
		for _, n := range names {
			c := counts[n]
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if min == 0 {
			t.Fatalf("%d members: a member received zero keys", members)
		}
		if ratio := float64(max) / float64(min); ratio > 1.6 {
			t.Errorf("%d members: max/min share %.3f exceeds 1.6 (max %d, min %d)",
				members, ratio, max, min)
		}
		mean := float64(keys) / float64(members)
		for _, n := range names {
			if dev := (float64(counts[n]) - mean) / mean; dev > 0.25 || dev < -0.25 {
				t.Errorf("%d members: %s share deviates %.1f%% from the mean (>25%%)",
					members, n, dev*100)
			}
		}
	}
}

// TestRingMinimalDisruption: a join moves keys only toward the joined
// member; a leave moves keys only away from the departed member. Every
// other key keeps its owner.
func TestRingMinimalDisruption(t *testing.T) {
	cfg := Config{VNodes: 128, Seed: 11}
	base := mustRing(t, cfg, "s0", "s1", "s2")
	joined, err := base.With("s3")
	if err != nil {
		t.Fatal(err)
	}
	const keys = 50000
	moved := 0
	for k := 0; k < keys; k++ {
		before, _ := base.LookupUint64(uint64(k))
		after, _ := joined.LookupUint64(uint64(k))
		if before != after {
			moved++
			if after != "s3" {
				t.Fatalf("join: key %d moved %q -> %q, not to the joined member", k, before, after)
			}
		}
	}
	if moved == 0 {
		t.Fatal("join moved no keys at all")
	}
	// Roughly 1/4 of the space should move to the 4th member; allow wide
	// slack but catch a rebalance that reshuffles everything.
	if frac := float64(moved) / keys; frac > 0.40 {
		t.Errorf("join moved %.1f%% of keys — far more than its fair share", frac*100)
	}

	left, err := joined.Without("s1")
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < keys; k++ {
		before, _ := joined.LookupUint64(uint64(k))
		after, _ := left.LookupUint64(uint64(k))
		if before != after && before != "s1" {
			t.Fatalf("leave: key %d moved %q -> %q though %q did not leave", k, before, after, before)
		}
		if before == "s1" && after == "s1" {
			t.Fatalf("leave: key %d still owned by the departed member", k)
		}
	}
}

// TestRingDiff: the rebalance diff is deterministic, matches observed
// lookup changes exactly, and labels every arc with the true old/new
// owners.
func TestRingDiff(t *testing.T) {
	cfg := Config{VNodes: 64, Seed: 5}
	old := mustRing(t, cfg, "s0", "s1", "s2")
	next, err := old.With("s3")
	if err != nil {
		t.Fatal(err)
	}
	d1 := Diff(old, next)
	d2 := Diff(old, next)
	if len(d1) == 0 {
		t.Fatal("join produced an empty diff")
	}
	if fmt.Sprint(d1) != fmt.Sprint(d2) {
		t.Fatal("Diff is not deterministic")
	}
	for _, mv := range d1 {
		if mv.To != "s3" {
			t.Fatalf("join diff arc moves %q -> %q, want To = s3", mv.From, mv.To)
		}
	}
	// A key changed owner iff some arc covers its hash, and the arc's
	// From/To match the lookups.
	covered := func(h uint64) (Move, bool) {
		for _, mv := range d1 {
			if mv.Covers(h) {
				return mv, true
			}
		}
		return Move{}, false
	}
	for k := 0; k < 20000; k++ {
		h := hashUint64(cfg.Seed, uint64(k))
		before, _ := old.LookupUint64(uint64(k))
		after, _ := next.LookupUint64(uint64(k))
		mv, in := covered(h)
		if (before != after) != in {
			t.Fatalf("key %d: moved=%v but diff coverage=%v", k, before != after, in)
		}
		if in && (mv.From != before || mv.To != after) {
			t.Fatalf("key %d: arc says %q->%q, lookups say %q->%q", k, mv.From, mv.To, before, after)
		}
	}
	if Diff(old, old) != nil {
		t.Fatal("identical rings produced a non-empty diff")
	}
}

// TestRingDiffEmpty: diffs against an empty ring cover the whole circle
// in one direction only.
func TestRingDiffEmpty(t *testing.T) {
	cfg := Config{VNodes: 16, Seed: 3}
	empty := mustRing(t, cfg)
	one := mustRing(t, cfg, "only")
	for _, mv := range Diff(empty, one) {
		if mv.From != "" || mv.To != "only" {
			t.Fatalf("bootstrap diff arc %+v, want From=\"\" To=\"only\"", mv)
		}
	}
	for _, mv := range Diff(one, empty) {
		if mv.From != "only" || mv.To != "" {
			t.Fatalf("teardown diff arc %+v, want From=\"only\" To=\"\"", mv)
		}
	}
	if Diff(empty, empty) != nil {
		t.Fatal("empty-vs-empty diff is non-empty")
	}
}

// TestRingPlacementGolden pins the exact placement of a reference
// configuration: any change to the hash or sort order shows up as a
// golden diff (and would silently strand journaled shard state in a real
// deployment). Regenerate deliberately with -update.
func TestRingPlacementGolden(t *testing.T) {
	r := mustRing(t, Config{VNodes: 128, Seed: 42}, "shard-0", "shard-1", "shard-2", "shard-3")
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "# ring placement: vnodes=%d seed=%d members=%v\n",
		r.VNodes(), r.Seed(), r.Members())
	for k := 0; k < 32; k++ {
		m, _ := r.LookupUint64(uint64(k))
		fmt.Fprintf(&buf, "task %2d -> %s\n", k, m)
	}
	for _, key := range []string{"alice", "bob", "carol", "dave", "mallory", "worker-1", "worker-2"} {
		m, _ := r.Lookup(key)
		fmt.Fprintf(&buf, "key %-8s -> %s\n", key, m)
	}
	path := filepath.Join("testdata", "placement.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("placement drifted from golden:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

func BenchmarkRingLookup(b *testing.B) {
	names := make([]string, 16)
	for i := range names {
		names[i] = fmt.Sprintf("shard-%d", i)
	}
	r, err := New(Config{VNodes: 128, Seed: 1}, names...)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := r.LookupUint64(uint64(i)); !ok {
			b.Fatal("lookup failed")
		}
	}
}

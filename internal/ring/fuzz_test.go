package ring

import (
	"strings"
	"testing"
)

// FuzzRingLookup throws hostile member sets and arbitrary keys at ring
// construction and lookup: construction must reject only out-of-range
// VNodes (never panic or over-allocate), and on any ring that builds,
// lookup must be total (ok=true iff the ring has members, the answer
// always a real member) and deterministic (an independently rebuilt ring
// gives the same answer for every probed key).
func FuzzRingLookup(f *testing.F) {
	f.Add("a,b,c", uint16(128), uint64(1), "task-1", uint64(7))
	f.Add("", uint16(0), uint64(0), "", uint64(0))
	f.Add("dup,dup,dup", uint16(1), uint64(42), "\x00\xff", uint64(1<<63))
	f.Add("x", uint16(512), uint64(99), strings.Repeat("k", 100), uint64(3))
	f.Add(",,,", uint16(3), uint64(5), ",", uint64(0))
	f.Fuzz(func(t *testing.T, memberBlob string, vnodes uint16, seed uint64, key string, ikey uint64) {
		members := strings.Split(memberBlob, ",")
		if len(members) > 64 {
			members = members[:64] // bound work, not validity
		}
		cfg := Config{VNodes: int(vnodes), Seed: seed}
		r, err := New(cfg, members...)
		if err != nil {
			if int(vnodes) <= MaxVNodes {
				t.Fatalf("New rejected in-range config %+v: %v", cfg, err)
			}
			return
		}
		r2, err := New(cfg, members...)
		if err != nil {
			t.Fatalf("rebuild of accepted config failed: %v", err)
		}
		inSet := make(map[string]bool, len(members))
		for _, m := range members {
			inSet[m] = true
		}
		check := func(m string, ok bool, m2 string, ok2 bool) {
			if ok != (r.Len() > 0) {
				t.Fatalf("ok=%v on ring with %d members", ok, r.Len())
			}
			if ok && !inSet[m] {
				t.Fatalf("lookup answered non-member %q", m)
			}
			if m != m2 || ok != ok2 {
				t.Fatalf("nondeterministic lookup: (%q,%v) vs (%q,%v)", m, ok, m2, ok2)
			}
		}
		m, ok := r.Lookup(key)
		m2, ok2 := r2.Lookup(key)
		check(m, ok, m2, ok2)
		m, ok = r.LookupUint64(ikey)
		m2, ok2 = r2.LookupUint64(ikey)
		check(m, ok, m2, ok2)
		// The rebalance diff must also never panic on hostile inputs.
		if r.Len() > 0 {
			smaller, err := r.Without(r.Members()[0])
			if err != nil {
				t.Fatalf("Without: %v", err)
			}
			Diff(r, smaller)
		}
	})
}

// Package ring implements the consistent-hash ring that partitions the
// platform's task space across supervisor shards (DESIGN.md §14).
//
// Each member is placed on a 64-bit hash circle at VNodes seeded
// positions ("virtual nodes"); a key belongs to the member owning the
// first position at or clockwise after the key's hash. Virtual nodes
// smooth the per-member share (the standard deviation of a member's
// share shrinks roughly with 1/sqrt(VNodes)), and consistent hashing
// gives the minimal-disruption property sharding depends on: adding or
// removing one member moves only the key ranges adjacent to that
// member's positions, never reshuffling the rest of the space.
//
// Placement is fully deterministic in (Config, member set): two
// processes building a ring from the same inputs agree on every lookup,
// which is what lets workers route requests to shards without any
// coordination beyond knowing the member list. Construction and lookup
// are hostile-input-safe — duplicate members collapse, arbitrary byte
// strings hash fine, an empty ring answers ok=false, and a hostile
// VNodes is rejected rather than allocating unbounded memory
// (FuzzRingLookup drives all of this).
package ring

import (
	"fmt"
	"sort"
)

// DefaultVNodes is the virtual-node count used when Config.VNodes is 0.
// 128 keeps the max/min member share within a few tens of percent for
// small member counts (see TestRingBalance) at 2KB of points per member.
const DefaultVNodes = 128

// MaxVNodes bounds Config.VNodes: beyond this the balance improvement is
// negligible and a hostile configuration could force huge allocations.
const MaxVNodes = 1 << 14

// Config parameterizes ring construction.
type Config struct {
	// VNodes is the number of positions each member occupies on the hash
	// circle (0 = DefaultVNodes). More virtual nodes mean better balance
	// and proportionally more memory; values above MaxVNodes are rejected.
	VNodes int
	// Seed perturbs every placement hash, so independent rings (or test
	// reruns) can use disjoint layouts. All parties routing against the
	// same ring must share it.
	Seed uint64
}

// point is one virtual node: a position on the hash circle and the index
// of the member owning it.
type point struct {
	hash   uint64
	member int32
}

// Ring is an immutable consistent-hash ring. Build one with New; derive
// changed-membership rings with With/Without. Immutability is what makes
// a *Ring safe to share across goroutines with no locking.
type Ring struct {
	cfg     Config
	members []string // sorted, deduplicated
	points  []point  // sorted by (hash, member)
}

// splitmix64 is the finalizing mixer used for every placement hash — the
// full-avalanche step of the splitmix64 generator, so consecutive inputs
// (vnode indices, task IDs) land uniformly on the circle.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashString hashes an arbitrary byte string under the ring's seed:
// FNV-1a folded through splitmix64 so short, similar keys still diverge.
func hashString(seed uint64, s string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * prime64
	}
	return splitmix64(h ^ splitmix64(seed))
}

// hashUint64 hashes an integer key (e.g. a task ID) under the seed.
func hashUint64(seed, k uint64) uint64 {
	return splitmix64(splitmix64(seed) ^ splitmix64(k))
}

// New builds a ring over the given members. Members are deduplicated and
// sorted, so the ring is a pure function of (cfg, set-of-members) — the
// caller's ordering never matters. An empty member list yields a valid,
// empty ring whose lookups answer ok=false.
func New(cfg Config, members ...string) (*Ring, error) {
	if cfg.VNodes < 0 {
		return nil, fmt.Errorf("ring: negative VNodes %d", cfg.VNodes)
	}
	if cfg.VNodes == 0 {
		cfg.VNodes = DefaultVNodes
	}
	if cfg.VNodes > MaxVNodes {
		return nil, fmt.Errorf("ring: VNodes %d exceeds the %d cap", cfg.VNodes, MaxVNodes)
	}
	uniq := make([]string, 0, len(members))
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	sort.Strings(uniq)
	r := &Ring{cfg: cfg, members: uniq}
	r.points = make([]point, 0, len(uniq)*cfg.VNodes)
	for mi, m := range uniq {
		base := hashString(cfg.Seed, m)
		for v := 0; v < cfg.VNodes; v++ {
			r.points = append(r.points, point{
				hash:   splitmix64(base + uint64(v)),
				member: int32(mi),
			})
		}
	}
	// Sort by (hash, member): the member tiebreak makes ownership of a
	// colliding position deterministic regardless of input order.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r, nil
}

// Members returns the ring's deduplicated, sorted member list. The
// returned slice is shared — callers must not mutate it.
func (r *Ring) Members() []string { return r.members }

// Len reports the number of distinct members.
func (r *Ring) Len() int { return len(r.members) }

// VNodes reports the effective virtual-node count per member.
func (r *Ring) VNodes() int { return r.cfg.VNodes }

// Seed reports the placement seed.
func (r *Ring) Seed() uint64 { return r.cfg.Seed }

// owner resolves a position on the circle to the owning member: the
// first point with hash >= h, wrapping past the top back to the first
// point. O(log n) in the total virtual-node count.
func (r *Ring) owner(h uint64) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.members[r.points[i].member], true
}

// Lookup routes a string key (e.g. a worker name) to its owning member.
// ok is false only on an empty ring. Total and deterministic for any
// byte string.
func (r *Ring) Lookup(key string) (member string, ok bool) {
	return r.owner(hashString(r.cfg.Seed, key))
}

// LookupUint64 routes an integer key (e.g. a global task ID) to its
// owning member without a string conversion.
func (r *Ring) LookupUint64(key uint64) (member string, ok bool) {
	return r.owner(hashUint64(r.cfg.Seed, key))
}

// With returns a new ring with one member joined (a no-op copy if the
// member is already present). The receiver is unchanged.
func (r *Ring) With(member string) (*Ring, error) {
	return New(r.cfg, append(append([]string(nil), r.members...), member)...)
}

// Without returns a new ring with one member removed (a no-op copy if
// the member is absent). The receiver is unchanged.
func (r *Ring) Without(member string) (*Ring, error) {
	keep := make([]string, 0, len(r.members))
	for _, m := range r.members {
		if m != member {
			keep = append(keep, m)
		}
	}
	return New(r.cfg, keep...)
}

// Move is one arc of the hash circle whose ownership differs between two
// rings: every key whose hash lies in the half-open arc (Start, End]
// (wrapping) moves From → To. From is "" when the old ring was empty, To
// is "" when the new ring is.
type Move struct {
	Start uint64 // exclusive arc start
	End   uint64 // inclusive arc end
	From  string // owner under the old ring ("" if none)
	To    string // owner under the new ring ("" if none)
}

// Diff computes the deterministic rebalance diff between two rings built
// with the same Config: the minimal set of hash-circle arcs whose owner
// changes, in ascending Start order with adjacent same-(From,To) arcs
// coalesced. A shard join yields moves whose To is always the joined
// member; a leave yields moves whose From is always the departed member
// (TestRingMinimalDisruption proves both).
func Diff(old, next *Ring) []Move {
	// Ownership is constant over any arc containing no virtual node of
	// either ring, so cutting the circle at the union of both rings'
	// points yields arcs of uniform (from, to) ownership: for the arc
	// ending at boundary b, every key in it resolves to owner(b).
	bounds := make([]uint64, 0, len(old.points)+len(next.points))
	for _, p := range old.points {
		bounds = append(bounds, p.hash)
	}
	for _, p := range next.points {
		bounds = append(bounds, p.hash)
	}
	if len(bounds) == 0 {
		return nil
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	uniq := bounds[:1]
	for _, b := range bounds[1:] {
		if b != uniq[len(uniq)-1] {
			uniq = append(uniq, b)
		}
	}
	var moves []Move
	for i, b := range uniq {
		start := uniq[(i+len(uniq)-1)%len(uniq)] // previous boundary (wraps)
		from, _ := old.owner(b)
		to, _ := next.owner(b)
		if from == to {
			continue
		}
		if n := len(moves); n > 0 && moves[n-1].End == start &&
			moves[n-1].From == from && moves[n-1].To == to {
			moves[n-1].End = b // coalesce with the adjacent arc
			continue
		}
		moves = append(moves, Move{Start: start, End: b, From: from, To: to})
	}
	return moves
}

// Covers reports whether the key hash h lies in m's wrapping arc
// (Start, End].
func (m Move) Covers(h uint64) bool {
	if m.Start < m.End {
		return h > m.Start && h <= m.End
	}
	return h > m.Start || h <= m.End // arc wraps past the top
}

package agg

import (
	"math"
	"testing"

	"redundancy/internal/adapt"
	"redundancy/internal/dist"
	"redundancy/internal/plan"
)

func TestMergeSumsAndWilsonExactness(t *testing.T) {
	exports := []ShardExport{
		{Shard: "0", Tasks: 40, Assignments: 90, Bad: 3, Accepted: 38, Mismatches: 2, RingersCaught: 1,
			Credits: map[string]int{"alice": 30, "bob": 20}},
		{Shard: "1", Tasks: 35, Assignments: 80, Bad: 1, Accepted: 34, Mismatches: 1, RingersCaught: 1,
			Credits: map[string]int{"alice": 10, "carol": 25}},
		{Shard: "2", Tasks: 25, Assignments: 70, Bad: 0, Accepted: 25,
			Credits: map[string]int{"bob": 5}},
	}
	m := Merge(exports, adapt.DefaultZ)
	if m.Shards != 3 || m.Tasks != 100 || m.Assignments != 240 || m.Bad != 4 ||
		m.Accepted != 97 || m.Mismatches != 3 || m.RingersCaught != 2 {
		t.Fatalf("bad sums: %+v", m)
	}
	if m.Credits["alice"] != 40 || m.Credits["bob"] != 25 || m.Credits["carol"] != 25 {
		t.Fatalf("bad credit merge: %v", m.Credits)
	}
	// The merged interval must be bit-identical to an unsharded estimator
	// fed the same totals — the exactness claim the chaos soak relies on.
	ref := adapt.NewEstimator(adapt.DefaultZ, 1)
	ref.Observe(240, 4)
	want := ref.Estimate()
	if m.Estimate != want {
		t.Fatalf("merged estimate %+v != unsharded reference %+v", m.Estimate, want)
	}
	// And identical to the same estimator fed verdict-by-verdict in any
	// order (decay 1 makes Observe order-independent).
	ref2 := adapt.NewEstimator(adapt.DefaultZ, 1)
	ref2.Observe(70, 0)
	ref2.Observe(90, 3)
	ref2.Observe(80, 1)
	if got := ref2.Estimate(); m.Estimate != got {
		t.Fatalf("merged estimate %+v != per-shard-fed reference %+v", m.Estimate, got)
	}
}

func TestMergeOrderIndependent(t *testing.T) {
	a := ShardExport{Shard: "0", Tasks: 10, Assignments: 25, Bad: 2, Credits: map[string]int{"x": 1}}
	b := ShardExport{Shard: "1", Tasks: 20, Assignments: 45, Bad: 1, Credits: map[string]int{"x": 2}}
	m1 := Merge([]ShardExport{a, b}, adapt.DefaultZ)
	m2 := Merge([]ShardExport{b, a}, adapt.DefaultZ)
	if m1.Estimate != m2.Estimate || m1.Tasks != m2.Tasks || m1.ImbalancePct != m2.ImbalancePct {
		t.Fatalf("merge is order-dependent: %+v vs %+v", m1, m2)
	}
}

func TestMergeImbalance(t *testing.T) {
	m := Merge([]ShardExport{
		{Shard: "0", Assignments: 100},
		{Shard: "1", Assignments: 100},
	}, adapt.DefaultZ)
	if m.ImbalancePct != 0 {
		t.Fatalf("balanced shards report %.2f%% imbalance", m.ImbalancePct)
	}
	m = Merge([]ShardExport{
		{Shard: "0", Assignments: 150},
		{Shard: "1", Assignments: 50},
	}, adapt.DefaultZ)
	if math.Abs(m.ImbalancePct-50) > 1e-9 {
		t.Fatalf("150/50 split reports %.2f%% imbalance, want 50%%", m.ImbalancePct)
	}
	if one := Merge([]ShardExport{{Shard: "0", Assignments: 10}}, adapt.DefaultZ); one.ImbalancePct != 0 {
		t.Fatalf("single shard reports %.2f%% imbalance", one.ImbalancePct)
	}
}

func TestMergeEmpty(t *testing.T) {
	m := Merge(nil, adapt.DefaultZ)
	if m.Shards != 0 || m.Assignments != 0 {
		t.Fatalf("empty merge: %+v", m)
	}
	// No evidence: the Wilson interval must be the vacuous [0, 1].
	if m.Estimate.Lower != 0 || m.Estimate.Upper != 1 {
		t.Fatalf("no-evidence estimate %+v, want [0,1]", m.Estimate)
	}
}

func TestMinDetectionAndReplanTrigger(t *testing.T) {
	p, err := plan.Balanced(100, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	minP, worstK, ok := MinDetection(p, 0.2)
	if !ok {
		t.Fatal("MinDetection found no classes on a real plan")
	}
	if minP <= 0 || minP > 1 {
		t.Fatalf("minP = %v out of range", minP)
	}
	if worstK < 1 {
		t.Fatalf("worstK = %d", worstK)
	}
	// Simple redundancy's known blind spot: an adversary holding both
	// copies of a task escapes, so min P is exactly 0 (the docstring on
	// dist.Simple). The aggregator must report that honestly.
	simple, err := plan.FromDistribution(dist.Simple(100), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if minS, _, ok := MinDetection(simple, 0.2); !ok || minS != 0 {
		t.Fatalf("Simple plan minP = %v ok=%v, want 0 true", minS, ok)
	}
	// The boundary clamp: an upper bound of exactly 1 (no evidence yet)
	// must evaluate, not panic, and report near-zero detection on the
	// regular classes.
	if _, _, ok := MinDetection(p, 1.0); !ok {
		t.Fatal("MinDetection at p=1 failed")
	}
	// A clean run (no bad copies over many samples) must not trigger a
	// replan at the plan's own epsilon; a filthy one must.
	clean := Merge([]ShardExport{{Assignments: 5000, Bad: 0}}, adapt.DefaultZ)
	if _, needed := clean.ReplanNeeded(p, 0.5); needed {
		t.Fatalf("clean evidence (upper %.4f) triggered a replan", clean.Estimate.Upper)
	}
	dirty := Merge([]ShardExport{{Assignments: 400, Bad: 200}}, adapt.DefaultZ)
	if _, needed := dirty.ReplanNeeded(p, 0.5); !needed {
		t.Fatalf("50%% bad copies (upper %.4f) did not trigger a replan", dirty.Estimate.Upper)
	}
}

func TestLeaderboard(t *testing.T) {
	m := Merge([]ShardExport{
		{Credits: map[string]int{"bob": 5, "alice": 9}},
		{Credits: map[string]int{"carol": 5, "alice": 1}},
	}, adapt.DefaultZ)
	rows := m.Leaderboard()
	want := []CreditRow{{"alice", 10}, {"bob", 5}, {"carol", 5}}
	if len(rows) != len(want) {
		t.Fatalf("leaderboard %v, want %v", rows, want)
	}
	for i := range want {
		if rows[i] != want[i] {
			t.Fatalf("leaderboard %v, want %v", rows, want)
		}
	}
}

// Package agg merges per-shard audit state back into the run-wide
// guarantees the paper states globally (DESIGN.md §14).
//
// Sharding partitions the task space, but Proposition 2's bound — the
// probability P(k, p) of catching an adversary controlling share p must
// stay ≥ ε — is a property of the *whole* run. The aggregator restores
// the global view from per-shard exports without touching any shard's
// hot path: each shard exports order-independent sums over its
// adjudicated verdicts (copies observed, copies implicated), and the
// merge re-derives the global Wilson interval for p̂ from the summed
// counts. Because the Wilson interval is a pure function of (bad, total)
// and both are plain sums, merging shards is exact: the aggregated
// estimate is bit-identical to what one unsharded supervisor computing
// over the same verdicts would report — the property the shard chaos
// soak asserts against an unsharded reference run.
package agg

import (
	"fmt"
	"sort"

	"redundancy/internal/adapt"
	"redundancy/internal/dist"
	"redundancy/internal/plan"
)

// ShardExport is one shard's order-independent audit summary, produced
// by (*platform.Supervisor).Export under the shard's audit lock. Every
// field is a sum or count over the shard's adjudicated verdicts, so
// exports survive crash/replay unchanged (journal replay rebuilds the
// same verdicts) and merge by addition.
type ShardExport struct {
	// Shard labels the exporting shard (SupervisorConfig.ShardID).
	Shard string
	// Tasks counts adjudicated tasks (verdicts).
	Tasks int
	// Assignments counts adjudicated copies: Σ verdict.Copies. This is
	// the Bernoulli sample count the estimator sees.
	Assignments int
	// Bad counts implicated copies: Σ len(verdict.Suspects).
	Bad int
	// Accepted counts certified tasks, Mismatches detected disagreements,
	// RingersCaught conclusive ringer failures.
	Accepted      int
	Mismatches    int
	RingersCaught int
	// Credits maps participant name → credits earned on this shard.
	// Names, not shard-local participant IDs: the same volunteer serves
	// every shard under one name but gets an independent ID per shard.
	Credits map[string]int
}

// Merged is the cluster-wide audit state reassembled from shard exports.
type Merged struct {
	Shards int
	// Summed verdict counts (see ShardExport).
	Tasks, Assignments, Bad             int
	Accepted, Mismatches, RingersCaught int
	// Estimate is the global Wilson interval for the adversary share p̂,
	// computed from the summed (Bad, Assignments) counts — exactly what
	// an unsharded estimator with no decay would report.
	Estimate adapt.Estimate
	// Credits is the merged per-name credit ledger.
	Credits map[string]int
	// ImbalancePct is the worst per-shard deviation of adjudicated
	// assignments from the mean share, in percent: max over shards of
	// |share − mean| / mean × 100. 0 for a single shard.
	ImbalancePct float64
}

// Merge folds shard exports into the global audit state. z is the Wilson
// critical value (<= 0 means adapt.DefaultZ, 95%). Merging is exact
// because every input is an order-independent sum; shard order cannot
// matter.
func Merge(exports []ShardExport, z float64) Merged {
	if z <= 0 {
		z = adapt.DefaultZ
	}
	m := Merged{Shards: len(exports), Credits: make(map[string]int)}
	for _, ex := range exports {
		m.Tasks += ex.Tasks
		m.Assignments += ex.Assignments
		m.Bad += ex.Bad
		m.Accepted += ex.Accepted
		m.Mismatches += ex.Mismatches
		m.RingersCaught += ex.RingersCaught
		for name, c := range ex.Credits {
			m.Credits[name] += c
		}
	}
	// Recompute, never average: feeding the summed counts through the
	// same estimator the supervisor uses (decay 1 = plain sums) gives the
	// identical Wilson interval an unsharded run would have produced.
	est := adapt.NewEstimator(z, 1)
	est.Observe(m.Assignments, m.Bad)
	m.Estimate = est.Estimate()
	if len(exports) > 1 && m.Assignments > 0 {
		mean := float64(m.Assignments) / float64(len(exports))
		for _, ex := range exports {
			dev := float64(ex.Assignments) - mean
			if dev < 0 {
				dev = -dev
			}
			if pct := dev / mean * 100; pct > m.ImbalancePct {
				m.ImbalancePct = pct
			}
		}
	}
	return m
}

// MinDetection evaluates the paper's global guarantee at an assumed
// adversary share p: the minimum over active multiplicity classes k of
// P(k, p) under the full (unsharded) plan's regular/ringer split. The
// returned worstK names the weakest class. ok is false when the plan has
// no regular classes to audit.
func MinDetection(p *plan.Plan, pShare float64) (minP float64, worstK int, ok bool) {
	// DetectionAtSplit requires 0 <= p < 1; a no-evidence estimate has
	// upper bound exactly 1, which we evaluate just inside the boundary
	// (detection against a total adversary, ringers aside, is hopeless —
	// the clamp keeps the trigger conservative instead of panicking).
	if pShare < 0 {
		pShare = 0
	}
	if pShare >= 1 {
		pShare = 1 - 1e-12
	}
	regular, ringers := p.SplitDistribution()
	minP = 1
	for k := 1; k <= regular.Dimension(); k++ {
		if regular.Count(k) <= 0 {
			continue
		}
		ok = true
		if pk := dist.DetectionAtSplit(regular, ringers, k, pShare); pk < minP {
			minP = pk
			worstK = k
		}
	}
	if !ok {
		return 0, 0, false
	}
	return minP, worstK, true
}

// ReplanNeeded is the cluster-level adaptive trigger, the sharded
// counterpart of the per-supervisor adapt loop: using the merged
// estimate's *upper* confidence bound as the pessimistic adversary
// share, it reports whether any class's detection probability has
// fallen below the target ε. Shards run with their own adapt loops off
// (a shard cannot re-plan the global tail); this is where the global
// decision lives.
func (m Merged) ReplanNeeded(p *plan.Plan, epsilon float64) (minP float64, needed bool) {
	minP, _, ok := MinDetection(p, m.Estimate.Upper)
	if !ok {
		return 0, false
	}
	return minP, minP < epsilon
}

// String renders a one-line audit summary for logs and bench reports.
func (m Merged) String() string {
	return fmt.Sprintf(
		"agg: %d shards, %d tasks (%d accepted, %d mismatches, %d ringers caught), p̂=%.4f [%.4f,%.4f] over %d copies, imbalance %.1f%%",
		m.Shards, m.Tasks, m.Accepted, m.Mismatches, m.RingersCaught,
		m.Estimate.PHat, m.Estimate.Lower, m.Estimate.Upper, m.Assignments, m.ImbalancePct)
}

// Leaderboard returns the merged credit ledger as sorted (name, credit)
// rows, highest credit first, ties broken by name.
func (m Merged) Leaderboard() []CreditRow {
	rows := make([]CreditRow, 0, len(m.Credits))
	for name, c := range m.Credits {
		rows = append(rows, CreditRow{Name: name, Credit: c})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Credit != rows[j].Credit {
			return rows[i].Credit > rows[j].Credit
		}
		return rows[i].Name < rows[j].Name
	})
	return rows
}

// CreditRow is one row of the merged leaderboard.
type CreditRow struct {
	Name   string
	Credit int
}

package cmdtest

import (
	"fmt"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// startSupervisorCmd launches the supervisor daemon with args, parses the
// bound address from its banner, and returns the address plus a function
// that waits for exit and returns the full output.
func startSupervisorCmd(t *testing.T, args ...string) (addr string, wait func() (string, error)) {
	t.Helper()
	cmd := exec.Command(filepath.Join(binaries(t), "supervisor"), args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill() })

	buf := make([]byte, 4096)
	n, err := stdout.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	first := string(buf[:n])
	idx := strings.Index(first, "on 127.0.0.1:")
	if idx < 0 {
		t.Fatalf("no address in supervisor banner: %q", first)
	}
	addr = strings.Fields(first[idx+3:])[0]
	wait = func() (string, error) {
		out := first
		b := make([]byte, 4096)
		for {
			n, err := stdout.Read(b)
			out += string(b[:n])
			if err != nil {
				break
			}
		}
		return out, cmd.Wait()
	}
	return addr, wait
}

// TestBatchFlagEndToEnd drives both daemons through a complete batched
// run: a batch-16 supervisor serving one batch-8 worker and one -batch 1
// compatibility-mode worker (which must speak the legacy single-assignment
// protocol against the same supervisor).
func TestBatchFlagEndToEnd(t *testing.T) {
	addr, wait := startSupervisorCmd(t,
		"-addr", "127.0.0.1:0", "-n", "60", "-eps", "0.5",
		"-iters", "10", "-batch", "16", "-quiet")

	var wg sync.WaitGroup
	workerErr := make(chan error, 2)
	for i, batch := range []string{"8", "1"} {
		wg.Add(1)
		go func(i int, batch string) {
			defer wg.Done()
			cmd := exec.Command(filepath.Join(binaries(t), "worker"),
				"-addr", addr, "-name", fmt.Sprintf("b%s", batch), "-batch", batch)
			if out, err := cmd.CombinedOutput(); err != nil {
				workerErr <- fmt.Errorf("worker -batch %s: %v\n%s", batch, err, out)
			}
		}(i, batch)
	}
	wg.Wait()
	close(workerErr)
	for err := range workerErr {
		t.Fatal(err)
	}

	out, err := wait()
	if err != nil {
		t.Fatalf("supervisor exited with error: %v\n%s", err, out)
	}
	for _, want := range []string{"computation complete", "wrong results:      0"} {
		if !strings.Contains(out, want) {
			t.Errorf("supervisor output missing %q:\n%s", want, out)
		}
	}
}

// TestBatchFlagRejectsNonPositive: both daemons refuse -batch 0 and
// negative values up front instead of limping into a nonsense protocol.
func TestBatchFlagRejectsNonPositive(t *testing.T) {
	for _, bin := range []string{"supervisor", "worker"} {
		for _, bad := range []string{"0", "-3"} {
			cmd := exec.Command(filepath.Join(binaries(t), bin),
				"-addr", "127.0.0.1:1", "-batch", bad)
			done := make(chan struct{})
			var out []byte
			var err error
			go func() {
				out, err = cmd.CombinedOutput()
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(30 * time.Second):
				cmd.Process.Kill()
				<-done
				t.Fatalf("%s -batch %s did not exit", bin, bad)
			}
			if err == nil {
				t.Errorf("%s -batch %s exited zero:\n%s", bin, bad, out)
			}
			if !strings.Contains(string(out), "-batch") {
				t.Errorf("%s -batch %s error does not name the flag:\n%s", bin, bad, out)
			}
		}
	}
}

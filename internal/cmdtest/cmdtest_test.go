// Package cmdtest builds the repository's executables and drives them end
// to end: the CLI surface a downstream user touches first deserves the
// same integration coverage as the library.
package cmdtest

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var (
	buildOnce sync.Once
	binDir    string
	buildErr  error
)

// binaries builds every cmd once per test process and returns the
// directory holding them.
func binaries(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		binDir, buildErr = os.MkdirTemp("", "redundancy-bins")
		if buildErr != nil {
			return
		}
		for _, name := range []string{"figures", "redcalc", "redsim", "supervisor", "worker"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(binDir, name), "./cmd/"+name)
			cmd.Dir = repoRoot()
			if out, err := cmd.CombinedOutput(); err != nil {
				buildErr = fmt.Errorf("build %s: %v\n%s", name, err, out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return binDir
}

func repoRoot() string {
	// This package lives at <root>/internal/cmdtest.
	wd, err := os.Getwd()
	if err != nil {
		return "."
	}
	return filepath.Dir(filepath.Dir(wd))
}

func run(t *testing.T, timeout time.Duration, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(binaries(t), bin), args...)
	done := make(chan struct{})
	var out []byte
	var err error
	go func() {
		out, err = cmd.CombinedOutput()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		_ = cmd.Process.Kill()
		<-done
		t.Fatalf("%s %v timed out\noutput so far:\n%s", bin, args, out)
	}
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", bin, args, err, out)
	}
	return string(out)
}

func TestFiguresCLI(t *testing.T) {
	out := run(t, 2*time.Minute, "figures", "-fig", "3,7", "-chart")
	for _, want := range []string{
		"Figure 3", "0.7968", "Section 7", "2.2589", "+25889",
		"Figure 3 (chart)", "Golle-Stubblebine",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("figures output missing %q", want)
		}
	}
	// CSV mode.
	csv := run(t, 2*time.Minute, "figures", "-fig", "7", "-csv")
	if !strings.Contains(csv, "Min multiplicity,Redundancy factor") {
		t.Errorf("CSV header missing:\n%s", csv)
	}
}

func TestRedcalcDesignAndSave(t *testing.T) {
	planPath := filepath.Join(t.TempDir(), "plan.json")
	out := run(t, time.Minute, "redcalc",
		"-scheme", "balanced", "-n", "5000", "-target", "0.5", "-p", "0.15",
		"-save", planPath)
	for _, want := range []string{"design:", "ε = 0.557", "plan audit: ok", "plan written"} {
		if !strings.Contains(out, want) {
			t.Errorf("redcalc output missing %q:\n%s", want, out)
		}
	}
	if _, err := os.Stat(planPath); err != nil {
		t.Fatalf("plan file not written: %v", err)
	}

	// The saved plan drives the whole platform pipeline: supervisor with a
	// journal, then two workers (one colluding), then summary.
	journal := filepath.Join(t.TempDir(), "journal.jsonl")
	supCmd := exec.Command(filepath.Join(binaries(t), "supervisor"),
		"-addr", "127.0.0.1:0", "-planfile", planPath, "-journal", journal,
		"-iters", "10", "-quiet", "-resolve")
	stdout, err := supCmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	supCmd.Stderr = supCmd.Stdout
	if err := supCmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer supCmd.Process.Kill()

	// Parse the bound address from the first stdout line.
	buf := make([]byte, 4096)
	n, err := stdout.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	first := string(buf[:n])
	idx := strings.Index(first, "on 127.0.0.1:")
	if idx < 0 {
		t.Fatalf("no address in supervisor banner: %q", first)
	}
	addr := strings.Fields(first[idx+3:])[0]

	// One honest worker and one colluder. The colluder may be convicted by
	// ringer evidence mid-run and exit non-zero — that is the platform
	// working; only the honest worker must finish cleanly.
	honestErr := make(chan error, 1)
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		args := []string{"-addr", addr, "-name", fmt.Sprintf("w%d", w)}
		if w == 1 {
			args = append(args, "-cheat", "0.5", "-cheatseed", "3")
		}
		go func(w int, args []string) {
			defer wg.Done()
			cmd := exec.Command(filepath.Join(binaries(t), "worker"), args...)
			out, err := cmd.CombinedOutput()
			if w == 0 {
				if err != nil {
					honestErr <- fmt.Errorf("honest worker: %v\n%s", err, out)
					return
				}
				honestErr <- nil
			}
		}(w, args)
	}
	wg.Wait()
	if err := <-honestErr; err != nil {
		t.Fatal(err)
	}

	rest := make(chan string, 1)
	go func() {
		out := first
		b := make([]byte, 4096)
		for {
			n, err := stdout.Read(b)
			out += string(b[:n])
			if err != nil {
				break
			}
		}
		rest <- out
	}()
	// Drain the pipe fully before Wait: Wait closes the pipe and would
	// discard any output not yet read.
	full := <-rest
	if err := supCmd.Wait(); err != nil {
		t.Fatalf("supervisor exited with error: %v\n%s", err, full)
	}
	for _, want := range []string{"computation complete", "tasks certified"} {
		if !strings.Contains(full, want) {
			t.Errorf("supervisor output missing %q:\n%s", want, full)
		}
	}
	// The journal must exist and be non-trivial.
	if fi, err := os.Stat(journal); err != nil || fi.Size() < 100 {
		t.Errorf("journal missing or empty: %v", err)
	}

	// Restart from the journal: the run is already complete, so the
	// supervisor prints its summary and exits immediately.
	out2 := run(t, time.Minute, "supervisor",
		"-addr", "127.0.0.1:0", "-planfile", planPath, "-journal", journal,
		"-iters", "10", "-quiet")
	if !strings.Contains(out2, "computation complete") {
		t.Errorf("restarted supervisor did not complete from journal:\n%s", out2)
	}
}

func TestRedsimCLI(t *testing.T) {
	out := run(t, 2*time.Minute, "redsim",
		"-scheme", "balanced", "-n", "3000", "-participants", "200",
		"-p", "0.1", "-strategy", "always", "-seed", "4")
	for _, want := range []string{"Per-tuple ground truth", "tasks adjudicated", "closed-form"} {
		if !strings.Contains(out, want) {
			t.Errorf("redsim output missing %q:\n%s", want, out)
		}
	}
}

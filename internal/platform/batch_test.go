package platform

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"redundancy/internal/dist"
	"redundancy/internal/obs"
	"redundancy/internal/plan"
	"redundancy/internal/rng"
	"redundancy/internal/sched"
	"redundancy/internal/verify"
)

// TestBatchedEndToEnd runs a full plan through the batched protocol: every
// task certifies, accounting is exact, and the batch metrics show the
// batched path actually carried the traffic.
func TestBatchedEndToEnd(t *testing.T) {
	p, err := plan.Balanced(60, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	sup, err := NewSupervisor(SupervisorConfig{
		Plan: p, WorkKind: "hashchain", Iters: 10, Seed: 2, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := sup.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sup.Close() })

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := RunWorker(WorkerConfig{
				Addr: addr, Name: "batched", BatchSize: 8, Seed: uint64(i + 1),
			}); err != nil {
				t.Errorf("batched worker: %v", err)
			}
		}(i)
	}
	sup.Wait()
	wg.Wait()

	sum := sup.Summary()
	tasks := p.N + p.Ringers
	if sum.Verify.Accepted != tasks {
		t.Errorf("certified %d tasks, want %d", sum.Verify.Accepted, tasks)
	}
	if sum.Verify.MismatchDetected != 0 || sum.WrongResults != 0 {
		t.Errorf("honest batched run produced mismatches: %+v wrong=%d", sum.Verify, sum.WrongResults)
	}
	snap := reg.Snapshot()
	if v, _ := snap.Value("redundancy_results_accepted_total"); int(v) != p.TotalAssignments() {
		t.Errorf("accepted %v results, want %d", v, p.TotalAssignments())
	}
	batches, _ := snap.Value("redundancy_batches_issued_total")
	if batches == 0 {
		t.Error("batches_issued = 0: traffic did not take the batched path")
	}
	if sizes, ok := snap.Value("redundancy_batch_size"); !ok || sizes != batches {
		t.Errorf("batch_size observations %v, want one per issued batch (%v)", sizes, batches)
	}
	if v, _ := snap.Value("redundancy_assignments_issued_total"); int(v) != p.TotalAssignments() {
		t.Errorf("issued %v assignments, want %d (no duplicate pops)", v, p.TotalAssignments())
	}
}

// TestBatchSizeOneStaysOnLegacyPath checks the compatibility contract:
// BatchSize 1 (and 0) never sends get_work at all, so the wire traffic is
// byte-for-byte today's single-assignment protocol — visible as zero
// issued batches on the supervisor.
func TestBatchSizeOneStaysOnLegacyPath(t *testing.T) {
	for _, batch := range []int{0, 1} {
		p, err := plan.FromDistribution(dist.Simple(8), 0.5)
		if err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		sup, err := NewSupervisor(SupervisorConfig{
			Plan: p, WorkKind: "hashchain", Iters: 10, Metrics: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		addr, err := sup.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		st, err := RunWorker(WorkerConfig{Addr: addr, Name: "legacy", BatchSize: batch})
		if err != nil {
			t.Fatalf("BatchSize=%d: %v", batch, err)
		}
		if st.Completed != p.TotalAssignments() {
			t.Errorf("BatchSize=%d: completed %d, want %d", batch, st.Completed, p.TotalAssignments())
		}
		if v, _ := reg.Snapshot().Value("redundancy_batches_issued_total"); v != 0 {
			t.Errorf("BatchSize=%d: %v batches issued on the legacy path", batch, v)
		}
		sup.Close()
	}
}

// TestNegativeBatchSizeRejected: the library refuses a nonsense config
// before any network activity.
func TestNegativeBatchSizeRejected(t *testing.T) {
	if _, err := RunWorker(WorkerConfig{Addr: "127.0.0.1:1", BatchSize: -1}); err == nil {
		t.Error("negative BatchSize accepted")
	}
	if _, err := NewSupervisor(SupervisorConfig{Plan: mustPlan(t), MaxBatch: -1}); err == nil {
		t.Error("negative MaxBatch accepted")
	}
}

func mustPlan(t *testing.T) *plan.Plan {
	t.Helper()
	p, err := plan.FromDistribution(dist.Simple(4), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestWorkBatchCappedAtMaxBatch drives the wire by hand: a greedy
// get_work asking for far more than MaxBatch is granted exactly the cap.
func TestWorkBatchCappedAtMaxBatch(t *testing.T) {
	p, err := plan.FromDistribution(dist.Simple(20), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := NewSupervisor(SupervisorConfig{Plan: p, Iters: 5, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := sup.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sup.Close() })

	_, c := dialCodec(t, addr)
	welcome := roundTrip(t, c, Message{Type: MsgRegister, Name: "greedy"})
	lease := roundTrip(t, c, Message{Type: MsgGetWork, ParticipantID: welcome.ParticipantID, Batch: 100})
	if lease.Type != MsgWorkBatch {
		t.Fatalf("lease reply %+v", lease)
	}
	if len(lease.Work) != 4 {
		t.Errorf("asked for 100, MaxBatch 4, leased %d", len(lease.Work))
	}
	if lease.Kind == "" || lease.Iters == 0 {
		t.Errorf("lease envelope missing Kind/Iters: %+v", lease)
	}
	seen := make(map[outstandingKey]bool)
	for _, w := range lease.Work {
		key := outstandingKey{w.TaskID, w.Copy}
		if seen[key] {
			t.Errorf("lease contains task %d copy %d twice", w.TaskID, w.Copy)
		}
		seen[key] = true
		if w.Seed != TaskSeed(w.TaskID) {
			t.Errorf("task %d leased with seed %d, want %d", w.TaskID, w.Seed, TaskSeed(w.TaskID))
		}
	}
	// Return the lease so nothing is held, then check that a non-positive
	// ask still leases one fresh assignment, never zero or a refusal: a
	// hand-rolled client that forgets Batch degrades gracefully.
	fn, err := Work(lease.Kind)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]ResultItem, 0, len(lease.Work))
	for _, w := range lease.Work {
		results = append(results, ResultItem{TaskID: w.TaskID, Copy: w.Copy, Value: fn(w.Seed, lease.Iters)})
	}
	if ack := roundTrip(t, c, Message{Type: MsgResultBatch, ParticipantID: welcome.ParticipantID,
		Results: results}); ack.Type != MsgBatchAck {
		t.Fatalf("batch ack %+v", ack)
	}
	lease2 := roundTrip(t, c, Message{Type: MsgGetWork, ParticipantID: welcome.ParticipantID})
	if lease2.Type != MsgWorkBatch || len(lease2.Work) != 1 {
		t.Errorf("batchless get_work got %+v, want a 1-assignment lease", lease2)
	}
}

// TestResumeReturnsWholeLease: after a resume, one get_work — of any
// requested size — returns every assignment the participant still holds,
// so a reconnect can never silently shrink a lease.
func TestResumeReturnsWholeLease(t *testing.T) {
	p, err := plan.FromDistribution(dist.Simple(20), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	sup, err := NewSupervisor(SupervisorConfig{Plan: p, Iters: 5, MaxBatch: 8, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := sup.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sup.Close() })

	_, c1 := dialCodec(t, addr)
	welcome := roundTrip(t, c1, Message{Type: MsgRegister, Name: "leaser"})
	id, token := welcome.ParticipantID, welcome.Token
	lease := roundTrip(t, c1, Message{Type: MsgGetWork, ParticipantID: id, Batch: 6})
	if lease.Type != MsgWorkBatch || len(lease.Work) != 6 {
		t.Fatalf("lease reply %+v", lease)
	}

	// Resume on a fresh connection while the old one is half-open; even a
	// Batch:1 ask must bring the whole surviving 6-assignment lease back.
	_, c2 := dialCodec(t, addr)
	back := roundTrip(t, c2, Message{Type: MsgRegister, Resume: true, ParticipantID: id, Token: token})
	if back.Type != MsgRegistered {
		t.Fatalf("resume reply %+v", back)
	}
	again := roundTrip(t, c2, Message{Type: MsgGetWork, ParticipantID: id, Batch: 1})
	if again.Type != MsgWorkBatch {
		t.Fatalf("post-resume lease reply %+v", again)
	}
	want := make(map[outstandingKey]bool, len(lease.Work))
	for _, w := range lease.Work {
		want[outstandingKey{w.TaskID, w.Copy}] = true
	}
	for _, w := range again.Work {
		if !want[outstandingKey{w.TaskID, w.Copy}] {
			t.Errorf("post-resume lease contains fresh task %d copy %d; reissues must come first and alone", w.TaskID, w.Copy)
		}
		delete(want, outstandingKey{w.TaskID, w.Copy})
	}
	if len(want) != 0 {
		t.Errorf("post-resume lease is missing %d held assignments: %v", len(want), want)
	}
	if v, _ := reg.Snapshot().Value("redundancy_assignments_reissued_total"); int(v) != len(lease.Work) {
		t.Errorf("reissued %v assignments, want %d", v, len(lease.Work))
	}

	// Completing the whole lease on the new connection is one atomic batch.
	fn, err := Work(lease.Kind)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]ResultItem, 0, len(again.Work))
	for _, w := range again.Work {
		results = append(results, ResultItem{TaskID: w.TaskID, Copy: w.Copy, Value: fn(w.Seed, lease.Iters)})
	}
	ack := roundTrip(t, c2, Message{Type: MsgResultBatch, ParticipantID: id, Results: results})
	if ack.Type != MsgBatchAck || len(ack.Acks) != len(results) {
		t.Fatalf("batch ack %+v", ack)
	}
	for _, a := range ack.Acks {
		if !a.OK {
			t.Errorf("task %d copy %d rejected on the resumed connection: %s", a.TaskID, a.Copy, a.Reason)
		}
	}
}

// TestResultBatchPartialRejection: one batch mixing valid results, a
// never-assigned tuple, and a duplicate of an already-accepted result gets
// per-item verdicts — the good results are credited, the bad ones carry
// machine-readable reasons, and nothing is double-counted.
func TestResultBatchPartialRejection(t *testing.T) {
	p, err := plan.FromDistribution(dist.Simple(12), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	sup, err := NewSupervisor(SupervisorConfig{Plan: p, Iters: 5, MaxBatch: 4, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := sup.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sup.Close() })

	_, c := dialCodec(t, addr)
	welcome := roundTrip(t, c, Message{Type: MsgRegister, Name: "mixed"})
	id := welcome.ParticipantID
	lease := roundTrip(t, c, Message{Type: MsgGetWork, ParticipantID: id, Batch: 3})
	if lease.Type != MsgWorkBatch || len(lease.Work) != 3 {
		t.Fatalf("lease reply %+v", lease)
	}
	fn, err := Work(lease.Kind)
	if err != nil {
		t.Fatal(err)
	}
	value := func(w WorkItem) uint64 { return fn(w.Seed, lease.Iters) }

	// Submit the first item alone (legacy single-result message), so its
	// later appearance in the batch is a duplicate.
	first := lease.Work[0]
	if ack := roundTrip(t, c, Message{Type: MsgResult, ParticipantID: id,
		TaskID: first.TaskID, Copy: first.Copy, Value: value(first)}); ack.Type != MsgAck {
		t.Fatalf("single result ack %+v", ack)
	}

	batch := Message{Type: MsgResultBatch, ParticipantID: id, Results: []ResultItem{
		{TaskID: first.TaskID, Copy: first.Copy, Value: value(first)}, // duplicate
		{TaskID: lease.Work[1].TaskID, Copy: lease.Work[1].Copy, Value: value(lease.Work[1])},
		{TaskID: 9999, Copy: 0, Value: 1}, // never assigned
		{TaskID: lease.Work[2].TaskID, Copy: lease.Work[2].Copy, Value: value(lease.Work[2])},
	}}
	ack := roundTrip(t, c, batch)
	if ack.Type != MsgBatchAck || len(ack.Acks) != 4 {
		t.Fatalf("batch ack %+v", ack)
	}
	wantOK := []bool{false, true, false, true}
	for i, a := range ack.Acks {
		if a.OK != wantOK[i] {
			t.Errorf("ack %d: OK=%v want %v (%+v)", i, a.OK, wantOK[i], a)
		}
		if !a.OK && a.Reason != ReasonUnassigned {
			t.Errorf("ack %d: reason %q, want %q", i, a.Reason, ReasonUnassigned)
		}
	}
	snap := reg.Snapshot()
	if v, _ := snap.Value("redundancy_results_accepted_total"); v != 3 {
		t.Errorf("accepted %v results, want 3 (1 single + 2 batch)", v)
	}
	if v, _ := snap.Value("redundancy_results_rejected_total", ReasonUnassigned); v != 2 {
		t.Errorf("unassigned rejections %v, want 2", v)
	}
}

// TestBatchRequiresRegistration: the batch verbs enforce the same
// connection-identity check as the legacy ones.
func TestBatchRequiresRegistration(t *testing.T) {
	sup, addr := startSupervisor(t, mustPlan(t), sched.Free)
	_ = sup
	_, c := dialCodec(t, addr)
	for _, m := range []Message{
		{Type: MsgGetWork, ParticipantID: 0, Batch: 4},
		{Type: MsgResultBatch, ParticipantID: 0, Results: []ResultItem{{TaskID: 0, Copy: 0, Value: 1}}},
	} {
		if reply := roundTrip(t, c, m); reply.Type != MsgError || reply.Reason != ReasonUnregistered {
			t.Errorf("%s without registration: %+v, want %s", m.Type, reply, ReasonUnregistered)
		}
	}
}

// TestBatchedJournalSyncOncePerBatch: JournalSync mode pays one fsync per
// result batch, not one per record, and every record still lands durably.
func TestBatchedJournalSyncOncePerBatch(t *testing.T) {
	p, err := plan.FromDistribution(dist.Simple(24), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	jf, err := os.OpenFile(filepath.Join(t.TempDir(), "journal.jsonl"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	reg := obs.NewRegistry()
	sup, err := NewSupervisor(SupervisorConfig{
		Plan: p, WorkKind: "hashchain", Iters: 5, Metrics: reg,
		Journal: jf, JournalSync: true, MaxBatch: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := sup.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunWorker(WorkerConfig{Addr: addr, Name: "sync", BatchSize: 8}); err != nil {
		t.Fatal(err)
	}
	sup.Wait()
	sup.Close()

	total := p.TotalAssignments()
	snap := reg.Snapshot()
	if v, _ := snap.Value("redundancy_journal_records_total"); int(v) != total {
		t.Errorf("journaled %v records, want %d", v, total)
	}
	batched, _ := snap.Value("redundancy_batched_journal_syncs_total")
	if batched == 0 {
		t.Error("no batched journal syncs recorded")
	}
	syncs, _ := snap.Value("redundancy_journal_syncs_total")
	// One fsync per batch (+1 for the Close flush) must undercut
	// one-per-record by the batch factor.
	if int(syncs) >= total {
		t.Errorf("%v fsyncs for %d records: batching bought nothing", syncs, total)
	}
	if batched > syncs {
		t.Errorf("batched syncs %v exceed total syncs %v", batched, syncs)
	}

	// The journal is complete and replayable: a fresh supervisor restores
	// every record and has nothing left to do.
	data, err := os.ReadFile(jf.Name())
	if err != nil {
		t.Fatal(err)
	}
	sup2, err := NewSupervisor(SupervisorConfig{
		Plan: p, WorkKind: "hashchain", Iters: 5, Restore: bytes.NewReader(data),
	})
	if err != nil {
		t.Fatalf("replaying batched journal: %v", err)
	}
	if sum := sup2.Summary(); sum.Restored != total {
		t.Errorf("restored %d records from batched journal, want %d", sum.Restored, total)
	}
}

// TestAppendJournalBatchTornTail: a batch append that is cut off
// mid-buffer loses only the torn final record — replay restores the
// intact prefix, exactly the contract single-record appends give.
func TestAppendJournalBatchTornTail(t *testing.T) {
	recs := []journalRecord{
		{TaskID: 0, Copy: 0, Participant: 1, Value: 11},
		{TaskID: 1, Copy: 0, Participant: 1, Value: 22},
		{TaskID: 2, Copy: 0, Participant: 2, Value: 33},
	}
	var buf bytes.Buffer
	if err := appendJournalBatch(&buf, recs); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != len(recs) {
		t.Fatalf("batch encoded %d lines, want %d", got, len(recs))
	}

	p, err := plan.FromDistribution(dist.Simple(6), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	torn := buf.String()[:buf.Len()-9] // cut into the final record
	specs := p.Tasks()
	collector := verify.NewCollector(func(int) uint64 { return 0 })
	for _, sp := range specs {
		collector.Expect(sp.ID, sp.Copies)
	}
	queue, err := sched.NewQueue(specs, sched.Free, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	st, err := replayJournal(strings.NewReader(torn),
		collectorQueueReplayer{collector, queue})
	if err != nil {
		t.Fatalf("torn batch tail not tolerated: %v", err)
	}
	if st.restored != len(recs)-1 {
		t.Errorf("restored %d of a torn batch, want %d", st.restored, len(recs)-1)
	}
	wantValid := int64(0)
	for _, line := range strings.SplitAfter(buf.String(), "\n")[:len(recs)-1] {
		wantValid += int64(len(line))
	}
	if st.validBytes != wantValid {
		t.Errorf("valid prefix %d bytes, want %d", st.validBytes, wantValid)
	}
	if st.lines != len(recs)-1 {
		t.Errorf("replay counted %d lines, want %d", st.lines, len(recs)-1)
	}
}

// collectorQueueReplayer replays results into a bare collector/queue pair
// (no supervisor), for journal-layer tests. Revision records are out of
// scope here and fail loudly.
type collectorQueueReplayer struct {
	collector *verify.Collector
	queue     *sched.Queue
}

func (r collectorQueueReplayer) replayResult(a sched.Assignment, participant int, value uint64) error {
	if !r.queue.MarkCompleted(a) {
		return replayTornError{fmt.Errorf("unknown assignment task=%d copy=%d", a.TaskID, a.Copy)}
	}
	_, _, err := r.collector.Submit(verify.Result{Assignment: a, Participant: participant, Value: value})
	return err
}

func (r collectorQueueReplayer) replayRevision(rec revisionRecord) error {
	return fmt.Errorf("unexpected revision record seq=%d", rec.Seq)
}

func (r collectorQueueReplayer) replaySnapshot(rec snapshotRecord) error {
	return fmt.Errorf("unexpected snapshot record (%d results)", rec.Results)
}

package platform

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"redundancy/internal/obs"
	"redundancy/internal/plan"
	"redundancy/internal/rng"
	"redundancy/internal/sched"
	"redundancy/internal/verify"
)

// SupervisorConfig parameterizes a supervisor server.
type SupervisorConfig struct {
	// Plan is the redundancy plan to execute.
	Plan *plan.Plan
	// Policy is the assignment-release discipline (default Free).
	Policy sched.Policy
	// WorkKind names the work function (default "hashchain").
	WorkKind string
	// Iters is the per-task work amount (default 1000).
	Iters int
	// Seed shuffles the assignment order.
	Seed uint64
	// Deadline, when positive, bounds how long an assignment may stay out
	// with one participant before it is reclaimed and re-issued to another
	// (volunteer hosts stall, sleep, or disappear silently). A participant
	// submitting after its assignment was reclaimed is rejected.
	Deadline time.Duration
	// Journal, when non-nil, receives one JSON line per accepted result;
	// a supervisor restarted with the same plan and Restore pointed at the
	// journal resumes without re-running completed work.
	Journal io.Writer
	// Restore, when non-nil, is replayed at construction (see Journal).
	Restore io.Reader
	// ResultDigits, when positive, matches returned values as float64 bit
	// patterns quantized to that many significant decimal digits instead of
	// exactly — for floating-point workloads whose results agree only to a
	// tolerance across heterogeneous hosts. 0 keeps exact matching.
	ResultDigits int
	// ResolveMismatches enables the "reactive measure" the paper alludes
	// to: when redundancy exposes a mismatch on a regular task, the
	// supervisor recomputes the task itself on trusted hardware, salvaging
	// a correct certified value at precompute cost. Off by default — it is
	// exactly the expensive fallback static redundancy tries to avoid.
	ResolveMismatches bool
	// Logf, when set, receives progress lines (e.g. log.Printf). The
	// supervisor invokes it from multiple goroutines (connection handlers
	// and the deadline sweeper) but serializes every call under its own
	// mutex and recovers panics, so a nil, non-reentrant, or faulty Logf
	// can never take a run down. Nil suppresses logging.
	Logf func(format string, args ...any)
	// Metrics, when non-nil, is the registry the supervisor instruments;
	// serve it with Registry.Handler to expose /metrics. When nil the
	// supervisor still maintains a private registry (reachable via
	// (*Supervisor).Metrics), so counters are always collected.
	// OBSERVABILITY.md documents every series.
	Metrics *obs.Registry
	// Events, when non-nil, receives one structured JSON line per
	// platform event (assignment_issued, result_accepted,
	// mismatch_detected, ...; see OBSERVABILITY.md). Nil discards events.
	Events *obs.Sink
}

// Supervisor is the trusted coordinator: it owns the assignment queue and
// the verification pipeline and serves workers over TCP.
type Supervisor struct {
	cfg  SupervisorConfig
	work WorkFunc

	// logMu serializes calls into the user-supplied Logf hook; see logf.
	logMu sync.Mutex

	registry *obs.Registry
	metrics  *supMetrics
	events   *obs.Sink
	// replaying suppresses metric and event emission while journaled
	// results are fed back through the verification pipeline at
	// construction: counters describe what this process observed live.
	replaying bool

	mu        sync.Mutex
	queue     *sched.Queue
	collector *verify.Collector
	credits   *CreditLedger
	inflight  map[outstandingKey]inflightInfo
	nextID    int
	names     map[int]string
	resolved  map[int]uint64 // taskID → supervisor-recomputed value
	restored  int            // results recovered from the journal
	finished  bool

	done chan struct{} // closed when every task is adjudicated
	stop chan struct{} // closed by Close; halts the deadline sweeper

	ln     net.Listener
	connWG sync.WaitGroup
}

// NewSupervisor validates the configuration and builds the supervisor.
func NewSupervisor(cfg SupervisorConfig) (*Supervisor, error) {
	if cfg.Plan == nil {
		return nil, errors.New("platform: nil plan")
	}
	if cfg.WorkKind == "" {
		cfg.WorkKind = "hashchain"
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 1000
	}
	work, err := Work(cfg.WorkKind)
	if err != nil {
		return nil, err
	}
	registry := cfg.Metrics
	if registry == nil {
		registry = obs.NewRegistry()
	}
	s := &Supervisor{
		cfg:      cfg,
		work:     work,
		registry: registry,
		metrics:  newSupMetrics(registry),
		events:   cfg.Events,
		names:    make(map[int]string),
		resolved: make(map[int]uint64),
		credits:  NewCreditLedger(),
		done:     make(chan struct{}),
		stop:     make(chan struct{}),
	}
	// Ringer truth: the supervisor precomputes the work function itself.
	s.collector = verify.NewCollector(func(taskID int) uint64 {
		return work(TaskSeed(taskID), cfg.Iters)
	})
	if cfg.ResultDigits > 0 {
		s.collector.SetComparator(verify.Quantize{Digits: cfg.ResultDigits})
	}
	// Credit accounting: awarded only at certification, so claiming credit
	// for uncompleted or rejected work is structurally impossible; a
	// conviction revokes a participant's standing entirely.
	s.collector.OnVerdict(func(v verify.Verdict) {
		if v.Accepted {
			s.credits.Award(v.Contributors)
		}
		if v.Ringer && v.MismatchDetected {
			for _, p := range v.Suspects {
				s.credits.Revoke(p)
			}
		}
		if s.replaying {
			return // restored verdicts were counted by the previous process
		}
		if v.Accepted {
			s.metrics.tasksCertified.Inc()
		}
		if v.MismatchDetected {
			s.metrics.mismatchDetected.Inc()
			s.events.Emit(EvMismatchDetected, map[string]any{
				"task": v.TaskID, "ringer": v.Ringer, "suspects": v.Suspects,
			})
			if v.Ringer {
				s.metrics.ringerFailures.Inc()
				s.metrics.convictions.Add(uint64(len(v.Suspects)))
				s.events.Emit(EvRingerFailed, map[string]any{
					"task": v.TaskID, "suspects": v.Suspects,
				})
			}
		}
	})
	specs := cfg.Plan.Tasks()
	for _, sp := range specs {
		s.collector.Expect(sp.ID, sp.Copies)
	}
	s.queue, err = sched.NewQueue(specs, cfg.Policy, rng.New(cfg.Seed))
	if err != nil {
		return nil, err
	}
	if cfg.Restore != nil {
		s.replaying = true
		n, maxP, err := replayJournal(cfg.Restore, s.collector, s.queue)
		s.replaying = false
		if err != nil {
			return nil, err
		}
		s.restored = n
		s.metrics.journalRestored.Add(uint64(n))
		if maxP >= s.nextID {
			s.nextID = maxP + 1 // never reuse a journaled participant ID
		}
		s.logf("restored %d results from journal (%d assignments remain)",
			n, s.queue.Total()-s.queue.Issued())
		if s.queue.Done() {
			s.finished = true
			close(s.done)
		}
	}
	return s, nil
}

// logf is the single guarded gateway to the user-supplied Logf hook. It
// is called from connection goroutines and the deadline sweeper
// concurrently, so it serializes calls under its own mutex (the hook may
// not be reentrant) and recovers panics: a broken Logf loses a log line,
// never the computation.
func (s *Supervisor) logf(format string, args ...any) {
	fn := s.cfg.Logf
	if fn == nil {
		return
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	defer func() { _ = recover() }()
	fn(format, args...)
}

// Metrics returns the registry the supervisor instruments — the one from
// SupervisorConfig.Metrics, or the private registry created when that was
// nil. Safe to call and scrape at any time.
func (s *Supervisor) Metrics() *obs.Registry { return s.registry }

// Start begins listening on addr (e.g. "127.0.0.1:0") and serving workers.
// It returns the bound address.
func (s *Supervisor) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	go s.acceptLoop()
	if s.cfg.Deadline > 0 {
		go s.sweepLoop()
	}
	s.logf("supervisor listening on %s (%d assignments, %d tasks)",
		ln.Addr(), s.queue.Total(), s.cfg.Plan.N+s.cfg.Plan.Ringers)
	return ln.Addr().String(), nil
}

func (s *Supervisor) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			defer conn.Close()
			if err := s.serve(conn); err != nil && !errors.Is(err, io.EOF) {
				s.logf("connection error: %v", err)
			}
		}()
	}
}

// connState tracks the assignments a single connection currently holds
// (keyed by assignment, valued by the participant it was issued to), so
// work lost to a dropped connection can be re-issued.
type connState struct {
	held map[outstandingKey]int
	// registered holds the participant IDs created over this connection;
	// work requests and results must name one of them, so a client cannot
	// impersonate another participant (e.g. by guessing a small ID).
	registered map[int]bool
}

// serve handles one worker connection. When the connection ends — cleanly
// or not — any assignment it still holds is returned to the queue and
// re-issued to another participant: volunteer hosts leave all the time and
// the computation must not stall on them.
func (s *Supervisor) serve(conn io.ReadWriter) error {
	codec := NewCodec(conn)
	cs := &connState{held: make(map[outstandingKey]int), registered: make(map[int]bool)}
	s.metrics.workersConnected.Inc()
	defer s.metrics.workersConnected.Dec()
	defer s.reclaim(cs)
	for {
		m, err := codec.Recv()
		if err != nil {
			return err
		}
		var reply Message
		switch m.Type {
		case MsgRegister:
			reply = s.register(m)
			if reply.Type == MsgRegistered {
				cs.registered[reply.ParticipantID] = true
			}
		case MsgRequestWork:
			if !cs.registered[m.ParticipantID] {
				reply = Message{Type: MsgError, Error: "participant not registered on this connection"}
				break
			}
			reply = s.assign(m, cs)
		case MsgResult:
			if !cs.registered[m.ParticipantID] {
				reply = Message{Type: MsgError, Error: "participant not registered on this connection"}
				break
			}
			reply = s.result(m, cs)
		default:
			reply = Message{Type: MsgError, Error: fmt.Sprintf("unknown message type %q", m.Type)}
		}
		if err := codec.Send(reply); err != nil {
			return err
		}
	}
}

// reclaim re-queues every assignment a dead connection still held and
// records the departure of every participant registered on it. An
// assignment that the deadline sweeper already reclaimed — and possibly
// re-issued to another participant under the same key — is left alone:
// ownership is verified before abandoning.
func (s *Supervisor) reclaim(cs *connState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for key, holder := range cs.held {
		info, ok := s.inflight[key]
		if !ok || info.participant != holder {
			continue
		}
		delete(s.inflight, key)
		s.queue.Abandon(info.a)
		s.metrics.reclaimed.With("disconnect").Inc()
		s.events.Emit(EvAssignmentReclaimed, map[string]any{
			"task": info.a.TaskID, "copy": info.a.Copy,
			"participant": info.participant, "reason": "disconnect",
		})
		s.logf("reclaimed task %d copy %d from departed participant %d",
			info.a.TaskID, info.a.Copy, info.participant)
	}
	for id := range cs.registered {
		s.events.Emit(EvWorkerLeft, map[string]any{"participant": id, "name": s.names[id]})
	}
}

func (s *Supervisor) register(m Message) Message {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.nextID
	s.nextID++
	s.names[id] = m.Name
	s.metrics.workersRegistered.Inc()
	s.events.Emit(EvWorkerJoined, map[string]any{"participant": id, "name": m.Name})
	s.logf("registered participant %d (%s)", id, m.Name)
	return Message{Type: MsgRegistered, ParticipantID: id}
}

func (s *Supervisor) assign(m Message, cs *connState) Message {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Only conclusive (ringer) evidence denies further work: a 2-way
	// mismatch cannot say which party lied, and refusing every suspect
	// would let an adversary starve the computation by framing honest
	// participants.
	if s.collector.Convicted(m.ParticipantID) {
		return Message{Type: MsgError, Error: "participant is blacklisted"}
	}
	if s.finished {
		return Message{Type: MsgDone}
	}
	a, ok := s.queue.Next()
	if !ok {
		if s.queue.Done() {
			return Message{Type: MsgDone}
		}
		// Policy is holding copies back; ask the worker to retry.
		return Message{Type: MsgNoWork, Wait: 0.05}
	}
	s.outstanding(m.ParticipantID, a)
	cs.held[outstandingKey{a.TaskID, a.Copy}] = m.ParticipantID
	s.metrics.assignmentsIssued.Inc()
	s.events.Emit(EvAssignmentIssued, map[string]any{
		"task": a.TaskID, "copy": a.Copy, "participant": m.ParticipantID, "ringer": a.Ringer,
	})
	return Message{
		Type:   MsgWork,
		TaskID: a.TaskID,
		Copy:   a.Copy,
		Kind:   s.cfg.WorkKind,
		Seed:   TaskSeed(a.TaskID),
		Iters:  s.cfg.Iters,
	}
}

// outstanding records who holds which assignment so results can be matched
// back. Keyed by (task, copy).
type outstandingKey struct{ task, copy int }

func (s *Supervisor) outstanding(participant int, a sched.Assignment) {
	if s.inflight == nil {
		s.inflight = make(map[outstandingKey]inflightInfo)
	}
	s.inflight[outstandingKey{a.TaskID, a.Copy}] = inflightInfo{participant, a, time.Now()}
}

type inflightInfo struct {
	participant int
	a           sched.Assignment
	issuedAt    time.Time
}

// sweepLoop periodically reclaims assignments held past the deadline.
func (s *Supervisor) sweepLoop() {
	tick := time.NewTicker(s.cfg.Deadline / 4)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-s.done:
			return
		case <-tick.C:
			s.sweepExpired()
		}
	}
}

func (s *Supervisor) sweepExpired() {
	s.mu.Lock()
	defer s.mu.Unlock()
	cutoff := time.Now().Add(-s.cfg.Deadline)
	for key, info := range s.inflight {
		if info.issuedAt.Before(cutoff) {
			delete(s.inflight, key)
			s.queue.Abandon(info.a)
			s.metrics.reclaimed.With("deadline").Inc()
			s.events.Emit(EvAssignmentReclaimed, map[string]any{
				"task": info.a.TaskID, "copy": info.a.Copy,
				"participant": info.participant, "reason": "deadline",
			})
			s.logf("deadline exceeded: reclaimed task %d copy %d from participant %d",
				info.a.TaskID, info.a.Copy, info.participant)
		}
	}
}

func (s *Supervisor) result(m Message, cs *connState) Message {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := outstandingKey{m.TaskID, m.Copy}
	info, ok := s.inflight[key]
	if !ok {
		return s.rejectResult(m, "unassigned", "result for unassigned work")
	}
	if info.participant != m.ParticipantID {
		return s.rejectResult(m, "wrong_participant", "result from wrong participant")
	}
	delete(s.inflight, key)
	delete(cs.held, key)
	v, adjudicated, err := s.collector.Submit(verify.Result{
		Assignment:  info.a,
		Participant: m.ParticipantID,
		Value:       m.Value,
	})
	if err != nil {
		return s.rejectResult(m, "verification", err.Error())
	}
	s.queue.Complete(info.a)
	s.metrics.resultsAccepted.Inc()
	s.metrics.turnaround.With(s.names[info.participant]).
		Observe(time.Since(info.issuedAt).Seconds())
	s.events.Emit(EvResultAccepted, map[string]any{
		"task": m.TaskID, "copy": m.Copy, "participant": m.ParticipantID,
	})
	if s.cfg.Journal != nil {
		if err := appendJournal(s.cfg.Journal, journalRecord{
			TaskID:      m.TaskID,
			Copy:        m.Copy,
			Ringer:      info.a.Ringer,
			Participant: m.ParticipantID,
			Value:       m.Value,
		}); err != nil {
			s.logf("journal write failed: %v", err)
		} else {
			s.metrics.journalRecords.Inc()
		}
	}
	if adjudicated && v.MismatchDetected {
		s.logf("CHEAT DETECTED on task %d (suspects %v)", v.TaskID, v.Suspects)
		if s.cfg.ResolveMismatches && !v.Ringer {
			// Reactive measure: the supervisor recomputes the disputed
			// task on trusted hardware.
			s.resolved[v.TaskID] = s.work(TaskSeed(v.TaskID), s.cfg.Iters)
			s.logf("task %d resolved by supervisor recomputation", v.TaskID)
		}
	}
	if s.queue.Done() && !s.finished {
		s.finished = true
		close(s.done)
	}
	return Message{Type: MsgAck}
}

// rejectResult records a refused result (metrics + events) and builds the
// error reply. Callers hold s.mu.
func (s *Supervisor) rejectResult(m Message, reason, detail string) Message {
	s.metrics.resultsRejected.With(reason).Inc()
	s.events.Emit(EvResultRejected, map[string]any{
		"task": m.TaskID, "copy": m.Copy, "participant": m.ParticipantID, "reason": reason,
	})
	return Message{Type: MsgError, Error: detail}
}

// Wait blocks until every task has been adjudicated.
func (s *Supervisor) Wait() { <-s.done }

// Close shuts the listener down and waits for connections to finish.
func (s *Supervisor) Close() error {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.connWG.Wait()
	return err
}

// Summary is a snapshot of the platform's verification state.
type Summary struct {
	Participants int
	Verify       verify.Stats
	// Blacklist holds every suspect, including participants implicated
	// only circumstantially (a 2-way mismatch suspects both parties).
	Blacklist []int
	// Convicted holds participants caught by conclusive ringer evidence;
	// only these are refused further work.
	Convicted    []int
	WrongResults int // certified values that differ from the true computation
	// Restored counts results recovered from the journal at startup.
	Restored int
	// Resolved counts disputed tasks the supervisor recomputed itself
	// (only with ResolveMismatches enabled).
	Resolved int
	// Credits is the per-participant leaderboard: one credit per
	// contribution to a certified task, zeroed by conviction.
	Credits []CreditEntry
}

// Summary reports current progress; safe to call at any time.
func (s *Supervisor) Summary() Summary {
	s.mu.Lock()
	defer s.mu.Unlock()
	sum := Summary{
		Participants: s.nextID,
		Verify:       s.collector.Stats(),
		Blacklist:    s.collector.Blacklist(),
		Convicted:    s.collector.ConvictedList(),
		Credits:      s.credits.Leaderboard(),
		Resolved:     len(s.resolved),
		Restored:     s.restored,
	}
	var cmp verify.Comparator = verify.Exact{}
	if s.cfg.ResultDigits > 0 {
		cmp = verify.Quantize{Digits: s.cfg.ResultDigits}
	}
	for _, v := range s.collector.Verdicts() {
		truth := s.work(TaskSeed(v.TaskID), s.cfg.Iters)
		if v.Accepted && cmp.Canonical(v.Value) != cmp.Canonical(truth) {
			sum.WrongResults++
		}
	}
	return sum
}

// CertifiedValue returns the final value of a task and whether one exists:
// the redundancy-certified value, or the supervisor's own recomputation for
// resolved disputes.
func (s *Supervisor) CertifiedValue(taskID int) (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.resolved[taskID]; ok {
		return v, true
	}
	for _, v := range s.collector.Verdicts() {
		if v.TaskID == taskID && v.Accepted {
			return v.Value, true
		}
	}
	return 0, false
}

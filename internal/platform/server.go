package platform

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"redundancy/internal/adapt"
	"redundancy/internal/obs"
	"redundancy/internal/plan"
	"redundancy/internal/rng"
	"redundancy/internal/sched"
	"redundancy/internal/verify"
)

// SupervisorConfig parameterizes a supervisor server.
type SupervisorConfig struct {
	// Plan is the redundancy plan to execute.
	Plan *plan.Plan
	// Policy is the assignment-release discipline (default Free).
	Policy sched.Policy
	// WorkKind names the work function (default "hashchain").
	WorkKind string
	// Iters is the per-task work amount (default 1000).
	Iters int
	// Seed shuffles the assignment order.
	Seed uint64
	// MaxBatch caps how many assignments one get_work lease may carry
	// (0 means DefaultMaxBatch; negative is rejected). Workers ask for
	// their own batch size and receive min(requested, MaxBatch). Setting 1
	// caps every lease at a single assignment without refusing
	// batch-capable workers.
	MaxBatch int
	// Deadline, when positive, bounds how long an assignment may stay out
	// with one participant before it is reclaimed and re-issued to another
	// (volunteer hosts stall, sleep, or disappear silently). A participant
	// submitting after its assignment was reclaimed is rejected.
	Deadline time.Duration
	// IOTimeout, when positive, bounds each read of a request and each
	// write of a reply on a worker connection. A peer that stalls mid-frame
	// (or a slow-loris) is disconnected and its assignments reclaimed,
	// instead of pinning a connection goroutine forever.
	IOTimeout time.Duration
	// Journal, when non-nil, receives one JSON line per accepted result;
	// a supervisor restarted with the same plan and Restore pointed at the
	// journal resumes without re-running completed work.
	Journal io.Writer
	// JournalSync, when set and Journal has a Sync method (an *os.File),
	// fsyncs after every appended record, so even a machine crash loses at
	// most the torn tail of the final record — which replay tolerates.
	JournalSync bool
	// Restore, when non-nil, is replayed at construction (see Journal).
	Restore io.Reader
	// WrapListener, when non-nil, wraps the listener Start creates before
	// any connection is accepted — the hook the fault injector
	// (internal/faults) plugs into on the supervisor side.
	WrapListener func(net.Listener) net.Listener
	// ResultDigits, when positive, matches returned values as float64 bit
	// patterns quantized to that many significant decimal digits instead of
	// exactly — for floating-point workloads whose results agree only to a
	// tolerance across heterogeneous hosts. 0 keeps exact matching.
	ResultDigits int
	// ResolveMismatches enables the "reactive measure" the paper alludes
	// to: when redundancy exposes a mismatch on a regular task, the
	// supervisor recomputes the task itself on trusted hardware, salvaging
	// a correct certified value at precompute cost. Off by default — it is
	// exactly the expensive fallback static redundancy tries to avoid.
	ResolveMismatches bool
	// Logf, when set, receives progress lines (e.g. log.Printf). The
	// supervisor invokes it from multiple goroutines (connection handlers
	// and the deadline sweeper) but serializes every call under its own
	// mutex and recovers panics, so a nil, non-reentrant, or faulty Logf
	// can never take a run down. Nil suppresses logging.
	Logf func(format string, args ...any)
	// Metrics, when non-nil, is the registry the supervisor instruments;
	// serve it with Registry.Handler to expose /metrics. When nil the
	// supervisor still maintains a private registry (reachable via
	// (*Supervisor).Metrics), so counters are always collected.
	// OBSERVABILITY.md documents every series.
	Metrics *obs.Registry
	// Events, when non-nil, receives one structured JSON line per
	// platform event (assignment_issued, result_accepted,
	// mismatch_detected, ...; see OBSERVABILITY.md). Nil discards events.
	Events *obs.Sink
	// Adapt, when non-nil, turns on the adaptive redundancy control plane
	// (internal/adapt): the supervisor estimates the adversary share p̂
	// from its verification verdicts and, whenever the estimate's upper
	// confidence bound pushes any active class's P_{k,p̂} below
	// Adapt.TargetEpsilon, journals and applies a plan revision that
	// promotes still-queued tasks and mints fresh ringers. Requires the
	// Free policy (revisions re-shape the queue) and mutates Plan in
	// place via plan.ApplyRevision.
	Adapt *adapt.Config
}

// Supervisor is the trusted coordinator: it owns the assignment queue and
// the verification pipeline and serves workers over TCP.
type Supervisor struct {
	cfg  SupervisorConfig
	work WorkFunc

	// logMu serializes calls into the user-supplied Logf hook; see logf.
	logMu sync.Mutex

	registry *obs.Registry
	metrics  *supMetrics
	events   *obs.Sink
	// replaying suppresses metric and event emission while journaled
	// results are fed back through the verification pipeline at
	// construction: counters describe what this process observed live.
	replaying bool

	mu        sync.Mutex
	queue     *sched.Queue
	collector *verify.Collector
	credits   *CreditLedger
	inflight  map[outstandingKey]inflightInfo
	nextID    int
	names     map[int]string
	tokens    map[int]uint64 // participant → resume credential
	resolved  map[int]uint64 // taskID → supervisor-recomputed value
	restored  int            // results recovered from the journal
	finished  bool
	draining  bool // Shutdown in progress: no new assignments

	// Adaptive control plane (cfg.Adapt != nil). est accumulates evidence
	// from every verdict — including journal replay, so p̂ survives a
	// restart; revApplied counts revisions applied to the plan (live and
	// replayed), which is also the next revision's journal sequence
	// number.
	adaptCfg   adapt.Config
	est        *adapt.Estimator
	revApplied int

	restoredBytes int64 // clean journal prefix length, for tail truncation

	done     chan struct{} // closed when every task is adjudicated
	stop     chan struct{} // closed by Close/Shutdown; halts the sweeper
	stopOnce sync.Once

	ln     net.Listener
	connWG sync.WaitGroup

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool // no further connections are admitted
}

// DefaultMaxBatch is the lease-size cap applied when
// SupervisorConfig.MaxBatch is zero.
const DefaultMaxBatch = 16

// NewSupervisor validates the configuration and builds the supervisor.
func NewSupervisor(cfg SupervisorConfig) (*Supervisor, error) {
	if cfg.Plan == nil {
		return nil, errors.New("platform: nil plan")
	}
	if cfg.MaxBatch < 0 {
		return nil, errors.New("platform: negative MaxBatch")
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.WorkKind == "" {
		cfg.WorkKind = "hashchain"
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 1000
	}
	work, err := Work(cfg.WorkKind)
	if err != nil {
		return nil, err
	}
	var adaptCfg adapt.Config
	if cfg.Adapt != nil {
		if cfg.Policy != sched.Free {
			return nil, fmt.Errorf("platform: adaptive re-planning requires the free policy, have %v", cfg.Policy)
		}
		adaptCfg, err = cfg.Adapt.Normalized()
		if err != nil {
			return nil, err
		}
	}
	registry := cfg.Metrics
	if registry == nil {
		registry = obs.NewRegistry()
	}
	s := &Supervisor{
		cfg:      cfg,
		work:     work,
		registry: registry,
		metrics:  newSupMetrics(registry),
		events:   cfg.Events,
		names:    make(map[int]string),
		tokens:   make(map[int]uint64),
		resolved: make(map[int]uint64),
		credits:  NewCreditLedger(),
		done:     make(chan struct{}),
		stop:     make(chan struct{}),
		conns:    make(map[net.Conn]struct{}),
	}
	if cfg.Adapt != nil {
		s.adaptCfg = adaptCfg
		s.est = adapt.NewEstimator(adaptCfg.Z, adaptCfg.Decay)
	}
	// Ringer truth: the supervisor precomputes the work function itself.
	s.collector = verify.NewCollector(func(taskID int) uint64 {
		return work(TaskSeed(taskID), cfg.Iters)
	})
	if cfg.ResultDigits > 0 {
		s.collector.SetComparator(verify.Quantize{Digits: cfg.ResultDigits})
	}
	// Credit accounting: awarded only at certification, so claiming credit
	// for uncompleted or rejected work is structurally impossible; a
	// conviction revokes a participant's standing entirely.
	s.collector.OnVerdict(func(v verify.Verdict) {
		if s.est != nil {
			// Adaptive evidence: every adjudicated copy is one Bernoulli
			// observation, attributed copies are the bad ones. Fed during
			// replay too, so p̂ survives a restart along with the plan.
			s.est.Observe(v.Copies, len(v.Suspects))
		}
		if v.Accepted {
			s.credits.Award(v.Contributors)
		}
		if v.Ringer && v.MismatchDetected {
			for _, p := range v.Suspects {
				s.credits.Revoke(p)
			}
		}
		if s.replaying {
			return // restored verdicts were counted by the previous process
		}
		if v.Accepted {
			s.metrics.tasksCertified.Inc()
		}
		if v.MismatchDetected {
			s.metrics.mismatchDetected.Inc()
			s.events.Emit(EvMismatchDetected, map[string]any{
				"task": v.TaskID, "ringer": v.Ringer, "suspects": v.Suspects,
			})
			if v.Ringer {
				s.metrics.ringerFailures.Inc()
				s.metrics.convictions.Add(uint64(len(v.Suspects)))
				s.events.Emit(EvRingerFailed, map[string]any{
					"task": v.TaskID, "suspects": v.Suspects,
				})
			}
		}
	})
	specs := cfg.Plan.Tasks()
	for _, sp := range specs {
		s.collector.Expect(sp.ID, sp.Copies)
	}
	s.queue, err = sched.NewQueue(specs, cfg.Policy, rng.New(cfg.Seed))
	if err != nil {
		return nil, err
	}
	if cfg.Restore != nil {
		s.replaying = true
		n, maxP, valid, err := replayJournal(cfg.Restore, supReplayer{s})
		s.replaying = false
		if err != nil {
			return nil, err
		}
		s.restored = n
		s.restoredBytes = valid
		s.metrics.journalRestored.Add(uint64(n))
		if maxP >= s.nextID {
			s.nextID = maxP + 1 // never reuse a journaled participant ID
		}
		s.logf("restored %d results from journal (%d assignments remain)",
			n, s.queue.Total()-s.queue.Issued())
		if s.queue.Done() {
			s.finished = true
			close(s.done)
		}
	}
	return s, nil
}

// logf is the single guarded gateway to the user-supplied Logf hook. It
// is called from connection goroutines and the deadline sweeper
// concurrently, so it serializes calls under its own mutex (the hook may
// not be reentrant) and recovers panics: a broken Logf loses a log line,
// never the computation.
func (s *Supervisor) logf(format string, args ...any) {
	fn := s.cfg.Logf
	if fn == nil {
		return
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	defer func() { _ = recover() }()
	fn(format, args...)
}

// Metrics returns the registry the supervisor instruments — the one from
// SupervisorConfig.Metrics, or the private registry created when that was
// nil. Safe to call and scrape at any time.
func (s *Supervisor) Metrics() *obs.Registry { return s.registry }

// RestoredJournalBytes reports the length of the journal prefix that
// replayed cleanly at construction (0 without Restore). A caller reusing
// the same journal file for appending should truncate it to this length
// first, removing any torn tail a crashed predecessor left behind;
// cmd/supervisor does exactly that.
func (s *Supervisor) RestoredJournalBytes() int64 { return s.restoredBytes }

// Start begins listening on addr (e.g. "127.0.0.1:0") and serving workers.
// It returns the bound address.
func (s *Supervisor) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	if s.cfg.WrapListener != nil {
		ln = s.cfg.WrapListener(ln)
	}
	s.ln = ln
	go s.acceptLoop()
	if s.cfg.Deadline > 0 {
		go s.sweepLoop()
	}
	if s.est != nil {
		go s.adaptLoop()
	}
	s.logf("supervisor listening on %s (%d assignments, %d tasks)",
		ln.Addr(), s.queue.Total(), s.cfg.Plan.N+s.cfg.Plan.Ringers)
	return ln.Addr().String(), nil
}

func (s *Supervisor) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.connMu.Lock()
		if s.closed {
			s.connMu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			defer func() {
				s.connMu.Lock()
				delete(s.conns, conn)
				s.connMu.Unlock()
				conn.Close()
			}()
			if err := s.serve(conn); err != nil && !errors.Is(err, io.EOF) {
				s.logf("connection error: %v", err)
			}
		}()
	}
}

// closeConns stops admitting connections and force-closes every open one;
// their serve loops return on the next read or write.
func (s *Supervisor) closeConns() {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
}

// connState tracks the assignments a single connection currently holds
// (keyed by assignment, valued by the participant it was issued to), so
// work lost to a dropped connection can be re-issued.
type connState struct {
	held map[outstandingKey]int
	// registered holds the participant IDs created (or resumed) over this
	// connection; work requests and results must name one of them, so a
	// client cannot impersonate another participant (e.g. by guessing a
	// small ID). Resuming requires the supervisor-minted token.
	registered map[int]bool
}

// serve handles one worker connection. When the connection ends — cleanly
// or not — any assignment it still holds is returned to the queue and
// re-issued to another participant: volunteer hosts leave all the time and
// the computation must not stall on them.
func (s *Supervisor) serve(conn net.Conn) error {
	codec := NewCodec(conn)
	cs := &connState{held: make(map[outstandingKey]int), registered: make(map[int]bool)}
	s.metrics.workersConnected.Inc()
	defer s.metrics.workersConnected.Dec()
	defer s.reclaim(cs)
	for {
		if s.cfg.IOTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.cfg.IOTimeout))
		}
		m, err := codec.Recv()
		if err != nil {
			return err
		}
		var reply Message
		switch m.Type {
		case MsgRegister:
			reply = s.register(m, cs)
		case MsgRequestWork:
			if !cs.registered[m.ParticipantID] {
				reply = Message{Type: MsgError, Reason: ReasonUnregistered,
					Error: "participant not registered on this connection"}
				break
			}
			reply = s.assign(m, cs)
		case MsgResult:
			if !cs.registered[m.ParticipantID] {
				reply = Message{Type: MsgError, Reason: ReasonUnregistered,
					Error: "participant not registered on this connection"}
				break
			}
			reply = s.result(m, cs)
		case MsgGetWork:
			if !cs.registered[m.ParticipantID] {
				reply = Message{Type: MsgError, Reason: ReasonUnregistered,
					Error: "participant not registered on this connection"}
				break
			}
			reply = s.assignBatch(m, cs)
		case MsgResultBatch:
			if !cs.registered[m.ParticipantID] {
				reply = Message{Type: MsgError, Reason: ReasonUnregistered,
					Error: "participant not registered on this connection"}
				break
			}
			reply = s.resultBatch(m, cs)
		default:
			reply = Message{Type: MsgError, Reason: ReasonUnknownType,
				Error: fmt.Sprintf("unknown message type %q", m.Type)}
		}
		if s.cfg.IOTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.cfg.IOTimeout))
		}
		if err := codec.Send(reply); err != nil {
			return err
		}
	}
}

// reclaim re-queues every assignment a dead connection still held and
// records the departure of every participant registered on it. An
// assignment that the deadline sweeper already reclaimed — or that a
// resumed connection took ownership of — is left alone: ownership is
// verified before abandoning.
func (s *Supervisor) reclaim(cs *connState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for key, holder := range cs.held {
		info, ok := s.inflight[key]
		if !ok || info.participant != holder || info.owner != cs {
			continue
		}
		delete(s.inflight, key)
		s.queue.Abandon(info.a)
		s.metrics.reclaimed.With("disconnect").Inc()
		s.events.Emit(EvAssignmentReclaimed, map[string]any{
			"task": info.a.TaskID, "copy": info.a.Copy,
			"participant": info.participant, "reason": "disconnect",
		})
		s.logf("reclaimed task %d copy %d from departed participant %d",
			info.a.TaskID, info.a.Copy, info.participant)
	}
	for id := range cs.registered {
		s.events.Emit(EvWorkerLeft, map[string]any{"participant": id, "name": s.names[id]})
	}
}

// newToken mints an unguessable resume credential. Identity resumption is
// authenticated by this token, not by the (small, guessable) participant
// ID, so a malicious client cannot hijack another participant's identity
// and accrued credit.
func newToken() uint64 {
	var b [8]byte
	crand.Read(b[:]) // never fails; panics on broken platforms
	tok := binary.LittleEndian.Uint64(b[:])
	if tok == 0 {
		tok = 1 // 0 means "no token" on the wire
	}
	return tok
}

// register mints a new identity, or — with Resume set and a valid token —
// re-attaches an existing one to this connection, transferring any
// in-flight assignments so they are re-issued here instead of reclaimed
// when the old connection's goroutine notices the drop.
func (s *Supervisor) register(m Message, cs *connState) Message {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m.Resume {
		tok, ok := s.tokens[m.ParticipantID]
		if !ok || m.Token == 0 || m.Token != tok {
			return Message{Type: MsgError, Reason: ReasonResumeRefused,
				Error: "unknown participant or bad token"}
		}
		if s.collector.Convicted(m.ParticipantID) {
			return Message{Type: MsgError, Reason: ReasonBlacklisted,
				Error: "participant is blacklisted"}
		}
		moved := 0
		for key, info := range s.inflight {
			if info.participant != m.ParticipantID {
				continue
			}
			if info.owner != nil && info.owner != cs {
				delete(info.owner.held, key)
			}
			info.owner = cs
			s.inflight[key] = info
			cs.held[key] = m.ParticipantID
			moved++
		}
		cs.registered[m.ParticipantID] = true
		s.metrics.workersResumed.Inc()
		s.events.Emit(EvWorkerResumed, map[string]any{
			"participant": m.ParticipantID, "name": s.names[m.ParticipantID], "inflight": moved,
		})
		s.logf("participant %d (%s) resumed with %d in-flight assignment(s)",
			m.ParticipantID, s.names[m.ParticipantID], moved)
		return Message{Type: MsgRegistered, ParticipantID: m.ParticipantID, Token: tok}
	}
	id := s.nextID
	s.nextID++
	s.names[id] = m.Name
	tok := newToken()
	s.tokens[id] = tok
	cs.registered[id] = true
	s.metrics.workersRegistered.Inc()
	s.events.Emit(EvWorkerJoined, map[string]any{"participant": id, "name": m.Name})
	s.logf("registered participant %d (%s)", id, m.Name)
	return Message{Type: MsgRegistered, ParticipantID: id, Token: tok}
}

func (s *Supervisor) assign(m Message, cs *connState) Message {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Only conclusive (ringer) evidence denies further work: a 2-way
	// mismatch cannot say which party lied, and refusing every suspect
	// would let an adversary starve the computation by framing honest
	// participants.
	if s.collector.Convicted(m.ParticipantID) {
		return Message{Type: MsgError, Reason: ReasonBlacklisted, Error: "participant is blacklisted"}
	}
	if s.finished {
		return Message{Type: MsgDone}
	}
	// Re-issue before popping fresh work: a resumed connection first gets
	// back the assignment it already holds, so a reconnect never duplicates
	// queue state. Entries whose in-flight record is gone (swept, or
	// re-issued elsewhere) are stale and dropped.
	for key, holder := range cs.held {
		info, ok := s.inflight[key]
		if !ok || info.participant != holder || info.owner != cs {
			delete(cs.held, key)
			continue
		}
		if holder != m.ParticipantID {
			continue
		}
		info.issuedAt = time.Now()
		s.inflight[key] = info
		s.metrics.reissued.Inc()
		s.events.Emit(EvAssignmentIssued, map[string]any{
			"task": info.a.TaskID, "copy": info.a.Copy,
			"participant": m.ParticipantID, "ringer": info.a.Ringer, "reissue": true,
		})
		return Message{
			Type:   MsgWork,
			TaskID: info.a.TaskID,
			Copy:   info.a.Copy,
			Kind:   s.cfg.WorkKind,
			Seed:   TaskSeed(info.a.TaskID),
			Iters:  s.cfg.Iters,
		}
	}
	if s.draining {
		// Shutdown in progress: in-flight work may still land, but nothing
		// new goes out.
		return Message{Type: MsgNoWork, Wait: 0.2}
	}
	a, ok := s.queue.Next()
	if !ok {
		if s.queue.Done() {
			return Message{Type: MsgDone}
		}
		// Policy is holding copies back; ask the worker to retry.
		return Message{Type: MsgNoWork, Wait: 0.05}
	}
	s.outstanding(m.ParticipantID, a, cs)
	cs.held[outstandingKey{a.TaskID, a.Copy}] = m.ParticipantID
	s.metrics.assignmentsIssued.Inc()
	s.events.Emit(EvAssignmentIssued, map[string]any{
		"task": a.TaskID, "copy": a.Copy, "participant": m.ParticipantID, "ringer": a.Ringer,
	})
	return Message{
		Type:   MsgWork,
		TaskID: a.TaskID,
		Copy:   a.Copy,
		Kind:   s.cfg.WorkKind,
		Seed:   TaskSeed(a.TaskID),
		Iters:  s.cfg.Iters,
	}
}

// assignBatch serves a get_work request: under one lock acquisition it
// first re-issues every surviving assignment this participant already
// holds — the whole lease comes back after a resume, so a reconnect never
// duplicates queue state — then fills the remainder of the lease with
// fresh queue pops, up to min(requested, MaxBatch). Amortizing the mutex
// and the round trip over the lease is the batched hot path; the
// single-assignment handlers above are untouched so -batch 1 clients see
// today's wire behavior byte-for-byte.
func (s *Supervisor) assignBatch(m Message, cs *connState) Message {
	want := m.Batch
	if want < 1 {
		want = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.collector.Convicted(m.ParticipantID) {
		return Message{Type: MsgError, Reason: ReasonBlacklisted, Error: "participant is blacklisted"}
	}
	if s.finished {
		return Message{Type: MsgDone}
	}
	if want > s.cfg.MaxBatch {
		want = s.cfg.MaxBatch
	}
	items := make([]WorkItem, 0, want)
	// Re-issues are not capped by want: the worker must learn about every
	// assignment it still holds, or a resumed lease could silently shrink.
	for key, holder := range cs.held {
		info, ok := s.inflight[key]
		if !ok || info.participant != holder || info.owner != cs {
			delete(cs.held, key)
			continue
		}
		if holder != m.ParticipantID {
			continue
		}
		info.issuedAt = time.Now()
		s.inflight[key] = info
		s.metrics.reissued.Inc()
		s.events.Emit(EvAssignmentIssued, map[string]any{
			"task": info.a.TaskID, "copy": info.a.Copy,
			"participant": m.ParticipantID, "ringer": info.a.Ringer, "reissue": true,
		})
		items = append(items, WorkItem{TaskID: info.a.TaskID, Copy: info.a.Copy, Seed: TaskSeed(info.a.TaskID)})
	}
	for !s.draining && len(items) < want {
		a, ok := s.queue.Next()
		if !ok {
			break
		}
		s.outstanding(m.ParticipantID, a, cs)
		cs.held[outstandingKey{a.TaskID, a.Copy}] = m.ParticipantID
		s.metrics.assignmentsIssued.Inc()
		s.events.Emit(EvAssignmentIssued, map[string]any{
			"task": a.TaskID, "copy": a.Copy, "participant": m.ParticipantID, "ringer": a.Ringer,
		})
		items = append(items, WorkItem{TaskID: a.TaskID, Copy: a.Copy, Seed: TaskSeed(a.TaskID)})
	}
	if len(items) == 0 {
		if s.draining {
			return Message{Type: MsgNoWork, Wait: 0.2}
		}
		if s.queue.Done() {
			return Message{Type: MsgDone}
		}
		return Message{Type: MsgNoWork, Wait: 0.05}
	}
	s.metrics.batchesIssued.Inc()
	s.metrics.batchSize.Observe(float64(len(items)))
	return Message{Type: MsgWorkBatch, Kind: s.cfg.WorkKind, Iters: s.cfg.Iters, Work: items}
}

// outstanding records who holds which assignment so results can be matched
// back. Keyed by (task, copy).
type outstandingKey struct{ task, copy int }

func (s *Supervisor) outstanding(participant int, a sched.Assignment, cs *connState) {
	if s.inflight == nil {
		s.inflight = make(map[outstandingKey]inflightInfo)
	}
	s.inflight[outstandingKey{a.TaskID, a.Copy}] = inflightInfo{participant, a, time.Now(), cs}
}

type inflightInfo struct {
	participant int
	a           sched.Assignment
	issuedAt    time.Time
	owner       *connState // connection the assignment is currently attached to
}

// sweepLoop periodically reclaims assignments held past the deadline.
func (s *Supervisor) sweepLoop() {
	tick := time.NewTicker(s.cfg.Deadline / 4)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-s.done:
			return
		case <-tick.C:
			s.sweepExpired()
		}
	}
}

func (s *Supervisor) sweepExpired() {
	s.mu.Lock()
	defer s.mu.Unlock()
	cutoff := time.Now().Add(-s.cfg.Deadline)
	for key, info := range s.inflight {
		if info.issuedAt.Before(cutoff) {
			delete(s.inflight, key)
			if info.owner != nil {
				delete(info.owner.held, key)
			}
			s.queue.Abandon(info.a)
			s.metrics.reclaimed.With("deadline").Inc()
			s.events.Emit(EvAssignmentReclaimed, map[string]any{
				"task": info.a.TaskID, "copy": info.a.Copy,
				"participant": info.participant, "reason": "deadline",
			})
			s.logf("deadline exceeded: reclaimed task %d copy %d from participant %d",
				info.a.TaskID, info.a.Copy, info.participant)
		}
	}
}

// applyRevisionLocked applies one plan revision to the supervisor's live
// state — plan, queue, and verification expectations — in that order. It
// does NOT journal; the caller either just wrote the record (live tick) or
// is replaying one (restore). Callers hold s.mu. Revisions are validated
// against the plan before anything mutates, so a failure leaves state
// untouched.
func (s *Supervisor) applyRevisionLocked(rev plan.Revision) error {
	if err := s.cfg.Plan.ValidateRevision(rev); err != nil {
		return err
	}
	// Cross-check against the queue before mutating anything: every
	// promotion must name a never-issued task with exactly From copies
	// still queued. The controller only proposes such tasks; this guards
	// replay against a journal that disagrees with the queue.
	for _, pr := range rev.Promotions {
		if s.queue.EverIssued(pr.TaskID) {
			return fmt.Errorf("platform: revision promotes issued task %d", pr.TaskID)
		}
	}
	if err := s.cfg.Plan.ApplyRevision(rev); err != nil {
		return err
	}
	for _, pr := range rev.Promotions {
		if err := s.queue.Promote(pr.TaskID, pr.From, pr.To); err != nil {
			return fmt.Errorf("platform: revision %d: %w", s.revApplied, err)
		}
		s.collector.Expect(pr.TaskID, pr.To)
	}
	for _, m := range rev.Minted {
		if err := s.queue.AddTask(plan.TaskSpec{ID: m.TaskID, Copies: m.Copies, Ringer: true}); err != nil {
			return fmt.Errorf("platform: revision %d: %w", s.revApplied, err)
		}
		s.collector.Expect(m.TaskID, m.Copies)
	}
	s.revApplied++
	return nil
}

// adaptLoop periodically evaluates the adaptive controller.
func (s *Supervisor) adaptLoop() {
	tick := time.NewTicker(s.adaptCfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-s.done:
			return
		case <-tick.C:
			s.adaptTick()
		}
	}
}

// adaptTick is one evaluation of the control loop: refresh the p̂ gauges,
// and if the interval's upper bound leaves any active class below the
// target ε, journal and apply a revision. Journal-first ordering makes the
// crash cases safe: a torn revision line is dropped on restore and no
// later record can depend on it (revised copies are only issued after the
// apply), while a fully written line replays exactly.
func (s *Supervisor) adaptTick() {
	s.mu.Lock()
	defer s.mu.Unlock()
	est := s.est.Estimate()
	s.metrics.adaptPHat.Set(est.PHat)
	s.metrics.adaptIntervalWidth.Set(est.Width())
	if est.Samples < float64(s.adaptCfg.MinSamples) || s.finished || s.draining {
		return
	}
	var tasks []adapt.TaskState
	for _, sp := range s.cfg.Plan.Tasks() {
		tasks = append(tasks, adapt.TaskState{
			ID: sp.ID, Copies: sp.Copies, Ringer: sp.Ringer,
			Eligible: !sp.Ringer && !s.queue.EverIssued(sp.ID),
		})
	}
	rev, ok := adapt.Replan(tasks, s.cfg.Plan.NextTaskID(), s.adaptCfg.TargetEpsilon, est.Upper)
	if rev.Empty() {
		if !ok {
			s.logf("adapt: ε=%g unreachable at p̂ upper bound %.4f (safety cap)",
				s.adaptCfg.TargetEpsilon, est.Upper)
		}
		return
	}
	if s.cfg.Journal != nil {
		rec := revisionRecord{
			Seq: s.revApplied, PHat: est.PHat, Upper: est.Upper,
			Promotions: rev.Promotions, Minted: rev.Minted,
		}
		if err := appendJournalRevision(s.cfg.Journal, rec); err != nil {
			s.logf("adapt: journal write failed, revision deferred: %v", err)
			return
		}
		if s.cfg.JournalSync {
			s.syncJournal()
		}
	}
	seq := s.revApplied
	if err := s.applyRevisionLocked(rev); err != nil {
		// Pre-validated, so this is a genuine bug; surface loudly but keep
		// serving — the journal record will replay (and fail) identically.
		s.logf("adapt: BUG: journaled revision failed to apply: %v", err)
		return
	}
	promoted, minted := 0, 0
	for _, pr := range rev.Promotions {
		promoted += pr.To - pr.From
	}
	for _, m := range rev.Minted {
		minted += m.Copies
	}
	s.metrics.adaptRevisions.Inc()
	s.metrics.adaptPromoted.Add(uint64(promoted))
	s.metrics.adaptMinted.Add(uint64(len(rev.Minted)))
	s.events.Emit(EvPlanRevised, map[string]any{
		"seq": seq, "phat": est.PHat, "upper": est.Upper,
		"promotions": len(rev.Promotions), "promoted_copies": promoted,
		"minted": len(rev.Minted), "minted_copies": minted, "satisfied": ok,
	})
	s.logf("adapt: revision %d applied (p̂=%.4f upper=%.4f): %d promotion(s), %d minted ringer(s), %d new assignments",
		seq, est.PHat, est.Upper, len(rev.Promotions), len(rev.Minted), rev.CopiesAdded())
}

// AdaptiveEstimate returns the current p̂ estimate and true when the
// adaptive control plane is enabled.
func (s *Supervisor) AdaptiveEstimate() (adapt.Estimate, bool) {
	if s.est == nil {
		return adapt.Estimate{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.est.Estimate(), true
}

// RevisionsApplied reports how many plan revisions this supervisor has
// applied, including revisions restored from the journal.
func (s *Supervisor) RevisionsApplied() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.revApplied
}

func (s *Supervisor) result(m Message, cs *connState) Message {
	s.mu.Lock()
	defer s.mu.Unlock()
	var recs []journalRecord
	reason, detail := s.acceptResult(m.ParticipantID, m.TaskID, m.Copy, m.Value, cs, &recs)
	if reason != "" {
		return s.rejectResult(m, reason, detail)
	}
	for _, rec := range recs {
		if err := appendJournal(s.cfg.Journal, rec); err != nil {
			s.logf("journal write failed: %v", err)
		} else {
			s.metrics.journalRecords.Inc()
			if s.cfg.JournalSync {
				s.syncJournal()
			}
		}
	}
	return Message{Type: MsgAck}
}

// resultBatch serves a result_batch: every result is verified and credited
// under a single lock acquisition, their journal records are appended with
// one buffered write (a crash can tear only the final record, which replay
// tolerates), and — the other half of the batched hot path — JournalSync
// mode pays one fsync for the whole batch, after the lock is released.
// The fsync still precedes the ack, so the durability contract (an acked
// result survives a crash) is unchanged; Sync flushes everything written
// so far, and writes are ordered under s.mu, so syncing outside the lock
// cannot miss this batch's records.
func (s *Supervisor) resultBatch(m Message, cs *connState) Message {
	acks := make([]ResultAck, 0, len(m.Results))
	var recs []journalRecord
	s.mu.Lock()
	for _, r := range m.Results {
		reason, detail := s.acceptResult(m.ParticipantID, r.TaskID, r.Copy, r.Value, cs, &recs)
		ack := ResultAck{TaskID: r.TaskID, Copy: r.Copy, OK: reason == ""}
		if reason != "" {
			s.recordReject(r.TaskID, r.Copy, m.ParticipantID, reason)
			ack.Reason = reason
			ack.Error = detail
		}
		acks = append(acks, ack)
	}
	synced := false
	if len(recs) > 0 {
		if err := appendJournalBatch(s.cfg.Journal, recs); err != nil {
			s.logf("journal write failed: %v", err)
		} else {
			s.metrics.journalRecords.Add(uint64(len(recs)))
			synced = s.cfg.JournalSync
		}
	}
	s.mu.Unlock()
	if synced {
		s.syncJournal()
		s.metrics.batchedJournalSyncs.Inc()
	}
	return Message{Type: MsgBatchAck, Acks: acks}
}

// acceptResult verifies ownership of one submitted result and feeds it
// into the verification pipeline, updating queue, credit, metrics, and
// event state; on success it appends the result's journal record to *recs
// (when journaling is on) and returns "", "" — writing the records is the
// caller's business, so a batch can journal in one write. On refusal it
// returns the rejection reason and detail and changes nothing. Callers
// hold s.mu.
func (s *Supervisor) acceptResult(participant, taskID, copy int, value uint64, cs *connState, recs *[]journalRecord) (reason, detail string) {
	key := outstandingKey{taskID, copy}
	info, ok := s.inflight[key]
	if !ok {
		return ReasonUnassigned, "result for unassigned work"
	}
	if info.participant != participant {
		return ReasonWrongParticipant, "result from wrong participant"
	}
	delete(s.inflight, key)
	delete(cs.held, key)
	if info.owner != nil && info.owner != cs {
		delete(info.owner.held, key)
	}
	v, adjudicated, err := s.collector.Submit(verify.Result{
		Assignment:  info.a,
		Participant: participant,
		Value:       value,
	})
	if err != nil {
		return ReasonVerification, err.Error()
	}
	s.queue.Complete(info.a)
	s.metrics.resultsAccepted.Inc()
	s.metrics.turnaround.With(s.names[info.participant]).
		Observe(time.Since(info.issuedAt).Seconds())
	s.events.Emit(EvResultAccepted, map[string]any{
		"task": taskID, "copy": copy, "participant": participant,
	})
	if s.cfg.Journal != nil {
		*recs = append(*recs, journalRecord{
			TaskID:      taskID,
			Copy:        copy,
			Ringer:      info.a.Ringer,
			Participant: participant,
			Value:       value,
		})
	}
	if adjudicated && v.MismatchDetected {
		s.logf("CHEAT DETECTED on task %d (suspects %v)", v.TaskID, v.Suspects)
		if s.cfg.ResolveMismatches && !v.Ringer {
			// Reactive measure: the supervisor recomputes the disputed
			// task on trusted hardware.
			s.resolved[v.TaskID] = s.work(TaskSeed(v.TaskID), s.cfg.Iters)
			s.logf("task %d resolved by supervisor recomputation", v.TaskID)
		}
	}
	if s.queue.Done() && !s.finished {
		s.finished = true
		close(s.done)
	}
	return "", ""
}

// recordReject counts and reports a refused result. Callers hold s.mu.
func (s *Supervisor) recordReject(taskID, copy, participant int, reason string) {
	s.metrics.resultsRejected.With(reason).Inc()
	s.events.Emit(EvResultRejected, map[string]any{
		"task": taskID, "copy": copy, "participant": participant, "reason": reason,
	})
}

// rejectResult records a refused result (metrics + events) and builds the
// error reply. Callers hold s.mu.
func (s *Supervisor) rejectResult(m Message, reason, detail string) Message {
	s.recordReject(m.TaskID, m.Copy, m.ParticipantID, reason)
	return Message{Type: MsgError, Reason: reason, Error: detail}
}

// syncer is the optional flushing facet of a journal writer (*os.File
// implements it).
type syncer interface{ Sync() error }

// syncJournal fsyncs the journal if its writer supports it. Safe with or
// without s.mu held: appends are ordered under s.mu, and Sync flushes
// everything written before the call, so a batch handler syncing after
// unlock still covers its own records (*os.File.Sync is goroutine-safe,
// logf and the counter guard themselves).
func (s *Supervisor) syncJournal() {
	sy, ok := s.cfg.Journal.(syncer)
	if !ok {
		return
	}
	if err := sy.Sync(); err != nil {
		s.logf("journal sync failed: %v", err)
		return
	}
	s.metrics.journalSyncs.Inc()
}

// Wait blocks until every task has been adjudicated.
func (s *Supervisor) Wait() { <-s.done }

// Shutdown drains the supervisor gracefully: it stops accepting
// connections and issuing assignments, waits (up to ctx) for in-flight
// assignments to land or be reclaimed, then closes every connection and
// flushes the journal. It returns nil if the drain completed, or ctx's
// error if the deadline cut it short (state is still consistent — the
// journal has every accepted result).
func (s *Supervisor) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	if s.ln != nil {
		s.ln.Close()
	}
	drained := s.awaitDrain(ctx)
	s.stopOnce.Do(func() { close(s.stop) })
	s.closeConns()
	s.connWG.Wait()
	s.mu.Lock()
	s.syncJournal()
	s.mu.Unlock()
	if drained {
		return nil
	}
	return ctx.Err()
}

// awaitDrain polls until no assignment is in flight or ctx expires.
func (s *Supervisor) awaitDrain(ctx context.Context) bool {
	for {
		s.mu.Lock()
		n := len(s.inflight)
		s.mu.Unlock()
		if n == 0 {
			return true
		}
		select {
		case <-ctx.Done():
			return false
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// Close shuts the supervisor down. After the computation finished it
// waits for workers to collect their done replies and leave, as before;
// mid-run it is an abrupt kill — every open connection is closed without
// draining (in-flight work is lost to the journal's mercy, which is the
// point: tests kill a supervisor this way and assert the journal restores
// it). Use Shutdown for a graceful mid-run stop.
func (s *Supervisor) Close() error {
	s.stopOnce.Do(func() { close(s.stop) })
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.mu.Lock()
	finished := s.finished
	s.mu.Unlock()
	if !finished {
		s.closeConns()
	}
	s.connWG.Wait()
	s.mu.Lock()
	s.syncJournal()
	s.mu.Unlock()
	return err
}

// Summary is a snapshot of the platform's verification state.
type Summary struct {
	Participants int
	Verify       verify.Stats
	// Blacklist holds every suspect, including participants implicated
	// only circumstantially (a 2-way mismatch suspects both parties).
	Blacklist []int
	// Convicted holds participants caught by conclusive ringer evidence;
	// only these are refused further work.
	Convicted    []int
	WrongResults int // certified values that differ from the true computation
	// Restored counts results recovered from the journal at startup.
	Restored int
	// Resolved counts disputed tasks the supervisor recomputed itself
	// (only with ResolveMismatches enabled).
	Resolved int
	// Credits is the per-participant leaderboard: one credit per
	// contribution to a certified task, zeroed by conviction.
	Credits []CreditEntry
}

// Summary reports current progress; safe to call at any time.
func (s *Supervisor) Summary() Summary {
	s.mu.Lock()
	defer s.mu.Unlock()
	sum := Summary{
		Participants: s.nextID,
		Verify:       s.collector.Stats(),
		Blacklist:    s.collector.Blacklist(),
		Convicted:    s.collector.ConvictedList(),
		Credits:      s.credits.Leaderboard(),
		Resolved:     len(s.resolved),
		Restored:     s.restored,
	}
	var cmp verify.Comparator = verify.Exact{}
	if s.cfg.ResultDigits > 0 {
		cmp = verify.Quantize{Digits: s.cfg.ResultDigits}
	}
	for _, v := range s.collector.Verdicts() {
		truth := s.work(TaskSeed(v.TaskID), s.cfg.Iters)
		if v.Accepted && cmp.Canonical(v.Value) != cmp.Canonical(truth) {
			sum.WrongResults++
		}
	}
	return sum
}

// CertifiedValue returns the final value of a task and whether one exists:
// the redundancy-certified value, or the supervisor's own recomputation for
// resolved disputes.
func (s *Supervisor) CertifiedValue(taskID int) (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.resolved[taskID]; ok {
		return v, true
	}
	for _, v := range s.collector.Verdicts() {
		if v.TaskID == taskID && v.Accepted {
			return v.Value, true
		}
	}
	return 0, false
}

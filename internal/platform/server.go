package platform

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"redundancy/internal/adapt"
	"redundancy/internal/health"
	"redundancy/internal/obs"
	"redundancy/internal/plan"
	"redundancy/internal/rng"
	"redundancy/internal/sched"
	"redundancy/internal/verify"
)

// SupervisorConfig parameterizes a supervisor server.
type SupervisorConfig struct {
	// Plan is the redundancy plan to execute.
	Plan *plan.Plan
	// Policy is the assignment-release discipline (default Free).
	Policy sched.Policy
	// WorkKind names the work function (default "hashchain").
	WorkKind string
	// Iters is the per-task work amount (default 1000).
	Iters int
	// Seed shuffles the assignment order.
	Seed uint64
	// MaxBatch caps how many assignments one get_work lease may carry
	// (0 means DefaultMaxBatch; negative is rejected). Workers ask for
	// their own batch size and receive min(requested, MaxBatch). Setting 1
	// caps every lease at a single assignment without refusing
	// batch-capable workers.
	MaxBatch int
	// Deadline, when positive, bounds how long an assignment may stay out
	// with one participant before it is reclaimed and re-issued to another
	// (volunteer hosts stall, sleep, or disappear silently). A participant
	// submitting after its assignment was reclaimed is rejected.
	Deadline time.Duration
	// IOTimeout, when positive, bounds each read of a request and each
	// write of a reply on a worker connection. A peer that stalls mid-frame
	// (or a slow-loris) is disconnected and its assignments reclaimed,
	// instead of pinning a connection goroutine forever.
	IOTimeout time.Duration
	// Journal, when non-nil, receives one JSON line per accepted result;
	// a supervisor restarted with the same plan and Restore pointed at the
	// journal resumes without re-running completed work.
	Journal io.Writer
	// JournalSync, when set and Journal has a Sync method (an *os.File),
	// fsyncs after every appended record, so even a machine crash loses at
	// most the torn tail of the final record — which replay tolerates.
	JournalSync bool
	// GroupCommit, when set (and Journal is non-nil), routes journal
	// appends from all connections through a dedicated committer goroutine
	// that coalesces every record arriving during a commit window into one
	// buffered write followed by (with JournalSync) one fsync, releasing
	// each batch's ack only after the fsync covering its records returns.
	// Durability and ordering are unchanged — an acked result is on disk,
	// revision records still precede any result they enable — but N
	// concurrent result batches cost one fsync instead of N. Off, every
	// handler writes (and syncs) inline, the pre-group-commit behavior.
	GroupCommit bool
	// CommitLatency, when positive, models the commit latency of the
	// journal's backing store — networked block storage, an NFS export, a
	// synchronous replica — by holding the journal pipeline for this long
	// on every commit before the ack is released. Inline (non-GroupCommit)
	// appends pay it per result batch under the journal lock, exactly
	// where a slow device's fsync would sit; the group committer pays it
	// once per commit window, so the windowing amortizes it the same way
	// it amortizes a real fsync. A benchmarking and testing aid (the
	// sharded platformbench sweep uses it to measure coordination
	// throughput when durability, not CPU, is the bottleneck); leave zero
	// to let the real device set the pace. Requires a Journal.
	CommitLatency time.Duration
	// SnapshotInterval, when positive, captures a snapshot of the
	// supervisor's certification state into the journal after every
	// SnapshotInterval appended records (counted, not timed, so behavior
	// is deterministic under test). A snapshot heading a journal replaces
	// the replay of everything it covers. Requires Journal and the Free
	// policy (snapshot restore bulk-completes the queue, which the
	// holdback policies cannot express). 0 disables snapshots.
	SnapshotInterval int
	// Compact, when set (requires SnapshotInterval), makes each snapshot
	// atomically *replace* the journal instead of extending it: the
	// journal then holds one snapshot line plus the records appended
	// since, keeping its size — and the next restore's cost — O(live
	// state) instead of O(run history). Requires a Journal that supports
	// crash-atomic replacement (*JournalFile).
	Compact bool
	// Restore, when non-nil, is replayed at construction (see Journal).
	Restore io.Reader
	// WrapListener, when non-nil, wraps the listener Start creates before
	// any connection is accepted — the hook the fault injector
	// (internal/faults) plugs into on the supervisor side.
	WrapListener func(net.Listener) net.Listener
	// ResultDigits, when positive, matches returned values as float64 bit
	// patterns quantized to that many significant decimal digits instead of
	// exactly — for floating-point workloads whose results agree only to a
	// tolerance across heterogeneous hosts. 0 keeps exact matching.
	ResultDigits int
	// ResolveMismatches enables the "reactive measure" the paper alludes
	// to: when redundancy exposes a mismatch on a regular task, the
	// supervisor recomputes the task itself on trusted hardware, salvaging
	// a correct certified value at precompute cost. Off by default — it is
	// exactly the expensive fallback static redundancy tries to avoid.
	ResolveMismatches bool
	// Logf, when set, receives progress lines (e.g. log.Printf). The
	// supervisor invokes it from multiple goroutines (connection handlers
	// and the deadline sweeper) but serializes every call under its own
	// mutex and recovers panics, so a nil, non-reentrant, or faulty Logf
	// can never take a run down. Nil suppresses logging.
	Logf func(format string, args ...any)
	// Metrics, when non-nil, is the registry the supervisor instruments;
	// serve it with Registry.Handler to expose /metrics. When nil the
	// supervisor still maintains a private registry (reachable via
	// (*Supervisor).Metrics), so counters are always collected.
	// OBSERVABILITY.md documents every series.
	Metrics *obs.Registry
	// Events, when non-nil, receives one structured JSON line per
	// platform event (assignment_issued, result_accepted,
	// mismatch_detected, ...; see OBSERVABILITY.md). Nil discards events.
	Events *obs.Sink
	// Health, when non-nil, turns on participant quarantine: workers whose
	// suspect history or deadline-failure rate crosses the configured
	// thresholds stop receiving regular work, have their outstanding leases
	// reclaimed, and must earn re-admission through a probation of
	// ringer-only assignments (internal/health). Requires the Free policy
	// (probation serves ringers out of order) and, for the probation clock
	// to advance, a positive Deadline (the sweeper drives time-based
	// transitions). Quarantine entries also feed the adaptive p̂ estimator
	// when Adapt is enabled, so the plan and the roster react to the same
	// evidence.
	Health *health.Config
	// SpeculatePct, when in (0,1), enables speculative reissue: the
	// deadline sweeper offers a still-leased copy to a second participant
	// once the lease's age exceeds this percentile of observed completion
	// latency (the "clone at the right moment" policy of arXiv 2402.12584).
	// First result wins; the loser is rejected with reason "duplicate" and
	// never double-credited. Requires a positive Deadline and the Free
	// policy. Latency tracking uses Health's window settings when Health is
	// set, defaults otherwise.
	SpeculatePct float64
	// OnTurnaround, when set, receives each accepted copy's completion
	// latency measured from the copy's *first* issue — a speculative win
	// reports the full time since the original (straggling) issue, so the
	// hook measures what a client actually waited. Called from connection
	// goroutines concurrently (outside supervisor locks); keep it cheap
	// and goroutine-safe. platformbench's latency mode uses it to build
	// completion-time percentiles.
	OnTurnaround func(time.Duration)
	// Tasks, when non-nil, overrides Plan.Tasks() as the concrete task set
	// this supervisor owns — the sharding hook: a cluster partitions the
	// global plan's task IDs across shards by consistent-hash lookup
	// (internal/ring) and hands each shard its subset, so global task IDs
	// (and therefore TaskSeed inputs, ringer truth, and journal records)
	// are preserved shard-locally. Plan is still required: it carries the
	// run-wide ε bookkeeping the aggregator (internal/agg) evaluates.
	// Incompatible with Adapt (one shard must not re-plan the global
	// tail; the cluster's aggregator owns that trigger) and with
	// SnapshotInterval (snapshots capture whole-plan state).
	Tasks []plan.TaskSpec
	// ShardID, when non-empty, marks this supervisor as one shard of a
	// sharded cluster: hot-path counters gain shard_id-labeled series
	// (redundancy_shard_* in OBSERVABILITY.md) and every reply carries
	// the cluster's shard-map epoch once SetEpoch is called.
	ShardID string
	// Adapt, when non-nil, turns on the adaptive redundancy control plane
	// (internal/adapt): the supervisor estimates the adversary share p̂
	// from its verification verdicts and, whenever the estimate's upper
	// confidence bound pushes any active class's P_{k,p̂} below
	// Adapt.TargetEpsilon, journals and applies a plan revision that
	// promotes still-queued tasks and mints fresh ringers. Requires the
	// Free policy (revisions re-shape the queue) and mutates Plan in
	// place via plan.ApplyRevision.
	Adapt *adapt.Config
}

// The supervisor's shared state is split into three independently locked
// subsystems, so concurrent connections contend only for the state their
// current request actually touches (DESIGN.md §11 has the full ownership
// map):
//
//   - leaseState (lease.mu): the assignment queue and who holds what —
//     everything a get_work lease or a reclaim mutates;
//   - auditState (audit.mu): the verification pipeline and its derived
//     judgments — credits, convictions, the adaptive estimator;
//   - identState (ident.mu): the participant directory — IDs, names,
//     resume tokens.
//
// Lock order is lease.mu → audit.mu → ident.mu; the only place two are
// held at once is adaptTick (and construction, which is single-threaded),
// which must atomically re-shape both the queue and the expectations.
// Journal bytes are ordered by jnlMu (or the committer goroutine, which
// writes under jnlMu too), never by a state lock: handlers append after
// releasing state locks, which is safe because a record's content is
// fixed once its result is claimed, and revision records are written
// before the copies they enable can exist.

// leaseState guards the scheduler queue and the in-flight assignment
// table. Lease-lifecycle events (assignment_issued, result_accepted,
// assignment_reclaimed) are emitted while holding lease.mu, so the event
// stream is a serialization witness of lease history — the chaos property
// test replays it through a state machine.
type leaseState struct {
	mu       sync.Mutex
	queue    *sched.Queue
	inflight map[outstandingKey]inflightInfo
	finished bool
	draining bool // Shutdown in progress: no new assignments
	// waiters parks get_work requests that found the queue empty; each
	// channel is closed (once) by kickLocked when completions, reclaims,
	// or revisions may have made assignments available. Parking replaces
	// most of the no_work/sleep/retry polling near queue exhaustion.
	waiters []chan struct{}

	// Speculative reissue (SpeculatePct): spec holds at most one duplicate
	// per outstanding copy, issued to a *different* participant than the
	// primary in inflight. Duplicates live entirely outside the queue's
	// accounting — no pop, no Abandon, no Complete — so first-result-wins
	// adjudication never disturbs outstanding/issued counters. specq holds
	// copies the sweeper flagged as straggling, waiting for a second
	// participant to lease them; specLosers remembers, for a grace window,
	// which participant lost each race so a late duplicate submission gets
	// a precise "duplicate" rejection instead of "unassigned".
	spec       map[outstandingKey]inflightInfo
	specq      []outstandingKey
	specLosers map[outstandingKey]specLoser
}

// specLoser records the losing side of a resolved speculative race.
type specLoser struct {
	participant int
	at          time.Time
}

// auditState guards verification and everything verdicts feed: the
// credit ledger, supervisor-resolved disputes, and the adaptive
// estimator. revApplied counts plan revisions applied (live and
// replayed) and doubles as the next revision's journal sequence number.
type auditState struct {
	mu         sync.Mutex
	collector  *verify.Collector
	credits    *CreditLedger
	resolved   map[int]uint64 // taskID → supervisor-recomputed value
	est        *adapt.Estimator
	revApplied int
	// revisions retains every applied revision record (live and replayed),
	// in sequence order — snapshots carry them so a compacted journal can
	// still rebuild the revised plan.
	revisions []revisionRecord
}

// identState guards the participant directory: ID allocation, names, and
// resume credentials.
type identState struct {
	mu     sync.Mutex
	nextID int
	names  map[int]string
	tokens map[int]uint64 // participant → resume credential
}

// Supervisor is the trusted coordinator: it owns the assignment queue and
// the verification pipeline and serves workers over TCP.
type Supervisor struct {
	cfg  SupervisorConfig
	work WorkFunc

	// logMu serializes calls into the user-supplied Logf hook; see logf.
	logMu sync.Mutex

	registry *obs.Registry
	metrics  *supMetrics
	events   *obs.Sink
	// replaying suppresses metric and event emission while journaled
	// results are fed back through the verification pipeline at
	// construction: counters describe what this process observed live.
	replaying bool

	lease leaseState
	audit auditState
	ident identState

	// adaptCfg is immutable after construction (cfg.Adapt != nil).
	adaptCfg adapt.Config

	// roster is the participant health subsystem (nil when neither Health
	// nor SpeculatePct is configured). It locks itself and sits below every
	// state lock, so any handler may feed it observations directly.
	// quarantine gates the state machine: latency tracking runs whenever
	// roster is non-nil, but verdict/reclaim evidence only accumulates (and
	// participants only quarantine) when cfg.Health was given.
	roster     *health.Roster
	quarantine bool

	// qmu guards qpend, the queue of health transitions awaiting their
	// lease-level consequences. Transitions are produced under audit.mu
	// (verdict evidence) where lease.mu cannot be taken (lock order), so
	// entering Quarantined parks here until the next holder of lease.mu
	// drains it and reclaims the participant's outstanding leases. qmu is a
	// leaf lock: taken under audit.mu and lease.mu, never above them.
	qmu   sync.Mutex
	qpend []health.Transition

	restored      int   // results recovered from the journal
	restoredBytes int64 // clean journal prefix length, for tail truncation

	// jnlMu orders journal appends across goroutines (handlers on the
	// legacy path, adaptTick's revision records, the snapshotter, and the
	// group committer all write under it), so interleaved torn interior
	// writes are impossible. It is a leaf lock below every state lock.
	jnlMu sync.Mutex
	// jnlLines counts the records currently in the journal file (guarded
	// by jnlMu) — what compaction replaces, for exact accounting.
	jnlLines int64
	// jnlSince counts records appended since the last snapshot; snapBusy
	// keeps concurrent trigger crossings from stacking snapshots.
	jnlSince atomic.Int64
	snapBusy atomic.Bool
	// committer is the group-commit goroutine (GroupCommit mode), nil on
	// the legacy inline-write path.
	committer *journalCommitter

	// epoch is the cluster's shard-map epoch (0 when unsharded): stamped
	// on every reply so workers detect rebalances without polling, and
	// bumped only by the cluster via SetEpoch.
	epoch atomic.Uint64

	done     chan struct{} // closed when every task is adjudicated
	stop     chan struct{} // closed by Close/Shutdown; halts the loops
	stopOnce sync.Once

	ln     net.Listener
	connWG sync.WaitGroup
	loopWG sync.WaitGroup // sweepLoop and adaptLoop

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool // no further connections are admitted
}

// DefaultMaxBatch is the lease-size cap applied when
// SupervisorConfig.MaxBatch is zero.
const DefaultMaxBatch = 16

// leaseParkMax bounds how long an empty-handed get_work request may park
// waiting for assignments before it falls back to a no_work reply. Long
// enough to absorb the common "queue momentarily empty near the tail"
// window, short enough that a worker still polls through pathological
// stalls.
const leaseParkMax = time.Second

// NewSupervisor validates the configuration and builds the supervisor.
func NewSupervisor(cfg SupervisorConfig) (*Supervisor, error) {
	if cfg.Plan == nil {
		return nil, errors.New("platform: nil plan")
	}
	if cfg.MaxBatch < 0 {
		return nil, errors.New("platform: negative MaxBatch")
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.WorkKind == "" {
		cfg.WorkKind = "hashchain"
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 1000
	}
	work, err := Work(cfg.WorkKind)
	if err != nil {
		return nil, err
	}
	if cfg.SnapshotInterval < 0 {
		return nil, errors.New("platform: negative SnapshotInterval")
	}
	if cfg.CommitLatency < 0 {
		return nil, errors.New("platform: negative CommitLatency")
	}
	if cfg.CommitLatency > 0 && cfg.Journal == nil {
		return nil, errors.New("platform: CommitLatency requires a Journal")
	}
	if cfg.SnapshotInterval > 0 {
		if cfg.Journal == nil {
			return nil, errors.New("platform: SnapshotInterval requires a Journal")
		}
		if cfg.Policy != sched.Free {
			return nil, fmt.Errorf("platform: journal snapshots require the free policy, have %v", cfg.Policy)
		}
	}
	if cfg.Compact {
		if cfg.SnapshotInterval <= 0 {
			return nil, errors.New("platform: Compact requires SnapshotInterval")
		}
		if _, ok := cfg.Journal.(journalReplacer); !ok {
			return nil, errors.New("platform: Compact requires a journal supporting atomic replacement (use OpenJournalFile)")
		}
	}
	if cfg.SpeculatePct != 0 {
		if cfg.SpeculatePct < 0 || cfg.SpeculatePct >= 1 {
			return nil, fmt.Errorf("platform: SpeculatePct %v outside (0,1)", cfg.SpeculatePct)
		}
		if cfg.Deadline <= 0 {
			return nil, errors.New("platform: SpeculatePct requires a positive Deadline")
		}
	}
	if (cfg.Health != nil || cfg.SpeculatePct > 0) && cfg.Policy != sched.Free {
		return nil, fmt.Errorf("platform: participant health requires the free policy, have %v", cfg.Policy)
	}
	var roster *health.Roster
	if cfg.Health != nil || cfg.SpeculatePct > 0 {
		hcfg := health.Config{}
		if cfg.Health != nil {
			hcfg = *cfg.Health
		}
		roster, err = health.NewRoster(hcfg)
		if err != nil {
			return nil, err
		}
	}
	if cfg.Tasks != nil {
		if len(cfg.Tasks) == 0 {
			return nil, errors.New("platform: Tasks override is empty (a shard owning no tasks should not be started)")
		}
		if cfg.Adapt != nil {
			return nil, errors.New("platform: Tasks override is incompatible with Adapt (the cluster aggregator owns the global re-planning trigger)")
		}
		if cfg.SnapshotInterval > 0 {
			return nil, errors.New("platform: Tasks override is incompatible with SnapshotInterval")
		}
	}
	var adaptCfg adapt.Config
	if cfg.Adapt != nil {
		if cfg.Policy != sched.Free {
			return nil, fmt.Errorf("platform: adaptive re-planning requires the free policy, have %v", cfg.Policy)
		}
		adaptCfg, err = cfg.Adapt.Normalized()
		if err != nil {
			return nil, err
		}
	}
	registry := cfg.Metrics
	if registry == nil {
		registry = obs.NewRegistry()
	}
	s := &Supervisor{
		cfg:      cfg,
		work:     work,
		registry: registry,
		metrics:  newSupMetrics(registry),
		events:   cfg.Events,
		done:     make(chan struct{}),
		stop:     make(chan struct{}),
		conns:    make(map[net.Conn]struct{}),
	}
	s.lease.inflight = make(map[outstandingKey]inflightInfo)
	s.roster = roster
	s.quarantine = cfg.Health != nil
	if cfg.SpeculatePct > 0 {
		s.lease.spec = make(map[outstandingKey]inflightInfo)
		s.lease.specLosers = make(map[outstandingKey]specLoser)
	}
	s.audit.credits = NewCreditLedger()
	s.audit.resolved = make(map[int]uint64)
	s.ident.names = make(map[int]string)
	s.ident.tokens = make(map[int]uint64)
	if cfg.Adapt != nil {
		s.adaptCfg = adaptCfg
		s.audit.est = adapt.NewEstimator(adaptCfg.Z, adaptCfg.Decay)
	}
	// Ringer truth: the supervisor precomputes the work function itself.
	s.audit.collector = verify.NewCollector(func(taskID int) uint64 {
		return work(TaskSeed(taskID), cfg.Iters)
	})
	if cfg.ResultDigits > 0 {
		s.audit.collector.SetComparator(verify.Quantize{Digits: cfg.ResultDigits})
	}
	// Credit accounting: awarded only at certification, so claiming credit
	// for uncompleted or rejected work is structurally impossible; a
	// conviction revokes a participant's standing entirely. The callback
	// fires inside Collector.Submit, i.e. under audit.mu (or during
	// single-threaded construction replay), which is what makes the
	// estimator and ledger updates safe.
	s.audit.collector.OnVerdict(func(v *verify.Verdict) {
		if s.audit.est != nil {
			// Adaptive evidence: every adjudicated copy is one Bernoulli
			// observation, attributed copies are the bad ones. Fed during
			// replay too, so p̂ survives a restart along with the plan.
			s.audit.est.Observe(v.Copies, len(v.Suspects))
		}
		if v.Accepted {
			s.audit.credits.Award(v.Contributors)
		}
		if v.Ringer && v.MismatchDetected {
			for _, p := range v.Suspects {
				s.audit.credits.Revoke(p)
			}
		}
		if s.roster != nil && s.quarantine {
			// Health evidence: every contributor gets one verdict
			// observation, implicated or clean. Fed during replay too, so a
			// participant quarantined before a crash is still quarantined
			// after restore — pushTransition suppresses the side effects
			// (events, metrics, estimator, lease reclaim) while replaying,
			// and there are no outstanding leases to reclaim then anyway.
			now := time.Now()
			suspect := make(map[int]bool, len(v.Suspects))
			for _, p := range v.Suspects {
				suspect[p] = true
			}
			for _, p := range v.Contributors {
				if tr := s.roster.ObserveVerdict(p, suspect[p], v.Ringer, now); tr != nil {
					s.pushTransition(*tr, true)
				}
			}
		}
		if s.replaying {
			return // restored verdicts were counted by the previous process
		}
		if v.Accepted {
			s.metrics.tasksCertified.Inc()
		}
		if v.MismatchDetected {
			s.metrics.mismatchDetected.Inc()
			if s.events != nil {
				s.events.Emit(EvMismatchDetected, map[string]any{
					"task": v.TaskID, "ringer": v.Ringer, "suspects": v.Suspects,
				})
			}
			if v.Ringer {
				s.metrics.ringerFailures.Inc()
				s.metrics.convictions.Add(uint64(len(v.Suspects)))
				if s.events != nil {
					s.events.Emit(EvRingerFailed, map[string]any{
						"task": v.TaskID, "suspects": v.Suspects,
					})
				}
			}
		}
	})
	if cfg.ShardID != "" {
		s.metrics.bindShard(cfg.ShardID)
	}
	specs := cfg.Plan.Tasks()
	if cfg.Tasks != nil {
		specs = cfg.Tasks
	}
	for _, sp := range specs {
		s.audit.collector.Expect(sp.ID, sp.Copies)
	}
	s.lease.queue, err = sched.NewQueue(specs, cfg.Policy, rng.New(cfg.Seed))
	if err != nil {
		return nil, err
	}
	if cfg.Restore != nil {
		start := time.Now()
		s.replaying = true
		st, err := replayJournal(cfg.Restore, supReplayer{s})
		s.replaying = false
		if err != nil {
			return nil, err
		}
		s.observeRestore(start)
		s.restored = st.restored
		s.restoredBytes = st.validBytes
		s.jnlLines = int64(st.lines)
		s.metrics.journalRestored.Add(uint64(st.restored))
		if st.maxParticipant >= s.ident.nextID {
			s.ident.nextID = st.maxParticipant + 1 // never reuse a journaled participant ID
		}
		s.logf("restored %d results from journal (%d assignments remain)",
			st.restored, s.lease.queue.Total()-s.lease.queue.Issued())
		if s.lease.queue.Done() {
			s.lease.finished = true
			close(s.done)
		}
	}
	if cfg.GroupCommit && cfg.Journal != nil {
		s.committer = newJournalCommitter(s)
	}
	return s, nil
}

// logf is the single guarded gateway to the user-supplied Logf hook. It
// is called from connection goroutines and the deadline sweeper
// concurrently, so it serializes calls under its own mutex (the hook may
// not be reentrant) and recovers panics: a broken Logf loses a log line,
// never the computation.
func (s *Supervisor) logf(format string, args ...any) {
	fn := s.cfg.Logf
	if fn == nil {
		return
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	defer func() { _ = recover() }()
	fn(format, args...)
}

// Metrics returns the registry the supervisor instruments — the one from
// SupervisorConfig.Metrics, or the private registry created when that was
// nil. Safe to call and scrape at any time.
func (s *Supervisor) Metrics() *obs.Registry { return s.registry }

// SetEpoch publishes the cluster's shard-map epoch: every subsequent
// reply carries it, telling workers to re-resolve their routing when it
// moves. The cluster bumps it on every shard kill/restore (rebalance);
// unsharded supervisors leave it 0 and the field stays off the wire.
func (s *Supervisor) SetEpoch(e uint64) { s.epoch.Store(e) }

// Epoch reports the currently published shard-map epoch (0 = unsharded).
func (s *Supervisor) Epoch() uint64 { return s.epoch.Load() }

// RestoredJournalBytes reports the length of the journal prefix that
// replayed cleanly at construction (0 without Restore). A caller reusing
// the same journal file for appending should truncate it to this length
// first, removing any torn tail a crashed predecessor left behind;
// cmd/supervisor does exactly that.
func (s *Supervisor) RestoredJournalBytes() int64 { return s.restoredBytes }

// Start begins listening on addr (e.g. "127.0.0.1:0") and serving workers.
// It returns the bound address.
func (s *Supervisor) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	if s.cfg.WrapListener != nil {
		ln = s.cfg.WrapListener(ln)
	}
	s.ln = ln
	go s.acceptLoop()
	if s.cfg.Deadline > 0 || s.roster != nil {
		s.loopWG.Add(1)
		go func() { defer s.loopWG.Done(); s.sweepLoop() }()
	}
	if s.audit.est != nil {
		s.loopWG.Add(1)
		go func() { defer s.loopWG.Done(); s.adaptLoop() }()
	}
	s.logf("supervisor listening on %s (%d assignments, %d tasks)",
		ln.Addr(), s.lease.queue.Total(), s.cfg.Plan.N+s.cfg.Plan.Ringers)
	return ln.Addr().String(), nil
}

func (s *Supervisor) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.connMu.Lock()
		if s.closed {
			s.connMu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			defer func() {
				s.connMu.Lock()
				delete(s.conns, conn)
				s.connMu.Unlock()
				conn.Close()
			}()
			if err := s.serve(conn); err != nil && !errors.Is(err, io.EOF) {
				s.logf("connection error: %v", err)
			}
		}()
	}
}

// closeConns stops admitting connections and force-closes every open one;
// their serve loops return on the next read or write.
func (s *Supervisor) closeConns() {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
}

// connState tracks the assignments a single connection currently holds
// (keyed by assignment, valued by the participant it was issued to), so
// work lost to a dropped connection can be re-issued. held is shared
// state (the sweeper and resumed connections reach into it) and is
// guarded by lease.mu; registered and names are touched only by this
// connection's serve goroutine.
type connState struct {
	held map[outstandingKey]int
	// registered holds the participant IDs created (or resumed) over this
	// connection; work requests and results must name one of them, so a
	// client cannot impersonate another participant (e.g. by guessing a
	// small ID). Resuming requires the supervisor-minted token.
	registered map[int]bool
	// names caches the display names of participants registered here, so
	// the hot path never takes ident.mu just to label a metric.
	names map[int]string

	// Per-request scratch, reused across the serve loop: the previous
	// reply is fully encoded onto the wire before the next request is
	// read, so its backing arrays are free again. This removes the
	// per-batch slice allocations from the hot path.
	items []WorkItem
	fill  []sched.Assignment
	acks  []ResultAck
	pend  []pendingResult
	recs  []journalRecord
}

// serve handles one worker connection. When the connection ends — cleanly
// or not — any assignment it still holds is returned to the queue and
// re-issued to another participant: volunteer hosts leave all the time and
// the computation must not stall on them.
func (s *Supervisor) serve(conn net.Conn) error {
	codec := NewCodec(conn)
	cs := &connState{
		held:       make(map[outstandingKey]int),
		registered: make(map[int]bool),
		names:      make(map[int]string),
	}
	s.metrics.workersConnected.Inc()
	defer s.metrics.workersConnected.Dec()
	defer s.reclaim(cs)
	// Wire-byte accounting: fold the codec's running totals into the
	// per-codec counters as deltas, once per request round and once at
	// disconnect, so /metrics lags a connection by at most one reply.
	var seenJSON, seenBin int64
	flushWire := func() {
		j, b := codec.WireBytes()
		if d := j - seenJSON; d > 0 {
			s.metrics.wireBytesJSON.Add(uint64(d))
			seenJSON = j
		}
		if d := b - seenBin; d > 0 {
			s.metrics.wireBytesBin.Add(uint64(d))
			seenBin = b
		}
	}
	defer flushWire()
	for {
		if s.cfg.IOTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.cfg.IOTimeout))
		}
		m, err := codec.Recv()
		if err != nil {
			return err
		}
		var reply Message
		switch m.Type {
		case MsgRegister:
			reply = s.register(m, cs)
		case MsgRequestWork:
			if !cs.registered[m.ParticipantID] {
				reply = Message{Type: MsgError, Reason: ReasonUnregistered,
					Error: "participant not registered on this connection"}
				break
			}
			reply = s.assign(m, cs)
		case MsgResult:
			if !cs.registered[m.ParticipantID] {
				reply = Message{Type: MsgError, Reason: ReasonUnregistered,
					Error: "participant not registered on this connection"}
				break
			}
			reply = s.result(m, cs)
		case MsgGetWork:
			if !cs.registered[m.ParticipantID] {
				reply = Message{Type: MsgError, Reason: ReasonUnregistered,
					Error: "participant not registered on this connection"}
				break
			}
			reply = s.assignBatch(m, cs)
		case MsgResultBatch:
			if !cs.registered[m.ParticipantID] {
				reply = Message{Type: MsgError, Reason: ReasonUnregistered,
					Error: "participant not registered on this connection"}
				break
			}
			reply = s.resultBatch(m, cs)
		default:
			reply = Message{Type: MsgError, Reason: ReasonUnknownType,
				Error: fmt.Sprintf("unknown message type %q", m.Type)}
		}
		// Shard-map epoch: every reply from a sharded supervisor carries
		// the cluster's current epoch, so a worker learns of a rebalance
		// on its very next round trip and re-resolves its routing. 0
		// (unsharded, or a cluster that never rebalanced its bootstrap
		// epoch) is omitted from the wire entirely.
		if e := s.epoch.Load(); e != 0 {
			reply.Epoch = e
		}
		if s.cfg.IOTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.cfg.IOTimeout))
		}
		if err := codec.Send(reply); err != nil {
			return err
		}
		// Codec negotiation: the registered reply that echoes proto=bin is
		// the last JSON frame on the connection; both sides switch after it.
		if reply.Type == MsgRegistered && reply.Proto == ProtoBinary && !codec.Binary() {
			codec.EnableBinary()
		}
		flushWire()
	}
}

// reclaim re-queues every assignment a dead connection still held and
// records the departure of every participant registered on it. An
// assignment that the deadline sweeper already reclaimed — or that a
// resumed connection took ownership of — is left alone: ownership is
// verified before abandoning.
func (s *Supervisor) reclaim(cs *connState) {
	s.lease.mu.Lock()
	reclaimed := 0
	for key, holder := range cs.held {
		info, ok := s.lease.inflight[key]
		if !ok || info.participant != holder || info.owner != cs {
			continue
		}
		delete(s.lease.inflight, key)
		s.metrics.reclaimed.With("disconnect").Inc()
		if s.events != nil {
			s.events.Emit(EvAssignmentReclaimed, map[string]any{
				"task": info.a.TaskID, "copy": info.a.Copy,
				"participant": info.participant, "reason": "disconnect",
			})
		}
		if twin, dup := s.lease.spec[key]; dup {
			// The departed primary had a live speculative clone: hand the
			// copy to the clone instead of re-queueing it. Abandoning here
			// would put the copy back in the ready pool while the clone is
			// still out — a third issue, and broken accounting when both
			// complete.
			delete(s.lease.spec, key)
			twin.speculated = false
			s.lease.inflight[key] = twin
			reclaimed++
			continue
		}
		s.lease.queue.Abandon(info.a)
		reclaimed++
		s.logf("reclaimed task %d copy %d from departed participant %d",
			info.a.TaskID, info.a.Copy, info.participant)
	}
	// Speculative clones are tracked only in the spec map (never cs.held);
	// drop any this connection was running and let the primary try again.
	for key, twin := range s.lease.spec {
		if twin.owner != cs {
			continue
		}
		delete(s.lease.spec, key)
		if info, ok := s.lease.inflight[key]; ok {
			info.speculated = false
			s.lease.inflight[key] = info
		}
	}
	if reclaimed > 0 {
		s.kickLeaseLocked() // abandoned copies are available again
	}
	s.lease.mu.Unlock()
	if s.events != nil {
		for id := range cs.registered {
			s.events.Emit(EvWorkerLeft, map[string]any{"participant": id, "name": cs.names[id]})
		}
	}
}

// kickLeaseLocked wakes every parked get_work request; each re-checks the
// queue under lease.mu. Called (with lease.mu held) wherever assignments
// may have become available — completions that release held-back copies,
// reclaims, plan revisions — and wherever parked requests must observe a
// state change (draining, finished). Channels are closed exactly once:
// the slice is emptied here and each parked request appends a fresh one.
func (s *Supervisor) kickLeaseLocked() {
	for _, ch := range s.lease.waiters {
		close(ch)
	}
	s.lease.waiters = s.lease.waiters[:0]
}

// newToken mints an unguessable resume credential. Identity resumption is
// authenticated by this token, not by the (small, guessable) participant
// ID, so a malicious client cannot hijack another participant's identity
// and accrued credit.
func newToken() uint64 {
	var b [8]byte
	crand.Read(b[:]) // never fails; panics on broken platforms
	tok := binary.LittleEndian.Uint64(b[:])
	if tok == 0 {
		tok = 1 // 0 means "no token" on the wire
	}
	return tok
}

// register mints a new identity, or — with Resume set and a valid token —
// re-attaches an existing one to this connection, transferring any
// in-flight assignments so they are re-issued here instead of reclaimed
// when the old connection's goroutine notices the drop.
func (s *Supervisor) register(m Message, cs *connState) Message {
	if m.Resume {
		s.ident.mu.Lock()
		tok, ok := s.ident.tokens[m.ParticipantID]
		name := s.ident.names[m.ParticipantID]
		s.ident.mu.Unlock()
		if !ok || m.Token == 0 || m.Token != tok {
			return Message{Type: MsgError, Reason: ReasonResumeRefused,
				Error: "unknown participant or bad token"}
		}
		if s.convicted(m.ParticipantID) {
			return Message{Type: MsgError, Reason: ReasonBlacklisted,
				Error: "participant is blacklisted"}
		}
		moved := 0
		s.lease.mu.Lock()
		for key, info := range s.lease.inflight {
			if info.participant != m.ParticipantID {
				continue
			}
			if info.owner != nil && info.owner != cs {
				delete(info.owner.held, key)
			}
			info.owner = cs
			s.lease.inflight[key] = info
			cs.held[key] = m.ParticipantID
			moved++
		}
		for key, twin := range s.lease.spec {
			if twin.participant != m.ParticipantID {
				continue
			}
			twin.owner = cs
			s.lease.spec[key] = twin
			moved++
		}
		s.lease.mu.Unlock()
		cs.registered[m.ParticipantID] = true
		cs.names[m.ParticipantID] = name
		s.metrics.workersResumed.Inc()
		if s.events != nil {
			s.events.Emit(EvWorkerResumed, map[string]any{
				"participant": m.ParticipantID, "name": name, "inflight": moved,
			})
		}
		s.logf("participant %d (%s) resumed with %d in-flight assignment(s)",
			m.ParticipantID, name, moved)
		return Message{Type: MsgRegistered, ParticipantID: m.ParticipantID, Token: tok,
			Proto: negotiateProto(m.Proto)}
	}
	s.ident.mu.Lock()
	id := s.ident.nextID
	s.ident.nextID++
	s.ident.names[id] = m.Name
	tok := newToken()
	s.ident.tokens[id] = tok
	s.ident.mu.Unlock()
	cs.registered[id] = true
	cs.names[id] = m.Name
	s.metrics.workersRegistered.Inc()
	if s.events != nil {
		s.events.Emit(EvWorkerJoined, map[string]any{"participant": id, "name": m.Name})
	}
	s.logf("registered participant %d (%s)", id, m.Name)
	return Message{Type: MsgRegistered, ParticipantID: id, Token: tok,
		Proto: negotiateProto(m.Proto)}
}

// negotiateProto maps a register request's proto capability to the codec
// the supervisor will speak after the registered reply. Only proto=bin is
// recognized; anything else — absent, "json", or a capability from the
// future — keeps the connection on newline-delimited JSON, so old and new
// peers interoperate in both directions.
func negotiateProto(requested string) string {
	if requested == ProtoBinary {
		return ProtoBinary
	}
	return ""
}

// convicted answers the blacklist question under audit.mu. Only
// conclusive (ringer) evidence denies further work: a 2-way mismatch
// cannot say which party lied, and refusing every suspect would let an
// adversary starve the computation by framing honest participants.
func (s *Supervisor) convicted(participant int) bool {
	s.audit.mu.Lock()
	defer s.audit.mu.Unlock()
	return s.audit.collector.Convicted(participant)
}

func (s *Supervisor) assign(m Message, cs *connState) Message {
	if s.metrics.shardRouted != nil {
		s.metrics.shardRouted.Inc()
	}
	if s.convicted(m.ParticipantID) {
		return Message{Type: MsgError, Reason: ReasonBlacklisted, Error: "participant is blacklisted"}
	}
	// Unhealthy participants get nothing on the legacy path (probation's
	// ringer-only feed is a batched-lease feature), so probation here can
	// only end on the clock: ObserveRingerStarved re-admits once a full
	// extra Probation period has passed with no ringer served.
	if s.roster != nil && s.roster.AnyUnhealthy() {
		switch s.roster.State(m.ParticipantID) {
		case health.Quarantined:
			return Message{Type: MsgNoWork, Wait: 0.5}
		case health.Probation:
			tr := s.roster.ObserveRingerStarved(m.ParticipantID, time.Now())
			if tr == nil {
				return Message{Type: MsgNoWork, Wait: 0.5}
			}
			s.pushTransition(*tr, false)
		}
	}
	s.lease.mu.Lock()
	defer s.lease.mu.Unlock()
	if s.lease.finished {
		return Message{Type: MsgDone}
	}
	// Re-issue before popping fresh work: a resumed connection first gets
	// back the assignment it already holds, so a reconnect never duplicates
	// queue state. Entries whose in-flight record is gone (swept, or
	// re-issued elsewhere) are stale and dropped.
	for key, holder := range cs.held {
		info, ok := s.lease.inflight[key]
		if !ok || info.participant != holder || info.owner != cs {
			delete(cs.held, key)
			continue
		}
		if holder != m.ParticipantID {
			continue
		}
		info.issuedAt = time.Now()
		s.lease.inflight[key] = info
		s.metrics.reissued.Inc()
		if s.events != nil {
			s.events.Emit(EvAssignmentIssued, map[string]any{
				"task": info.a.TaskID, "copy": info.a.Copy,
				"participant": m.ParticipantID, "ringer": info.a.Ringer, "reissue": true,
			})
		}
		return Message{
			Type:   MsgWork,
			TaskID: info.a.TaskID,
			Copy:   info.a.Copy,
			Kind:   s.cfg.WorkKind,
			Seed:   TaskSeed(info.a.TaskID),
			Iters:  s.cfg.Iters,
		}
	}
	if s.lease.draining {
		// Shutdown in progress: in-flight work may still land, but nothing
		// new goes out.
		return Message{Type: MsgNoWork, Wait: 0.2}
	}
	a, ok := s.lease.queue.Next()
	if !ok {
		if s.lease.queue.Done() {
			return Message{Type: MsgDone}
		}
		// Policy is holding copies back; ask the worker to retry.
		return Message{Type: MsgNoWork, Wait: 0.05}
	}
	s.trackLocked(m.ParticipantID, a, cs)
	cs.held[outstandingKey{a.TaskID, a.Copy}] = m.ParticipantID
	s.metrics.assignmentsIssued.Inc()
	if s.metrics.shardIssued != nil {
		s.metrics.shardIssued.Inc()
	}
	if s.events != nil {
		s.events.Emit(EvAssignmentIssued, map[string]any{
			"task": a.TaskID, "copy": a.Copy, "participant": m.ParticipantID, "ringer": a.Ringer,
		})
	}
	return Message{
		Type:   MsgWork,
		TaskID: a.TaskID,
		Copy:   a.Copy,
		Kind:   s.cfg.WorkKind,
		Seed:   TaskSeed(a.TaskID),
		Iters:  s.cfg.Iters,
	}
}

// assignBatch serves a get_work request (the batched hot path) and
// observes the lease-wait histogram — the time the request spent inside
// the supervisor, queue wait and parking included.
func (s *Supervisor) assignBatch(m Message, cs *connState) Message {
	start := time.Now()
	reply := s.leaseBatch(m, cs)
	s.metrics.leaseWait.Observe(time.Since(start).Seconds())
	return reply
}

// leaseBatch fills one get_work lease: under lease.mu it first re-issues
// every surviving assignment this participant already holds — the whole
// lease comes back after a resume, so a reconnect never duplicates queue
// state — then fills the remainder with fresh queue pops, up to
// min(requested, MaxBatch). A request that finds the queue empty parks on
// a waiter channel (up to leaseParkMax) instead of immediately bouncing a
// no_work/sleep/retry cycle off the supervisor; completions, reclaims,
// and revisions kick parked requests awake. The single-assignment
// handlers above are untouched so -batch 1 clients see the legacy wire
// behavior byte-for-byte.
func (s *Supervisor) leaseBatch(m Message, cs *connState) Message {
	if s.metrics.shardRouted != nil {
		s.metrics.shardRouted.Inc()
	}
	if s.convicted(m.ParticipantID) {
		return Message{Type: MsgError, Reason: ReasonBlacklisted, Error: "participant is blacklisted"}
	}
	// Health gate: quarantined participants lease nothing; probationary
	// ones lease only ringers (work whose answer the supervisor already
	// knows), so re-admission can be earned without risking real results.
	// AnyUnhealthy keeps the all-healthy hot path to one atomic-free check.
	probation := false
	if s.roster != nil && s.roster.AnyUnhealthy() {
		switch s.roster.State(m.ParticipantID) {
		case health.Quarantined:
			return Message{Type: MsgNoWork, Wait: 0.5}
		case health.Probation:
			probation = true
		}
	}
	want := m.Batch
	if want < 1 {
		want = 1
	}
	if want > s.cfg.MaxBatch {
		want = s.cfg.MaxBatch
	}
	items := cs.items[:0]
	fresh, reissues, specIssued := 0, 0, 0
	var deadline time.Time // parking budget; set on first empty pass
	s.lease.mu.Lock()
	if s.lease.finished {
		s.lease.mu.Unlock()
		return Message{Type: MsgDone}
	}
	// Re-issues are not capped by want: the worker must learn about every
	// assignment it still holds, or a resumed lease could silently shrink.
	for key, holder := range cs.held {
		info, ok := s.lease.inflight[key]
		if !ok || info.participant != holder || info.owner != cs {
			delete(cs.held, key)
			continue
		}
		if holder != m.ParticipantID {
			continue
		}
		info.issuedAt = time.Now()
		s.lease.inflight[key] = info
		reissues++
		if s.events != nil {
			s.events.Emit(EvAssignmentIssued, map[string]any{
				"task": info.a.TaskID, "copy": info.a.Copy,
				"participant": m.ParticipantID, "ringer": info.a.Ringer, "reissue": true,
			})
		}
		items = append(items, WorkItem{TaskID: info.a.TaskID, Copy: info.a.Copy, Seed: TaskSeed(info.a.TaskID)})
	}
	for {
		// Straggler clones go out ahead of fresh queue pops — a flagged copy
		// is the work blocking a task's certification, so it is the most
		// valuable lease in the system. Healthy requesters only, and never
		// back to the straggler itself.
		if !s.lease.draining && !probation && len(items) < want {
			specIssued += s.fillSpeculativeLocked(m.ParticipantID, cs, want, &items)
		}
		if !s.lease.draining && len(items) < want && !probation {
			fill := s.lease.queue.NextBatch(cs.fill[:0], want-len(items))
			cs.fill = fill[:0]
			for _, a := range fill {
				s.trackLocked(m.ParticipantID, a, cs)
				cs.held[outstandingKey{a.TaskID, a.Copy}] = m.ParticipantID
				fresh++
				if s.events != nil {
					s.events.Emit(EvAssignmentIssued, map[string]any{
						"task": a.TaskID, "copy": a.Copy, "participant": m.ParticipantID, "ringer": a.Ringer,
					})
				}
				items = append(items, WorkItem{TaskID: a.TaskID, Copy: a.Copy, Seed: TaskSeed(a.TaskID)})
			}
		}
		if !s.lease.draining && len(items) < want && probation {
			for len(items) < want {
				a, ok := s.lease.queue.NextRinger()
				if !ok {
					break
				}
				s.trackLocked(m.ParticipantID, a, cs)
				cs.held[outstandingKey{a.TaskID, a.Copy}] = m.ParticipantID
				fresh++
				if s.events != nil {
					s.events.Emit(EvAssignmentIssued, map[string]any{
						"task": a.TaskID, "copy": a.Copy, "participant": m.ParticipantID,
						"ringer": true, "probation": true,
					})
				}
				items = append(items, WorkItem{TaskID: a.TaskID, Copy: a.Copy, Seed: TaskSeed(a.TaskID)})
			}
		}
		if len(items) > 0 {
			break
		}
		if probation {
			// No ringer ready and none held. Probation is time-bounded:
			// when the ringer supply is spent (some plans mint none at
			// all), a participant that has sat out a full extra Probation
			// period re-admits on the clock — otherwise a fleet-wide
			// quarantine deadlocks the run with work still queued. On
			// re-admission, fall through to the regular pool this pass.
			if tr := s.roster.ObserveRingerStarved(m.ParticipantID, time.Now()); tr != nil {
				s.pushTransition(*tr, false)
				probation = false
				continue
			}
			// Still on the clock; do not park a probationary worker against
			// the regular pool, just have it retry.
			s.lease.mu.Unlock()
			return Message{Type: MsgNoWork, Wait: 0.5}
		}
		if s.lease.draining {
			s.lease.mu.Unlock()
			return Message{Type: MsgNoWork, Wait: 0.2}
		}
		if s.lease.queue.Done() {
			s.lease.mu.Unlock()
			return Message{Type: MsgDone}
		}
		if deadline.IsZero() {
			deadline = time.Now().Add(leaseParkMax)
		}
		wait := time.Until(deadline)
		if wait <= 0 {
			s.lease.mu.Unlock()
			return Message{Type: MsgNoWork, Wait: 0.05}
		}
		ch := make(chan struct{})
		s.lease.waiters = append(s.lease.waiters, ch)
		s.lease.mu.Unlock()
		t := time.NewTimer(wait)
		stopped := false
		select {
		case <-ch:
		case <-t.C:
		case <-s.stop:
			stopped = true
		}
		t.Stop()
		if stopped {
			// Teardown in progress; the connection is about to be closed.
			return Message{Type: MsgNoWork, Wait: 0.2}
		}
		s.lease.mu.Lock()
		if s.lease.finished {
			s.lease.mu.Unlock()
			return Message{Type: MsgDone}
		}
	}
	s.lease.mu.Unlock()
	cs.items = items // keep the grown backing array for the next lease
	if reissues > 0 {
		s.metrics.reissued.Add(uint64(reissues))
	}
	if fresh > 0 {
		s.metrics.assignmentsIssued.Add(uint64(fresh))
		if s.metrics.shardIssued != nil {
			s.metrics.shardIssued.Add(uint64(fresh))
		}
	}
	if specIssued > 0 {
		s.metrics.speculativeIssued.Add(uint64(specIssued))
	}
	s.metrics.batchesIssued.Inc()
	s.metrics.batchSize.Observe(float64(len(items)))
	return Message{Type: MsgWorkBatch, Kind: s.cfg.WorkKind, Iters: s.cfg.Iters, Work: items}
}

// fillSpeculativeLocked serves flagged straggler copies to a second
// participant, up to the lease's capacity and ahead of fresh queue work
// (leaseBatch calls it first). A clone is recorded only
// in the spec map — never cs.held, never the queue — so every existing
// invariant over inflight+queue is untouched; the clone either wins the
// claim race (claimLocked) or evaporates. Stale candidates (resolved,
// reclaimed, or already cloned since flagging) are dropped; candidates
// this participant cannot take (its own straggling lease) are kept for
// other requesters. Callers hold lease.mu. Returns the number of clones
// issued.
func (s *Supervisor) fillSpeculativeLocked(pid int, cs *connState, want int, items *[]WorkItem) int {
	if len(s.lease.specq) == 0 {
		return 0
	}
	issued := 0
	kept := s.lease.specq[:0]
	for _, key := range s.lease.specq {
		if len(*items) >= want {
			kept = append(kept, key)
			continue
		}
		info, ok := s.lease.inflight[key]
		if !ok || !info.speculated {
			continue
		}
		if _, dup := s.lease.spec[key]; dup {
			continue
		}
		if info.participant == pid {
			kept = append(kept, key)
			continue
		}
		now := time.Now()
		s.lease.spec[key] = inflightInfo{
			participant: pid, a: info.a, issuedAt: now,
			firstIssued: info.firstIssued, owner: cs,
		}
		issued++
		if s.events != nil {
			s.events.Emit(EvAssignmentSpeculated, map[string]any{
				"task": info.a.TaskID, "copy": info.a.Copy,
				"participant": pid, "straggler": info.participant,
			})
		}
		*items = append(*items, WorkItem{TaskID: info.a.TaskID, Copy: info.a.Copy, Seed: TaskSeed(info.a.TaskID)})
	}
	s.lease.specq = kept
	return issued
}

// outstandingKey identifies one issued copy so results can be matched
// back. Keyed by (task, copy).
type outstandingKey struct{ task, copy int }

// trackLocked records who holds which assignment. Callers hold lease.mu.
func (s *Supervisor) trackLocked(participant int, a sched.Assignment, cs *connState) {
	now := time.Now()
	s.lease.inflight[outstandingKey{a.TaskID, a.Copy}] = inflightInfo{
		participant: participant, a: a, issuedAt: now, firstIssued: now, owner: cs,
	}
}

type inflightInfo struct {
	participant int
	a           sched.Assignment
	issuedAt    time.Time
	// firstIssued survives reissues and speculative promotion: it is when
	// this copy first left the supervisor, so completion-latency hooks see
	// the straggler's delay, not the winner's sprint.
	firstIssued time.Time
	owner       *connState // connection the assignment is currently attached to
	// speculated marks a primary that has (or had) a duplicate flagged or
	// issued; at most one clone exists per copy, and a dropped clone
	// clears the flag so the sweeper may try again.
	speculated bool
}

// sweepLoop periodically reclaims assignments held past the deadline,
// flags straggling leases for speculative reissue, and advances the
// health roster's time-driven transitions. With no Deadline configured
// (health-only supervisors) it still ticks at a fixed cadence so
// probation clocks advance.
func (s *Supervisor) sweepLoop() {
	interval := s.cfg.Deadline / 4
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-s.done:
			return
		case <-tick.C:
			s.sweepExpired()
		}
	}
}

func (s *Supervisor) sweepExpired() {
	now := time.Now()
	s.lease.mu.Lock()
	defer s.lease.mu.Unlock()
	swept := 0
	if s.cfg.Deadline > 0 {
		cutoff := now.Add(-s.cfg.Deadline)
		for key, info := range s.lease.inflight {
			if !info.issuedAt.Before(cutoff) {
				continue
			}
			delete(s.lease.inflight, key)
			if info.owner != nil {
				delete(info.owner.held, key)
			}
			if s.roster != nil && s.quarantine {
				// A hard-deadline expiry is the health signal (silent lease
				// holding); disconnect churn deliberately is not.
				if tr := s.roster.ObserveReclaim(info.participant, now); tr != nil {
					s.pushTransition(*tr, false)
				}
			}
			s.metrics.reclaimed.With("deadline").Inc()
			if s.events != nil {
				s.events.Emit(EvAssignmentReclaimed, map[string]any{
					"task": info.a.TaskID, "copy": info.a.Copy,
					"participant": info.participant, "reason": "deadline",
				})
			}
			if twin, ok := s.lease.spec[key]; ok && !twin.issuedAt.Before(cutoff) {
				// The straggling primary expired but its speculative clone is
				// still within deadline: promote the clone to primary. The
				// copy never touches the queue — it stays leased, only the
				// holder changes — so accounting sees no reclaim/reissue.
				delete(s.lease.spec, key)
				twin.speculated = false
				s.lease.inflight[key] = twin
				s.logf("deadline exceeded: task %d copy %d promoted from participant %d to speculative holder %d",
					info.a.TaskID, info.a.Copy, info.participant, twin.participant)
				continue
			}
			if _, ok := s.lease.spec[key]; ok {
				// Both the primary and its clone expired: one queue reclaim,
				// and the duplicate evaporates without queue effect.
				delete(s.lease.spec, key)
				s.metrics.reclaimed.With("speculative").Inc()
			}
			s.lease.queue.Abandon(info.a)
			swept++
			s.logf("deadline exceeded: reclaimed task %d copy %d from participant %d",
				info.a.TaskID, info.a.Copy, info.participant)
		}
		// Expired clones whose primary is still live: drop the duplicate and
		// make the primary eligible for a fresh one.
		for key, twin := range s.lease.spec {
			if !twin.issuedAt.Before(cutoff) {
				continue
			}
			delete(s.lease.spec, key)
			if info, ok := s.lease.inflight[key]; ok {
				info.speculated = false
				s.lease.inflight[key] = info
			}
			if s.roster != nil && s.quarantine {
				if tr := s.roster.ObserveReclaim(twin.participant, now); tr != nil {
					s.pushTransition(*tr, false)
				}
			}
			s.metrics.reclaimed.With("speculative").Inc()
			if s.events != nil {
				s.events.Emit(EvAssignmentReclaimed, map[string]any{
					"task": twin.a.TaskID, "copy": twin.a.Copy,
					"participant": twin.participant, "reason": "speculative",
				})
			}
		}
		// Resolved speculative races older than two deadlines can no longer
		// produce a meaningful "duplicate" rejection; forget them.
		if len(s.lease.specLosers) > 0 {
			gc := now.Add(-2 * s.cfg.Deadline)
			for key, l := range s.lease.specLosers {
				if l.at.Before(gc) {
					delete(s.lease.specLosers, key)
				}
			}
		}
	}
	// Speculative tier: flag still-leased copies whose age exceeds the
	// configured completion-time percentile as candidates for a duplicate
	// issue to a different participant (served by leaseBatch).
	if s.cfg.SpeculatePct > 0 && !s.lease.draining && !s.lease.finished {
		if q, ok := s.roster.Quantile(s.cfg.SpeculatePct); ok {
			specCutoff := now.Add(-q)
			flagged := 0
			for key, info := range s.lease.inflight {
				if info.speculated || !info.issuedAt.Before(specCutoff) {
					continue
				}
				info.speculated = true
				s.lease.inflight[key] = info
				s.lease.specq = append(s.lease.specq, key)
				flagged++
			}
			if flagged > 0 {
				swept++ // parked leases can serve the new candidates
			}
		}
	}
	if s.roster != nil {
		if s.quarantine {
			for _, tr := range s.roster.Tick(now) {
				s.pushTransition(tr, false)
			}
		}
		s.drainHealthLocked()
		for _, ph := range s.roster.Snapshot() {
			s.metrics.participantHealth.With(strconv.Itoa(ph.Participant)).Set(ph.Score)
		}
	}
	if swept > 0 {
		s.kickLeaseLocked()
	}
}

// pushTransition reacts to one health-state transition: metrics, events,
// the adaptive estimator (quarantine is cheat/stall evidence the planner
// should see), and — for quarantine entries — parking the lease-level
// reclaim on qpend until a lease.mu holder drains it. underAudit says
// whether the caller already holds audit.mu (the verdict callback does;
// the sweeper holds lease.mu instead, and lease.mu → audit.mu is the
// legal nesting order). During journal replay the roster still moves but
// every side effect is suppressed: counters describe live observations,
// and a restored supervisor has no outstanding leases to reclaim.
func (s *Supervisor) pushTransition(tr health.Transition, underAudit bool) {
	if s.replaying {
		return
	}
	switch tr.To {
	case health.Quarantined:
		s.metrics.quarantinesEntered.Inc()
		if s.audit.est != nil {
			if underAudit {
				s.audit.est.Observe(1, 1)
			} else {
				s.audit.mu.Lock()
				s.audit.est.Observe(1, 1)
				s.audit.mu.Unlock()
			}
		}
		s.qmu.Lock()
		s.qpend = append(s.qpend, tr)
		s.qmu.Unlock()
		if s.events != nil {
			s.events.Emit(EvParticipantQuarantined, map[string]any{
				"participant": tr.Participant, "reason": tr.Reason, "from": tr.From.String(),
			})
		}
	case health.Probation:
		if s.events != nil {
			s.events.Emit(EvParticipantProbation, map[string]any{
				"participant": tr.Participant,
			})
		}
	case health.Healthy:
		s.metrics.quarantinesExited.Inc()
		if s.events != nil {
			// reason distinguishes a ringer-proven re-admission
			// ("readmitted") from the ringer-starved clock fallback
			// ("probation_expired").
			s.events.Emit(EvParticipantReadmitted, map[string]any{
				"participant": tr.Participant, "reason": tr.Reason,
			})
		}
	}
	s.metrics.participantHealth.With(strconv.Itoa(tr.Participant)).Set(s.roster.Score(tr.Participant))
	s.logf("participant %d: %s -> %s (%s)", tr.Participant, tr.From, tr.To, tr.Reason)
}

// drainHealthLocked applies the lease-level consequence of pending
// quarantine transitions: every outstanding lease (and speculative
// duplicate) of a newly quarantined participant is reclaimed. Callers
// hold lease.mu.
func (s *Supervisor) drainHealthLocked() {
	if s.roster == nil {
		return
	}
	s.qmu.Lock()
	pend := s.qpend
	s.qpend = nil
	s.qmu.Unlock()
	for _, tr := range pend {
		if tr.To == health.Quarantined {
			s.reclaimParticipantLocked(tr.Participant)
		}
	}
}

// reclaimParticipantLocked takes back everything one participant holds:
// primaries go back to the queue (or hand off to a live speculative
// clone), duplicates evaporate without queue effect. Callers hold
// lease.mu.
func (s *Supervisor) reclaimParticipantLocked(pid int) {
	reclaimed := 0
	for key, info := range s.lease.inflight {
		if info.participant != pid {
			continue
		}
		delete(s.lease.inflight, key)
		if info.owner != nil {
			delete(info.owner.held, key)
		}
		if twin, ok := s.lease.spec[key]; ok {
			delete(s.lease.spec, key)
			twin.speculated = false
			s.lease.inflight[key] = twin
		} else {
			s.lease.queue.Abandon(info.a)
		}
		reclaimed++
		s.metrics.reclaimed.With("quarantine").Inc()
		if s.events != nil {
			s.events.Emit(EvAssignmentReclaimed, map[string]any{
				"task": info.a.TaskID, "copy": info.a.Copy,
				"participant": pid, "reason": "quarantine",
			})
		}
	}
	for key, twin := range s.lease.spec {
		if twin.participant != pid {
			continue
		}
		delete(s.lease.spec, key)
		if info, ok := s.lease.inflight[key]; ok {
			info.speculated = false
			s.lease.inflight[key] = info
		}
		reclaimed++
		s.metrics.reclaimed.With("quarantine").Inc()
		if s.events != nil {
			s.events.Emit(EvAssignmentReclaimed, map[string]any{
				"task": twin.a.TaskID, "copy": twin.a.Copy,
				"participant": pid, "reason": "quarantine",
			})
		}
	}
	if reclaimed > 0 {
		s.logf("quarantine: reclaimed %d outstanding lease(s) from participant %d", reclaimed, pid)
		s.kickLeaseLocked()
	}
}

// applyRevisionLocked applies one plan revision to the supervisor's live
// state — plan, queue, and verification expectations — in that order. It
// does NOT journal; the caller either just wrote the record (live tick) or
// is replaying one (restore). Callers hold lease.mu and audit.mu (or are
// single-threaded construction). Revisions are validated against the plan
// before anything mutates, so a failure leaves state untouched.
func (s *Supervisor) applyRevisionLocked(rev plan.Revision) error {
	if err := s.cfg.Plan.ValidateRevision(rev); err != nil {
		return err
	}
	// Cross-check against the queue before mutating anything: every
	// promotion must name a never-issued task with exactly From copies
	// still queued. The controller only proposes such tasks; this guards
	// replay against a journal that disagrees with the queue.
	for _, pr := range rev.Promotions {
		if s.lease.queue.EverIssued(pr.TaskID) {
			return fmt.Errorf("platform: revision promotes issued task %d", pr.TaskID)
		}
	}
	if err := s.cfg.Plan.ApplyRevision(rev); err != nil {
		return err
	}
	for _, pr := range rev.Promotions {
		if err := s.lease.queue.Promote(pr.TaskID, pr.From, pr.To); err != nil {
			return fmt.Errorf("platform: revision %d: %w", s.audit.revApplied, err)
		}
		s.audit.collector.Expect(pr.TaskID, pr.To)
	}
	for _, m := range rev.Minted {
		if err := s.lease.queue.AddTask(plan.TaskSpec{ID: m.TaskID, Copies: m.Copies, Ringer: true}); err != nil {
			return fmt.Errorf("platform: revision %d: %w", s.audit.revApplied, err)
		}
		s.audit.collector.Expect(m.TaskID, m.Copies)
	}
	s.audit.revApplied++
	return nil
}

// adaptLoop periodically evaluates the adaptive controller.
func (s *Supervisor) adaptLoop() {
	tick := time.NewTicker(s.adaptCfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-s.done:
			return
		case <-tick.C:
			s.adaptTick()
		}
	}
}

// adaptTick is one evaluation of the control loop: refresh the p̂ gauges,
// and if the interval's upper bound leaves any active class below the
// target ε, journal and apply a revision. Journal-first ordering makes the
// crash cases safe: a torn revision line is dropped on restore and no
// later record can depend on it (revised copies are only issued after the
// apply), while a fully written line replays exactly. This is the one
// steady-state site that nests locks (lease.mu → audit.mu): a revision
// must re-shape the queue and the verification expectations atomically.
func (s *Supervisor) adaptTick() {
	s.lease.mu.Lock()
	defer s.lease.mu.Unlock()
	s.audit.mu.Lock()
	defer s.audit.mu.Unlock()
	est := s.audit.est.Estimate()
	s.metrics.adaptPHat.Set(est.PHat)
	s.metrics.adaptIntervalWidth.Set(est.Width())
	if est.Samples < float64(s.adaptCfg.MinSamples) || s.lease.finished || s.lease.draining {
		return
	}
	var tasks []adapt.TaskState
	for _, sp := range s.cfg.Plan.Tasks() {
		tasks = append(tasks, adapt.TaskState{
			ID: sp.ID, Copies: sp.Copies, Ringer: sp.Ringer,
			Eligible: !sp.Ringer && !s.lease.queue.EverIssued(sp.ID),
		})
	}
	rev, ok := adapt.Replan(tasks, s.cfg.Plan.NextTaskID(), s.adaptCfg.TargetEpsilon, est.Upper)
	if rev.Empty() {
		if !ok {
			s.logf("adapt: ε=%g unreachable at p̂ upper bound %.4f (safety cap)",
				s.adaptCfg.TargetEpsilon, est.Upper)
		}
		return
	}
	rec := revisionRecord{
		Seq: s.audit.revApplied, PHat: est.PHat, Upper: est.Upper,
		Promotions: rev.Promotions, Minted: rev.Minted,
	}
	if s.cfg.Journal != nil {
		if err := s.appendRevision(rec); err != nil {
			s.logf("adapt: journal write failed, revision deferred: %v", err)
			return
		}
	}
	seq := s.audit.revApplied
	if err := s.applyRevisionLocked(rev); err != nil {
		// Pre-validated, so this is a genuine bug; surface loudly but keep
		// serving — the journal record will replay (and fail) identically.
		s.logf("adapt: BUG: journaled revision failed to apply: %v", err)
		return
	}
	s.audit.revisions = append(s.audit.revisions, rec) // retained for snapshots
	s.kickLeaseLocked()                                // the revision queued new copies
	promoted, minted := 0, 0
	for _, pr := range rev.Promotions {
		promoted += pr.To - pr.From
	}
	for _, m := range rev.Minted {
		minted += m.Copies
	}
	s.metrics.adaptRevisions.Inc()
	s.metrics.adaptPromoted.Add(uint64(promoted))
	s.metrics.adaptMinted.Add(uint64(len(rev.Minted)))
	if s.events != nil {
		s.events.Emit(EvPlanRevised, map[string]any{
			"seq": seq, "phat": est.PHat, "upper": est.Upper,
			"promotions": len(rev.Promotions), "promoted_copies": promoted,
			"minted": len(rev.Minted), "minted_copies": minted, "satisfied": ok,
		})
	}
	s.logf("adapt: revision %d applied (p̂=%.4f upper=%.4f): %d promotion(s), %d minted ringer(s), %d new assignments",
		seq, est.PHat, est.Upper, len(rev.Promotions), len(rev.Minted), rev.CopiesAdded())
}

// appendRevision writes one revision record under jnlMu, syncing inline
// when JournalSync is on. Revisions bypass the group committer on purpose:
// the caller holds lease.mu, so the record hits the file before any
// revised copy can be issued — and therefore before any result depending
// on it can reach the committer — preserving journal-first ordering in
// both journal modes (the committer's writes take jnlMu too, so interior
// interleaving is impossible).
func (s *Supervisor) appendRevision(rec revisionRecord) error {
	s.jnlMu.Lock()
	err := appendJournalRevision(s.cfg.Journal, rec)
	if err == nil {
		s.jnlLines++
	}
	s.jnlMu.Unlock()
	if err != nil {
		return err
	}
	if s.cfg.JournalSync {
		s.syncJournal()
	}
	// Count toward the snapshot trigger but never fire it here: the caller
	// holds lease.mu, which takeSnapshot must acquire. The next
	// result-driven noteJournaled sweeps the revision up.
	s.jnlSince.Add(1)
	return nil
}

// AdaptiveEstimate returns the current p̂ estimate and true when the
// adaptive control plane is enabled.
func (s *Supervisor) AdaptiveEstimate() (adapt.Estimate, bool) {
	if s.audit.est == nil {
		return adapt.Estimate{}, false
	}
	s.audit.mu.Lock()
	defer s.audit.mu.Unlock()
	return s.audit.est.Estimate(), true
}

// HealthSnapshot returns the health roster's per-participant view (state,
// score, counters), or nil when neither Health nor SpeculatePct is
// configured. The roster locks itself, so this is safe from any goroutine.
func (s *Supervisor) HealthSnapshot() []health.ParticipantHealth {
	if s.roster == nil {
		return nil
	}
	return s.roster.Snapshot()
}

// CompletionQuantile reports the q-th quantile of the health subsystem's
// global completion-latency window — the observable the speculative tier
// triggers on. It returns false until enough completions have accumulated,
// or when neither Health nor SpeculatePct is configured.
func (s *Supervisor) CompletionQuantile(q float64) (time.Duration, bool) {
	if s.roster == nil {
		return 0, false
	}
	return s.roster.Quantile(q)
}

// RevisionsApplied reports how many plan revisions this supervisor has
// applied, including revisions restored from the journal.
func (s *Supervisor) RevisionsApplied() int {
	s.audit.mu.Lock()
	defer s.audit.mu.Unlock()
	return s.audit.revApplied
}

func (s *Supervisor) result(m Message, cs *connState) Message {
	s.lease.mu.Lock()
	info, reason, detail := s.claimLocked(m.ParticipantID, m.TaskID, m.Copy, cs)
	s.lease.mu.Unlock()
	if reason != "" {
		return s.rejectResult(m, reason, detail)
	}
	s.audit.mu.Lock()
	reason, detail = s.adjudicateLocked(info, m.Value)
	s.audit.mu.Unlock()
	if reason != "" {
		return s.rejectResult(m, reason, detail)
	}
	s.lease.mu.Lock()
	s.lease.queue.Complete(info.a)
	if s.events != nil {
		s.events.Emit(EvResultAccepted, map[string]any{
			"task": m.TaskID, "copy": m.Copy, "participant": m.ParticipantID,
		})
	}
	s.finishCheckLocked()
	s.lease.mu.Unlock()
	s.metrics.resultsAccepted.Inc()
	if s.metrics.shardAccepted != nil {
		s.metrics.shardAccepted.Inc()
	}
	s.metrics.turnaround.With(cs.names[m.ParticipantID]).
		Observe(time.Since(info.issuedAt).Seconds())
	if s.roster != nil {
		s.roster.ObserveCompletion(m.ParticipantID, time.Since(info.issuedAt))
	}
	if s.cfg.OnTurnaround != nil {
		s.cfg.OnTurnaround(time.Since(info.firstIssued))
	}
	if s.cfg.Journal != nil {
		cs.recs = append(cs.recs[:0], journalRecord{
			TaskID:      m.TaskID,
			Copy:        m.Copy,
			Ringer:      info.a.Ringer,
			Participant: m.ParticipantID,
			Value:       m.Value,
		})
		s.commitRecords(cs.recs, false)
	}
	return Message{Type: MsgAck}
}

// pendingResult carries one claimed result between resultBatch's phases.
type pendingResult struct {
	idx    int // index of this result's ack in the reply
	info   inflightInfo
	value  uint64
	failed bool // verification refused it in phase B
}

// resultBatch serves a result_batch in three phases so no phase holds
// more than one lock and each critical section is the minimal mutation:
//
//	A (lease.mu)  claim — validate ownership and delete the in-flight
//	              entries, so no other connection, sweep, or duplicate
//	              submission can race on these copies;
//	B (audit.mu)  adjudicate — feed each claimed result through the
//	              verification pipeline and build its journal record;
//	C (lease.mu)  complete — mark the queue, emit the accepted events
//	              (under the lease lock, preserving the event-stream
//	              serialization the chaos test replays), and wake parked
//	              leases if copies were released or the run finished.
//
// Between A and C the copies are in no map and not in the queue's ready
// pool, so nothing can issue, reclaim, or double-accept them. Journal
// records are committed after C — one buffered write (and, with
// JournalSync, one fsync, amortized over the whole batch on the legacy
// path and over every concurrent batch in GroupCommit mode) — and the
// acks are released only after that commit returns, so the durability
// contract (an acked result survives a crash) is unchanged.
func (s *Supervisor) resultBatch(m Message, cs *connState) Message {
	acks := cs.acks[:0]
	pend := cs.pend[:0]
	recs := cs.recs[:0]
	s.lease.mu.Lock()
	for _, r := range m.Results {
		info, reason, detail := s.claimLocked(m.ParticipantID, r.TaskID, r.Copy, cs)
		ack := ResultAck{TaskID: r.TaskID, Copy: r.Copy, OK: reason == ""}
		if reason != "" {
			ack.Reason = reason
			ack.Error = detail
		} else {
			pend = append(pend, pendingResult{idx: len(acks), info: info, value: r.Value})
		}
		acks = append(acks, ack)
	}
	s.lease.mu.Unlock()
	if len(pend) > 0 {
		s.audit.mu.Lock()
		for i := range pend {
			p := &pend[i]
			reason, detail := s.adjudicateLocked(p.info, p.value)
			if reason != "" {
				p.failed = true
				acks[p.idx].OK = false
				acks[p.idx].Reason = reason
				acks[p.idx].Error = detail
				continue
			}
			if s.cfg.Journal != nil {
				recs = append(recs, journalRecord{
					TaskID:      p.info.a.TaskID,
					Copy:        p.info.a.Copy,
					Ringer:      p.info.a.Ringer,
					Participant: m.ParticipantID,
					Value:       p.value,
				})
			}
		}
		s.audit.mu.Unlock()
		accepted := 0
		s.lease.mu.Lock()
		for i := range pend {
			p := &pend[i]
			if p.failed {
				continue
			}
			s.lease.queue.Complete(p.info.a)
			accepted++
			if s.events != nil {
				s.events.Emit(EvResultAccepted, map[string]any{
					"task": p.info.a.TaskID, "copy": p.info.a.Copy, "participant": m.ParticipantID,
				})
			}
		}
		s.finishCheckLocked()
		s.lease.mu.Unlock()
		if accepted > 0 {
			s.metrics.resultsAccepted.Add(uint64(accepted))
			if s.metrics.shardAccepted != nil {
				s.metrics.shardAccepted.Add(uint64(accepted))
			}
			tn := s.metrics.turnaround.With(cs.names[m.ParticipantID])
			for i := range pend {
				if pend[i].failed {
					continue
				}
				tn.Observe(time.Since(pend[i].info.issuedAt).Seconds())
				if s.roster != nil {
					s.roster.ObserveCompletion(m.ParticipantID, time.Since(pend[i].info.issuedAt))
				}
				if s.cfg.OnTurnaround != nil {
					s.cfg.OnTurnaround(time.Since(pend[i].info.firstIssued))
				}
			}
		}
	}
	for _, ack := range acks {
		if !ack.OK {
			s.recordReject(ack.TaskID, ack.Copy, m.ParticipantID, ack.Reason)
		}
	}
	s.commitRecords(recs, true)
	cs.acks, cs.pend, cs.recs = acks, pend, recs
	return Message{Type: MsgBatchAck, Acks: acks}
}

// claimLocked validates ownership of one submitted result and removes its
// in-flight entry, transferring the copy into the caller's exclusive
// hands: after it returns success, no sweep, disconnect, resume, or
// duplicate submission can touch this (task, copy). On refusal it returns
// the rejection reason and detail and changes nothing (beyond loser
// bookkeeping for speculative races). Callers hold lease.mu.
//
// With speculative reissue a copy may be out twice — the primary in
// inflight and a clone in spec, held by different participants. The first
// of the two to submit wins here: the winner's claim deletes BOTH
// entries, so exactly one result per copy can ever reach adjudication
// (phase B), and the race's loser is remembered so its late submission is
// rejected as a duplicate, not double-credited.
func (s *Supervisor) claimLocked(participant, taskID, copy int, cs *connState) (inflightInfo, string, string) {
	key := outstandingKey{taskID, copy}
	info, ok := s.lease.inflight[key]
	if ok && info.participant == participant {
		delete(s.lease.inflight, key)
		delete(cs.held, key)
		if info.owner != nil && info.owner != cs {
			delete(info.owner.held, key)
		}
		if twin, dup := s.lease.spec[key]; dup {
			// The primary beat its clone: record the loser.
			delete(s.lease.spec, key)
			s.lease.specLosers[key] = specLoser{participant: twin.participant, at: time.Now()}
		}
		return info, "", ""
	}
	if twin, dup := s.lease.spec[key]; dup && twin.participant == participant {
		// The clone beat the straggling primary: it wins the claim and the
		// primary becomes the loser. Queue accounting is untouched either
		// way — exactly one Complete will follow for this copy.
		delete(s.lease.spec, key)
		if ok {
			delete(s.lease.inflight, key)
			if info.owner != nil {
				delete(info.owner.held, key)
			}
			s.lease.specLosers[key] = specLoser{participant: info.participant, at: time.Now()}
		}
		s.metrics.speculativeWins.Inc()
		return twin, "", ""
	}
	if !ok {
		if l, lost := s.lease.specLosers[key]; lost && l.participant == participant {
			s.metrics.speculativeWasted.Inc()
			return inflightInfo{}, ReasonDuplicate, "copy already completed by the other racer"
		}
		return inflightInfo{}, ReasonUnassigned, "result for unassigned work"
	}
	return inflightInfo{}, ReasonWrongParticipant, "result from wrong participant"
}

// adjudicateLocked feeds one claimed result through the verification
// pipeline (credits and the adaptive estimator update inside the verdict
// callback) and handles mismatch fallout. Callers hold audit.mu.
func (s *Supervisor) adjudicateLocked(info inflightInfo, value uint64) (reason, detail string) {
	v, adjudicated, err := s.audit.collector.Submit(verify.Result{
		Assignment:  info.a,
		Participant: info.participant,
		Value:       value,
	})
	if err != nil {
		return ReasonVerification, err.Error()
	}
	if adjudicated && v.MismatchDetected {
		s.logf("CHEAT DETECTED on task %d (suspects %v)", v.TaskID, v.Suspects)
		if s.cfg.ResolveMismatches && !v.Ringer {
			// Reactive measure: the supervisor recomputes the disputed
			// task on trusted hardware.
			s.audit.resolved[v.TaskID] = s.work(TaskSeed(v.TaskID), s.cfg.Iters)
			s.logf("task %d resolved by supervisor recomputation", v.TaskID)
		}
	}
	return "", ""
}

// finishCheckLocked closes done (and wakes every parked lease) when the
// queue just completed, and kicks parked leases whenever completions may
// have released held-back copies. Callers hold lease.mu.
func (s *Supervisor) finishCheckLocked() {
	if s.lease.queue.Done() && !s.lease.finished {
		s.lease.finished = true
		close(s.done)
		s.kickLeaseLocked()
	} else if len(s.lease.waiters) > 0 && s.lease.queue.Available() {
		s.kickLeaseLocked()
	}
}

// recordReject counts and reports a refused result.
func (s *Supervisor) recordReject(taskID, copy, participant int, reason string) {
	s.metrics.resultsRejected.With(reason).Inc()
	if s.events != nil {
		s.events.Emit(EvResultRejected, map[string]any{
			"task": taskID, "copy": copy, "participant": participant, "reason": reason,
		})
	}
}

// rejectResult records a refused result (metrics + events) and builds the
// error reply.
func (s *Supervisor) rejectResult(m Message, reason, detail string) Message {
	s.recordReject(m.TaskID, m.Copy, m.ParticipantID, reason)
	return Message{Type: MsgError, Reason: reason, Error: detail}
}

// commitRecords makes recs durable under the configured journal
// discipline and returns only when they are (or the failure is logged —
// a journal write failure has never blocked an ack; it costs replay, not
// liveness). GroupCommit mode hands the records to the committer
// goroutine and blocks until the commit window covering them is written
// and fsynced; the legacy path writes inline under jnlMu. batched selects
// the legacy framing: one buffered write and one amortized fsync for a
// whole result_batch (counted by batched_journal_syncs_total) versus the
// single-record append the legacy result path has always used.
func (s *Supervisor) commitRecords(recs []journalRecord, batched bool) {
	if s.cfg.Journal == nil || len(recs) == 0 {
		return
	}
	if s.committer != nil {
		if err := s.committer.commit(recs); err != nil {
			s.logf("journal write failed: %v", err)
		}
		return
	}
	s.jnlMu.Lock()
	var err error
	if batched {
		err = appendJournalBatch(s.cfg.Journal, recs)
	} else {
		err = appendJournal(s.cfg.Journal, recs[0])
	}
	if err == nil {
		s.jnlLines += int64(len(recs))
	}
	if err == nil && s.cfg.CommitLatency > 0 {
		// Modeled device latency: held under jnlMu so commits serialize
		// per supervisor, the way a slow device serializes its queue.
		time.Sleep(s.cfg.CommitLatency)
	}
	s.jnlMu.Unlock()
	if err != nil {
		s.logf("journal write failed: %v", err)
		return
	}
	s.metrics.journalRecords.Add(uint64(len(recs)))
	if s.cfg.JournalSync {
		s.syncJournal()
		if batched {
			s.metrics.batchedJournalSyncs.Inc()
		}
	}
	s.noteJournaled(len(recs))
}

// syncer is the optional flushing facet of a journal writer (*os.File
// implements it).
type syncer interface{ Sync() error }

// syncJournal fsyncs the journal if its writer supports it. Safe without
// any lock: appends are ordered under jnlMu (or by the committer), and
// Sync flushes everything written before the call, so a caller syncing
// after its write still covers its own records (*os.File.Sync is
// goroutine-safe, logf and the counter guard themselves).
func (s *Supervisor) syncJournal() {
	sy, ok := s.cfg.Journal.(syncer)
	if !ok {
		return
	}
	if err := sy.Sync(); err != nil {
		s.logf("journal sync failed: %v", err)
		return
	}
	s.metrics.journalSyncs.Inc()
}

// flushJournal ends the journal's write pipeline at teardown: the group
// committer (when present) is drained and stopped, then a final fsync
// covers anything still in the page cache.
func (s *Supervisor) flushJournal() {
	if s.committer != nil {
		s.committer.close()
	}
	if s.cfg.Journal != nil {
		s.syncJournal()
	}
}

// Wait blocks until every task has been adjudicated.
func (s *Supervisor) Wait() { <-s.done }

// Shutdown drains the supervisor gracefully: it stops accepting
// connections and issuing assignments, waits (up to ctx) for in-flight
// assignments to land or be reclaimed, then closes every connection and
// flushes the journal. It returns nil if the drain completed, or ctx's
// error if the deadline cut it short (state is still consistent — the
// journal has every accepted result).
func (s *Supervisor) Shutdown(ctx context.Context) error {
	s.lease.mu.Lock()
	s.lease.draining = true
	s.kickLeaseLocked() // parked leases must observe the drain
	s.lease.mu.Unlock()
	if s.ln != nil {
		s.ln.Close()
	}
	drained := s.awaitDrain(ctx)
	s.stopOnce.Do(func() { close(s.stop) })
	s.closeConns()
	s.connWG.Wait()
	s.loopWG.Wait()
	s.flushJournal()
	if drained {
		return nil
	}
	return ctx.Err()
}

// awaitDrain polls until no assignment is in flight or ctx expires.
func (s *Supervisor) awaitDrain(ctx context.Context) bool {
	for {
		s.lease.mu.Lock()
		n := len(s.lease.inflight)
		s.lease.mu.Unlock()
		if n == 0 {
			return true
		}
		select {
		case <-ctx.Done():
			return false
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// Close shuts the supervisor down. After the computation finished it
// waits for workers to collect their done replies and leave, as before;
// mid-run it is an abrupt kill — every open connection is closed without
// draining (in-flight work is lost to the journal's mercy, which is the
// point: tests kill a supervisor this way and assert the journal restores
// it). Use Shutdown for a graceful mid-run stop.
func (s *Supervisor) Close() error {
	s.stopOnce.Do(func() { close(s.stop) })
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.lease.mu.Lock()
	finished := s.lease.finished
	s.lease.mu.Unlock()
	if !finished {
		s.closeConns()
	}
	s.connWG.Wait()
	s.loopWG.Wait()
	s.flushJournal()
	return err
}

// Summary is a snapshot of the platform's verification state.
type Summary struct {
	Participants int
	Verify       verify.Stats
	// Blacklist holds every suspect, including participants implicated
	// only circumstantially (a 2-way mismatch suspects both parties).
	Blacklist []int
	// Convicted holds participants caught by conclusive ringer evidence;
	// only these are refused further work.
	Convicted    []int
	WrongResults int // certified values that differ from the true computation
	// Restored counts results recovered from the journal at startup.
	Restored int
	// Resolved counts disputed tasks the supervisor recomputed itself
	// (only with ResolveMismatches enabled).
	Resolved int
	// Credits is the per-participant leaderboard: one credit per
	// contribution to a certified task, zeroed by conviction.
	Credits []CreditEntry
}

// Summary reports current progress; safe to call at any time.
func (s *Supervisor) Summary() Summary {
	s.ident.mu.Lock()
	participants := s.ident.nextID
	s.ident.mu.Unlock()
	s.audit.mu.Lock()
	defer s.audit.mu.Unlock()
	sum := Summary{
		Participants: participants,
		Verify:       s.audit.collector.Stats(),
		Blacklist:    s.audit.collector.Blacklist(),
		Convicted:    s.audit.collector.ConvictedList(),
		Credits:      s.audit.credits.Leaderboard(),
		Resolved:     len(s.audit.resolved),
		Restored:     s.restored,
	}
	var cmp verify.Comparator = verify.Exact{}
	if s.cfg.ResultDigits > 0 {
		cmp = verify.Quantize{Digits: s.cfg.ResultDigits}
	}
	for _, v := range s.audit.collector.Verdicts() {
		truth := s.work(TaskSeed(v.TaskID), s.cfg.Iters)
		if v.Accepted && cmp.Canonical(v.Value) != cmp.Canonical(truth) {
			sum.WrongResults++
		}
	}
	return sum
}

// CertifiedValue returns the final value of a task and whether one exists:
// the redundancy-certified value, or the supervisor's own recomputation for
// resolved disputes.
func (s *Supervisor) CertifiedValue(taskID int) (uint64, bool) {
	s.audit.mu.Lock()
	defer s.audit.mu.Unlock()
	if v, ok := s.audit.resolved[taskID]; ok {
		return v, true
	}
	for _, v := range s.audit.collector.Verdicts() {
		if v.TaskID == taskID && v.Accepted {
			return v.Value, true
		}
	}
	return 0, false
}

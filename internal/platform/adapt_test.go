package platform

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"redundancy/internal/adapt"
	"redundancy/internal/dist"
	"redundancy/internal/obs"
	"redundancy/internal/plan"
	"redundancy/internal/sched"
)

// minDetectionAt is the weakest per-class detection guarantee a plan
// offers when the adversary holds share p of the assignments: the minimum
// of P_{k,p} over every class with regular mass.
func minDetectionAt(p *plan.Plan, at float64) float64 {
	reg, ring := p.SplitDistribution()
	min := 1.0
	for k := 1; k <= len(reg.Counts); k++ {
		if reg.Count(k) == 0 {
			continue
		}
		if d := dist.DetectionAtSplit(reg, ring, k, at); d < min {
			min = d
		}
	}
	return min
}

// TestAdaptiveDriftEndToEnd is the control plane's acceptance test: a
// coalition's true cheat rate steps from 2% to 15% mid-run, and the
// adaptive supervisor — fed only by its own verification verdicts — must
// revise the live plan so that P_{k,p} stays at or above the target ε at
// the estimator's own upper confidence bound, while the static plan it
// started from demonstrably falls below ε at that same adversary share.
// Controller ticks are driven manually between phases (the background
// interval is set to an hour) so the test is deterministic about when
// revisions may fire.
func TestAdaptiveDriftEndToEnd(t *testing.T) {
	const eps = 0.5
	p, err := plan.Balanced(400, eps)
	if err != nil {
		t.Fatal(err)
	}
	static, err := plan.Balanced(400, eps) // untouched copy for comparison
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	var events bytes.Buffer
	sink := obs.NewSink(&events)
	sup, err := NewSupervisor(SupervisorConfig{
		Plan: p, Policy: sched.Free, WorkKind: "hashchain", Iters: 5, Seed: 3,
		Metrics: reg, Events: sink,
		Adapt: &adapt.Config{TargetEpsilon: eps, Interval: time.Hour, MinSamples: 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := sup.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sup.Close() })

	// runPhase runs a bounded burst of work: two coalition members (when a
	// cheat function is given) alongside three honest workers, each
	// completing a fixed number of assignments and disconnecting.
	runPhase := func(cheat CheatFunc, perWorker int) {
		var wg sync.WaitGroup
		for w := 0; w < 5; w++ {
			cf, name := CheatFunc(nil), fmt.Sprintf("honest-%d", w)
			if w < 2 && cheat != nil {
				cf, name = cheat, fmt.Sprintf("colluder-%d", w)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Colluders may be convicted and refused work mid-phase.
				_, _ = RunWorker(WorkerConfig{
					Addr: addr, Name: name, Cheat: cf, MaxAssignments: perWorker,
				})
			}()
		}
		wg.Wait()
	}

	// Phase 1: a calm adversary corrupting ~2% of the tasks it touches.
	runPhase(NewCoalition(0.02, 11).CheatFunc(), 25)
	sup.adaptTick()
	if _, on := sup.AdaptiveEstimate(); !on {
		t.Fatal("AdaptiveEstimate reports disabled despite Adapt config")
	}

	// Phase 2: the adversary turns aggressive mid-run (15%).
	runPhase(NewCoalition(0.15, 13).CheatFunc(), 25)
	sup.adaptTick()
	est, _ := sup.AdaptiveEstimate()
	revs := sup.RevisionsApplied()

	if revs == 0 {
		t.Fatalf("no revision applied (p̂=%.4f upper=%.4f samples=%.0f)",
			est.PHat, est.Upper, est.Samples)
	}
	if est.Upper <= 0 || est.Samples < 40 {
		t.Fatalf("estimator never accumulated evidence: %+v", est)
	}
	// The static plan was tuned for p=0, so at the observed adversary share
	// its weakest class must fall below ε...
	if got := minDetectionAt(static, est.Upper); got >= eps {
		t.Errorf("static plan still satisfies ε=%v at p=%.4f (min P_k = %v); drift proved nothing",
			eps, est.Upper, got)
	}
	// ...while the revised plan must hold the line at the same share.
	if got := minDetectionAt(p, est.Upper); got < eps-1e-9 {
		t.Errorf("adaptive plan fails its target: min P_k = %v < ε=%v at p̂ upper %.4f",
			got, eps, est.Upper)
	}
	if problems := p.Audit(1e-9); len(problems) != 0 {
		t.Errorf("revised live plan fails audit: %v", problems)
	}

	// Phase 3: honest workers finish the revised computation, proving the
	// promoted and minted copies are actually issuable and creditable.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, _ = RunWorker(WorkerConfig{Addr: addr, Name: fmt.Sprintf("finisher-%d", w)})
		}(w)
	}
	done := make(chan struct{})
	go func() { sup.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("revised computation never drained")
	}
	wg.Wait()

	snap := reg.Snapshot()
	if v, _ := snap.Value("redundancy_adapt_revisions_total"); int(v) != revs {
		t.Errorf("redundancy_adapt_revisions_total = %v, supervisor says %d", v, revs)
	}
	if v, _ := snap.Value("redundancy_adapt_phat"); v != est.PHat {
		// Phase 3's honest evidence moves p̂ only on the next tick, which
		// never comes (1h interval), so the gauge must still hold the
		// estimate from the deciding tick.
		t.Errorf("redundancy_adapt_phat gauge = %v, want %v", v, est.PHat)
	}
	if !bytes.Contains(events.Bytes(), []byte(`"event":"plan_revised"`)) {
		t.Error("no plan_revised event emitted")
	}
	t.Logf("drift: %d revision(s), p̂=%.4f upper=%.4f, static min P=%.4f, adaptive min P=%.4f",
		revs, est.PHat, est.Upper, minDetectionAt(static, est.Upper), minDetectionAt(p, est.Upper))
}

// TestAdaptiveChaosResumesRevisedPlan is the crash-tolerance half of the
// control plane's contract: a supervisor journals and applies a revision
// mid-run, is killed abruptly (leaving a torn revision record at the
// journal tail, as a crash mid-append would), and the restarted
// supervisor — handed the same *base* plan a real restart would rebuild
// from its flags — must reconstruct the revised plan exactly from the
// journal and finish the computation with exactly-once crediting.
// Estimator evidence is planted directly; the estimation pipeline itself
// is exercised by TestAdaptiveDriftEndToEnd.
func TestAdaptiveChaosResumesRevisedPlan(t *testing.T) {
	const eps = 0.5
	mk := func() *plan.Plan {
		t.Helper()
		p, err := plan.Balanced(150, eps)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	p1 := mk()
	jpath := filepath.Join(t.TempDir(), "journal.jsonl")
	jf1, err := os.OpenFile(jpath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	acfg := &adapt.Config{TargetEpsilon: eps, Interval: time.Hour, MinSamples: 1}
	sup1, err := NewSupervisor(SupervisorConfig{
		Plan: p1, Policy: sched.Free, WorkKind: "hashchain", Iters: 5, Seed: 9,
		Journal: jf1, JournalSync: true, Adapt: acfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr1, err := sup1.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// Partial progress: 60 results journaled, the rest still queued.
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, _ = RunWorker(WorkerConfig{
				Addr: addr1, Name: fmt.Sprintf("early-%d", w), MaxAssignments: 20,
			})
		}(w)
	}
	wg.Wait()

	// Plant adversary evidence and force a revision.
	sup1.audit.mu.Lock()
	sup1.audit.est.Observe(200, 30)
	sup1.audit.mu.Unlock()
	sup1.adaptTick()
	if got := sup1.RevisionsApplied(); got != 1 {
		t.Fatalf("revisions applied before kill = %d, want 1", got)
	}
	want := p1.Tasks()

	// Kill abruptly — no drain — and tear a half-written revision record
	// onto the tail, as a crash during the journal append would.
	sup1.Close()
	jf1.Close()
	const torn = `{"revision":{"seq":1,"ph`
	tear, err := os.OpenFile(jpath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	tear.WriteString(torn)
	tear.Close()

	// Restore: a real restart re-derives the base plan from its flags and
	// replays the journal, which must reconstruct the revision.
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	jf2, err := os.OpenFile(jpath, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer jf2.Close()
	p2 := mk()
	reg2 := obs.NewRegistry()
	sup2, err := NewSupervisor(SupervisorConfig{
		Plan: p2, Policy: sched.Free, WorkKind: "hashchain", Iters: 5, Seed: 9,
		Restore: bytes.NewReader(data), Journal: jf2, JournalSync: true,
		Metrics: reg2, Adapt: acfg,
	})
	if err != nil {
		t.Fatalf("restore across a mid-run revision: %v", err)
	}
	if got := sup2.RevisionsApplied(); got != 1 {
		t.Fatalf("restored supervisor replayed %d revisions, want 1", got)
	}
	have := p2.Tasks()
	if len(want) != len(have) {
		t.Fatalf("restored plan has %d tasks, pre-crash revised plan had %d", len(have), len(want))
	}
	for i := range want {
		if want[i] != have[i] {
			t.Fatalf("restored task %d = %+v, pre-crash %+v", i, have[i], want[i])
		}
	}
	valid := sup2.RestoredJournalBytes()
	if valid <= 0 || valid > int64(len(data))-int64(len(torn)) {
		t.Fatalf("valid journal prefix %d of %d bytes does not exclude the torn revision", valid, len(data))
	}
	if err := jf2.Truncate(valid); err != nil {
		t.Fatal(err)
	}
	addr2, err := sup2.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sup2.Close() })

	// Honest workers finish the revised computation.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, _ = RunWorker(WorkerConfig{Addr: addr2, Name: fmt.Sprintf("late-%d", w)})
		}(w)
	}
	done := make(chan struct{})
	go func() { sup2.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("restored revised run never drained")
	}
	wg.Wait()

	sum := sup2.Summary()
	if sum.Verify.MismatchDetected != 0 || sum.WrongResults != 0 {
		t.Errorf("honest run produced mismatches: %+v wrong=%d", sum.Verify, sum.WrongResults)
	}
	if sum.Restored != 60 {
		t.Errorf("restored %d results, want the 60 journaled before the kill", sum.Restored)
	}
	// Exactly-once accounting across the crash, against the *revised*
	// assignment total: a lost promoted copy leaves this short, a
	// double-granted one pushes it over.
	total := 0
	for _, e := range sum.Credits {
		total += e.Credit
	}
	if total != p2.TotalAssignments() {
		t.Errorf("total credit %d, want %d (lost or double-granted work)", total, p2.TotalAssignments())
	}
	snap := reg2.Snapshot()
	if v, _ := snap.Value("redundancy_journal_records_total"); sum.Restored+int(v) != p2.TotalAssignments() {
		t.Errorf("journal holds %d restored + %v live records, want %d (re-ran completed work?)",
			sum.Restored, v, p2.TotalAssignments())
	}
}

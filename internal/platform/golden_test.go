package platform

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/*.wire.golden from the current codecs")

// goldenMessages is one representative message per protocol verb (plus an
// explicit-type frame, verb tag 0), with every field populated somewhere.
// A verb added to wireVerbs without a row here fails TestWireGolden.
func goldenMessages() []struct {
	label string
	m     Message
} {
	return []struct {
		label string
		m     Message
	}{
		{"register", Message{Type: MsgRegister, Name: "alice", Proto: ProtoBinary}},
		{"register_resume", Message{Type: MsgRegister, Name: "alice", Resume: true, ParticipantID: 3, Token: 0xdeadbeefcafe}},
		{"registered", Message{Type: MsgRegistered, ParticipantID: 3, Token: 0x1234abcd5678, Proto: ProtoBinary}},
		{"request_work", Message{Type: MsgRequestWork, ParticipantID: 3}},
		{"work", Message{Type: MsgWork, TaskID: 41, Copy: 2, Kind: "collatz", Seed: 0x9e3779b97f4a7c15, Iters: 100000}},
		{"no_work", Message{Type: MsgNoWork, Wait: 0.25}},
		{"result", Message{Type: MsgResult, ParticipantID: 3, TaskID: 41, Copy: 2, Value: 0xfeedface}},
		{"ack", Message{Type: MsgAck, TaskID: 41, Copy: 2}},
		{"done", Message{Type: MsgDone}},
		{"error", Message{Type: MsgError, Error: "participant 3 is blacklisted", Reason: ReasonBlacklisted}},
		{"get_work", Message{Type: MsgGetWork, ParticipantID: 3, Batch: 64}},
		{"work_batch", Message{Type: MsgWorkBatch, Kind: "collatz", Iters: 100000,
			Work: []WorkItem{{TaskID: 7, Copy: 0, Seed: 11}, {TaskID: 8, Copy: 1, Seed: 12}}}},
		{"result_batch", Message{Type: MsgResultBatch, ParticipantID: 3,
			Results: []ResultItem{{TaskID: 7, Copy: 0, Value: 99}, {TaskID: 8, Copy: 1, Value: 100}}}},
		{"batch_ack", Message{Type: MsgBatchAck,
			Acks: []ResultAck{{TaskID: 7, Copy: 0, OK: true}, {TaskID: 8, Copy: 1, OK: false, Reason: ReasonUnassigned, Error: "no outstanding copy"}}}},
		{"explicit_type", Message{Type: "x-experimental", Name: "n", Ringer: true}},
	}
}

// encodeGolden renders every golden message through one codec into a
// human-diffable byte pin: raw JSON lines, or hex dumps of binary frames.
func encodeGolden(t *testing.T, binary bool) []byte {
	t.Helper()
	var out bytes.Buffer
	for _, g := range goldenMessages() {
		var wire bytes.Buffer
		c := NewCodec(&wire)
		if binary {
			c.EnableBinary()
		}
		if err := c.Send(g.m); err != nil {
			t.Fatalf("%s: encode: %v", g.label, err)
		}
		fmt.Fprintf(&out, "-- %s\n", g.label)
		if binary {
			out.WriteString(hex.Dump(wire.Bytes()))
		} else {
			out.Write(wire.Bytes())
		}
	}
	return out.Bytes()
}

// TestWireGolden pins the exact bytes both codecs put on the wire for a
// representative message of every verb. A diff here is a wire-format
// change: if it is intentional, bump PROTOCOL.md to match and regenerate
// with go test ./internal/platform -run TestWireGolden -update.
func TestWireGolden(t *testing.T) {
	// Every verb must have a golden row, so new verbs cannot ship unpinned.
	covered := map[string]bool{}
	for _, g := range goldenMessages() {
		covered[g.m.Type] = true
	}
	for _, verb := range wireVerbs {
		if !covered[verb] {
			t.Errorf("verb %q has no golden message; add one to goldenMessages", verb)
		}
	}

	for _, codec := range []struct {
		name   string
		binary bool
	}{{"json", false}, {"bin", true}} {
		t.Run(codec.name, func(t *testing.T) {
			got := encodeGolden(t, codec.binary)
			path := filepath.Join("testdata", codec.name+".wire.golden")
			if *updateGolden {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s wire bytes changed; if intentional, update PROTOCOL.md and rerun with -update\ngot:\n%s\nwant:\n%s", codec.name, got, want)
			}
		})
	}
}

// TestWireGoldenRoundTrip proves both codecs decode their own golden
// frames back to the same message, field for field. The reference is the
// JSON round trip of the original, which canonicalizes omitempty zeroes
// exactly as the binary presence bitmap does.
func TestWireGoldenRoundTrip(t *testing.T) {
	for _, g := range goldenMessages() {
		jb, err := json.Marshal(g.m)
		if err != nil {
			t.Fatal(err)
		}
		var want Message
		if err := json.Unmarshal(jb, &want); err != nil {
			t.Fatal(err)
		}
		for _, binary := range []bool{false, true} {
			var wire bytes.Buffer
			c := NewCodec(&wire)
			if binary {
				c.EnableBinary()
			}
			if err := c.Send(g.m); err != nil {
				t.Fatalf("%s: encode: %v", g.label, err)
			}
			got, err := c.Recv()
			if err != nil {
				t.Fatalf("%s (binary=%v): decode: %v", g.label, binary, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s (binary=%v): round trip mismatch\ngot  %+v\nwant %+v", g.label, binary, got, want)
			}
		}
	}
}

package platform

import "sort"

// CreditLedger implements the supervisor-side credit accounting the paper's
// introduction motivates: participants are rewarded per certified task, not
// per claimed completion, so "claiming credit for work not completed" is
// structurally impossible — credit exists only for results that survived
// redundancy/ringer verification. Credit earned by a participant later
// convicted of cheating is revoked in full.
//
// Credit is counted in whole certified-task contributions (one credit per
// contributor per certified task). The zero CreditLedger is not usable —
// its maps are nil; construct with NewCreditLedger. The ledger is not safe
// for concurrent use; the Supervisor serializes access under its own lock.
type CreditLedger struct {
	earned  map[int]int
	revoked map[int]bool
}

// NewCreditLedger returns an empty ledger: every participant has zero
// credit and nobody is revoked.
func NewCreditLedger() *CreditLedger {
	return &CreditLedger{earned: make(map[int]int), revoked: make(map[int]bool)}
}

// Award grants one credit to each listed contributor of a certified task.
// A participant appearing k times in the slice earns k credits; revoked
// participants still accrue (their standing stays 0 until un-revocation,
// which this ledger never does).
func (l *CreditLedger) Award(participants []int) {
	for _, p := range participants {
		l.earned[p]++
	}
}

// Revoke zeroes a participant's standing permanently (conviction);
// revoking an unknown or already-revoked participant is a no-op.
func (l *CreditLedger) Revoke(participant int) { l.revoked[participant] = true }

// Credit returns a participant's current standing in credits: 0 if
// revoked or never awarded.
func (l *CreditLedger) Credit(participant int) int {
	if l.revoked[participant] {
		return 0
	}
	return l.earned[participant]
}

// CreditEntry is one row of a leaderboard. Its zero value is a valid row:
// participant 0 with no credit and no conviction.
type CreditEntry struct {
	// Participant is the supervisor-assigned participant ID.
	Participant int
	// Credit is the current standing in credits (0 when revoked).
	Credit int
	// Revoked reports whether the standing was permanently zeroed.
	Revoked bool
}

// Leaderboard returns all participants ordered by credit (descending),
// ties broken by participant ID. Revoked participants appear with zero
// credit so supervisors can still see them.
func (l *CreditLedger) Leaderboard() []CreditEntry {
	out := make([]CreditEntry, 0, len(l.earned))
	for p := range l.earned {
		out = append(out, CreditEntry{Participant: p, Credit: l.Credit(p), Revoked: l.revoked[p]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Credit != out[j].Credit {
			return out[i].Credit > out[j].Credit
		}
		return out[i].Participant < out[j].Participant
	})
	return out
}

// Total returns the credit in circulation, in credits, excluding revoked
// standings; an empty ledger totals 0.
func (l *CreditLedger) Total() int {
	t := 0
	for p := range l.earned {
		t += l.Credit(p)
	}
	return t
}

package platform

import "sort"

// CreditLedger implements the supervisor-side credit accounting the paper's
// introduction motivates: participants are rewarded per certified task, not
// per claimed completion, so "claiming credit for work not completed" is
// structurally impossible — credit exists only for results that survived
// redundancy/ringer verification. Credit earned by a participant later
// convicted of cheating is revoked in full.
//
// The ledger is not safe for concurrent use; the Supervisor serializes
// access under its own lock.
type CreditLedger struct {
	earned  map[int]int
	revoked map[int]bool
}

// NewCreditLedger returns an empty ledger.
func NewCreditLedger() *CreditLedger {
	return &CreditLedger{earned: make(map[int]int), revoked: make(map[int]bool)}
}

// Award grants one credit to each contributor of a certified task.
func (l *CreditLedger) Award(participants []int) {
	for _, p := range participants {
		l.earned[p]++
	}
}

// Revoke zeroes a participant's standing permanently (conviction).
func (l *CreditLedger) Revoke(participant int) { l.revoked[participant] = true }

// Credit returns a participant's current standing: 0 if revoked.
func (l *CreditLedger) Credit(participant int) int {
	if l.revoked[participant] {
		return 0
	}
	return l.earned[participant]
}

// CreditEntry is one row of a leaderboard.
type CreditEntry struct {
	Participant int
	Credit      int
	Revoked     bool
}

// Leaderboard returns all participants ordered by credit (descending),
// ties broken by participant ID. Revoked participants appear with zero
// credit so supervisors can still see them.
func (l *CreditLedger) Leaderboard() []CreditEntry {
	out := make([]CreditEntry, 0, len(l.earned))
	for p := range l.earned {
		out = append(out, CreditEntry{Participant: p, Credit: l.Credit(p), Revoked: l.revoked[p]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Credit != out[j].Credit {
			return out[i].Credit > out[j].Credit
		}
		return out[i].Participant < out[j].Participant
	})
	return out
}

// Total returns the credit in circulation (excluding revoked standings).
func (l *CreditLedger) Total() int {
	t := 0
	for p := range l.earned {
		t += l.Credit(p)
	}
	return t
}

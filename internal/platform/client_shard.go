package platform

import (
	"errors"
	"fmt"
	"time"

	"redundancy/internal/ring"
)

// shardedStallDelay paces retry passes when every remaining shard is
// unreachable (e.g. the worker's home shard is down between KillShard and
// RestoreShard): long enough not to spin, short enough that a restored
// shard is picked up promptly.
const shardedStallDelay = 25 * time.Millisecond

// RunShardedWorker drives one worker identity across every shard of a
// cluster. The worker rebuilds the cluster's consistent-hash ring locally
// from the ShardMap (same vnode count and seed, so placement agrees with
// the supervisors') and serves shards starting at its home shard — the ring
// owner of its own name, which spreads workers across shards without any
// central assignment. Each shard session is an ordinary RunWorker run: the
// shard is marked drained when it replies done, banned when it blacklists
// this worker (ErrBlacklisted), and retried on a later pass when it is
// unreachable — the kill/restore window of a chaos event.
//
// Replies carry the cluster's shard-map epoch; when a reply's epoch is
// newer than the map the worker is routing by, the worker calls lookup
// again and re-resolves before the next shard session. lookup must be
// safe for concurrent use (it is typically Cluster.ShardMap via a lock, or
// a snapshot refreshed by the test driver).
//
// The returned stats are cumulative across shards (ParticipantID is
// shard-local and reports the last session's ID; Epoch the newest epoch
// seen). The error is nil once every shard has drained; if every shard
// that still has work has banned this worker, the ban error is returned.
func RunShardedWorker(cfg WorkerConfig, lookup func() ShardMap) (WorkerStats, error) {
	m := lookup()
	if len(m.Shards) == 0 {
		return WorkerStats{}, errors.New("platform: shard map is empty")
	}
	r, err := ring.New(ring.Config{VNodes: m.VNodes, Seed: m.Seed}, shardNames(m)...)
	if err != nil {
		return WorkerStats{}, fmt.Errorf("platform: rebuilding shard ring: %w", err)
	}

	// Visit order: home shard first (ring owner of this worker's name),
	// then the rest in ring order. Workers hash to different homes, so the
	// fleet spreads across shards instead of stampeding shard 0.
	order := shardOrder(r, m, cfg.Name)

	done := make(map[string]bool, len(m.Shards))   // shard name -> drained
	banned := make(map[string]bool, len(m.Shards)) // shard name -> blacklisted us
	var total WorkerStats
	var lastBan error

	for {
		progressed := false
		remaining := 0
		for _, name := range order {
			if done[name] || banned[name] {
				continue
			}
			remaining++
			info, ok := findShard(m, name)
			if !ok || info.Down {
				continue // kill window: retry after restore
			}
			scfg := cfg
			scfg.Addr = info.Addr
			if cfg.MaxAssignments > 0 {
				scfg.MaxAssignments = cfg.MaxAssignments - total.Completed
				if scfg.MaxAssignments <= 0 {
					return total, nil
				}
			}
			st, err := RunWorker(scfg)
			total.Completed += st.Completed
			total.Cheated += st.Cheated
			if st.ParticipantID != 0 || total.ParticipantID == 0 {
				total.ParticipantID = st.ParticipantID
			}
			if st.Epoch > total.Epoch {
				total.Epoch = st.Epoch
			}
			if st.Completed > 0 {
				progressed = true
			}
			switch {
			case err == nil:
				// The shard replied done: its task subset is certified (or
				// this worker hit its assignment cap mid-session, caught
				// above on the next pass).
				done[name] = true
				progressed = true
			case errors.Is(err, ErrBlacklisted):
				banned[name] = true
				lastBan = err
				progressed = true
			default:
				// Transient (connection refused mid-kill, session died):
				// leave the shard pending and move on.
			}
			if cfg.MaxAssignments > 0 && total.Completed >= cfg.MaxAssignments {
				return total, nil
			}
			// A newer epoch in any reply means membership changed under
			// us: re-resolve the map before routing to the next shard.
			if total.Epoch > m.Epoch {
				m = lookup()
				if nr, rerr := ring.New(ring.Config{VNodes: m.VNodes, Seed: m.Seed}, shardNames(m)...); rerr == nil {
					r = nr
					order = shardOrder(r, m, cfg.Name)
				}
			}
		}
		if remaining == 0 {
			break
		}
		if !progressed {
			// Every remaining shard was unreachable or idle: refresh the
			// map (a restore may have landed) and back off briefly.
			m = lookup()
			time.Sleep(shardedStallDelay)
		}
	}
	if len(banned) > 0 && len(done) < len(m.Shards) {
		return total, lastBan
	}
	return total, nil
}

// shardNames extracts the ring member names from a shard map.
func shardNames(m ShardMap) []string {
	names := make([]string, len(m.Shards))
	for i, s := range m.Shards {
		names[i] = s.Name
	}
	return names
}

// findShard returns the ShardInfo with the given ring name.
func findShard(m ShardMap, name string) (ShardInfo, bool) {
	for _, s := range m.Shards {
		if s.Name == name {
			return s, true
		}
	}
	return ShardInfo{}, false
}

// shardOrder returns every shard name starting at the ring owner of key
// and continuing in shard-map order, wrapping around.
func shardOrder(r *ring.Ring, m ShardMap, key string) []string {
	home, _ := r.Lookup(key)
	start := 0
	for i, s := range m.Shards {
		if s.Name == home {
			start = i
			break
		}
	}
	order := make([]string, 0, len(m.Shards))
	for i := 0; i < len(m.Shards); i++ {
		order = append(order, m.Shards[(start+i)%len(m.Shards)].Name)
	}
	return order
}

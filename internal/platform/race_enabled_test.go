//go:build race

package platform

// raceEnabled scales soak-style tests down under the race detector, whose
// instrumentation multiplies the cost of the tight replay loops they time.
const raceEnabled = true

package platform

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary wire framing (negotiated with proto=bin at registration; see
// PROTOCOL.md for the byte-level specification):
//
//	frame   := u32-LE payload-length, payload   (length excludes itself)
//	payload := verb-tag, [type-string], presence-bitmap, fields...
//
// The verb tag is the 1-based index into wireVerbs; tag 0 is followed by
// an explicit type string for non-verb types. The presence bitmap is a
// uvarint with one bit per Message field in declaration order; a clear
// bit means the field is at its zero value, mirroring the JSON codec's
// omitempty semantics exactly — decoding a binary frame yields the same
// Message that encoding to JSON and decoding back would. Integers are
// varints (zigzag for signed fields), Wait is 8 bytes of float64 bits,
// strings and arrays are length-prefixed. Both directions of the hot
// path (work_batch leases out, result_batch values in) therefore cost a
// few bytes per assignment instead of a JSON object, and neither side
// allocates at steady state: the encoder appends into a reused frame
// buffer and the decoder aliases item slices owned by the Codec.

// binTagExplicit is verb tag 0: an explicit type string follows, so
// tests and forward-compatible peers can frame types outside wireVerbs.
const binTagExplicit = 0

// binTagByVerb inverts wireVerbs: verb name → 1-based tag.
var binTagByVerb = func() map[string]byte {
	m := make(map[string]byte, len(wireVerbs))
	for i, v := range wireVerbs {
		m[v] = byte(i + 1)
	}
	return m
}()

// Presence-bitmap bits, one per Message field in declaration order (Type
// rides in the verb tag). Append only — renumbering changes the wire.
const (
	binFName = 1 << iota
	binFParticipantID
	binFResume
	binFToken
	binFProto
	binFTaskID
	binFCopy
	binFKind
	binFSeed
	binFIters
	binFRinger
	binFValue
	binFWait
	binFError
	binFReason
	binFBatch
	binFWork
	binFResults
	binFAcks
	binFEpoch

	binFKnown = binFEpoch<<1 - 1 // every defined bit
)

// appendBinMessage appends m's binary payload (no length prefix) to dst.
func appendBinMessage(dst []byte, m *Message) []byte {
	if tag, ok := binTagByVerb[m.Type]; ok {
		dst = append(dst, tag)
	} else {
		dst = append(dst, binTagExplicit)
		dst = appendBinString(dst, m.Type)
	}
	var bits uint64
	if m.Name != "" {
		bits |= binFName
	}
	if m.ParticipantID != 0 {
		bits |= binFParticipantID
	}
	if m.Resume {
		bits |= binFResume
	}
	if m.Token != 0 {
		bits |= binFToken
	}
	if m.Proto != "" {
		bits |= binFProto
	}
	if m.TaskID != 0 {
		bits |= binFTaskID
	}
	if m.Copy != 0 {
		bits |= binFCopy
	}
	if m.Kind != "" {
		bits |= binFKind
	}
	if m.Seed != 0 {
		bits |= binFSeed
	}
	if m.Iters != 0 {
		bits |= binFIters
	}
	if m.Ringer {
		bits |= binFRinger
	}
	if m.Value != 0 {
		bits |= binFValue
	}
	if m.Wait != 0 {
		bits |= binFWait
	}
	if m.Error != "" {
		bits |= binFError
	}
	if m.Reason != "" {
		bits |= binFReason
	}
	if m.Batch != 0 {
		bits |= binFBatch
	}
	if len(m.Work) > 0 {
		bits |= binFWork
	}
	if len(m.Results) > 0 {
		bits |= binFResults
	}
	if len(m.Acks) > 0 {
		bits |= binFAcks
	}
	if m.Epoch != 0 {
		bits |= binFEpoch
	}
	dst = binary.AppendUvarint(dst, bits)
	if bits&binFName != 0 {
		dst = appendBinString(dst, m.Name)
	}
	if bits&binFParticipantID != 0 {
		dst = binary.AppendVarint(dst, int64(m.ParticipantID))
	}
	// Resume and Ringer are carried by their presence bits alone.
	if bits&binFToken != 0 {
		dst = binary.AppendUvarint(dst, m.Token)
	}
	if bits&binFProto != 0 {
		dst = appendBinString(dst, m.Proto)
	}
	if bits&binFTaskID != 0 {
		dst = binary.AppendVarint(dst, int64(m.TaskID))
	}
	if bits&binFCopy != 0 {
		dst = binary.AppendVarint(dst, int64(m.Copy))
	}
	if bits&binFKind != 0 {
		dst = appendBinString(dst, m.Kind)
	}
	if bits&binFSeed != 0 {
		dst = binary.AppendUvarint(dst, m.Seed)
	}
	if bits&binFIters != 0 {
		dst = binary.AppendVarint(dst, int64(m.Iters))
	}
	if bits&binFValue != 0 {
		dst = binary.AppendUvarint(dst, m.Value)
	}
	if bits&binFWait != 0 {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(m.Wait))
	}
	if bits&binFError != 0 {
		dst = appendBinString(dst, m.Error)
	}
	if bits&binFReason != 0 {
		dst = appendBinString(dst, m.Reason)
	}
	if bits&binFBatch != 0 {
		dst = binary.AppendVarint(dst, int64(m.Batch))
	}
	if bits&binFWork != 0 {
		dst = binary.AppendUvarint(dst, uint64(len(m.Work)))
		for i := range m.Work {
			w := &m.Work[i]
			dst = binary.AppendVarint(dst, int64(w.TaskID))
			dst = binary.AppendVarint(dst, int64(w.Copy))
			dst = binary.AppendUvarint(dst, w.Seed)
		}
	}
	if bits&binFResults != 0 {
		dst = binary.AppendUvarint(dst, uint64(len(m.Results)))
		for i := range m.Results {
			r := &m.Results[i]
			dst = binary.AppendVarint(dst, int64(r.TaskID))
			dst = binary.AppendVarint(dst, int64(r.Copy))
			dst = binary.AppendUvarint(dst, r.Value)
		}
	}
	if bits&binFAcks != 0 {
		dst = binary.AppendUvarint(dst, uint64(len(m.Acks)))
		for i := range m.Acks {
			a := &m.Acks[i]
			dst = binary.AppendVarint(dst, int64(a.TaskID))
			dst = binary.AppendVarint(dst, int64(a.Copy))
			ok := byte(0)
			if a.OK {
				ok = 1
			}
			dst = append(dst, ok)
			dst = appendBinString(dst, a.Reason)
			dst = appendBinString(dst, a.Error)
		}
	}
	if bits&binFEpoch != 0 {
		dst = binary.AppendUvarint(dst, m.Epoch)
	}
	return dst
}

func appendBinString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// binReader walks one binary payload. Every read is bounds-checked; any
// truncation or malformed varint returns an error instead of panicking
// (the codec fuzz target drives this with hostile bytes).
type binReader struct {
	b   []byte
	off int
}

func (r *binReader) remaining() int { return len(r.b) - r.off }

func (r *binReader) u8() (byte, error) {
	if r.off >= len(r.b) {
		return 0, fmt.Errorf("truncated binary frame")
	}
	b := r.b[r.off]
	r.off++
	return b, nil
}

func (r *binReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("bad varint in binary frame")
	}
	r.off += n
	return v, nil
}

func (r *binReader) varint() (int64, error) {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("bad varint in binary frame")
	}
	r.off += n
	return v, nil
}

func (r *binReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(r.remaining()) {
		return "", fmt.Errorf("truncated string in binary frame")
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

func (r *binReader) f64() (float64, error) {
	if r.remaining() < 8 {
		return 0, fmt.Errorf("truncated float in binary frame")
	}
	bits := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return math.Float64frombits(bits), nil
}

// count reads an array length and rejects one that could not fit in the
// remaining payload (minItem bytes per element), so a hostile length
// cannot force a huge allocation.
func (r *binReader) count(minItem int) (int, error) {
	n, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if n*uint64(minItem) > uint64(r.remaining()) {
		return 0, fmt.Errorf("binary frame array length %d overruns payload", n)
	}
	return int(n), nil
}

// decodeBinMessage decodes one payload into m. The Work/Results/Acks
// slices alias c's scratch buffers, valid until the next Recv.
func (c *Codec) decodeBinMessage(payload []byte, m *Message) error {
	r := binReader{b: payload}
	tag, err := r.u8()
	if err != nil {
		return err
	}
	switch {
	case tag == binTagExplicit:
		if m.Type, err = r.str(); err != nil {
			return err
		}
	case int(tag) <= len(wireVerbs):
		m.Type = wireVerbs[tag-1]
	default:
		return fmt.Errorf("unknown binary verb tag %d", tag)
	}
	bits, err := r.uvarint()
	if err != nil {
		return err
	}
	if bits&^uint64(binFKnown) != 0 {
		return fmt.Errorf("unknown binary field bits %#x", bits&^uint64(binFKnown))
	}
	if bits&binFName != 0 {
		if m.Name, err = r.str(); err != nil {
			return err
		}
	}
	if bits&binFParticipantID != 0 {
		v, err := r.varint()
		if err != nil {
			return err
		}
		m.ParticipantID = int(v)
	}
	m.Resume = bits&binFResume != 0
	if bits&binFToken != 0 {
		if m.Token, err = r.uvarint(); err != nil {
			return err
		}
	}
	if bits&binFProto != 0 {
		if m.Proto, err = r.str(); err != nil {
			return err
		}
	}
	if bits&binFTaskID != 0 {
		v, err := r.varint()
		if err != nil {
			return err
		}
		m.TaskID = int(v)
	}
	if bits&binFCopy != 0 {
		v, err := r.varint()
		if err != nil {
			return err
		}
		m.Copy = int(v)
	}
	if bits&binFKind != 0 {
		if m.Kind, err = r.str(); err != nil {
			return err
		}
	}
	if bits&binFSeed != 0 {
		if m.Seed, err = r.uvarint(); err != nil {
			return err
		}
	}
	if bits&binFIters != 0 {
		v, err := r.varint()
		if err != nil {
			return err
		}
		m.Iters = int(v)
	}
	m.Ringer = bits&binFRinger != 0
	if bits&binFValue != 0 {
		if m.Value, err = r.uvarint(); err != nil {
			return err
		}
	}
	if bits&binFWait != 0 {
		if m.Wait, err = r.f64(); err != nil {
			return err
		}
	}
	if bits&binFError != 0 {
		if m.Error, err = r.str(); err != nil {
			return err
		}
	}
	if bits&binFReason != 0 {
		if m.Reason, err = r.str(); err != nil {
			return err
		}
	}
	if bits&binFBatch != 0 {
		v, err := r.varint()
		if err != nil {
			return err
		}
		m.Batch = int(v)
	}
	if bits&binFWork != 0 {
		n, err := r.count(3) // three varints, one byte minimum each
		if err != nil {
			return err
		}
		work := c.work[:0]
		for i := 0; i < n; i++ {
			var w WorkItem
			var v int64
			if v, err = r.varint(); err != nil {
				return err
			}
			w.TaskID = int(v)
			if v, err = r.varint(); err != nil {
				return err
			}
			w.Copy = int(v)
			if w.Seed, err = r.uvarint(); err != nil {
				return err
			}
			work = append(work, w)
		}
		c.work = work
		if n > 0 {
			m.Work = work
		}
	}
	if bits&binFResults != 0 {
		n, err := r.count(3)
		if err != nil {
			return err
		}
		results := c.results[:0]
		for i := 0; i < n; i++ {
			var it ResultItem
			var v int64
			if v, err = r.varint(); err != nil {
				return err
			}
			it.TaskID = int(v)
			if v, err = r.varint(); err != nil {
				return err
			}
			it.Copy = int(v)
			if it.Value, err = r.uvarint(); err != nil {
				return err
			}
			results = append(results, it)
		}
		c.results = results
		if n > 0 {
			m.Results = results
		}
	}
	if bits&binFAcks != 0 {
		n, err := r.count(5) // two varints, an OK byte, two string lengths
		if err != nil {
			return err
		}
		acks := c.acks[:0]
		for i := 0; i < n; i++ {
			var a ResultAck
			var v int64
			if v, err = r.varint(); err != nil {
				return err
			}
			a.TaskID = int(v)
			if v, err = r.varint(); err != nil {
				return err
			}
			a.Copy = int(v)
			ok, err := r.u8()
			if err != nil {
				return err
			}
			a.OK = ok != 0
			if a.Reason, err = r.str(); err != nil {
				return err
			}
			if a.Error, err = r.str(); err != nil {
				return err
			}
			acks = append(acks, a)
		}
		c.acks = acks
		if n > 0 {
			m.Acks = acks
		}
	}
	if bits&binFEpoch != 0 {
		if m.Epoch, err = r.uvarint(); err != nil {
			return err
		}
	}
	if r.remaining() != 0 {
		return fmt.Errorf("%d trailing bytes in binary frame", r.remaining())
	}
	return nil
}

package platform

import (
	"os"
	"path/filepath"
	"sync"
)

// JournalFile is a file-backed journal writer that, beyond the plain
// append+sync surface any *os.File gives SupervisorConfig.Journal, supports
// the crash-atomic whole-file replacement compaction needs: ReplaceWith
// writes the new contents to a temporary file in the same directory, fsyncs
// it, renames it over the journal path, and fsyncs the directory, so a
// crash at any instant leaves either the old journal or the new one —
// never a mix, never a hole. cmd/supervisor uses it for -journal
// unconditionally; compaction is then just a config flag away.
type JournalFile struct {
	mu   sync.Mutex
	path string
	f    *os.File
}

// OpenJournalFile opens (creating if absent) the journal at path for
// appending.
func OpenJournalFile(path string) (*JournalFile, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &JournalFile{path: path, f: f}, nil
}

// Write appends p to the journal.
func (j *JournalFile) Write(p []byte) (int, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Write(p)
}

// Sync flushes appended records to stable storage (the JournalSync hook).
func (j *JournalFile) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Sync()
}

// Size returns the journal's current length in bytes.
func (j *JournalFile) Size() (int64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	fi, err := j.f.Stat()
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// Truncate cuts the journal to size bytes — the torn-tail removal a
// restart performs before appending (see RestoredJournalBytes).
func (j *JournalFile) Truncate(size int64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Truncate(size)
}

// Close closes the underlying file.
func (j *JournalFile) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// ReplaceWith atomically replaces the journal's entire contents. The new
// contents are durable before the old ones become unreachable: temp file
// written and fsynced first, then renamed over the journal path (atomic on
// POSIX filesystems), then the directory entry fsynced. Subsequent Writes
// append to the new file.
func (j *JournalFile) ReplaceWith(contents []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	dir := filepath.Dir(j.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(j.path)+".compact-*")
	if err != nil {
		return err
	}
	tmpPath := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpPath)
	}
	if _, err := tmp.Write(contents); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := os.Rename(tmpPath, j.path); err != nil {
		cleanup()
		return err
	}
	// The temp handle becomes the journal fd: its offset already sits at
	// the end of the new contents, and every write is serialized under
	// j.mu (and the supervisor's jnlMu above it), so plain writes are
	// appends. Swapping handles instead of reopening by path avoids a
	// window where a failed reopen would leave j.f on the unlinked inode.
	old := j.f
	j.f = tmp
	old.Close()
	// Make the rename itself durable: fsync the directory so the new
	// entry survives a crash (best-effort on filesystems that refuse
	// directory fsync).
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

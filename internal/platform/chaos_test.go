package platform

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"redundancy/internal/faults"
	"redundancy/internal/obs"
	"redundancy/internal/plan"
)

// TestChaosSoak is the platform's crash-tolerance acceptance test: a full
// plan runs to certification with every fault mode enabled on both sides
// of the wire — dropped dials, mid-read and mid-write connection kills,
// torn frames, corrupted bytes, latency — and with the supervisor killed
// abruptly partway through and restored from its fsync'd journal (plus a
// hand-torn tail, as a real crash would leave). The invariants at the end
// are absolute, not statistical: every task certified, no certified work
// lost, no credit granted twice, nothing recomputed that the journal
// already held.
func TestChaosSoak(t *testing.T) {
	p, err := plan.Balanced(120, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faults.New(faults.Config{
		Seed:     7,
		DialDrop: 0.05, ReadDrop: 0.02, WriteDrop: 0.02,
		Corrupt: 0.01, ShortWrite: 0.01,
		Latency: 200 * time.Microsecond, Jitter: 300 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	jpath := filepath.Join(t.TempDir(), "journal.jsonl")
	jf1, err := os.OpenFile(jpath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	reg1 := obs.NewRegistry()
	sup1, err := NewSupervisor(SupervisorConfig{
		Plan: p, WorkKind: "hashchain", Iters: 10, Seed: 9,
		Journal: jf1, JournalSync: true,
		IOTimeout: 2 * time.Second, Deadline: 2 * time.Second,
		WrapListener: inj.Listener, Metrics: reg1,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := sup1.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// A small workforce that never gives up: each goroutine re-enters
	// RunWorker (fresh identity) whenever a run ends, until told to stop.
	// Within a run, Reconnect-mode sessions resume the same identity.
	// Three workers lease in batches of 16 and one speaks the legacy
	// single-assignment protocol, so the soak also proves the two protocol
	// generations share one supervisor under fire.
	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			batch := 16
			if i == 3 {
				batch = 1
			}
			for !stop.Load() {
				RunWorker(WorkerConfig{
					Addr: addr, Name: fmt.Sprintf("chaos-%d", i),
					Reconnect: true, MaxReconnects: 25, BatchSize: batch,
					BackoffBase: 2 * time.Millisecond, BackoffMax: 50 * time.Millisecond,
					Seed: uint64(i + 1),
					Dial: func(a string) (net.Conn, error) { return inj.Dial("tcp", a) },
				})
				time.Sleep(5 * time.Millisecond)
			}
		}(i)
	}
	fail := func(format string, args ...any) {
		t.Helper()
		stop.Store(true)
		wg.Wait()
		t.Fatalf(format, args...)
	}

	// Phase 1: let real progress accumulate, then kill the supervisor
	// abruptly — no drain, connections die mid-exchange.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if v, _ := reg1.Snapshot().Value("redundancy_journal_records_total"); v >= 30 {
			break
		}
		if time.Now().After(deadline) {
			fail("phase 1: fewer than 30 results journaled within a minute")
		}
		time.Sleep(2 * time.Millisecond)
	}
	sup1.Close()
	jf1.Close()

	// A crash mid-append leaves a torn final record; replay must shrug it
	// off and the restart must truncate it away before appending.
	tear, err := os.OpenFile(jpath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	tear.WriteString(`{"task":0,"cop`)
	tear.Close()

	// Phase 2: restore at the same address from the journal.
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	jf2, err := os.OpenFile(jpath, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer jf2.Close()
	reg2 := obs.NewRegistry()
	sup2, err := NewSupervisor(SupervisorConfig{
		Plan: p, WorkKind: "hashchain", Iters: 10, Seed: 9,
		Restore: bytes.NewReader(data), Journal: jf2, JournalSync: true,
		IOTimeout: 2 * time.Second, Deadline: 2 * time.Second,
		WrapListener: inj.Listener, Metrics: reg2,
	})
	if err != nil {
		fail("restore from chaos journal: %v", err)
	}
	valid := sup2.RestoredJournalBytes()
	if valid <= 0 || valid > int64(len(data))-int64(len(`{"task":0,"cop`)) {
		fail("valid journal prefix %d of %d bytes does not exclude the torn tail", valid, len(data))
	}
	if err := jf2.Truncate(valid); err != nil {
		t.Fatal(err)
	}
	for try := 0; ; try++ {
		if _, err = sup2.Start(addr); err == nil {
			break
		}
		if try >= 100 {
			fail("could not rebind %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	waitDone := make(chan struct{})
	go func() { sup2.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(120 * time.Second):
		fail("chaos run never reached certification (journal records: %v restored, %v live)",
			func() float64 { v, _ := reg2.Snapshot().Value("redundancy_journal_restored_total"); return v }(),
			func() float64 { v, _ := reg2.Snapshot().Value("redundancy_journal_records_total"); return v }())
	}
	stop.Store(true)
	wg.Wait()
	sup2.Close()

	sum := sup2.Summary()
	tasks := p.N + p.Ringers
	if sum.Verify.Tasks != tasks || sum.Verify.Accepted != tasks {
		t.Errorf("certified %d/%d tasks, want all %d", sum.Verify.Accepted, sum.Verify.Tasks, tasks)
	}
	if sum.Verify.MismatchDetected != 0 || sum.WrongResults != 0 {
		t.Errorf("honest workers under faults produced mismatches: %+v wrong=%d",
			sum.Verify, sum.WrongResults)
	}
	// Exactly-once accounting: every assignment contributes exactly one
	// credit across both supervisor lives — a lost certified task would
	// leave the total short, a double grant would push it over.
	total := 0
	for _, e := range sum.Credits {
		total += e.Credit
	}
	if total != p.TotalAssignments() {
		t.Errorf("total credit %d, want %d (lost or double-granted work)", total, p.TotalAssignments())
	}
	if sum.Restored < 30 {
		t.Errorf("restored %d results, want the >=30 journaled before the kill", sum.Restored)
	}
	snap := reg2.Snapshot()
	if v, _ := snap.Value("redundancy_journal_records_total"); sum.Restored+int(v) != p.TotalAssignments() {
		t.Errorf("journal holds %d restored + %v live records, want %d total (re-ran completed work?)",
			sum.Restored, v, p.TotalAssignments())
	}
	if inj.Injected() == 0 {
		t.Error("fault injector never fired; the soak proved nothing")
	}
	t.Logf("soak: %d faults injected, %d restored, %d participants, %d reconnect-era credits entries",
		inj.Injected(), sum.Restored, sum.Participants, len(sum.Credits))
}

package platform

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"redundancy/internal/obs"
)

// CheatFunc lets a worker corrupt its results: it receives the task and the
// honestly computed value and returns what to submit. Nil means honest.
// Colluding workers share a CheatFunc (and any state behind it) so their
// incorrect values match.
type CheatFunc func(taskID int, honest uint64) uint64

// WorkerConfig parameterizes a worker client.
type WorkerConfig struct {
	// Addr is the supervisor's TCP address.
	Addr string
	// Name identifies the worker in supervisor logs.
	Name string
	// Cheat, when non-nil, corrupts results (a coalition member).
	Cheat CheatFunc
	// MaxAssignments, when positive, stops after that many completions
	// (simulates a participant leaving).
	MaxAssignments int
	// Throttle adds a fixed delay per assignment (simulates slow hosts,
	// and exercises the platform's asynchrony in tests).
	Throttle time.Duration
	// Metrics, when non-nil, receives the worker's runtime metrics
	// (protocol RTT histogram, completion counters; see OBSERVABILITY.md).
	Metrics *obs.Registry
	// Events, when non-nil, receives one JSON line per worker event
	// (assignment_received, result_submitted). Nil discards events.
	Events *obs.Sink
}

// WorkerStats reports what one worker did.
type WorkerStats struct {
	ParticipantID int
	Completed     int
	Cheated       int
}

// RunWorker connects to the supervisor, registers, and processes
// assignments until the supervisor reports the computation done (or
// MaxAssignments is reached). It is the complete participant-side loop:
// download work, execute the local computation, return the result.
func RunWorker(cfg WorkerConfig) (WorkerStats, error) {
	var stats WorkerStats
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry() // instrument unconditionally; discard if unwanted
	}
	wm := newWorkerMetrics(reg)
	conn, err := net.Dial("tcp", cfg.Addr)
	if err != nil {
		return stats, err
	}
	defer conn.Close()
	codec := NewCodec(conn)

	// roundTrip sends one message, waits for the reply, and records the
	// protocol round-trip time (network + supervisor processing).
	roundTrip := func(m Message) (Message, error) {
		start := time.Now()
		if err := codec.Send(m); err != nil {
			return Message{}, err
		}
		reply, err := codec.Recv()
		if err != nil {
			return Message{}, err
		}
		wm.rtt.Observe(time.Since(start).Seconds())
		return reply, nil
	}

	// Register.
	welcome, err := roundTrip(Message{Type: MsgRegister, Name: cfg.Name})
	if err != nil {
		return stats, err
	}
	if welcome.Type != MsgRegistered {
		return stats, fmt.Errorf("platform: unexpected registration reply %q: %s", welcome.Type, welcome.Error)
	}
	stats.ParticipantID = welcome.ParticipantID

	for {
		if cfg.MaxAssignments > 0 && stats.Completed >= cfg.MaxAssignments {
			return stats, nil
		}
		m, err := roundTrip(Message{Type: MsgRequestWork, ParticipantID: stats.ParticipantID})
		if err != nil {
			return stats, err
		}
		switch m.Type {
		case MsgDone:
			return stats, nil
		case MsgNoWork:
			wm.noWork.Inc()
			time.Sleep(time.Duration(m.Wait * float64(time.Second)))
			continue
		case MsgError:
			return stats, errors.New("platform: supervisor refused work: " + m.Error)
		case MsgWork:
			// fall through to execution below
		default:
			return stats, fmt.Errorf("platform: unexpected reply %q", m.Type)
		}

		cfg.Events.Emit(EvAssignmentReceived, map[string]any{
			"task": m.TaskID, "copy": m.Copy, "kind": m.Kind,
		})
		work, err := Work(m.Kind)
		if err != nil {
			return stats, err
		}
		if cfg.Throttle > 0 {
			time.Sleep(cfg.Throttle)
		}
		value := work(m.Seed, m.Iters)
		cheated := false
		if cfg.Cheat != nil {
			if v := cfg.Cheat(m.TaskID, value); v != value {
				value = v
				cheated = true
				stats.Cheated++
				wm.cheats.Inc()
			}
		}
		ack, err := roundTrip(Message{
			Type:          MsgResult,
			ParticipantID: stats.ParticipantID,
			TaskID:        m.TaskID,
			Copy:          m.Copy,
			Value:         value,
		})
		if err != nil {
			return stats, err
		}
		cfg.Events.Emit(EvResultSubmitted, map[string]any{
			"task": m.TaskID, "copy": m.Copy, "cheated": cheated,
		})
		if ack.Type != MsgAck {
			return stats, fmt.Errorf("platform: result rejected: %s", ack.Error)
		}
		stats.Completed++
		wm.completed.Inc()
	}
}

// Coalition is the client-side analogue of the adversary model: a group of
// workers that share one cheat policy and return identical wrong values.
// It decides per task, on first contact, whether that task will be cheated
// on (with probability CheatProbability), and every member follows the
// shared decision thereafter.
type Coalition struct {
	// CheatProbability is the chance a newly seen task is marked for
	// cheating. 1 reproduces the paper's always-cheat coalition.
	CheatProbability float64

	mu       sync.Mutex
	decision map[int]bool
	seed     uint64
}

// NewCoalition builds a coalition with the given per-task cheat
// probability, deterministic in seed.
func NewCoalition(cheatProbability float64, seed uint64) *Coalition {
	return &Coalition{
		CheatProbability: cheatProbability,
		decision:         make(map[int]bool),
		seed:             seed,
	}
}

// CheatFunc returns the shared cheat function to install in each member's
// WorkerConfig.
func (c *Coalition) CheatFunc() CheatFunc {
	return func(taskID int, honest uint64) uint64 {
		if c.cheatsOn(taskID) {
			return honest ^ 0xDEADBEEFCAFEBABE
		}
		return honest
	}
}

func (c *Coalition) cheatsOn(taskID int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d, ok := c.decision[taskID]; ok {
		return d
	}
	var d bool
	switch {
	case c.CheatProbability >= 1:
		d = true
	case c.CheatProbability <= 0:
		d = false
	default:
		// Deterministic per-task coin derived from (seed, taskID).
		z := c.seed ^ (uint64(taskID)+1)*0x9E3779B97F4A7C15
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		d = float64(z>>11)/(1<<53) < c.CheatProbability
	}
	c.decision[taskID] = d
	return d
}

// Decisions returns how many tasks were marked for cheating so far.
func (c *Coalition) Decisions() (cheat, honest int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, d := range c.decision {
		if d {
			cheat++
		} else {
			honest++
		}
	}
	return
}

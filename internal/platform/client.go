package platform

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"redundancy/internal/obs"
	"redundancy/internal/rng"
)

// CheatFunc lets a worker corrupt its results: it receives the task and the
// honestly computed value and returns what to submit. Nil means honest.
// Colluding workers share a CheatFunc (and any state behind it) so their
// incorrect values match.
type CheatFunc func(taskID int, honest uint64) uint64

// SpeedModel makes a worker's per-assignment compute time heterogeneous: a
// base duration, uniform jitter, and a straggler mixture — with probability
// StragglerP an assignment takes StragglerDelay extra. Draws come from the
// worker's own deterministic jitter stream, so a seeded run reproduces the
// same straggler pattern. It is the client half of the speculative-execution
// story: the supervisor's percentile tier exists to cut exactly this tail.
type SpeedModel struct {
	// Base is the fixed per-assignment compute time.
	Base time.Duration
	// Jitter widens Base uniformly to [Base, Base+Jitter).
	Jitter time.Duration
	// StragglerP is the per-assignment probability of a straggler episode.
	StragglerP float64
	// StragglerDelay is the extra time a straggler episode adds.
	StragglerDelay time.Duration
}

// delay draws one assignment's compute time from the model.
func (m *SpeedModel) delay(r *rng.Source) time.Duration {
	d := m.Base
	if m.Jitter > 0 {
		d += time.Duration(r.Float64() * float64(m.Jitter))
	}
	if m.StragglerP > 0 && r.Float64() < m.StragglerP {
		d += m.StragglerDelay
	}
	return d
}

// WorkerConfig parameterizes a worker client.
type WorkerConfig struct {
	// Addr is the supervisor's TCP address.
	Addr string
	// Name identifies the worker in supervisor logs.
	Name string
	// Cheat, when non-nil, corrupts results (a coalition member).
	Cheat CheatFunc
	// MaxAssignments, when positive, stops after that many completions
	// (simulates a participant leaving).
	MaxAssignments int
	// BatchSize, when greater than 1, switches to batched leasing: each
	// get_work round trip leases up to BatchSize assignments (the
	// supervisor caps the grant at its MaxBatch) and their values return
	// in a single result_batch. 0 or 1 keeps the single-assignment
	// protocol byte-for-byte; negative is rejected.
	BatchSize int
	// Throttle adds a fixed delay per assignment (simulates slow hosts,
	// and exercises the platform's asynchrony in tests).
	Throttle time.Duration
	// Speed, when non-nil, replaces Throttle with a heterogeneous
	// per-assignment compute-time model (base + jitter + straggler
	// mixture), drawn from the worker's seeded jitter stream.
	Speed *SpeedModel
	// Proto selects the wire codec to request at registration: "" or
	// ProtoJSON keeps newline-delimited JSON; ProtoBinary asks for the
	// length-prefixed binary framing (PROTOCOL.md). The register exchange
	// itself is always JSON; the connection switches only after the
	// supervisor echoes the capability, so a worker requesting bin from an
	// older supervisor degrades to JSON instead of failing.
	Proto string
	// Reconnect makes session failures survivable: instead of returning the
	// first network error, the worker redials with exponential backoff,
	// resumes its identity (and any in-flight assignment) via a resume
	// register, and resubmits a result whose ack never arrived. Off, any
	// error ends the run — the pre-hardening behavior tests rely on.
	Reconnect bool
	// MaxReconnects caps consecutive failed sessions before giving up
	// (default 8). The counter resets whenever a session makes progress, so
	// a long run on a flaky link is not bounded by its total hiccup count.
	MaxReconnects int
	// BackoffBase is the first reconnect delay (default 50ms); each further
	// consecutive failure doubles it up to BackoffMax (default 5s). Delays
	// are jittered to ±50% so a herd of workers killed by one supervisor
	// restart does not redial in lockstep.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed fixes the worker's jitter stream (backoff and no_work waits) for
	// reproducible tests. 0 derives a stream from Name and a process-wide
	// counter.
	Seed uint64
	// Dial, when non-nil, replaces net.Dial("tcp", addr) — the hook the
	// fault injector (internal/faults) plugs into.
	Dial func(addr string) (net.Conn, error)
	// Metrics, when non-nil, receives the worker's runtime metrics
	// (protocol RTT histogram, completion counters; see OBSERVABILITY.md).
	Metrics *obs.Registry
	// OnLeaseRTT, when non-nil, observes the wall-clock duration of every
	// work-request round trip (request_work and get_work), including queue
	// and lock wait inside the supervisor — the lease latency a volunteer
	// experiences. Invoked from the worker's own goroutine; keep it cheap.
	// cmd/platformbench uses it to report p50/p99 lease latency.
	OnLeaseRTT func(time.Duration)
	// Events, when non-nil, receives one JSON line per worker event
	// (assignment_received, result_submitted, reconnect). Nil discards
	// events.
	Events *obs.Sink
}

// WorkerStats reports what one worker did.
type WorkerStats struct {
	ParticipantID int
	Completed     int
	Cheated       int
	// Epoch is the highest shard-map epoch seen in any supervisor reply
	// (0 against an unsharded supervisor). A sharded worker whose map is
	// older than this re-resolves its routing (RunShardedWorker).
	Epoch uint64
}

// workerState is what survives across sessions of one RunWorker call: the
// identity to resume, the result awaiting an ack, and the running stats.
type workerState struct {
	stats WorkerStats
	id    int    // participant ID, -1 before first registration
	token uint64 // resume credential minted by the supervisor
	// pending is a submitted result whose ack never arrived; it is
	// resubmitted after the next resume so a crash between send and ack
	// cannot lose (or double-count) the work.
	pending    *Message
	progressed bool // session made progress; resets the failure counter
}

// terminalError marks a session error reconnecting cannot fix (e.g. the
// participant was blacklisted); RunWorker returns the wrapped error as-is.
type terminalError struct{ err error }

func (e *terminalError) Error() string { return e.err.Error() }
func (e *terminalError) Unwrap() error { return e.err }

// ErrBlacklisted marks a refusal no reconnect can fix: the supervisor
// convicted this participant and will never serve it again. RunWorker
// returns an error wrapping it; sharded workers use errors.Is to stop
// retrying a shard that has banned them (RunShardedWorker).
var ErrBlacklisted = errors.New("participant blacklisted by supervisor")

// maxNoWorkWait caps the supervisor-suggested no_work backoff: a corrupt or
// absurd Wait must not park the worker for minutes.
const maxNoWorkWait = 5 * time.Second

// noWorkDelay converts a no_work Wait (seconds) into a sleep, capped at
// maxNoWorkWait and jittered to [w/2, 3w/2) so workers poll out of phase
// instead of stampeding the supervisor in lockstep.
func noWorkDelay(wait float64, r *rng.Source) time.Duration {
	if wait <= 0 {
		return 0
	}
	d := time.Duration(wait * float64(time.Second))
	if d > maxNoWorkWait {
		d = maxNoWorkWait
	}
	return d/2 + time.Duration(r.Float64()*float64(d))
}

// reconnectDelay is the backoff before reconnect attempt number `attempt`
// (1-based): base doubled per consecutive failure, capped at max, jittered
// to [d/2, 3d/2).
func reconnectDelay(attempt int, base, max time.Duration, r *rng.Source) time.Duration {
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d/2 + time.Duration(r.Float64()*float64(d))
}

// workDelay sleeps for one assignment's simulated compute time: the Speed
// model when configured, else the fixed Throttle.
func workDelay(cfg WorkerConfig, r *rng.Source) {
	switch {
	case cfg.Speed != nil:
		if d := cfg.Speed.delay(r); d > 0 {
			time.Sleep(d)
		}
	case cfg.Throttle > 0:
		time.Sleep(cfg.Throttle)
	}
}

// workerSeq decorrelates the jitter streams of same-named workers started
// without an explicit Seed.
var workerSeq atomic.Uint64

func workerJitterSeed(cfg WorkerConfig) uint64 {
	if cfg.Seed != 0 {
		return cfg.Seed
	}
	h := fnv.New64a()
	io.WriteString(h, cfg.Name)
	return h.Sum64() ^ workerSeq.Add(1)
}

// RunWorker connects to the supervisor, registers, and processes
// assignments until the supervisor reports the computation done (or
// MaxAssignments is reached). It is the complete participant-side loop:
// download work, execute the local computation, return the result. With
// Reconnect set it also survives the connection dying under it: redial with
// backoff, resume the same identity, pick the in-flight assignment back up.
func RunWorker(cfg WorkerConfig) (WorkerStats, error) {
	if cfg.BatchSize < 0 {
		return WorkerStats{}, errors.New("platform: negative BatchSize")
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry() // instrument unconditionally; discard if unwanted
	}
	wm := newWorkerMetrics(reg)
	dial := cfg.Dial
	if dial == nil {
		dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	maxReconnects := cfg.MaxReconnects
	if maxReconnects <= 0 {
		maxReconnects = 8
	}
	base := cfg.BackoffBase
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	maxBackoff := cfg.BackoffMax
	if maxBackoff <= 0 {
		maxBackoff = 5 * time.Second
	}
	r := rng.New(workerJitterSeed(cfg))
	st := &workerState{id: -1}
	failures := 0
	for {
		err := runSession(cfg, wm, st, dial, r)
		if err == nil {
			return st.stats, nil
		}
		var term *terminalError
		if errors.As(err, &term) {
			return st.stats, term.err
		}
		if !cfg.Reconnect {
			return st.stats, err
		}
		if st.progressed {
			failures = 0
			st.progressed = false
		}
		failures++
		if failures > maxReconnects {
			return st.stats, fmt.Errorf("platform: giving up after %d consecutive failed sessions: %w", failures-1, err)
		}
		wm.reconnects.Inc()
		if cfg.Events != nil {
			cfg.Events.Emit(EvReconnect, map[string]any{
				"attempt": failures, "participant": st.id, "error": err.Error(),
			})
		}
		time.Sleep(reconnectDelay(failures, base, maxBackoff, r))
	}
}

// runSession runs one connection's worth of the worker loop: dial, register
// (or resume), resubmit any pending result, then request/execute/submit
// until done. A nil return ends RunWorker; errors are retried or not by the
// caller.
func runSession(cfg WorkerConfig, wm *workerMetrics, st *workerState, dial func(string) (net.Conn, error), r *rng.Source) error {
	conn, err := dial(cfg.Addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	codec := NewCodec(conn)

	// roundTrip sends one message, waits for the reply, and records the
	// protocol round-trip time (network + supervisor processing).
	roundTrip := func(m Message) (Message, error) {
		start := time.Now()
		if err := codec.Send(m); err != nil {
			return Message{}, err
		}
		reply, err := codec.Recv()
		if err != nil {
			return Message{}, err
		}
		wm.rtt.Observe(time.Since(start).Seconds())
		if reply.Epoch > st.stats.Epoch {
			st.stats.Epoch = reply.Epoch
		}
		return reply, nil
	}

	// Register — or, after a reconnect, resume the identity we already hold
	// so credit accrues to one participant and the supervisor can hand back
	// the assignment this worker still owes.
	reg := Message{Type: MsgRegister, Name: cfg.Name, Proto: cfg.Proto}
	if st.id >= 0 {
		reg.Resume, reg.ParticipantID, reg.Token = true, st.id, st.token
	}
	welcome, err := roundTrip(reg)
	if err != nil {
		return err
	}
	if welcome.Type == MsgError && welcome.Reason == ReasonResumeRefused && st.id >= 0 {
		// The supervisor does not know us — typically it restarted and
		// resume tokens are in-memory. Start over with a fresh identity;
		// the pending result names an assignment that no longer exists.
		// (Refusals arrive in JSON: the codec only switches on a registered
		// reply, so the fresh register below re-negotiates from scratch.)
		st.id, st.token, st.pending = -1, 0, nil
		welcome, err = roundTrip(Message{Type: MsgRegister, Name: cfg.Name, Proto: cfg.Proto})
		if err != nil {
			return err
		}
	}
	if welcome.Type != MsgRegistered {
		err := fmt.Errorf("platform: unexpected registration reply %q: %s", welcome.Type, welcome.Error)
		if welcome.Reason == ReasonBlacklisted {
			return &terminalError{fmt.Errorf("%w: %v", ErrBlacklisted, err)}
		}
		return err
	}
	if welcome.Proto == ProtoBinary {
		// The supervisor granted proto=bin and switched after sending this
		// reply; everything from here on is binary-framed.
		codec.EnableBinary()
	}
	st.id = welcome.ParticipantID
	st.token = welcome.Token
	st.stats.ParticipantID = st.id

	// Resubmit the result whose ack never arrived. An ack means the crash
	// hit between send and ack and the original submission was lost; an
	// error means it landed (the duplicate is "unassigned") or the copy was
	// reclaimed meanwhile — either way it is out of our hands now. A
	// pending result_batch comes back as a batch_ack: the OK items were
	// lost in the crash window and are credited now; rejected items landed
	// the first time (duplicates read "unassigned") or were reclaimed.
	if st.pending != nil {
		resub := *st.pending
		resub.ParticipantID = st.id
		ack, err := roundTrip(resub)
		if err != nil {
			return err
		}
		switch ack.Type {
		case MsgAck:
			st.pending = nil
			st.stats.Completed++
			wm.completed.Inc()
			st.progressed = true
		case MsgBatchAck:
			st.pending = nil
			for _, a := range ack.Acks {
				if a.OK {
					st.stats.Completed++
					wm.completed.Inc()
					st.progressed = true
				}
			}
		case MsgError:
			st.pending = nil
		default:
			return fmt.Errorf("platform: unexpected resubmission reply %q", ack.Type)
		}
	}

	if cfg.BatchSize > 1 {
		return batchLoop(cfg, wm, st, roundTrip, r)
	}

	for {
		if cfg.MaxAssignments > 0 && st.stats.Completed >= cfg.MaxAssignments {
			return nil
		}
		leaseStart := time.Now()
		m, err := roundTrip(Message{Type: MsgRequestWork, ParticipantID: st.id})
		if err != nil {
			return err
		}
		if cfg.OnLeaseRTT != nil {
			cfg.OnLeaseRTT(time.Since(leaseStart))
		}
		switch m.Type {
		case MsgDone:
			return nil
		case MsgNoWork:
			wm.noWork.Inc()
			time.Sleep(noWorkDelay(m.Wait, r))
			continue
		case MsgError:
			err := errors.New("platform: supervisor refused work: " + m.Error)
			if m.Reason == ReasonBlacklisted {
				return &terminalError{fmt.Errorf("%w: %v", ErrBlacklisted, err)}
			}
			return err
		case MsgWork:
			// fall through to execution below
		default:
			return fmt.Errorf("platform: unexpected reply %q", m.Type)
		}

		if cfg.Events != nil {
			cfg.Events.Emit(EvAssignmentReceived, map[string]any{
				"task": m.TaskID, "copy": m.Copy, "kind": m.Kind,
			})
		}
		st.progressed = true
		work, err := Work(m.Kind)
		if err != nil {
			// A corrupt frame can garble Kind; reconnecting gets the
			// assignment re-issued intact, so this is not terminal.
			return err
		}
		workDelay(cfg, r)
		value := work(m.Seed, m.Iters)
		cheated := false
		if cfg.Cheat != nil {
			if v := cfg.Cheat(m.TaskID, value); v != value {
				value = v
				cheated = true
				st.stats.Cheated++
				wm.cheats.Inc()
			}
		}
		result := Message{
			Type:          MsgResult,
			ParticipantID: st.id,
			TaskID:        m.TaskID,
			Copy:          m.Copy,
			Value:         value,
		}
		// Record the submission before sending: if the connection dies
		// anywhere between here and the ack, the next session resubmits.
		st.pending = &result
		ack, err := roundTrip(result)
		if err != nil {
			return err
		}
		if cfg.Events != nil {
			cfg.Events.Emit(EvResultSubmitted, map[string]any{
				"task": m.TaskID, "copy": m.Copy, "cheated": cheated,
			})
		}
		switch ack.Type {
		case MsgAck:
			st.pending = nil
			st.stats.Completed++
			wm.completed.Inc()
			st.progressed = true
		case MsgError:
			st.pending = nil
			if !cfg.Reconnect {
				return errors.New("platform: result rejected: " + ack.Error)
			}
			// Rejected (reclaimed under a deadline, or a supervisor restart
			// forgot the assignment); the copy is someone else's now.
		default:
			return fmt.Errorf("platform: unexpected reply %q", ack.Type)
		}
	}
}

// batchLoop is the batched-leasing analogue of runSession's
// single-assignment loop, used when BatchSize > 1: one get_work leases up
// to BatchSize assignments, every item is executed locally, and the
// values go back in a single result_batch — two round trips per lease
// instead of two per assignment. The pending-result crash window covers
// the whole batch: the result_batch Message is recorded before it is
// sent, and resubmitted after a resume exactly like a single pending
// result (runSession handles the batch_ack reply shape).
func batchLoop(cfg WorkerConfig, wm *workerMetrics, st *workerState, roundTrip func(Message) (Message, error), r *rng.Source) error {
	// Per-lease scratch, reused across iterations: every loop-continuing
	// path clears st.pending first, so the previous iteration's batch no
	// longer references the backing arrays when they are rewound. (A batch
	// recorded in st.pending at the time of a session-ending error is a
	// different story — but then this call has returned and its locals
	// belong to that pending Message alone.)
	var results []ResultItem
	var cheatedOn []bool
	for {
		want := cfg.BatchSize
		if cfg.MaxAssignments > 0 {
			remaining := cfg.MaxAssignments - st.stats.Completed
			if remaining <= 0 {
				return nil
			}
			if remaining < want {
				want = remaining
			}
		}
		leaseStart := time.Now()
		m, err := roundTrip(Message{Type: MsgGetWork, ParticipantID: st.id, Batch: want})
		if err != nil {
			return err
		}
		if cfg.OnLeaseRTT != nil {
			cfg.OnLeaseRTT(time.Since(leaseStart))
		}
		switch m.Type {
		case MsgDone:
			return nil
		case MsgNoWork:
			wm.noWork.Inc()
			time.Sleep(noWorkDelay(m.Wait, r))
			continue
		case MsgError:
			err := errors.New("platform: supervisor refused work: " + m.Error)
			if m.Reason == ReasonBlacklisted {
				return &terminalError{fmt.Errorf("%w: %v", ErrBlacklisted, err)}
			}
			return err
		case MsgWorkBatch:
			// fall through to execution below
		default:
			return fmt.Errorf("platform: unexpected reply %q", m.Type)
		}
		if len(m.Work) == 0 {
			return errors.New("platform: empty work_batch lease")
		}
		work, err := Work(m.Kind)
		if err != nil {
			// A corrupt frame can garble Kind; reconnecting gets the lease
			// re-issued intact, so this is not terminal.
			return err
		}
		results = results[:0]
		cheatedOn = cheatedOn[:0]
		for _, item := range m.Work {
			if cfg.Events != nil {
				cfg.Events.Emit(EvAssignmentReceived, map[string]any{
					"task": item.TaskID, "copy": item.Copy, "kind": m.Kind,
				})
			}
			st.progressed = true
			workDelay(cfg, r)
			value := work(item.Seed, m.Iters)
			cheated := false
			if cfg.Cheat != nil {
				if v := cfg.Cheat(item.TaskID, value); v != value {
					value = v
					cheated = true
					st.stats.Cheated++
					wm.cheats.Inc()
				}
			}
			results = append(results, ResultItem{TaskID: item.TaskID, Copy: item.Copy, Value: value})
			cheatedOn = append(cheatedOn, cheated)
		}
		batch := Message{Type: MsgResultBatch, ParticipantID: st.id, Results: results}
		// Record the submission before sending: if the connection dies
		// anywhere between here and the batch ack, the next session
		// resubmits the whole batch.
		st.pending = &batch
		ack, err := roundTrip(batch)
		if err != nil {
			return err
		}
		if cfg.Events != nil {
			for i, item := range results {
				cfg.Events.Emit(EvResultSubmitted, map[string]any{
					"task": item.TaskID, "copy": item.Copy, "cheated": cheatedOn[i],
				})
			}
		}
		switch ack.Type {
		case MsgBatchAck:
			st.pending = nil
			if len(ack.Acks) != len(results) {
				return fmt.Errorf("platform: batch_ack carries %d acks for %d results", len(ack.Acks), len(results))
			}
			for _, a := range ack.Acks {
				if a.OK {
					st.stats.Completed++
					wm.completed.Inc()
					st.progressed = true
					continue
				}
				if !cfg.Reconnect {
					return errors.New("platform: result rejected: " + a.Error)
				}
				// Rejected (reclaimed under a deadline, or a supervisor
				// restart forgot the assignment); the copy is someone
				// else's now.
			}
		case MsgError:
			st.pending = nil
			if !cfg.Reconnect {
				return errors.New("platform: result batch rejected: " + ack.Error)
			}
		default:
			return fmt.Errorf("platform: unexpected reply %q", ack.Type)
		}
	}
}

// Coalition is the client-side analogue of the adversary model: a group of
// workers that share one cheat policy and return identical wrong values.
// It decides per task, on first contact, whether that task will be cheated
// on (with probability CheatProbability), and every member follows the
// shared decision thereafter.
type Coalition struct {
	// CheatProbability is the chance a newly seen task is marked for
	// cheating. 1 reproduces the paper's always-cheat coalition.
	CheatProbability float64

	mu       sync.Mutex
	decision map[int]bool
	seed     uint64
}

// NewCoalition builds a coalition with the given per-task cheat
// probability, deterministic in seed.
func NewCoalition(cheatProbability float64, seed uint64) *Coalition {
	return &Coalition{
		CheatProbability: cheatProbability,
		decision:         make(map[int]bool),
		seed:             seed,
	}
}

// CheatFunc returns the shared cheat function to install in each member's
// WorkerConfig.
func (c *Coalition) CheatFunc() CheatFunc {
	return func(taskID int, honest uint64) uint64 {
		if c.cheatsOn(taskID) {
			return honest ^ 0xDEADBEEFCAFEBABE
		}
		return honest
	}
}

func (c *Coalition) cheatsOn(taskID int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d, ok := c.decision[taskID]; ok {
		return d
	}
	var d bool
	switch {
	case c.CheatProbability >= 1:
		d = true
	case c.CheatProbability <= 0:
		d = false
	default:
		// Deterministic per-task coin derived from (seed, taskID).
		z := c.seed ^ (uint64(taskID)+1)*0x9E3779B97F4A7C15
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		d = float64(z>>11)/(1<<53) < c.CheatProbability
	}
	c.decision[taskID] = d
	return d
}

// Decisions returns how many tasks were marked for cheating so far.
func (c *Coalition) Decisions() (cheat, honest int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, d := range c.decision {
		if d {
			cheat++
		} else {
			honest++
		}
	}
	return
}

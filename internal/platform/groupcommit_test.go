package platform

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"redundancy/internal/faults"
	"redundancy/internal/obs"
	"redundancy/internal/plan"
)

// cacheSimWriter models an OS page cache under a crash: Write lands in
// volatile memory, Sync copies everything written so far to the durable
// image, and Snapshot returns what a machine that lost power *right now*
// would find on disk. A test can install a gate so Sync blocks — freezing
// the committer exactly between its write and its fsync — and watch what
// the supervisor does (and must not do) in that window.
type cacheSimWriter struct {
	mu         sync.Mutex
	all        []byte        // everything written, in order
	durableLen int           // prefix of all that has been fsynced
	gate       chan struct{} // when non-nil, Sync blocks until closed
	entered    chan struct{} // receives one signal per Sync call that hits a gate
}

func (w *cacheSimWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.all = append(w.all, p...)
	return len(p), nil
}

func (w *cacheSimWriter) Sync() error {
	w.mu.Lock()
	gate, entered := w.gate, w.entered
	w.mu.Unlock()
	if gate != nil {
		if entered != nil {
			entered <- struct{}{}
		}
		<-gate
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.durableLen = len(w.all)
	return nil
}

// block makes the next Sync calls stall until unblock; the returned
// channel receives one value each time a Sync reaches the gate.
func (w *cacheSimWriter) block() chan struct{} {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.gate = make(chan struct{})
	w.entered = make(chan struct{}, 16)
	return w.entered
}

func (w *cacheSimWriter) unblock() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.gate != nil {
		close(w.gate)
		w.gate = nil
		w.entered = nil
	}
}

// Snapshot is the post-crash disk image: only fsynced bytes survive.
func (w *cacheSimWriter) Snapshot() []byte {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]byte(nil), w.all[:w.durableLen]...)
}

// TestGroupCommitCrashBetweenWriteAndFsync pins down the group committer's
// durability contract at the most dangerous instant: the commit window's
// bytes are written but the fsync has not returned. Two things must hold
// there. First, no ack may have been released — a client that saw an ack
// for a result the crash then ate would violate ack-after-fsync. Second,
// a crash in that window loses only unacked results: the durable image
// restores cleanly, and once the fsync completes and the ack is released,
// the durable image contains every acked record with no torn tail.
func TestGroupCommitCrashBetweenWriteAndFsync(t *testing.T) {
	p := mustPlan(t)
	w := &cacheSimWriter{}
	sup, err := NewSupervisor(SupervisorConfig{
		Plan: p, WorkKind: "hashchain", Iters: 5, Seed: 3,
		Journal: w, JournalSync: true, GroupCommit: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := sup.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer w.unblock() // never leave the committer wedged at teardown
	t.Cleanup(func() { sup.Close() })

	_, c := dialCodec(t, addr)
	welcome := roundTrip(t, c, Message{Type: MsgRegister, Name: "crashprobe"})
	lease := roundTrip(t, c, Message{Type: MsgGetWork, ParticipantID: welcome.ParticipantID, Batch: 4})
	if lease.Type != MsgWorkBatch || len(lease.Work) == 0 {
		t.Fatalf("lease reply %+v", lease)
	}
	fn, err := Work(lease.Kind)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]ResultItem, 0, len(lease.Work))
	for _, item := range lease.Work {
		results = append(results, ResultItem{TaskID: item.TaskID, Copy: item.Copy, Value: fn(item.Seed, lease.Iters)})
	}

	// Freeze the disk, submit the batch, and wait until the committer is
	// provably inside the write→fsync window.
	entered := w.block()
	if err := c.Send(Message{Type: MsgResultBatch, ParticipantID: welcome.ParticipantID, Results: results}); err != nil {
		t.Fatal(err)
	}
	ackCh := make(chan Message, 1)
	go func() {
		if reply, err := c.Recv(); err == nil {
			ackCh <- reply
		}
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("committer never reached Sync for the submitted batch")
	}

	// In the window: the records are written (volatile) but not durable,
	// and the client must still be waiting — an ack here would be a lie.
	select {
	case ack := <-ackCh:
		t.Fatalf("ack %+v released before fsync completed", ack)
	case <-time.After(300 * time.Millisecond):
	}

	// Crash now. The durable image predates the stuck window, so it holds
	// none of the submitted results — which is exactly permitted, because
	// none were acked. It must still restore cleanly, torn-tail free.
	crashed := w.Snapshot()
	sup2, err := NewSupervisor(SupervisorConfig{
		Plan: p, WorkKind: "hashchain", Iters: 5, Seed: 3,
		Restore: bytes.NewReader(crashed),
	})
	if err != nil {
		t.Fatalf("restore from mid-window crash image: %v", err)
	}
	if got := sup2.Summary().Restored; got != 0 {
		t.Errorf("mid-window crash image restored %d results; the stuck window's records leaked into durability before fsync", got)
	}
	if sup2.RestoredJournalBytes() != int64(len(crashed)) {
		t.Errorf("mid-window image has a torn tail: %d of %d bytes valid",
			sup2.RestoredJournalBytes(), len(crashed))
	}

	// Let the fsync finish; the ack must now arrive with every result
	// accepted, and the post-ack durable image must restore all of them.
	w.unblock()
	var ack Message
	select {
	case ack = <-ackCh:
	case <-time.After(5 * time.Second):
		t.Fatal("no ack after fsync completed")
	}
	if ack.Type != MsgBatchAck || len(ack.Acks) != len(results) {
		t.Fatalf("batch ack %+v", ack)
	}
	for _, a := range ack.Acks {
		if !a.OK {
			t.Errorf("task %d copy %d refused: %s", a.TaskID, a.Copy, a.Reason)
		}
	}
	acked := w.Snapshot()
	sup3, err := NewSupervisor(SupervisorConfig{
		Plan: p, WorkKind: "hashchain", Iters: 5, Seed: 3,
		Restore: bytes.NewReader(acked),
	})
	if err != nil {
		t.Fatalf("restore from post-ack image: %v", err)
	}
	if got := sup3.Summary().Restored; got != len(results) {
		t.Errorf("post-ack crash image restored %d results, want all %d acked (acked result lost)", got, len(results))
	}
	if sup3.RestoredJournalBytes() != int64(len(acked)) {
		t.Errorf("post-ack image has a torn tail: %d of %d bytes valid",
			sup3.RestoredJournalBytes(), len(acked))
	}
}

// TestGroupCommitManyWorkerSoak is the scale companion to TestChaosSoak:
// 32 concurrent batched workers hammer one supervisor in GroupCommit +
// JournalSync mode through a fault injector, and the run must end with
// exact accounting — every assignment credited exactly once — while the
// journal the committer wrote coalesced (group commits observed, windows
// averaging more than one record) and replays byte-for-byte: the full
// file is a valid prefix, restores every accepted result, and rebuilds
// the identical certified value for every task.
func TestGroupCommitManyWorkerSoak(t *testing.T) {
	p, err := plan.Balanced(96, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faults.New(faults.Config{
		Seed:     11,
		DialDrop: 0.02, ReadDrop: 0.01, WriteDrop: 0.01,
		Latency: 100 * time.Microsecond, Jitter: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	jpath := filepath.Join(t.TempDir(), "journal.jsonl")
	jf, err := os.OpenFile(jpath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	reg := obs.NewRegistry()
	sup, err := NewSupervisor(SupervisorConfig{
		Plan: p, WorkKind: "hashchain", Iters: 10, Seed: 5,
		Journal: jf, JournalSync: true, GroupCommit: true,
		IOTimeout: 2 * time.Second, Deadline: 2 * time.Second,
		WrapListener: inj.Listener, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := sup.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	const workers = 32
	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for !stop.Load() {
				RunWorker(WorkerConfig{
					Addr: addr, Name: fmt.Sprintf("soak-%d", i),
					Reconnect: true, MaxReconnects: 25, BatchSize: 8,
					BackoffBase: 2 * time.Millisecond, BackoffMax: 50 * time.Millisecond,
					Seed: uint64(i + 1),
					Dial: func(a string) (net.Conn, error) { return inj.Dial("tcp", a) },
				})
				time.Sleep(2 * time.Millisecond)
			}
		}(i)
	}

	waitDone := make(chan struct{})
	go func() { sup.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(120 * time.Second):
		stop.Store(true)
		wg.Wait()
		t.Fatalf("soak never certified (journal records: %v)",
			func() float64 { v, _ := reg.Snapshot().Value("redundancy_journal_records_total"); return v }())
	}
	stop.Store(true)
	wg.Wait()
	sup.Close()

	sum := sup.Summary()
	tasks := p.N + p.Ringers
	if sum.Verify.Tasks != tasks || sum.Verify.Accepted != tasks {
		t.Errorf("certified %d/%d tasks, want all %d", sum.Verify.Accepted, sum.Verify.Tasks, tasks)
	}
	// Exactly-once accounting across 32 concurrent clients: a lost result
	// leaves the credit total short, a double grant pushes it over.
	total := 0
	for _, e := range sum.Credits {
		total += e.Credit
	}
	if total != p.TotalAssignments() {
		t.Errorf("total credit %d, want %d (lost or double-granted work)", total, p.TotalAssignments())
	}

	snap := reg.Snapshot()
	commits, _ := snap.Value("redundancy_journal_group_commits_total")
	if commits == 0 {
		t.Error("journal_group_commits_total = 0: traffic did not take the group-commit path")
	}
	if recs, _ := snap.Value("redundancy_journal_records_total"); int(recs) != p.TotalAssignments() {
		t.Errorf("journaled %v records, want %d", recs, p.TotalAssignments())
	}
	if obsN, ok := snap.Value("redundancy_journal_commit_batch_size"); !ok || obsN != commits {
		t.Errorf("commit batch-size observations %v, want one per group commit (%v)", obsN, commits)
	}
	if syncs, _ := snap.Value("redundancy_journal_syncs_total"); syncs > commits+1 {
		t.Errorf("%v fsyncs for %v group commits: windows are not coalescing syncs", syncs, commits)
	}

	// Byte-identical replay: the whole file — written concurrently by the
	// committer under load — must be one valid record stream that rebuilds
	// the run. No torn tail, no lost record, identical certified values.
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	sup2, err := NewSupervisor(SupervisorConfig{
		Plan: p, WorkKind: "hashchain", Iters: 10, Seed: 5,
		Restore: bytes.NewReader(data),
	})
	if err != nil {
		t.Fatalf("replaying the group-committed journal: %v", err)
	}
	if sup2.RestoredJournalBytes() != int64(len(data)) {
		t.Errorf("replay consumed %d of %d journal bytes: group commit tore a record",
			sup2.RestoredJournalBytes(), len(data))
	}
	if got := sup2.Summary().Restored; got != p.TotalAssignments() {
		t.Errorf("replay restored %d results, want %d", got, p.TotalAssignments())
	}
	for task := 0; task < p.N+p.Ringers; task++ {
		v1, ok1 := sup.CertifiedValue(task)
		v2, ok2 := sup2.CertifiedValue(task)
		if ok1 != ok2 || v1 != v2 {
			t.Errorf("task %d: certified %v/%v live, %v/%v from replay", task, v1, ok1, v2, ok2)
		}
	}
	t.Logf("soak: %d workers, %d faults injected, %v group commits for %d records (%.1f records/window)",
		workers, inj.Injected(), commits, p.TotalAssignments(), float64(p.TotalAssignments())/commits)
}

package platform

// Journal snapshots and compaction. A snapshot is a point-in-time capture
// of everything replaying the journal prefix would reconstruct — applied
// revisions, issued verdicts, partial results — written as one journal
// line. Replay installs a snapshot only when it heads the journal (the
// compacted case); mid-stream snapshots are redundant with the records
// before them and are skipped. With SupervisorConfig.Compact the snapshot
// atomically *replaces* the journal instead of extending it, so restore
// cost and journal size stay O(live state) instead of O(run history).
// DESIGN.md §12 has the correctness argument; PROTOCOL.md documents the
// record format.

import (
	"bytes"
	"fmt"
	"time"

	"redundancy/internal/sched"
	"redundancy/internal/verify"
)

// journalReplacer is the compaction facet of a journal writer: ReplaceWith
// atomically substitutes the journal's entire contents, surviving a crash
// at any point with either the old or the new contents intact (*JournalFile
// implements it via write-temp, fsync, rename).
type journalReplacer interface {
	ReplaceWith(contents []byte) error
}

// captureSnapshotLocked captures the supervisor's certification state.
// Callers hold lease.mu and audit.mu (or are single-threaded), so the
// capture is a consistent cut: no result can be adjudicated and no
// revision applied while it runs.
func (s *Supervisor) captureSnapshotLocked() *snapshotRecord {
	rec := &snapshotRecord{MaxParticipant: -1}
	if n := len(s.audit.revisions); n > 0 {
		rec.Revisions = make([]revisionRecord, n)
		copy(rec.Revisions, s.audit.revisions)
	}
	verdicts := s.audit.collector.Verdicts()
	if len(verdicts) > 0 {
		rec.Verdicts = make([]snapshotVerdict, 0, len(verdicts))
	}
	for _, v := range verdicts {
		rec.Verdicts = append(rec.Verdicts, snapshotVerdict{
			TaskID:       v.TaskID,
			Ringer:       v.Ringer,
			Copies:       v.Copies,
			Accepted:     v.Accepted,
			Value:        v.Value,
			Mismatch:     v.MismatchDetected,
			Suspects:     v.Suspects,
			Contributors: v.Contributors,
		})
		rec.Results += v.Copies
		for _, p := range v.Contributors {
			if p > rec.MaxParticipant {
				rec.MaxParticipant = p
			}
		}
	}
	pending := s.audit.collector.PendingResults()
	if len(pending) > 0 {
		rec.Pending = make([]journalRecord, 0, len(pending))
	}
	for _, r := range pending {
		rec.Pending = append(rec.Pending, journalRecord{
			TaskID:      r.Assignment.TaskID,
			Copy:        r.Assignment.Copy,
			Ringer:      r.Assignment.Ringer,
			Participant: r.Participant,
			Value:       r.Value,
		})
		rec.Results++
		if r.Participant > rec.MaxParticipant {
			rec.MaxParticipant = r.Participant
		}
	}
	return rec
}

// replaySnapshot installs a captured state wholesale: revisions first (in
// sequence order, onto a fresh queue whose promoted tasks were never
// issued — exactly the precondition the live apply checked), then every
// verdict through RestoreVerdict (firing estimator and credit updates in
// the original adjudication order), then one bulk pass completing the
// adjudicated copies in the queue, then the partial results through the
// ordinary replay path. The resulting state is byte-identical to replaying
// the uncompacted prefix record by record: removals preserve the ready
// pool's order and commute, promote/mint appends land after every original
// element in both histories, and the verdict order — the only thing the
// estimator's and ledger's floating-point accumulation depends on — is
// preserved verbatim.
func (r supReplayer) replaySnapshot(rec snapshotRecord) error {
	s := r.s
	for _, rev := range rec.Revisions {
		if err := r.replayRevision(rev); err != nil {
			return fmt.Errorf("revision %d: %w", rev.Seq, err)
		}
	}
	covered := make(map[[2]int]bool, 2*len(rec.Verdicts))
	total := 0
	for _, v := range rec.Verdicts {
		if err := s.audit.collector.RestoreVerdict(verify.Verdict{
			TaskID:           v.TaskID,
			Ringer:           v.Ringer,
			Copies:           v.Copies,
			Accepted:         v.Accepted,
			Value:            v.Value,
			MismatchDetected: v.Mismatch,
			Suspects:         v.Suspects,
			Contributors:     v.Contributors,
		}); err != nil {
			return err
		}
		for c := 0; c < v.Copies; c++ {
			covered[[2]int{v.TaskID, c}] = true
		}
		total += v.Copies
	}
	if rec.Results != total+len(rec.Pending) {
		return fmt.Errorf("snapshot claims %d results but carries %d", rec.Results, total+len(rec.Pending))
	}
	n, err := s.lease.queue.MarkCompletedBulk(func(a sched.Assignment) bool {
		return covered[[2]int{a.TaskID, a.Copy}]
	})
	if err != nil {
		return err
	}
	if n != total {
		return fmt.Errorf("snapshot verdicts cover %d copies but only %d were queued", total, n)
	}
	for _, p := range rec.Pending {
		a := sched.Assignment{TaskID: p.TaskID, Copy: p.Copy, Ringer: p.Ringer}
		if err := r.replayResult(a, p.Participant, p.Value); err != nil {
			// A torn-tolerable miss is interior corruption here: the
			// snapshot is a single record, so no part of it can be torn.
			return fmt.Errorf("pending result task=%d copy=%d: %w", p.TaskID, p.Copy, err)
		}
	}
	return nil
}

// noteJournaled advances the snapshot trigger by n freshly appended
// records and takes a snapshot when the configured interval is crossed.
// Callers must hold no supervisor locks: the trigger sites are the legacy
// inline commit path (handlers journal after releasing state locks) and
// the group committer's window loop. appendRevision deliberately only
// counts (adaptTick holds lease.mu, where taking a snapshot would
// deadlock); the revision is swept up by the next result-driven trigger.
func (s *Supervisor) noteJournaled(n int) {
	if s.cfg.SnapshotInterval <= 0 || n <= 0 {
		return
	}
	if s.jnlSince.Add(int64(n)) < int64(s.cfg.SnapshotInterval) {
		return
	}
	if !s.snapBusy.CompareAndSwap(false, true) {
		return // a snapshot is already in progress; its count reset covers us
	}
	s.jnlSince.Store(0)
	s.takeSnapshot()
	s.snapBusy.Store(false)
}

// takeSnapshot captures the current state and makes it durable — appended
// as one more journal line, or, in Compact mode, atomically replacing the
// whole journal. The journal write happens while lease.mu and audit.mu
// are still held. That is deliberate, not an oversight: any result
// adjudicated before the capture is covered by the snapshot (so losing
// its record to compaction, or reading it after the snapshot line, is
// harmless — replay's covered-set skips it), while a result adjudicated
// after the capture is blocked on audit.mu until the snapshot bytes are
// down, so its record can only land after them. Release the locks first
// and that second class could slip a record in front of the snapshot —
// ReplaceWith would silently discard an uncovered, acked result.
func (s *Supervisor) takeSnapshot() {
	s.lease.mu.Lock()
	defer s.lease.mu.Unlock()
	s.audit.mu.Lock()
	defer s.audit.mu.Unlock()
	rec := s.captureSnapshotLocked()
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := appendJournalSnapshot(buf, rec); err != nil {
		bufPool.Put(buf)
		s.logf("snapshot: encode failed: %v", err)
		return
	}
	var compacted int64
	s.jnlMu.Lock()
	var err error
	if s.cfg.Compact {
		// ReplaceWith fsyncs internally; the old records are gone only
		// once the rename is durable.
		if err = s.cfg.Journal.(journalReplacer).ReplaceWith(buf.Bytes()); err == nil {
			compacted = s.jnlLines
			s.jnlLines = 1
		}
	} else {
		if _, err = s.cfg.Journal.Write(buf.Bytes()); err == nil {
			s.jnlLines++
		}
	}
	s.jnlMu.Unlock()
	bufPool.Put(buf)
	if err != nil {
		s.logf("snapshot: journal write failed: %v", err)
		return
	}
	if !s.cfg.Compact && s.cfg.JournalSync {
		s.syncJournal()
	}
	s.metrics.journalSnapshots.Inc()
	if compacted > 0 {
		s.metrics.journalCompactedRecords.Add(uint64(compacted))
	}
	s.logf("snapshot: %d verdict(s), %d pending result(s), %d revision(s)%s",
		len(rec.Verdicts), len(rec.Pending), len(rec.Revisions),
		compactNote(compacted))
}

func compactNote(compacted int64) string {
	if compacted == 0 {
		return ""
	}
	return fmt.Sprintf("; compacted %d journal record(s)", compacted)
}

// Snapshot returns the canonical encoding of the supervisor's current
// certification state — the exact bytes a journal snapshot would carry.
// Two supervisors are in the same certification state iff their Snapshot
// bytes are equal, which is what the restore-equivalence tests assert.
func (s *Supervisor) Snapshot() ([]byte, error) {
	s.lease.mu.Lock()
	defer s.lease.mu.Unlock()
	s.audit.mu.Lock()
	defer s.audit.mu.Unlock()
	buf := bufPool.Get().(*bytes.Buffer)
	defer bufPool.Put(buf)
	buf.Reset()
	if err := appendJournalSnapshot(buf, s.captureSnapshotLocked()); err != nil {
		return nil, err
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out, nil
}

// restoreTimer wraps the restore-duration gauge so NewSupervisor reads as
// straight-line code.
func (s *Supervisor) observeRestore(start time.Time) {
	s.metrics.journalRestoreSeconds.Set(time.Since(start).Seconds())
}

package platform

import (
	"bytes"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"redundancy/internal/obs"
	"redundancy/internal/plan"
	"redundancy/internal/sched"
)

// syncBuffer lets the test read the event stream after the run without
// racing the deadline sweeper's last write.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestMetricsAndEventsEndToEnd drives a deterministic one-task scenario and
// checks every counter it must move: a colluding participant submits a wrong
// value for copy 0, a second participant takes copy 1 and stalls past the
// deadline (deadline reclaim), and an honest worker finishes the re-issued
// copy, exposing the mismatch.
func TestMetricsAndEventsEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	events := &syncBuffer{}
	sink := obs.NewSink(events)

	// One real task, two copies, no ringers.
	p := &plan.Plan{
		Epsilon:            0.5,
		N:                  1,
		Counts:             []int{0, 1},
		TailMultiplicity:   2,
		RingerMultiplicity: 2,
	}
	sup, err := NewSupervisor(SupervisorConfig{
		Plan:     p,
		Policy:   sched.Free,
		WorkKind: "hashchain",
		Iters:    25,
		Deadline: 250 * time.Millisecond,
		Metrics:  reg,
		Events:   sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := sup.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sup.Close() })

	// dial registers a hand-driven participant and requests one assignment.
	dial := func(name string) (*Codec, net.Conn, int, Message) {
		t.Helper()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		c := NewCodec(conn)
		if err := c.Send(Message{Type: MsgRegister, Name: name}); err != nil {
			t.Fatal(err)
		}
		welcome, err := c.Recv()
		if err != nil || welcome.Type != MsgRegistered {
			t.Fatalf("%s register: %+v %v", name, welcome, err)
		}
		if err := c.Send(Message{Type: MsgRequestWork, ParticipantID: welcome.ParticipantID}); err != nil {
			t.Fatal(err)
		}
		work, err := c.Recv()
		if err != nil || work.Type != MsgWork {
			t.Fatalf("%s work: %+v %v", name, work, err)
		}
		return c, conn, welcome.ParticipantID, work
	}

	// Colluder: takes copy 0 and returns a deliberately wrong value.
	cc, cconn, cid, cwork := dial("colluder")
	defer cconn.Close()
	honest := HashChain(cwork.Seed, cwork.Iters)
	if err := cc.Send(Message{
		Type: MsgResult, ParticipantID: cid,
		TaskID: cwork.TaskID, Copy: cwork.Copy, Value: honest ^ 0xDEADBEEF,
	}); err != nil {
		t.Fatal(err)
	}
	if ack, err := cc.Recv(); err != nil || ack.Type != MsgAck {
		t.Fatalf("wrong result not accepted into verification: %+v %v", ack, err)
	}

	// Staller: takes copy 1 and goes silent, holding the connection open so
	// the only way the copy comes back is the deadline sweeper.
	_, sconn, _, swork := dial("staller")
	defer sconn.Close()
	if swork.TaskID != cwork.TaskID {
		t.Fatalf("staller got task %d, want %d", swork.TaskID, cwork.TaskID)
	}

	// Wait for the deadline reclaim before letting the honest worker in, so
	// the assignment flow is deterministic.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if v, _ := reg.Snapshot().Value("redundancy_assignments_reclaimed_total", "deadline"); v > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("deadline sweeper never reclaimed the stalled assignment")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Honest worker finishes the re-issued copy with its own metrics registry.
	wreg := obs.NewRegistry()
	if _, err := RunWorker(WorkerConfig{Addr: addr, Name: "honest", Metrics: wreg}); err != nil {
		t.Fatal(err)
	}
	sup.Wait()
	// Close the hand-driven connections before Close: it joins the
	// connection handlers, which block on reads until these hang up.
	cconn.Close()
	sconn.Close()
	sup.Close()

	snap := sup.Metrics().Snapshot()
	for _, tc := range []struct {
		name   string
		labels []string
		want   float64
	}{
		{"redundancy_workers_registered_total", nil, 3},
		{"redundancy_assignments_issued_total", nil, 3},
		{"redundancy_assignments_reclaimed_total", []string{"deadline"}, 1},
		{"redundancy_results_accepted_total", nil, 2},
		{"redundancy_mismatch_detected_total", nil, 1},
		{"redundancy_tasks_certified_total", nil, 0},
		{"redundancy_ringer_failures_total", nil, 0},
	} {
		got, ok := snap.Value(tc.name, tc.labels...)
		if tc.want != 0 && !ok {
			t.Errorf("%s%v: series missing", tc.name, tc.labels)
			continue
		}
		if got != tc.want {
			t.Errorf("%s%v = %v, want %v", tc.name, tc.labels, got, tc.want)
		}
	}
	// The supervisor observed per-worker turnaround for the accepting workers.
	if got, ok := snap.Value("redundancy_assignment_turnaround_seconds", "honest"); !ok || got != 1 {
		t.Errorf("turnaround{honest} count = %v (ok=%v), want 1", got, ok)
	}

	// The honest worker's RTT histogram saw its exchanges.
	if got, ok := wreg.Snapshot().Value("redundancy_worker_rtt_seconds"); !ok || got == 0 {
		t.Error("worker RTT histogram recorded no observations")
	}

	// The event stream names every lifecycle step of the scenario.
	stream := events.String()
	for _, ev := range []string{
		`"event":"worker_joined"`,
		`"event":"assignment_issued"`,
		`"event":"result_accepted"`,
		`"event":"assignment_reclaimed"`,
		`"reason":"deadline"`,
		`"event":"mismatch_detected"`,
	} {
		if !strings.Contains(stream, ev) {
			t.Errorf("event stream missing %s:\n%s", ev, stream)
		}
	}

	// The rendered exposition includes the headline series by name.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		"redundancy_assignments_issued_total 3",
		"redundancy_results_accepted_total 2",
		"redundancy_mismatch_detected_total 1",
	} {
		if !strings.Contains(buf.String(), series) {
			t.Errorf("exposition missing %q", series)
		}
	}
}

// TestSupervisorPrivateRegistry checks that counters are collected even when
// the caller supplies no registry.
func TestSupervisorPrivateRegistry(t *testing.T) {
	p := &plan.Plan{Epsilon: 0.5, N: 1, Counts: []int{1}, TailMultiplicity: 2, RingerMultiplicity: 2}
	sup, addr := startSupervisor(t, p, sched.Free)
	if _, err := RunWorker(WorkerConfig{Addr: addr, Name: "solo"}); err != nil {
		t.Fatal(err)
	}
	sup.Wait()
	snap := sup.Metrics().Snapshot()
	if got, ok := snap.Value("redundancy_results_accepted_total"); !ok || got != 1 {
		t.Errorf("private registry accepted = %v (ok=%v), want 1", got, ok)
	}
	if got, ok := snap.Value("redundancy_tasks_certified_total"); !ok || got != 1 {
		t.Errorf("private registry certified = %v (ok=%v), want 1", got, ok)
	}
}

// TestGuardedLogfSurvivesFaultyHook locks in satellite 4: a panicking or
// racy Logf hook must never take the supervisor down.
func TestGuardedLogfSurvivesFaultyHook(t *testing.T) {
	p := &plan.Plan{Epsilon: 0.5, N: 2, Counts: []int{2}, TailMultiplicity: 2, RingerMultiplicity: 2}
	calls := 0
	sup, err := NewSupervisor(SupervisorConfig{
		Plan:     p,
		WorkKind: "hashchain",
		Iters:    25,
		Logf: func(format string, args ...any) {
			calls++ // unsynchronized on purpose: logf must serialize for us
			panic("faulty log hook")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := sup.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sup.Close() })
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := RunWorker(WorkerConfig{Addr: addr, Name: "w"}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	sup.Wait()
	sup.Close() // joins the connection handlers so reading calls is race-free
	if calls == 0 {
		t.Error("faulty hook was never invoked")
	}
	if sum := sup.Summary(); sum.Verify.Accepted != 2 {
		t.Errorf("certified %d tasks despite panicking logger, want 2", sum.Verify.Accepted)
	}
}

// Package platform is a runnable miniature volunteer-computing platform in
// the mold the paper assumes: a supervisor process distributes assignments
// produced by a redundancy plan to worker processes over TCP, collects
// results, certifies them by redundancy, checks ringers against
// precomputed values, and blacklists implicated participants.
//
// The wire protocol is newline-delimited JSON — one object per line in each
// direction — chosen so a worker can be driven by hand with netcat while
// debugging. The unit of work ("assignment": code + data, §2) is a named
// work function plus a payload; workers execute the computation for real.
package platform

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Message is the single envelope type exchanged in both directions; Type
// selects which fields are meaningful. The zero Message is not a valid
// frame (its Type is empty); unset fields marshal away under omitempty.
type Message struct {
	// Type is one of the Msg* constants and selects the meaningful fields.
	Type string `json:"type"`

	// Name is the participant's self-reported display name (register);
	// it need not be unique and an empty name is accepted.
	Name string `json:"name,omitempty"`
	// ParticipantID is the supervisor-assigned identity, 0-based and
	// unique per run (registered, request_work, result). 0 is a valid ID,
	// not an absent one.
	ParticipantID int `json:"participant_id,omitempty"`
	// Resume marks a register that re-attaches an existing identity after
	// a reconnect instead of minting a new participant; ParticipantID and
	// Token carry the identity being resumed (register).
	Resume bool `json:"resume,omitempty"`
	// Token authenticates identity resumption: minted by the supervisor
	// at registration, echoed in registered, required on a Resume
	// register. Without it any client could hijack a participant — and
	// its credit — by guessing a small ID (registered, register).
	Token uint64 `json:"token,omitempty"`

	// TaskID numbers the task, 0-based; ringer tasks continue after the
	// last real task (work, result).
	TaskID int `json:"task_id,omitempty"`
	// Copy indexes this assignment among the task's copies,
	// 0..multiplicity-1 (work, result).
	Copy int `json:"copy,omitempty"`
	// Kind names the registered work function to execute (work).
	Kind string `json:"kind,omitempty"`
	// Seed is the work function's input, derived per task by TaskSeed
	// (work).
	Seed uint64 `json:"seed,omitempty"`
	// Iters is the per-assignment work amount, in work-function
	// iterations (work).
	Iters int `json:"iters,omitempty"`
	// Ringer is never sent to workers (a labeled ringer would be
	// pointless); it exists for tests that splice Messages directly.
	Ringer bool `json:"ringer,omitempty"`
	// Value is the computed result, a work-function-defined 64-bit word —
	// possibly float64 bits, see SupervisorConfig.ResultDigits (result).
	Value uint64 `json:"value,omitempty"`
	// Wait is how long to back off before the next request_work, in
	// seconds (no_work). 0 means retry immediately.
	Wait float64 `json:"wait_seconds,omitempty"`

	// Error carries the human-readable refusal reason (error).
	Error string `json:"error,omitempty"`
	// Reason machine-codes an error reply — one of the Reason* constants —
	// so clients can tell fatal refusals (blacklisted) from races that a
	// reconnect resolves (error).
	Reason string `json:"reason,omitempty"`

	// Batch is the number of assignments requested in one lease; the
	// supervisor caps it at SupervisorConfig.MaxBatch (get_work).
	Batch int `json:"batch,omitempty"`
	// Work carries the assignments of a batch lease; the envelope's Kind
	// and Iters apply to every item (work_batch).
	Work []WorkItem `json:"work,omitempty"`
	// Results carries the computed values of a lease (result_batch).
	Results []ResultItem `json:"results,omitempty"`
	// Acks carries per-result outcomes, in submission order (batch_ack).
	Acks []ResultAck `json:"acks,omitempty"`
}

// WorkItem is one assignment inside a work_batch lease. Kind and Iters are
// identical for every assignment of a run, so they ride once on the
// envelope instead of once per item.
type WorkItem struct {
	TaskID int    `json:"task_id"`
	Copy   int    `json:"copy"`
	Seed   uint64 `json:"seed"`
}

// ResultItem is one computed result inside a result_batch.
type ResultItem struct {
	TaskID int    `json:"task_id"`
	Copy   int    `json:"copy"`
	Value  uint64 `json:"value"`
}

// ResultAck is the per-result outcome inside a batch_ack. OK plays the
// role of a single-result MsgAck; a false OK carries the Reason and Error
// a single-result MsgError reply would.
type ResultAck struct {
	TaskID int    `json:"task_id"`
	Copy   int    `json:"copy"`
	OK     bool   `json:"ok"`
	Reason string `json:"reason,omitempty"`
	Error  string `json:"error,omitempty"`
}

// Machine-readable refusal reasons carried in MsgError replies. The
// result-rejection reasons double as the label values of the
// redundancy_results_rejected_total metric.
const (
	// ReasonBlacklisted refuses a convicted participant; reconnecting
	// cannot fix it.
	ReasonBlacklisted = "blacklisted"
	// ReasonUnregistered refuses a request naming a participant not
	// registered (or resumed) on this connection.
	ReasonUnregistered = "unregistered"
	// ReasonResumeRefused refuses a resume with an unknown identity or a
	// wrong token (e.g. the supervisor restarted); register afresh.
	ReasonResumeRefused = "resume_refused"
	// ReasonUnassigned rejects a result for work the supervisor has no
	// outstanding record of (already accepted, or reclaimed).
	ReasonUnassigned = "unassigned"
	// ReasonWrongParticipant rejects a result for a copy held by someone
	// else (the copy was reclaimed and re-issued).
	ReasonWrongParticipant = "wrong_participant"
	// ReasonVerification rejects a result the verifier refused.
	ReasonVerification = "verification"
	// ReasonUnknownType refuses a frame whose type is not part of the
	// protocol (possibly corruption in transit).
	ReasonUnknownType = "unknown_type"
)

// Message types, worker → supervisor.
const (
	// MsgRegister requests an identity; fields: Name — or, with Resume
	// set, re-attaches an existing one; fields: Name, Resume,
	// ParticipantID, Token.
	MsgRegister = "register"
	// MsgRequestWork asks for one assignment; fields: ParticipantID.
	MsgRequestWork = "request_work"
	// MsgResult returns a computed value; fields: ParticipantID, TaskID,
	// Copy, Value.
	MsgResult = "result"
	// MsgGetWork asks for a lease of up to Batch assignments; fields:
	// ParticipantID, Batch. The supervisor caps the grant at its MaxBatch.
	MsgGetWork = "get_work"
	// MsgResultBatch returns the computed values of a lease in one frame;
	// fields: ParticipantID, Results. Credited and journaled atomically.
	MsgResultBatch = "result_batch"
)

// Message types, supervisor → worker.
const (
	// MsgRegistered grants (or re-attaches) an identity; fields:
	// ParticipantID, Token.
	MsgRegistered = "registered"
	// MsgWork carries one assignment; fields: TaskID, Copy, Kind, Seed,
	// Iters.
	MsgWork = "work"
	// MsgNoWork reports that the release policy is holding copies back;
	// retry after Wait seconds.
	MsgNoWork = "no_work"
	// MsgDone reports the computation finished; the worker disconnects.
	MsgDone = "done"
	// MsgAck confirms a result was accepted into verification.
	MsgAck = "ack"
	// MsgError refuses the request; fields: Error.
	MsgError = "error"
	// MsgWorkBatch carries a lease of assignments; fields: Work, Kind,
	// Iters (Kind/Iters apply to every item).
	MsgWorkBatch = "work_batch"
	// MsgBatchAck reports the per-result outcome of a result_batch, in
	// submission order; fields: Acks.
	MsgBatchAck = "batch_ack"
)

// Codec frames Messages over a byte stream, one JSON object per line. The
// zero Codec is not usable (nil encoder and scanner); construct with
// NewCodec. A Codec is not safe for concurrent use by multiple goroutines.
type Codec struct {
	enc *json.Encoder
	sc  *bufio.Scanner
}

// NewCodec wraps a bidirectional stream; inbound frames may be up to
// 1 MiB long.
func NewCodec(rw io.ReadWriter) *Codec {
	sc := bufio.NewScanner(rw)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	return &Codec{enc: json.NewEncoder(rw), sc: sc}
}

// ErrFrameTooLong reports an inbound line over the codec's 1 MiB frame
// limit — a hostile or broken peer, never a legitimate message.
var ErrFrameTooLong = errors.New("platform: frame exceeds 1 MiB")

// Send writes one message (json.Encoder appends the newline).
func (c *Codec) Send(m Message) error { return c.enc.Encode(m) }

// Recv reads the next message, skipping blank lines, and returns io.EOF
// at a clean end of stream. Oversized frames surface as ErrFrameTooLong.
func (c *Codec) Recv() (Message, error) {
	for c.sc.Scan() {
		line := c.sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var m Message
		if err := json.Unmarshal(line, &m); err != nil {
			return Message{}, fmt.Errorf("platform: bad frame: %w", err)
		}
		return m, nil
	}
	if err := c.sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return Message{}, ErrFrameTooLong
		}
		return Message{}, err
	}
	return Message{}, io.EOF
}

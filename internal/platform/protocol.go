// Package platform is a runnable miniature volunteer-computing platform in
// the mold the paper assumes: a supervisor process distributes assignments
// produced by a redundancy plan to worker processes over TCP, collects
// results, certifies them by redundancy, checks ringers against
// precomputed values, and blacklists implicated participants.
//
// The wire protocol is newline-delimited JSON — one object per line in each
// direction — chosen so a worker can be driven by hand with netcat while
// debugging. The unit of work ("assignment": code + data, §2) is a named
// work function plus a payload; workers execute the computation for real.
package platform

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Message is the single envelope type exchanged in both directions; Type
// selects which fields are meaningful.
type Message struct {
	Type string `json:"type"`

	// register / registered
	Name          string `json:"name,omitempty"`
	ParticipantID int    `json:"participant_id,omitempty"`

	// work
	TaskID int     `json:"task_id,omitempty"`
	Copy   int     `json:"copy,omitempty"`
	Kind   string  `json:"kind,omitempty"`
	Seed   uint64  `json:"seed,omitempty"`
	Iters  int     `json:"iters,omitempty"`
	Ringer bool    `json:"ringer,omitempty"` // never sent to workers; used in tests
	Value  uint64  `json:"value,omitempty"`
	Wait   float64 `json:"wait_seconds,omitempty"`

	// error
	Error string `json:"error,omitempty"`
}

// Message types, worker → supervisor.
const (
	MsgRegister    = "register"
	MsgRequestWork = "request_work"
	MsgResult      = "result"
)

// Message types, supervisor → worker.
const (
	MsgRegistered = "registered"
	MsgWork       = "work"
	MsgNoWork     = "no_work" // retry after Wait seconds
	MsgDone       = "done"    // computation finished; disconnect
	MsgAck        = "ack"
	MsgError      = "error"
)

// Codec frames Messages over a byte stream, one JSON object per line.
type Codec struct {
	enc *json.Encoder
	sc  *bufio.Scanner
}

// NewCodec wraps a bidirectional stream.
func NewCodec(rw io.ReadWriter) *Codec {
	sc := bufio.NewScanner(rw)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	return &Codec{enc: json.NewEncoder(rw), sc: sc}
}

// Send writes one message (json.Encoder appends the newline).
func (c *Codec) Send(m Message) error { return c.enc.Encode(m) }

// Recv reads the next message, returning io.EOF at end of stream.
func (c *Codec) Recv() (Message, error) {
	for c.sc.Scan() {
		line := c.sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var m Message
		if err := json.Unmarshal(line, &m); err != nil {
			return Message{}, fmt.Errorf("platform: bad frame: %w", err)
		}
		return m, nil
	}
	if err := c.sc.Err(); err != nil {
		return Message{}, err
	}
	return Message{}, io.EOF
}

// Package platform is a runnable miniature volunteer-computing platform in
// the mold the paper assumes: a supervisor process distributes assignments
// produced by a redundancy plan to worker processes over TCP, collects
// results, certifies them by redundancy, checks ringers against
// precomputed values, and blacklists implicated participants.
//
// The default wire protocol is newline-delimited JSON — one object per
// line in each direction — chosen so a worker can be driven by hand with
// netcat while debugging. Workers may negotiate the length-prefixed binary
// framing (binproto.go) at registration with the proto=bin capability;
// PROTOCOL.md specifies both codecs byte for byte. The unit of work
// ("assignment": code + data, §2) is a named work function plus a payload;
// workers execute the computation for real.
package platform

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Message is the single envelope type exchanged in both directions; Type
// selects which fields are meaningful. The zero Message is not a valid
// frame (its Type is empty); unset fields marshal away under omitempty.
type Message struct {
	// Type is one of the Msg* constants and selects the meaningful fields.
	Type string `json:"type"`

	// Name is the participant's self-reported display name (register);
	// it need not be unique and an empty name is accepted.
	Name string `json:"name,omitempty"`
	// ParticipantID is the supervisor-assigned identity, 0-based and
	// unique per run (registered, request_work, result). 0 is a valid ID,
	// not an absent one.
	ParticipantID int `json:"participant_id,omitempty"`
	// Resume marks a register that re-attaches an existing identity after
	// a reconnect instead of minting a new participant; ParticipantID and
	// Token carry the identity being resumed (register).
	Resume bool `json:"resume,omitempty"`
	// Token authenticates identity resumption: minted by the supervisor
	// at registration, echoed in registered, required on a Resume
	// register. Without it any client could hijack a participant — and
	// its credit — by guessing a small ID (registered, register).
	Token uint64 `json:"token,omitempty"`
	// Proto negotiates the wire codec. A register carrying ProtoBinary
	// asks to switch to the length-prefixed binary framing; a registered
	// reply echoing it confirms, and both sides switch immediately after
	// that exchange. Absent or unrecognized values keep newline-delimited
	// JSON, so old workers and supervisors interoperate unchanged
	// (register, registered).
	Proto string `json:"proto,omitempty"`

	// TaskID numbers the task, 0-based; ringer tasks continue after the
	// last real task (work, result).
	TaskID int `json:"task_id,omitempty"`
	// Copy indexes this assignment among the task's copies,
	// 0..multiplicity-1 (work, result).
	Copy int `json:"copy,omitempty"`
	// Kind names the registered work function to execute (work).
	Kind string `json:"kind,omitempty"`
	// Seed is the work function's input, derived per task by TaskSeed
	// (work).
	Seed uint64 `json:"seed,omitempty"`
	// Iters is the per-assignment work amount, in work-function
	// iterations (work).
	Iters int `json:"iters,omitempty"`
	// Ringer is never sent to workers (a labeled ringer would be
	// pointless); it exists for tests that splice Messages directly.
	Ringer bool `json:"ringer,omitempty"`
	// Value is the computed result, a work-function-defined 64-bit word —
	// possibly float64 bits, see SupervisorConfig.ResultDigits (result).
	Value uint64 `json:"value,omitempty"`
	// Wait is how long to back off before the next request_work, in
	// seconds (no_work). 0 means retry immediately.
	Wait float64 `json:"wait_seconds,omitempty"`

	// Error carries the human-readable refusal reason (error).
	Error string `json:"error,omitempty"`
	// Reason machine-codes an error reply — one of the Reason* constants —
	// so clients can tell fatal refusals (blacklisted) from races that a
	// reconnect resolves (error).
	Reason string `json:"reason,omitempty"`

	// Batch is the number of assignments requested in one lease; the
	// supervisor caps it at SupervisorConfig.MaxBatch (get_work).
	Batch int `json:"batch,omitempty"`
	// Work carries the assignments of a batch lease; the envelope's Kind
	// and Iters apply to every item (work_batch).
	Work []WorkItem `json:"work,omitempty"`
	// Results carries the computed values of a lease (result_batch).
	Results []ResultItem `json:"results,omitempty"`
	// Acks carries per-result outcomes, in submission order (batch_ack).
	Acks []ResultAck `json:"acks,omitempty"`

	// Epoch is the shard-map epoch of a sharded cluster: supervisors
	// stamp it on every reply, and a worker seeing it exceed the epoch of
	// its shard map knows the cluster rebalanced (a shard died or
	// returned) and re-resolves its routing before the next lease.
	// Absent (0) on unsharded supervisors, so the single-supervisor wire
	// format is byte-identical to previous releases (all replies).
	Epoch uint64 `json:"epoch,omitempty"`
}

// WorkItem is one assignment inside a work_batch lease. Kind and Iters are
// identical for every assignment of a run, so they ride once on the
// envelope instead of once per item.
type WorkItem struct {
	TaskID int    `json:"task_id"`
	Copy   int    `json:"copy"`
	Seed   uint64 `json:"seed"`
}

// ResultItem is one computed result inside a result_batch.
type ResultItem struct {
	TaskID int    `json:"task_id"`
	Copy   int    `json:"copy"`
	Value  uint64 `json:"value"`
}

// ResultAck is the per-result outcome inside a batch_ack. OK plays the
// role of a single-result MsgAck; a false OK carries the Reason and Error
// a single-result MsgError reply would.
type ResultAck struct {
	TaskID int    `json:"task_id"`
	Copy   int    `json:"copy"`
	OK     bool   `json:"ok"`
	Reason string `json:"reason,omitempty"`
	Error  string `json:"error,omitempty"`
}

// Machine-readable refusal reasons carried in MsgError replies. The
// result-rejection reasons double as the label values of the
// redundancy_results_rejected_total metric.
const (
	// ReasonBlacklisted refuses a convicted participant; reconnecting
	// cannot fix it.
	ReasonBlacklisted = "blacklisted"
	// ReasonUnregistered refuses a request naming a participant not
	// registered (or resumed) on this connection.
	ReasonUnregistered = "unregistered"
	// ReasonResumeRefused refuses a resume with an unknown identity or a
	// wrong token (e.g. the supervisor restarted); register afresh.
	ReasonResumeRefused = "resume_refused"
	// ReasonUnassigned rejects a result for work the supervisor has no
	// outstanding record of (already accepted, or reclaimed).
	ReasonUnassigned = "unassigned"
	// ReasonWrongParticipant rejects a result for a copy held by someone
	// else (the copy was reclaimed and re-issued).
	ReasonWrongParticipant = "wrong_participant"
	// ReasonVerification rejects a result the verifier refused.
	ReasonVerification = "verification"
	// ReasonDuplicate rejects the losing side of a speculative race: the
	// copy was deliberately issued twice and the other racer's result was
	// already accepted. Not an error on the worker's part — just wasted
	// duplicate work, counted but never credited.
	ReasonDuplicate = "duplicate"
	// ReasonUnknownType refuses a frame whose type is not part of the
	// protocol (possibly corruption in transit).
	ReasonUnknownType = "unknown_type"
)

// Message types, worker → supervisor.
const (
	// MsgRegister requests an identity; fields: Name — or, with Resume
	// set, re-attaches an existing one; fields: Name, Resume,
	// ParticipantID, Token.
	MsgRegister = "register"
	// MsgRequestWork asks for one assignment; fields: ParticipantID.
	MsgRequestWork = "request_work"
	// MsgResult returns a computed value; fields: ParticipantID, TaskID,
	// Copy, Value.
	MsgResult = "result"
	// MsgGetWork asks for a lease of up to Batch assignments; fields:
	// ParticipantID, Batch. The supervisor caps the grant at its MaxBatch.
	MsgGetWork = "get_work"
	// MsgResultBatch returns the computed values of a lease in one frame;
	// fields: ParticipantID, Results. Credited and journaled atomically.
	MsgResultBatch = "result_batch"
)

// Message types, supervisor → worker.
const (
	// MsgRegistered grants (or re-attaches) an identity; fields:
	// ParticipantID, Token.
	MsgRegistered = "registered"
	// MsgWork carries one assignment; fields: TaskID, Copy, Kind, Seed,
	// Iters.
	MsgWork = "work"
	// MsgNoWork reports that the release policy is holding copies back;
	// retry after Wait seconds.
	MsgNoWork = "no_work"
	// MsgDone reports the computation finished; the worker disconnects.
	MsgDone = "done"
	// MsgAck confirms a result was accepted into verification.
	MsgAck = "ack"
	// MsgError refuses the request; fields: Error.
	MsgError = "error"
	// MsgWorkBatch carries a lease of assignments; fields: Work, Kind,
	// Iters (Kind/Iters apply to every item).
	MsgWorkBatch = "work_batch"
	// MsgBatchAck reports the per-result outcome of a result_batch, in
	// submission order; fields: Acks.
	MsgBatchAck = "batch_ack"
)

// wireVerbs lists every protocol verb in binary-tag order: the binary
// codec's verb tag is the 1-based index into this table (tag 0 carries an
// explicit type string, for messages whose type is not a protocol verb).
// Append only — reordering changes tags on the wire. PROTOCOL.md's verb
// tables are diffed against this slice by the protocol documentation test.
var wireVerbs = []string{
	MsgRegister,    // tag 1
	MsgRequestWork, // tag 2
	MsgResult,      // tag 3
	MsgGetWork,     // tag 4
	MsgResultBatch, // tag 5
	MsgRegistered,  // tag 6
	MsgWork,        // tag 7
	MsgNoWork,      // tag 8
	MsgDone,        // tag 9
	MsgAck,         // tag 10
	MsgError,       // tag 11
	MsgWorkBatch,   // tag 12
	MsgBatchAck,    // tag 13
}

// Wire codec names carried in Message.Proto during negotiation.
const (
	// ProtoJSON is the default newline-delimited JSON framing; never sent
	// on the wire (absence means JSON).
	ProtoJSON = "json"
	// ProtoBinary is the length-prefixed binary framing (binproto.go).
	ProtoBinary = "bin"
)

// maxFrame bounds one inbound frame in either codec: a JSON line or a
// binary payload. A hostile or broken peer, never a legitimate message.
const maxFrame = 1 << 20

// ErrFrameTooLong reports an inbound frame over the codec's 1 MiB frame
// limit — a hostile or broken peer, never a legitimate message.
var ErrFrameTooLong = errors.New("platform: frame exceeds 1 MiB")

// Codec frames Messages over a byte stream: one JSON object per line by
// default, or length-prefixed binary frames after EnableBinary (the
// proto=bin negotiation). The zero Codec is not usable; construct with
// NewCodec. A Codec is not safe for concurrent use by multiple goroutines.
//
// In binary mode the Work/Results/Acks slices of a received Message alias
// codec-owned scratch buffers: they are valid until the next Recv, which
// is exactly the lifetime the serve and worker loops need. Copy them to
// retain a message across receives.
type Codec struct {
	w   io.Writer
	enc *json.Encoder
	br  *bufio.Reader

	binary bool  // binary framing active (both directions)
	err    error // sticky framing error; the stream is unrecoverable

	line []byte // inbound scratch: JSON line / binary payload
	ebuf []byte // outbound scratch: one whole binary frame

	// decoded-slice scratch, reused across binary Recvs.
	work    []WorkItem
	results []ResultItem
	acks    []ResultAck

	// wire accounting, split by the codec in effect at the time: bytes
	// sent plus received, including newlines and frame headers. Read via
	// WireBytes; feeds redundancy_wire_bytes_total.
	jsonBytes int64
	binBytes  int64
}

// NewCodec wraps a bidirectional stream; inbound frames may be up to
// 1 MiB long.
func NewCodec(rw io.ReadWriter) *Codec {
	c := &Codec{w: rw, br: bufio.NewReaderSize(rw, 4096)}
	c.enc = json.NewEncoder(jsonCountWriter{c})
	return c
}

// jsonCountWriter counts the JSON encoder's output bytes on the way to
// the underlying stream.
type jsonCountWriter struct{ c *Codec }

func (jw jsonCountWriter) Write(p []byte) (int, error) {
	n, err := jw.c.w.Write(p)
	jw.c.jsonBytes += int64(n)
	return n, err
}

// EnableBinary switches both directions to the binary framing. Call it
// exactly at the negotiated point in the stream — after the registered
// reply that echoed proto=bin has been sent (supervisor) or received
// (worker) — or the two sides will disagree on the framing.
func (c *Codec) EnableBinary() { c.binary = true }

// Binary reports whether the binary framing is active.
func (c *Codec) Binary() bool { return c.binary }

// WireBytes returns the bytes sent plus received so far, split by codec:
// JSON lines (newlines included) and binary frames (length headers
// included).
func (c *Codec) WireBytes() (jsonBytes, binBytes int64) {
	return c.jsonBytes, c.binBytes
}

// Send writes one message: a JSON line (json.Encoder appends the
// newline), or one binary frame in a single Write.
func (c *Codec) Send(m Message) error {
	if !c.binary {
		return c.enc.Encode(m)
	}
	buf := append(c.ebuf[:0], 0, 0, 0, 0) // length prefix, patched below
	buf = appendBinMessage(buf, &m)
	c.ebuf = buf
	if len(buf)-4 > maxFrame {
		return ErrFrameTooLong
	}
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(buf)-4))
	n, err := c.w.Write(buf)
	c.binBytes += int64(n)
	return err
}

// Recv reads the next message and returns io.EOF at a clean end of
// stream. In JSON mode blank lines are skipped; oversized frames surface
// as ErrFrameTooLong in both modes. Framing errors are sticky: once the
// stream position is unrecoverable every further Recv fails the same way.
func (c *Codec) Recv() (Message, error) {
	if c.err != nil {
		return Message{}, c.err
	}
	if c.binary {
		return c.recvBinary()
	}
	for {
		line, err := c.readLine()
		if err != nil {
			return Message{}, err
		}
		if len(line) == 0 {
			continue
		}
		var m Message
		if err := json.Unmarshal(line, &m); err != nil {
			return Message{}, fmt.Errorf("platform: bad frame: %w", err)
		}
		return m, nil
	}
}

// readLine reads one newline-terminated line (the trailing \n, and a \r
// before it, stripped), tolerating a final line without a newline. Lines
// over maxFrame surface as a sticky ErrFrameTooLong.
func (c *Codec) readLine() ([]byte, error) {
	buf := c.line[:0]
	for {
		frag, err := c.br.ReadSlice('\n')
		buf = append(buf, frag...)
		c.line = buf
		if len(buf) > maxFrame+1 { // +1: the newline is not part of the frame
			c.err = ErrFrameTooLong
			return nil, ErrFrameTooLong
		}
		switch err {
		case nil:
			c.jsonBytes += int64(len(buf))
			return trimEOL(buf), nil
		case bufio.ErrBufferFull:
			continue
		case io.EOF:
			if len(buf) > 0 {
				// A torn final line: parse what is there, exactly as
				// bufio.Scanner used to.
				c.jsonBytes += int64(len(buf))
				return trimEOL(buf), nil
			}
			return nil, io.EOF
		default:
			return nil, err
		}
	}
}

// trimEOL strips one trailing \n and a \r preceding it.
func trimEOL(line []byte) []byte {
	if n := len(line); n > 0 && line[n-1] == '\n' {
		line = line[:n-1]
	}
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line
}

// recvBinary reads one length-prefixed frame. io.EOF between frames is a
// clean end of stream; EOF inside a frame is io.ErrUnexpectedEOF.
func (c *Codec) recvBinary() (Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			c.err = err
		}
		return Message{}, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n > maxFrame {
		c.err = ErrFrameTooLong
		return Message{}, ErrFrameTooLong
	}
	if cap(c.line) < n {
		c.line = make([]byte, n)
	}
	c.line = c.line[:n]
	if _, err := io.ReadFull(c.br, c.line); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		c.err = err
		return Message{}, err
	}
	c.binBytes += int64(4 + n)
	var m Message
	if err := c.decodeBinMessage(c.line, &m); err != nil {
		return Message{}, fmt.Errorf("platform: bad frame: %w", err)
	}
	return m, nil
}

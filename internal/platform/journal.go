package platform

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"redundancy/internal/plan"
	"redundancy/internal/sched"
	"redundancy/internal/verify"
)

// journalRecord is one accepted result, appended to the journal as a JSON
// line the moment it is recorded. Replaying the journal against the same
// plan reconstructs the supervisor's verification state exactly, so a
// restarted supervisor resumes where the previous process stopped instead
// of re-running days of volunteer work.
type journalRecord struct {
	TaskID      int    `json:"task"`
	Copy        int    `json:"copy"`
	Ringer      bool   `json:"ringer,omitempty"`
	Participant int    `json:"participant"`
	Value       uint64 `json:"value"`
}

// revisionRecord journals one adaptive plan revision. The supervisor
// writes (and, in JournalSync mode, fsyncs) the record *before* applying
// the revision to its in-memory plan, queue, and collector, so the journal
// is never behind reality: a crash after the write replays the revision, a
// crash that tears the line drops a revision no later record can depend on
// (a revised copy can only be issued — and its result journaled — after
// the apply step). Replay applies revisions at their recorded position in
// the result stream, reconstructing the revised plan exactly.
type revisionRecord struct {
	// Seq numbers revisions from 0 in application order.
	Seq int `json:"seq"`
	// PHat and Upper snapshot the estimate that triggered the revision —
	// diagnostic only; replay does not depend on them.
	PHat  float64 `json:"phat"`
	Upper float64 `json:"upper"`

	Promotions []plan.Promotion `json:"promotions,omitempty"`
	Minted     []plan.Mint      `json:"minted,omitempty"`
}

// journalLine is the union read shape: a result record, or — when the
// Revision pointer is set — a plan revision.
type journalLine struct {
	journalRecord
	Revision *revisionRecord `json:"revision,omitempty"`
}

// appendJournal writes one record; callers hold the supervisor's journal
// lock so records are totally ordered.
func appendJournal(w io.Writer, rec journalRecord) error {
	return json.NewEncoder(w).Encode(rec)
}

// appendJournalRevision writes one revision record. Callers hold the
// supervisor's journal lock.
func appendJournalRevision(w io.Writer, rec revisionRecord) error {
	return json.NewEncoder(w).Encode(struct {
		Revision *revisionRecord `json:"revision"`
	}{&rec})
}

// appendJournalBatch writes a whole result batch's records with a single
// Write call. Encoding into one buffer first matters for crash safety: a
// partial write of one contiguous buffer can only truncate it, so at most
// the final record is torn — exactly the damage replayJournal already
// tolerates — and interleaved interior corruption is impossible. Callers
// hold the supervisor's journal lock so batches are totally ordered. The
// encode buffer is pooled: batch journaling is the hot path's only
// remaining per-request buffer, and recycling it keeps the write side
// allocation-free at steady state.
func appendJournalBatch(w io.Writer, recs []journalRecord) error {
	buf := bufPool.Get().(*bytes.Buffer)
	defer bufPool.Put(buf)
	buf.Reset()
	enc := json.NewEncoder(buf)
	for _, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// journalReplayer is what replaying a journal needs from its owner: the
// verification/queue state every result feeds, plus a hook for applying
// plan revisions at their recorded position. The supervisor implements it;
// tests may substitute pieces.
type journalReplayer interface {
	replayResult(a sched.Assignment, participant int, value uint64) error
	replayRevision(rec revisionRecord) error
}

// replayJournal feeds every journaled line back through rp. Torn trailing
// lines (a crash mid-write) are tolerated; corrupt interior records abort
// with an error. It returns the number of results restored and validBytes,
// the length of the journal prefix that replayed cleanly: a caller that
// will keep appending to the same file should truncate it to validBytes
// first, so a torn tail does not glue itself onto the next record and turn
// into interior corruption at a later restore. (A final valid line missing
// its newline counts the newline anyway; clamp to the file size before
// truncating.)
func replayJournal(r io.Reader, rp journalReplayer) (restored, maxParticipant int, validBytes int64, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	maxParticipant = -1
	var pendingErr error
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			validBytes++ // a blank line consumed one newline byte
			continue
		}
		if pendingErr != nil {
			// A bad record followed by more data is real corruption, not
			// a torn tail.
			return restored, maxParticipant, validBytes, pendingErr
		}
		var rec journalLine
		if err := json.Unmarshal(line, &rec); err != nil {
			pendingErr = fmt.Errorf("platform: corrupt journal record: %w", err)
			continue
		}
		if rec.Revision != nil {
			// Revisions are load-bearing plan state: an inapplicable one is
			// interior corruption even at the tail, because the write
			// preceded the apply — a revision that once applied cleanly
			// always replays cleanly.
			if err := rp.replayRevision(*rec.Revision); err != nil {
				return restored, maxParticipant, validBytes,
					fmt.Errorf("platform: journal revision %d: %w", rec.Revision.Seq, err)
			}
			validBytes += int64(len(line)) + 1
			continue
		}
		a := sched.Assignment{TaskID: rec.TaskID, Copy: rec.Copy, Ringer: rec.Ringer}
		if err := rp.replayResult(a, rec.Participant, rec.Value); err != nil {
			if torn, ok := err.(replayTornError); ok {
				pendingErr = torn.err
				continue
			}
			return restored, maxParticipant, validBytes, err
		}
		if rec.Participant > maxParticipant {
			maxParticipant = rec.Participant
		}
		restored++
		validBytes += int64(len(line)) + 1
	}
	if err := sc.Err(); err != nil {
		return restored, maxParticipant, validBytes, err
	}
	return restored, maxParticipant, validBytes, nil
}

// replayTornError wraps a replay failure that should be tolerated when it
// is the journal's final line (the torn-tail rule) but is corruption when
// followed by more data.
type replayTornError struct{ err error }

func (e replayTornError) Error() string { return e.err.Error() }

// supReplayer adapts a Supervisor to journalReplayer.
type supReplayer struct{ s *Supervisor }

func (r supReplayer) replayResult(a sched.Assignment, participant int, value uint64) error {
	s := r.s
	if !s.lease.queue.MarkCompleted(a) {
		return replayTornError{fmt.Errorf("platform: journal replays unknown assignment task=%d copy=%d",
			a.TaskID, a.Copy)}
	}
	if _, _, err := s.audit.collector.Submit(verify.Result{
		Assignment:  a,
		Participant: participant,
		Value:       value,
	}); err != nil {
		return fmt.Errorf("platform: journal replay: %w", err)
	}
	return nil
}

func (r supReplayer) replayRevision(rec revisionRecord) error {
	s := r.s
	if rec.Seq != s.audit.revApplied {
		return fmt.Errorf("revision sequence %d out of order (want %d)", rec.Seq, s.audit.revApplied)
	}
	return s.applyRevisionLocked(plan.Revision{Promotions: rec.Promotions, Minted: rec.Minted})
}

package platform

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"redundancy/internal/plan"
	"redundancy/internal/sched"
	"redundancy/internal/verify"
)

// journalRecord is one accepted result, appended to the journal as a JSON
// line the moment it is recorded. Replaying the journal against the same
// plan reconstructs the supervisor's verification state exactly, so a
// restarted supervisor resumes where the previous process stopped instead
// of re-running days of volunteer work.
type journalRecord struct {
	TaskID      int    `json:"task"`
	Copy        int    `json:"copy"`
	Ringer      bool   `json:"ringer,omitempty"`
	Participant int    `json:"participant"`
	Value       uint64 `json:"value"`
}

// revisionRecord journals one adaptive plan revision. The supervisor
// writes (and, in JournalSync mode, fsyncs) the record *before* applying
// the revision to its in-memory plan, queue, and collector, so the journal
// is never behind reality: a crash after the write replays the revision, a
// crash that tears the line drops a revision no later record can depend on
// (a revised copy can only be issued — and its result journaled — after
// the apply step). Replay applies revisions at their recorded position in
// the result stream, reconstructing the revised plan exactly.
type revisionRecord struct {
	// Seq numbers revisions from 0 in application order.
	Seq int `json:"seq"`
	// PHat and Upper snapshot the estimate that triggered the revision —
	// diagnostic only; replay does not depend on them.
	PHat  float64 `json:"phat"`
	Upper float64 `json:"upper"`

	Promotions []plan.Promotion `json:"promotions,omitempty"`
	Minted     []plan.Mint      `json:"minted,omitempty"`
}

// snapshotVerdict is one adjudicated task inside a snapshot, carrying
// exactly the fields RestoreVerdict needs to reinstate the verdict (and
// its downstream effects: credits, blacklist, estimator evidence) without
// re-running the per-copy results through the pipeline.
type snapshotVerdict struct {
	TaskID       int    `json:"task"`
	Ringer       bool   `json:"ringer,omitempty"`
	Copies       int    `json:"copies"`
	Accepted     bool   `json:"accepted,omitempty"`
	Value        uint64 `json:"value"`
	Mismatch     bool   `json:"mismatch,omitempty"`
	Suspects     []int  `json:"suspects,omitempty"`
	Contributors []int  `json:"contributors"`
}

// snapshotRecord is a point-in-time capture of everything journal replay
// would reconstruct: applied revisions, issued verdicts (in adjudication
// order, so estimator and credit updates replay in the exact sequence the
// live process performed them), and the partial results of still-pending
// tasks. A snapshot at the head of a journal replaces the replay of its
// covered prefix — compaction truncates that prefix away — turning
// restore cost from O(run history) into O(live state). Its canonical JSON
// encoding doubles as a state digest: two supervisors are in the same
// certification state iff their captures encode to the same bytes.
type snapshotRecord struct {
	// Results is the number of journaled result records the snapshot
	// covers: the restored count a full replay of the prefix would report.
	Results int `json:"results"`
	// MaxParticipant is the highest participant ID among covered records
	// (-1 if none) — replay parity for the ID-allocation high-water mark.
	MaxParticipant int `json:"max_participant"`
	// Revisions are the applied plan revisions, in sequence order.
	Revisions []revisionRecord `json:"revisions,omitempty"`
	// Verdicts are the adjudicated tasks, in adjudication order.
	Verdicts []snapshotVerdict `json:"verdicts,omitempty"`
	// Pending are the results of partially-collected tasks, ordered by
	// task ID then submission — a deterministic enumeration, so equal
	// states encode to equal bytes.
	Pending []journalRecord `json:"pending,omitempty"`
}

// journalLine is the union read shape: a result record, or — when the
// corresponding pointer is set — a plan revision or a snapshot.
type journalLine struct {
	journalRecord
	Revision *revisionRecord `json:"revision,omitempty"`
	Snapshot *snapshotRecord `json:"snapshot,omitempty"`
}

// journalRecordKinds names every record type a journal line can carry.
// PROTOCOL.md's enforcement test diffs its journal-format section against
// this list, so adding a kind without documenting it fails the build.
var journalRecordKinds = []string{"result", "revision", "snapshot"}

// appendJournal writes one record; callers hold the supervisor's journal
// lock so records are totally ordered.
func appendJournal(w io.Writer, rec journalRecord) error {
	return json.NewEncoder(w).Encode(rec)
}

// appendJournalRevision writes one revision record. Callers hold the
// supervisor's journal lock.
func appendJournalRevision(w io.Writer, rec revisionRecord) error {
	return json.NewEncoder(w).Encode(struct {
		Revision *revisionRecord `json:"revision"`
	}{&rec})
}

// appendJournalBatch writes a whole result batch's records with a single
// Write call. Encoding into one buffer first matters for crash safety: a
// partial write of one contiguous buffer can only truncate it, so at most
// the final record is torn — exactly the damage replayJournal already
// tolerates — and interleaved interior corruption is impossible. Callers
// hold the supervisor's journal lock so batches are totally ordered. The
// encode buffer is pooled: batch journaling is the hot path's only
// remaining per-request buffer, and recycling it keeps the write side
// allocation-free at steady state.
func appendJournalBatch(w io.Writer, recs []journalRecord) error {
	buf := bufPool.Get().(*bytes.Buffer)
	defer bufPool.Put(buf)
	buf.Reset()
	enc := json.NewEncoder(buf)
	for _, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// appendJournalSnapshot encodes one snapshot record as a journal line
// into dst (the caller writes or installs the bytes under the journal
// lock). Encoding is canonical — encoding/json with deterministic field
// and element order — which is what lets the snapshot double as a state
// digest.
func appendJournalSnapshot(dst *bytes.Buffer, rec *snapshotRecord) error {
	return json.NewEncoder(dst).Encode(struct {
		Snapshot *snapshotRecord `json:"snapshot"`
	}{rec})
}

// journalReplayer is what replaying a journal needs from its owner: the
// verification/queue state every result feeds, plus hooks for applying
// plan revisions at their recorded position and installing a snapshot.
// The supervisor implements it; tests may substitute pieces.
type journalReplayer interface {
	replayResult(a sched.Assignment, participant int, value uint64) error
	replayRevision(rec revisionRecord) error
	replaySnapshot(rec snapshotRecord) error
}

// replayStats summarizes one journal replay.
type replayStats struct {
	// restored counts result records the journal accounts for, including
	// results a head snapshot covers.
	restored int
	// maxParticipant is the highest participant ID seen (-1 if none).
	maxParticipant int
	// validBytes is the length of the journal prefix that replayed
	// cleanly: a caller that will keep appending to the same file should
	// truncate it to validBytes first, so a torn tail does not glue
	// itself onto the next record and turn into interior corruption at a
	// later restore. (A final valid line missing its newline counts the
	// newline anyway; clamp to the file size before truncating.)
	validBytes int64
	// lines counts the record lines consumed (blank lines excluded) —
	// the journal's current length in records, which compaction
	// accounting needs exactly (replayer callbacks undercount: covered
	// duplicates and mid-stream snapshots never reach them).
	lines int
}

// replayJournal feeds every journaled line back through rp. Torn trailing
// lines (a crash mid-write) are tolerated; corrupt interior records abort
// with an error.
func replayJournal(r io.Reader, rp journalReplayer) (replayStats, error) {
	sc := bufio.NewScanner(r)
	// Result and revision lines are tiny, but a snapshot line scales with
	// the live state it captures (a 50k-verdict snapshot runs to several
	// MB), so the line cap is far above the wire protocol's maxFrame.
	sc.Buffer(make([]byte, 0, 4096), 1<<30)
	st := replayStats{maxParticipant: -1}
	var pendingErr error
	// covered, set when a head snapshot installs, holds the (task, copy)
	// keys the snapshot already accounts for. A result record is appended
	// only after its apply step, so a record applied before the capture
	// can land after the snapshot line; replaying it would double-submit,
	// so covered duplicates are skipped (each appears at most once).
	var covered map[[2]int]bool
	first := true
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			st.validBytes++ // a blank line consumed one newline byte
			continue
		}
		if pendingErr != nil {
			// A bad record followed by more data is real corruption, not
			// a torn tail.
			return st, pendingErr
		}
		var rec journalLine
		if err := json.Unmarshal(line, &rec); err != nil {
			pendingErr = fmt.Errorf("platform: corrupt journal record: %w", err)
			continue
		}
		if rec.Snapshot != nil {
			// Only a snapshot heading the journal installs: it is the
			// compacted stand-in for the truncated prefix. A snapshot
			// mid-stream is a periodic capture of state the records before
			// it already rebuilt — skip it. (A torn snapshot at the tail
			// never reaches here: it fails the JSON parse above and is
			// tolerated like any torn final line.)
			if first {
				if err := rp.replaySnapshot(*rec.Snapshot); err != nil {
					return st, fmt.Errorf("platform: journal snapshot: %w", err)
				}
				s := rec.Snapshot
				covered = make(map[[2]int]bool, 2*len(s.Verdicts)+len(s.Pending))
				for _, v := range s.Verdicts {
					for c := 0; c < v.Copies; c++ {
						covered[[2]int{v.TaskID, c}] = true
					}
				}
				for _, p := range s.Pending {
					covered[[2]int{p.TaskID, p.Copy}] = true
				}
				st.restored += s.Results
				if s.MaxParticipant > st.maxParticipant {
					st.maxParticipant = s.MaxParticipant
				}
			}
			first = false
			st.validBytes += int64(len(line)) + 1
			st.lines++
			continue
		}
		first = false
		if rec.Revision != nil {
			// Revisions are load-bearing plan state: an inapplicable one is
			// interior corruption even at the tail, because the write
			// preceded the apply — a revision that once applied cleanly
			// always replays cleanly.
			if err := rp.replayRevision(*rec.Revision); err != nil {
				return st, fmt.Errorf("platform: journal revision %d: %w", rec.Revision.Seq, err)
			}
			st.validBytes += int64(len(line)) + 1
			st.lines++
			continue
		}
		if covered[[2]int{rec.TaskID, rec.Copy}] {
			// Applied before the snapshot's capture, appended after its
			// line: the snapshot already carries this result.
			delete(covered, [2]int{rec.TaskID, rec.Copy})
			st.validBytes += int64(len(line)) + 1
			st.lines++
			continue
		}
		a := sched.Assignment{TaskID: rec.TaskID, Copy: rec.Copy, Ringer: rec.Ringer}
		if err := rp.replayResult(a, rec.Participant, rec.Value); err != nil {
			if torn, ok := err.(replayTornError); ok {
				pendingErr = torn.err
				continue
			}
			return st, err
		}
		if rec.Participant > st.maxParticipant {
			st.maxParticipant = rec.Participant
		}
		st.restored++
		st.validBytes += int64(len(line)) + 1
		st.lines++
	}
	if err := sc.Err(); err != nil {
		return st, err
	}
	return st, nil
}

// replayTornError wraps a replay failure that should be tolerated when it
// is the journal's final line (the torn-tail rule) but is corruption when
// followed by more data.
type replayTornError struct{ err error }

func (e replayTornError) Error() string { return e.err.Error() }

// supReplayer adapts a Supervisor to journalReplayer.
type supReplayer struct{ s *Supervisor }

func (r supReplayer) replayResult(a sched.Assignment, participant int, value uint64) error {
	s := r.s
	if !s.lease.queue.MarkCompleted(a) {
		return replayTornError{fmt.Errorf("platform: journal replays unknown assignment task=%d copy=%d",
			a.TaskID, a.Copy)}
	}
	if _, _, err := s.audit.collector.Submit(verify.Result{
		Assignment:  a,
		Participant: participant,
		Value:       value,
	}); err != nil {
		return fmt.Errorf("platform: journal replay: %w", err)
	}
	return nil
}

func (r supReplayer) replayRevision(rec revisionRecord) error {
	s := r.s
	if rec.Seq != s.audit.revApplied {
		return fmt.Errorf("revision sequence %d out of order (want %d)", rec.Seq, s.audit.revApplied)
	}
	if err := s.applyRevisionLocked(plan.Revision{Promotions: rec.Promotions, Minted: rec.Minted}); err != nil {
		return err
	}
	// Retained for future snapshots, exactly as the live tick retains the
	// revisions it applies.
	s.audit.revisions = append(s.audit.revisions, rec)
	return nil
}

package platform

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"redundancy/internal/sched"
	"redundancy/internal/verify"
)

// journalRecord is one accepted result, appended to the journal as a JSON
// line the moment it is recorded. Replaying the journal against the same
// plan reconstructs the supervisor's verification state exactly, so a
// restarted supervisor resumes where the previous process stopped instead
// of re-running days of volunteer work.
type journalRecord struct {
	TaskID      int    `json:"task"`
	Copy        int    `json:"copy"`
	Ringer      bool   `json:"ringer,omitempty"`
	Participant int    `json:"participant"`
	Value       uint64 `json:"value"`
}

// appendJournal writes one record; callers hold the supervisor lock so
// records are totally ordered.
func appendJournal(w io.Writer, rec journalRecord) error {
	return json.NewEncoder(w).Encode(rec)
}

// appendJournalBatch writes a whole result batch's records with a single
// Write call. Encoding into one buffer first matters for crash safety: a
// partial write of one contiguous buffer can only truncate it, so at most
// the final record is torn — exactly the damage replayJournal already
// tolerates — and interleaved interior corruption is impossible. Callers
// hold the supervisor lock so batches are totally ordered.
func appendJournalBatch(w io.Writer, recs []journalRecord) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// replayJournal feeds every journaled result back through the collector
// and marks the corresponding assignments completed in the queue. Torn
// trailing lines (a crash mid-write) are tolerated; corrupt interior
// records abort with an error. It returns the number of results restored
// and validBytes, the length of the journal prefix that replayed cleanly:
// a caller that will keep appending to the same file should truncate it
// to validBytes first, so a torn tail does not glue itself onto the next
// record and turn into interior corruption at a later restore. (A final
// valid line missing its newline counts the newline anyway; clamp to the
// file size before truncating.)
func replayJournal(r io.Reader, collector *verify.Collector, queue *sched.Queue) (restored, maxParticipant int, validBytes int64, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	maxParticipant = -1
	var pendingErr error
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			validBytes++ // a blank line consumed one newline byte
			continue
		}
		if pendingErr != nil {
			// A bad record followed by more data is real corruption, not
			// a torn tail.
			return restored, maxParticipant, validBytes, pendingErr
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			pendingErr = fmt.Errorf("platform: corrupt journal record: %w", err)
			continue
		}
		a := sched.Assignment{TaskID: rec.TaskID, Copy: rec.Copy, Ringer: rec.Ringer}
		if !queue.MarkCompleted(a) {
			pendingErr = fmt.Errorf("platform: journal replays unknown assignment task=%d copy=%d",
				rec.TaskID, rec.Copy)
			continue
		}
		if _, _, err := collector.Submit(verify.Result{
			Assignment:  a,
			Participant: rec.Participant,
			Value:       rec.Value,
		}); err != nil {
			return restored, maxParticipant, validBytes, fmt.Errorf("platform: journal replay: %w", err)
		}
		if rec.Participant > maxParticipant {
			maxParticipant = rec.Participant
		}
		restored++
		validBytes += int64(len(line)) + 1
	}
	if err := sc.Err(); err != nil {
		return restored, maxParticipant, validBytes, err
	}
	return restored, maxParticipant, validBytes, nil
}

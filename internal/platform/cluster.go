package platform

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"redundancy/internal/agg"
	"redundancy/internal/obs"
	"redundancy/internal/plan"
	"redundancy/internal/ring"
)

// ClusterConfig parameterizes a sharded supervisor cluster: N independent
// supervisor shards, each owning a consistent-hash partition of one global
// plan's task IDs (DESIGN.md §14). Fields shared by every shard mirror their
// SupervisorConfig counterparts.
type ClusterConfig struct {
	// Plan is the global redundancy plan; its task set is partitioned
	// across shards by ring lookup on the task ID. Every shard receives
	// the full Plan (for run-wide ε bookkeeping) plus its own Tasks
	// subset.
	Plan *plan.Plan
	// Shards is the number of supervisor shards (>= 1).
	Shards int
	// VNodes is the virtual nodes per shard on the ring (0 means
	// ring.DefaultVNodes).
	VNodes int
	// Seed seeds both the ring placement and each shard's queue shuffle.
	Seed uint64
	// WorkKind, Iters, MaxBatch, Deadline, IOTimeout: per-shard supervisor
	// settings, identical across shards so a task computes the same value
	// wherever it lands.
	WorkKind  string
	Iters     int
	MaxBatch  int
	Deadline  time.Duration
	IOTimeout time.Duration
	// JournalDir, when non-empty, gives every shard a JournalFile at
	// <dir>/shard-<i>.jnl; KillShard/RestoreShard then support
	// crash-recovery with byte-identical replay. Empty disables journals.
	JournalDir string
	// JournalSync, GroupCommit, and CommitLatency configure each shard's
	// journal exactly as on SupervisorConfig. Per-shard journals are
	// independent commit streams: a cluster of N shards sustains N
	// concurrent commits where a single supervisor serializes them, which
	// is what the platformbench -shards sweep measures when CommitLatency
	// models a slow durable store.
	JournalSync   bool
	GroupCommit   bool
	CommitLatency time.Duration
	// Metrics, when non-nil, is shared by every shard: registration is
	// idempotent, so the unlabeled supervisor families aggregate
	// cluster-wide while the shard_id-labeled mirrors keep per-shard
	// series. Nil gives the cluster one private registry (still shared
	// by all shards).
	Metrics *obs.Registry
	// Logf receives progress lines from every shard (serialized per
	// shard); nil suppresses logging.
	Logf func(format string, args ...any)
}

// ShardInfo describes one shard of a running cluster to routing clients.
type ShardInfo struct {
	ID   int    // shard index, stable across kill/restore
	Name string // ring member name ("shard-0", ...)
	Addr string // listen address; stable across kill/restore
	Down bool   // true between KillShard and RestoreShard
}

// ShardMap is the routing table a sharded worker consumes: the ring
// parameters to rebuild placement locally plus the live shard endpoints.
// Epoch increments on every membership change (kill or restore); replies
// from shard supervisors carry the epoch so workers detect a stale map.
type ShardMap struct {
	Epoch  uint64
	VNodes int
	Seed   uint64
	Shards []ShardInfo
}

// Cluster runs one supervisor per shard over a consistent-hash partition of
// a single global plan. Each shard owns its queue, leases, audit state,
// identity directory, and journal — no cross-shard lock exists on any hot
// path; the only shared object is the (idempotent, internally synchronized)
// metrics registry. Aggregate merges the per-shard audit exports into the
// run-wide estimate the paper's ε guarantee is stated over.
type Cluster struct {
	cfg     ClusterConfig
	ring    *ring.Ring
	metrics *clusterMetrics
	reg     *obs.Registry
	// parts[i] is the global-ID task subset shard i owns.
	parts [][]plan.TaskSpec

	sups     []*Supervisor
	journals []*JournalFile
	addrs    []string
	down     []bool
	epoch    uint64
}

// ShardName returns the ring member name of shard i.
func ShardName(i int) string { return fmt.Sprintf("shard-%d", i) }

// NewCluster partitions cfg.Plan across cfg.Shards supervisors and starts
// each one on a loopback address. The returned cluster is serving; callers
// route workers with ShardMap and finish with Wait + Close.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Plan == nil {
		return nil, errors.New("platform: cluster requires a plan")
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("platform: cluster needs >= 1 shard, got %d", cfg.Shards)
	}
	names := make([]string, cfg.Shards)
	for i := range names {
		names[i] = ShardName(i)
	}
	r, err := ring.New(ring.Config{VNodes: cfg.VNodes, Seed: cfg.Seed}, names...)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:      cfg,
		ring:     r,
		reg:      cfg.Metrics,
		parts:    make([][]plan.TaskSpec, cfg.Shards),
		sups:     make([]*Supervisor, cfg.Shards),
		journals: make([]*JournalFile, cfg.Shards),
		addrs:    make([]string, cfg.Shards),
		down:     make([]bool, cfg.Shards),
		epoch:    1,
	}
	if c.reg == nil {
		c.reg = obs.NewRegistry()
	}
	c.metrics = newClusterMetrics(c.reg)

	// Static partition: tasks stay where the ring puts them. Membership
	// changes (kill/restore) bump the epoch for routing but never migrate
	// a task between shards — the shard's journal is the authority for its
	// subset, and moving a task would fork that authority.
	index := make(map[string]int, cfg.Shards)
	for i, n := range names {
		index[n] = i
	}
	for _, sp := range cfg.Plan.Tasks() {
		owner, ok := r.LookupUint64(uint64(sp.ID))
		if !ok {
			return nil, errors.New("platform: ring lookup failed on non-empty ring")
		}
		i := index[owner]
		c.parts[i] = append(c.parts[i], sp)
	}

	for i, part := range c.parts {
		if len(part) == 0 {
			return nil, fmt.Errorf(
				"platform: shard %d owns no tasks (%d tasks over %d shards); use fewer shards, more tasks, or more vnodes",
				i, len(cfg.Plan.Tasks()), cfg.Shards)
		}
	}

	for i := range c.sups {
		if err := c.startShard(i, nil); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// journalPath returns shard i's journal path, or "" when journaling is off.
func (c *Cluster) journalPath(i int) string {
	if c.cfg.JournalDir == "" {
		return ""
	}
	return filepath.Join(c.cfg.JournalDir, fmt.Sprintf("shard-%d.jnl", i))
}

// startShard constructs and starts shard i. restore, when non-nil, is the
// journal prefix to replay (RestoreShard's crash-recovery path); the shard
// then truncates its journal to the replayed prefix before serving.
func (c *Cluster) startShard(i int, restore io.Reader) error {
	scfg := SupervisorConfig{
		Plan:          c.cfg.Plan,
		Tasks:         c.parts[i],
		ShardID:       ShardName(i),
		WorkKind:      c.cfg.WorkKind,
		Iters:         c.cfg.Iters,
		Seed:          c.cfg.Seed + uint64(i),
		MaxBatch:      c.cfg.MaxBatch,
		Deadline:      c.cfg.Deadline,
		IOTimeout:     c.cfg.IOTimeout,
		JournalSync:   c.cfg.JournalSync,
		GroupCommit:   c.cfg.GroupCommit,
		CommitLatency: c.cfg.CommitLatency,
		Metrics:       c.reg,
		Restore:       restore,
	}
	if c.cfg.Logf != nil {
		lg, shard := c.cfg.Logf, ShardName(i)
		scfg.Logf = func(format string, args ...any) {
			lg("["+shard+"] "+format, args...)
		}
	}
	if jp := c.journalPath(i); jp != "" {
		jf, err := OpenJournalFile(jp)
		if err != nil {
			return err
		}
		scfg.Journal = jf
		c.journals[i] = jf
	}
	sup, err := NewSupervisor(scfg)
	if err != nil {
		if c.journals[i] != nil {
			c.journals[i].Close()
			c.journals[i] = nil
		}
		return fmt.Errorf("shard %d: %w", i, err)
	}
	if restore != nil && c.journals[i] != nil {
		// Crash-recovery contract: drop the torn tail replay refused, then
		// append after the replayed prefix.
		if err := c.journals[i].Truncate(sup.RestoredJournalBytes()); err != nil {
			return fmt.Errorf("shard %d: truncating journal: %w", i, err)
		}
	}
	sup.SetEpoch(c.epoch)

	// A restored shard must come back at its old address — workers hold the
	// map by address, and the whole point of restore is that routing state
	// stays valid. The OS may briefly hold the port in TIME_WAIT after the
	// old listener closed, so retry the bind.
	addr := c.addrs[i]
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var bound string
	for attempt := 0; ; attempt++ {
		bound, err = sup.Start(addr)
		if err == nil {
			break
		}
		if attempt >= 100 {
			sup.Close()
			return fmt.Errorf("shard %d: rebinding %s: %w", i, addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	c.addrs[i] = bound
	c.sups[i] = sup
	c.down[i] = false
	return nil
}

// bumpEpoch advances the shard map epoch and pushes it to every live shard,
// so the next reply each shard sends tells its workers to re-resolve.
func (c *Cluster) bumpEpoch() {
	c.epoch++
	c.metrics.ringRebalances.Inc()
	for i, s := range c.sups {
		if s != nil && !c.down[i] {
			s.SetEpoch(c.epoch)
		}
	}
}

// ShardMap returns the current routing table.
func (c *Cluster) ShardMap() ShardMap {
	m := ShardMap{Epoch: c.epoch, VNodes: c.ring.VNodes(), Seed: c.ring.Seed()}
	for i := range c.sups {
		m.Shards = append(m.Shards, ShardInfo{
			ID: i, Name: ShardName(i), Addr: c.addrs[i], Down: c.down[i],
		})
	}
	return m
}

// Supervisor returns shard i's supervisor (nil while the shard is down).
func (c *Cluster) Supervisor(i int) *Supervisor { return c.sups[i] }

// Addr returns shard i's listen address (stable across kill/restore).
func (c *Cluster) Addr(i int) string { return c.addrs[i] }

// Epoch returns the current shard-map epoch.
func (c *Cluster) Epoch() uint64 { return c.epoch }

// KillShard crash-stops shard i: its listener and connections drop, its
// journal file handle closes (as a crash would), and the shard map epoch
// bumps so surviving shards tell workers to re-resolve. The shard's tasks
// wait — unserved, never migrated — until RestoreShard replays the journal.
func (c *Cluster) KillShard(i int) error {
	if c.sups[i] == nil || c.down[i] {
		return fmt.Errorf("platform: shard %d is not running", i)
	}
	err := c.sups[i].Close()
	if c.journals[i] != nil {
		c.journals[i].Close()
		c.journals[i] = nil
	}
	c.sups[i] = nil
	c.down[i] = true
	c.bumpEpoch()
	return err
}

// RestoreShard brings a killed shard back at its old address: the journal
// is read back, replayed through verification (byte-identical restore — a
// torn tail from the crash is tolerated and truncated), and the shard
// resumes serving exactly the work its journal does not already certify.
func (c *Cluster) RestoreShard(i int) error {
	if !c.down[i] {
		return fmt.Errorf("platform: shard %d is not down", i)
	}
	var restore io.Reader = bytes.NewReader(nil)
	if jp := c.journalPath(i); jp != "" {
		data, err := os.ReadFile(jp)
		if err != nil {
			return fmt.Errorf("shard %d: reading journal: %w", i, err)
		}
		restore = bytes.NewReader(data)
	}
	if err := c.startShard(i, restore); err != nil {
		return err
	}
	c.bumpEpoch()
	return nil
}

// Wait blocks until every live shard's task subset is fully certified. A
// shard that is down when Wait begins (or goes down while waiting) is
// skipped; callers restore it and Wait again.
func (c *Cluster) Wait() {
	for i, s := range c.sups {
		if s != nil && !c.down[i] {
			s.Wait()
		}
	}
}

// Close shuts every live shard down and closes the journals.
func (c *Cluster) Close() error {
	var first error
	for i, s := range c.sups {
		if s != nil && !c.down[i] {
			if err := s.Close(); err != nil && first == nil {
				first = err
			}
			c.sups[i] = nil
		}
		if c.journals[i] != nil {
			c.journals[i].Close()
			c.journals[i] = nil
		}
	}
	return first
}

// Export returns every live shard's audit export (see Supervisor.Export).
func (c *Cluster) Export() []agg.ShardExport {
	var out []agg.ShardExport
	for i, s := range c.sups {
		if s != nil && !c.down[i] {
			out = append(out, s.Export())
		}
	}
	return out
}

// Aggregate exports every live shard and merges the exports into the
// run-wide view: summed verdict counts, the global Wilson interval over
// all adjudicated copies, merged credits, and the per-shard assignment
// imbalance. The merge is timed into redundancy_aggregator_merge_seconds.
func (c *Cluster) Aggregate() agg.Merged {
	start := time.Now()
	m := agg.Merge(c.Export(), 0)
	c.metrics.aggregateMerge.Observe(time.Since(start).Seconds())
	return m
}

// Export snapshots this supervisor's audit state in the form the cluster
// aggregator merges: plain sums over the verdict stream plus the credit
// ledger keyed by participant name (IDs are shard-local; names are the
// cross-shard identity).
func (s *Supervisor) Export() agg.ShardExport {
	ex := agg.ShardExport{Shard: s.cfg.ShardID, Credits: map[string]int{}}
	type credit struct {
		participant int
		credit      int
	}
	var credits []credit
	s.audit.mu.Lock()
	for _, v := range s.audit.collector.Verdicts() {
		ex.Tasks++
		ex.Assignments += v.Copies
		ex.Bad += len(v.Suspects)
		if v.Accepted {
			ex.Accepted++
		}
		if v.MismatchDetected {
			ex.Mismatches++
			if v.Ringer {
				ex.RingersCaught++
			}
		}
	}
	for _, e := range s.audit.credits.Leaderboard() {
		credits = append(credits, credit{e.Participant, e.Credit})
	}
	s.audit.mu.Unlock()
	s.ident.mu.Lock()
	for _, cr := range credits {
		name := s.ident.names[cr.participant]
		if name == "" {
			name = fmt.Sprintf("participant-%d", cr.participant)
		}
		ex.Credits[name] += cr.credit
	}
	s.ident.mu.Unlock()
	return ex
}

package platform

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"redundancy/internal/dist"
	"redundancy/internal/plan"
)

// simplePlan builds a fresh n-task, 2-copies-per-task plan. Snapshot tests
// need a new plan per supervisor because revisions mutate plans in place.
func simplePlan(t *testing.T, n float64) *plan.Plan {
	t.Helper()
	p, err := plan.FromDistribution(dist.Simple(n), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// syntheticJournal writes 2 unanimous results for tasks [0, full) and one
// partial result for tasks [full, full+partial) — a deterministic journal
// with adjudicated and pending state, no TCP required.
func syntheticJournal(full, partial int) *bytes.Buffer {
	var buf bytes.Buffer
	for t := 0; t < full+partial; t++ {
		v := uint64(t)*2654435761 + 13
		fmt.Fprintf(&buf, `{"task":%d,"copy":0,"participant":1,"value":%d}`+"\n", t, v)
		if t < full {
			fmt.Fprintf(&buf, `{"task":%d,"copy":1,"participant":2,"value":%d}`+"\n", t, v)
		}
	}
	return &buf
}

// TestSnapshotRestoreEquivalence is the core compaction-correctness claim:
// restoring from a snapshot alone yields byte-identical certification
// state — and an identically ordered assignment queue — as replaying the
// full uncompacted journal it covers.
func TestSnapshotRestoreEquivalence(t *testing.T) {
	const full, partial = 300, 40
	journal := syntheticJournal(full, partial)

	supA, err := NewSupervisor(SupervisorConfig{
		Plan: simplePlan(t, full+partial), Iters: 5, Seed: 9,
		Restore: bytes.NewReader(journal.Bytes()),
	})
	if err != nil {
		t.Fatal(err)
	}
	snapA, err := supA.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	supB, err := NewSupervisor(SupervisorConfig{
		Plan: simplePlan(t, full+partial), Iters: 5, Seed: 9,
		Restore: bytes.NewReader(snapA),
	})
	if err != nil {
		t.Fatalf("restoring from snapshot: %v", err)
	}
	snapB, err := supB.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapA, snapB) {
		t.Fatalf("snapshot restore is not byte-identical:\nfull replay: %s\nsnapshot:    %s", snapA, snapB)
	}
	if supA.restored != supB.restored {
		t.Errorf("restored counts differ: full replay %d, snapshot %d", supA.restored, supB.restored)
	}
	if want := 2*full + partial; supB.restored != want {
		t.Errorf("restored %d results, want %d", supB.restored, want)
	}
	sumA, sumB := supA.Summary(), supB.Summary()
	sumA.Participants, sumB.Participants = 0, 0 // compared below
	if !reflect.DeepEqual(sumA, sumB) {
		t.Errorf("summaries diverge:\nfull replay: %+v\nsnapshot:    %+v", sumA, sumB)
	}
	if a, b := supA.ident.nextID, supB.ident.nextID; a != b {
		t.Errorf("participant high-water marks differ: %d vs %d", a, b)
	}

	// The remaining assignments must come out of both queues in the same
	// order — the ready pools are identical, not merely equal as sets.
	qa, qb := supA.lease.queue, supB.lease.queue
	if qa.Issued() != qb.Issued() || qa.Total() != qb.Total() {
		t.Fatalf("queue accounting diverges: issued %d/%d, total %d/%d",
			qa.Issued(), qb.Issued(), qa.Total(), qb.Total())
	}
	for i := 0; ; i++ {
		a, okA := qa.Next()
		b, okB := qb.Next()
		if okA != okB || a != b {
			t.Fatalf("queue order diverges at pop %d: %+v (ok=%v) vs %+v (ok=%v)", i, a, okA, b, okB)
		}
		if !okA {
			break
		}
	}
}

// TestSnapshotRestoredSupervisorFinishes proves a snapshot-restored
// supervisor is live, not just consistent: workers complete the remaining
// assignments and every task certifies.
func TestSnapshotRestoredSupervisorFinishes(t *testing.T) {
	const full, partial = 50, 10
	journal := syntheticJournal(full, partial)
	sup1, err := NewSupervisor(SupervisorConfig{
		Plan: simplePlan(t, full+partial), Iters: 5, Seed: 3,
		Restore: bytes.NewReader(journal.Bytes()),
	})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := sup1.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	sup2, err := NewSupervisor(SupervisorConfig{
		Plan: simplePlan(t, full+partial), Iters: 5, Seed: 3,
		Restore: bytes.NewReader(snap),
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := sup2.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sup2.Close()
	if _, err := RunWorker(WorkerConfig{Addr: addr, Name: "finisher"}); err != nil {
		t.Fatal(err)
	}
	sup2.Wait()
	sum := sup2.Summary()
	// The synthetic journal's values are fabricated: fully-collected tasks
	// certify unanimously (redundancy cannot tell a unanimous lie from the
	// truth), while the partial tasks mismatch when the honest finisher's
	// real value disagrees with the fabricated first copy.
	if sum.Verify.Tasks != full+partial || sum.Verify.Accepted != full {
		t.Errorf("final state after snapshot restore: %+v", sum.Verify)
	}
	if sum.Verify.MismatchDetected != partial {
		t.Errorf("mismatches %d, want %d (honest finisher vs fabricated partials)",
			sum.Verify.MismatchDetected, partial)
	}
}

// TestSnapshotSoakRestoreEquivalence is the scale version of the
// equivalence test — a >=100k-result journal (scaled down under the race
// detector) — and the compaction payoff smoke: restoring from the
// snapshot must not be slower than replaying the full history it stands
// in for (in practice it is faster by orders of magnitude; full replay
// pays a linear pool scan per record).
func TestSnapshotSoakRestoreEquivalence(t *testing.T) {
	full, partial := 50_000, 100 // 100_100 journaled results
	if raceEnabled {
		full = 5_000 // race instrumentation makes full replay quadratic-slow
	}
	journal := syntheticJournal(full, partial)

	startA := time.Now()
	supA, err := NewSupervisor(SupervisorConfig{
		Plan: simplePlan(t, float64(full+partial)), Iters: 5, Seed: 11,
		Restore: bytes.NewReader(journal.Bytes()),
	})
	if err != nil {
		t.Fatal(err)
	}
	fullReplay := time.Since(startA)
	snapA, err := supA.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	startB := time.Now()
	supB, err := NewSupervisor(SupervisorConfig{
		Plan: simplePlan(t, float64(full+partial)), Iters: 5, Seed: 11,
		Restore: bytes.NewReader(snapA),
	})
	if err != nil {
		t.Fatal(err)
	}
	snapRestore := time.Since(startB)

	snapB, err := supB.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapA, snapB) {
		t.Fatalf("soak: snapshot restore diverged from full replay (%d vs %d bytes)", len(snapA), len(snapB))
	}
	if want := 2*full + partial; supB.restored != want {
		t.Errorf("soak restored %d results, want %d", supB.restored, want)
	}
	t.Logf("replay of %d results: full journal %v, snapshot %v (%d-byte snapshot)",
		2*full+partial, fullReplay, snapRestore, len(snapA))
	if snapRestore > fullReplay {
		t.Errorf("snapshot restore (%v) slower than full replay (%v)", snapRestore, fullReplay)
	}
}

// TestLiveCompactionEndToEnd runs a real computation over TCP with
// periodic compacting snapshots, then proves the compacted journal file
// restores a supervisor byte-identical to the live one — while the journal
// stayed a fraction of the run's history.
func TestLiveCompactionEndToEnd(t *testing.T) {
	for _, groupCommit := range []bool{false, true} {
		name := "inline"
		if groupCommit {
			name = "group-commit"
		}
		t.Run(name, func(t *testing.T) {
			const tasks = 150 // 300 results
			path := filepath.Join(t.TempDir(), "journal.jsonl")
			jf, err := OpenJournalFile(path)
			if err != nil {
				t.Fatal(err)
			}
			defer jf.Close()
			sup, err := NewSupervisor(SupervisorConfig{
				Plan: simplePlan(t, tasks), Iters: 5, Seed: 7,
				Journal: jf, JournalSync: true, GroupCommit: groupCommit,
				SnapshotInterval: 40, Compact: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			addr, err := sup.Start("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []string{"a", "b"} {
				go RunWorker(WorkerConfig{Addr: addr, Name: w})
			}
			sup.Wait()
			if err := sup.Close(); err != nil {
				t.Fatal(err)
			}
			liveSnap, err := sup.Snapshot()
			if err != nil {
				t.Fatal(err)
			}

			snap := sup.Metrics().Snapshot()
			if v, _ := snap.Value("redundancy_journal_snapshots_total"); v == 0 {
				t.Error("no snapshots recorded")
			}
			if v, _ := snap.Value("redundancy_journal_compacted_records_total"); v == 0 {
				t.Error("no compacted records recorded")
			}

			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
			if !strings.HasPrefix(lines[0], `{"snapshot":`) {
				t.Fatalf("compacted journal does not start with a snapshot: %.80s", lines[0])
			}
			// The journal holds one snapshot plus at most the records that
			// arrived after the last compaction — not the run's history.
			if len(lines) > 150 {
				t.Errorf("compacted journal holds %d lines for a %d-result run", len(lines), 2*tasks)
			}

			sup2, err := NewSupervisor(SupervisorConfig{
				Plan: simplePlan(t, tasks), Iters: 5, Seed: 7,
				Restore: bytes.NewReader(data),
			})
			if err != nil {
				t.Fatalf("restoring compacted journal: %v", err)
			}
			restoredSnap, err := sup2.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(liveSnap, restoredSnap) {
				t.Errorf("compacted restore diverged from live state (%d vs %d bytes)",
					len(liveSnap), len(restoredSnap))
			}
			if sup2.restored != 2*tasks {
				t.Errorf("restored %d results from compacted journal, want %d", sup2.restored, 2*tasks)
			}
			if !sup2.lease.queue.Done() {
				t.Error("compacted restore left assignments outstanding on a finished run")
			}
		})
	}
}

// TestSnapshotHeadMidStreamAndTorn pins the replay rules: a snapshot
// installs only at the journal head, covered duplicates after it are
// skipped without double-counting, a mid-stream snapshot is ignored, and
// a torn snapshot tail is tolerated like any torn final line.
func TestSnapshotHeadMidStreamAndTorn(t *testing.T) {
	rec0 := `{"task":0,"copy":0,"participant":1,"value":7}` + "\n"
	rec1 := `{"task":0,"copy":1,"participant":2,"value":7}` + "\n"
	rec2 := `{"task":1,"copy":0,"participant":1,"value":9}` + "\n"

	base, err := NewSupervisor(SupervisorConfig{
		Plan: simplePlan(t, 5), Iters: 5, Restore: strings.NewReader(rec0 + rec1),
	})
	if err != nil {
		t.Fatal(err)
	}
	snapLine, err := base.Snapshot() // one verdict (task 0), results=2
	if err != nil {
		t.Fatal(err)
	}

	t.Run("head snapshot with covered duplicates", func(t *testing.T) {
		journal := string(snapLine) + rec0 + rec1 + rec2
		sup, err := NewSupervisor(SupervisorConfig{
			Plan: simplePlan(t, 5), Iters: 5, Restore: strings.NewReader(journal),
		})
		if err != nil {
			t.Fatal(err)
		}
		if sup.restored != 3 {
			t.Errorf("restored %d, want 3 (2 covered + 1 fresh)", sup.restored)
		}
		if st := sup.Summary(); st.Verify.Tasks != 1 {
			t.Errorf("verdicts %d, want 1", st.Verify.Tasks)
		}
	})

	t.Run("mid-stream snapshot skipped", func(t *testing.T) {
		journal := rec0 + string(snapLine) + rec1
		sup, err := NewSupervisor(SupervisorConfig{
			Plan: simplePlan(t, 5), Iters: 5, Restore: strings.NewReader(journal),
		})
		if err != nil {
			t.Fatal(err)
		}
		if sup.restored != 2 {
			t.Errorf("restored %d, want 2", sup.restored)
		}
		got, err := sup.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, snapLine) {
			t.Errorf("state after mid-stream skip diverges from the snapshot's own state")
		}
	})

	t.Run("torn snapshot tail tolerated", func(t *testing.T) {
		journal := rec0 + string(snapLine[:len(snapLine)-10])
		sup, err := NewSupervisor(SupervisorConfig{
			Plan: simplePlan(t, 5), Iters: 5, Restore: strings.NewReader(journal),
		})
		if err != nil {
			t.Fatalf("torn snapshot tail not tolerated: %v", err)
		}
		if sup.restored != 1 {
			t.Errorf("restored %d, want 1", sup.restored)
		}
		if got, want := sup.RestoredJournalBytes(), int64(len(rec0)); got != want {
			t.Errorf("valid prefix %d, want %d", got, want)
		}
	})

	t.Run("torn snapshot followed by data aborts", func(t *testing.T) {
		journal := string(snapLine[:len(snapLine)-10]) + "\n" + rec0
		_, err := NewSupervisor(SupervisorConfig{
			Plan: simplePlan(t, 5), Iters: 5, Restore: strings.NewReader(journal),
		})
		if err == nil || !strings.Contains(err.Error(), "corrupt journal record") {
			t.Fatalf("interior torn snapshot accepted (err=%v)", err)
		}
	})

	t.Run("inconsistent snapshot rejected", func(t *testing.T) {
		bad := `{"snapshot":{"results":5,"max_participant":1,"verdicts":[` +
			`{"task":0,"copies":2,"accepted":true,"value":7,"contributors":[1,2]}]}}` + "\n"
		_, err := NewSupervisor(SupervisorConfig{
			Plan: simplePlan(t, 5), Iters: 5, Restore: strings.NewReader(bad),
		})
		if err == nil || !strings.Contains(err.Error(), "snapshot") {
			t.Fatalf("inconsistent snapshot accepted (err=%v)", err)
		}
	})
}

// TestSnapshotCarriesRevisions pins the journal-first revision ordering
// across compaction: a snapshot must replay its revisions before bulk
// queue completion, or verdicts whose copies only exist because of a
// promotion could not be installed.
func TestSnapshotCarriesRevisions(t *testing.T) {
	revLine := `{"revision":{"seq":0,"phat":0.2,"upper":0.4,"promotions":[{"task":0,"from":2,"to":3}]}}` + "\n"
	results := `{"task":0,"copy":0,"participant":1,"value":7}` + "\n" +
		`{"task":0,"copy":1,"participant":2,"value":7}` + "\n" +
		`{"task":0,"copy":2,"participant":3,"value":7}` + "\n"

	sup1, err := NewSupervisor(SupervisorConfig{
		Plan: simplePlan(t, 5), Iters: 5, Restore: strings.NewReader(revLine + results),
	})
	if err != nil {
		t.Fatal(err)
	}
	if sup1.RevisionsApplied() != 1 {
		t.Fatalf("revisions applied %d, want 1", sup1.RevisionsApplied())
	}
	snap, err := sup1.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(snap), `"revisions"`) {
		t.Fatalf("snapshot does not carry the applied revision: %s", snap)
	}

	sup2, err := NewSupervisor(SupervisorConfig{
		Plan: simplePlan(t, 5), Iters: 5, Restore: bytes.NewReader(snap),
	})
	if err != nil {
		t.Fatalf("snapshot with promoted-task verdict failed to restore: %v", err)
	}
	if sup2.RevisionsApplied() != 1 {
		t.Errorf("revisions applied after snapshot restore: %d, want 1", sup2.RevisionsApplied())
	}
	got, err := sup2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap, got) {
		t.Error("revision-carrying snapshot did not round-trip byte-identically")
	}
	// A later revision's sequence numbering continues from the snapshot's.
	if sup2.audit.revApplied != 1 {
		t.Errorf("revision sequence resumed at %d, want 1", sup2.audit.revApplied)
	}
}

// TestSnapshotConfigValidation pins the constructor's gating.
func TestSnapshotConfigValidation(t *testing.T) {
	var buf bytes.Buffer
	cases := []struct {
		name string
		cfg  SupervisorConfig
		want string
	}{
		{"negative interval", SupervisorConfig{SnapshotInterval: -1, Journal: &buf}, "negative SnapshotInterval"},
		{"interval without journal", SupervisorConfig{SnapshotInterval: 5}, "requires a Journal"},
		{"interval under holdback policy", SupervisorConfig{SnapshotInterval: 5, Journal: &buf, Policy: 1}, "free policy"},
		{"compact without interval", SupervisorConfig{Compact: true, Journal: &buf}, "requires SnapshotInterval"},
		{"compact without replaceable journal", SupervisorConfig{Compact: true, SnapshotInterval: 5, Journal: &buf}, "atomic replacement"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.cfg.Plan = simplePlan(t, 5)
			_, err := NewSupervisor(tc.cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err=%v, want mention of %q", err, tc.want)
			}
		})
	}
}

// TestJournalFileReplaceWith unit-tests the compaction primitive: contents
// replaced atomically, later appends extend the new contents, and the old
// bytes are gone from disk.
func TestJournalFileReplaceWith(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	jf, err := OpenJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	if _, err := jf.Write([]byte("old-1\nold-2\n")); err != nil {
		t.Fatal(err)
	}
	if err := jf.ReplaceWith([]byte("snap\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := jf.Write([]byte("new-1\n")); err != nil {
		t.Fatal(err)
	}
	if err := jf.Sync(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "snap\nnew-1\n" {
		t.Fatalf("journal contents %q, want %q", data, "snap\nnew-1\n")
	}
	if size, err := jf.Size(); err != nil || size != int64(len("snap\nnew-1\n")) {
		t.Errorf("Size()=%d,%v", size, err)
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("compaction left %d files in the journal directory", len(entries))
	}
}

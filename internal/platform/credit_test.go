package platform

import (
	"math"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"redundancy/internal/dist"
	"redundancy/internal/plan"
	"redundancy/internal/sched"
)

func TestCreditLedgerBasics(t *testing.T) {
	l := NewCreditLedger()
	l.Award([]int{1, 2})
	l.Award([]int{1})
	if l.Credit(1) != 2 || l.Credit(2) != 1 || l.Credit(3) != 0 {
		t.Errorf("credits: %d %d %d", l.Credit(1), l.Credit(2), l.Credit(3))
	}
	if l.Total() != 3 {
		t.Errorf("total = %d", l.Total())
	}
	l.Revoke(1)
	if l.Credit(1) != 0 {
		t.Error("revocation did not zero the standing")
	}
	if l.Total() != 1 {
		t.Errorf("total after revoke = %d", l.Total())
	}
	// Credit awarded after revocation stays zeroed.
	l.Award([]int{1})
	if l.Credit(1) != 0 {
		t.Error("revoked participant regained credit")
	}
	lb := l.Leaderboard()
	want := []CreditEntry{{Participant: 2, Credit: 1}, {Participant: 1, Credit: 0, Revoked: true}}
	if !reflect.DeepEqual(lb, want) {
		t.Errorf("leaderboard = %+v, want %+v", lb, want)
	}
}

func TestCreditOnlyForCertifiedWork(t *testing.T) {
	// One honest worker completes everything: its credit equals the number
	// of certified tasks, not the number of assignments — credit counts
	// verified contributions.
	p, err := plan.Balanced(200, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sup, addr := startSupervisor(t, p, sched.Free)
	if _, err := RunWorker(WorkerConfig{Addr: addr, Name: "solo"}); err != nil {
		t.Fatal(err)
	}
	sup.Wait()
	sum := sup.Summary()
	if len(sum.Credits) != 1 {
		t.Fatalf("leaderboard size %d", len(sum.Credits))
	}
	// The solo worker contributed every copy of every certified task, so
	// its credit equals total accepted-task contributions = assignments.
	if sum.Credits[0].Credit != p.TotalAssignments() {
		t.Errorf("credit %d, want %d contributions", sum.Credits[0].Credit, p.TotalAssignments())
	}
}

func TestConvictionRevokesCredit(t *testing.T) {
	// A lone cheater earns credit on single-copy tasks until a ringer
	// convicts it — at which point its standing is zeroed.
	p := &plan.Plan{
		Epsilon:            0.5,
		N:                  20,
		Counts:             []int{20},
		TailMultiplicity:   2,
		Ringers:            4,
		RingerMultiplicity: 2,
	}
	sup, addr := startSupervisor(t, p, sched.Free)
	coal := NewCoalition(1, 3)
	_, _ = RunWorker(WorkerConfig{Addr: addr, Name: "cheater", Cheat: coal.CheatFunc()})
	if _, err := RunWorker(WorkerConfig{Addr: addr, Name: "honest"}); err != nil {
		t.Fatal(err)
	}
	sup.Wait()
	sum := sup.Summary()
	for _, e := range sum.Credits {
		if e.Participant == 0 { // the cheater registered first
			if !e.Revoked || e.Credit != 0 {
				t.Errorf("cheater standing = %+v, want revoked zero", e)
			}
		}
	}
}

func TestDeadlineReclaimKeepsComputationLive(t *testing.T) {
	p, err := plan.FromDistribution(dist.Simple(20), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := NewSupervisor(SupervisorConfig{
		Plan:     p,
		WorkKind: "hashchain",
		Iters:    5,
		Deadline: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := sup.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sup.Close() })

	// The stalling participant takes one assignment and holds it forever;
	// the supervisor must reclaim it so the fast worker can finish.
	conn := dialAndTakeOneAssignment(t, addr)
	defer conn.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := RunWorker(WorkerConfig{Addr: addr, Name: "fast"}); err != nil {
			t.Error(err)
		}
	}()
	done := make(chan struct{})
	go func() { sup.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("computation stalled despite deadline reclaim")
	}
	wg.Wait()
	if sum := sup.Summary(); sum.Verify.Tasks != 20 {
		t.Errorf("adjudicated %d tasks", sum.Verify.Tasks)
	}
}

// dialAndTakeOneAssignment registers a raw client, requests one assignment,
// and returns with the connection still open and the result never sent.
func dialAndTakeOneAssignment(t *testing.T, addr string) interface{ Close() error } {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	codec := NewCodec(conn)
	if err := codec.Send(Message{Type: MsgRegister, Name: "staller"}); err != nil {
		t.Fatal(err)
	}
	reg, err := codec.Recv()
	if err != nil || reg.Type != MsgRegistered {
		t.Fatalf("register: %+v %v", reg, err)
	}
	if err := codec.Send(Message{Type: MsgRequestWork, ParticipantID: reg.ParticipantID}); err != nil {
		t.Fatal(err)
	}
	work, err := codec.Recv()
	if err != nil || work.Type != MsgWork {
		t.Fatalf("work: %+v %v", work, err)
	}
	return conn
}

func TestResolveMismatchesSalvagesResults(t *testing.T) {
	// Simple redundancy + one cheater out of two workers: mismatches
	// abound. With ResolveMismatches on, every disputed task ends with the
	// supervisor's own correct value.
	p, err := plan.FromDistribution(dist.Simple(40), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := NewSupervisor(SupervisorConfig{
		Plan:              p,
		WorkKind:          "hashchain",
		Iters:             10,
		ResolveMismatches: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := sup.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sup.Close() })

	coal := NewCoalition(0.5, 11) // cheat on about half the tasks
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		var cheat CheatFunc
		if w == 0 {
			cheat = coal.CheatFunc()
		}
		go func(cheat CheatFunc) {
			defer wg.Done()
			_, _ = RunWorker(WorkerConfig{Addr: addr, Name: "w", Cheat: cheat})
		}(cheat)
	}
	wg.Wait()
	sup.Wait()

	sum := sup.Summary()
	if sum.Verify.MismatchDetected == 0 {
		t.Fatal("expected mismatches with a half-cheating worker")
	}
	if sum.Resolved == 0 {
		t.Fatal("no disputes resolved despite ResolveMismatches")
	}
	// Every task must end with a certified value. Wrong values can survive
	// only as unanimous lies — tasks whose two copies both landed on the
	// cheating worker (the paper's core vulnerability; resolution cannot
	// see them because there is no mismatch). Everything disputed must
	// have been recomputed to the true value.
	work, _ := Work("hashchain")
	wrong := 0
	for task := 0; task < 40; task++ {
		v, ok := sup.CertifiedValue(task)
		if !ok {
			t.Errorf("task %d has no certified value", task)
			continue
		}
		if v != work(TaskSeed(task), 10) {
			wrong++
		}
	}
	if wrong != sum.WrongResults {
		t.Errorf("found %d wrong certified values, summary says %d", wrong, sum.WrongResults)
	}
	// The resolution count must cover every non-ringer mismatch.
	if sum.Resolved != sum.Verify.MismatchDetected-sum.Verify.RingersCaught {
		t.Errorf("resolved %d of %d disputed tasks",
			sum.Resolved, sum.Verify.MismatchDetected-sum.Verify.RingersCaught)
	}
}

// TestQuantizedMatchingOnPlatform runs the float workload with a worker
// that perturbs results below the quantization threshold: exact matching
// flags false mismatches, quantized matching certifies everything.
func TestQuantizedMatchingOnPlatform(t *testing.T) {
	// Perturb the float64 result in its last few mantissa bits: well below
	// 6 significant decimal digits.
	noise := func(taskID int, honest uint64) uint64 {
		f := math.Float64frombits(honest)
		return math.Float64bits(f * (1 + 1e-12))
	}
	run := func(digits int) Summary {
		p, err := plan.FromDistribution(dist.Simple(40), 0.5)
		if err != nil {
			t.Fatal(err)
		}
		sup, err := NewSupervisor(SupervisorConfig{
			Plan: p, WorkKind: "logistic", Iters: 40, ResultDigits: digits,
		})
		if err != nil {
			t.Fatal(err)
		}
		addr, err := sup.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer sup.Close()
		var wg sync.WaitGroup
		for w := 0; w < 2; w++ {
			wg.Add(1)
			var cheat CheatFunc
			if w == 1 {
				cheat = noise // a "noisy FPU" host, not a cheater
			}
			go func(cheat CheatFunc) {
				defer wg.Done()
				_, _ = RunWorker(WorkerConfig{Addr: addr, Name: "w", Cheat: cheat})
			}(cheat)
		}
		wg.Wait()
		sup.Wait()
		return sup.Summary()
	}

	exact := run(0)
	if exact.Verify.MismatchDetected == 0 {
		t.Error("exact matching should flag the noisy host's results")
	}
	quant := run(6)
	if quant.Verify.MismatchDetected != 0 {
		t.Errorf("quantized matching flagged %d false mismatches", quant.Verify.MismatchDetected)
	}
	if quant.Verify.Accepted != 40 {
		t.Errorf("certified %d of 40 tasks", quant.Verify.Accepted)
	}
	if quant.WrongResults != 0 {
		t.Errorf("%d results misreported as wrong despite tolerance", quant.WrongResults)
	}
}

package platform

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"redundancy/internal/adapt"
	"redundancy/internal/dist"
	"redundancy/internal/faults"
	"redundancy/internal/health"
	"redundancy/internal/obs"
	"redundancy/internal/plan"
)

// metricValue polls reg until the named series reaches want or the timeout
// expires, returning the last observed value.
func metricValue(reg *obs.Registry, name string, labels ...string) float64 {
	v, _ := reg.Snapshot().Value(name, labels...)
	return v
}

func waitMetric(t *testing.T, reg *obs.Registry, want float64, timeout time.Duration, name string, labels ...string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if v := metricValue(reg, name, labels...); v >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s%v never reached %v (at %v)", name, labels, want, metricValue(reg, name, labels...))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// honestValue computes the true answer for a task the way a worker would.
func honestValue(t *testing.T, kind string, taskID, iters int) uint64 {
	t.Helper()
	fn, err := Work(kind)
	if err != nil {
		t.Fatal(err)
	}
	return fn(TaskSeed(taskID), iters)
}

// TestSpeculativeFirstResultWins drives the speculative tier by hand: a
// straggler leases one copy and sits on it, a fast participant completes
// everything else (feeding the latency roster), the sweeper flags the
// stuck lease, the fast participant receives the clone and wins the race,
// and the straggler's eventual submission is rejected as a duplicate —
// credited exactly once, end to end.
func TestSpeculativeFirstResultWins(t *testing.T) {
	p, err := plan.FromDistribution(dist.Simple(40), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var events bytes.Buffer
	reg := obs.NewRegistry()
	sup, err := NewSupervisor(SupervisorConfig{
		Plan: p, WorkKind: "hashchain", Iters: 10, Seed: 3,
		Deadline: 4 * time.Second, SpeculatePct: 0.9,
		Metrics: reg, Events: obs.NewSink(&events),
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := sup.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sup.Close() })

	// The straggler leases one copy and goes quiet.
	_, slow := dialCodec(t, addr)
	w1 := roundTrip(t, slow, Message{Type: MsgRegister, Name: "straggler"})
	if w1.Type != MsgRegistered {
		t.Fatalf("register: %+v", w1)
	}
	slowID := w1.ParticipantID
	stuck := roundTrip(t, slow, Message{Type: MsgRequestWork, ParticipantID: slowID})
	if stuck.Type != MsgWork {
		t.Fatalf("lease: %+v", stuck)
	}

	// The fast participant drains the pool, populating the
	// completion-latency sample window past MinLatencySamples. Once the
	// sweeper flags the straggler's lease, a batch will carry the
	// speculative clone of exactly that stuck copy — parked get_work
	// requests wake on the flagging sweep, so the clone simply shows up
	// inside the ordinary lease loop.
	_, fast := dialCodec(t, addr)
	w2 := roundTrip(t, fast, Message{Type: MsgRegister, Name: "fast"})
	fastID := w2.ParticipantID
	completed := 0
	var clone *WorkItem
	deadline := time.Now().Add(30 * time.Second)
	for clone == nil {
		if time.Now().After(deadline) {
			t.Fatalf("speculative clone never issued (completed %d, spec metric %v)",
				completed, metricValue(reg, "redundancy_speculative_issued_total"))
		}
		m := roundTrip(t, fast, Message{Type: MsgGetWork, ParticipantID: fastID, Batch: 8})
		if m.Type != MsgWorkBatch {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		results := make([]ResultItem, 0, len(m.Work))
		for _, it := range m.Work {
			it := it
			if it.TaskID == stuck.TaskID && it.Copy == stuck.Copy {
				clone = &it // the speculative duplicate of the stuck lease
				continue
			}
			results = append(results, ResultItem{
				TaskID: it.TaskID, Copy: it.Copy,
				Value: honestValue(t, m.Kind, it.TaskID, m.Iters),
			})
		}
		if len(results) > 0 {
			ack := roundTrip(t, fast, Message{Type: MsgResultBatch, ParticipantID: fastID, Results: results})
			if ack.Type != MsgBatchAck {
				t.Fatalf("batch ack: %+v", ack)
			}
			completed += len(results)
		}
	}
	if completed < 20 {
		t.Fatalf("clone issued after only %d completions; the quantile gate should need 20 samples", completed)
	}
	if v := metricValue(reg, "redundancy_speculative_issued_total"); v != 1 {
		t.Errorf("speculative_issued = %v, want 1", v)
	}

	// The clone wins the race...
	ack := roundTrip(t, fast, Message{
		Type: MsgResult, ParticipantID: fastID,
		TaskID: clone.TaskID, Copy: clone.Copy,
		Value: honestValue(t, "hashchain", clone.TaskID, 10),
	})
	if ack.Type != MsgAck {
		t.Fatalf("clone result rejected: %+v", ack)
	}
	if v := metricValue(reg, "redundancy_speculative_wins_total"); v != 1 {
		t.Errorf("speculative_wins = %v, want 1", v)
	}

	// ...and the straggler's late submission is adjudicated exactly once:
	// rejected as a duplicate, never double-credited.
	late := roundTrip(t, slow, Message{
		Type: MsgResult, ParticipantID: slowID,
		TaskID: stuck.TaskID, Copy: stuck.Copy,
		Value: honestValue(t, "hashchain", stuck.TaskID, 10),
	})
	if late.Type != MsgError || late.Reason != ReasonDuplicate {
		t.Fatalf("loser's submission got %+v, want %s", late, ReasonDuplicate)
	}
	if v := metricValue(reg, "redundancy_speculative_wasted_total"); v != 1 {
		t.Errorf("speculative_wasted = %v, want 1", v)
	}

	// Finish whatever the pool still holds (the clone may have arrived
	// before the drain completed).
	deadline = time.Now().Add(30 * time.Second)
drain:
	for {
		if time.Now().After(deadline) {
			t.Fatal("final drain never reached done")
		}
		m := roundTrip(t, fast, Message{Type: MsgGetWork, ParticipantID: fastID, Batch: 8})
		switch m.Type {
		case MsgDone:
			break drain
		case MsgNoWork:
			time.Sleep(10 * time.Millisecond)
		case MsgWorkBatch:
			results := make([]ResultItem, 0, len(m.Work))
			for _, it := range m.Work {
				results = append(results, ResultItem{
					TaskID: it.TaskID, Copy: it.Copy,
					Value: honestValue(t, m.Kind, it.TaskID, m.Iters),
				})
			}
			if ack := roundTrip(t, fast, Message{Type: MsgResultBatch, ParticipantID: fastID, Results: results}); ack.Type != MsgBatchAck {
				t.Fatalf("drain batch ack: %+v", ack)
			}
		default:
			t.Fatalf("drain: unexpected %+v", m)
		}
	}

	sup.Wait()
	sum := sup.Summary()
	if sum.Verify.Accepted != p.N {
		t.Errorf("certified %d of %d", sum.Verify.Accepted, p.N)
	}
	total := 0
	for _, e := range sum.Credits {
		total += e.Credit
		if e.Participant == slowID && e.Credit != 0 {
			t.Errorf("race loser holds %d credits, want 0", e.Credit)
		}
	}
	if total != p.TotalAssignments() {
		t.Errorf("total credit %d, want %d (double or lost credit)", total, p.TotalAssignments())
	}
	if !strings.Contains(events.String(), `"event":"assignment_speculated"`) {
		t.Error("no assignment_speculated event emitted")
	}
}

// TestDisconnectDeadlineReclaimOverlap is the regression test for the two
// reclaim paths racing over one lease: a copy reclaimed by the deadline
// sweeper must not be reclaimed again when its holder's connection dies,
// and vice versa. Each direction must count — and reissue — exactly once,
// or queue accounting corrupts and the run never completes.
func TestDisconnectDeadlineReclaimOverlap(t *testing.T) {
	p, err := plan.FromDistribution(dist.Simple(5), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	sup, err := NewSupervisor(SupervisorConfig{
		Plan: p, WorkKind: "hashchain", Iters: 10, Seed: 1,
		Deadline: 150 * time.Millisecond, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := sup.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sup.Close() })

	// Direction 1: deadline fires first, then the connection dies. The
	// disconnect must find nothing left to reclaim.
	conn1, c1 := dialCodec(t, addr)
	r1 := roundTrip(t, c1, Message{Type: MsgRegister, Name: "d1"})
	if w := roundTrip(t, c1, Message{Type: MsgRequestWork, ParticipantID: r1.ParticipantID}); w.Type != MsgWork {
		t.Fatalf("lease: %+v", w)
	}
	waitMetric(t, reg, 1, 3*time.Second, "redundancy_assignments_reclaimed_total", "deadline")
	conn1.Close()
	time.Sleep(100 * time.Millisecond) // let the serve goroutine run its reclaim
	if v := metricValue(reg, "redundancy_assignments_reclaimed_total", "disconnect"); v != 0 {
		t.Fatalf("deadline-swept lease reclaimed again on disconnect (%v times)", v)
	}

	// Direction 2: the connection dies first, then the deadline passes.
	// The sweeper must find nothing left to reclaim.
	conn2, c2 := dialCodec(t, addr)
	r2 := roundTrip(t, c2, Message{Type: MsgRegister, Name: "d2"})
	if w := roundTrip(t, c2, Message{Type: MsgRequestWork, ParticipantID: r2.ParticipantID}); w.Type != MsgWork {
		t.Fatalf("lease: %+v", w)
	}
	conn2.Close()
	waitMetric(t, reg, 1, 3*time.Second, "redundancy_assignments_reclaimed_total", "disconnect")
	time.Sleep(400 * time.Millisecond) // several sweeps past the lease's deadline
	if v := metricValue(reg, "redundancy_assignments_reclaimed_total", "deadline"); v != 1 {
		t.Fatalf("disconnect-reclaimed lease reclaimed again by the sweeper (deadline count %v)", v)
	}

	// An honest worker finishes the computation; exact accounting proves
	// neither copy was double-queued or lost.
	if _, err := RunWorker(WorkerConfig{Addr: addr, Name: "finisher"}); err != nil {
		t.Fatal(err)
	}
	sup.Wait()
	sum := sup.Summary()
	if sum.Verify.Accepted != p.N {
		t.Errorf("certified %d of %d", sum.Verify.Accepted, p.N)
	}
	total := 0
	for _, e := range sum.Credits {
		total += e.Credit
	}
	if total != p.TotalAssignments() {
		t.Errorf("total credit %d, want %d", total, p.TotalAssignments())
	}
	// 5 first issues + exactly one reissue per reclaimed copy.
	if v := metricValue(reg, "redundancy_assignments_issued_total"); v != float64(p.TotalAssignments()+2) {
		t.Errorf("assignments issued %v, want %d (each reclaimed copy reissued exactly once)",
			v, p.TotalAssignments()+2)
	}
}

// quarantinePlan builds a small plan whose regular tasks have multiplicity
// 3 and 4 (so a lone cheater is always the strict-majority suspect, never
// an even split) plus ringers for the probation diet: 6 tasks @3, 16 tail
// tasks @4, 4 ringers @5.
func quarantinePlan(t *testing.T) *plan.Plan {
	t.Helper()
	d := &dist.Distribution{}
	d.SetCount(3, 6)
	for i := 4; i <= 23; i++ {
		d.SetCount(i, 0.8)
	}
	p, err := plan.FromDistribution(d, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if p.TailMultiplicity != 4 || p.Ringers < 4 {
		t.Fatalf("plan shape drifted: tail mult %d, %d ringers", p.TailMultiplicity, p.Ringers)
	}
	return p
}

// TestQuarantineLifecycle walks a cheating participant through the whole
// health arc: circumstantial suspect verdicts accumulate to quarantine
// (regular leases refused, the outstanding lease reclaimed within one
// sweep), the probation clock re-admits it to ringer-only work, and a
// clean ringer streak restores full standing — with the event and metric
// trail proving every step.
func TestQuarantineLifecycle(t *testing.T) {
	p := quarantinePlan(t)
	var mu sync.Mutex
	var events bytes.Buffer
	reg := obs.NewRegistry()
	sup, err := NewSupervisor(SupervisorConfig{
		Plan: p, WorkKind: "hashchain", Iters: 10, Seed: 5,
		Metrics: reg, Events: obs.NewSink(&syncWriter{mu: &mu, w: &events}),
		Health: &health.Config{
			SuspectLimit: 3, Probation: 400 * time.Millisecond, ProbationRingers: 2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := sup.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sup.Close() })

	// Four manual participants: one future cheater, three honest.
	reg4 := func(name string) (net.Conn, *Codec, int) {
		conn, c := dialCodec(t, addr)
		w := roundTrip(t, c, Message{Type: MsgRegister, Name: name})
		if w.Type != MsgRegistered {
			t.Fatalf("register %s: %+v", name, w)
		}
		return conn, c, w.ParticipantID
	}
	_, mc, mID := reg4("mallory")
	var honestConn [3]net.Conn
	var honest [3]*Codec
	var honestID [3]int
	for i := range honest {
		honestConn[i], honest[i], honestID[i] = reg4(fmt.Sprintf("honest-%d", i))
	}

	// Phase 1: everyone batch-leases a slice of the pool.
	type copyKey struct{ task, copy int }
	mHeld := map[copyKey]bool{}
	mPerTask := map[int]int{}
	mb := roundTrip(t, mc, Message{Type: MsgGetWork, ParticipantID: mID, Batch: 8})
	if mb.Type != MsgWorkBatch || len(mb.Work) != 8 {
		t.Fatalf("cheater batch lease: %+v", mb)
	}
	for _, it := range mb.Work {
		mHeld[copyKey{it.TaskID, it.Copy}] = true
		mPerTask[it.TaskID]++
	}
	type heldItem struct {
		task, copy int
	}
	var hHeld [3][]heldItem
	for i := range honest {
		hb := roundTrip(t, honest[i], Message{Type: MsgGetWork, ParticipantID: honestID[i], Batch: 4})
		if hb.Type != MsgWorkBatch {
			t.Fatalf("honest %d batch lease: %+v", i, hb)
		}
		for _, it := range hb.Work {
			hHeld[i] = append(hHeld[i], heldItem{it.TaskID, it.Copy})
		}
	}

	// The cheater corrupts exactly SuspectLimit regular tasks where it
	// holds exactly one copy (so the honest majority always outs it, and
	// no suspect verdict can land after probation begins and knock it back
	// into quarantine), answers everything else honestly, and keeps one
	// lease outstanding so the quarantine reclaim has something to take
	// back. Sort the held set so the outstanding pick and the cheat
	// choices are deterministic.
	held := make([]copyKey, 0, len(mHeld))
	for k := range mHeld {
		held = append(held, k)
	}
	sort.Slice(held, func(i, j int) bool {
		if held[i].task != held[j].task {
			return held[i].task < held[j].task
		}
		return held[i].copy < held[j].copy
	})
	// Outstanding: prefer a copy the cheat rule would skip anyway (a
	// ringer or a doubled-up task) so it never costs us a cheat slot.
	outIdx := 0
	for i, k := range held {
		if k.task >= p.N || mPerTask[k.task] > 1 {
			outIdx = i
			break
		}
	}
	cheatedTasks := 0
	for i, k := range held {
		if i == outIdx {
			continue
		}
		v := honestValue(t, "hashchain", k.task, 10)
		if k.task < p.N && mPerTask[k.task] == 1 && cheatedTasks < 3 {
			v ^= 0xDEADBEEFCAFEBABE
			cheatedTasks++
		}
		ack := roundTrip(t, mc, Message{Type: MsgResult, ParticipantID: mID, TaskID: k.task, Copy: k.copy, Value: v})
		if ack.Type != MsgAck {
			t.Fatalf("cheater submission refused: %+v", ack)
		}
	}
	if cheatedTasks < 3 {
		t.Fatalf("only %d singleton tasks cheated on; raise the lease count (need >= SuspectLimit 3)", cheatedTasks)
	}
	for i := range honest {
		for _, h := range hHeld[i] {
			ack := roundTrip(t, honest[i], Message{
				Type: MsgResult, ParticipantID: honestID[i],
				TaskID: h.task, Copy: h.copy, Value: honestValue(t, "hashchain", h.task, 10),
			})
			if ack.Type != MsgAck {
				t.Fatalf("honest submission refused: %+v", ack)
			}
		}
	}

	// Phase 2: honest participants batch-lease the rest of the pool,
	// submitting regular copies but holding every ringer copy they draw,
	// so the cheated tasks adjudicate (firing quarantine) while a reserve
	// of ringer work survives for the probation diet. Their held ringer
	// copies requeue when they disconnect below.
	var hSeen [3]map[copyKey]bool
	for i := range hSeen {
		hSeen[i] = map[copyKey]bool{}
	}
	deadline := time.Now().Add(30 * time.Second)
	for metricValue(reg, "redundancy_quarantines_entered_total") < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("quarantine never fired (suspect verdicts incomplete?)")
		}
		progressed := false
		for i := range honest {
			m := roundTrip(t, honest[i], Message{Type: MsgGetWork, ParticipantID: honestID[i], Batch: 16})
			if m.Type != MsgWorkBatch {
				continue
			}
			for _, it := range m.Work {
				k := copyKey{it.TaskID, it.Copy}
				if hSeen[i][k] {
					continue // a held ringer copy re-issued by get_work
				}
				hSeen[i][k] = true
				progressed = true
				if it.TaskID >= p.N {
					continue // hold ringer copies back for probation
				}
				ack := roundTrip(t, honest[i], Message{
					Type: MsgResult, ParticipantID: honestID[i],
					TaskID: it.TaskID, Copy: it.Copy, Value: honestValue(t, "hashchain", it.TaskID, 10),
				})
				if ack.Type != MsgAck {
					t.Fatalf("honest submission refused: %+v", ack)
				}
			}
		}
		if !progressed {
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Quarantined: no new leases on either path, and the outstanding lease
	// is reclaimed within a sweep.
	if m := roundTrip(t, mc, Message{Type: MsgRequestWork, ParticipantID: mID}); m.Type != MsgNoWork {
		t.Fatalf("quarantined participant leased regular work: %+v", m)
	}
	if m := roundTrip(t, mc, Message{Type: MsgGetWork, ParticipantID: mID, Batch: 4}); m.Type != MsgNoWork {
		t.Fatalf("quarantined participant leased a batch: %+v", m)
	}
	waitMetric(t, reg, 1, 3*time.Second, "redundancy_assignments_reclaimed_total", "quarantine")

	// Release the honest workers' held ringer copies back to the queue so
	// probation has a diet to draw from.
	for i := range honestConn {
		honestConn[i].Close()
	}

	// Probation: the clock promotes the cheater to ringer-only work.
	probeState := func() health.State {
		for _, ph := range sup.HealthSnapshot() {
			if ph.Participant == mID {
				return ph.State
			}
		}
		return health.Healthy
	}
	deadline = time.Now().Add(5 * time.Second)
	for probeState() != health.Probation {
		if time.Now().After(deadline) {
			t.Fatalf("probation never began (state %v)", probeState())
		}
		time.Sleep(20 * time.Millisecond)
	}
	var ringers []WorkItem
	ringerSeen := map[copyKey]bool{} // get_work re-issues held leases every call
	deadline = time.Now().Add(5 * time.Second)
	for len(ringers) < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("probation fed only %d ringer copies, need 2", len(ringers))
		}
		m := roundTrip(t, mc, Message{Type: MsgGetWork, ParticipantID: mID, Batch: 2})
		if m.Type != MsgWorkBatch {
			time.Sleep(20 * time.Millisecond)
			continue
		}
		for _, it := range m.Work {
			if it.TaskID < p.N {
				t.Fatalf("probation leased regular task %d (ringers start at %d)", it.TaskID, p.N)
			}
			if !ringerSeen[copyKey{it.TaskID, it.Copy}] {
				ringerSeen[copyKey{it.TaskID, it.Copy}] = true
				ringers = append(ringers, it)
			}
		}
	}
	for _, it := range ringers {
		ack := roundTrip(t, mc, Message{
			Type: MsgResult, ParticipantID: mID,
			TaskID: it.TaskID, Copy: it.Copy, Value: honestValue(t, "hashchain", it.TaskID, 10),
		})
		if ack.Type != MsgAck {
			t.Fatalf("probation ringer result refused: %+v", ack)
		}
	}

	// Phase 3: honest participants finish everything (including the other
	// copies of the probation ringers), which fires the clean ringer
	// verdicts that re-admit the cheater.
	doneCh := make(chan struct{})
	go func() { sup.Wait(); close(doneCh) }()
	var fin [3]*Codec
	var finID [3]int
	for i := range fin {
		_, fin[i], finID[i] = reg4(fmt.Sprintf("finisher-%d", i))
	}
	finishers := make(chan error, 3)
	for i := range fin {
		go func(i int) {
			c, id := fin[i], finID[i]
			for {
				m := roundTrip(t, c, Message{Type: MsgRequestWork, ParticipantID: id})
				switch m.Type {
				case MsgDone:
					finishers <- nil
					return
				case MsgNoWork:
					time.Sleep(10 * time.Millisecond)
					continue
				case MsgWork:
					ack := roundTrip(t, c, Message{
						Type: MsgResult, ParticipantID: id,
						TaskID: m.TaskID, Copy: m.Copy, Value: honestValue(t, "hashchain", m.TaskID, 10),
					})
					if ack.Type != MsgAck {
						finishers <- fmt.Errorf("finisher %d: submission refused: %+v", i, ack)
						return
					}
				default:
					finishers <- fmt.Errorf("finisher %d: unexpected %+v", i, m)
					return
				}
			}
		}(i)
	}
	for i := 0; i < 3; i++ {
		if err := <-finishers; err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-doneCh:
	case <-time.After(30 * time.Second):
		t.Fatal("computation never completed after re-admission")
	}

	waitMetric(t, reg, 1, 5*time.Second, "redundancy_quarantines_exited_total")
	if st := probeState(); st != health.Healthy {
		t.Errorf("re-admitted participant state %v, want Healthy", st)
	}

	// The event trail must show the full arc in order.
	mu.Lock()
	lines := strings.Split(events.String(), "\n")
	mu.Unlock()
	arc := []string{EvParticipantQuarantined, EvParticipantProbation, EvParticipantReadmitted}
	idx := 0
	for _, line := range lines {
		if idx == len(arc) {
			break
		}
		var ev map[string]any
		if json.Unmarshal([]byte(line), &ev) != nil {
			continue
		}
		if ev["event"] == arc[idx] {
			if pid, _ := ev["participant"].(float64); int(pid) != mID {
				t.Errorf("%s names participant %v, want %d", arc[idx], ev["participant"], mID)
			}
			idx++
		}
	}
	if idx != len(arc) {
		t.Errorf("event trail incomplete: found %d of %v", idx, arc)
	}
	sum := sup.Summary()
	if sum.Verify.MismatchDetected < 3 {
		t.Errorf("mismatches detected %d, want >= 3", sum.Verify.MismatchDetected)
	}
	if len(sum.Convicted) != 0 {
		t.Errorf("circumstantial cheater was convicted: %v", sum.Convicted)
	}
}

// syncWriter serializes event-sink writes with the test's own reads.
type syncWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// TestQuarantineFeedsEstimator checks the control-plane coupling: a
// quarantine transition counts as adversary evidence in the adaptive p̂
// estimator, exactly like a caught cheat.
func TestQuarantineFeedsEstimator(t *testing.T) {
	p, err := plan.Balanced(50, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := NewSupervisor(SupervisorConfig{
		Plan: p, WorkKind: "hashchain", Iters: 10, Seed: 1,
		Health: &health.Config{SuspectLimit: 3},
		Adapt:  &adapt.Config{TargetEpsilon: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	before, on := sup.AdaptiveEstimate()
	if !on {
		t.Fatal("adaptive estimator not enabled")
	}
	sup.pushTransition(health.Transition{
		Participant: 7, From: health.Healthy, To: health.Quarantined, Reason: "suspects",
	}, false)
	after, _ := sup.AdaptiveEstimate()
	if !(after.PHat > before.PHat) {
		t.Errorf("quarantine did not move p̂: before %v after %v", before.PHat, after.PHat)
	}
	sup.Close()
}

// TestStallChaosSoak is the straggler-era acceptance soak: the full chaos
// battery plus the stall mode (connections freeze silently and thaw),
// heterogeneous worker speed models with a straggler mixture, speculative
// reissue enabled, and an abrupt mid-run kill + journal restore. The
// ending invariants are exact: every task certified, total credit equals
// total assignments (no speculative duplicate ever double-credited, no
// work lost across the restart), and the journal holds every accepted
// result exactly once.
func TestStallChaosSoak(t *testing.T) {
	p, err := plan.Balanced(120, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faults.New(faults.Config{
		Seed:     11,
		DialDrop: 0.04, ReadDrop: 0.02, WriteDrop: 0.02,
		Corrupt: 0.01, ShortWrite: 0.01,
		Stall: 0.03, StallFor: 120 * time.Millisecond,
		Latency: 200 * time.Microsecond, Jitter: 300 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	jpath := filepath.Join(t.TempDir(), "journal.jsonl")
	jf1, err := os.OpenFile(jpath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	reg1 := obs.NewRegistry()
	sup1, err := NewSupervisor(SupervisorConfig{
		Plan: p, WorkKind: "hashchain", Iters: 10, Seed: 13,
		Journal: jf1, JournalSync: true,
		IOTimeout: 2 * time.Second, Deadline: 2 * time.Second,
		SpeculatePct: 0.85,
		WrapListener: inj.Listener, Metrics: reg1,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := sup1.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			batch := 16
			if i == 3 {
				batch = 1
			}
			for !stop.Load() {
				RunWorker(WorkerConfig{
					Addr: addr, Name: fmt.Sprintf("stall-%d", i),
					Reconnect: true, MaxReconnects: 25, BatchSize: batch,
					BackoffBase: 2 * time.Millisecond, BackoffMax: 50 * time.Millisecond,
					Seed: uint64(i + 1),
					Speed: &SpeedModel{
						Jitter:     2 * time.Millisecond,
						StragglerP: 0.08, StragglerDelay: 250 * time.Millisecond,
					},
					Dial: func(a string) (net.Conn, error) { return inj.Dial("tcp", a) },
				})
				time.Sleep(5 * time.Millisecond)
			}
		}(i)
	}
	fail := func(format string, args ...any) {
		t.Helper()
		stop.Store(true)
		wg.Wait()
		t.Fatalf(format, args...)
	}

	// Phase 1: accumulate real progress, then kill the supervisor abruptly.
	deadline := time.Now().Add(90 * time.Second)
	for {
		if v, _ := reg1.Snapshot().Value("redundancy_journal_records_total"); v >= 30 {
			break
		}
		if time.Now().After(deadline) {
			fail("phase 1: fewer than 30 results journaled in time")
		}
		time.Sleep(2 * time.Millisecond)
	}
	sup1.Close()
	jf1.Close()

	// A crash mid-append leaves a torn final record.
	tear, err := os.OpenFile(jpath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	tear.WriteString(`{"task":0,"cop`)
	tear.Close()

	// Phase 2: restore at the same address, speculation still on.
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	jf2, err := os.OpenFile(jpath, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer jf2.Close()
	reg2 := obs.NewRegistry()
	sup2, err := NewSupervisor(SupervisorConfig{
		Plan: p, WorkKind: "hashchain", Iters: 10, Seed: 13,
		Restore: bytes.NewReader(data), Journal: jf2, JournalSync: true,
		IOTimeout: 2 * time.Second, Deadline: 2 * time.Second,
		SpeculatePct: 0.85,
		WrapListener: inj.Listener, Metrics: reg2,
	})
	if err != nil {
		fail("restore from stall-chaos journal: %v", err)
	}
	valid := sup2.RestoredJournalBytes()
	if valid <= 0 || valid > int64(len(data))-int64(len(`{"task":0,"cop`)) {
		fail("valid journal prefix %d of %d bytes does not exclude the torn tail", valid, len(data))
	}
	if err := jf2.Truncate(valid); err != nil {
		t.Fatal(err)
	}
	for try := 0; ; try++ {
		if _, err = sup2.Start(addr); err == nil {
			break
		}
		if try >= 100 {
			fail("could not rebind %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	waitDone := make(chan struct{})
	go func() { sup2.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(180 * time.Second):
		fail("stall soak never reached certification (journal: %v restored, %v live)",
			func() float64 { v, _ := reg2.Snapshot().Value("redundancy_journal_restored_total"); return v }(),
			func() float64 { v, _ := reg2.Snapshot().Value("redundancy_journal_records_total"); return v }())
	}
	stop.Store(true)
	wg.Wait()
	sup2.Close()

	sum := sup2.Summary()
	tasks := p.N + p.Ringers
	if sum.Verify.Tasks != tasks || sum.Verify.Accepted != tasks {
		t.Errorf("certified %d/%d tasks, want all %d", sum.Verify.Accepted, sum.Verify.Tasks, tasks)
	}
	if sum.Verify.MismatchDetected != 0 || sum.WrongResults != 0 {
		t.Errorf("honest workers under stalls produced mismatches: %+v wrong=%d",
			sum.Verify, sum.WrongResults)
	}
	total := 0
	for _, e := range sum.Credits {
		total += e.Credit
	}
	if total != p.TotalAssignments() {
		t.Errorf("total credit %d, want %d (a speculative duplicate or the restart double-credited work)",
			total, p.TotalAssignments())
	}
	if sum.Restored < 30 {
		t.Errorf("restored %d results, want the >=30 journaled before the kill", sum.Restored)
	}
	snap := reg2.Snapshot()
	if v, _ := snap.Value("redundancy_journal_records_total"); sum.Restored+int(v) != p.TotalAssignments() {
		t.Errorf("journal holds %d restored + %v live records, want %d total", sum.Restored, v, p.TotalAssignments())
	}
	if inj.Injected() == 0 {
		t.Error("fault injector never fired; the soak proved nothing")
	}
	specIssued, _ := snap.Value("redundancy_speculative_issued_total")
	specWins, _ := snap.Value("redundancy_speculative_wins_total")
	specWasted, _ := snap.Value("redundancy_speculative_wasted_total")
	t.Logf("stall soak: %d faults, %d restored, speculation issued=%v wins=%v wasted=%v",
		inj.Injected(), sum.Restored, specIssued, specWins, specWasted)
}

// TestProbationExpiresWhenRingerStarved regresses the fleet-wide
// quarantine deadlock: a plan with no ringer tasks (dist.Simple mints
// none) quarantines every participant at once, so nobody is left to
// drain the regular queue and nobody can earn ringer-proven
// re-admission. The probation clock must expire instead
// ("probation_expired"), re-admit the fleet, and let the run finish.
func TestProbationExpiresWhenRingerStarved(t *testing.T) {
	p, err := plan.FromDistribution(dist.Simple(6), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if p.Ringers != 0 {
		t.Fatalf("dist.Simple plan minted %d ringers; the starved scenario needs zero", p.Ringers)
	}
	var mu sync.Mutex
	var events bytes.Buffer
	reg := obs.NewRegistry()
	sup, err := NewSupervisor(SupervisorConfig{
		Plan: p, WorkKind: "hashchain", Iters: 10, Seed: 11,
		Metrics: reg, Events: obs.NewSink(&syncWriter{mu: &mu, w: &events}),
		Health: &health.Config{
			SuspectLimit: 1, Probation: 300 * time.Millisecond, ProbationRingers: 1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := sup.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sup.Close() })

	reg2 := func(name string) (*Codec, int) {
		_, c := dialCodec(t, addr)
		w := roundTrip(t, c, Message{Type: MsgRegister, Name: name})
		if w.Type != MsgRegistered {
			t.Fatalf("register %s: %+v", name, w)
		}
		return c, w.ParticipantID
	}
	w1, id1 := reg2("liar")
	w2, id2 := reg2("honest")

	// The liar takes one copy; the honest participant leases everything
	// else and completes only the sibling copy of the liar's task,
	// holding the rest so real work is still queued when the axe falls.
	lease := roundTrip(t, w1, Message{Type: MsgGetWork, ParticipantID: id1, Batch: 1})
	if lease.Type != MsgWorkBatch || len(lease.Work) != 1 {
		t.Fatalf("liar lease: %+v", lease)
	}
	target := lease.Work[0]
	rest := roundTrip(t, w2, Message{Type: MsgGetWork, ParticipantID: id2, Batch: 16})
	if rest.Type != MsgWorkBatch || len(rest.Work) != p.TotalAssignments()-1 {
		t.Fatalf("honest lease: %+v", rest)
	}
	var sibling *WorkItem
	for i := range rest.Work {
		if rest.Work[i].TaskID == target.TaskID {
			sibling = &rest.Work[i]
		}
	}
	if sibling == nil {
		t.Fatalf("no sibling copy of task %d in the honest lease", target.TaskID)
	}
	ack := roundTrip(t, w2, Message{Type: MsgResultBatch, ParticipantID: id2, Results: []ResultItem{{
		TaskID: sibling.TaskID, Copy: sibling.Copy,
		Value: honestValue(t, "hashchain", sibling.TaskID, 10),
	}}})
	if ack.Type != MsgBatchAck {
		t.Fatalf("sibling ack: %+v", ack)
	}

	// The lie completes the tuple: a mismatch, circumstantial suspects
	// for both holders, and — at SuspectLimit 1 — a fleet-wide
	// quarantine with ten copies reclaimed back into the queue.
	ack = roundTrip(t, w1, Message{
		Type: MsgResult, ParticipantID: id1,
		TaskID: target.TaskID, Copy: target.Copy,
		Value: honestValue(t, "hashchain", target.TaskID, 10) ^ 0xBAD,
	})
	if ack.Type != MsgAck {
		t.Fatalf("cheat ack: %+v", ack)
	}
	waitMetric(t, reg, 2, 5*time.Second, "redundancy_quarantines_entered_total")
	waitMetric(t, reg, float64(p.TotalAssignments()-2), 5*time.Second,
		"redundancy_assignments_reclaimed_total", "quarantine")

	// With no ringers to prove themselves on, both must ride the
	// probation clock back in and then finish the run. A worker that
	// never re-admits spins on no_work here until the test times out.
	doneCh := make(chan struct{})
	go func() { sup.Wait(); close(doneCh) }()
	drain := make(chan error, 2)
	for _, wk := range []struct {
		c  *Codec
		id int
	}{{w1, id1}, {w2, id2}} {
		go func(c *Codec, id int) {
			deadline := time.Now().Add(30 * time.Second)
			for {
				if time.Now().After(deadline) {
					drain <- fmt.Errorf("participant %d still starved after 30s", id)
					return
				}
				m := roundTrip(t, c, Message{Type: MsgGetWork, ParticipantID: id, Batch: 4})
				switch m.Type {
				case MsgDone:
					drain <- nil
					return
				case MsgNoWork:
					time.Sleep(10 * time.Millisecond)
				case MsgWorkBatch:
					results := make([]ResultItem, 0, len(m.Work))
					for _, it := range m.Work {
						results = append(results, ResultItem{
							TaskID: it.TaskID, Copy: it.Copy,
							Value: honestValue(t, "hashchain", it.TaskID, 10),
						})
					}
					ack := roundTrip(t, c, Message{Type: MsgResultBatch, ParticipantID: id, Results: results})
					if ack.Type != MsgBatchAck {
						drain <- fmt.Errorf("participant %d: batch refused: %+v", id, ack)
						return
					}
				default:
					drain <- fmt.Errorf("participant %d: unexpected %+v", id, m)
					return
				}
			}
		}(wk.c, wk.id)
	}
	for i := 0; i < 2; i++ {
		if err := <-drain; err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-doneCh:
	case <-time.After(30 * time.Second):
		t.Fatal("computation never completed after clock re-admission")
	}

	waitMetric(t, reg, 2, 5*time.Second, "redundancy_quarantines_exited_total")
	for _, id := range []int{id1, id2} {
		for _, ph := range sup.HealthSnapshot() {
			if ph.Participant == id && ph.State != health.Healthy {
				t.Errorf("participant %d state %v, want Healthy", id, ph.State)
			}
		}
	}

	// Both re-admissions must carry the clock-expiry reason — no ringer
	// existed to earn the proven kind.
	mu.Lock()
	lines := strings.Split(events.String(), "\n")
	mu.Unlock()
	expired := 0
	for _, line := range lines {
		var ev map[string]any
		if json.Unmarshal([]byte(line), &ev) != nil {
			continue
		}
		if ev["event"] == EvParticipantReadmitted {
			if ev["reason"] != "probation_expired" {
				t.Errorf("readmission reason %v, want probation_expired", ev["reason"])
			}
			expired++
		}
	}
	if expired != 2 {
		t.Errorf("found %d probation_expired re-admissions, want 2", expired)
	}
	sum := sup.Summary()
	if sum.Verify.MismatchDetected != 1 {
		t.Errorf("mismatches detected %d, want 1", sum.Verify.MismatchDetected)
	}
	if len(sum.Convicted) != 0 {
		t.Errorf("circumstantial suspects were convicted: %v", sum.Convicted)
	}
}

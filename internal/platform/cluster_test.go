package platform

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"redundancy/internal/adapt"
	"redundancy/internal/agg"
	"redundancy/internal/obs"
	"redundancy/internal/plan"
	"redundancy/internal/ring"
)

// TestClusterPartition pins the sharding invariants everything else rests
// on: every global task lands on exactly one shard (disjoint and covering),
// the partition is a pure function of (plan, shards, vnodes, seed), and it
// matches what an independent ring rebuild — the worker's view — computes.
func TestClusterPartition(t *testing.T) {
	p := mustClusterPlan(t, 200)
	c, err := NewCluster(ClusterConfig{
		Plan: p, Shards: 4, Seed: 42, WorkKind: "hashchain", Iters: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	seen := make(map[int]int)
	for i, part := range c.parts {
		for _, sp := range part {
			if prev, dup := seen[sp.ID]; dup {
				t.Fatalf("task %d on shards %d and %d", sp.ID, prev, i)
			}
			seen[sp.ID] = i
		}
	}
	specs := p.Tasks()
	if len(seen) != len(specs) {
		t.Fatalf("partition covers %d of %d tasks", len(seen), len(specs))
	}
	// Global IDs, global copies: the subset must carry the plan's spec
	// verbatim, or TaskSeed/ringer truth would diverge across shards.
	for _, sp := range specs {
		shard := seen[sp.ID]
		found := false
		for _, got := range c.parts[shard] {
			if got == sp {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("task %d spec mutated in shard %d partition", sp.ID, shard)
		}
	}

	// The worker's independently rebuilt ring must agree on every owner.
	m := c.ShardMap()
	r, err := ring.New(ring.Config{VNodes: m.VNodes, Seed: m.Seed}, shardNames(m)...)
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range specs {
		owner, _ := r.LookupUint64(uint64(sp.ID))
		if owner != ShardName(seen[sp.ID]) {
			t.Fatalf("task %d: worker ring says %s, cluster put it on %s",
				sp.ID, owner, ShardName(seen[sp.ID]))
		}
	}
}

// TestClusterConfigValidation pins the guard rails: the Tasks override is
// incompatible with per-shard adaptation and snapshots, and degenerate
// cluster configs fail loudly.
func TestClusterConfigValidation(t *testing.T) {
	p := mustClusterPlan(t, 50)
	if _, err := NewCluster(ClusterConfig{Plan: p, Shards: 0}); err == nil {
		t.Error("0 shards accepted")
	}
	if _, err := NewCluster(ClusterConfig{Shards: 2}); err == nil {
		t.Error("nil plan accepted")
	}
	if _, err := NewSupervisor(SupervisorConfig{
		Plan: p, Tasks: p.Tasks(), Adapt: &adapt.Config{TargetEpsilon: 0.5},
	}); err == nil {
		t.Error("Tasks+Adapt accepted: a shard must not re-plan the global tail")
	}
	if _, err := NewSupervisor(SupervisorConfig{
		Plan: p, Tasks: p.Tasks(), SnapshotInterval: 10,
	}); err == nil {
		t.Error("Tasks+SnapshotInterval accepted")
	}
	if _, err := NewSupervisor(SupervisorConfig{
		Plan: p, Tasks: []plan.TaskSpec{},
	}); err == nil {
		t.Error("empty Tasks accepted")
	}
	if _, err := NewSupervisor(SupervisorConfig{Plan: p, CommitLatency: -time.Millisecond}); err == nil {
		t.Error("negative CommitLatency accepted")
	}
	if _, err := NewSupervisor(SupervisorConfig{Plan: p, CommitLatency: time.Millisecond}); err == nil {
		t.Error("CommitLatency without a Journal accepted")
	}
}

// TestCommitLatencyPacesCommits runs a tiny 2-shard cluster against a
// modeled slow durable store (the platformbench -shards regime) on both
// journal paths — inline appends and the group committer — and checks
// the model holds the floor it promises: a shard that adjudicated its
// subset must have spent at least one modeled commit's worth of wall
// time per journal batch it wrote, and the run still certifies
// everything exactly once.
func TestCommitLatencyPacesCommits(t *testing.T) {
	if testing.Short() {
		t.Skip("paced commits; skipping in -short")
	}
	for _, groupCommit := range []bool{false, true} {
		p := mustClusterPlan(t, 30)
		const lat = 2 * time.Millisecond
		c, err := NewCluster(ClusterConfig{
			Plan: p, Shards: 2, WorkKind: "hashchain", Iters: 5, MaxBatch: 8,
			JournalDir: t.TempDir(), CommitLatency: lat, GroupCommit: groupCommit,
		})
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				RunShardedWorker(WorkerConfig{
					Name: fmt.Sprintf("lat-%d-%v", i, groupCommit), BatchSize: 8, Seed: uint64(i + 1),
				}, c.ShardMap)
			}(i)
		}
		c.Wait()
		wg.Wait()
		elapsed := time.Since(start)
		merged := c.Aggregate()
		if merged.Tasks != len(p.Tasks()) {
			t.Errorf("groupCommit=%v: adjudicated %d tasks, want %d", groupCommit, merged.Tasks, len(p.Tasks()))
		}
		// The slowest shard's commit count floors the wall time. Commits
		// per shard is at least ceil(assignments/MaxBatch) on the inline
		// path; the group committer can coalesce concurrent batches, so
		// only one window is guaranteed. Use the weakest common floor.
		if elapsed < lat {
			t.Errorf("groupCommit=%v: run finished in %v, below a single %v commit", groupCommit, elapsed, lat)
		}
		if err := c.Close(); err != nil {
			t.Errorf("groupCommit=%v: Close: %v", groupCommit, err)
		}
	}
}

// TestShardedSmoke runs a 2-shard cluster to completion with sharded
// workers and checks the global ledger: every task certified exactly once
// across the cluster, total credit equals the plan's assignment count,
// replies carried the epoch, and the shard-labeled counters partition the
// unlabeled totals.
func TestShardedSmoke(t *testing.T) {
	p := mustClusterPlan(t, 120)
	reg := obs.NewRegistry()
	c, err := NewCluster(ClusterConfig{
		Plan: p, Shards: 2, Seed: 7, WorkKind: "hashchain", Iters: 10,
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const workers = 4
	var wg sync.WaitGroup
	stats := make([]WorkerStats, workers)
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			stats[i], errs[i] = RunShardedWorker(WorkerConfig{
				Name: fmt.Sprintf("smoke-%d", i), BatchSize: 4, Seed: uint64(i + 1),
			}, c.ShardMap)
		}(i)
	}
	c.Wait()
	wg.Wait()

	completed := 0
	for i := range stats {
		if errs[i] != nil {
			t.Errorf("worker %d: %v", i, errs[i])
		}
		if stats[i].Epoch != 1 {
			t.Errorf("worker %d saw epoch %d, want 1 (no membership change)", i, stats[i].Epoch)
		}
		completed += stats[i].Completed
	}
	if completed != p.TotalAssignments() {
		t.Errorf("workers completed %d assignments, want %d", completed, p.TotalAssignments())
	}

	m := agg.Merge(c.Export(), 0)
	tasks := len(p.Tasks()) // real tasks + ringers, all adjudicated
	if m.Tasks != tasks || m.Accepted != tasks {
		t.Errorf("aggregated %d tasks (%d accepted), want %d certified", m.Tasks, m.Accepted, tasks)
	}
	if m.Assignments != p.TotalAssignments() {
		t.Errorf("aggregated %d adjudicated copies, want %d", m.Assignments, p.TotalAssignments())
	}
	total := 0
	for _, cr := range m.Credits {
		total += cr
	}
	if total != p.TotalAssignments() {
		t.Errorf("merged credit %d, want %d (lost or double-granted work)", total, p.TotalAssignments())
	}

	// Shared registry: the unlabeled family holds the cluster-wide total,
	// the shard_id-labeled mirrors attribute it, and the two must agree.
	snap := reg.Snapshot()
	issued, _ := snap.Value("redundancy_assignments_issued_total")
	var mirrored float64
	for i := 0; i < 2; i++ {
		v, ok := snap.Value("redundancy_shard_assignments_issued_total", ShardName(i))
		if !ok || v == 0 {
			t.Errorf("no shard_id series for %s", ShardName(i))
		}
		mirrored += v
		routed, _ := snap.Value("redundancy_shard_routed_total", ShardName(i))
		if routed == 0 {
			t.Errorf("no routed work recorded on %s", ShardName(i))
		}
	}
	if mirrored != issued {
		t.Errorf("shard mirrors sum to %v, unlabeled total %v", mirrored, issued)
	}
	if reb, _ := snap.Value("redundancy_ring_rebalances_total"); reb != 0 {
		t.Errorf("ring_rebalances_total = %v on a quiet cluster", reb)
	}
}

// TestShardChaosSoak is the acceptance soak for the sharded architecture:
// a 3-shard cluster with journaled shards and a cheating coalition loses
// shard 1 mid-run (crash: connections dropped, journal handle closed, a
// torn record appended), survivors keep serving, the shard is restored at
// the same address from a byte-identical journal replay, and the finished
// run's aggregated state — exactly-once credit, certified values, p̂ and
// the detection floor — matches an unsharded reference run of the same
// plan, seed, and adversary.
func TestShardChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak in -short mode")
	}
	p := mustClusterPlan(t, 150)
	reg := obs.NewRegistry()
	dir := t.TempDir()
	c, err := NewCluster(ClusterConfig{
		Plan: p, Shards: 3, Seed: 11, WorkKind: "hashchain", Iters: 10,
		JournalDir: dir, JournalSync: true, GroupCommit: true,
		Deadline: 2 * time.Second, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Every worker shares one coalition: the per-task cheat coin depends
	// only on (seed, taskID), so every copy of a task yields the same
	// value no matter which worker, shard, or schedule executed it. That
	// makes per-task verdicts a pure function of (plan, coalition) — the
	// property that lets an unsharded reference run reproduce the sharded
	// run's audit state exactly. The seed is chosen so no ringer is
	// cheat-marked: a unanimous coalition on a ringer would convict every
	// worker and strand that shard's queue, while unanimously wrong
	// regular tasks certify cleanly (the paper's undetectable worst case)
	// and keep the accounting deterministic.
	cheatSeed := findRegularOnlyCheatSeed(t, p, 0.25)
	coal := NewCoalition(0.25, cheatSeed)

	var mapMu sync.Mutex
	lookup := func() ShardMap {
		mapMu.Lock()
		defer mapMu.Unlock()
		return c.ShardMap()
	}

	const workers = 6
	var wg sync.WaitGroup
	stats := make([]WorkerStats, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := WorkerConfig{
				Name: fmt.Sprintf("soak-%d", i), BatchSize: 4, Seed: uint64(i + 1),
				Throttle: 2 * time.Millisecond, Cheat: coal.CheatFunc(),
			}
			stats[i], _ = RunShardedWorker(cfg, lookup)
		}(i)
	}

	// Let shard 1 accept some results, then crash it.
	victim := ShardName(1)
	deadline := time.Now().Add(30 * time.Second)
	for {
		v, _ := reg.Snapshot().Value("redundancy_shard_results_accepted_total", victim)
		if v >= 10 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard 1 never accepted 10 results (at %v)", v)
		}
		time.Sleep(5 * time.Millisecond)
	}
	mapMu.Lock()
	if err := c.KillShard(1); err != nil {
		mapMu.Unlock()
		t.Fatal(err)
	}
	mapMu.Unlock()

	// Survivors must keep serving while shard 1 is down.
	before0, _ := reg.Snapshot().Value("redundancy_shard_results_accepted_total", ShardName(0))
	before2, _ := reg.Snapshot().Value("redundancy_shard_results_accepted_total", ShardName(2))
	deadline = time.Now().Add(30 * time.Second)
	for {
		a0, _ := reg.Snapshot().Value("redundancy_shard_results_accepted_total", ShardName(0))
		a2, _ := reg.Snapshot().Value("redundancy_shard_results_accepted_total", ShardName(2))
		done0 := c.Supervisor(0) != nil && supDone(c.Supervisor(0))
		done2 := c.Supervisor(2) != nil && supDone(c.Supervisor(2))
		if (a0 > before0 || done0) && (a2 > before2 || done2) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("survivors made no progress during the kill window")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Crash realism: the dying process tore a record mid-append. Replay
	// must consume every complete record and refuse exactly the tail.
	jpath := filepath.Join(dir, "shard-1.jnl")
	pre, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	torn := []byte(`{"task":0,"cop`)
	f, err := os.OpenFile(jpath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	mapMu.Lock()
	if err := c.RestoreShard(1); err != nil {
		mapMu.Unlock()
		t.Fatal(err)
	}
	restoredAddr := c.Addr(1)
	mapMu.Unlock()

	// Byte-identical replay: the restored shard consumed precisely the
	// pre-crash journal (torn tail excluded and truncated away).
	sup1 := c.Supervisor(1)
	if got := sup1.RestoredJournalBytes(); got != int64(len(pre)) {
		t.Errorf("replay consumed %d journal bytes, want %d (torn tail of %d must be refused)",
			got, len(pre), len(torn))
	}
	if fi, err := os.Stat(jpath); err != nil || fi.Size() != int64(len(pre)) {
		t.Errorf("journal not truncated to replayed prefix: size %v, want %d", fi.Size(), len(pre))
	}
	if restored := sup1.Summary().Restored; restored < 10 {
		t.Errorf("restored shard replayed %d results, want >= 10", restored)
	}
	if c.Epoch() != 3 {
		t.Errorf("epoch %d after kill+restore, want 3", c.Epoch())
	}
	if reb, _ := reg.Snapshot().Value("redundancy_ring_rebalances_total"); reb != 2 {
		t.Errorf("ring_rebalances_total = %v, want 2", reb)
	}

	c.Wait()
	wg.Wait()

	// Routing stability: restore came back on the crashed shard's address.
	m := lookup()
	if m.Shards[1].Addr != restoredAddr || m.Shards[1].Down {
		t.Errorf("shard 1 not serving at its stable address: %+v", m.Shards[1])
	}
	var maxEpoch uint64
	for _, st := range stats {
		if st.Epoch > maxEpoch {
			maxEpoch = st.Epoch
		}
	}
	if maxEpoch != 3 {
		t.Errorf("workers saw max epoch %d, want 3 (rebalance not propagated)", maxEpoch)
	}

	// Global exactly-once accounting: every task adjudicated, every
	// assignment copy credited exactly once — across a crash.
	merged := c.Aggregate()
	if merged.Tasks != len(p.Tasks()) {
		t.Errorf("aggregated %d tasks, want %d", merged.Tasks, len(p.Tasks()))
	}
	if merged.Assignments != p.TotalAssignments() {
		t.Errorf("aggregated %d copies, want %d (lost or duplicated adjudication)",
			merged.Assignments, p.TotalAssignments())
	}
	credit := 0
	for _, cr := range merged.Credits {
		credit += cr
	}
	if credit != p.TotalAssignments() {
		t.Errorf("merged credit %d, want %d (lost or double-granted work across the crash)",
			credit, p.TotalAssignments())
	}
	for i := 0; i < 3; i++ {
		if conv := c.Supervisor(i).Summary().Convicted; len(conv) != 0 {
			t.Errorf("shard %d convicted %v; the regular-only cheat seed must convict nobody", i, conv)
		}
	}

	// Unsharded reference: same plan, same coalition coin, one
	// supervisor. Verdicts depend only on (plan, coalition), so the
	// sharded run must reproduce its certified values, estimate, and
	// detection floor bit-for-bit.
	refCoal := NewCoalition(0.25, cheatSeed)
	ref, err := NewSupervisor(SupervisorConfig{
		Plan: p, WorkKind: "hashchain", Iters: 10, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	refAddr, err := ref.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var rwg sync.WaitGroup
	for i := 0; i < workers; i++ {
		rwg.Add(1)
		go func(i int) {
			defer rwg.Done()
			cfg := WorkerConfig{
				Addr: refAddr, Name: fmt.Sprintf("soak-%d", i),
				BatchSize: 4, Seed: uint64(i + 1),
			}
			cfg.Cheat = refCoal.CheatFunc()
			RunWorker(cfg)
		}(i)
	}
	ref.Wait()
	rwg.Wait()
	defer ref.Close()

	refMerged := agg.Merge([]agg.ShardExport{ref.Export()}, 0)
	if merged.Estimate != refMerged.Estimate {
		t.Errorf("aggregated estimate %+v != unsharded reference %+v",
			merged.Estimate, refMerged.Estimate)
	}
	if merged.Mismatches != refMerged.Mismatches || merged.RingersCaught != refMerged.RingersCaught ||
		merged.Accepted != refMerged.Accepted || merged.Bad != refMerged.Bad {
		t.Errorf("aggregated verdict counts %+v != reference %+v", merged, refMerged)
	}
	refCredit := 0
	for _, cr := range refMerged.Credits {
		refCredit += cr
	}
	if credit != refCredit {
		t.Errorf("merged credit %d != reference credit %d", credit, refCredit)
	}
	// The coalition really cheated, and redundancy really could not see
	// it: both runs certify the same wrong values for the same tasks.
	wrong := 0
	for i := 0; i < 3; i++ {
		wrong += c.Supervisor(i).Summary().WrongResults
	}
	refWrong := ref.Summary().WrongResults
	if wrong == 0 || wrong != refWrong {
		t.Errorf("sharded run certified %d wrong values, reference %d (want equal and > 0)", wrong, refWrong)
	}
	shardedP, shardedNeed := merged.ReplanNeeded(p, 0.5)
	refP, refNeed := refMerged.ReplanNeeded(p, 0.5)
	if shardedP != refP || shardedNeed != refNeed {
		t.Errorf("detection floor (%v,%v) != reference (%v,%v)", shardedP, shardedNeed, refP, refNeed)
	}
	for _, sp := range p.Tasks() {
		shard, _ := ringOwnerIndex(c, sp.ID)
		v1, ok1 := c.Supervisor(shard).CertifiedValue(sp.ID)
		v2, ok2 := ref.CertifiedValue(sp.ID)
		if ok1 != ok2 || v1 != v2 {
			t.Errorf("task %d: sharded certified %v/%v, reference %v/%v", sp.ID, v1, ok1, v2, ok2)
		}
	}
	if merged.ImbalancePct > 60 {
		t.Errorf("per-shard assignment imbalance %.1f%% (3 shards, small plan); ring badly skewed",
			merged.ImbalancePct)
	}
	t.Logf("%s", merged.String())
	aggObs, _ := reg.Snapshot().Value("redundancy_aggregator_merge_seconds")
	if aggObs == 0 {
		t.Error("aggregator_merge_seconds recorded no observations")
	}
}

// supDone reports whether a supervisor's task subset has fully certified.
func supDone(s *Supervisor) bool {
	select {
	case <-s.done:
		return true
	default:
		return false
	}
}

// findRegularOnlyCheatSeed picks a coalition seed whose per-task cheat coin
// marks at least one regular task but no ringer — the deterministic,
// conviction-free adversary the chaos soak needs. The coin is a pure
// function of (seed, taskID), so scanning seeds is exact.
func findRegularOnlyCheatSeed(t *testing.T, p *plan.Plan, prob float64) uint64 {
	t.Helper()
	for seed := uint64(1); seed < 10_000; seed++ {
		probe := NewCoalition(prob, seed)
		marked, ringerMarked := 0, false
		for _, sp := range p.Tasks() {
			if !probe.cheatsOn(sp.ID) {
				continue
			}
			if sp.Ringer {
				ringerMarked = true
				break
			}
			marked++
		}
		if !ringerMarked && marked > 0 {
			return seed
		}
	}
	t.Fatal("no regular-only cheat seed below 10000")
	return 0
}

// ringOwnerIndex returns the shard index owning a task in cluster c.
func ringOwnerIndex(c *Cluster, task int) (int, bool) {
	owner, ok := c.ring.LookupUint64(uint64(task))
	if !ok {
		return 0, false
	}
	for i := 0; i < len(c.sups); i++ {
		if ShardName(i) == owner {
			return i, true
		}
	}
	return 0, false
}

// mustClusterPlan builds the Balanced plan the cluster tests share.
func mustClusterPlan(t *testing.T, n int) *plan.Plan {
	t.Helper()
	p, err := plan.Balanced(n, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestShardedWorkerBanned pins the drain loop's ban handling: a convicted
// worker stops retrying the shard that blacklisted it (ErrBlacklisted via
// errors.Is), reports the ban, and honest sharded workers still finish the
// whole cluster.
func TestShardedWorkerBanned(t *testing.T) {
	// Ringer-heavy hand-built plan so an always-cheat worker is convicted
	// almost immediately on whichever shard it touches first.
	p := &plan.Plan{
		Epsilon:            0.5,
		N:                  40,
		Counts:             []int{40}, // 40 single-copy tasks
		TailMultiplicity:   2,
		Ringers:            8,
		RingerMultiplicity: 2,
	}
	c, err := NewCluster(ClusterConfig{
		Plan: p, Shards: 2, Seed: 3, WorkKind: "hashchain", Iters: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// The cheater runs alone first: serving every copy itself, it
	// inevitably completes both copies of a ringer on each shard it
	// touches and is convicted by the precomputed truth — so the ban is
	// deterministic, not a race against honest workers.
	coal := NewCoalition(1, 3)
	_, banErr := RunShardedWorker(WorkerConfig{
		Name: "cheater", Cheat: coal.CheatFunc(),
	}, c.ShardMap)

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := RunShardedWorker(WorkerConfig{
				Name: fmt.Sprintf("honest-%d", i), BatchSize: 4,
			}, c.ShardMap); err != nil {
				t.Errorf("honest worker %d: %v", i, err)
			}
		}(i)
	}
	c.Wait()
	wg.Wait()

	if banErr == nil {
		t.Fatal("always-cheating sharded worker finished without a ban")
	}
	if !errors.Is(banErr, ErrBlacklisted) {
		t.Fatalf("ban error %v does not wrap ErrBlacklisted", banErr)
	}

	m := agg.Merge(c.Export(), 0)
	if m.Tasks != len(p.Tasks()) || m.Accepted != len(p.Tasks())-m.Mismatches {
		t.Errorf("cluster did not finish cleanly after the ban: %s", m.String())
	}
	if m.RingersCaught == 0 {
		t.Error("no ringer catches aggregated across shards")
	}
}

package platform

import (
	"strings"
	"testing"
)

// FuzzCodecRecv hardens the wire decoder: arbitrary bytes from a hostile
// or broken worker must produce an error or a message, never a panic, and
// decoding must terminate.
func FuzzCodecRecv(f *testing.F) {
	f.Add([]byte(`{"type":"register","name":"x"}` + "\n"))
	f.Add([]byte(`{"type":"result","participant_id":3,"task_id":1,"value":18446744073709551615}` + "\n"))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte(`{"type":`))
	f.Add([]byte(`{"type":"work","iters":-1}` + "\n" + `garbage`))
	f.Add([]byte(strings.Repeat("a", 5000) + "\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewCodec(struct {
			*strings.Reader
			discard
		}{strings.NewReader(string(data)), discard{}})
		for i := 0; i < 64; i++ { // bounded: Recv must make progress
			if _, err := c.Recv(); err != nil {
				return
			}
		}
	})
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

package platform

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// FuzzCodecRecv hardens the wire decoder: arbitrary bytes from a hostile
// or broken worker must produce an error or a message, never a panic, and
// decoding must terminate.
func FuzzCodecRecv(f *testing.F) {
	f.Add([]byte(`{"type":"register","name":"x"}` + "\n"))
	f.Add([]byte(`{"type":"result","participant_id":3,"task_id":1,"value":18446744073709551615}` + "\n"))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte(`{"type":`))
	f.Add([]byte(`{"type":"work","iters":-1}` + "\n" + `garbage`))
	f.Add([]byte(strings.Repeat("a", 5000) + "\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewCodec(struct {
			*strings.Reader
			discard
		}{strings.NewReader(string(data)), discard{}})
		for i := 0; i < 64; i++ { // bounded: Recv must make progress
			if _, err := c.Recv(); err != nil {
				return
			}
		}
	})
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// FuzzBinaryCodec hardens the binary codec from both directions. The raw
// fuzz bytes are fed to the payload decoder, which must error or decode
// but never panic. Then, when the bytes parse as a JSON Message, the
// differential property is checked: binary encode→decode must equal the
// JSON round trip of the same message — the two codecs are required to
// agree on semantics (presence bits mirror omitempty) for every
// reachable Message, not just the golden set.
func FuzzBinaryCodec(f *testing.F) {
	f.Add([]byte{1, 0x11, 5, 'a', 'l', 'i', 'c', 'e', 3, 'b', 'i', 'n'})
	f.Add([]byte{9, 0})
	f.Add([]byte{0, 2, 'x', 'y', 0})
	f.Add([]byte(`{"type":"result_batch","participant_id":3,"results":[{"task_id":7,"copy":0,"value":99}]}`))
	f.Add([]byte(`{"type":"work","task_id":-1,"iters":-5,"seed":18446744073709551615}`))
	f.Add([]byte(`{"type":"no_work","wait_seconds":0.25}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var c Codec
		var m Message
		_ = c.decodeBinMessage(data, &m) // must not panic on hostile bytes

		m = Message{}
		if err := json.Unmarshal(data, &m); err != nil {
			return
		}
		jb, err := json.Marshal(m)
		if err != nil {
			return // e.g. a string that does not survive re-marshaling
		}
		var want Message
		if err := json.Unmarshal(jb, &want); err != nil {
			t.Fatalf("JSON round trip: %v", err)
		}
		payload := appendBinMessage(nil, &m)
		var got Message
		var c2 Codec
		if err := c2.decodeBinMessage(payload, &got); err != nil {
			t.Fatalf("binary decode of own encoding failed: %v\nmessage: %+v", err, m)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("codec disagreement\nbinary: %+v\njson:   %+v", got, want)
		}
	})
}

package platform

import (
	"bytes"
	"strings"
	"testing"

	"redundancy/internal/dist"
	"redundancy/internal/plan"
)

// TestJournalRecoveryEndToEnd runs half a computation, kills the
// supervisor, restores a fresh one from the journal, and finishes: all
// tasks certified, nothing recomputed twice.
func TestJournalRecoveryEndToEnd(t *testing.T) {
	p, err := plan.FromDistribution(dist.Simple(60), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var journal bytes.Buffer

	sup1, err := NewSupervisor(SupervisorConfig{
		Plan: p, WorkKind: "hashchain", Iters: 10, Seed: 5, Journal: &journal,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr1, err := sup1.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Complete exactly half the assignments, then stop the supervisor.
	st, err := RunWorker(WorkerConfig{Addr: addr1, Name: "early", MaxAssignments: 60})
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != 60 {
		t.Fatalf("first phase completed %d", st.Completed)
	}
	if err := sup1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart from the journal.
	sup2, err := NewSupervisor(SupervisorConfig{
		Plan: p, WorkKind: "hashchain", Iters: 10, Seed: 5,
		Journal: &journal, Restore: bytes.NewReader(journal.Bytes()),
	})
	if err != nil {
		t.Fatal(err)
	}
	addr2, err := sup2.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sup2.Close() })

	st2, err := RunWorker(WorkerConfig{Addr: addr2, Name: "late"})
	if err != nil {
		t.Fatal(err)
	}
	sup2.Wait()

	sum := sup2.Summary()
	if sum.Restored != 60 {
		t.Errorf("restored %d results, want 60", sum.Restored)
	}
	if st2.Completed != 60 {
		t.Errorf("second phase completed %d assignments, want the remaining 60", st2.Completed)
	}
	if sum.Verify.Tasks != 60 || sum.Verify.Accepted != 60 {
		t.Errorf("final state: %+v", sum.Verify)
	}
	if sum.WrongResults != 0 || sum.Verify.MismatchDetected != 0 {
		t.Errorf("recovery corrupted results: %+v", sum.Verify)
	}
	// The restored participant's credit survives the restart.
	if len(sum.Credits) < 2 {
		t.Fatalf("leaderboard %v", sum.Credits)
	}
	total := 0
	for _, e := range sum.Credits {
		total += e.Credit
	}
	if total != 120 {
		t.Errorf("total credit %d, want 120 contributions", total)
	}
}

// TestJournalRestoreOfCompleteRun yields a supervisor that is already
// finished: Wait returns immediately and workers get Done.
func TestJournalRestoreOfCompleteRun(t *testing.T) {
	p, err := plan.FromDistribution(dist.Simple(10), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var journal bytes.Buffer
	sup1, err := NewSupervisor(SupervisorConfig{Plan: p, Iters: 5, Journal: &journal})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := sup1.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunWorker(WorkerConfig{Addr: addr, Name: "w"}); err != nil {
		t.Fatal(err)
	}
	sup1.Wait()
	sup1.Close()

	sup2, err := NewSupervisor(SupervisorConfig{
		Plan: p, Iters: 5, Restore: bytes.NewReader(journal.Bytes()),
	})
	if err != nil {
		t.Fatal(err)
	}
	sup2.Wait() // must not block
	addr2, err := sup2.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sup2.Close()
	st, err := RunWorker(WorkerConfig{Addr: addr2, Name: "late"})
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != 0 {
		t.Errorf("late worker completed %d assignments on a finished run", st.Completed)
	}
}

// TestJournalReplayCorruption drives replay through every damage shape a
// crash (or a disk) can leave behind: torn tails are tolerated and
// excluded from the valid prefix, anything corrupt in the interior aborts
// the restore with a diagnosable error.
func TestJournalReplayCorruption(t *testing.T) {
	rec0 := `{"task":0,"copy":0,"participant":1,"value":7}` + "\n"
	rec1 := `{"task":1,"copy":0,"participant":1,"value":9}` + "\n"
	cases := []struct {
		name     string
		journal  string
		restored int   // -1: construction must fail
		valid    int64 // clean prefix RestoredJournalBytes must report
		errWant  []string
	}{
		{name: "clean", journal: rec0 + rec1,
			restored: 2, valid: int64(len(rec0) + len(rec1))},
		{name: "blank lines tolerated", journal: rec0 + "\n" + rec1,
			restored: 2, valid: int64(len(rec0) + 1 + len(rec1))},
		{name: "torn tail tolerated", journal: rec0 + `{"task":1,"cop`,
			restored: 1, valid: int64(len(rec0))},
		{name: "torn unknown-assignment tail tolerated",
			journal:  rec0 + `{"task":99,"copy":5,"participant":1,"value":7}` + "\n",
			restored: 1, valid: int64(len(rec0))},
		{name: "interior garbage aborts", journal: "not json\n" + rec0,
			restored: -1, errWant: []string{"corrupt journal record"}},
		{name: "interior torn record aborts", journal: `{"task":1,"cop` + "\n" + rec0,
			restored: -1, errWant: []string{"corrupt journal record"}},
		{name: "interior unknown assignment aborts, naming the record",
			journal:  `{"task":99,"copy":5,"participant":1,"value":7}` + "\n" + rec0,
			restored: -1, errWant: []string{"unknown assignment", "task=99", "copy=5"}},
		{name: "interior duplicate aborts", journal: rec0 + rec0 + rec1,
			restored: -1, errWant: []string{"task=0", "copy=0"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := plan.FromDistribution(dist.Simple(5), 0.5)
			if err != nil {
				t.Fatal(err)
			}
			sup, err := NewSupervisor(SupervisorConfig{
				Plan: p, Iters: 5, Restore: strings.NewReader(tc.journal),
			})
			if tc.restored < 0 {
				if err == nil {
					t.Fatal("corrupt journal accepted")
				}
				for _, want := range tc.errWant {
					if !strings.Contains(err.Error(), want) {
						t.Errorf("error %q does not mention %q", err, want)
					}
				}
				return
			}
			if err != nil {
				t.Fatalf("restore failed: %v", err)
			}
			if sup.restored != tc.restored {
				t.Errorf("restored %d, want %d", sup.restored, tc.restored)
			}
			if got := sup.RestoredJournalBytes(); got != tc.valid {
				t.Errorf("valid prefix %d bytes, want %d", got, tc.valid)
			}
		})
	}
}

package platform

import (
	"bytes"
	"strings"
	"testing"

	"redundancy/internal/dist"
	"redundancy/internal/plan"
)

// TestJournalRecoveryEndToEnd runs half a computation, kills the
// supervisor, restores a fresh one from the journal, and finishes: all
// tasks certified, nothing recomputed twice.
func TestJournalRecoveryEndToEnd(t *testing.T) {
	p, err := plan.FromDistribution(dist.Simple(60), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var journal bytes.Buffer

	sup1, err := NewSupervisor(SupervisorConfig{
		Plan: p, WorkKind: "hashchain", Iters: 10, Seed: 5, Journal: &journal,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr1, err := sup1.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Complete exactly half the assignments, then stop the supervisor.
	st, err := RunWorker(WorkerConfig{Addr: addr1, Name: "early", MaxAssignments: 60})
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != 60 {
		t.Fatalf("first phase completed %d", st.Completed)
	}
	if err := sup1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart from the journal.
	sup2, err := NewSupervisor(SupervisorConfig{
		Plan: p, WorkKind: "hashchain", Iters: 10, Seed: 5,
		Journal: &journal, Restore: bytes.NewReader(journal.Bytes()),
	})
	if err != nil {
		t.Fatal(err)
	}
	addr2, err := sup2.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sup2.Close() })

	st2, err := RunWorker(WorkerConfig{Addr: addr2, Name: "late"})
	if err != nil {
		t.Fatal(err)
	}
	sup2.Wait()

	sum := sup2.Summary()
	if sum.Restored != 60 {
		t.Errorf("restored %d results, want 60", sum.Restored)
	}
	if st2.Completed != 60 {
		t.Errorf("second phase completed %d assignments, want the remaining 60", st2.Completed)
	}
	if sum.Verify.Tasks != 60 || sum.Verify.Accepted != 60 {
		t.Errorf("final state: %+v", sum.Verify)
	}
	if sum.WrongResults != 0 || sum.Verify.MismatchDetected != 0 {
		t.Errorf("recovery corrupted results: %+v", sum.Verify)
	}
	// The restored participant's credit survives the restart.
	if len(sum.Credits) < 2 {
		t.Fatalf("leaderboard %v", sum.Credits)
	}
	total := 0
	for _, e := range sum.Credits {
		total += e.Credit
	}
	if total != 120 {
		t.Errorf("total credit %d, want 120 contributions", total)
	}
}

// TestJournalRestoreOfCompleteRun yields a supervisor that is already
// finished: Wait returns immediately and workers get Done.
func TestJournalRestoreOfCompleteRun(t *testing.T) {
	p, err := plan.FromDistribution(dist.Simple(10), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var journal bytes.Buffer
	sup1, err := NewSupervisor(SupervisorConfig{Plan: p, Iters: 5, Journal: &journal})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := sup1.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunWorker(WorkerConfig{Addr: addr, Name: "w"}); err != nil {
		t.Fatal(err)
	}
	sup1.Wait()
	sup1.Close()

	sup2, err := NewSupervisor(SupervisorConfig{
		Plan: p, Iters: 5, Restore: bytes.NewReader(journal.Bytes()),
	})
	if err != nil {
		t.Fatal(err)
	}
	sup2.Wait() // must not block
	addr2, err := sup2.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sup2.Close()
	st, err := RunWorker(WorkerConfig{Addr: addr2, Name: "late"})
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != 0 {
		t.Errorf("late worker completed %d assignments on a finished run", st.Completed)
	}
}

func TestJournalReplayTornTailTolerated(t *testing.T) {
	p, err := plan.FromDistribution(dist.Simple(5), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	good := `{"task":0,"copy":0,"participant":1,"value":7}` + "\n"
	torn := good + `{"task":1,"cop` // crash mid-write
	sup, err := NewSupervisor(SupervisorConfig{
		Plan: p, Iters: 5, Restore: strings.NewReader(torn),
	})
	if err != nil {
		t.Fatalf("torn tail should be tolerated: %v", err)
	}
	if sup.restored != 1 {
		t.Errorf("restored %d, want 1", sup.restored)
	}
}

func TestJournalReplayInteriorCorruptionRejected(t *testing.T) {
	p, err := plan.FromDistribution(dist.Simple(5), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	bad := "not json\n" + `{"task":0,"copy":0,"participant":1,"value":7}` + "\n"
	if _, err := NewSupervisor(SupervisorConfig{
		Plan: p, Iters: 5, Restore: strings.NewReader(bad),
	}); err == nil {
		t.Error("interior corruption accepted")
	}
	// Unknown assignment (copy out of range) is also corruption when
	// followed by more records.
	bogus := `{"task":99,"copy":5,"participant":1,"value":7}` + "\n" +
		`{"task":0,"copy":0,"participant":1,"value":7}` + "\n"
	if _, err := NewSupervisor(SupervisorConfig{
		Plan: p, Iters: 5, Restore: strings.NewReader(bogus),
	}); err == nil {
		t.Error("unknown-assignment record accepted")
	}
}

package platform

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"redundancy/internal/dist"
	"redundancy/internal/faults"
	"redundancy/internal/obs"
	"redundancy/internal/plan"
	"redundancy/internal/rng"
	"redundancy/internal/sched"
)

func TestFrameTooLongError(t *testing.T) {
	big := strings.Repeat("x", 2<<20) + "\n"
	c := NewCodec(struct {
		io.Reader
		io.Writer
	}{strings.NewReader(big), io.Discard})
	if _, err := c.Recv(); !errors.Is(err, ErrFrameTooLong) {
		t.Errorf("oversized frame: got %v, want ErrFrameTooLong", err)
	}
}

func TestNoWorkWaitCappedAndJittered(t *testing.T) {
	r := rng.New(1)
	for i := 0; i < 100; i++ {
		if d := noWorkDelay(1000, r); d < 2500*time.Millisecond || d >= 7500*time.Millisecond {
			t.Fatalf("absurd wait not capped: slept %v", d)
		}
		if d := noWorkDelay(0.05, r); d < 25*time.Millisecond || d >= 75*time.Millisecond {
			t.Fatalf("wait=0.05 jittered to %v, want [25ms,75ms)", d)
		}
	}
	if d := noWorkDelay(0, r); d != 0 {
		t.Errorf("wait=0 slept %v", d)
	}
}

func TestReconnectDelayBackoff(t *testing.T) {
	r := rng.New(2)
	base, max := 50*time.Millisecond, 5*time.Second
	prevCeil := time.Duration(0)
	for attempt := 1; attempt <= 10; attempt++ {
		d := reconnectDelay(attempt, base, max, r)
		ideal := base << (attempt - 1)
		if ideal > max || ideal <= 0 {
			ideal = max
		}
		if d < ideal/2 || d >= ideal+ideal/2 {
			t.Errorf("attempt %d: delay %v outside [%v, %v)", attempt, d, ideal/2, ideal+ideal/2)
		}
		if ceil := ideal + ideal/2; ceil < prevCeil {
			t.Errorf("attempt %d: backoff ceiling shrank", attempt)
		} else {
			prevCeil = ceil
		}
	}
}

// dialCodec opens a raw protocol connection for tests that drive the wire
// by hand.
func dialCodec(t *testing.T, addr string) (net.Conn, *Codec) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn, NewCodec(conn)
}

func roundTrip(t *testing.T, c *Codec, m Message) Message {
	t.Helper()
	if err := c.Send(m); err != nil {
		t.Fatal(err)
	}
	reply, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	return reply
}

// TestWorkerReconnectsAndResumes walks the resume protocol by hand: an
// identity registered on one connection is re-attached on a second (token
// in hand) while the first is still open — the half-open-connection case —
// and the in-flight assignment follows it there.
func TestWorkerReconnectsAndResumes(t *testing.T) {
	p, err := plan.FromDistribution(dist.Simple(10), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sup, addr := startSupervisor(t, p, sched.Free)

	_, c1 := dialCodec(t, addr)
	welcome := roundTrip(t, c1, Message{Type: MsgRegister, Name: "ghost"})
	if welcome.Type != MsgRegistered || welcome.Token == 0 {
		t.Fatalf("registration reply %+v (token must be minted)", welcome)
	}
	id, token := welcome.ParticipantID, welcome.Token
	work := roundTrip(t, c1, Message{Type: MsgRequestWork, ParticipantID: id})
	if work.Type != MsgWork {
		t.Fatalf("work reply %+v", work)
	}

	// An impostor who knows the ID but not the token is turned away.
	_, cBad := dialCodec(t, addr)
	refuse := roundTrip(t, cBad, Message{Type: MsgRegister, Resume: true, ParticipantID: id, Token: token + 1})
	if refuse.Type != MsgError || refuse.Reason != ReasonResumeRefused {
		t.Fatalf("bad-token resume got %+v, want %s", refuse, ReasonResumeRefused)
	}

	// The real worker resumes on a fresh connection (the old one may be
	// half-open for minutes) and is handed the same assignment back.
	_, c2 := dialCodec(t, addr)
	back := roundTrip(t, c2, Message{Type: MsgRegister, Resume: true, ParticipantID: id, Token: token})
	if back.Type != MsgRegistered || back.ParticipantID != id {
		t.Fatalf("resume reply %+v", back)
	}
	again := roundTrip(t, c2, Message{Type: MsgRequestWork, ParticipantID: id})
	if again.Type != MsgWork || again.TaskID != work.TaskID || again.Copy != work.Copy {
		t.Fatalf("reissued %+v, want task %d copy %d back", again, work.TaskID, work.Copy)
	}

	// Completing it on the new connection is an ordinary acceptance.
	fn, err := Work(again.Kind)
	if err != nil {
		t.Fatal(err)
	}
	ack := roundTrip(t, c2, Message{
		Type: MsgResult, ParticipantID: id, TaskID: again.TaskID, Copy: again.Copy,
		Value: fn(again.Seed, again.Iters),
	})
	if ack.Type != MsgAck {
		t.Fatalf("result on resumed connection: %+v", ack)
	}

	snap := sup.Metrics().Snapshot()
	if v, _ := snap.Value("redundancy_workers_resumed_total"); v != 1 {
		t.Errorf("workers_resumed = %v, want 1", v)
	}
	if v, _ := snap.Value("redundancy_assignments_reissued_total"); v != 1 {
		t.Errorf("assignments_reissued = %v, want 1", v)
	}
}

// flakyDialer returns conns whose writeToFail-th Write fails without
// delivering a byte, killing the connection — the crash window between a
// worker computing a result and its submission landing.
type flakyDialer struct {
	mu          sync.Mutex
	dials       int
	writeToFail int // fail this (1-based) write of the first conn; 0 = never
}

type flakyConn struct {
	net.Conn
	d      *flakyDialer
	writes int
	arm    bool
}

func (d *flakyDialer) dial(addr string) (net.Conn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	d.dials++
	first := d.dials == 1
	d.mu.Unlock()
	return &flakyConn{Conn: conn, d: d, arm: first && d.writeToFail > 0}, nil
}

func (c *flakyConn) Write(p []byte) (int, error) {
	c.writes++
	if c.arm && c.writes == c.d.writeToFail {
		c.Conn.Close()
		return 0, errors.New("flaky: connection died before the frame left")
	}
	return c.Conn.Write(p)
}

// TestWorkerResubmitsPendingResult kills the worker's connection exactly at
// the result submission (the third frame: register, request, result). The
// reconnect logic must resume the identity and resubmit, and the work must
// be accepted exactly once.
func TestWorkerResubmitsPendingResult(t *testing.T) {
	p, err := plan.FromDistribution(dist.Simple(6), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	sup, err := NewSupervisor(SupervisorConfig{
		Plan: p, WorkKind: "hashchain", Iters: 10, Seed: 3, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := sup.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sup.Close() })

	d := &flakyDialer{writeToFail: 3}
	wreg := obs.NewRegistry()
	st, err := RunWorker(WorkerConfig{
		Addr: addr, Name: "flaky", Reconnect: true, Seed: 11,
		BackoffBase: time.Millisecond, BackoffMax: 10 * time.Millisecond,
		Dial: d.dial, Metrics: wreg,
	})
	if err != nil {
		t.Fatalf("worker did not survive the torn submission: %v", err)
	}
	sup.Wait()
	sum := sup.Summary()
	total := p.TotalAssignments()
	if st.Completed != total {
		t.Errorf("worker completed %d, want %d (resubmitted result must be acked)", st.Completed, total)
	}
	if sum.Verify.MismatchDetected != 0 || sum.WrongResults != 0 {
		t.Errorf("resubmission corrupted state: %+v wrong=%d", sum.Verify, sum.WrongResults)
	}
	snap := reg.Snapshot()
	if v, _ := snap.Value("redundancy_results_accepted_total"); int(v) != total {
		t.Errorf("accepted %v results, want exactly %d (no double acceptance)", v, total)
	}
	if v, _ := snap.Value("redundancy_workers_resumed_total"); v != 1 {
		t.Errorf("workers_resumed = %v, want 1", v)
	}
	if v, _ := wreg.Snapshot().Value("redundancy_worker_reconnects_total"); v != 1 {
		t.Errorf("worker_reconnects = %v, want 1", v)
	}
}

// TestSlowLorisDisconnectedByIOTimeout opens a connection that never sends
// a frame; with IOTimeout set the supervisor must drop it instead of
// pinning a goroutine forever.
func TestSlowLorisDisconnectedByIOTimeout(t *testing.T) {
	p, err := plan.FromDistribution(dist.Simple(5), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	sup, err := NewSupervisor(SupervisorConfig{
		Plan: p, Iters: 5, Metrics: reg, IOTimeout: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := sup.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sup.Close() })

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := conn.Read(make([]byte, 1)); err != nil {
			break // supervisor hung up on us
		}
		if time.Now().After(deadline) {
			t.Fatal("slow-loris connection was never dropped")
		}
	}
	for time.Now().Before(deadline) {
		if v, _ := reg.Snapshot().Value("redundancy_workers_connected"); v == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("connection gauge never returned to zero")
}

// TestShutdownDrains checks the graceful path: Shutdown stops accepting
// and issuing but lets the in-flight result land before returning nil.
func TestShutdownDrains(t *testing.T) {
	p, err := plan.FromDistribution(dist.Simple(8), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	jf, err := os.OpenFile(filepath.Join(dir, "journal.jsonl"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	reg := obs.NewRegistry()
	sup, err := NewSupervisor(SupervisorConfig{
		Plan: p, Iters: 10, Metrics: reg, Journal: jf, JournalSync: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := sup.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	_, c := dialCodec(t, addr)
	welcome := roundTrip(t, c, Message{Type: MsgRegister, Name: "slow"})
	work := roundTrip(t, c, Message{Type: MsgRequestWork, ParticipantID: welcome.ParticipantID})
	if work.Type != MsgWork {
		t.Fatalf("work reply %+v", work)
	}

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- sup.Shutdown(ctx)
	}()

	// Drain visibly started: the listener refuses new connections.
	for start := time.Now(); ; {
		probe, err := net.Dial("tcp", addr)
		if err != nil {
			break
		}
		probe.Close()
		if time.Since(start) > 5*time.Second {
			t.Fatal("listener still accepting during shutdown")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The in-flight result still lands and is acked.
	fn, err := Work(work.Kind)
	if err != nil {
		t.Fatal(err)
	}
	ack := roundTrip(t, c, Message{
		Type: MsgResult, ParticipantID: welcome.ParticipantID,
		TaskID: work.TaskID, Copy: work.Copy, Value: fn(work.Seed, work.Iters),
	})
	if ack.Type != MsgAck {
		t.Fatalf("in-flight result during drain: %+v", ack)
	}

	if err := <-shutdownErr; err != nil {
		t.Fatalf("drained shutdown returned %v", err)
	}
	snap := reg.Snapshot()
	if v, _ := snap.Value("redundancy_results_accepted_total"); v != 1 {
		t.Errorf("accepted %v results through the drain, want 1", v)
	}
	if v, _ := snap.Value("redundancy_journal_syncs_total"); v < 1 {
		t.Errorf("journal_syncs = %v, want >= 1 (JournalSync mode)", v)
	}
	// And the journaled record survived to disk.
	data, err := os.ReadFile(jf.Name())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"value"`)) {
		t.Errorf("journal on disk is missing the accepted record: %q", data)
	}
}

// TestLeaseInvariantsUnderChaos is the protocol property test for batched
// leasing: across random batch sizes, connection kills, disconnects, and
// resumes, (1) no (task, copy) is ever live in two leases at once — every
// non-reissue issuance must find the copy not outstanding, every reissue
// must find it outstanding with the same holder — and (2) total credited
// assignments equals the plan's assignment count exactly. The supervisor
// emits its lease-lifecycle events while holding the lease lock, so replaying the stream
// through a live-lease state machine checks the invariant at every step
// of the actual interleaving, not just at the end of the run.
func TestLeaseInvariantsUnderChaos(t *testing.T) {
	scenarios := []struct {
		seed    uint64
		n       int
		batches []int // per-worker lease size (1 = legacy protocol)
	}{
		{seed: 3, n: 30, batches: []int{1, 4, 16}},
		{seed: 11, n: 45, batches: []int{2, 2, 7, 32}},
		{seed: 27, n: 25, batches: []int{64, 1}},
	}
	for _, sc := range scenarios {
		t.Run(fmt.Sprintf("seed=%d", sc.seed), func(t *testing.T) {
			t.Parallel()
			p, err := plan.Balanced(sc.n, 0.5)
			if err != nil {
				t.Fatal(err)
			}
			inj, err := faults.New(faults.Config{
				Seed:     sc.seed,
				DialDrop: 0.05, ReadDrop: 0.03, WriteDrop: 0.03,
			})
			if err != nil {
				t.Fatal(err)
			}
			var eventLog bytes.Buffer
			sup, err := NewSupervisor(SupervisorConfig{
				Plan: p, WorkKind: "hashchain", Iters: 5, Seed: sc.seed,
				IOTimeout: 2 * time.Second, Deadline: time.Second,
				MaxBatch:     32, // below one worker's ask, above most: exercises the cap
				WrapListener: inj.Listener,
				Events:       obs.NewSink(&eventLog),
			})
			if err != nil {
				t.Fatal(err)
			}
			addr, err := sup.Start("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}

			var stop atomic.Bool
			var wg sync.WaitGroup
			for i, batch := range sc.batches {
				wg.Add(1)
				go func(i, batch int) {
					defer wg.Done()
					for !stop.Load() {
						RunWorker(WorkerConfig{
							Addr: addr, Name: fmt.Sprintf("lease-%d", i),
							BatchSize: batch, Reconnect: true, MaxReconnects: 25,
							BackoffBase: time.Millisecond, BackoffMax: 20 * time.Millisecond,
							Seed: sc.seed*100 + uint64(i+1),
							Dial: func(a string) (net.Conn, error) { return inj.Dial("tcp", a) },
						})
						time.Sleep(2 * time.Millisecond)
					}
				}(i, batch)
			}
			waitDone := make(chan struct{})
			go func() { sup.Wait(); close(waitDone) }()
			select {
			case <-waitDone:
			case <-time.After(90 * time.Second):
				stop.Store(true)
				wg.Wait()
				t.Fatal("run never certified under lease chaos")
			}
			stop.Store(true)
			wg.Wait()
			sup.Close()

			// Exact credit accounting: one credit per plan assignment,
			// nothing lost, nothing double-granted.
			total := 0
			for _, e := range sup.Summary().Credits {
				total += e.Credit
			}
			if total != p.TotalAssignments() {
				t.Errorf("total credit %d, want %d", total, p.TotalAssignments())
			}

			// Replay the event stream through the live-lease state machine.
			type leaseEvent struct {
				Event       string `json:"event"`
				Task        int    `json:"task"`
				Copy        int    `json:"copy"`
				Participant int    `json:"participant"`
				Reissue     bool   `json:"reissue"`
			}
			live := make(map[outstandingKey]int)
			issued, accepted := 0, 0
			for lineNo, line := range strings.Split(eventLog.String(), "\n") {
				if line == "" {
					continue
				}
				var ev leaseEvent
				if err := json.Unmarshal([]byte(line), &ev); err != nil {
					t.Fatalf("event line %d: %v (%q)", lineNo, err, line)
				}
				key := outstandingKey{ev.Task, ev.Copy}
				switch ev.Event {
				case EvAssignmentIssued:
					holder, isLive := live[key]
					if ev.Reissue {
						if !isLive || holder != ev.Participant {
							t.Fatalf("line %d: task %d copy %d re-issued to %d but lease is held by %d (live=%v)",
								lineNo, ev.Task, ev.Copy, ev.Participant, holder, isLive)
						}
						continue
					}
					if isLive {
						t.Fatalf("line %d: task %d copy %d issued to %d while live in participant %d's lease",
							lineNo, ev.Task, ev.Copy, ev.Participant, holder)
					}
					live[key] = ev.Participant
					issued++
				case EvResultAccepted:
					if holder, isLive := live[key]; !isLive || holder != ev.Participant {
						t.Fatalf("line %d: accepted task %d copy %d from %d but lease is held by %d (live=%v)",
							lineNo, ev.Task, ev.Copy, ev.Participant, holder, isLive)
					}
					delete(live, key)
					accepted++
				case EvAssignmentReclaimed:
					if _, isLive := live[key]; !isLive {
						t.Fatalf("line %d: reclaimed task %d copy %d which was not live", lineNo, ev.Task, ev.Copy)
					}
					delete(live, key)
				}
			}
			if len(live) != 0 {
				t.Errorf("run ended with %d leases still live: %v", len(live), live)
			}
			if accepted != p.TotalAssignments() {
				t.Errorf("event stream accepted %d results, want %d", accepted, p.TotalAssignments())
			}
			if issued < accepted {
				t.Errorf("event stream issued %d < accepted %d", issued, accepted)
			}
		})
	}
}

// TestShutdownTimeoutForceCloses checks the impatient path: a worker that
// never returns its assignment cannot hold Shutdown hostage past ctx.
func TestShutdownTimeoutForceCloses(t *testing.T) {
	p, err := plan.FromDistribution(dist.Simple(8), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := NewSupervisor(SupervisorConfig{Plan: p, Iters: 10})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := sup.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	_, c := dialCodec(t, addr)
	welcome := roundTrip(t, c, Message{Type: MsgRegister, Name: "hostage"})
	if work := roundTrip(t, c, Message{Type: MsgRequestWork, ParticipantID: welcome.ParticipantID}); work.Type != MsgWork {
		t.Fatalf("work reply %+v", work)
	}
	// ... and never submit it.

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = sup.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("hostage shutdown returned %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("shutdown took %v despite the 100ms budget", elapsed)
	}
}

package platform

import (
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// TestProtocolDocCoversEveryVerb keeps PROTOCOL.md authoritative for the
// wire protocol: every verb in wireVerbs must have a verb-table row
// (| `verb` | tag | ...) carrying its exact binary tag, and every
// documented verb must still exist in code with that tag. Adding,
// removing, or renumbering a verb without touching PROTOCOL.md fails
// here.
func TestProtocolDocCoversEveryVerb(t *testing.T) {
	doc, err := os.ReadFile("../../PROTOCOL.md")
	if err != nil {
		t.Fatal(err)
	}
	// A verb row is | `verb` | tag | ... — the numeric second column
	// distinguishes verb-table rows from every other backticked table in
	// the document.
	row := regexp.MustCompile("(?m)^\\| `([a-z_]+)` \\| ([0-9]+) \\|")
	documented := map[string]int{}
	for _, m := range row.FindAllStringSubmatch(string(doc), -1) {
		tag, err := strconv.Atoi(m[2])
		if err != nil {
			t.Fatalf("verb row %q: %v", m[0], err)
		}
		if prev, dup := documented[m[1]]; dup && prev != tag {
			t.Errorf("verb %q documented with conflicting tags %d and %d", m[1], prev, tag)
		}
		documented[m[1]] = tag
	}
	if len(documented) == 0 {
		t.Fatal("no verb table rows found in PROTOCOL.md")
	}

	var missing, stale, wrong []string
	for i, verb := range wireVerbs {
		tag, ok := documented[verb]
		switch {
		case !ok:
			missing = append(missing, verb)
		case tag != i+1:
			wrong = append(wrong, verb+": documented tag "+strconv.Itoa(tag)+", wire tag "+strconv.Itoa(i+1))
		}
	}
	inCode := map[string]bool{}
	for _, verb := range wireVerbs {
		inCode[verb] = true
	}
	for verb := range documented {
		if !inCode[verb] {
			stale = append(stale, verb)
		}
	}
	sort.Strings(missing)
	sort.Strings(stale)
	sort.Strings(wrong)
	if len(missing) > 0 {
		t.Errorf("wire verbs missing from PROTOCOL.md's verb tables: %v", missing)
	}
	if len(stale) > 0 {
		t.Errorf("verbs documented in PROTOCOL.md but gone from wireVerbs: %v", stale)
	}
	if len(wrong) > 0 {
		t.Errorf("binary tag mismatches between PROTOCOL.md and wireVerbs: %v", wrong)
	}
}

// TestProtocolDocCoversJournalFormat holds PROTOCOL.md's journal section
// to the same standard: every journal record kind must have a table row
// inside the journal section, and the frame-limit error must be named
// where its wire mapping is specified.
func TestProtocolDocCoversJournalFormat(t *testing.T) {
	doc, err := os.ReadFile("../../PROTOCOL.md")
	if err != nil {
		t.Fatal(err)
	}
	// Scope to the journal section so the `result` record kind is not
	// satisfied by the `result` wire verb.
	_, section, found := strings.Cut(string(doc), "## Journal")
	if !found {
		t.Fatal("PROTOCOL.md has no \"## Journal\" section")
	}
	if rest, _, cut := strings.Cut(section, "\n## "); cut {
		section = rest
	}
	row := regexp.MustCompile("(?m)^\\| `([a-z_]+)` \\|")
	documented := map[string]bool{}
	for _, m := range row.FindAllStringSubmatch(section, -1) {
		documented[m[1]] = true
	}
	var missing []string
	for _, kind := range journalRecordKinds {
		if !documented[kind] {
			missing = append(missing, kind)
		}
	}
	sort.Strings(missing)
	if len(missing) > 0 {
		t.Errorf("journal record kinds missing from PROTOCOL.md's journal section: %v", missing)
	}

	if !strings.Contains(string(doc), "ErrFrameTooLong") {
		t.Error("PROTOCOL.md does not specify the ErrFrameTooLong frame-limit mapping")
	}
}

package platform

import (
	"io"
	"testing"

	"redundancy/internal/plan"
)

// BenchmarkAppendJournalBatch measures the encode path shared by the
// legacy batch journal and the group committer's commit window: the
// whole batch is serialized into one pooled buffer and handed to the
// writer as a single Write. Run with -benchmem; the pooled buffer keeps
// the per-batch allocations down to encoding/json's own scratch.
func BenchmarkAppendJournalBatch(b *testing.B) {
	recs := make([]journalRecord, 16)
	for i := range recs {
		recs[i] = journalRecord{TaskID: i, Copy: i % 3, Participant: 7, Value: uint64(i) * 0x9e3779b9}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := appendJournalBatch(io.Discard, recs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchPipeline drives the supervisor's full request path
// in-process — lease a 16-assignment batch, compute it, submit the
// result batch — with no network in the way, so -benchmem shows exactly
// what the lease/verify/credit pipeline allocates per round trip. The
// connState scratch reuse and the conn-local name cache are what keep
// this flat as batches repeat.
func BenchmarkBatchPipeline(b *testing.B) {
	const batch = 16
	var (
		sup      *Supervisor
		cs       *connState
		id       int
		iters    int
		remain   int
		fn       WorkFunc
		kindErr  error
		leaseMsg = Message{Type: MsgGetWork, Batch: batch}
	)
	reset := func() {
		if sup != nil {
			sup.Close()
		}
		p, err := plan.Balanced(4096, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		sup, err = NewSupervisor(SupervisorConfig{
			Plan: p, WorkKind: "hashchain", Iters: 4, Seed: 1, MaxBatch: batch,
		})
		if err != nil {
			b.Fatal(err)
		}
		cs = &connState{
			held:       make(map[outstandingKey]int),
			registered: make(map[int]bool),
			names:      make(map[int]string),
		}
		welcome := sup.register(Message{Type: MsgRegister, Name: "bench"}, cs)
		if welcome.Type != MsgRegistered {
			b.Fatalf("register: %+v", welcome)
		}
		id = welcome.ParticipantID
		iters = 4
		remain = p.TotalAssignments()
		if fn == nil {
			fn, kindErr = Work("hashchain")
			if kindErr != nil {
				b.Fatal(kindErr)
			}
		}
	}
	reset()
	defer func() { sup.Close() }()
	leaseMsg.ParticipantID = id
	results := make([]ResultItem, 0, batch)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if remain < batch {
			b.StopTimer()
			reset()
			leaseMsg.ParticipantID = id
			b.StartTimer()
		}
		lease := sup.assignBatch(leaseMsg, cs)
		if lease.Type != MsgWorkBatch || len(lease.Work) == 0 {
			b.Fatalf("lease: %+v", lease)
		}
		remain -= len(lease.Work)
		results = results[:0]
		for _, w := range lease.Work {
			results = append(results, ResultItem{TaskID: w.TaskID, Copy: w.Copy, Value: fn(w.Seed, iters)})
		}
		ack := sup.resultBatch(Message{Type: MsgResultBatch, ParticipantID: id, Results: results}, cs)
		if ack.Type != MsgBatchAck {
			b.Fatalf("ack: %+v", ack)
		}
	}
}

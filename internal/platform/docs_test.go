package platform

import (
	"os"
	"regexp"
	"sort"
	"testing"

	"redundancy/internal/experiments"
	"redundancy/internal/obs"
)

// TestObservabilityDocCoversEveryMetric keeps OBSERVABILITY.md authoritative:
// every metric family any component registers must have a reference-table row
// (| `name` | ...), and every documented name must still exist in code.
func TestObservabilityDocCoversEveryMetric(t *testing.T) {
	reg := obs.NewRegistry()
	newSupMetrics(reg)
	newWorkerMetrics(reg)
	newClusterMetrics(reg)
	experiments.InstrumentMetrics(reg)

	registered := map[string]bool{}
	for _, name := range reg.MetricNames() {
		registered[name] = true
	}

	doc, err := os.ReadFile("../../OBSERVABILITY.md")
	if err != nil {
		t.Fatal(err)
	}
	row := regexp.MustCompile("(?m)^\\| `(redundancy_[a-zA-Z0-9_]+)` \\|")
	documented := map[string]bool{}
	for _, m := range row.FindAllStringSubmatch(string(doc), -1) {
		documented[m[1]] = true
	}
	if len(documented) == 0 {
		t.Fatal("no metric reference rows found in OBSERVABILITY.md")
	}

	var missing, stale []string
	for name := range registered {
		if !documented[name] {
			missing = append(missing, name)
		}
	}
	for name := range documented {
		if !registered[name] {
			stale = append(stale, name)
		}
	}
	sort.Strings(missing)
	sort.Strings(stale)
	if len(missing) > 0 {
		t.Errorf("metrics registered in code but undocumented in OBSERVABILITY.md: %v", missing)
	}
	if len(stale) > 0 {
		t.Errorf("metrics documented in OBSERVABILITY.md but not registered by any component: %v", stale)
	}
}

package platform

import (
	"bytes"
	"encoding/json"
	"errors"
	"sync"
	"time"
)

// bufPool recycles journal encode buffers across batches, commit windows,
// and supervisors — the frame-assembly allocation on the result hot path.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// commitReq is one handler's result batch awaiting durability. done is
// buffered so the committer never blocks on a requester.
type commitReq struct {
	recs []journalRecord
	done chan error
}

// journalCommitter is the group-commit engine (SupervisorConfig.
// GroupCommit): a single goroutine that drains every commit request
// queued while the previous window's write+fsync was in flight, encodes
// them into one contiguous buffer, writes it with one Write call (so a
// crash can tear only the buffer's tail — the damage replay already
// tolerates), fsyncs once (JournalSync mode), and only then releases
// every requester. Ack-after-fsync therefore holds per window: a result
// is acked only after the fsync covering its record returned. The window
// is adaptive with zero added latency — an uncontended request commits
// alone immediately; windows grow exactly when fsync is the bottleneck.
type journalCommitter struct {
	s    *Supervisor
	reqs chan commitReq
	quit chan struct{}
	idle chan struct{} // closed when the loop has drained and exited
	once sync.Once
}

var errCommitterClosed = errors.New("platform: journal committer closed")

func newJournalCommitter(s *Supervisor) *journalCommitter {
	c := &journalCommitter{
		s:    s,
		reqs: make(chan commitReq, 256),
		quit: make(chan struct{}),
		idle: make(chan struct{}),
	}
	go c.loop()
	return c
}

// commit submits recs and blocks until the commit window covering them is
// durable (or its write failed). The caller may reuse recs's backing
// array after commit returns — the committer is done with it.
func (c *journalCommitter) commit(recs []journalRecord) error {
	req := commitReq{recs: recs, done: make(chan error, 1)}
	select {
	case c.reqs <- req:
	case <-c.quit:
		return errCommitterClosed
	}
	return <-req.done
}

// close stops the committer after draining every queued request. Safe to
// call more than once (Close after Shutdown is common in tests).
func (c *journalCommitter) close() {
	c.once.Do(func() { close(c.quit) })
	<-c.idle
}

func (c *journalCommitter) loop() {
	defer close(c.idle)
	batch := make([]commitReq, 0, 64)
	for {
		select {
		case req := <-c.reqs:
			batch = append(batch[:0], req)
			c.gather(&batch)
			c.commitWindow(batch)
		case <-c.quit:
			// Drain what the handlers already queued; supervisor teardown
			// only closes the committer after every connection goroutine
			// has exited, so nothing new can arrive.
			for {
				select {
				case req := <-c.reqs:
					batch = append(batch[:0], req)
					c.gather(&batch)
					c.commitWindow(batch)
				default:
					return
				}
			}
		}
	}
}

// gather extends the window with every request already queued — no timer,
// no configured window size: the window is exactly the set of batches
// that arrived while the previous write+fsync was in flight.
func (c *journalCommitter) gather(batch *[]commitReq) {
	for {
		select {
		case req := <-c.reqs:
			*batch = append(*batch, req)
		default:
			return
		}
	}
}

// commitWindow makes one window durable and releases its requesters.
func (c *journalCommitter) commitWindow(batch []commitReq) {
	s := c.s
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	enc := json.NewEncoder(buf)
	n := 0
	var err error
encode:
	for _, req := range batch {
		for _, rec := range req.recs {
			if err = enc.Encode(rec); err != nil {
				break encode
			}
			n++
		}
	}
	if err == nil {
		s.jnlMu.Lock()
		_, err = s.cfg.Journal.Write(buf.Bytes())
		if err == nil {
			s.jnlLines += int64(n)
		}
		s.jnlMu.Unlock()
	}
	bufPool.Put(buf)
	if err == nil {
		s.metrics.journalRecords.Add(uint64(n))
		if s.cfg.JournalSync {
			s.syncJournal()
		}
		if s.cfg.CommitLatency > 0 {
			// Modeled device latency, paid once per window: group commit
			// amortizes it across the window's records exactly as it
			// amortizes a real fsync.
			time.Sleep(s.cfg.CommitLatency)
		}
		s.metrics.journalGroupCommits.Inc()
		s.metrics.journalCommitBatch.Observe(float64(n))
	}
	for _, req := range batch {
		req.done <- err
	}
	// Snapshot trigger, after the requesters are released: takeSnapshot
	// takes lease.mu → audit.mu, which no commit() caller holds, and
	// running it here keeps the committer single-threaded with respect to
	// its own journal writes.
	if err == nil {
		s.noteJournaled(n)
	}
}

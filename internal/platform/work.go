package platform

import (
	"fmt"
	"math"
	"sort"
)

// WorkFunc is an actual computation executed by workers: deterministic in
// (seed, iters) so the supervisor can precompute ringer results and tests
// can check certified values. iters is the work amount in function-defined
// iterations; every registered WorkFunc tolerates iters <= 0 by doing no
// iterations and returning its base value.
type WorkFunc func(seed uint64, iters int) uint64

// workRegistry maps work-kind names to implementations.
var workRegistry = map[string]WorkFunc{
	"hashchain":  HashChain,
	"primecount": PrimeCount,
	"collatz":    CollatzMax,
	"logistic":   Logistic,
}

// Work looks up a registered work function by kind name (one of
// WorkKinds); an unknown kind returns a non-nil error and a nil WorkFunc.
func Work(kind string) (WorkFunc, error) {
	f, ok := workRegistry[kind]
	if !ok {
		return nil, fmt.Errorf("platform: unknown work kind %q", kind)
	}
	return f, nil
}

// WorkKinds returns the registered kind names in sorted order; the slice
// is freshly allocated and safe to modify.
func WorkKinds() []string {
	out := make([]string, 0, len(workRegistry))
	for k := range workRegistry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// HashChain iterates a 64-bit mixing function iters times from seed — a
// stand-in for the per-task numerical kernels of real volunteer projects.
// With iters <= 0 it returns seed unchanged.
func HashChain(seed uint64, iters int) uint64 {
	z := seed
	for i := 0; i < iters; i++ {
		z += 0x9E3779B97F4A7C15
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
	}
	return z
}

// PrimeCount counts primes in [seed mod 10^6, seed mod 10^6 + iters) by
// trial division — deliberately CPU-bound "scientific" work. With
// iters <= 0 the interval is empty and the count is 0.
func PrimeCount(seed uint64, iters int) uint64 {
	lo := seed % 1_000_000
	var count uint64
	for n := lo; n < lo+uint64(iters); n++ {
		if isPrime(n) {
			count++
		}
	}
	return count
}

func isPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	if n%2 == 0 {
		return n == 2
	}
	for d := uint64(3); d*d <= n; d += 2 {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// CollatzMax returns the maximum value reached by the Collatz trajectories
// of iters consecutive starting points from seed mod 10^6 + 1. With
// iters <= 0 no trajectory runs and the result is 1.
func CollatzMax(seed uint64, iters int) uint64 {
	start := seed%1_000_000 + 1
	var max uint64
	for s := start; s < start+uint64(iters); s++ {
		n := s
		for n != 1 {
			if n > max {
				max = n
			}
			if n%2 == 0 {
				n /= 2
			} else {
				n = 3*n + 1
			}
		}
	}
	if max == 0 {
		max = 1
	}
	return max
}

// Logistic iterates the chaotic logistic map x ← r·x·(1−x) (r = 3.99)
// from a seed-derived starting point and returns the float64 bit pattern
// of the final state — a floating-point-valued workload whose results
// real-world heterogeneous hosts would reproduce only to a tolerance,
// motivating quantized result matching (SupervisorConfig.ResultDigits).
// With iters <= 0 it returns the bits of the starting point itself.
func Logistic(seed uint64, iters int) uint64 {
	x := 0.1 + float64(seed%1000)/2000.0 // in (0.1, 0.6)
	for i := 0; i < iters; i++ {
		x = 3.99 * x * (1 - x)
	}
	return math.Float64bits(x)
}

// TaskSeed derives the per-task payload seed from the task ID (0-based);
// supervisor and tests share it so both sides agree on every payload
// without shipping data. It is a pure function — equal IDs always map to
// equal seeds.
func TaskSeed(taskID int) uint64 {
	return uint64(taskID)*0x9E3779B97F4A7C15 + 0x1234567
}

package platform

import "redundancy/internal/obs"

// Event names written to the supervisor's event sink (SupervisorConfig.
// Events), one JSON line each. OBSERVABILITY.md documents the fields of
// every event.
const (
	EvAssignmentIssued    = "assignment_issued"
	EvResultAccepted      = "result_accepted"
	EvResultRejected      = "result_rejected"
	EvMismatchDetected    = "mismatch_detected"
	EvRingerFailed        = "ringer_failed"
	EvAssignmentReclaimed = "assignment_reclaimed"
	EvWorkerJoined        = "worker_joined"
	EvWorkerLeft          = "worker_left"
	EvWorkerResumed       = "worker_resumed"
	EvPlanRevised         = "plan_revised"
	// EvAssignmentSpeculated is deliberately distinct from
	// EvAssignmentIssued: a speculative clone duplicates a live lease, so
	// folding it into assignment_issued would break the event-stream
	// invariant that an issue implies the copy was not already out.
	EvAssignmentSpeculated   = "assignment_speculated"
	EvParticipantQuarantined = "participant_quarantined"
	EvParticipantProbation   = "participant_probation"
	EvParticipantReadmitted  = "participant_readmitted"
)

// Event names written to a worker's event sink (WorkerConfig.Events).
const (
	EvAssignmentReceived = "assignment_received"
	EvResultSubmitted    = "result_submitted"
	EvReconnect          = "reconnect"
)

// supMetrics bundles every metric the supervisor emits. All series are
// registered eagerly at construction so /metrics and Snapshot show a
// complete (if zero) picture from the first scrape, and so the
// documentation-coverage test can enumerate them without running traffic.
type supMetrics struct {
	assignmentsIssued *obs.Counter
	resultsAccepted   *obs.Counter
	resultsRejected   *obs.CounterVec // reason
	tasksCertified    *obs.Counter
	mismatchDetected  *obs.Counter
	ringerFailures    *obs.Counter
	convictions       *obs.Counter
	reclaimed         *obs.CounterVec // reason
	workersRegistered *obs.Counter
	workersResumed    *obs.Counter
	workersConnected  *obs.Gauge
	reissued          *obs.Counter
	journalRecords    *obs.Counter
	journalRestored   *obs.Counter
	journalSyncs      *obs.Counter
	turnaround        *obs.HistogramVec // worker

	batchesIssued       *obs.Counter
	batchSize           *obs.Histogram
	batchedJournalSyncs *obs.Counter

	journalGroupCommits *obs.Counter
	journalCommitBatch  *obs.Histogram
	leaseWait           *obs.Histogram

	speculativeIssued  *obs.Counter
	speculativeWins    *obs.Counter
	speculativeWasted  *obs.Counter
	quarantinesEntered *obs.Counter
	quarantinesExited  *obs.Counter
	participantHealth  *obs.GaugeVec // participant

	adaptPHat          *obs.Gauge
	adaptIntervalWidth *obs.Gauge
	adaptRevisions     *obs.Counter
	adaptPromoted      *obs.Counter
	adaptMinted        *obs.Counter

	wireBytes     *obs.CounterVec // codec
	wireBytesJSON *obs.Counter    // cached wireBytes.With(ProtoJSON)
	wireBytesBin  *obs.Counter    // cached wireBytes.With(ProtoBinary)

	journalSnapshots        *obs.Counter
	journalCompactedRecords *obs.Counter
	journalRestoreSeconds   *obs.Gauge

	// Sharded-cluster families (internal/ring + Cluster). The vec
	// families register unconditionally; the bound per-shard children
	// below are nil on unsharded supervisors (SupervisorConfig.ShardID
	// empty), keeping the unsharded hot path free of vec lookups.
	shardIssuedVec   *obs.CounterVec // shard_id
	shardAcceptedVec *obs.CounterVec // shard_id
	shardRoutedVec   *obs.CounterVec // shard
	shardIssued      *obs.Counter
	shardAccepted    *obs.Counter
	shardRouted      *obs.Counter
}

// bindShard resolves the shard-labeled children of the hot-path counter
// mirrors for one shard (SupervisorConfig.ShardID), enabling the
// per-shard series.
func (m *supMetrics) bindShard(shardID string) {
	m.shardIssued = m.shardIssuedVec.With(shardID)
	m.shardAccepted = m.shardAcceptedVec.With(shardID)
	m.shardRouted = m.shardRoutedVec.With(shardID)
}

// newSupMetrics registers the supervisor's metric families on r
// (idempotently, so several supervisors may share one registry).
func newSupMetrics(r *obs.Registry) *supMetrics {
	m := &supMetrics{
		assignmentsIssued: r.Counter("redundancy_assignments_issued_total",
			"Assignments handed to workers, including re-issues of reclaimed copies."),
		resultsAccepted: r.Counter("redundancy_results_accepted_total",
			"Results accepted into the verification pipeline (acked to the worker)."),
		resultsRejected: r.CounterVec("redundancy_results_rejected_total",
			"Results refused before verification, by reason.", "reason"),
		tasksCertified: r.Counter("redundancy_tasks_certified_total",
			"Tasks whose collected results matched and were certified."),
		mismatchDetected: r.Counter("redundancy_mismatch_detected_total",
			"Tasks on which differing results (or a failed ringer) exposed cheating."),
		ringerFailures: r.Counter("redundancy_ringer_failures_total",
			"Ringer tasks whose returns differed from the precomputed truth."),
		convictions: r.Counter("redundancy_convictions_total",
			"Participants convicted by conclusive ringer evidence (conviction events; a twice-caught participant counts twice)."),
		reclaimed: r.CounterVec("redundancy_assignments_reclaimed_total",
			"Assignments taken back for re-issue, by reason (disconnect, deadline, quarantine, or speculative — an expired clone).", "reason"),
		speculativeIssued: r.Counter("redundancy_speculative_issued_total",
			"Speculative clones issued: still-leased copies duplicated to a second participant after exceeding the completion-time percentile."),
		speculativeWins: r.Counter("redundancy_speculative_wins_total",
			"Speculative races won by the clone (its result arrived before the straggling primary's)."),
		speculativeWasted: r.Counter("redundancy_speculative_wasted_total",
			"Duplicate completions discarded: the race's loser finished anyway and its result was rejected as a duplicate."),
		quarantinesEntered: r.Counter("redundancy_quarantines_entered_total",
			"Participants moved into quarantine (suspect history or deadline-failure rate crossed a threshold)."),
		quarantinesExited: r.Counter("redundancy_quarantines_exited_total",
			"Participants re-admitted to regular work after a clean ringer-only probation."),
		participantHealth: r.GaugeVec("redundancy_participant_health",
			"Per-participant health score in [0,1]: 0 quarantined, at most 0.5 on probation, 1 a clean fast record.", "participant"),
		workersRegistered: r.Counter("redundancy_workers_registered_total",
			"Participant registrations accepted."),
		workersResumed: r.Counter("redundancy_workers_resumed_total",
			"Reconnecting workers that re-attached an existing identity via a resume register."),
		workersConnected: r.Gauge("redundancy_workers_connected",
			"Currently open worker connections."),
		reissued: r.Counter("redundancy_assignments_reissued_total",
			"In-flight assignments re-sent to their holder after a resume, without a new queue pop."),
		journalRecords: r.Counter("redundancy_journal_records_total",
			"Accepted results appended to the journal."),
		journalRestored: r.Counter("redundancy_journal_restored_total",
			"Results recovered from the journal at startup."),
		journalSyncs: r.Counter("redundancy_journal_syncs_total",
			"Successful journal fsyncs (JournalSync mode appends and shutdown flushes)."),
		turnaround: r.HistogramVec("redundancy_assignment_turnaround_seconds",
			"Seconds from issuing an assignment to accepting its result, per worker name.",
			obs.DefBuckets, "worker"),
		batchesIssued: r.Counter("redundancy_batches_issued_total",
			"Non-empty work_batch leases issued in reply to get_work requests."),
		batchSize: r.Histogram("redundancy_batch_size",
			"Assignments per issued work_batch lease (re-issues included).",
			[]float64{1, 2, 4, 8, 16, 32, 64, 128}),
		batchedJournalSyncs: r.Counter("redundancy_batched_journal_syncs_total",
			"Journal fsyncs amortized over a whole result_batch (one per batch, not per record)."),
		journalGroupCommits: r.Counter("redundancy_journal_group_commits_total",
			"Commit windows flushed by the group-commit journal goroutine (one buffered write and at most one fsync each)."),
		journalCommitBatch: r.Histogram("redundancy_journal_commit_batch_size",
			"Journal records made durable per group-commit window (windows grow only while fsync is the bottleneck).",
			[]float64{1, 2, 4, 8, 16, 32, 64, 128}),
		leaseWait: r.Histogram("redundancy_lease_wait_seconds",
			"Seconds a get_work request spent inside the supervisor before its lease (or no_work verdict) was returned, empty-queue parking included.",
			[]float64{0.00001, 0.0001, 0.001, 0.01, 0.1, 1, 10}),
		adaptPHat: r.Gauge("redundancy_adapt_phat",
			"Adaptive estimator's point estimate p̂ of the adversary's assignment share (0 until evidence arrives)."),
		adaptIntervalWidth: r.Gauge("redundancy_adapt_interval_width",
			"Width of the Wilson confidence interval around p̂ (1 while no evidence has been observed)."),
		adaptRevisions: r.Counter("redundancy_adapt_revisions_total",
			"Plan revisions the adaptive controller journaled and applied."),
		adaptPromoted: r.Counter("redundancy_adapt_copies_promoted_total",
			"Additional assignment copies created by promoting queued tasks to higher multiplicity classes."),
		adaptMinted: r.Counter("redundancy_adapt_ringers_minted_total",
			"Ringer tasks minted mid-run by the adaptive controller."),
		wireBytes: r.CounterVec("redundancy_wire_bytes_total",
			"Bytes sent and received on worker connections, by wire codec (framing overhead included).", "codec"),
		journalSnapshots: r.Counter("redundancy_journal_snapshots_total",
			"Journal snapshot records written (periodic captures and compactions)."),
		journalCompactedRecords: r.Counter("redundancy_journal_compacted_records_total",
			"Journal lines discarded by compaction (replaced by the covering snapshot)."),
		journalRestoreSeconds: r.Gauge("redundancy_journal_restore_seconds",
			"Seconds the last startup spent replaying the journal (snapshot install included)."),
		shardIssuedVec: r.CounterVec("redundancy_shard_assignments_issued_total",
			"Assignments handed to workers by one shard of a sharded cluster (the shard-labeled mirror of redundancy_assignments_issued_total).", "shard_id"),
		shardAcceptedVec: r.CounterVec("redundancy_shard_results_accepted_total",
			"Results accepted into one shard's verification pipeline (the shard-labeled mirror of redundancy_results_accepted_total).", "shard_id"),
		shardRoutedVec: r.CounterVec("redundancy_shard_routed_total",
			"Work requests (get_work and request_work) served by one shard — what ring routing delivered to it.", "shard"),
	}
	// Resolve the per-codec wire-byte counters once so the serve loop never
	// does a label lookup per request.
	m.wireBytesJSON = m.wireBytes.With(ProtoJSON)
	m.wireBytesBin = m.wireBytes.With(ProtoBinary)
	return m
}

// clusterMetrics bundles the metrics owned by the sharded-cluster layer
// itself (Cluster + the audit aggregator) rather than any one shard.
type clusterMetrics struct {
	ringRebalances *obs.Counter
	aggregateMerge *obs.Histogram
}

// newClusterMetrics registers the cluster-level metric families on r.
func newClusterMetrics(r *obs.Registry) *clusterMetrics {
	return &clusterMetrics{
		ringRebalances: r.Counter("redundancy_ring_rebalances_total",
			"Shard-map epoch bumps: ring membership changes (a shard killed or restored) that workers must re-route around."),
		aggregateMerge: r.Histogram("redundancy_aggregator_merge_seconds",
			"Seconds one aggregator pass took to export every live shard's audit state and merge it into the global p̂/P_k view.",
			obs.DefBuckets),
	}
}

// workerMetrics bundles every metric a worker client emits.
type workerMetrics struct {
	rtt        *obs.Histogram
	completed  *obs.Counter
	cheats     *obs.Counter
	noWork     *obs.Counter
	reconnects *obs.Counter
}

// newWorkerMetrics registers the worker-side metric families on r.
func newWorkerMetrics(r *obs.Registry) *workerMetrics {
	return &workerMetrics{
		rtt: r.Histogram("redundancy_worker_rtt_seconds",
			"Protocol round-trip time in seconds: request-to-work and result-to-ack exchanges.",
			obs.DefBuckets),
		completed: r.Counter("redundancy_worker_assignments_completed_total",
			"Assignments fully executed and acknowledged by the supervisor."),
		cheats: r.Counter("redundancy_worker_cheats_total",
			"Results this worker corrupted before submission (coalition members only)."),
		noWork: r.Counter("redundancy_worker_nowork_total",
			"no_work replies received (the release policy was holding copies back)."),
		reconnects: r.Counter("redundancy_worker_reconnects_total",
			"Reconnect attempts after a failed session (WorkerConfig.Reconnect mode only)."),
	}
}

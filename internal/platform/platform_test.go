package platform

import (
	"bytes"
	"io"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"redundancy/internal/dist"
	"redundancy/internal/plan"
	"redundancy/internal/sched"
)

func TestCodecRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	c := NewCodec(&buf)
	in := Message{Type: MsgWork, TaskID: 7, Copy: 1, Kind: "hashchain", Seed: 99, Iters: 10}
	if err := c.Send(in); err != nil {
		t.Fatal(err)
	}
	out, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Errorf("round trip: got %+v want %+v", out, in)
	}
	if _, err := c.Recv(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestCodecSkipsBlankLinesAndRejectsGarbage(t *testing.T) {
	r := strings.NewReader("\n\n{\"type\":\"ack\"}\nnot json\n")
	c := NewCodec(struct {
		io.Reader
		io.Writer
	}{r, io.Discard})
	m, err := c.Recv()
	if err != nil || m.Type != MsgAck {
		t.Fatalf("got %+v, %v", m, err)
	}
	if _, err := c.Recv(); err == nil {
		t.Error("garbage frame accepted")
	}
}

func TestWorkFunctions(t *testing.T) {
	for _, kind := range WorkKinds() {
		f, err := Work(kind)
		if err != nil {
			t.Fatal(err)
		}
		a, b := f(12345, 50), f(12345, 50)
		if a != b {
			t.Errorf("%s is not deterministic", kind)
		}
		if f(12345, 50) == f(54321, 50) && kind == "hashchain" {
			t.Errorf("%s ignores its seed", kind)
		}
	}
	if _, err := Work("nope"); err == nil {
		t.Error("unknown kind accepted")
	}
	if PrimeCount(0, 10) != 4 { // primes in [0,10): 2,3,5,7
		t.Errorf("PrimeCount(0,10) = %d, want 4", PrimeCount(0, 10))
	}
	if CollatzMax(0, 1) == 0 { // start=1, trajectory {1}
		t.Error("CollatzMax returned 0")
	}
	if TaskSeed(1) == TaskSeed(2) {
		t.Error("TaskSeed collision")
	}
}

// startSupervisor spins a supervisor on loopback for tests.
func startSupervisor(t *testing.T, p *plan.Plan, policy sched.Policy) (*Supervisor, string) {
	t.Helper()
	sup, err := NewSupervisor(SupervisorConfig{
		Plan:     p,
		Policy:   policy,
		WorkKind: "hashchain",
		Iters:    25,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := sup.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sup.Close() })
	return sup, addr
}

func TestHonestEndToEnd(t *testing.T) {
	p, err := plan.Balanced(300, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sup, addr := startSupervisor(t, p, sched.Free)

	const workers = 8
	var wg sync.WaitGroup
	var mu sync.Mutex
	completed := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st, err := RunWorker(WorkerConfig{Addr: addr, Name: "honest"})
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			mu.Lock()
			completed += st.Completed
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	sup.Wait()

	sum := sup.Summary()
	if sum.Participants != workers {
		t.Errorf("participants = %d", sum.Participants)
	}
	if sum.Verify.Tasks != p.N+p.Ringers {
		t.Errorf("adjudicated %d tasks, want %d", sum.Verify.Tasks, p.N+p.Ringers)
	}
	if sum.Verify.MismatchDetected != 0 || sum.WrongResults != 0 || len(sum.Blacklist) != 0 {
		t.Errorf("honest run: %+v wrong=%d blacklist=%v",
			sum.Verify, sum.WrongResults, sum.Blacklist)
	}
	if completed != p.TotalAssignments() {
		t.Errorf("workers completed %d assignments, plan has %d", completed, p.TotalAssignments())
	}
}

func TestCheatersDetectedEndToEnd(t *testing.T) {
	p, err := plan.Balanced(200, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sup, addr := startSupervisor(t, p, sched.Free)

	coal := NewCoalition(1, 7) // cheat on every task it touches
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		cheat := CheatFunc(nil)
		name := "honest"
		if w < 2 { // two coalition members
			cheat = coal.CheatFunc()
			name = "colluder"
		}
		go func() {
			defer wg.Done()
			// Cheaters may be blacklisted mid-run and refused further
			// work; that error is expected.
			_, _ = RunWorker(WorkerConfig{Addr: addr, Name: name, Cheat: cheat})
		}()
	}
	wg.Wait()
	sup.Wait()

	sum := sup.Summary()
	if sum.Verify.MismatchDetected == 0 {
		t.Error("no cheats detected despite an always-cheat coalition")
	}
	if len(sum.Blacklist) == 0 {
		t.Error("nobody blacklisted")
	}
	// Certified-but-wrong results can only come from fully-controlled
	// tuples; with 1/3 of workers colluding some may exist, but every
	// detection must be real:
	if sum.Verify.MismatchDetected > sum.Verify.Tasks {
		t.Error("impossible detection count")
	}
}

func TestConvictedWorkerRefusedWork(t *testing.T) {
	// A hand-built plan whose first assignments include ringers: a lone
	// always-cheat worker inevitably lies on a ringer, is convicted by the
	// supervisor's precomputed truth, and is refused further work; an
	// honest worker then finishes the computation.
	p := &plan.Plan{
		Epsilon:            0.5,
		N:                  20,
		Counts:             []int{20}, // 20 single-copy tasks
		TailMultiplicity:   2,
		TailTasks:          0,
		Ringers:            4,
		RingerMultiplicity: 2,
	}
	sup, addr := startSupervisor(t, p, sched.Free)
	coal := NewCoalition(1, 3)
	st, err := RunWorker(WorkerConfig{Addr: addr, Name: "cheater", Cheat: coal.CheatFunc()})
	if err == nil {
		t.Fatalf("always-cheating lone worker finished unconvicted (completed %d)", st.Completed)
	}
	if !strings.Contains(err.Error(), "blacklisted") {
		t.Fatalf("unexpected error: %v", err)
	}
	// An honest worker can still finish the computation.
	if _, err := RunWorker(WorkerConfig{Addr: addr, Name: "honest"}); err != nil {
		t.Fatal(err)
	}
	sup.Wait()
	sum := sup.Summary()
	if len(sum.Blacklist) == 0 {
		t.Error("cheater not in blacklist")
	}
	if sum.Verify.RingersCaught == 0 {
		t.Error("no ringer catches recorded")
	}
}

func TestOneOutstandingOverTCP(t *testing.T) {
	p, err := plan.FromDistribution(dist.Simple(40), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sup, addr := startSupervisor(t, p, sched.OneOutstanding)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := RunWorker(WorkerConfig{Addr: addr, Name: "w"})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	done := make(chan struct{})
	go func() { sup.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("one-outstanding run did not finish")
	}
	wg.Wait()
	if sum := sup.Summary(); sum.Verify.Tasks != 40 {
		t.Errorf("adjudicated %d", sum.Verify.Tasks)
	}
}

func TestWorkerMaxAssignments(t *testing.T) {
	p, err := plan.FromDistribution(dist.Simple(50), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sup, addr := startSupervisor(t, p, sched.Free)
	st, err := RunWorker(WorkerConfig{Addr: addr, Name: "limited", MaxAssignments: 5})
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != 5 {
		t.Errorf("completed %d, want 5", st.Completed)
	}
	// Finish the computation with an unlimited worker.
	if _, err := RunWorker(WorkerConfig{Addr: addr, Name: "finisher"}); err != nil {
		t.Fatal(err)
	}
	sup.Wait()
}

func TestSupervisorConfigValidation(t *testing.T) {
	if _, err := NewSupervisor(SupervisorConfig{}); err == nil {
		t.Error("nil plan accepted")
	}
	p, err := plan.FromDistribution(dist.Simple(10), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSupervisor(SupervisorConfig{Plan: p, WorkKind: "bogus"}); err == nil {
		t.Error("bogus work kind accepted")
	}
	if _, err := NewSupervisor(SupervisorConfig{Plan: p, Policy: sched.Policy(9)}); err == nil {
		t.Error("bogus policy accepted")
	}
}

func TestCoalitionDecisionsShared(t *testing.T) {
	c := NewCoalition(0.5, 42)
	f1, f2 := c.CheatFunc(), c.CheatFunc()
	agree := true
	for task := 0; task < 200; task++ {
		if f1(task, 1) != f2(task, 1) {
			agree = false
		}
	}
	if !agree {
		t.Error("coalition members disagreed on cheat values")
	}
	cheat, honest := c.Decisions()
	if cheat+honest != 200 {
		t.Errorf("decisions = %d+%d", cheat, honest)
	}
	if cheat < 60 || cheat > 140 {
		t.Errorf("cheat rate %d/200 far from 0.5", cheat)
	}
	// Degenerate probabilities.
	all := NewCoalition(1, 1).CheatFunc()
	if all(1, 7) == 7 {
		t.Error("p=1 coalition did not cheat")
	}
	none := NewCoalition(0, 1).CheatFunc()
	if none(1, 7) != 7 {
		t.Error("p=0 coalition cheated")
	}
}

func TestDroppedConnectionWorkIsReclaimed(t *testing.T) {
	p, err := plan.FromDistribution(dist.Simple(30), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sup, addr := startSupervisor(t, p, sched.Free)

	// A flaky participant: registers, takes one assignment, and vanishes
	// without returning the result.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	codec := NewCodec(conn)
	if err := codec.Send(Message{Type: MsgRegister, Name: "flaky"}); err != nil {
		t.Fatal(err)
	}
	reg, err := codec.Recv()
	if err != nil || reg.Type != MsgRegistered {
		t.Fatalf("register: %+v %v", reg, err)
	}
	if err := codec.Send(Message{Type: MsgRequestWork, ParticipantID: reg.ParticipantID}); err != nil {
		t.Fatal(err)
	}
	work, err := codec.Recv()
	if err != nil || work.Type != MsgWork {
		t.Fatalf("work: %+v %v", work, err)
	}
	conn.Close() // vanish with the assignment in hand

	// A reliable worker must still be able to finish everything,
	// including the reclaimed copy.
	if _, err := RunWorker(WorkerConfig{Addr: addr, Name: "reliable"}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { sup.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("computation stalled after participant drop-out")
	}
	sum := sup.Summary()
	if sum.Verify.Tasks != 30 {
		t.Errorf("adjudicated %d tasks, want all 30", sum.Verify.Tasks)
	}
	if sum.Verify.MismatchDetected != 0 || sum.WrongResults != 0 {
		t.Errorf("drop-out corrupted results: %+v wrong=%d", sum.Verify, sum.WrongResults)
	}
}

func TestImpersonationRejected(t *testing.T) {
	p, err := plan.FromDistribution(dist.Simple(10), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startSupervisor(t, p, sched.Free)

	// A legitimate worker registers first and becomes participant 0.
	legit, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer legit.Close()
	lc := NewCodec(legit)
	lc.Send(Message{Type: MsgRegister, Name: "legit"})
	reg, err := lc.Recv()
	if err != nil || reg.ParticipantID != 0 {
		t.Fatalf("register: %+v %v", reg, err)
	}

	// An attacker on a fresh connection tries to act as participant 0
	// without registering there.
	attacker, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer attacker.Close()
	ac := NewCodec(attacker)
	ac.Send(Message{Type: MsgRequestWork, ParticipantID: 0})
	m, err := ac.Recv()
	if err != nil || m.Type != MsgError {
		t.Fatalf("impersonated work request got %+v %v, want error", m, err)
	}
	ac.Send(Message{Type: MsgResult, ParticipantID: 0, TaskID: 0, Copy: 0, Value: 1})
	m, err = ac.Recv()
	if err != nil || m.Type != MsgError {
		t.Fatalf("impersonated result got %+v %v, want error", m, err)
	}
}

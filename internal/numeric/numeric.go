// Package numeric provides the small numerical substrate used throughout the
// repository: numerically stable log-domain combinatorics, compensated
// summation, series helpers for the zero-truncated Poisson distribution, and
// scalar root finding.
//
// The detection-probability formulas of Szajda, Lawson and Owen involve
// binomial coefficients C(i, k) with i up to several dozen and Poisson-like
// series in γ = ln(1/(1-ε)). Computing these in the log domain keeps every
// intermediate quantity representable for the full parameter range used in
// the paper (N up to 10^7, ε up to 0.99).
package numeric

import (
	"errors"
	"math"
)

// LogFactorial returns ln(n!) for n >= 0.
//
// Values through n = 170 are taken from an exact table computed with
// compensated summation at package init; larger n fall back to math.Lgamma,
// which is accurate to close to full precision in that regime.
func LogFactorial(n int) float64 {
	if n < 0 {
		panic("numeric: LogFactorial of negative argument")
	}
	if n < len(logFactTable) {
		return logFactTable[n]
	}
	lg, _ := math.Lgamma(float64(n) + 1)
	return lg
}

var logFactTable = func() []float64 {
	t := make([]float64, 171)
	var sum KahanSum
	for n := 2; n < len(t); n++ {
		sum.Add(math.Log(float64(n)))
		t[n] = sum.Value()
	}
	return t
}()

// LogBinomial returns ln(C(n, k)). It panics if n < 0. For k < 0 or k > n it
// returns math.Inf(-1), the log of zero, which lets callers sum series
// without guarding the edges.
func LogBinomial(n, k int) float64 {
	if n < 0 {
		panic("numeric: LogBinomial with negative n")
	}
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	if k == 0 || k == n {
		return 0
	}
	return LogFactorial(n) - LogFactorial(k) - LogFactorial(n-k)
}

// Binomial returns C(n, k) as a float64. The result overflows to +Inf for
// very large arguments; callers that need ratios should work in the log
// domain instead.
func Binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	v := math.Exp(LogBinomial(n, k))
	// Binomial coefficients are integers; snap to the exact value whenever
	// it is representable, hiding the rounding noise of the log domain.
	if v < 1<<53 {
		return math.Round(v)
	}
	return v
}

// BinomialInt64 returns C(n, k) as an exact int64 and reports whether the
// value fits. It is used by tests to validate LogBinomial.
func BinomialInt64(n, k int) (v int64, ok bool) {
	if n < 0 || k < 0 || k > n {
		return 0, false
	}
	if k > n-k {
		k = n - k
	}
	v = 1
	for i := 1; i <= k; i++ {
		hi := v * int64(n-k+i)
		if v != 0 && hi/v != int64(n-k+i) {
			return 0, false
		}
		v = hi / int64(i)
	}
	return v, true
}

// LogSumExp returns ln(Σ exp(xs[i])) computed stably. An empty input yields
// math.Inf(-1) (the log of an empty sum).
func LogSumExp(xs ...float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	if math.IsInf(m, -1) {
		return m
	}
	var sum KahanSum
	for _, x := range xs {
		sum.Add(math.Exp(x - m))
	}
	return m + math.Log(sum.Value())
}

// KahanSum is a compensated (Kahan–Babuška) floating-point accumulator.
// The zero value is an empty sum, ready to use.
type KahanSum struct {
	sum, c float64
}

// Add accumulates x into the sum.
func (k *KahanSum) Add(x float64) {
	t := k.sum + x
	if math.Abs(k.sum) >= math.Abs(x) {
		k.c += (k.sum - t) + x
	} else {
		k.c += (x - t) + k.sum
	}
	k.sum = t
}

// Value returns the compensated total.
func (k *KahanSum) Value() float64 { return k.sum + k.c }

// Sum returns the compensated sum of xs.
func Sum(xs []float64) float64 {
	var s KahanSum
	for _, x := range xs {
		s.Add(x)
	}
	return s.Value()
}

// PoissonTermLog returns ln(γ^i / i!), the log of the unnormalized Poisson
// weight, valid for γ > 0 and i >= 0.
func PoissonTermLog(gamma float64, i int) float64 {
	if gamma <= 0 {
		panic("numeric: PoissonTermLog requires gamma > 0")
	}
	return float64(i)*math.Log(gamma) - LogFactorial(i)
}

// PoissonTailLog returns ln(Σ_{i>=m} γ^i/i!) = ln(e^γ − Σ_{i<m} γ^i/i!),
// computed by direct series summation of the tail, which is stable for the
// moderate γ (≲ 5) used in this repository.
func PoissonTailLog(gamma float64, m int) float64 {
	if m <= 0 {
		return gamma // ln(e^γ)
	}
	// Sum the tail directly; terms decay factorially so a few hundred
	// iterations always suffice at double precision.
	var sum KahanSum
	term := math.Exp(PoissonTermLog(gamma, m))
	i := m
	for {
		sum.Add(term)
		i++
		term *= gamma / float64(i)
		if term < sum.Value()*1e-18 && i > m+4 {
			break
		}
		if i > m+10_000 {
			break
		}
	}
	return math.Log(sum.Value())
}

// ErrBracket is returned by Bisect when f(a) and f(b) have the same sign.
var ErrBracket = errors.New("numeric: root not bracketed")

// Bisect finds x in [a, b] with f(x) = 0 to within tol using bisection.
// f(a) and f(b) must have opposite signs.
func Bisect(f func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if (fa > 0) == (fb > 0) {
		return 0, ErrBracket
	}
	for i := 0; i < 200 && b-a > tol; i++ {
		mid := a + (b-a)/2
		fm := f(mid)
		if fm == 0 {
			return mid, nil
		}
		if (fm > 0) == (fa > 0) {
			a, fa = mid, fm
		} else {
			b = mid
		}
	}
	return a + (b-a)/2, nil
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// AlmostEqual reports whether a and b agree to within the given relative
// tolerance (or absolute tolerance near zero).
func AlmostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		return diff <= tol
	}
	return diff <= tol*scale
}

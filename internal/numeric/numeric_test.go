package numeric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLogFactorialSmall(t *testing.T) {
	want := []float64{1, 1, 2, 6, 24, 120, 720, 5040, 40320, 362880}
	for n, w := range want {
		got := math.Exp(LogFactorial(n))
		if !AlmostEqual(got, w, 1e-12) {
			t.Errorf("exp(LogFactorial(%d)) = %v, want %v", n, got, w)
		}
	}
}

func TestLogFactorialLargeMatchesLgamma(t *testing.T) {
	for _, n := range []int{150, 170, 171, 200, 500, 1000} {
		lg, _ := math.Lgamma(float64(n) + 1)
		if !AlmostEqual(LogFactorial(n), lg, 1e-12) {
			t.Errorf("LogFactorial(%d) = %v, want %v", n, LogFactorial(n), lg)
		}
	}
}

func TestLogFactorialNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative argument")
		}
	}()
	LogFactorial(-1)
}

func TestLogBinomialAgainstExact(t *testing.T) {
	for n := 0; n <= 60; n++ {
		for k := 0; k <= n; k++ {
			exact, ok := BinomialInt64(n, k)
			if !ok {
				continue
			}
			got := math.Exp(LogBinomial(n, k))
			if !AlmostEqual(got, float64(exact), 1e-10) {
				t.Fatalf("C(%d,%d): got %v want %d", n, k, got, exact)
			}
		}
	}
}

func TestLogBinomialEdges(t *testing.T) {
	if !math.IsInf(LogBinomial(5, -1), -1) {
		t.Error("C(5,-1) should be log-zero")
	}
	if !math.IsInf(LogBinomial(5, 6), -1) {
		t.Error("C(5,6) should be log-zero")
	}
	if LogBinomial(7, 0) != 0 || LogBinomial(7, 7) != 0 {
		t.Error("C(n,0) and C(n,n) should be 1")
	}
	if Binomial(10, 3) != 120 {
		t.Errorf("Binomial(10,3) = %v, want 120", Binomial(10, 3))
	}
	if Binomial(10, 11) != 0 {
		t.Errorf("Binomial(10,11) = %v, want 0", Binomial(10, 11))
	}
}

func TestBinomialSymmetryProperty(t *testing.T) {
	f := func(n uint8, k uint8) bool {
		nn := int(n % 100)
		kk := int(k) % (nn + 1)
		return AlmostEqual(LogBinomial(nn, kk), LogBinomial(nn, nn-kk), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPascalIdentityProperty(t *testing.T) {
	// C(n,k) = C(n-1,k-1) + C(n-1,k), checked in the linear domain.
	f := func(n uint8, k uint8) bool {
		nn := 1 + int(n%80)
		kk := 1 + int(k)%nn
		lhs := Binomial(nn, kk)
		rhs := Binomial(nn-1, kk-1) + Binomial(nn-1, kk)
		return AlmostEqual(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogSumExp(t *testing.T) {
	got := LogSumExp(math.Log(1), math.Log(2), math.Log(3))
	if !AlmostEqual(got, math.Log(6), 1e-12) {
		t.Errorf("LogSumExp = %v, want ln 6", got)
	}
	if !math.IsInf(LogSumExp(), -1) {
		t.Error("empty LogSumExp should be -Inf")
	}
	// Extreme offsets must not overflow.
	got = LogSumExp(1000, 1000)
	if !AlmostEqual(got, 1000+math.Log(2), 1e-12) {
		t.Errorf("LogSumExp(1000,1000) = %v", got)
	}
}

func TestKahanSumHardCase(t *testing.T) {
	// 1 + 1e-16 added 1e4 times: naive summation loses the small terms.
	var s KahanSum
	s.Add(1)
	for i := 0; i < 10000; i++ {
		s.Add(1e-16)
	}
	want := 1 + 1e-12
	if !AlmostEqual(s.Value(), want, 1e-12) {
		t.Errorf("KahanSum = %.18f, want %.18f", s.Value(), want)
	}
}

func TestSumMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	var want float64
	for i := range xs {
		xs[i] = r.NormFloat64()
		want += xs[i]
	}
	if !AlmostEqual(Sum(xs), want, 1e-9) {
		t.Errorf("Sum = %v, want ~%v", Sum(xs), want)
	}
}

func TestPoissonTailLog(t *testing.T) {
	gamma := math.Ln2
	// Tail from 0 is the whole series: ln(e^γ) = γ.
	if !AlmostEqual(PoissonTailLog(gamma, 0), gamma, 1e-12) {
		t.Errorf("tail from 0 = %v, want %v", PoissonTailLog(gamma, 0), gamma)
	}
	// Tail from 1 is ln(e^γ - 1) = ln(1) = 0 for γ = ln 2.
	if !AlmostEqual(math.Exp(PoissonTailLog(gamma, 1)), 1, 1e-12) {
		t.Errorf("tail from 1 = %v, want 1", math.Exp(PoissonTailLog(gamma, 1)))
	}
	// Tail identity: tail(m) = tail(m+1) + γ^m/m!.
	for m := 1; m < 20; m++ {
		lhs := math.Exp(PoissonTailLog(gamma, m))
		rhs := math.Exp(PoissonTailLog(gamma, m+1)) + math.Exp(PoissonTermLog(gamma, m))
		if !AlmostEqual(lhs, rhs, 1e-10) {
			t.Errorf("tail identity failed at m=%d: %v vs %v", m, lhs, rhs)
		}
	}
}

func TestPoissonTermLogPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for gamma <= 0")
		}
	}()
	PoissonTermLog(0, 1)
}

func TestBisect(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !AlmostEqual(root, math.Sqrt2, 1e-10) {
		t.Errorf("root = %v, want sqrt(2)", root)
	}
}

func TestBisectEndpointRoots(t *testing.T) {
	f := func(x float64) float64 { return x }
	if r, err := Bisect(f, 0, 1, 1e-9); err != nil || r != 0 {
		t.Errorf("root at a: got %v, %v", r, err)
	}
	if r, err := Bisect(f, -1, 0, 1e-9); err != nil || r != 0 {
		t.Errorf("root at b: got %v, %v", r, err)
	}
}

func TestBisectNotBracketed(t *testing.T) {
	if _, err := Bisect(func(x float64) float64 { return 1 }, 0, 1, 1e-9); err != ErrBracket {
		t.Errorf("err = %v, want ErrBracket", err)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}

func TestAlmostEqual(t *testing.T) {
	if !AlmostEqual(1e300, 1e300*(1+1e-13), 1e-12) {
		t.Error("relative comparison failed for large values")
	}
	if AlmostEqual(1.0, 1.1, 1e-3) {
		t.Error("1.0 and 1.1 should not be almost equal")
	}
	if !AlmostEqual(0, 1e-15, 1e-12) {
		t.Error("absolute comparison near zero failed")
	}
}

package adversary

import (
	"reflect"
	"testing"

	"redundancy/internal/dist"
	"redundancy/internal/sched"
)

func TestBasicStrategies(t *testing.T) {
	if !(Always{}).ShouldCheat(1) || (Never{}).ShouldCheat(5) {
		t.Error("Always/Never misbehave")
	}
	only2 := OnlyK{K: 2}
	if only2.ShouldCheat(1) || !only2.ShouldCheat(2) || only2.ShouldCheat(3) {
		t.Error("OnlyK misbehaves")
	}
	al := AtLeast{MinCopies: 2}
	if al.ShouldCheat(1) || !al.ShouldCheat(2) || !al.ShouldCheat(5) {
		t.Error("AtLeast misbehaves")
	}
	for _, s := range []Strategy{Always{}, Never{}, only2, al} {
		if s.Name() == "" {
			t.Error("empty strategy name")
		}
	}
}

func TestRationalAgainstGolleStubblebine(t *testing.T) {
	// GS detection increases with k, so a rational adversary with
	// tolerance just above ε attacks only 1-tuples (§3.1).
	d, err := dist.GolleStubblebineForThreshold(1e6, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRational(d, 0, 0.51)
	if !r.ShouldCheat(1) {
		t.Error("rational adversary should attack GS 1-tuples")
	}
	for k := 2; k <= 8; k++ {
		if r.ShouldCheat(k) {
			t.Errorf("rational adversary should not attack GS %d-tuples", k)
		}
	}
	if r.Name() == "" {
		t.Error("empty name")
	}
}

func TestRationalAgainstBalancedIsIndifferent(t *testing.T) {
	// Balanced offers the same odds at every k: the tolerance either
	// admits all tuple sizes or none.
	d, err := dist.Balanced(1e6, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	permissive := NewRational(d, 0, 0.51)
	strict := NewRational(d, 0, 0.49)
	for k := 1; k <= 10; k++ {
		if !permissive.ShouldCheat(k) {
			t.Errorf("permissive adversary declined k=%d", k)
		}
		if strict.ShouldCheat(k) {
			t.Errorf("strict adversary attacked k=%d", k)
		}
	}
}

func TestRationalEdgeCases(t *testing.T) {
	d := dist.Simple(100)
	r := NewRational(d, 0, 0.9)
	if r.ShouldCheat(0) {
		t.Error("cannot cheat with no copies")
	}
	if r.ShouldCheat(99) {
		t.Error("beyond-dimension holdings should be treated as risky")
	}
}

func TestCoalitionMembership(t *testing.T) {
	c := NewCoalition(Always{})
	c.AddMember(3)
	c.AddMember(1)
	c.AddMember(3)
	if !c.Controls(3) || !c.Controls(1) || c.Controls(2) {
		t.Error("membership wrong")
	}
	if !reflect.DeepEqual(c.Members(), []int{1, 3}) {
		t.Errorf("members = %v", c.Members())
	}
	if c.Strategy().Name() != "always" {
		t.Error("strategy accessor wrong")
	}
}

func TestNilStrategyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCoalition(nil)
}

func TestHoldingsAndDecisions(t *testing.T) {
	c := NewCoalition(OnlyK{K: 2})
	c.Observe(sched.Assignment{TaskID: 7, Copy: 0})
	c.Observe(sched.Assignment{TaskID: 7, Copy: 1})
	c.Observe(sched.Assignment{TaskID: 9, Copy: 0})
	if c.CopiesHeld(7) != 2 || c.CopiesHeld(9) != 1 || c.CopiesHeld(8) != 0 {
		t.Error("CopiesHeld wrong")
	}
	if !reflect.DeepEqual(c.HeldTasks(), []int{7, 9}) {
		t.Errorf("HeldTasks = %v", c.HeldTasks())
	}
	if !reflect.DeepEqual(c.HoldingProfile(), []int{1, 1}) {
		t.Errorf("profile = %v", c.HoldingProfile())
	}
	if !c.CheatsOn(7) {
		t.Error("should cheat on the full 2-tuple")
	}
	if c.CheatsOn(9) {
		t.Error("should not cheat holding one copy")
	}
	if c.CheatsOn(1000) {
		t.Error("cannot cheat on unheld task")
	}
}

func TestValuesAreConsistentAcrossCopies(t *testing.T) {
	c := NewCoalition(Always{})
	a0 := sched.Assignment{TaskID: 5, Copy: 0}
	a1 := sched.Assignment{TaskID: 5, Copy: 1}
	c.Observe(a0)
	c.Observe(a1)
	const honest = uint64(12345)
	v0, v1 := c.Value(a0, honest), c.Value(a1, honest)
	if v0 != v1 {
		t.Error("coalition returned differing cheat values")
	}
	if v0 == honest {
		t.Error("Always strategy did not cheat")
	}
	// An honest coalition returns the honest value.
	h := NewCoalition(Never{})
	h.Observe(a0)
	if h.Value(a0, honest) != honest {
		t.Error("honest coalition corrupted a result")
	}
}

func TestDecisionIsSticky(t *testing.T) {
	// Under streaming policies a copy can arrive after the coalition has
	// committed to cheating on an earlier copy; the decision must not
	// flip, or the coalition's own returns would mismatch.
	c := NewCoalition(OnlyK{K: 1})
	a := sched.Assignment{TaskID: 2, Copy: 0}
	c.Observe(a)
	if !c.CheatsOn(2) {
		t.Fatal("should cheat on 1-tuple")
	}
	c.Observe(sched.Assignment{TaskID: 2, Copy: 1})
	if !c.CheatsOn(2) {
		t.Error("decision flipped after a late copy (held=2 would say no under OnlyK{1})")
	}
	if c.CopiesHeld(2) != 2 {
		t.Error("late copy not recorded")
	}
}

func TestCheatMaskChangesValue(t *testing.T) {
	if CheatMask == 0 {
		t.Fatal("CheatMask must be nonzero or cheats equal honest values")
	}
	for _, v := range []uint64{0, 1, 0xFFFFFFFFFFFFFFFF, 42} {
		if v^CheatMask == v {
			t.Errorf("mask fails to alter %d", v)
		}
	}
}

func TestEmptyProfile(t *testing.T) {
	c := NewCoalition(Always{})
	if len(c.HoldingProfile()) != 0 || len(c.HeldTasks()) != 0 {
		t.Error("empty coalition should have empty profile")
	}
}

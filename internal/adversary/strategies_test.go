package adversary

import (
	"testing"

	"redundancy/internal/dist"
	"redundancy/internal/sched"
)

// TestStrategyNamesPinned pins the Name() string of every strategy in the
// package. Scenario reports, golden files, and redsim output key on these
// names; changing one is a report-format change and must show up here.
func TestStrategyNamesPinned(t *testing.T) {
	d := dist.Simple(100)
	for _, tc := range []struct {
		strategy Strategy
		want     string
	}{
		{Always{}, "always"},
		{Never{}, "never"},
		{OnlyK{K: 3}, "only-3"},
		{AtLeast{MinCopies: 2}, "at-least-2"},
		{NewRational(d, 0.1, 0.25), "rational(max=0.250)"},
		{Drifting{StartRate: 0.02, EndRate: 0.4}, "drifting(0.02->0.4)"},
		{Probabilistic{Rate: 0.3}, "probabilistic(0.3)"},
		{Sleeper{TriggerK: 3}, "sleeper(k=3)"},
		{Sleeper{}, "sleeper(k=2)"},
		{StragglerCover{MinHeld: 2}, "straggler-cover(min=2)"},
		{StragglerCover{}, "straggler-cover(min=1)"},
		{Pocket{Lo: 0, Hi: 0.25}, "pocket(0-0.25)"},
	} {
		if got := tc.strategy.Name(); got != tc.want {
			t.Errorf("Name() = %q, want %q", got, tc.want)
		}
	}
}

// TestShouldCheatTruthTables drives every plain-interface decision rule
// through an explicit truth table over holdings 0..5.
func TestShouldCheatTruthTables(t *testing.T) {
	for _, tc := range []struct {
		name     string
		strategy Strategy
		// want[h-1] is the decision when holding h copies, h = 1..6
		// (the interface contract starts at one copy held).
		want [6]bool
	}{
		{"always", Always{}, [6]bool{true, true, true, true, true, true}},
		{"never", Never{}, [6]bool{false, false, false, false, false, false}},
		{"only-2", OnlyK{K: 2}, [6]bool{false, true, false, false, false, false}},
		{"at-least-3", AtLeast{MinCopies: 3}, [6]bool{false, false, true, true, true, true}},
		// Context-aware strategies degrade to their documented minimal
		// view: Drifting at Progress 0 cheats per the start rate (here 0),
		// Sleeper never learns it is armed, Pocket cannot locate its
		// slice, StragglerCover sees no honest returns and cheats on any
		// qualifying holding.
		{"drifting-unstarted", Drifting{StartRate: 0, EndRate: 1}, [6]bool{false, false, false, false, false, false}},
		{"probabilistic-certain", Probabilistic{Rate: 1}, [6]bool{true, true, true, true, true, true}},
		{"probabilistic-never", Probabilistic{Rate: 0}, [6]bool{false, false, false, false, false, false}},
		{"sleeper", Sleeper{TriggerK: 2}, [6]bool{false, false, false, false, false, false}},
		{"straggler-cover-2", StragglerCover{MinHeld: 2}, [6]bool{false, true, true, true, true, true}},
		{"pocket", Pocket{Lo: 0, Hi: 1}, [6]bool{false, false, false, false, false, false}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for h := 1; h <= len(tc.want); h++ {
				if got := tc.strategy.ShouldCheat(h); got != tc.want[h-1] {
					t.Errorf("ShouldCheat(%d) = %v, want %v", h, got, tc.want[h-1])
				}
			}
		})
	}
}

// TestDriftingRamp checks the time-awareness of the drifting coalition:
// the same task flips from honest to cheating as progress crosses its coin.
func TestDriftingRamp(t *testing.T) {
	s := Drifting{StartRate: 0, EndRate: 1}
	// Find a task whose coin lands mid-range so both phases are visible.
	task := -1
	for id := 0; id < 1000; id++ {
		if u := hashUnit(id, 0); u > 0.4 && u < 0.6 {
			task = id
			break
		}
	}
	if task < 0 {
		t.Fatal("no mid-range coin in 1000 tasks (hashUnit broken?)")
	}
	early := s.ShouldCheatCtx(Context{TaskID: task, CopiesHeld: 1, Progress: 0.1})
	late := s.ShouldCheatCtx(Context{TaskID: task, CopiesHeld: 1, Progress: 0.9})
	if early || !late {
		t.Errorf("ramp did not flip task %d: early=%v late=%v", task, early, late)
	}
	// The ramp clamps outside [0,1].
	if s.ShouldCheatCtx(Context{TaskID: task, CopiesHeld: 1, Progress: -5}) {
		t.Error("negative progress should clamp to the start rate")
	}
	if !s.ShouldCheatCtx(Context{TaskID: task, CopiesHeld: 1, Progress: 5}) {
		t.Error("overflowing progress should clamp to the end rate")
	}
	if s.ShouldCheatCtx(Context{TaskID: task, CopiesHeld: 0, Progress: 1}) {
		t.Error("cannot cheat holding no copies")
	}
}

// TestDriftingRateIsMonotone samples the empirical cheat rate over many
// tasks at three progress points; it must track the ramp.
func TestDriftingRateIsMonotone(t *testing.T) {
	s := Drifting{StartRate: 0.05, EndRate: 0.8}
	const n = 20000
	rate := func(progress float64) float64 {
		cheats := 0
		for id := 0; id < n; id++ {
			if s.ShouldCheatCtx(Context{TaskID: id, CopiesHeld: 1, Progress: progress}) {
				cheats++
			}
		}
		return float64(cheats) / n
	}
	r0, r5, r10 := rate(0), rate(0.5), rate(1)
	if !(r0 < r5 && r5 < r10) {
		t.Fatalf("rates not monotone: %.3f, %.3f, %.3f", r0, r5, r10)
	}
	for _, p := range []struct{ got, want float64 }{
		{r0, 0.05}, {r5, 0.425}, {r10, 0.8},
	} {
		if diff := p.got - p.want; diff < -0.02 || diff > 0.02 {
			t.Errorf("empirical rate %.3f, want ≈%.3f", p.got, p.want)
		}
	}
}

// TestSleeperArmsAndStrikes walks the sleeper truth table over the arming
// observable.
func TestSleeperArmsAndStrikes(t *testing.T) {
	s := Sleeper{TriggerK: 3}
	for _, tc := range []struct {
		maxHeld, held int
		want          bool
	}{
		{0, 1, false}, // asleep
		{2, 2, false}, // still below trigger
		{3, 1, false}, // armed, but this holding is not worth a strike
		{3, 2, false},
		{3, 3, true}, // armed and striking
		{5, 4, true},
	} {
		got := s.ShouldCheatCtx(Context{CopiesHeld: tc.held, MaxHeldAnyTask: tc.maxHeld})
		if got != tc.want {
			t.Errorf("maxHeld=%d held=%d: got %v, want %v", tc.maxHeld, tc.held, got, tc.want)
		}
	}
}

// TestStragglerCoverTable pins the cover condition: cheat only while no
// honest copy of the task has returned.
func TestStragglerCoverTable(t *testing.T) {
	s := StragglerCover{MinHeld: 2}
	for _, tc := range []struct {
		held, honest int
		want         bool
	}{
		{1, 0, false}, // below the holding floor
		{2, 0, true},  // covered
		{2, 1, false}, // an honest result already landed
		{3, 2, false},
		{4, 0, true},
	} {
		got := s.ShouldCheatCtx(Context{CopiesHeld: tc.held, HonestReturned: tc.honest})
		if got != tc.want {
			t.Errorf("held=%d honest=%d: got %v, want %v", tc.held, tc.honest, got, tc.want)
		}
	}
}

// TestPocketSlice pins the slice arithmetic, including both boundary ends.
func TestPocketSlice(t *testing.T) {
	s := Pocket{Lo: 0.2, Hi: 0.5}
	const tasks = 1000
	for _, tc := range []struct {
		id   int
		want bool
	}{
		{0, false},
		{199, false},
		{200, true}, // inclusive lower bound
		{350, true},
		{499, true},
		{500, false}, // exclusive upper bound
		{999, false},
	} {
		got := s.ShouldCheatCtx(Context{TaskID: tc.id, CopiesHeld: 1, Tasks: tasks})
		if got != tc.want {
			t.Errorf("id=%d: got %v, want %v", tc.id, got, tc.want)
		}
	}
	if s.ShouldCheatCtx(Context{TaskID: 300, CopiesHeld: 0, Tasks: tasks}) {
		t.Error("cannot cheat holding no copies")
	}
	if s.ShouldCheatCtx(Context{TaskID: 300, CopiesHeld: 1, Tasks: 0}) {
		t.Error("pocket with unknown task-space extent must stay honest")
	}
}

// TestProbabilisticDecisionIsOrderIndependent verifies the per-task coin:
// the same task always draws the same decision, whatever the progress or
// holdings, and the empirical rate over many tasks matches Rate.
func TestProbabilisticDecisionIsOrderIndependent(t *testing.T) {
	s := Probabilistic{Rate: 0.3, Salt: 7}
	cheats := 0
	const n = 20000
	for id := 0; id < n; id++ {
		a := s.ShouldCheatCtx(Context{TaskID: id, CopiesHeld: 1, Progress: 0.1})
		b := s.ShouldCheatCtx(Context{TaskID: id, CopiesHeld: 4, Progress: 0.9, MaxHeldAnyTask: 5})
		if a != b {
			t.Fatalf("task %d decision depends on context beyond identity", id)
		}
		if a {
			cheats++
		}
	}
	rate := float64(cheats) / n
	if rate < 0.27 || rate > 0.33 {
		t.Errorf("empirical rate %.3f, want ≈0.3", rate)
	}
	// Distinct salts decorrelate the coins.
	other := Probabilistic{Rate: 0.3, Salt: 8}
	same := 0
	for id := 0; id < n; id++ {
		x := s.ShouldCheatCtx(Context{TaskID: id, CopiesHeld: 1})
		y := other.ShouldCheatCtx(Context{TaskID: id, CopiesHeld: 1})
		if x == y {
			same++
		}
	}
	// Independent 0.3-coins agree with probability 0.3·0.3+0.7·0.7 = 0.58.
	if frac := float64(same) / n; frac < 0.53 || frac > 0.63 {
		t.Errorf("salted coins agree at %.3f, want ≈0.58", frac)
	}
}

// TestCoalitionRoutesContextStrategies verifies the Coalition decision
// path: a ContextStrategy receives the installed provider's observables,
// falls back to the minimal context without one, and memoizes the decision
// (context changes after the first call do not flip it).
func TestCoalitionRoutesContextStrategies(t *testing.T) {
	c := NewCoalition(Pocket{Lo: 0, Hi: 1})
	c.Observe(sched.Assignment{TaskID: 4, Copy: 0})
	// Minimal context has Tasks=0: the pocket stays honest.
	if c.CheatsOn(4) {
		t.Fatal("pocket cheated under the minimal context")
	}

	c2 := NewCoalition(Pocket{Lo: 0, Hi: 1})
	honest := 3
	c2.SetContext(func(taskID, held int) Context {
		return Context{TaskID: taskID, CopiesHeld: held, Tasks: 10, HonestReturned: honest}
	})
	c2.Observe(sched.Assignment{TaskID: 4, Copy: 0})
	if !c2.CheatsOn(4) {
		t.Fatal("pocket declined a task inside its slice")
	}
	// Decisions memoize: mutating the observables afterwards cannot flip a
	// committed value (the coalition already returned it on a copy).
	c3 := NewCoalition(StragglerCover{})
	returned := 0
	c3.SetContext(func(taskID, held int) Context {
		return Context{TaskID: taskID, CopiesHeld: held, HonestReturned: returned}
	})
	c3.Observe(sched.Assignment{TaskID: 9, Copy: 0})
	if !c3.CheatsOn(9) {
		t.Fatal("straggler-cover should cheat with no honest returns")
	}
	returned = 2
	if !c3.CheatsOn(9) {
		t.Error("memoized decision flipped when the context changed")
	}
}

// TestHashUnitRange samples the coin for range and rough uniformity.
func TestHashUnitRange(t *testing.T) {
	var sum float64
	const n = 10000
	for id := -n / 2; id < n/2; id++ {
		u := hashUnit(id, 42)
		if u < 0 || u >= 1 {
			t.Fatalf("hashUnit(%d) = %v out of [0,1)", id, u)
		}
		sum += u
	}
	if mean := sum / n; mean < 0.47 || mean > 0.53 {
		t.Errorf("coin mean %.3f, want ≈0.5", mean)
	}
}

package adversary

import "fmt"

// Context carries the run-time observables a state- or time-aware strategy
// may consult at decision time. The basic Strategy interface sees only the
// copy count; the pathological templates of the scenario lab
// (internal/sim) additionally react to the clock, to the coalition's
// aggregate holdings, and to what the honest pool has returned so far.
//
// A Context is always well-defined with only TaskID and CopiesHeld set (the
// two facts a coalition knows unconditionally); the remaining fields are
// zero when no richer observer is installed, and every strategy must
// degrade sensibly under that minimal view.
type Context struct {
	// TaskID identifies the task being decided.
	TaskID int
	// CopiesHeld is how many copies of the task the coalition holds at
	// decision time (>= 1).
	CopiesHeld int
	// Tasks is the total number of tasks in the computation (real +
	// ringers), or 0 when unknown.
	Tasks int
	// Progress is the fraction of all assignments already submitted back
	// to the supervisor, in [0,1]. It is the coalition's clock.
	Progress float64
	// HonestReturned counts results already returned for this task by
	// participants outside the coalition.
	HonestReturned int
	// MaxHeldAnyTask is the coalition's largest holding of any single
	// task so far — the trigger observable for sleeper agents.
	MaxHeldAnyTask int
}

// ContextStrategy is a Strategy that uses run-time observables. Coalition
// routes decisions through ShouldCheatCtx whenever the strategy implements
// this interface; ShouldCheat remains as the degraded no-observer view.
type ContextStrategy interface {
	Strategy
	// ShouldCheatCtx reports whether to cheat on the task described by ctx.
	ShouldCheatCtx(ctx Context) bool
}

// hashUnit maps (taskID, salt) to a uniform value in [0,1) with a
// splitmix64 finalizer. Per-task randomness derived this way is independent
// of event order, which keeps scenario runs deterministic under any
// scheduling interleaving: the same task draws the same coin whenever its
// decision happens.
func hashUnit(taskID int, salt uint64) float64 {
	z := uint64(int64(taskID)) + 0x9E3779B97F4A7C15 + salt*0xBF58476D1CE4E5B9
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// Drifting is the drifting-coalition template: the cheat rate ramps
// linearly from StartRate to EndRate as the computation progresses, so a
// coalition that looked harmless when the adaptive estimator converged
// turns hostile mid-run. Decisions are a per-task coin compared against the
// rate at decision time.
type Drifting struct {
	// StartRate and EndRate bound the linear ramp, both in [0,1].
	StartRate, EndRate float64
	// Salt decorrelates the per-task coins between runs.
	Salt uint64
}

// Name implements Strategy.
func (s Drifting) Name() string {
	return fmt.Sprintf("drifting(%g->%g)", s.StartRate, s.EndRate)
}

// ShouldCheat implements Strategy: with no clock the ramp has not started.
func (s Drifting) ShouldCheat(held int) bool {
	return s.ShouldCheatCtx(Context{CopiesHeld: held})
}

// ShouldCheatCtx implements ContextStrategy.
func (s Drifting) ShouldCheatCtx(ctx Context) bool {
	if ctx.CopiesHeld < 1 {
		return false
	}
	rate := s.StartRate + (s.EndRate-s.StartRate)*clamp01(ctx.Progress)
	return hashUnit(ctx.TaskID, s.Salt) < rate
}

// Probabilistic cheats on each task independently with probability Rate,
// via a per-task coin (order-independent, hence reproducible). It is the
// cheat engine of the Sybil-churn template, where the interesting dynamics
// live in identity turnover rather than in the decision rule.
type Probabilistic struct {
	// Rate is the per-task cheat probability in [0,1].
	Rate float64
	// Salt decorrelates the per-task coins between runs.
	Salt uint64
}

// Name implements Strategy.
func (s Probabilistic) Name() string { return fmt.Sprintf("probabilistic(%g)", s.Rate) }

// ShouldCheat implements Strategy: without a task identity the coin
// degenerates to task 0's draw.
func (s Probabilistic) ShouldCheat(held int) bool {
	return s.ShouldCheatCtx(Context{CopiesHeld: held})
}

// ShouldCheatCtx implements ContextStrategy.
func (s Probabilistic) ShouldCheatCtx(ctx Context) bool {
	if ctx.CopiesHeld < 1 {
		return false
	}
	return hashUnit(ctx.TaskID, s.Salt) < s.Rate
}

// Sleeper is the sleeper-agents template: the coalition behaves perfectly
// until it first holds TriggerK copies of some single task — evidence that
// it can win a whole tuple — and from that moment on cheats on every task
// of which it holds at least TriggerK copies, including the trigger task
// itself. Until armed it is indistinguishable from an honest pool, which
// is exactly what starves the p̂ estimator.
type Sleeper struct {
	// TriggerK is the holding size that arms the coalition (>= 1; zero
	// normalizes to 2, the smallest tuple worth striking with).
	TriggerK int
}

// K returns the normalized trigger size.
func (s Sleeper) K() int {
	if s.TriggerK < 1 {
		return 2
	}
	return s.TriggerK
}

// Name implements Strategy.
func (s Sleeper) Name() string { return fmt.Sprintf("sleeper(k=%d)", s.K()) }

// ShouldCheat implements Strategy: with no aggregate view the agent never
// learns it is armed and stays asleep.
func (s Sleeper) ShouldCheat(held int) bool {
	return s.ShouldCheatCtx(Context{CopiesHeld: held})
}

// ShouldCheatCtx implements ContextStrategy.
func (s Sleeper) ShouldCheatCtx(ctx Context) bool {
	k := s.K()
	return ctx.MaxHeldAnyTask >= k && ctx.CopiesHeld >= k
}

// StragglerCover is the stragglers-as-cover template: the coalition cheats
// only on tasks none of whose honest copies have returned yet at decision
// time, betting that delayed honest copies give its agreed-upon lie a head
// start. Under full-quorum adjudication the bet never pays on a tuple with
// an honest copy outstanding — the scenario lab asserts exactly that.
type StragglerCover struct {
	// MinHeld is the smallest holding worth the risk (zero normalizes
	// to 1).
	MinHeld int
}

// Min returns the normalized holding floor.
func (s StragglerCover) Min() int {
	if s.MinHeld < 1 {
		return 1
	}
	return s.MinHeld
}

// Name implements Strategy.
func (s StragglerCover) Name() string { return fmt.Sprintf("straggler-cover(min=%d)", s.Min()) }

// ShouldCheat implements Strategy: the minimal view reports no honest
// returns, so the degraded form cheats whenever the holding clears the
// floor.
func (s StragglerCover) ShouldCheat(held int) bool {
	return s.ShouldCheatCtx(Context{CopiesHeld: held})
}

// ShouldCheatCtx implements ContextStrategy.
func (s StragglerCover) ShouldCheatCtx(ctx Context) bool {
	return ctx.CopiesHeld >= s.Min() && ctx.HonestReturned == 0
}

// Pocket is the colluding-majority-pocket template: the coalition
// concentrates its cheating on the slice [Lo, Hi) of the task-ID space
// (IDs normalized by the total task count). Because plans lay tasks out in
// multiplicity order, a pocket is a colluding majority over a contiguous
// region of the schedule — low slices cover the low-multiplicity classes,
// high slices the tail and ringers.
type Pocket struct {
	// Lo and Hi bound the attacked slice of normalized task IDs,
	// 0 <= Lo < Hi <= 1.
	Lo, Hi float64
}

// Name implements Strategy.
func (s Pocket) Name() string { return fmt.Sprintf("pocket(%g-%g)", s.Lo, s.Hi) }

// ShouldCheat implements Strategy: without the task-space extent the slice
// cannot be located and the coalition stays honest.
func (s Pocket) ShouldCheat(held int) bool {
	return s.ShouldCheatCtx(Context{CopiesHeld: held})
}

// ShouldCheatCtx implements ContextStrategy.
func (s Pocket) ShouldCheatCtx(ctx Context) bool {
	if ctx.CopiesHeld < 1 || ctx.Tasks <= 0 {
		return false
	}
	frac := float64(ctx.TaskID) / float64(ctx.Tasks)
	return frac >= s.Lo && frac < s.Hi
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
